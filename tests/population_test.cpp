// Population model tests: allocation, metadata consistency, sampling bias.
#include <gtest/gtest.h>

#include <map>

#include "sim/population.h"

namespace dosm::sim {
namespace {

class PopulationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1);
    population_ = new Population(rng);
  }
  static void TearDownTestSuite() {
    delete population_;
    population_ = nullptr;
  }
  static Population* population_;
};

Population* PopulationTest::population_ = nullptr;

TEST_F(PopulationTest, SampledAddressesAreAnnouncedAndGeolocated) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto addr = population_->sample_address(rng);
    EXPECT_NE(population_->pfx2as().origin(addr), meta::kUnknownAsn);
    EXPECT_NE(population_->geo().locate(addr), meta::unknown_country());
  }
}

TEST_F(PopulationTest, CountryMixFollowsConfiguredWeights) {
  Rng rng(3);
  std::map<std::string, int> counts;
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i)
    ++counts[population_->geo().locate(population_->sample_address(rng)).to_string()];
  // US dominates (~27% weight), CN second; JP deliberately tiny.
  EXPECT_GT(counts["US"], counts["CN"]);
  EXPECT_GT(counts["CN"], counts["JP"]);
  EXPECT_GT(counts["US"], kDraws / 6);
  EXPECT_LT(counts["JP"], kDraws / 25);
  // France outranks Japan (the paper's OVH effect).
  EXPECT_GT(counts["FR"], counts["JP"]);
}

TEST_F(PopulationTest, PinnedOrganizationsExist) {
  EXPECT_EQ(population_->asn_of("OVH"), 12276u);
  EXPECT_EQ(population_->asn_of("China Telecom"), 4134u);
  EXPECT_EQ(population_->asn_of("China Unicom"), 4837u);
  EXPECT_THROW(population_->asn_of("Cloudflare Inc"), std::out_of_range);
  EXPECT_EQ(population_->as_registry().name(12276), "OVH");
}

TEST_F(PopulationTest, PinnedOrgAddressesRouteToTheirAsn) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const auto addr = population_->sample_address_in_as(12276, rng);
    EXPECT_EQ(population_->pfx2as().origin(addr), 12276u);
    EXPECT_EQ(population_->geo().locate(addr), meta::CountryCode("FR"));
  }
  EXPECT_THROW(population_->sample_address_in_as(999999, rng),
               std::out_of_range);
}

TEST_F(PopulationTest, AddressSpaceAvoidsReservedRanges) {
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const auto addr = population_->sample_address(rng);
    EXPECT_NE(addr.first_octet(), 44) << "telescope space";
    EXPECT_NE(addr.first_octet(), 203) << "DPS space";
    EXPECT_NE(addr.first_octet(), 198) << "honeypot space";
  }
}

TEST_F(PopulationTest, DeterministicAcrossRebuilds) {
  Rng rng_a(1), rng_b(1);
  Population a(rng_a), b(rng_b);
  Rng sample_a(9), sample_b(9);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(a.sample_address(sample_a), b.sample_address(sample_b));
}

TEST(PopulationConfigTest, ScalesWithBlockCount) {
  Rng rng(6);
  PopulationConfig small;
  small.total_slash16 = 200;
  const Population population(rng, small);
  EXPECT_GT(population.num_ases(), 50u);
  EXPECT_GT(population.pfx2as().num_announcements(), 200u / 2);
}

TEST(PopulationWeights, JapanIsTheNotableException) {
  // The default weights must encode the paper's observation: Japan ranks
  // ~3rd in address usage but far lower in attack targets.
  const auto weights = default_country_weights();
  double jp = 0, fr = 0, ru = 0, us = 0;
  for (const auto& w : weights) {
    if (std::string(w.code) == "JP") jp = w.weight;
    if (std::string(w.code) == "FR") fr = w.weight;
    if (std::string(w.code) == "RU") ru = w.weight;
    if (std::string(w.code) == "US") us = w.weight;
  }
  EXPECT_GT(fr, 3.0 * jp);
  EXPECT_GT(ru, 3.0 * jp);
  EXPECT_GT(us, 0.2);
}

}  // namespace
}  // namespace dosm::sim
