// Tiered-storage correctness: codec round-trips, archive round-trip
// identity, and the hard contract of src/storage — byte-identical
// aggregation results hot vs cold vs in-memory, for every aggregation, at
// any cache budget — plus LRU eviction, zone-map pruning metrics, and the
// v1 golden-archive compatibility pin (readers load v1 forever).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "query/budget.h"
#include "query/query.h"
#include "query/snapshot.h"
#include "sim/scenario.h"
#include "storage/archive.h"
#include "storage/codec.h"
#include "storage/metrics.h"
#include "storage/tiered.h"

namespace dosm::storage {
namespace {

using core::AttackEvent;
using core::EventSource;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Removes the file when the test scope ends.
struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

// ---------------------------------------------------------------------------
// Column codecs: every shape round-trips bit-exactly.
// ---------------------------------------------------------------------------

template <typename T>
std::vector<T> int_round_trip(const std::vector<T>& values) {
  ByteWriter out;
  encode_column(out, std::span<const T>(values));
  const auto encoded = out.data();
  ByteReader in(encoded, "test");
  std::vector<T> decoded;
  if constexpr (std::is_same_v<T, std::uint8_t>)
    decoded = decode_column_u8(in, static_cast<std::uint32_t>(values.size()));
  else if constexpr (std::is_same_v<T, std::uint16_t>)
    decoded = decode_column_u16(in, static_cast<std::uint32_t>(values.size()));
  else if constexpr (std::is_same_v<T, std::uint32_t>)
    decoded = decode_column_u32(in, static_cast<std::uint32_t>(values.size()));
  else
    decoded = decode_column_i32(in, static_cast<std::uint32_t>(values.size()));
  EXPECT_TRUE(in.done());
  return decoded;
}

TEST(CodecTest, IntegerShapesRoundTrip) {
  Rng rng(42);
  // Constant (dict/bitpack degenerate), sorted (delta), random (raw or
  // bitpack), few-distinct (dict), and a multi-block sweep past kBlockRows.
  std::vector<std::uint32_t> constant(10000, 7u);
  EXPECT_EQ(int_round_trip(constant), constant);

  std::vector<std::uint32_t> sorted;
  for (std::uint32_t i = 0; i < 9000; ++i)
    sorted.push_back(3 * i + static_cast<std::uint32_t>(rng.next_below(3)));
  EXPECT_EQ(int_round_trip(sorted), sorted);

  std::vector<std::uint32_t> random;
  for (int i = 0; i < 5000; ++i)
    random.push_back(static_cast<std::uint32_t>(rng.next_below(1u << 31)));
  EXPECT_EQ(int_round_trip(random), random);

  std::vector<std::uint16_t> dictish;
  const std::uint16_t table[] = {53, 80, 123, 443, 9999};
  for (int i = 0; i < 8000; ++i) dictish.push_back(table[rng.next_below(5)]);
  EXPECT_EQ(int_round_trip(dictish), dictish);

  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 4097; ++i)  // one row past the block boundary
    bytes.push_back(static_cast<std::uint8_t>(rng.next_below(2)));
  EXPECT_EQ(int_round_trip(bytes), bytes);

  std::vector<std::int32_t> days;
  for (int i = 0; i < 6000; ++i)
    days.push_back(i % 97 == 0 ? -1 : i / 100);  // -1 sentinel + slow ramp
  EXPECT_EQ(int_round_trip(days), days);

  EXPECT_EQ(int_round_trip(std::vector<std::uint32_t>{}),
            std::vector<std::uint32_t>{});
  EXPECT_EQ(int_round_trip(std::vector<std::uint32_t>{0xffffffffu}),
            std::vector<std::uint32_t>{0xffffffffu});
}

std::vector<double> f64_round_trip(const std::vector<double>& values) {
  ByteWriter out;
  encode_column(out, std::span<const double>(values));
  const auto encoded = out.data();
  ByteReader in(encoded, "test");
  const auto decoded =
      decode_column_f64(in, static_cast<std::uint32_t>(values.size()));
  EXPECT_TRUE(in.done());
  return decoded;
}

void expect_bit_identical(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  if (!a.empty())
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

TEST(CodecTest, DoubleShapesRoundTripBitExactly) {
  Rng rng(7);
  // Second-granularity sorted timestamps: the scaled-delta sweet spot.
  std::vector<double> seconds;
  double t = 1.4e9;
  for (int i = 0; i < 9000; ++i) {
    t += static_cast<double>(rng.next_below(900));
    seconds.push_back(t);
  }
  expect_bit_identical(f64_round_trip(seconds), seconds);
  {
    // ...and it must actually compress: sorted second timestamps collapse
    // to far under the 8 raw bytes per value.
    ByteWriter out;
    encode_column(out, std::span<const double>(seconds));
    EXPECT_LT(out.size(), seconds.size() * 3);
  }

  // Continuous doubles: must fall back to raw and stay bit-exact.
  std::vector<double> continuous;
  for (int i = 0; i < 5000; ++i)
    continuous.push_back(rng.uniform(-1e9, 1e9));
  expect_bit_identical(f64_round_trip(continuous), continuous);

  // Tenths/hundredths (intensities), negatives, zero, and huge values that
  // overflow the scaled-integer guard.
  std::vector<double> mixed = {0.0,   -0.0,  1.5,    -2.25,  3.125,
                               1e16,  -1e16, 0.1,    0.2,    0.3,
                               1e300, 5.0,   -700.5, 1234.25};
  for (int i = 0; i < 3000; ++i)
    mixed.push_back(static_cast<double>(rng.next_below(100000)) / 100.0);
  expect_bit_identical(f64_round_trip(mixed), mixed);

  expect_bit_identical(f64_round_trip({}), {});
}

TEST(CodecTest, EncodingIsDeterministic) {
  Rng rng(99);
  std::vector<std::uint32_t> values;
  for (int i = 0; i < 10000; ++i)
    values.push_back(static_cast<std::uint32_t>(rng.next_below(1000)));
  ByteWriter a, b;
  encode_column(a, std::span<const std::uint32_t>(values));
  encode_column(b, std::span<const std::uint32_t>(values));
  EXPECT_EQ(a.data(), b.data());
}

// ---------------------------------------------------------------------------
// Archive round trip: every decoded column is bit-identical to the frame
// that was written.
// ---------------------------------------------------------------------------

std::shared_ptr<const query::Snapshot> world_snapshot(
    const sim::World& world, int segment_days) {
  return query::Snapshot::from_store(
      world.store,
      query::BuildContext{world.population.pfx2as(), world.population.geo(),
                          /*threads=*/1, segment_days});
}

template <typename T>
void expect_column_identical(std::span<const T> a, std::span<const T> b) {
  ASSERT_EQ(a.size(), b.size());
  if (!a.empty())
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0);
}

TEST(ArchiveTest, RoundTripIsBitIdentical) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const auto snapshot = world_snapshot(*world, /*segment_days=*/7);
  ASSERT_GT(snapshot->num_segments(), 2u);

  const TempFile file(temp_path("dosm_roundtrip.dosarch"));
  const std::uint64_t written = write_archive(file.path, *snapshot);
  EXPECT_EQ(written, std::filesystem::file_size(file.path));

  const ArchiveReader reader(file.path);
  ASSERT_EQ(reader.num_segments(), snapshot->num_segments());
  EXPECT_EQ(reader.window().start, snapshot->window().start);
  EXPECT_EQ(reader.window().end, snapshot->window().end);
  for (std::uint32_t id = 0; id < reader.num_segments(); ++id) {
    const auto& original = *snapshot->segments()[id];
    const auto loaded = reader.load(id);
    const auto& a = original.frame();
    const auto& b = loaded->frame();
    ASSERT_EQ(a.size(), b.size());
    expect_column_identical(a.start(), b.start());
    expect_column_identical(a.end(), b.end());
    expect_column_identical(a.intensity(), b.intensity());
    expect_column_identical(a.target(), b.target());
    expect_column_identical(a.source(), b.source());
    expect_column_identical(a.ip_proto(), b.ip_proto());
    expect_column_identical(a.top_port(), b.top_port());
    expect_column_identical(a.asn(), b.asn());
    expect_column_identical(a.country(), b.country());
    expect_column_identical(a.day(), b.day());
    EXPECT_EQ(reader.meta(id).rows, a.size());
    EXPECT_EQ(reader.meta(id).start_min, original.start_min());
    EXPECT_EQ(reader.meta(id).start_max, original.start_max());
  }
}

TEST(ArchiveTest, WriterRejectsColdSnapshots) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const auto snapshot = world_snapshot(*world, /*segment_days=*/7);
  const TempFile file(temp_path("dosm_reject.dosarch"));
  write_archive(file.path, *snapshot);
  query::BuildContext ctx{world->population.pfx2as(),
                          world->population.geo()};
  ctx.hot_days = 0;
  const auto tiered = open_tiered(file.path, ctx);
  ASSERT_FALSE(tiered->fully_resident());
  const TempFile out(temp_path("dosm_reject2.dosarch"));
  EXPECT_THROW(write_archive(out.path, *tiered), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The hard contract: hot vs cold vs in-memory byte-identity for all six
// aggregations, at any cache budget and hot/cold split.
// ---------------------------------------------------------------------------

std::vector<query::Query> contract_queries(const StudyWindow& window) {
  const double t0 = static_cast<double>(window.start_time());
  std::vector<query::Query> queries;
  queries.emplace_back();  // unfiltered
  query::Query by_time;
  by_time.between(t0 + 3.0 * kSecondsPerDay, t0 + 11.0 * kSecondsPerDay);
  queries.push_back(by_time);
  query::Query by_source;
  by_source.from_source(core::SourceFilter::kHoneypot);
  queries.push_back(by_source);
  query::Query mixed;
  mixed.from_source(core::SourceFilter::kTelescope);
  mixed.between(t0 + 1.5 * kSecondsPerDay, t0 + 20.0 * kSecondsPerDay);
  mixed.at_least(10.0);
  queries.push_back(mixed);
  query::Query by_port;
  by_port.on_port(53);
  queries.push_back(by_port);
  return queries;
}

void expect_identical_answers(const query::Snapshot& expected,
                              const query::Snapshot& actual,
                              const query::Query& q, const char* label) {
  EXPECT_EQ(actual.count(q), expected.count(q)) << label;
  EXPECT_EQ(actual.unique_targets(q), expected.unique_targets(q)) << label;
  const auto expected_daily = expected.daily_attacks(q);
  const auto actual_daily = actual.daily_attacks(q);
  ASSERT_EQ(actual_daily.num_days(), expected_daily.num_days()) << label;
  for (int d = 0; d < expected_daily.num_days(); ++d)
    ASSERT_EQ(actual_daily.at(d), expected_daily.at(d)) << label;
  EXPECT_EQ(actual.top_targets(q, 7), expected.top_targets(q, 7)) << label;
  EXPECT_EQ(actual.top_asns(q, 7), expected.top_asns(q, 7)) << label;
  const auto expected_countries = expected.country_ranking(q);
  const auto actual_countries = actual.country_ranking(q);
  ASSERT_EQ(actual_countries.size(), expected_countries.size()) << label;
  for (std::size_t i = 0; i < expected_countries.size(); ++i) {
    EXPECT_EQ(actual_countries[i].country, expected_countries[i].country)
        << label;
    EXPECT_EQ(actual_countries[i].targets, expected_countries[i].targets)
        << label;
    ASSERT_EQ(actual_countries[i].share, expected_countries[i].share) << label;
  }
  // Global row ids are part of the contract: the tiered layout must not
  // renumber anything.
  EXPECT_EQ(actual.match_rows(q), expected.match_rows(q)) << label;
}

struct TierParam {
  int hot_days;
  std::size_t cache_bytes;
};

class TieredIdentityTest : public ::testing::TestWithParam<TierParam> {};

TEST_P(TieredIdentityTest, AggregationsMatchInMemorySnapshotExactly) {
  const auto [hot_days, cache_bytes] = GetParam();
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const auto hot = world_snapshot(*world, /*segment_days=*/7);
  const TempFile file(temp_path("dosm_identity.dosarch"));
  write_archive(file.path, *hot);

  query::BuildContext ctx{world->population.pfx2as(),
                          world->population.geo()};
  ctx.hot_days = hot_days;
  ctx.cold_cache_bytes = cache_bytes;
  const auto tiered = open_tiered(file.path, ctx);
  ASSERT_EQ(tiered->size(), hot->size());
  ASSERT_EQ(tiered->num_segments(), hot->num_segments());

  for (const auto& q : contract_queries(hot->window()))
    expect_identical_answers(*hot, *tiered, q,
                             query::to_string(q).c_str());
}

INSTANTIATE_TEST_SUITE_P(
    BudgetsAndSplits, TieredIdentityTest,
    ::testing::Values(TierParam{0, 0},            // all cold, no cache
                      TierParam{0, 4096},         // all cold, thrashing cache
                      TierParam{0, 256u << 20},   // all cold, everything fits
                      TierParam{10, 64u << 20},   // mixed hot/cold
                      TierParam{100000, 0}));     // all hot

TEST(TieredIdentityTest, RowBudgetOutcomeIsTierIndependent) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const auto hot = world_snapshot(*world, /*segment_days=*/7);
  const TempFile file(temp_path("dosm_budget.dosarch"));
  write_archive(file.path, *hot);
  query::BuildContext ctx{world->population.pfx2as(),
                          world->population.geo()};
  ctx.hot_days = 0;
  ctx.cold_cache_bytes = 0;
  const auto cold = open_tiered(file.path, ctx);

  query::Query q;
  q.from_source(core::SourceFilter::kTelescope);
  const std::uint64_t matching = hot->count(q);
  ASSERT_GT(matching, 2u);

  // One row under the matched count: both tiers must throw; exactly the
  // matched count: both must succeed with identical results.
  query::ExecBudget tight;
  tight.max_rows = matching - 1;
  EXPECT_THROW(hot->count(q, tight), query::BudgetExceeded);
  EXPECT_THROW(cold->count(q, tight), query::BudgetExceeded);
  query::ExecBudget exact;
  exact.max_rows = matching;
  EXPECT_EQ(hot->count(q, exact), matching);
  EXPECT_EQ(cold->count(q, exact), matching);
  EXPECT_EQ(cold->match_rows(q, exact), hot->match_rows(q, exact));
}

// ---------------------------------------------------------------------------
// Segment cache: LRU eviction under a byte budget, hits on re-access, and
// honest storage.* gauges.
// ---------------------------------------------------------------------------

TEST(SegmentCacheTest, EvictsUnderBudgetAndHitsWithinIt) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const auto hot = world_snapshot(*world, /*segment_days=*/7);
  const TempFile file(temp_path("dosm_cache.dosarch"));
  write_archive(file.path, *hot);
  Metrics& metrics = Metrics::get();

  // Budget sized to roughly one segment: a full scan must evict.
  const std::size_t rows_per_segment = hot->size() / hot->num_segments();
  query::BuildContext ctx{world->population.pfx2as(),
                          world->population.geo()};
  ctx.hot_days = 0;
  ctx.cold_cache_bytes = rows_per_segment * kDecodedBytesPerRow * 3 / 2;
  {
    const auto cold = open_tiered(file.path, ctx);
    const std::uint64_t evictions_before = metrics.cache_evictions.value();
    EXPECT_EQ(cold->count(query::Query{}), hot->size());
    EXPECT_GT(metrics.cache_evictions.value(), evictions_before);
    EXPECT_LE(metrics.resident_bytes.value(),
              static_cast<std::int64_t>(ctx.cold_cache_bytes));
  }
  // Provider destruction releases its share of the resident gauges.
  EXPECT_EQ(metrics.resident_bytes.value(), 0);
  EXPECT_EQ(metrics.resident_segments.value(), 0);

  // A budget that fits everything: the second scan is pure cache hits.
  ctx.cold_cache_bytes = 256u << 20;
  const auto cold = open_tiered(file.path, ctx);
  EXPECT_EQ(cold->count(query::Query{}), hot->size());
  const std::uint64_t loads_before = metrics.segment_loads.value();
  const std::uint64_t hits_before = metrics.cache_hits.value();
  EXPECT_EQ(cold->count(query::Query{}), hot->size());
  EXPECT_EQ(metrics.segment_loads.value(), loads_before);
  EXPECT_GT(metrics.cache_hits.value(), hits_before);
}

TEST(SegmentCacheTest, ZeroBudgetDecodesAfreshEveryTime) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const auto hot = world_snapshot(*world, /*segment_days=*/7);
  const TempFile file(temp_path("dosm_nocache.dosarch"));
  write_archive(file.path, *hot);
  query::BuildContext ctx{world->population.pfx2as(),
                          world->population.geo()};
  ctx.hot_days = 0;
  ctx.cold_cache_bytes = 0;
  const auto cold = open_tiered(file.path, ctx);
  Metrics& metrics = Metrics::get();
  const std::uint64_t loads_before = metrics.segment_loads.value();
  EXPECT_EQ(cold->count(query::Query{}), hot->size());
  const std::uint64_t after_first = metrics.segment_loads.value();
  EXPECT_GE(after_first - loads_before, cold->num_segments());
  EXPECT_EQ(cold->count(query::Query{}), hot->size());
  EXPECT_GE(metrics.segment_loads.value() - after_first,
            cold->num_segments());
  EXPECT_EQ(metrics.resident_bytes.value(), 0);
}

// ---------------------------------------------------------------------------
// Zone maps: the planner never touches cold segments (or blocks) outside
// the query's time range.
// ---------------------------------------------------------------------------

TEST(ZoneMapTest, TimeClippedQueriesSkipColdSegmentsAndBlocks) {
  // Hand-built events at a fixed cadence: 20k rows in one segment is five
  // 4096-row blocks, so a narrow time range must clip whole blocks out.
  StudyWindow window;
  window.end = civil_from_days(days_from_civil(window.start) + 29);
  const double t0 = static_cast<double>(window.start_time());
  std::vector<AttackEvent> events;
  for (int i = 0; i < 20000; ++i) {
    AttackEvent event;
    event.target = net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(i / 256),
                                 static_cast<std::uint8_t>(i % 256));
    event.start = t0 + i * 100.0;
    event.end = event.start + 60.0;
    event.source = EventSource::kTelescope;
    event.intensity = 1.0 + (i % 50);
    events.push_back(event);
  }
  const meta::PrefixToAsMap pfx2as;
  const meta::GeoDatabase geo;
  const auto hot = query::Snapshot::build(
      window, events, query::BuildContext{pfx2as, geo, 1, /*segment_days=*/0});
  ASSERT_EQ(hot->num_segments(), 1u);
  const TempFile file(temp_path("dosm_zones.dosarch"));
  write_archive(file.path, *hot);

  query::BuildContext ctx{pfx2as, geo};
  ctx.hot_days = 0;
  ctx.cold_cache_bytes = 0;
  const auto cold = open_tiered(file.path, ctx);
  Metrics& metrics = Metrics::get();

  // A range covering only rows ~8000..9000 lives in block 1 of 5.
  query::Query narrow;
  narrow.between(t0 + 8000 * 100.0, t0 + 9000 * 100.0);
  const std::uint64_t skips_before = metrics.zone_block_skips.value();
  EXPECT_EQ(cold->count(narrow), hot->count(narrow));
  EXPECT_GE(metrics.zone_block_skips.value() - skips_before, 3u);

  // A range entirely before the segment: the slot metadata alone excludes
  // it — no load, no read.
  query::Query outside;
  outside.between(t0 - 5000.0, t0 - 1.0);
  const std::uint64_t loads_before = metrics.segment_loads.value();
  EXPECT_EQ(cold->count(outside), 0u);
  EXPECT_EQ(metrics.segment_loads.value(), loads_before);
}

// ---------------------------------------------------------------------------
// Format compatibility: the checked-in v1 golden archive must load forever.
// ---------------------------------------------------------------------------

/// The deterministic dataset the golden archive was generated from (see
/// tools/make_golden_archive.cpp). Integral timestamps and quarter-step
/// intensities keep every column platform-independent and bit-stable.
std::vector<AttackEvent> golden_events() {
  StudyWindow window;
  window.end = civil_from_days(days_from_civil(window.start) + 13);
  const double t0 = static_cast<double>(window.start_time());
  std::vector<AttackEvent> events;
  for (int i = 0; i < 5000; ++i) {
    AttackEvent event;
    event.target = net::Ipv4Addr(
        static_cast<std::uint8_t>(10 + i % 4), 0,
        static_cast<std::uint8_t>((i / 7) % 16),
        static_cast<std::uint8_t>(i % 251));
    event.start = t0 + i * 211.0;
    event.end = event.start + 120.0 + (i % 13) * 30.0;
    event.source = i % 3 ? EventSource::kTelescope : EventSource::kHoneypot;
    event.intensity = 0.25 * (1 + i % 400);
    if (event.source == EventSource::kTelescope) {
      const std::uint16_t ports[] = {0, 53, 80, 123, 443};
      event.top_port = ports[i % 5];
      event.ip_proto = i % 5 ? 6 : 17;
    }
    events.push_back(event);
  }
  return events;
}

StudyWindow golden_window() {
  StudyWindow window;
  window.end = civil_from_days(days_from_civil(window.start) + 13);
  return window;
}

TEST(GoldenArchiveTest, V1ArchiveLoadsForever) {
  const std::string golden = DOSM_STORAGE_GOLDEN;
  ASSERT_TRUE(std::filesystem::exists(golden))
      << golden << " missing — regenerate with tools/make_golden_archive";
  const auto events = golden_events();
  const meta::PrefixToAsMap pfx2as;
  const meta::GeoDatabase geo;
  const auto expected = query::Snapshot::build(
      golden_window(), events,
      query::BuildContext{pfx2as, geo, 1, /*segment_days=*/3});

  query::BuildContext ctx{pfx2as, geo};
  ctx.hot_days = 0;
  ctx.cold_cache_bytes = 1u << 20;
  const auto loaded = open_tiered(golden, ctx);
  ASSERT_EQ(loaded->size(), expected->size());
  ASSERT_EQ(loaded->num_segments(), expected->num_segments());
  for (const auto& q : contract_queries(golden_window()))
    expect_identical_answers(*expected, *loaded, q,
                             query::to_string(q).c_str());
}

}  // namespace
}  // namespace dosm::storage
