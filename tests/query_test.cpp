// Query engine correctness: seeded property tests comparing the indexed
// Snapshot against the ScanOracle (naive linear scan) for every filter /
// aggregation combination, planner behaviour, and the Table-4 regression
// (byte-identical to the legacy EventStore scan).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "query/engine.h"
#include "query/scan.h"
#include "query/snapshot.h"
#include "sim/scenario.h"

namespace dosm::query {
namespace {

using core::AttackEvent;
using core::EventSource;
using core::SourceFilter;
using net::Ipv4Addr;

constexpr const char* kCountries[] = {"US", "CN", "DE", "FR",
                                      "GB", "NL", "RU", "BR"};

/// A randomized scenario: prefix-structured metadata and an event
/// population with deliberate key collisions (shared targets, /24s, ASNs,
/// countries) so indexes and tie-breaks are actually exercised.
struct Scenario {
  StudyWindow window;
  meta::PrefixToAsMap pfx2as;
  meta::GeoDatabase geo;
  std::vector<AttackEvent> events;
  std::vector<Ipv4Addr> pool;  // target pool the events draw from
};

Scenario make_scenario(std::uint64_t seed, std::size_t num_events) {
  Rng rng(seed);
  Scenario s;
  s.window.end = civil_from_days(days_from_civil(s.window.start) + 29);

  // Eight /8 country blocks; /16 announcements cover only the low second
  // octets, leaving some targets in unannounced (kUnknownAsn) space.
  for (int i = 0; i < 8; ++i) {
    const auto block = Ipv4Addr(static_cast<std::uint8_t>(10 + i), 0, 0, 0);
    s.geo.add(net::Prefix(block, 8), meta::CountryCode(kCountries[i]));
    for (int j = 0; j < 4; ++j) {
      const auto net16 = Ipv4Addr(static_cast<std::uint8_t>(10 + i),
                                  static_cast<std::uint8_t>(j), 0, 0);
      s.pfx2as.announce(net::Prefix(net16, 16),
                        static_cast<meta::Asn>(100 + i * 4 + j));
    }
  }

  for (int i = 0; i < 160; ++i) {
    s.pool.emplace_back(static_cast<std::uint8_t>(10 + rng.next_below(8)),
                        static_cast<std::uint8_t>(rng.next_below(6)),
                        static_cast<std::uint8_t>(rng.next_below(4)),
                        static_cast<std::uint8_t>(rng.next_below(32)));
  }

  const double t0 = static_cast<double>(s.window.start_time());
  const double t1 = static_cast<double>(s.window.end_time());
  const std::uint16_t ports[] = {0, 53, 80, 123, 443};
  for (std::size_t i = 0; i < num_events; ++i) {
    AttackEvent event;
    event.target = s.pool[rng.next_below(s.pool.size())];
    // ~3% of starts fall outside the window on either side.
    event.start = rng.uniform(t0 - 43200.0, t1 + 43200.0);
    event.end = event.start + rng.uniform(60.0, 3600.0);
    event.source =
        rng.bernoulli(0.7) ? EventSource::kTelescope : EventSource::kHoneypot;
    event.intensity = rng.exponential(0.01);
    if (event.source == EventSource::kTelescope) {
      event.top_port = ports[rng.next_below(5)];
      event.ip_proto = rng.bernoulli(0.8) ? 6 : 17;
    }
    s.events.push_back(event);
  }
  return s;
}

Query random_query(Rng& rng, const Scenario& s) {
  Query q;
  if (rng.bernoulli(0.4)) {
    const double day0 = static_cast<double>(
        s.window.day_start(static_cast<int>(rng.next_below(25))));
    q.between(day0, day0 + static_cast<double>(rng.uniform_int(1, 7)) *
                               static_cast<double>(kSecondsPerDay));
  }
  if (rng.bernoulli(0.4)) {
    const SourceFilter filters[] = {SourceFilter::kTelescope,
                                    SourceFilter::kHoneypot,
                                    SourceFilter::kCombined};
    q.from_source(filters[rng.next_below(3)]);
  }
  if (rng.bernoulli(0.4)) {
    const int lengths[] = {8, 16, 24, 32};
    const auto anchor = s.pool[rng.next_below(s.pool.size())];
    q.in_prefix(net::Prefix(anchor, lengths[rng.next_below(4)]));
  }
  if (rng.bernoulli(0.3))
    q.in_asn(static_cast<meta::Asn>(98 + rng.next_below(36)));
  if (rng.bernoulli(0.3))
    q.in_country(rng.bernoulli(0.9)
                     ? meta::CountryCode(kCountries[rng.next_below(8)])
                     : meta::unknown_country());
  if (rng.bernoulli(0.3)) {
    const std::uint16_t ports[] = {0, 53, 80, 123, 443, 9999};
    q.on_port(ports[rng.next_below(6)]);
  }
  if (rng.bernoulli(0.3)) q.at_least(rng.uniform(0.0, 200.0));
  return q;
}

void expect_equal_results(const Snapshot& snap, const ScanOracle& oracle,
                          const Query& q) {
  const std::string label = to_string(q);
  EXPECT_EQ(snap.count(q), oracle.count(q)) << label;
  EXPECT_EQ(snap.unique_targets(q), oracle.unique_targets(q)) << label;

  const auto snap_daily = snap.daily_attacks(q);
  const auto oracle_daily = oracle.daily_attacks(q);
  ASSERT_EQ(snap_daily.num_days(), oracle_daily.num_days());
  for (int d = 0; d < snap_daily.num_days(); ++d)
    EXPECT_DOUBLE_EQ(snap_daily.at(d), oracle_daily.at(d))
        << label << " day " << d;

  EXPECT_EQ(snap.top_targets(q, 5), oracle.top_targets(q, 5)) << label;
  EXPECT_EQ(snap.top_asns(q, 5), oracle.top_asns(q, 5)) << label;

  const auto snap_countries = snap.country_ranking(q);
  const auto oracle_countries = oracle.country_ranking(q);
  ASSERT_EQ(snap_countries.size(), oracle_countries.size()) << label;
  for (std::size_t i = 0; i < snap_countries.size(); ++i) {
    EXPECT_EQ(snap_countries[i].country, oracle_countries[i].country) << label;
    EXPECT_EQ(snap_countries[i].targets, oracle_countries[i].targets) << label;
    EXPECT_DOUBLE_EQ(snap_countries[i].share, oracle_countries[i].share)
        << label;
  }

  EXPECT_EQ(snap.match_rows(q).size(), snap.count(q)) << label;
}

class QueryPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueryPropertyTest, SnapshotMatchesOracleOnRandomQueries) {
  const auto scenario = make_scenario(GetParam(), 2000);
  const auto snap =
      Snapshot::build(scenario.window, scenario.events,
                      BuildContext{scenario.pfx2as, scenario.geo});
  const ScanOracle oracle(scenario.events, scenario.window, scenario.pfx2as,
                          scenario.geo);
  // The unfiltered query plus a battery of random filter combinations.
  expect_equal_results(*snap, oracle, Query{});
  Rng rng(GetParam() ^ 0x9e3779b9u);
  for (int i = 0; i < 60; ++i)
    expect_equal_results(*snap, oracle, random_query(rng, scenario));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 20170301u));

// ---------------------------------------------------------------------------
// Segmented snapshots: any (segment_days, threads) combination must produce
// results — global row ids included — identical to a single-segment full
// rebuild and to the oracle. This pins the ordering invariant in segment.h.
// ---------------------------------------------------------------------------

using SegmentedParam = std::tuple<std::uint64_t, int, int>;

class SegmentedSnapshotPropertyTest
    : public ::testing::TestWithParam<SegmentedParam> {};

TEST_P(SegmentedSnapshotPropertyTest, AnyGranularityMatchesFullRebuild) {
  const auto [seed, segment_days, threads] = GetParam();
  const auto scenario = make_scenario(seed, 2000);
  const auto full =
      Snapshot::build(scenario.window, scenario.events,
                      BuildContext{scenario.pfx2as, scenario.geo});
  const auto segmented = Snapshot::build(
      scenario.window, scenario.events,
      BuildContext{scenario.pfx2as, scenario.geo, threads, segment_days});
  const ScanOracle oracle(scenario.events, scenario.window, scenario.pfx2as,
                          scenario.geo);

  ASSERT_EQ(full->num_segments(), 1u);
  EXPECT_GT(segmented->num_segments(), 1u);
  ASSERT_EQ(segmented->size(), full->size());
  EXPECT_EQ(segmented->match_rows(Query{}), full->match_rows(Query{}));

  expect_equal_results(*segmented, oracle, Query{});
  Rng rng(seed ^ 0xa5a5a5a5u);
  for (int i = 0; i < 40; ++i) {
    const Query q = random_query(rng, scenario);
    expect_equal_results(*segmented, oracle, q);
    EXPECT_EQ(segmented->match_rows(q), full->match_rows(q)) << to_string(q);
    // Per-segment index selection can only improve on the monolithic plan:
    // candidate totals never exceed the single-segment estimate.
    EXPECT_LE(segmented->plan(q).candidates, full->plan(q).candidates)
        << to_string(q);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GranularityAndThreads, SegmentedSnapshotPropertyTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(1u, 20170301u),
                       ::testing::Values(1, 3, 7),
                       ::testing::Values(1, 4, 8)));

TEST(QueryPlannerTest, PicksTheCheapestIndex) {
  const auto scenario = make_scenario(11, 3000);
  const auto snap =
      Snapshot::build(scenario.window, scenario.events,
                      BuildContext{scenario.pfx2as, scenario.geo});

  EXPECT_EQ(snap->plan(Query{}).choice, IndexChoice::kFullScan);
  EXPECT_EQ(snap->plan(Query{}).candidates, snap->size());

  // A /32 target is the most selective filter on offer.
  Query by_target;
  by_target.in_prefix(net::Prefix(scenario.pool[0], 32));
  by_target.in_country(meta::CountryCode("US"));
  EXPECT_EQ(snap->plan(by_target).choice, IndexChoice::kTarget32);

  Query by_slash24;
  by_slash24.in_prefix(net::Prefix(scenario.pool[0], 24));
  EXPECT_EQ(snap->plan(by_slash24).choice, IndexChoice::kSlash24);

  // A /8 prefix has no hash index; with no other filter it full-scans.
  Query by_slash8;
  by_slash8.in_prefix(net::Prefix(scenario.pool[0], 8));
  EXPECT_EQ(snap->plan(by_slash8).choice, IndexChoice::kFullScan);

  Query by_asn;
  by_asn.in_asn(101);
  EXPECT_EQ(snap->plan(by_asn).choice, IndexChoice::kAsn);

  Query by_country;
  by_country.in_country(meta::CountryCode("CN"));
  EXPECT_EQ(snap->plan(by_country).choice, IndexChoice::kCountry);

  // A time filter alone uses the contiguous start-sorted range...
  Query one_day;
  const double day0 = static_cast<double>(scenario.window.day_start(3));
  one_day.between(day0, day0 + static_cast<double>(kSecondsPerDay));
  const auto time_plan = snap->plan(one_day);
  EXPECT_EQ(time_plan.choice, IndexChoice::kTimeRange);
  EXPECT_LE(time_plan.candidates, snap->size() / 10);

  // ...and combined with an equality filter, the postings are clipped to
  // that range first, so they cost even less than the day itself.
  Query narrow_time = by_country;
  narrow_time.between(day0, day0 + static_cast<double>(kSecondsPerDay));
  const auto plan = snap->plan(narrow_time);
  EXPECT_EQ(plan.choice, IndexChoice::kCountry);
  EXPECT_LE(plan.candidates, time_plan.candidates);

  // An unknown key has empty postings: zero candidates.
  Query miss;
  miss.in_asn(424242);
  EXPECT_EQ(snap->plan(miss).choice, IndexChoice::kAsn);
  EXPECT_EQ(snap->plan(miss).candidates, 0u);
  EXPECT_EQ(snap->count(miss), 0u);
}

TEST(QuerySnapshotTest, TimeRangeBoundariesAreHalfOpen) {
  StudyWindow window;
  window.end = civil_from_days(days_from_civil(window.start) + 4);
  meta::PrefixToAsMap pfx2as;
  meta::GeoDatabase geo;
  const double day1 = static_cast<double>(window.day_start(1));

  std::vector<AttackEvent> events(3);
  events[0].start = day1 - 1.0;  // just before the range
  events[1].start = day1;        // exactly at begin: included
  events[2].start = day1 + static_cast<double>(kSecondsPerDay);  // at end: excluded
  for (auto& event : events) {
    event.target = Ipv4Addr(10, 0, 0, 1);
    event.end = event.start + 60.0;
  }
  const auto snap = Snapshot::build(window, events, BuildContext{pfx2as, geo});
  Query q;
  q.between(day1, day1 + static_cast<double>(kSecondsPerDay));
  EXPECT_EQ(snap->count(q), 1u);
  const auto rows = snap->match_rows(q);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(snap->start_at(rows[0]), day1);
}

TEST(QuerySnapshotTest, FromStoreMatchesEventStoreSummaries) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const auto& pfx2as = world->population.pfx2as();
  const auto& geo = world->population.geo();
  const auto snap =
      Snapshot::from_store(world->store, BuildContext{pfx2as, geo});
  ASSERT_EQ(snap->size(), world->store.size());

  for (const auto filter : {SourceFilter::kTelescope, SourceFilter::kHoneypot,
                            SourceFilter::kCombined}) {
    const auto summary = world->store.summarize(filter, pfx2as);
    Query q;
    q.from_source(filter);
    EXPECT_EQ(snap->count(q), summary.events);
    EXPECT_EQ(snap->unique_targets(q), summary.unique_targets);
  }

  // The daily series agrees with the batch daily_breakdown.
  const auto breakdown =
      world->store.daily_breakdown(SourceFilter::kCombined, pfx2as);
  const auto daily = snap->daily_attacks(Query{});
  ASSERT_EQ(daily.num_days(), breakdown.attacks.num_days());
  for (int d = 0; d < daily.num_days(); ++d)
    EXPECT_DOUBLE_EQ(daily.at(d), breakdown.attacks.at(d)) << "day " << d;
}

// ---------------------------------------------------------------------------
// Satellite regression: the Table-4 country ranking served by the query
// engine must be byte-identical to the legacy EventStore linear scan.
// ---------------------------------------------------------------------------

std::string render_ranking(const std::vector<core::CountryCount>& ranking) {
  std::ostringstream out;
  for (const auto& row : ranking) {
    out << row.country.to_string() << " " << row.targets << " "
        << percent(row.share, 2) << "\n";
  }
  return out.str();
}

TEST(QueryTable4RegressionTest, CountryRankingIsByteIdenticalToLegacyScan) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const auto& geo = world->population.geo();
  const auto snap = Snapshot::from_store(
      world->store, BuildContext{world->population.pfx2as(), geo});

  for (const auto filter : {SourceFilter::kTelescope, SourceFilter::kHoneypot,
                            SourceFilter::kCombined}) {
    const auto legacy = world->store.country_ranking(filter, geo);
    Query q;
    q.from_source(filter);
    const auto served = snap->country_ranking(q);

    ASSERT_EQ(served.size(), legacy.size()) << core::to_string(filter);
    for (std::size_t i = 0; i < served.size(); ++i) {
      EXPECT_EQ(served[i].country, legacy[i].country);
      EXPECT_EQ(served[i].targets, legacy[i].targets);
      // Exact double equality: same counts, same division.
      EXPECT_EQ(served[i].share, legacy[i].share);
    }
    EXPECT_EQ(render_ranking(served), render_ranking(legacy))
        << core::to_string(filter);
  }
}

// ---------------------------------------------------------------------------
// Query::cache_key() — the canonical hash the serve result cache keys on.
// ---------------------------------------------------------------------------

/// One mutation per Query field. Extending Query means extending this list
/// (the test below fails when a new field leaves the key unchanged only if
/// the list names it, so keep it exhaustive).
std::vector<std::pair<std::string, Query>> single_field_variants() {
  std::vector<std::pair<std::string, Query>> variants;
  variants.emplace_back("time", Query{}.between(100.0, 200.0));
  variants.emplace_back("time.begin", Query{}.between(101.0, 200.0));
  variants.emplace_back("time.end", Query{}.between(100.0, 201.0));
  variants.emplace_back("source.telescope",
                        Query{}.from_source(core::SourceFilter::kTelescope));
  variants.emplace_back("source.honeypot",
                        Query{}.from_source(core::SourceFilter::kHoneypot));
  variants.emplace_back(
      "prefix", Query{}.in_prefix(net::Prefix(net::Ipv4Addr(0x0a000000u), 8)));
  variants.emplace_back(
      "prefix.length",
      Query{}.in_prefix(net::Prefix(net::Ipv4Addr(0x0a000000u), 9)));
  variants.emplace_back("asn", Query{}.in_asn(65000));
  variants.emplace_back("asn.other", Query{}.in_asn(65001));
  variants.emplace_back("country", Query{}.in_country(meta::CountryCode("US")));
  variants.emplace_back("country.other",
                        Query{}.in_country(meta::CountryCode("DE")));
  variants.emplace_back("port", Query{}.on_port(80));
  variants.emplace_back("port.other", Query{}.on_port(443));
  variants.emplace_back("min_intensity", Query{}.at_least(1.5));
  variants.emplace_back("min_intensity.other", Query{}.at_least(1.6));
  return variants;
}

TEST(QueryCacheKeyTest, AnyFieldChangeChangesTheKey) {
  const std::uint64_t base = Query{}.cache_key();
  const auto variants = single_field_variants();
  // Every single-field mutation moves the key away from the default...
  for (const auto& [name, query] : variants)
    EXPECT_NE(query.cache_key(), base) << name;
  // ...and away from every other mutation (field tags keep e.g. asn=80
  // and port=80 apart).
  for (std::size_t i = 0; i < variants.size(); ++i)
    for (std::size_t j = i + 1; j < variants.size(); ++j)
      EXPECT_NE(variants[i].second.cache_key(), variants[j].second.cache_key())
          << variants[i].first << " vs " << variants[j].first;
}

TEST(QueryCacheKeyTest, KeyIsStableForEqualQueries) {
  const Query a = Query{}.between(100.0, 200.0).on_port(80).at_least(0.5);
  const Query b = Query{}.between(100.0, 200.0).on_port(80).at_least(0.5);
  EXPECT_EQ(a.cache_key(), b.cache_key());
  EXPECT_EQ(a.cache_key(), a.cache_key());
}

// ---------------------------------------------------------------------------
// ExecBudget enforcement inside Snapshot execution.
// ---------------------------------------------------------------------------

TEST(QueryBudgetTest, RowBudgetAbortsDeterministically) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const auto snapshot = Snapshot::from_store(
      world->store, BuildContext{world->population.pfx2as(),
                                 world->population.geo()});
  const Query all;
  ExecBudget tight;
  tight.max_rows = 10;  // far below the small world's event count
  ASSERT_GT(snapshot->count(all), 10u);
  for (int attempt = 0; attempt < 3; ++attempt) {
    try {
      snapshot->count(all, tight);
      FAIL() << "expected BudgetExceeded";
    } catch (const BudgetExceeded& e) {
      EXPECT_EQ(e.kind(), BudgetExceeded::Kind::kRows);
      EXPECT_EQ(e.limit(), 10u);
    }
  }
  // Aggregations all charge the same accounting.
  EXPECT_THROW(snapshot->unique_targets(all, tight), BudgetExceeded);
  EXPECT_THROW(snapshot->daily_attacks(all, tight), BudgetExceeded);
  EXPECT_THROW(snapshot->top_targets(all, 5, tight), BudgetExceeded);
  EXPECT_THROW(snapshot->top_asns(all, 5, tight), BudgetExceeded);
  EXPECT_THROW(snapshot->top_countries(all, 5, tight), BudgetExceeded);
  EXPECT_THROW(snapshot->match_rows(all, tight), BudgetExceeded);
}

TEST(QueryBudgetTest, SufficientBudgetDoesNotPerturbResults) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const auto snapshot = Snapshot::from_store(
      world->store, BuildContext{world->population.pfx2as(),
                                 world->population.geo()});
  const Query all;
  ExecBudget roomy;
  roomy.max_rows = snapshot->size() + 1;
  EXPECT_EQ(snapshot->count(all, roomy), snapshot->count(all));
  EXPECT_EQ(snapshot->top_asns(all, 5, roomy), snapshot->top_asns(all, 5));
}

TEST(QueryBudgetTest, RowBudgetIsIdenticalAcrossSegmentGranularities) {
  // Regression: the row budget must charge MATCHED rows, not visited
  // candidates. Candidate counts depend on which access path each
  // per-segment planner picks, so charging candidates made the same query
  // with the same max_rows succeed at one --segment-days and throw at
  // another. Matched rows are a pure function of (dataset, query).
  const auto scenario = make_scenario(0xb0d6e7, 2000);
  const int granularities[] = {0, 1, 7};
  std::vector<std::shared_ptr<const Snapshot>> snaps;
  for (const int days : granularities)
    snaps.push_back(Snapshot::build(
        scenario.window, scenario.events,
        BuildContext{scenario.pfx2as, scenario.geo, 1, days}));

  // Find a query whose candidate counts differ across granularities AND
  // exceed its matched count — exactly the shape where candidate-charging
  // diverges: with max_rows == matched, a candidate-charging executor
  // throws on the granularity that scans more than it matches.
  Rng rng(20260808);
  bool exercised = false;
  for (int attempt = 0; attempt < 200; ++attempt) {
    const Query q = random_query(rng, scenario);
    const std::uint64_t matched = snaps[0]->count(q);
    if (matched < 2) continue;
    std::uint64_t max_candidates = 0;
    for (const auto& snap : snaps)
      max_candidates = std::max(max_candidates, snap->plan(q).candidates);
    if (max_candidates <= matched) continue;
    exercised = true;

    ExecBudget exact;
    exact.max_rows = matched;
    for (std::size_t g = 0; g < snaps.size(); ++g) {
      EXPECT_EQ(snaps[g]->count(q, exact), matched)
          << "segment_days=" << granularities[g];
      EXPECT_EQ(snaps[g]->match_rows(q, exact), snaps[0]->match_rows(q, exact))
          << "segment_days=" << granularities[g];
    }
    ExecBudget tight;
    tight.max_rows = matched - 1;
    for (std::size_t g = 0; g < snaps.size(); ++g) {
      try {
        snaps[g]->count(q, tight);
        FAIL() << "expected BudgetExceeded at segment_days="
               << granularities[g];
      } catch (const BudgetExceeded& e) {
        EXPECT_EQ(e.kind(), BudgetExceeded::Kind::kRows);
      }
    }
    if (exercised && attempt > 50) break;  // a handful of shapes is plenty
  }
  ASSERT_TRUE(exercised) << "no query separated candidates from matches";
}

TEST(QueryBudgetTest, ExpiredDeadlineSurfacesAsTimeKind) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const auto snapshot = Snapshot::from_store(
      world->store, BuildContext{world->population.pfx2as(),
                                 world->population.geo()});
  ExecBudget expired;
  expired.deadline_ns = 1;  // monotonic epoch start — always in the past
  try {
    snapshot->count(Query{}, expired);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.kind(), BudgetExceeded::Kind::kTime);
  }
}

}  // namespace
}  // namespace dosm::query
