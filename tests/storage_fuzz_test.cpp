// Seeded corruption property test for the DOSARCH1 segment archive.
//
// The property: for ANY single-byte flip, truncation, or outright garbage
// file, opening the archive and decoding every segment either succeeds with
// well-formed frames or throws exactly core::SerializeError — it never
// crashes, never throws anything else, and never allocates proportional to
// hostile header fields. Runs under ASan in CI, so an out-of-bounds read or
// a giant reserve fails the job. Style mirrors serialize_fuzz_test.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/serialize.h"
#include "query/build_context.h"
#include "query/snapshot.h"
#include "storage/archive.h"

namespace dosm::storage {
namespace {

std::string scratch_path() {
  return (std::filesystem::temp_directory_path() / "dosm_storage_fuzz.bin")
      .string();
}

StudyWindow fuzz_window() {
  StudyWindow window;
  window.end = civil_from_days(days_from_civil(window.start) + 9);
  return window;
}

/// A small valid archive (a handful of segments, a few thousand rows) as an
/// in-memory byte string the corruption loops can mutate.
std::string valid_archive() {
  const StudyWindow window = fuzz_window();
  const double t0 = static_cast<double>(window.start_time());
  std::vector<core::AttackEvent> events;
  for (int i = 0; i < 3000; ++i) {
    core::AttackEvent event;
    event.source =
        i % 2 ? core::EventSource::kHoneypot : core::EventSource::kTelescope;
    event.target = net::Ipv4Addr(0x0a000000u + static_cast<std::uint32_t>(i));
    event.start = t0 + i * 250.0;
    event.end = event.start + 90.0;
    event.intensity = 1.0 + i % 40;
    if (event.source == core::EventSource::kTelescope) {
      event.top_port = static_cast<std::uint16_t>(i % 7 ? 80 : 53);
      event.ip_proto = 6;
    }
    events.push_back(event);
  }
  const meta::PrefixToAsMap pfx2as;
  const meta::GeoDatabase geo;
  const auto snapshot = query::Snapshot::build(
      window, events, query::BuildContext{pfx2as, geo, 1, /*segment_days=*/2});

  const std::string path = scratch_path();
  write_archive(path, *snapshot);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  return bytes;
}

/// The property under test: open + full decode + zone clip must return
/// cleanly or throw exactly core::SerializeError; anything else (other
/// exception types, crashes, sanitizer reports) fails.
void expect_loads_or_rejects(const std::string& bytes) {
  const std::string path = scratch_path();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    const ArchiveReader reader(path);
    for (std::uint32_t id = 0; id < reader.num_segments(); ++id) {
      const auto segment = reader.load(id);
      ASSERT_EQ(segment->size(), reader.meta(id).rows);
      const double mid =
          (reader.meta(id).start_min + reader.meta(id).start_max) / 2;
      reader.clip(id, mid, mid + 1000.0);
    }
  } catch (const core::SerializeError&) {
    // Rejection is the other acceptable outcome.
  }
  std::remove(path.c_str());
}

TEST(StorageFuzz, SingleByteFlipsNeverCrashOrOverAllocate) {
  const std::string archive = valid_archive();
  Rng rng(20260808);
  for (int iter = 0; iter < 700; ++iter) {
    std::string corrupt = archive;
    const auto pos = static_cast<std::size_t>(rng.next_below(corrupt.size()));
    corrupt[pos] = static_cast<char>(rng.next_below(256));
    expect_loads_or_rejects(corrupt);
  }
}

TEST(StorageFuzz, TailAndTocFlipsNeverCrash) {
  // The TOC and tail carry every offset/count the reader trusts; hammer the
  // last kilobyte far harder than uniform sampling would.
  const std::string archive = valid_archive();
  Rng rng(0x70c70c);
  const std::size_t tail_span = std::min<std::size_t>(1024, archive.size());
  for (int iter = 0; iter < 600; ++iter) {
    std::string corrupt = archive;
    const std::size_t pos =
        corrupt.size() - 1 - rng.next_below(tail_span);
    corrupt[pos] = static_cast<char>(rng.next_below(256));
    expect_loads_or_rejects(corrupt);
  }
}

TEST(StorageFuzz, TruncationsNeverCrash) {
  const std::string archive = valid_archive();
  Rng rng(987654321);
  for (int iter = 0; iter < 300; ++iter)
    expect_loads_or_rejects(
        archive.substr(0, rng.next_below(archive.size())));
  // Every boundary-adjacent length around the header and the tail.
  for (std::size_t cut = 0; cut < 64 && cut < archive.size(); ++cut)
    expect_loads_or_rejects(archive.substr(0, cut));
  for (std::size_t back = 1; back < 64 && back < archive.size(); ++back)
    expect_loads_or_rejects(archive.substr(0, archive.size() - back));
}

TEST(StorageFuzz, FlipPlusTruncationCombined) {
  const std::string archive = valid_archive();
  Rng rng(0xfeedbeef);
  for (int iter = 0; iter < 300; ++iter) {
    std::string corrupt =
        archive.substr(0, 1 + rng.next_below(archive.size() - 1));
    const auto pos = static_cast<std::size_t>(rng.next_below(corrupt.size()));
    corrupt[pos] = static_cast<char>(rng.next_below(256));
    expect_loads_or_rejects(corrupt);
  }
}

TEST(StorageFuzz, GarbageFilesNeverCrash) {
  Rng rng(0xbadf11e);
  for (int iter = 0; iter < 200; ++iter) {
    std::string garbage(rng.next_below(4096), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.next_below(256));
    expect_loads_or_rejects(garbage);
  }
  // Valid magic followed by garbage: past the first gate, still rejected.
  std::string fake(kArchiveMagic, sizeof(kArchiveMagic));
  for (int iter = 0; iter < 100; ++iter) {
    std::string body(64 + rng.next_below(512), '\0');
    for (char& c : body) c = static_cast<char>(rng.next_below(256));
    expect_loads_or_rejects(fake + body);
  }
  expect_loads_or_rejects("");
}

TEST(StorageFuzz, UncorruptedArchiveStillLoads) {
  // Sanity anchor for the property: the pristine archive decodes fully.
  const std::string archive = valid_archive();
  const std::string path = scratch_path();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(archive.data(), static_cast<std::streamsize>(archive.size()));
  }
  const ArchiveReader reader(path);
  EXPECT_GT(reader.num_segments(), 2u);
  std::size_t rows = 0;
  for (std::uint32_t id = 0; id < reader.num_segments(); ++id)
    rows += reader.load(id)->size();
  EXPECT_EQ(rows, 3000u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dosm::storage
