// Packet encode/decode round-trip and checksum tests.
#include <gtest/gtest.h>

#include "net/headers.h"

namespace dosm::net {
namespace {

PacketRecord tcp_record() {
  PacketRecord rec;
  rec.ts_sec = 1425168000;
  rec.ts_usec = 123456;
  rec.src = Ipv4Addr(93, 184, 216, 34);
  rec.dst = Ipv4Addr(44, 12, 34, 56);
  rec.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  rec.src_port = 80;
  rec.dst_port = 54321;
  rec.tcp_flags = tcp_flags::kSyn | tcp_flags::kAck;
  rec.ttl = 57;
  return rec;
}

TEST(InternetChecksum, KnownVector) {
  // RFC 1071 example-style vector.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  const auto sum = internet_checksum(data);
  // Verifies the defining property: checksum over data + checksum == 0.
  std::vector<std::uint8_t> with_sum(data, data + sizeof(data));
  with_sum.push_back(static_cast<std::uint8_t>(sum >> 8));
  with_sum.push_back(static_cast<std::uint8_t>(sum & 0xff));
  EXPECT_EQ(internet_checksum(with_sum), 0);
}

TEST(InternetChecksum, OddLengthPads) {
  const std::uint8_t data[] = {0xab};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xab00 & 0xffff));
}

TEST(EncodeDecode, TcpRoundTrip) {
  const auto rec = tcp_record();
  const auto bytes = encode_packet(rec);
  ASSERT_EQ(bytes.size(), 40u);
  bool checksum_ok = false;
  const auto decoded = decode_packet(bytes, rec.ts_sec, rec.ts_usec, &checksum_ok);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(checksum_ok);
  EXPECT_EQ(decoded->src, rec.src);
  EXPECT_EQ(decoded->dst, rec.dst);
  EXPECT_EQ(decoded->proto, rec.proto);
  EXPECT_EQ(decoded->src_port, 80);
  EXPECT_EQ(decoded->dst_port, 54321);
  EXPECT_EQ(decoded->tcp_flags, tcp_flags::kSyn | tcp_flags::kAck);
  EXPECT_EQ(decoded->ttl, 57);
  EXPECT_EQ(decoded->ip_len, 40);
  EXPECT_EQ(decoded->ts_sec, rec.ts_sec);
  EXPECT_EQ(decoded->ts_usec, rec.ts_usec);
}

TEST(EncodeDecode, UdpRoundTrip) {
  PacketRecord rec;
  rec.src = Ipv4Addr(10, 0, 0, 1);
  rec.dst = Ipv4Addr(10, 0, 0, 2);
  rec.proto = static_cast<std::uint8_t>(IpProto::kUdp);
  rec.src_port = 53;
  rec.dst_port = 33333;
  const auto bytes = encode_packet(rec);
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->is_udp());
  EXPECT_EQ(decoded->src_port, 53);
  EXPECT_EQ(decoded->dst_port, 33333);
}

TEST(EncodeDecode, IcmpEchoReplyRoundTrip) {
  PacketRecord rec;
  rec.src = Ipv4Addr(1, 1, 1, 1);
  rec.dst = Ipv4Addr(44, 0, 0, 1);
  rec.proto = static_cast<std::uint8_t>(IpProto::kIcmp);
  rec.icmp_type = static_cast<std::uint8_t>(IcmpType::kEchoReply);
  const auto bytes = encode_packet(rec);
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->is_icmp());
  EXPECT_EQ(decoded->icmp_type, 0);
  EXPECT_FALSE(decoded->has_quoted);
}

TEST(EncodeDecode, IcmpUnreachableCarriesQuotedDatagram) {
  PacketRecord rec;
  rec.src = Ipv4Addr(5, 5, 5, 5);          // router
  rec.dst = Ipv4Addr(44, 7, 7, 7);         // telescope (spoofed source)
  rec.proto = static_cast<std::uint8_t>(IpProto::kIcmp);
  rec.icmp_type = static_cast<std::uint8_t>(IcmpType::kDestUnreachable);
  rec.icmp_code = 3;
  rec.has_quoted = true;
  rec.quoted_proto = static_cast<std::uint8_t>(IpProto::kUdp);
  rec.quoted_src = rec.dst;
  rec.quoted_dst = Ipv4Addr(9, 9, 9, 9);   // the victim
  rec.quoted_src_port = 40000;
  rec.quoted_dst_port = 27015;
  const auto bytes = encode_packet(rec);
  ASSERT_EQ(bytes.size(), 20u + 8u + 20u + 8u);
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->has_quoted);
  EXPECT_EQ(decoded->quoted_proto, static_cast<std::uint8_t>(IpProto::kUdp));
  EXPECT_EQ(decoded->quoted_src, rec.quoted_src);
  EXPECT_EQ(decoded->quoted_dst, rec.quoted_dst);
  EXPECT_EQ(decoded->quoted_src_port, 40000);
  EXPECT_EQ(decoded->quoted_dst_port, 27015);
}

TEST(EncodeDecode, OtherProtocolBareHeader) {
  PacketRecord rec;
  rec.src = Ipv4Addr(2, 2, 2, 2);
  rec.dst = Ipv4Addr(3, 3, 3, 3);
  rec.proto = static_cast<std::uint8_t>(IpProto::kIgmp);
  const auto bytes = encode_packet(rec);
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->proto, static_cast<std::uint8_t>(IpProto::kIgmp));
}

TEST(Decode, RejectsGarbage) {
  EXPECT_FALSE(decode_packet({}).has_value());
  const std::uint8_t short_buf[10] = {0x45};
  EXPECT_FALSE(decode_packet(short_buf).has_value());
  std::uint8_t not_ipv4[20] = {0x65};  // version 6
  EXPECT_FALSE(decode_packet(not_ipv4).has_value());
}

TEST(Decode, ToleratesTruncatedTransport) {
  // Valid IP header claiming TCP, but the transport header is missing:
  // decode keeps the IP view with zero ports.
  auto bytes = encode_packet(tcp_record());
  bytes.resize(24);  // 20 IP + 4 transport bytes (under the 14 needed)
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->src_port, 0);
  EXPECT_EQ(decoded->tcp_flags, 0);
}

TEST(Decode, ReportsBadChecksum) {
  auto bytes = encode_packet(tcp_record());
  bytes[10] ^= 0xff;  // corrupt the IP checksum
  bool checksum_ok = true;
  const auto decoded = decode_packet(bytes, 0, 0, &checksum_ok);
  ASSERT_TRUE(decoded.has_value());  // tolerated but flagged
  EXPECT_FALSE(checksum_ok);
}

TEST(PacketRecord, TimestampCombinesParts) {
  PacketRecord rec;
  rec.ts_sec = 100;
  rec.ts_usec = 500000;
  EXPECT_DOUBLE_EQ(rec.timestamp(), 100.5);
}

}  // namespace
}  // namespace dosm::net
