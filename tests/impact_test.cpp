// Web-impact analysis tests (§5): event x DNS joins, co-hosting, daily
// affected-site series.
#include <gtest/gtest.h>

#include "core/impact.h"

namespace dosm::core {
namespace {

using net::Ipv4Addr;

class ImpactTest : public ::testing::Test {
 protected:
  ImpactTest()
      : t0_(static_cast<double>(window_.start_time())),
        dns_(window_.num_days()) {}

  dns::DomainId host_site(const std::string& name, Ipv4Addr ip, int day = 0) {
    const auto id = dns_.add_domain(name, day);
    dns::WebsiteRecord record;
    record.www_a = ip;
    dns_.record_change(id, day, record);
    return id;
  }

  void add_telescope(Ipv4Addr target, int day, double intensity = 1.0,
                     std::uint16_t port = 80, std::uint8_t proto = 6) {
    AttackEvent event;
    event.source = EventSource::kTelescope;
    event.target = target;
    event.start = t0_ + day * 86400.0 + 3600.0;
    event.end = event.start + 600.0;
    event.intensity = intensity;
    event.ip_proto = proto;
    event.num_ports = 1;
    event.top_port = port;
    store_.add(event);
  }

  void add_honeypot(Ipv4Addr target, int day, double duration_s,
                    amppot::ReflectionProtocol protocol =
                        amppot::ReflectionProtocol::kNtp) {
    AttackEvent event;
    event.source = EventSource::kHoneypot;
    event.target = target;
    event.start = t0_ + day * 86400.0 + 3600.0;
    event.end = event.start + duration_s;
    event.intensity = 50.0;
    event.reflection = protocol;
    store_.add(event);
  }

  StudyWindow window_{};
  double t0_;
  dns::SnapshotStore dns_;
  EventStore store_{window_};
};

TEST_F(ImpactTest, CountsAffectedSitesPerDay) {
  const Ipv4Addr shared(10, 0, 0, 1);
  host_site("a.com", shared);
  host_site("b.com", shared);
  host_site("c.com", Ipv4Addr(10, 0, 0, 2));
  add_telescope(shared, 5);
  add_telescope(Ipv4Addr(10, 0, 0, 2), 7);
  store_.finalize();
  dns_.build_reverse_index();

  const ImpactAnalysis impact(store_, dns_);
  EXPECT_DOUBLE_EQ(impact.affected_daily().at(5), 2.0);
  EXPECT_DOUBLE_EQ(impact.affected_daily().at(7), 1.0);
  EXPECT_DOUBLE_EQ(impact.affected_daily().at(6), 0.0);
  EXPECT_EQ(impact.attacked_domains(), 3u);
  EXPECT_EQ(impact.web_domains(), 3u);
  EXPECT_DOUBLE_EQ(impact.attacked_domain_fraction(), 1.0);
}

TEST_F(ImpactTest, SameDayRepeatsDoNotDoubleCountSites) {
  const Ipv4Addr shared(10, 0, 0, 1);
  host_site("a.com", shared);
  add_telescope(shared, 5);
  add_telescope(shared, 5);  // second attack, same day, same IP
  store_.finalize();
  dns_.build_reverse_index();
  const ImpactAnalysis impact(store_, dns_);
  EXPECT_DOUBLE_EQ(impact.affected_daily().at(5), 1.0);
  // But the domain records two touches.
  EXPECT_EQ(impact.domain_info(0).attack_count(), 2u);
}

TEST_F(ImpactTest, HistoricalMappingIsRespected) {
  // The site moves from IP1 to IP2 on day 10; an attack on IP1 on day 20
  // does NOT affect it, an attack on IP2 does.
  const Ipv4Addr ip1(10, 0, 0, 1), ip2(10, 0, 0, 2);
  const auto id = host_site("mover.com", ip1);
  dns::WebsiteRecord moved;
  moved.www_a = ip2;
  dns_.record_change(id, 10, moved);
  add_telescope(ip1, 20);
  add_telescope(ip2, 25);
  store_.finalize();
  dns_.build_reverse_index();
  const ImpactAnalysis impact(store_, dns_);
  EXPECT_DOUBLE_EQ(impact.affected_daily().at(20), 0.0);
  EXPECT_DOUBLE_EQ(impact.affected_daily().at(25), 1.0);
  ASSERT_EQ(impact.domain_info(id).attack_count(), 1u);
  EXPECT_EQ(impact.domain_info(id).touches[0].day, 25);
}

TEST_F(ImpactTest, CohostingHistogramUsesFirstAttackSnapshot) {
  const Ipv4Addr mega(10, 0, 0, 1);
  for (int i = 0; i < 150; ++i)
    host_site("m" + std::to_string(i) + ".com", mega);
  const Ipv4Addr single(10, 0, 0, 2);
  host_site("solo.com", single);
  add_telescope(mega, 3);
  add_telescope(mega, 9);  // second attack: IP already counted
  add_telescope(single, 4);
  add_telescope(Ipv4Addr(10, 9, 9, 9), 5);  // hosts nothing
  store_.finalize();
  dns_.build_reverse_index();
  const ImpactAnalysis impact(store_, dns_);
  EXPECT_EQ(impact.web_hosting_targets(), 2u);
  const auto& hist = impact.cohosting_histogram();
  EXPECT_EQ(hist.bin(0), 1u);  // solo.com's IP
  EXPECT_EQ(hist.bin(3), 1u);  // 150 sites -> (100, 1000] bin
  EXPECT_EQ(hist.total(), 2u);
}

TEST_F(ImpactTest, MediumSeriesFiltersByIntensity) {
  const Ipv4Addr a(10, 0, 0, 1), b(10, 0, 0, 2);
  host_site("a.com", a);
  host_site("b.com", b);
  add_telescope(a, 3, /*intensity=*/1.0);
  add_telescope(b, 4, /*intensity=*/99.0);  // far above mean
  store_.finalize();
  dns_.build_reverse_index();
  const ImpactAnalysis impact(store_, dns_);
  EXPECT_DOUBLE_EQ(impact.affected_daily().at(3), 1.0);
  EXPECT_DOUBLE_EQ(impact.affected_daily_medium().at(3), 0.0);
  EXPECT_DOUBLE_EQ(impact.affected_daily_medium().at(4), 1.0);
}

TEST_F(ImpactTest, ProtocolEmphasisOnWebTargets) {
  const Ipv4Addr web(10, 0, 0, 1), non_web(10, 0, 0, 9);
  host_site("site.com", web);
  add_telescope(web, 3, 1.0, 80, 6);    // TCP web-port on web target
  add_telescope(web, 4, 1.0, 22, 6);    // TCP non-web-port
  add_telescope(non_web, 5, 1.0, 80, 6);  // ignored: no sites
  add_telescope(web, 6, 1.0, 27015, 17);  // UDP on web target
  add_honeypot(web, 7, 600.0, amppot::ReflectionProtocol::kNtp);
  add_honeypot(web, 8, 600.0, amppot::ReflectionProtocol::kDns);
  store_.finalize();
  dns_.build_reverse_index();
  const ImpactAnalysis impact(store_, dns_);
  EXPECT_NEAR(impact.tcp_share_on_web_targets(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(impact.web_port_share_on_web_targets(), 0.5, 1e-9);
  EXPECT_NEAR(impact.ntp_share_on_web_targets(), 0.5, 1e-9);
}

TEST_F(ImpactTest, DomainAttackInfoQueries) {
  DomainAttackInfo info;
  info.touches = {{10, 0.2f, 300.0f, false},
                  {20, 0.9f, 16000.0f, true},
                  {30, 0.1f, 20000.0f, true}};
  EXPECT_TRUE(info.attacked());
  EXPECT_EQ(info.first_attack_day(), 10);
  EXPECT_NEAR(info.max_norm_intensity(), 0.9, 1e-6);
  EXPECT_NEAR(info.max_honeypot_duration(), 20000.0, 1e-3);
  EXPECT_EQ(info.latest_attack_on_or_before(25), 20);
  EXPECT_EQ(info.latest_attack_on_or_before(9), -1);
  EXPECT_EQ(info.latest_attack_on_or_before(100), 30);
  EXPECT_EQ(info.latest_long_attack_on_or_before(100, 4 * 3600.0), 30);
  EXPECT_EQ(info.latest_long_attack_on_or_before(25, 4 * 3600.0), 20);
  EXPECT_EQ(info.latest_long_attack_on_or_before(15, 4 * 3600.0), -1);
}

TEST_F(ImpactTest, TopPeaksOrdering) {
  const Ipv4Addr shared(10, 0, 0, 1);
  for (int i = 0; i < 5; ++i) host_site("p" + std::to_string(i) + ".com", shared);
  host_site("solo.com", Ipv4Addr(10, 0, 0, 2));
  add_telescope(shared, 100);
  add_telescope(Ipv4Addr(10, 0, 0, 2), 200);
  store_.finalize();
  dns_.build_reverse_index();
  const ImpactAnalysis impact(store_, dns_);
  const auto peaks = impact.top_peaks(2);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].first, 100);
  EXPECT_DOUBLE_EQ(peaks[0].second, 5.0);
  EXPECT_EQ(peaks[1].first, 200);
}

TEST_F(ImpactTest, UnregisteredDomainsDontCount) {
  // A site that first appears on day 50 is not affected by a day-10 attack
  // on its (future) IP.
  const Ipv4Addr ip(10, 0, 0, 1);
  host_site("late.com", ip, /*day=*/50);
  add_telescope(ip, 10);
  store_.finalize();
  dns_.build_reverse_index();
  const ImpactAnalysis impact(store_, dns_);
  EXPECT_EQ(impact.attacked_domains(), 0u);
  EXPECT_EQ(impact.web_domains(), 1u);
  EXPECT_DOUBLE_EQ(impact.affected_daily().at(10), 0.0);
}

}  // namespace
}  // namespace dosm::core
