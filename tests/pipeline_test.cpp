// Corsaro-style pipeline tests: plugin dispatch, stats, pcap replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <tuple>

#include "telescope/pipeline.h"

namespace dosm::telescope {
namespace {

using net::Ipv4Addr;
using net::IpProto;
using net::PacketRecord;

PacketRecord backscatter_at(double ts, Ipv4Addr victim) {
  PacketRecord rec;
  rec.ts_sec = static_cast<UnixSeconds>(ts);
  rec.ts_usec = static_cast<std::uint32_t>((ts - static_cast<UnixSeconds>(ts)) * 1e6);
  rec.src = victim;
  rec.dst = Ipv4Addr(44, 3, 2, 1);
  rec.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  rec.src_port = 80;
  rec.dst_port = 50000;
  rec.tcp_flags = net::tcp_flags::kSyn | net::tcp_flags::kAck;
  rec.ip_len = 40;
  return rec;
}

class CountingPlugin : public PacketPlugin {
 public:
  std::string name() const override { return "counting"; }
  void on_packet(const PacketRecord&) override { ++packets; }
  void on_end() override { ended = true; }
  int packets = 0;
  bool ended = false;
};

TEST(Pipeline, DispatchesToAllPlugins) {
  Pipeline pipeline;
  auto& a = pipeline.emplace_plugin<CountingPlugin>();
  auto& b = pipeline.emplace_plugin<CountingPlugin>();
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 5; ++i) packets.push_back(backscatter_at(100.0 + i, Ipv4Addr(1, 1, 1, 1)));
  pipeline.replay(packets);
  pipeline.finish();
  EXPECT_EQ(a.packets, 5);
  EXPECT_EQ(b.packets, 5);
  EXPECT_TRUE(a.ended);
  EXPECT_TRUE(b.ended);
}

TEST(Pipeline, RsdosDetectsAttackFromPackets) {
  Pipeline pipeline;
  auto& rsdos = pipeline.emplace_plugin<RsdosPlugin>();
  std::vector<PacketRecord> packets;
  // A dense flood: 300 packets over 120 seconds.
  for (int i = 0; i < 300; ++i)
    packets.push_back(backscatter_at(1000.0 + i * 0.4, Ipv4Addr(7, 7, 7, 7)));
  pipeline.replay(packets);
  pipeline.finish();
  ASSERT_EQ(rsdos.events().size(), 1u);
  const auto& event = rsdos.events()[0];
  EXPECT_EQ(event.victim, Ipv4Addr(7, 7, 7, 7));
  EXPECT_EQ(event.packets, 300u);
  EXPECT_EQ(event.top_port, 80);
  EXPECT_GE(event.max_pps, 2.0);
}

TEST(Pipeline, TrafficStatsCountsProtocols) {
  Pipeline pipeline;
  auto& stats = pipeline.emplace_plugin<TrafficStatsPlugin>();
  std::vector<PacketRecord> packets;
  packets.push_back(backscatter_at(1.0, Ipv4Addr(1, 1, 1, 1)));
  PacketRecord udp;
  udp.proto = static_cast<std::uint8_t>(IpProto::kUdp);
  udp.ip_len = 60;
  packets.push_back(udp);
  pipeline.replay(packets);
  pipeline.finish();
  EXPECT_EQ(stats.total_packets(), 2u);
  EXPECT_EQ(stats.backscatter_packets(), 1u);
  EXPECT_EQ(stats.per_protocol().at(static_cast<std::uint8_t>(IpProto::kTcp)), 1u);
  EXPECT_EQ(stats.per_protocol().at(static_cast<std::uint8_t>(IpProto::kUdp)), 1u);
  EXPECT_EQ(stats.total_bytes(), 100u);
}

TEST(Pipeline, ReplaysFromPcapStream) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  net::PcapWriter writer(stream);
  for (int i = 0; i < 100; ++i)
    writer.write_packet(backscatter_at(2000.0 + i, Ipv4Addr(8, 8, 8, 8)));
  net::PcapReader reader(stream);
  Pipeline pipeline;
  auto& rsdos = pipeline.emplace_plugin<RsdosPlugin>();
  const auto replayed = pipeline.replay(reader);
  pipeline.finish();
  EXPECT_EQ(replayed, 100u);
  ASSERT_EQ(rsdos.events().size(), 1u);
  EXPECT_EQ(rsdos.events()[0].packets, 100u);
  EXPECT_NEAR(rsdos.events()[0].duration(), 99.0, 0.01);
}

TEST(Pipeline, CustomThresholdsAreHonored) {
  ClassifierThresholds strict;
  strict.min_packets = 1000;
  Pipeline pipeline;
  auto& rsdos = pipeline.emplace_plugin<RsdosPlugin>(strict);
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 300; ++i)
    packets.push_back(backscatter_at(1000.0 + i * 0.4, Ipv4Addr(7, 7, 7, 7)));
  pipeline.replay(packets);
  pipeline.finish();
  EXPECT_EQ(rsdos.events().size(), 0u);
  EXPECT_EQ(rsdos.detector().flows_filtered(), 1u);
}

// Regression: the sequential RsdosPlugin collected end-of-trace events in
// the flow table's hash-flush order, while the sharded detector
// (parallel/detect.cpp) canonically sorts — so the two paths disagreed on
// byte order. on_end() must present (start, victim)-sorted events.
TEST(Pipeline, RsdosEventsAreCanonicallySortedAfterFinish) {
  Pipeline pipeline;
  ClassifierThresholds lax;
  lax.min_packets = 1;
  lax.min_duration_s = 0.0;
  lax.min_max_pps = 0.0;
  auto& rsdos = pipeline.emplace_plugin<RsdosPlugin>(lax);
  std::vector<PacketRecord> packets;
  // 16 victims, ascending insertion order; every flow gets the same start
  // timestamp so the canonical order is by victim address. A hash-order
  // flush emits most-recently-inserted victims first.
  for (int i = 1; i <= 16; ++i)
    packets.push_back(
        backscatter_at(100.0, Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i))));
  for (int i = 1; i <= 16; ++i)
    packets.push_back(
        backscatter_at(200.0, Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i))));
  pipeline.replay(packets);
  pipeline.finish();
  const auto& events = rsdos.events();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TelescopeEvent& a, const TelescopeEvent& b) {
                               return std::tie(a.start, a.victim) <
                                      std::tie(b.start, b.victim);
                             }));
}

}  // namespace
}  // namespace dosm::telescope
