// Metadata layer tests: longest-prefix match, geolocation, prefix-to-AS.
#include <gtest/gtest.h>

#include "meta/geo.h"
#include "meta/pfx2as.h"
#include "meta/prefix_map.h"

namespace dosm::meta {
namespace {

using net::Ipv4Addr;
using net::Prefix;

TEST(PrefixMap, LongestPrefixWins) {
  PrefixMap<int> map;
  map.insert(Prefix::parse("10.0.0.0/8"), 8);
  map.insert(Prefix::parse("10.1.0.0/16"), 16);
  map.insert(Prefix::parse("10.1.2.0/24"), 24);
  EXPECT_EQ(map.lookup(Ipv4Addr(10, 1, 2, 3)), 24);
  EXPECT_EQ(map.lookup(Ipv4Addr(10, 1, 9, 9)), 16);
  EXPECT_EQ(map.lookup(Ipv4Addr(10, 200, 0, 1)), 8);
  EXPECT_FALSE(map.lookup(Ipv4Addr(11, 0, 0, 1)).has_value());
}

TEST(PrefixMap, DefaultRouteMatchesEverything) {
  PrefixMap<int> map;
  map.insert(Prefix::parse("0.0.0.0/0"), 1);
  EXPECT_EQ(map.lookup(Ipv4Addr(255, 255, 255, 255)), 1);
  EXPECT_EQ(map.lookup(Ipv4Addr(0)), 1);
}

TEST(PrefixMap, HostRoutes) {
  PrefixMap<int> map;
  map.insert(Prefix::parse("1.2.3.4/32"), 32);
  map.insert(Prefix::parse("1.2.3.0/24"), 24);
  EXPECT_EQ(map.lookup(Ipv4Addr(1, 2, 3, 4)), 32);
  EXPECT_EQ(map.lookup(Ipv4Addr(1, 2, 3, 5)), 24);
}

TEST(PrefixMap, InsertReplacesAndCountsSize) {
  PrefixMap<int> map;
  EXPECT_TRUE(map.empty());
  map.insert(Prefix::parse("10.0.0.0/8"), 1);
  map.insert(Prefix::parse("10.0.0.0/8"), 2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.lookup(Ipv4Addr(10, 0, 0, 1)), 2);
}

TEST(PrefixMap, MatchingPrefixReturnsCoveringRoute) {
  PrefixMap<int> map;
  map.insert(Prefix::parse("192.168.0.0/16"), 7);
  const auto hit = map.matching_prefix(Ipv4Addr(192, 168, 3, 4));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->to_string(), "192.168.0.0/16");
  EXPECT_FALSE(map.matching_prefix(Ipv4Addr(8, 8, 8, 8)).has_value());
}

TEST(PrefixMap, ForEachVisitsAll) {
  PrefixMap<int> map;
  map.insert(Prefix::parse("10.0.0.0/8"), 1);
  map.insert(Prefix::parse("20.0.0.0/8"), 2);
  map.insert(Prefix::parse("10.5.0.0/16"), 3);
  int count = 0, sum = 0;
  map.for_each([&](const Prefix&, int v) {
    ++count;
    sum += v;
  });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sum, 6);
}

TEST(CountryCode, ValidatesFormat) {
  EXPECT_EQ(CountryCode("US").to_string(), "US");
  EXPECT_EQ(CountryCode("fr").to_string(), "fr");
  EXPECT_THROW(CountryCode("USA"), std::invalid_argument);
  EXPECT_THROW(CountryCode("U"), std::invalid_argument);
  EXPECT_THROW(CountryCode("1A"), std::invalid_argument);
  EXPECT_FALSE(CountryCode().is_set());
  EXPECT_TRUE(CountryCode("DE").is_set());
}

TEST(CountryCode, Ordering) {
  EXPECT_LT(CountryCode("DE"), CountryCode("US"));
  EXPECT_EQ(CountryCode("GB"), CountryCode("GB"));
}

TEST(GeoDatabase, LocateWithFallback) {
  GeoDatabase geo;
  geo.add(Prefix::parse("5.0.0.0/8"), CountryCode("DE"));
  geo.add(Prefix::parse("5.5.0.0/16"), CountryCode("FR"));
  EXPECT_EQ(geo.locate(Ipv4Addr(5, 5, 1, 1)), CountryCode("FR"));
  EXPECT_EQ(geo.locate(Ipv4Addr(5, 9, 1, 1)), CountryCode("DE"));
  EXPECT_EQ(geo.locate(Ipv4Addr(99, 0, 0, 1)), unknown_country());
  EXPECT_EQ(geo.num_prefixes(), 2u);
}

TEST(PrefixToAsMap, OriginLookups) {
  PrefixToAsMap pfx2as;
  pfx2as.announce(Prefix::parse("203.0.112.0/20"), 12276);
  pfx2as.announce(Prefix::parse("203.0.113.0/24"), 64500);
  EXPECT_EQ(pfx2as.origin(Ipv4Addr(203, 0, 113, 7)), 64500u);
  EXPECT_EQ(pfx2as.origin(Ipv4Addr(203, 0, 112, 7)), 12276u);
  EXPECT_EQ(pfx2as.origin(Ipv4Addr(8, 8, 8, 8)), kUnknownAsn);
  const auto covering = pfx2as.covering_prefix(Ipv4Addr(203, 0, 113, 200));
  ASSERT_TRUE(covering.has_value());
  EXPECT_EQ(covering->length(), 24);
}

TEST(AsRegistry, NamesAndFallback) {
  AsRegistry registry;
  registry.register_as(12276, "OVH");
  EXPECT_EQ(registry.name(12276), "OVH");
  EXPECT_EQ(registry.name(65000), "AS65000");
  EXPECT_TRUE(registry.contains(12276));
  EXPECT_FALSE(registry.contains(65000));
  EXPECT_EQ(registry.size(), 1u);
}

// Property: for any inserted prefix, all sampled inside addresses match it
// or a more specific one; the lookup never returns a shorter match when a
// longer one covers the address.
class LpmProperty : public ::testing::TestWithParam<int> {};

TEST_P(LpmProperty, SpecificityIsRespected) {
  const int len = GetParam();
  PrefixMap<int> map;
  const Prefix outer(Ipv4Addr(100, 64, 0, 0), len);
  const Prefix inner(Ipv4Addr(100, 64, 0, 0), len + 4);
  map.insert(outer, 1);
  map.insert(inner, 2);
  EXPECT_EQ(map.lookup(inner.network()), 2);
  // An address in outer but outside inner maps to outer.
  const Ipv4Addr outside_inner(
      inner.network().value() + static_cast<std::uint32_t>(inner.num_addresses()));
  if (outer.contains(outside_inner)) {
    EXPECT_EQ(map.lookup(outside_inner), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, LpmProperty, ::testing::Values(8, 10, 12, 16, 20, 24));

}  // namespace
}  // namespace dosm::meta
