// Migration behaviour model tests: intensity-driven urgency, hoster-wide
// moves, spontaneous adoption, and DNS-side detectability.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "dps/classifier.h"
#include "sim/migration_model.h"

namespace dosm::sim {
namespace {

using net::Ipv4Addr;

class MigrationModelTest : public ::testing::Test {
 protected:
  static constexpr int kDays = 200;

  MigrationModelTest()
      : rng_(31),
        population_(rng_),
        providers_(dps::paper_providers()),
        store_(kDays),
        window_{{2015, 3, 1}, {2015, 9, 16}} {
    HostingConfig config;
    config.num_domains = 2500;
    config.num_generic_hosters = 20;
    hosting_ = std::make_unique<HostingEcosystem>(rng_, population_, providers_,
                                                  names_, store_, config);
  }

  GroundTruthAttack attack_on(Ipv4Addr target, int day, double victim_pps) {
    GroundTruthAttack attack;
    attack.kind = AttackKind::kDirect;
    attack.target = target;
    attack.start = static_cast<double>(window_.day_start(day)) + 3600.0;
    attack.duration_s = 600.0;
    attack.victim_pps = victim_pps;
    attack.ip_proto = 6;
    attack.ports = {80};
    return attack;
  }

  Rng rng_;
  Population population_;
  dps::ProviderRegistry providers_;
  dns::NameTable names_;
  dns::SnapshotStore store_;
  StudyWindow window_;
  std::unique_ptr<HostingEcosystem> hosting_;
};

TEST_F(MigrationModelTest, SpontaneousAdoptionRunsWithoutAttacks) {
  MigrationConfig config;
  config.spontaneous_fraction = 0.05;
  MigrationModel model(7, *hosting_, store_, window_, config);
  const auto migrations = model.apply({});
  // ~5% of the independently-operated (self/micro-hosted) share of ~2500
  // domains, minus preexisting customers.
  EXPECT_GT(migrations.size(), 30u);
  EXPECT_LT(migrations.size(), 160u);
  for (const auto& migration : migrations) {
    EXPECT_FALSE(migration.attack_driven);
    EXPECT_GE(migration.migration_day,
              store_.entry(migration.domain).first_seen_day);
  }
}

TEST_F(MigrationModelTest, AppliedMigrationsAreDetectableViaDns) {
  MigrationConfig config;
  config.spontaneous_fraction = 0.02;
  config.site_base_probability = 0.5;  // make attack-driven moves common
  MigrationModel model(8, *hosting_, store_, window_, config);
  // Attack a batch of self-hosted sites hard.
  std::vector<GroundTruthAttack> attacks;
  for (dns::DomainId id = 0; id < 300; ++id) {
    const auto& site = hosting_->site(id);
    if (site.hoster >= 0 || site.first_seen > 50) continue;
    attacks.push_back(attack_on(site.origin_ip, 60, 1e6));
  }
  const auto migrations = model.apply(attacks);
  ASSERT_GT(migrations.size(), 10u);

  const dps::Classifier classifier(providers_, names_);
  for (const auto& migration : migrations) {
    const auto record = store_.record_on(migration.domain, migration.migration_day);
    ASSERT_TRUE(record.has_value());
    const auto provider = classifier.classify(*record);
    ASSERT_TRUE(provider.has_value());
    EXPECT_EQ(*provider, migration.provider);
  }
}

TEST_F(MigrationModelTest, IntenseAttacksMigrateFasterOnAverage) {
  MigrationConfig config;
  config.spontaneous_fraction = 0.0;
  config.site_base_probability = 0.9;
  MigrationModel model(9, *hosting_, store_, window_, config);

  // Build a bimodal attack population: many weak, a few extreme (the
  // extreme class must be a small top fraction for its percentile rank to
  // approach 1, as in the real heavy-tailed intensity distribution).
  std::vector<GroundTruthAttack> attacks;
  std::vector<bool> is_intense;
  int added = 0;
  Rng jitter(123);
  for (dns::DomainId id = 0; id < store_.num_domains() && added < 600; ++id) {
    const auto& site = hosting_->site(id);
    if (site.hoster >= 0 || site.first_seen > 20 ||
        site.preexisting != dps::kNoProvider)
      continue;
    const bool intense = (added % 40 == 0);
    attacks.push_back(attack_on(site.origin_ip, 40,
                                intense ? 1e7 : jitter.uniform(100.0, 5000.0)));
    is_intense.push_back(intense);
    ++added;
  }
  const auto migrations = model.apply(attacks);
  ASSERT_GT(migrations.size(), 100u);

  // Map targets back to intensity class.
  std::unordered_map<std::uint32_t, bool> intense_by_ip;
  for (std::size_t i = 0; i < attacks.size(); ++i)
    intense_by_ip[attacks[i].target.value()] = is_intense[i];

  RunningStats delay_intense, delay_weak;
  for (const auto& migration : migrations) {
    if (!migration.attack_driven) continue;
    const auto& site = hosting_->site(migration.domain);
    const double delay = migration.migration_day - migration.decision_day;
    if (intense_by_ip[site.origin_ip.value()])
      delay_intense.add(delay);
    else
      delay_weak.add(delay);
  }
  ASSERT_GT(delay_intense.count(), 5u);
  ASSERT_GT(delay_weak.count(), 50u);
  EXPECT_LT(delay_intense.mean(), delay_weak.mean());
}

TEST_F(MigrationModelTest, HosterWideMigrationMovesManySitesAtOnce) {
  MigrationConfig config;
  config.spontaneous_fraction = 0.0;
  config.site_base_probability = 0.0;
  config.hoster_base_probability = 1.0;  // force the wholesale decision
  MigrationModel model(10, *hosting_, store_, window_, config);

  // Attack one mega hoster IP.
  const auto& hosters = hosting_->hosters();
  std::size_t mega_index = 0;
  for (std::size_t h = 0; h < hosters.size(); ++h) {
    if (hosters[h].mega) {
      mega_index = h;
      break;
    }
  }
  const auto target = hosters[mega_index].ips.front();
  // Background attacks populate the intensity-rank pool (a degenerate pool
  // ranks everything at 0.5, below the trigger threshold); the burst on the
  // hoster IP then ranks near 1. The wholesale decision fires with
  // probability capped at 0.9 per attack; a short burst makes the test
  // deterministic-enough under any seed.
  std::vector<GroundTruthAttack> attacks;
  Rng jitter(321);
  for (int i = 0; i < 200; ++i) {
    attacks.push_back(attack_on(population_.sample_address(jitter), 10 + i % 15,
                                jitter.uniform(100.0, 5000.0)));
  }
  attacks.push_back(attack_on(target, 30, 1e6));
  attacks.push_back(attack_on(target, 31, 1e6));
  attacks.push_back(attack_on(target, 32, 1e6));
  std::sort(attacks.begin(), attacks.end(),
            [](const GroundTruthAttack& a, const GroundTruthAttack& b) {
              return a.start < b.start;
            });
  const auto migrations = model.apply(attacks);
  ASSERT_GE(migrations.size(), 4u);
  // All migrations share one provider and one decision day (the Wix case).
  for (const auto& migration : migrations) {
    EXPECT_TRUE(migration.hoster_wide);
    EXPECT_EQ(migration.provider, migrations.front().provider);
    EXPECT_EQ(migration.decision_day, migrations.front().decision_day);
    EXPECT_GE(migration.decision_day, 30);
    EXPECT_LE(migration.decision_day, 32);
  }
}

TEST_F(MigrationModelTest, PreexistingCustomersNeverMigrate) {
  MigrationConfig config;
  config.spontaneous_fraction = 1.0;  // everyone eligible migrates
  config.site_base_probability = 1.0;
  MigrationModel model(11, *hosting_, store_, window_, config);
  const auto migrations = model.apply({});
  for (const auto& migration : migrations) {
    EXPECT_EQ(hosting_->site(migration.domain).preexisting, dps::kNoProvider);
  }
}

TEST_F(MigrationModelTest, OneMigrationPerDomain) {
  MigrationConfig config;
  config.spontaneous_fraction = 0.1;
  config.site_base_probability = 0.9;
  MigrationModel model(12, *hosting_, store_, window_, config);
  std::vector<GroundTruthAttack> attacks;
  for (dns::DomainId id = 0; id < 500; ++id) {
    const auto& site = hosting_->site(id);
    if (site.first_seen > 10) continue;
    attacks.push_back(attack_on(site.origin_ip, 20, 1e6));
    attacks.push_back(attack_on(site.origin_ip, 40, 1e6));  // repeat attack
  }
  const auto migrations = model.apply(attacks);
  std::set<dns::DomainId> seen;
  for (const auto& migration : migrations) {
    EXPECT_TRUE(seen.insert(migration.domain).second)
        << "domain migrated twice: " << migration.domain;
  }
}

}  // namespace
}  // namespace dosm::sim
