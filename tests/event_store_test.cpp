// EventStore tests: fusion, summaries, daily series, normalization.
#include <gtest/gtest.h>

#include "core/event_store.h"

namespace dosm::core {
namespace {

using net::Ipv4Addr;

AttackEvent telescope_event(Ipv4Addr target, double start, double duration,
                            double max_pps) {
  AttackEvent event;
  event.source = EventSource::kTelescope;
  event.target = target;
  event.start = start;
  event.end = start + duration;
  event.intensity = max_pps;
  event.packets = 100;
  event.ip_proto = 6;
  event.num_ports = 1;
  event.top_port = 80;
  return event;
}

AttackEvent honeypot_event(Ipv4Addr target, double start, double duration,
                           double rps) {
  AttackEvent event;
  event.source = EventSource::kHoneypot;
  event.target = target;
  event.start = start;
  event.end = start + duration;
  event.intensity = rps;
  event.packets = 500;
  event.reflection = amppot::ReflectionProtocol::kNtp;
  event.honeypots = 3;
  return event;
}

class EventStoreTest : public ::testing::Test {
 protected:
  EventStoreTest() : t0_(static_cast<double>(window_.start_time())) {
    pfx2as_.announce(net::Prefix::parse("10.0.0.0/8"), 100);
    pfx2as_.announce(net::Prefix::parse("20.0.0.0/8"), 200);
    geo_.add(net::Prefix::parse("10.0.0.0/8"), meta::CountryCode("US"));
    geo_.add(net::Prefix::parse("20.0.0.0/8"), meta::CountryCode("CN"));
  }

  StudyWindow window_{};
  double t0_;
  meta::PrefixToAsMap pfx2as_;
  meta::GeoDatabase geo_;
};

TEST_F(EventStoreTest, LiftsSourceEventsCorrectly) {
  telescope::TelescopeEvent te;
  te.victim = Ipv4Addr(1, 2, 3, 4);
  te.start = 100.0;
  te.end = 400.0;
  te.max_pps = 7.0;
  te.packets = 210;
  te.attack_proto = 17;
  te.num_ports = 2;
  te.top_port = 53;
  te.unique_sources = 99;
  const auto lifted = from_telescope(te);
  EXPECT_TRUE(lifted.is_telescope());
  EXPECT_EQ(lifted.target, te.victim);
  EXPECT_DOUBLE_EQ(lifted.intensity, 7.0);
  EXPECT_EQ(lifted.num_ports, 2);
  EXPECT_FALSE(lifted.single_port());

  amppot::AmpPotEvent ae;
  ae.victim = Ipv4Addr(5, 6, 7, 8);
  ae.start = 0.0;
  ae.end = 100.0;
  ae.requests = 1000;
  ae.honeypots = 2;
  ae.protocol = amppot::ReflectionProtocol::kSsdp;
  const auto lifted2 = from_amppot(ae);
  EXPECT_TRUE(lifted2.is_honeypot());
  EXPECT_DOUBLE_EQ(lifted2.intensity, 5.0);  // 1000 / 100 / 2
  EXPECT_EQ(lifted2.reflection, amppot::ReflectionProtocol::kSsdp);
}

TEST_F(EventStoreTest, SummarizeCountsRollups) {
  EventStore store(window_);
  store.add(telescope_event(Ipv4Addr(10, 0, 0, 1), t0_ + 100, 120, 1.0));
  store.add(telescope_event(Ipv4Addr(10, 0, 0, 2), t0_ + 200, 120, 1.0));
  store.add(telescope_event(Ipv4Addr(10, 0, 1, 1), t0_ + 300, 120, 1.0));
  store.add(honeypot_event(Ipv4Addr(20, 0, 0, 1), t0_ + 400, 300, 50.0));
  store.add(honeypot_event(Ipv4Addr(10, 0, 0, 1), t0_ + 500, 300, 50.0));
  store.finalize();

  const auto combined = store.summarize(SourceFilter::kCombined, pfx2as_);
  EXPECT_EQ(combined.events, 5u);
  EXPECT_EQ(combined.unique_targets, 4u);
  EXPECT_EQ(combined.unique_slash24, 3u);  // 10.0.0/24, 10.0.1/24, 20.0.0/24
  EXPECT_EQ(combined.unique_slash16, 2u);
  EXPECT_EQ(combined.unique_asns, 2u);

  const auto telescope = store.summarize(SourceFilter::kTelescope, pfx2as_);
  EXPECT_EQ(telescope.events, 3u);
  EXPECT_EQ(telescope.unique_targets, 3u);
  EXPECT_EQ(telescope.unique_asns, 1u);
}

TEST_F(EventStoreTest, EventsForTargetAreTimeOrdered) {
  EventStore store(window_);
  const Ipv4Addr target(10, 0, 0, 1);
  store.add(telescope_event(target, t0_ + 900, 60, 1.0));
  store.add(telescope_event(target, t0_ + 100, 60, 1.0));
  store.add(honeypot_event(target, t0_ + 500, 60, 5.0));
  store.finalize();
  const auto indices = store.events_for(target);
  ASSERT_EQ(indices.size(), 3u);
  double prev = 0.0;
  for (const auto i : indices) {
    EXPECT_GE(store.events()[i].start, prev);
    prev = store.events()[i].start;
  }
  EXPECT_TRUE(store.events_for(Ipv4Addr(9, 9, 9, 9)).empty());
}

TEST_F(EventStoreTest, RequiresFinalize) {
  EventStore store(window_);
  store.add(telescope_event(Ipv4Addr(10, 0, 0, 1), t0_, 60, 1.0));
  EXPECT_THROW(store.events_for(Ipv4Addr(10, 0, 0, 1)), std::logic_error);
  EXPECT_THROW(store.targets(SourceFilter::kCombined), std::logic_error);
  store.finalize();
  EXPECT_NO_THROW(store.targets(SourceFilter::kCombined));
}

TEST_F(EventStoreTest, DailyBreakdownPlacesEventsOnStartDay) {
  EventStore store(window_);
  // Two events on day 0, one on day 1, one crossing midnight counts on day 0.
  store.add(telescope_event(Ipv4Addr(10, 0, 0, 1), t0_ + 1000, 60, 1.0));
  store.add(telescope_event(Ipv4Addr(10, 0, 0, 2), t0_ + 2000, 60, 1.0));
  store.add(telescope_event(Ipv4Addr(10, 0, 0, 3), t0_ + 86000, 3600, 1.0));
  store.add(telescope_event(Ipv4Addr(10, 0, 0, 4), t0_ + 86400 + 100, 60, 1.0));
  store.finalize();
  const auto breakdown = store.daily_breakdown(SourceFilter::kTelescope, pfx2as_);
  EXPECT_DOUBLE_EQ(breakdown.attacks.at(0), 3.0);
  EXPECT_DOUBLE_EQ(breakdown.attacks.at(1), 1.0);
  EXPECT_DOUBLE_EQ(breakdown.unique_targets.at(0), 3.0);
  EXPECT_DOUBLE_EQ(breakdown.targeted_slash16.at(0), 1.0);
  EXPECT_DOUBLE_EQ(breakdown.targeted_asns.at(0), 1.0);
}

TEST_F(EventStoreTest, DailyBreakdownDeduplicatesTargets) {
  EventStore store(window_);
  const Ipv4Addr target(10, 0, 0, 1);
  store.add(telescope_event(target, t0_ + 100, 60, 1.0));
  store.add(telescope_event(target, t0_ + 5000, 60, 1.0));
  store.finalize();
  const auto breakdown = store.daily_breakdown(SourceFilter::kTelescope, pfx2as_);
  EXPECT_DOUBLE_EQ(breakdown.attacks.at(0), 2.0);
  EXPECT_DOUBLE_EQ(breakdown.unique_targets.at(0), 1.0);
}

TEST_F(EventStoreTest, MediumIntensityFilterUsesSourceMean) {
  EventStore store(window_);
  // Telescope intensities: 1, 1, 10 (mean 4): only the 10 is medium+.
  store.add(telescope_event(Ipv4Addr(10, 0, 0, 1), t0_ + 100, 60, 1.0));
  store.add(telescope_event(Ipv4Addr(10, 0, 0, 2), t0_ + 200, 60, 1.0));
  store.add(telescope_event(Ipv4Addr(10, 0, 0, 3), t0_ + 300, 60, 10.0));
  // Honeypot intensities: all 50 (mean 50): all medium+ (>=).
  store.add(honeypot_event(Ipv4Addr(20, 0, 0, 1), t0_ + 400, 100, 50.0));
  store.finalize();
  EXPECT_DOUBLE_EQ(store.mean_intensity(EventSource::kTelescope), 4.0);
  const auto filtered =
      store.daily_breakdown(SourceFilter::kCombined, pfx2as_, true);
  EXPECT_DOUBLE_EQ(filtered.attacks.at(0), 2.0);  // the 10-pps + the honeypot
}

TEST_F(EventStoreTest, NormalizedIntensityIsLinearPerSource) {
  EventStore store(window_);
  store.add(telescope_event(Ipv4Addr(10, 0, 0, 1), t0_ + 100, 60, 25.0));
  store.add(telescope_event(Ipv4Addr(10, 0, 0, 2), t0_ + 200, 60, 100.0));
  store.add(honeypot_event(Ipv4Addr(20, 0, 0, 1), t0_ + 300, 100, 500.0));
  store.finalize();
  EXPECT_DOUBLE_EQ(store.normalized_intensity(store.events()[0]), 0.25);
  EXPECT_DOUBLE_EQ(store.normalized_intensity(store.events()[1]), 1.0);
  // The honeypot event normalizes against its own dataset's max.
  EXPECT_DOUBLE_EQ(store.normalized_intensity(store.events()[2]), 1.0);
}

TEST_F(EventStoreTest, CountryRankingOrdersByTargets) {
  EventStore store(window_);
  store.add(telescope_event(Ipv4Addr(10, 0, 0, 1), t0_ + 100, 60, 1.0));
  store.add(telescope_event(Ipv4Addr(10, 0, 0, 2), t0_ + 100, 60, 1.0));
  store.add(telescope_event(Ipv4Addr(20, 0, 0, 1), t0_ + 100, 60, 1.0));
  store.add(telescope_event(Ipv4Addr(99, 0, 0, 1), t0_ + 100, 60, 1.0));
  store.finalize();
  const auto ranking = store.country_ranking(SourceFilter::kTelescope, geo_);
  ASSERT_EQ(ranking.size(), 3u);  // US, CN, ZZ (unknown)
  EXPECT_EQ(ranking[0].country.to_string(), "US");
  EXPECT_EQ(ranking[0].targets, 2u);
  EXPECT_DOUBLE_EQ(ranking[0].share, 0.5);
}

TEST_F(EventStoreTest, DistributionsSeparateBySource) {
  EventStore store(window_);
  store.add(telescope_event(Ipv4Addr(10, 0, 0, 1), t0_ + 100, 100, 3.0));
  store.add(honeypot_event(Ipv4Addr(20, 0, 0, 1), t0_ + 100, 200, 70.0));
  store.finalize();
  EXPECT_EQ(store.intensity_distribution(SourceFilter::kTelescope).size(), 1u);
  EXPECT_EQ(store.intensity_distribution(SourceFilter::kCombined).size(), 2u);
  EXPECT_DOUBLE_EQ(store.duration_distribution(SourceFilter::kTelescope).max(),
                   100.0);
  EXPECT_DOUBLE_EQ(store.duration_distribution(SourceFilter::kHoneypot).max(),
                   200.0);
}

TEST_F(EventStoreTest, OverlapPredicate) {
  const auto a = telescope_event(Ipv4Addr(1, 1, 1, 1), 100.0, 100.0, 1.0);
  auto b = honeypot_event(Ipv4Addr(1, 1, 1, 1), 150.0, 100.0, 1.0);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  b.start = 201.0;
  b.end = 300.0;
  EXPECT_FALSE(a.overlaps(b));
  b.start = 200.0;  // touching endpoints count as overlap
  EXPECT_TRUE(a.overlaps(b));
}

}  // namespace
}  // namespace dosm::core
