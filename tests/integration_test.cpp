// Full-chain integration test: world -> detectors -> fusion -> all §4/§5/§6
// analyses, validating the paper's qualitative findings end-to-end on a
// moderate-scale world.
#include <gtest/gtest.h>

#include "core/impact.h"
#include "core/joint.h"
#include "core/migration_analysis.h"
#include "core/ports.h"
#include "core/taxonomy.h"
#include "dps/classifier.h"
#include "sim/scenario.h"

namespace dosm {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioConfig config;
    config.seed = 77;
    config.window = StudyWindow{{2015, 3, 1}, {2015, 12, 25}};  // 300 days
    config.population.total_slash16 = 1000;
    config.hosting.num_domains = 15000;
    config.hosting.num_generic_hosters = 60;
    config.attacker.direct_per_day = 70;
    config.attacker.reflection_per_day = 50;
    config.attacker.num_campaigns = 3;
    world_ = sim::build_world(config).release();

    classifier_ = new dps::Classifier(world_->providers, world_->names);
    timelines_ = new std::vector<dps::ProtectionTimeline>(
        dps::all_timelines(world_->dns, *classifier_));
    impact_ = new core::ImpactAnalysis(world_->store, world_->dns);
  }
  static void TearDownTestSuite() {
    delete impact_;
    delete timelines_;
    delete classifier_;
    delete world_;
  }

  static sim::World* world_;
  static dps::Classifier* classifier_;
  static std::vector<dps::ProtectionTimeline>* timelines_;
  static core::ImpactAnalysis* impact_;
};

sim::World* IntegrationTest::world_ = nullptr;
dps::Classifier* IntegrationTest::classifier_ = nullptr;
std::vector<dps::ProtectionTimeline>* IntegrationTest::timelines_ = nullptr;
core::ImpactAnalysis* IntegrationTest::impact_ = nullptr;

TEST_F(IntegrationTest, Table1ShapeHolds) {
  const auto& pfx2as = world_->population.pfx2as();
  const auto telescope =
      world_->store.summarize(core::SourceFilter::kTelescope, pfx2as);
  const auto honeypot =
      world_->store.summarize(core::SourceFilter::kHoneypot, pfx2as);
  ASSERT_GT(telescope.events, 1000u);
  ASSERT_GT(honeypot.events, 1000u);
  // The paper's key ratio: more follow-up per target in the telescope data.
  const double ept_telescope =
      double(telescope.events) / double(telescope.unique_targets);
  const double ept_honeypot =
      double(honeypot.events) / double(honeypot.unique_targets);
  EXPECT_GT(ept_telescope, ept_honeypot * 0.85);
}

TEST_F(IntegrationTest, Figure1DailySeriesAreDense) {
  const auto breakdown = world_->store.daily_breakdown(
      core::SourceFilter::kCombined, world_->population.pfx2as());
  int days_with_attacks = 0;
  for (int d = 0; d < breakdown.attacks.num_days(); ++d) {
    if (breakdown.attacks.at(d) > 0) ++days_with_attacks;
    EXPECT_LE(breakdown.unique_targets.at(d), breakdown.attacks.at(d));
    EXPECT_LE(breakdown.targeted_asns.at(d), breakdown.unique_targets.at(d));
  }
  EXPECT_EQ(days_with_attacks, breakdown.attacks.num_days());
}

TEST_F(IntegrationTest, Figure2DurationShape) {
  const auto telescope =
      world_->store.duration_distribution(core::SourceFilter::kTelescope);
  const auto honeypot =
      world_->store.duration_distribution(core::SourceFilter::kHoneypot);
  // Randomly spoofed attacks last longer (paper: medians 454 s vs 255 s).
  EXPECT_GT(telescope.median(), honeypot.median());
  EXPECT_GE(telescope.min(), 60.0);  // threshold floor
  // Honeypot durations capped at 24 h.
  EXPECT_LE(honeypot.max(), 24.0 * 3600.0 + 1.0);
  // Right-skew: mean > median in both.
  EXPECT_GT(telescope.mean(), telescope.median());
  EXPECT_GT(honeypot.mean(), honeypot.median());
}

TEST_F(IntegrationTest, Figure3And4IntensityShape) {
  const auto telescope =
      world_->store.intensity_distribution(core::SourceFilter::kTelescope);
  const auto honeypot =
      world_->store.intensity_distribution(core::SourceFilter::kHoneypot);
  // Paper: ~70% of telescope events at <= 2 pps; honeypot median 77 rps.
  EXPECT_GT(telescope.cdf(2.0), 0.35);
  EXPECT_GT(honeypot.median(), 10.0);
  EXPECT_GT(telescope.mean(), 5.0 * telescope.median());  // heavy tail
}

TEST_F(IntegrationTest, Table5TcpDominates) {
  const auto rows = core::ip_protocol_distribution(world_->store);
  EXPECT_EQ(rows[0].label, "TCP");
  EXPECT_NEAR(rows[0].share, 0.794, 0.08);
}

TEST_F(IntegrationTest, Table6NtpLeads) {
  const auto rows = core::reflection_distribution(world_->store);
  EXPECT_EQ(rows[0].label, "NTP");
  EXPECT_NEAR(rows[0].share, 0.43, 0.08);
}

TEST_F(IntegrationTest, Table7And8PortStructure) {
  const auto split = core::port_cardinality(world_->store.events());
  EXPECT_NEAR(split.single_share(), 0.62, 0.06);
  const auto tcp = core::service_distribution(world_->store.events(), true);
  ASSERT_GE(tcp.size(), 3u);
  EXPECT_EQ(tcp[0].label, "HTTP");
  EXPECT_EQ(tcp[1].label, "HTTPS");
  EXPECT_NEAR(core::web_port_share(world_->store.events()), 0.6936, 0.06);
  const auto udp = core::service_distribution(world_->store.events(), false);
  EXPECT_EQ(udp[0].label, "27015");
}

TEST_F(IntegrationTest, JointAttacksExistWithExpectedShape) {
  const core::JointAttackAnalysis joint(world_->store);
  EXPECT_GT(joint.common_targets(), joint.joint_targets());
  EXPECT_GT(joint.joint_targets(), 20u);
  // Joint attacks are more single-port (77.1% vs 60.6%).
  const auto joint_split = core::port_cardinality(joint.telescope_joint_events());
  const auto all_split = core::port_cardinality(world_->store.events());
  EXPECT_GT(joint_split.single_share(), all_split.single_share());
}

TEST_F(IntegrationTest, WebImpactFractionsAreSubstantial) {
  // Paper: 64% of sites ever on attacked IPs; ~3% daily. Our scaled world
  // should land in the same regime (looser bounds).
  EXPECT_GT(impact_->attacked_domain_fraction(), 0.25);
  EXPECT_LE(impact_->attacked_domain_fraction(), 1.0);
  const double daily_fraction =
      impact_->affected_daily().daily_mean() /
      static_cast<double>(impact_->web_domains());
  EXPECT_GT(daily_fraction, 0.002);
  EXPECT_LT(daily_fraction, 0.25);
}

TEST_F(IntegrationTest, WebTargetsSkewTcpAndNtp) {
  const auto overall_tcp = core::ip_protocol_distribution(world_->store)[0].share;
  EXPECT_GT(impact_->tcp_share_on_web_targets(), overall_tcp);
  EXPECT_GT(impact_->web_port_share_on_web_targets(),
            core::web_port_share(world_->store.events()));
  const auto reflection = core::reflection_distribution(world_->store);
  EXPECT_GT(impact_->ntp_share_on_web_targets(), reflection[0].share);
}

TEST_F(IntegrationTest, CohostingHistogramIsMonotoneDecreasing) {
  const auto& hist = impact_->cohosting_histogram();
  // Figure 6's shape: the n=1 group has the most target IPs and the counts
  // fall off with co-hosting magnitude (we check the broad trend).
  EXPECT_GT(hist.bin(0), hist.bin(3));
  EXPECT_GT(hist.total(), 100u);
  EXPECT_EQ(hist.total(), impact_->web_hosting_targets());
}

TEST_F(IntegrationTest, TaxonomyMatchesFigure8Shape) {
  const auto counts = core::classify_websites(*impact_, *timelines_, world_->dns);
  EXPECT_GT(counts.total, 10000u);
  EXPECT_EQ(counts.total, counts.attacked + counts.not_attacked);
  EXPECT_EQ(counts.attacked, counts.attacked_preexisting +
                                 counts.attacked_migrating +
                                 counts.attacked_non_migrating);
  // Attacked sites are more likely to already use a DPS (18.6% vs 0.89% in
  // the paper). At this test's reduced scale (300 days) the DPS flagship
  // fronts are attacked less exhaustively than over the full window, so we
  // assert the direction rather than the full 20x contrast.
  const double pre_attacked =
      double(counts.attacked_preexisting) / double(counts.attacked);
  const double pre_unattacked =
      double(counts.not_attacked_preexisting) / double(counts.not_attacked);
  EXPECT_GT(pre_attacked, 1.2 * pre_unattacked);
  // Migration after attack is a small-percentage phenomenon (4.31%).
  const double migrating_share =
      double(counts.attacked_migrating) / double(counts.attacked);
  EXPECT_GT(migrating_share, 0.005);
  EXPECT_LT(migrating_share, 0.25);
}

TEST_F(IntegrationTest, MigrationDeterminants) {
  const core::MigrationAnalysis migration(*impact_, *timelines_);
  ASSERT_GT(migration.cases().size(), 30u);

  // Figure 9: migrating sites are NOT disproportionately multi-attacked.
  const auto& all_counts = migration.attack_counts_all();
  const auto& migrating_counts = migration.attack_counts_migrating();
  EXPECT_GE(migrating_counts.cdf(5.0), all_counts.cdf(5.0) - 0.10);

  // Figure 10: intensity accelerates migration.
  const auto all_delays = migration.delays_for_intensity_class(1.0);
  const auto top_delays = migration.delays_for_intensity_class(0.05);
  if (top_delays.size() >= 10) {
    EXPECT_GE(core::MigrationAnalysis::fraction_within(top_delays, 6),
              core::MigrationAnalysis::fraction_within(all_delays, 6));
  }
}

TEST_F(IntegrationTest, DetectedMigrationsComeFromGroundTruth) {
  // Every DNS-detected migration of an attacked site should correspond to a
  // ground-truth migration record (no phantom migrations).
  std::set<dns::DomainId> truth;
  for (const auto& migration : world_->migrations) truth.insert(migration.domain);
  const core::MigrationAnalysis migration(*impact_, *timelines_);
  for (const auto& mc : migration.cases()) {
    EXPECT_TRUE(truth.contains(mc.domain)) << "phantom migration " << mc.domain;
  }
}

TEST_F(IntegrationTest, Table2ScaleReporting) {
  EXPECT_EQ(world_->dns.num_domains(), 15000u);
  EXPECT_GT(world_->dns.num_observations(), 1000000u);
  const auto com = world_->hosting.domains_in_tld("com");
  const auto net = world_->hosting.domains_in_tld("net");
  const auto org = world_->hosting.domains_in_tld("org");
  EXPECT_EQ(com + net + org, 15000u);
  EXPECT_GT(com, net + org);
}

TEST_F(IntegrationTest, Table3ProviderCounts) {
  const auto counts = dps::provider_customer_counts(*timelines_, world_->providers);
  const auto neustar = *world_->providers.find("Neustar");
  const auto virtualroad = *world_->providers.find("VirtualRoad");
  std::uint64_t total = 0;
  for (const auto& provider : world_->providers.all()) total += counts[provider.id];
  EXPECT_GT(total, 200u);
  EXPECT_GT(counts[neustar], counts[virtualroad]);
}

}  // namespace
}  // namespace dosm
