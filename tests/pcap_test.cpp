// pcap reader/writer tests, including byte-swapped and Ethernet captures.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "net/pcap.h"

namespace dosm::net {
namespace {

PacketRecord sample_packet(std::uint32_t i) {
  PacketRecord rec;
  rec.ts_sec = 1425168000 + static_cast<UnixSeconds>(i);
  rec.ts_usec = i * 100;
  rec.src = Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(1 + (i % 200)));
  rec.dst = Ipv4Addr(44, 1, 2, static_cast<std::uint8_t>(i));
  rec.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  rec.src_port = 80;
  rec.dst_port = static_cast<std::uint16_t>(1024 + i);
  rec.tcp_flags = tcp_flags::kSyn | tcp_flags::kAck;
  return rec;
}

TEST(Pcap, WriteReadRoundTrip) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  PcapWriter writer(stream);
  for (std::uint32_t i = 0; i < 50; ++i) writer.write_packet(sample_packet(i));
  EXPECT_EQ(writer.frames_written(), 50u);

  PcapReader reader(stream);
  EXPECT_EQ(reader.link_type(), kLinkTypeRaw);
  std::uint32_t count = 0;
  while (auto rec = reader.next_packet()) {
    EXPECT_EQ(rec->src_port, 80);
    EXPECT_EQ(rec->ts_sec, 1425168000 + count);
    ++count;
  }
  EXPECT_EQ(count, 50u);
}

TEST(Pcap, EmptyFileYieldsNoFrames) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  PcapWriter writer(stream);
  PcapReader reader(stream);
  EXPECT_FALSE(reader.next_frame().has_value());
  EXPECT_FALSE(reader.next_packet().has_value());
}

TEST(Pcap, RejectsBadMagic) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  stream.write("NOTPCAP0123456789012345", 24);
  stream.seekg(0);
  EXPECT_THROW(PcapReader reader(stream), std::runtime_error);
}

TEST(Pcap, RejectsTruncatedHeader) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  const char magic[4] = {'\xd4', '\xc3', '\xb2', '\xa1'};
  stream.write(magic, 4);
  stream.seekg(0);
  EXPECT_THROW(PcapReader reader(stream), std::runtime_error);
}

TEST(Pcap, ThrowsOnTruncatedRecordBody) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  PcapWriter writer(stream);
  writer.write_packet(sample_packet(0));
  std::string data = stream.str();
  data.resize(data.size() - 5);  // cut into the packet body
  std::istringstream cut(data, std::ios::binary);
  PcapReader reader(cut);
  EXPECT_THROW(reader.next_frame(), std::runtime_error);
}

TEST(Pcap, ReadsByteSwappedFiles) {
  // Build a swapped-endianness file by hand: magic 0xd4c3b2a1 as stored.
  std::ostringstream out(std::ios::binary);
  auto put_be = [&](std::uint32_t v) {  // big-endian = swapped for us
    char b[4] = {static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                 static_cast<char>(v >> 8), static_cast<char>(v)};
    out.write(b, 4);
  };
  auto put_be16 = [&](std::uint16_t v) {
    char b[2] = {static_cast<char>(v >> 8), static_cast<char>(v)};
    out.write(b, 2);
  };
  put_be(kPcapMagic);
  put_be16(2);
  put_be16(4);
  put_be(0);
  put_be(0);
  put_be(65535);
  put_be(kLinkTypeRaw);
  const auto packet = encode_packet(sample_packet(3));
  put_be(42);  // ts_sec
  put_be(7);   // ts_usec
  put_be(static_cast<std::uint32_t>(packet.size()));
  put_be(static_cast<std::uint32_t>(packet.size()));
  out.write(reinterpret_cast<const char*>(packet.data()),
            static_cast<std::streamsize>(packet.size()));

  std::istringstream in(out.str(), std::ios::binary);
  PcapReader reader(in);
  EXPECT_EQ(reader.link_type(), kLinkTypeRaw);
  const auto rec = reader.next_packet();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->ts_sec, 42);
  EXPECT_EQ(rec->ts_usec, 7u);
  EXPECT_EQ(rec->src_port, 80);
}

TEST(Pcap, EthernetFramesAreStripped) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  PcapWriter writer(stream, kLinkTypeEthernet);
  const auto ip = encode_packet(sample_packet(1));
  std::vector<std::uint8_t> frame(14, 0);
  frame[12] = 0x08;  // EtherType IPv4
  frame[13] = 0x00;
  frame.insert(frame.end(), ip.begin(), ip.end());
  writer.write_frame(123, 456, frame);
  // A non-IPv4 EtherType frame must be skipped by next_packet().
  std::vector<std::uint8_t> arp(14, 0);
  arp[12] = 0x08;
  arp[13] = 0x06;
  writer.write_frame(124, 0, arp);

  PcapReader reader(stream);
  const auto rec = reader.next_packet();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->src_port, 80);
  EXPECT_FALSE(reader.next_packet().has_value());
}

TEST(Pcap, WritePacketRequiresRawLinkType) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  PcapWriter writer(stream, kLinkTypeEthernet);
  EXPECT_THROW(writer.write_packet(sample_packet(0)), std::logic_error);
}

TEST(Pcap, SnaplenTruncatesCapture) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  PcapWriter writer(stream, kLinkTypeRaw, /*snaplen=*/16);
  const auto packet = encode_packet(sample_packet(0));
  writer.write_frame(1, 0, packet);
  PcapReader reader(stream);
  const auto frame = reader.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->bytes.size(), 16u);
  EXPECT_EQ(frame->orig_len, packet.size());
}

/// Serves a fixed prefix and then fails like a torn-down pipe: underflow
/// throws, which istream::read converts to badbit with the exception
/// swallowed (the default exception mask).
class FailingStreamBuf : public std::streambuf {
 public:
  explicit FailingStreamBuf(std::string data) : data_(std::move(data)) {
    setg(data_.data(), data_.data(), data_.data() + data_.size());
  }

 protected:
  int_type underflow() override {
    throw std::runtime_error("simulated I/O error");
  }

 private:
  std::string data_;
};

// Regression: a failed (non-EOF) stream used to read as a clean end of
// capture — next_frame() saw gcount() == 0 and returned nullopt, silently
// dropping the rest of the capture on any mid-read I/O error.
TEST(Pcap, MidCaptureStreamErrorThrowsInsteadOfEof) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  PcapWriter writer(stream);
  writer.write_packet(sample_packet(0));
  // Cut the stream exactly at a record boundary: the reader consumes the
  // global header plus one full record, then the next header read fails.
  FailingStreamBuf buf(stream.str());
  std::istream in(&buf);
  PcapReader reader(in);
  ASSERT_TRUE(reader.next_frame().has_value());
  EXPECT_THROW(reader.next_frame(), std::runtime_error);
}

// Regression: VLAN-tagged Ethernet frames (TPID 0x8100 / 0x88a8) used to be
// silently dropped because the EtherType check only accepted a bare 0x0800.
TEST(Pcap, VlanTaggedFramesAreDecoded) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  PcapWriter writer(stream, kLinkTypeEthernet);
  const auto ip = encode_packet(sample_packet(1));
  auto tagged = [&](std::vector<std::uint8_t> tags) {
    std::vector<std::uint8_t> frame(12, 0);
    frame.insert(frame.end(), tags.begin(), tags.end());
    frame.push_back(0x08);  // inner EtherType IPv4
    frame.push_back(0x00);
    frame.insert(frame.end(), ip.begin(), ip.end());
    return frame;
  };
  // 802.1Q single tag.
  writer.write_frame(1, 0, tagged({0x81, 0x00, 0x00, 0x64}));
  // 802.1ad QinQ: outer service tag + inner customer tag.
  writer.write_frame(2, 0,
                     tagged({0x88, 0xa8, 0x00, 0xc8, 0x81, 0x00, 0x00, 0x64}));

  PcapReader reader(stream);
  const auto single = reader.next_packet();
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->src_port, 80);
  const auto qinq = reader.next_packet();
  ASSERT_TRUE(qinq.has_value());
  EXPECT_EQ(qinq->src_port, 80);
  EXPECT_FALSE(reader.next_packet().has_value());
}

// Regression: snaplen-truncated frames used to flow into decode_packet as if
// complete, yielding bogus records (e.g. zero ports) instead of being
// skipped. The IPv4 total_length must fit inside the captured bytes.
TEST(Pcap, SnaplenTruncatedFramesAreSkippedByNextPacket) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  // 24-byte snaplen cuts the 40-byte TCP packet mid-transport-header.
  PcapWriter writer(stream, kLinkTypeRaw, /*snaplen=*/24);
  const auto packet = encode_packet(sample_packet(0));
  ASSERT_GT(packet.size(), 24u);
  writer.write_frame(1, 0, packet);
  PcapReader reader(stream);
  EXPECT_FALSE(reader.next_packet().has_value());
}

TEST(Pcap, DecodePcapHelper) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  PcapWriter writer(stream);
  for (std::uint32_t i = 0; i < 10; ++i) writer.write_packet(sample_packet(i));
  const std::string data = stream.str();
  const auto records = decode_pcap(std::span(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  EXPECT_EQ(records.size(), 10u);
}

}  // namespace
}  // namespace dosm::net
