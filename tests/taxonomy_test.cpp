// Figure-8 taxonomy classification tests.
#include <gtest/gtest.h>

#include "core/taxonomy.h"
#include "dps/classifier.h"

namespace dosm::core {
namespace {

using net::Ipv4Addr;

class TaxonomyTest : public ::testing::Test {
 protected:
  TaxonomyTest()
      : t0_(static_cast<double>(window_.start_time())),
        dns_(window_.num_days()),
        registry_(dps::paper_providers()),
        classifier_(registry_, names_) {}

  dns::WebsiteRecord plain_record(Ipv4Addr ip) {
    dns::WebsiteRecord record;
    record.www_a = ip;
    return record;
  }

  dns::WebsiteRecord protected_record(const char* provider) {
    const auto id = *registry_.find(provider);
    dns::WebsiteRecord record;
    record.www_cname =
        names_.intern("cust." + registry_.provider(id).cname_suffix);
    record.www_a = registry_.provider(id).prefixes.front().address_at(10);
    return record;
  }

  void attack(Ipv4Addr target, int day) {
    AttackEvent event;
    event.source = EventSource::kTelescope;
    event.target = target;
    event.start = t0_ + day * 86400.0 + 1000.0;
    event.end = event.start + 300.0;
    event.intensity = 1.0;
    event.ip_proto = 6;
    event.num_ports = 1;
    event.top_port = 80;
    store_.add(event);
  }

  TaxonomyCounts run() {
    store_.finalize();
    dns_.build_reverse_index();
    impact_ = std::make_unique<ImpactAnalysis>(store_, dns_);
    timelines_ = dps::all_timelines(dns_, classifier_);
    return classify_websites(*impact_, timelines_, dns_);
  }

  StudyWindow window_{};
  double t0_;
  dns::NameTable names_;
  dns::SnapshotStore dns_;
  dps::ProviderRegistry registry_;
  dps::Classifier classifier_;
  EventStore store_{window_};
  std::unique_ptr<ImpactAnalysis> impact_;
  std::vector<dps::ProtectionTimeline> timelines_;
};

TEST_F(TaxonomyTest, ClassifiesAllEightLeaves) {
  // attacked + preexisting
  auto id = dns_.add_domain("ap.com", 0);
  dns_.record_change(id, 0, protected_record("Akamai"));
  // Attack the provider's front IP so the protected site is "attacked".
  attack(protected_record("Akamai").www_a, 10);

  // attacked + migrating (attack day 20, protection day 25)
  id = dns_.add_domain("am.com", 0);
  dns_.record_change(id, 0, plain_record(Ipv4Addr(10, 0, 0, 2)));
  dns_.record_change(id, 25, protected_record("Incapsula"));
  attack(Ipv4Addr(10, 0, 0, 2), 20);

  // attacked + non-migrating
  id = dns_.add_domain("an.com", 0);
  dns_.record_change(id, 0, plain_record(Ipv4Addr(10, 0, 0, 3)));
  attack(Ipv4Addr(10, 0, 0, 3), 30);

  // not attacked + preexisting
  id = dns_.add_domain("np.com", 0);
  dns_.record_change(id, 0, protected_record("Verisign"));

  // not attacked + migrating
  id = dns_.add_domain("nm.com", 0);
  dns_.record_change(id, 0, plain_record(Ipv4Addr(10, 0, 0, 5)));
  dns_.record_change(id, 40, protected_record("CloudFlare"));

  // not attacked + non-migrating
  id = dns_.add_domain("nn.com", 0);
  dns_.record_change(id, 0, plain_record(Ipv4Addr(10, 0, 0, 6)));

  // non-website domain: excluded from the tree entirely
  dns_.add_domain("noweb.com", 0);

  const auto counts = run();
  EXPECT_EQ(counts.total, 6u);
  EXPECT_EQ(counts.attacked, 3u);
  EXPECT_EQ(counts.attacked_preexisting, 1u);
  EXPECT_EQ(counts.attacked_migrating, 1u);
  EXPECT_EQ(counts.attacked_non_migrating, 1u);
  EXPECT_EQ(counts.not_attacked, 3u);
  EXPECT_EQ(counts.not_attacked_preexisting, 1u);
  EXPECT_EQ(counts.not_attacked_migrating, 1u);
  EXPECT_EQ(counts.not_attacked_non_migrating, 1u);
  EXPECT_NEAR(counts.protected_share_attacked(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(counts.protected_share_not_attacked(), 2.0 / 3.0, 1e-9);
}

TEST_F(TaxonomyTest, MigrationBeforeAttackIsNotPostAttackMigration) {
  // Site protects on day 10, first attack observed day 50 (on its old IP,
  // where it no longer resolves -> actually attack its new provider IP to
  // make it "attacked").
  const auto id = dns_.add_domain("early.com", 0);
  dns_.record_change(id, 0, plain_record(Ipv4Addr(10, 0, 0, 1)));
  const auto rec = protected_record("Neustar");
  dns_.record_change(id, 10, rec);
  attack(rec.www_a, 50);
  const auto counts = run();
  EXPECT_EQ(counts.attacked, 1u);
  // first_protected_day (10) < first_attack_day (50): not migrating.
  EXPECT_EQ(counts.attacked_migrating, 0u);
  EXPECT_EQ(counts.attacked_non_migrating, 1u);
}

TEST_F(TaxonomyTest, SameDayMigrationCountsAsMigrating) {
  const auto id = dns_.add_domain("fast.com", 0);
  dns_.record_change(id, 0, plain_record(Ipv4Addr(10, 0, 0, 1)));
  dns_.record_change(id, 20, protected_record("F5"));
  attack(Ipv4Addr(10, 0, 0, 1), 20);
  const auto counts = run();
  // The attack on day 20 hits the IP before the record flips? Both changes
  // are day-20; the site's record that day is the protected one, so the
  // attack does not associate... but the attack targets the ORIGIN IP on
  // the same day the migration lands. sites_on uses the day's final record,
  // so the site is NOT attacked here.
  EXPECT_EQ(counts.attacked, 0u);
  EXPECT_EQ(counts.not_attacked_migrating, 1u);
}

TEST_F(TaxonomyTest, CensusCrossTabulatesGroupAndClass) {
  // Two sites share one IP (bin 1: 1<n<=10); one preexisting single (bin 0).
  const Ipv4Addr shared(10, 0, 0, 1);
  auto a = dns_.add_domain("shared-a.com", 0);
  dns_.record_change(a, 0, plain_record(shared));
  auto b = dns_.add_domain("shared-b.com", 0);
  dns_.record_change(b, 0, plain_record(shared));
  dns_.record_change(b, 30, protected_record("CloudFlare"));  // migrates
  const auto rec = protected_record("Akamai");
  auto c = dns_.add_domain("pre.com", 0);
  dns_.record_change(c, 0, rec);
  attack(shared, 20);
  attack(rec.www_a, 20);

  store_.finalize();
  dns_.build_reverse_index();
  impact_ = std::make_unique<ImpactAnalysis>(store_, dns_);
  timelines_ = dps::all_timelines(dns_, classifier_);
  const auto census =
      core::census_attacked_sites(*impact_, timelines_, dns_);

  // shared-a: bin 1, non-migrating; shared-b: bin 1, migrating.
  EXPECT_EQ(census.cell(1, CustomerClass::kNonMigrating).count, 1u);
  EXPECT_EQ(census.cell(1, CustomerClass::kMigrating).count, 1u);
  ASSERT_EQ(census.cell(1, CustomerClass::kMigrating).examples.size(), 1u);
  EXPECT_EQ(census.cell(1, CustomerClass::kMigrating).examples[0],
            "shared-b.com");
  // pre.com sits alone on the Akamai front: bin 0, preexisting.
  EXPECT_EQ(census.cell(0, CustomerClass::kPreexisting).count, 1u);
  EXPECT_EQ(to_string(CustomerClass::kPreexisting), "preexisting");
}

TEST_F(TaxonomyTest, RenderProducesTree) {
  TaxonomyCounts counts;
  counts.total = 210;
  counts.attacked = 134;
  counts.attacked_preexisting = 25;
  counts.attacked_migrating = 5;
  counts.attacked_non_migrating = 104;
  counts.not_attacked = 76;
  counts.not_attacked_preexisting = 1;
  counts.not_attacked_migrating = 2;
  counts.not_attacked_non_migrating = 73;
  const auto text = render_taxonomy(counts);
  EXPECT_NE(text.find("Attack Observed: 134"), std::string::npos);
  EXPECT_NE(text.find("No Attack Observed: 76"), std::string::npos);
  EXPECT_NE(text.find("Migrating: 5"), std::string::npos);
}

}  // namespace
}  // namespace dosm::core
