// Event-dump serialization tests: round-trip fidelity, corruption handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>
#include <type_traits>

#include "core/serialize.h"
#include "sim/scenario.h"

namespace dosm::core {
namespace {

AttackEvent sample_event(int i) {
  AttackEvent event;
  event.source = i % 2 ? EventSource::kHoneypot : EventSource::kTelescope;
  event.target = net::Ipv4Addr(static_cast<std::uint32_t>(0x0a000000 + i));
  event.start = 1.4e9 + i * 1000.5;
  event.end = event.start + 300.25;
  event.intensity = 3.14159 * i;
  event.packets = 1000u + static_cast<std::uint64_t>(i);
  event.ip_proto = 6;
  event.num_ports = static_cast<std::uint16_t>(i % 5);
  event.top_port = static_cast<std::uint16_t>(80 + i);
  event.unique_sources = static_cast<std::uint32_t>(10 * i);
  event.reflection = amppot::ReflectionProtocol::kNtp;
  event.honeypots = static_cast<std::uint32_t>(i % 24);
  return event;
}

TEST(Serialize, RoundTripPreservesEveryField) {
  std::vector<AttackEvent> events;
  for (int i = 0; i < 50; ++i) events.push_back(sample_event(i));
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_events(stream, events);
  const auto loaded = read_events(stream);
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(loaded[i].source, events[i].source);
    EXPECT_EQ(loaded[i].target, events[i].target);
    EXPECT_DOUBLE_EQ(loaded[i].start, events[i].start);
    EXPECT_DOUBLE_EQ(loaded[i].end, events[i].end);
    EXPECT_DOUBLE_EQ(loaded[i].intensity, events[i].intensity);
    EXPECT_EQ(loaded[i].packets, events[i].packets);
    EXPECT_EQ(loaded[i].ip_proto, events[i].ip_proto);
    EXPECT_EQ(loaded[i].num_ports, events[i].num_ports);
    EXPECT_EQ(loaded[i].top_port, events[i].top_port);
    EXPECT_EQ(loaded[i].unique_sources, events[i].unique_sources);
    EXPECT_EQ(loaded[i].reflection, events[i].reflection);
    EXPECT_EQ(loaded[i].honeypots, events[i].honeypots);
  }
}

TEST(Serialize, EmptyDumpRoundTrips) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_events(stream, {});
  EXPECT_TRUE(read_events(stream).empty());
}

TEST(Serialize, RejectsBadMagic) {
  std::istringstream in("NOTANEVENTDUMP", std::ios::binary);
  EXPECT_THROW(read_events(in), SerializeError);
  std::istringstream empty("", std::ios::binary);
  EXPECT_THROW(read_events(empty), SerializeError);
}

TEST(Serialize, RejectsTruncation) {
  std::vector<AttackEvent> events{sample_event(0), sample_event(1)};
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_events(stream, events);
  std::string data = stream.str();
  data.resize(data.size() - 10);
  std::istringstream cut(data, std::ios::binary);
  EXPECT_THROW(read_events(cut), SerializeError);
}

TEST(Serialize, RejectsBadSourceTag) {
  std::vector<AttackEvent> events{sample_event(0)};
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_events(stream, events);
  std::string data = stream.str();
  data[12] = '\x7f';  // the first record's source byte
  std::istringstream bad(data, std::ios::binary);
  EXPECT_THROW(read_events(bad), SerializeError);
}

TEST(Serialize, RejectsBadReflectionTag) {
  std::vector<AttackEvent> events{sample_event(0)};
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_events(stream, events);
  std::string data = stream.str();
  // Byte 14 is the first record's reflection tag (8 magic + 4 count +
  // source + ip_proto). kOther (8) is the largest valid value.
  data[14] = '\x09';
  std::istringstream bad(data, std::ios::binary);
  EXPECT_THROW(read_events(bad), SerializeError);
  data[14] = '\xff';
  std::istringstream worse(data, std::ios::binary);
  EXPECT_THROW(read_events(worse), SerializeError);
}

TEST(Serialize, HostileHeaderCountDoesNotOverAllocate) {
  // A corrupt dump claiming 0xFFFFFFFF records used to reserve ~240 GB
  // before the first truncated read could throw. The reserve is now bounded,
  // so the hostile header must fail as plain truncation (SerializeError,
  // never std::bad_alloc / OOM).
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_events(stream, {});
  std::string data = stream.str();
  for (std::size_t i = 0; i < 4; ++i) data[8 + i] = '\xff';  // count = 0xFFFFFFFF
  std::istringstream hostile(data, std::ios::binary);
  EXPECT_THROW(read_events(hostile), SerializeError);
}

TEST(Serialize, WriteThrowsWhenCountOverflowsWireField) {
  // A span can claim more events than the 32-bit count field can hold; the
  // old static_cast silently truncated the header and produced a dump whose
  // tail would be rejected as garbage on load. The fabricated span below is
  // never dereferenced because the size check throws first.
  const AttackEvent one;
  const std::span<const AttackEvent> huge(&one, std::size_t{0x100000000ull});
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_THROW(write_events(stream, huge), SerializeError);
  EXPECT_TRUE(stream.str().empty());  // nothing written before the throw
}

TEST(Serialize, LoadRejectsTrailingBytes) {
  const std::string path = "/tmp/dosm_serialize_trailing_test.bin";
  std::vector<AttackEvent> events{sample_event(0), sample_event(1)};
  {
    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    write_events(stream, events);
    std::string data = stream.str();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    // A concatenated second dump and a single garbage byte must both fail.
    out << data << data;
  }
  EXPECT_THROW(load_events(path), SerializeError);
  {
    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    write_events(stream, events);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << stream.str() << '\0';
  }
  EXPECT_THROW(load_events(path), SerializeError);
  // The pristine dump still loads.
  save_events(path, events);
  EXPECT_EQ(load_events(path).size(), events.size());
  std::remove(path.c_str());
}

TEST(Serialize, FileRoundTripAndStagedReanalysis) {
  // The staged-deployment use case: dump a world's detected events, reload
  // them into a fresh EventStore, and get identical rollups.
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const std::string path = "/tmp/dosm_serialize_test.bin";
  std::vector<AttackEvent> events(world->store.events().begin(),
                                  world->store.events().end());
  save_events(path, events);

  const auto loaded = load_events(path);
  EventStore restored(world->window);
  for (const auto& event : loaded) restored.add(event);
  restored.finalize();

  const auto& pfx2as = world->population.pfx2as();
  const auto original =
      world->store.summarize(SourceFilter::kCombined, pfx2as);
  const auto reloaded = restored.summarize(SourceFilter::kCombined, pfx2as);
  EXPECT_EQ(original.events, reloaded.events);
  EXPECT_EQ(original.unique_targets, reloaded.unique_targets);
  EXPECT_EQ(original.unique_slash24, reloaded.unique_slash24);
  EXPECT_EQ(original.unique_asns, reloaded.unique_asns);
  std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsMissingFile) {
  EXPECT_THROW(load_events("/nonexistent/path/events.bin"), SerializeError);
}

TEST(Serialize, FailuresThrowTheDedicatedErrorType) {
  // Legacy catch sites keep working (SerializeError IS-A runtime_error)...
  static_assert(std::is_base_of_v<std::runtime_error, SerializeError>);
  // ...but the thrown object is the dedicated type, with a useful message.
  std::istringstream empty(std::string(), std::ios::binary);
  try {
    read_events(empty);
    FAIL() << "expected SerializeError";
  } catch (const SerializeError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

}  // namespace
}  // namespace dosm::core
