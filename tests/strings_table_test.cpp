// String helpers and text-table rendering tests.
#include <gtest/gtest.h>

#include "common/strings.h"
#include "common/table.h"

namespace dosm {
namespace {

TEST(HumanCount, Magnitudes) {
  EXPECT_EQ(human_count(12470000), "12.47M");
  EXPECT_EQ(human_count(8430), "8.43k");
  EXPECT_EQ(human_count(731), "731");
  EXPECT_EQ(human_count(1257600000000.0), "1257.60G");
  EXPECT_EQ(human_count(0), "0");
  EXPECT_EQ(human_count(3.14159, 1), "3.1");
}

TEST(Percent, Formatting) {
  EXPECT_EQ(percent(0.2556), "25.56%");
  EXPECT_EQ(percent(1.0, 0), "100%");
  EXPECT_EQ(percent(0.031, 1), "3.1%");
}

TEST(Fixed, Formatting) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-1.5, 0), "-2");  // round-to-even snprintf behavior
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
  EXPECT_EQ(split("xyz", '.').size(), 1u);
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("  \t "), "");
  EXPECT_EQ(trim("no-ws"), "no-ws");
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("WwW.ExAmPlE.CoM"), "www.example.com");
}

TEST(IEndsWith, CaseInsensitive) {
  EXPECT_TRUE(iends_with("www.example.COM", ".com"));
  EXPECT_TRUE(iends_with("abc", "abc"));
  EXPECT_FALSE(iends_with("abc", "abcd"));
  EXPECT_FALSE(iends_with("example.org", ".com"));
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "count"});
  table.add_row({"alpha", "12"});
  table.add_row({"b", "3456"});
  const auto out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Right-aligned numbers: "12" is padded to the width of "count"/"3456".
  EXPECT_NE(out.find("   12"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_NO_THROW(table.render());
  EXPECT_NO_THROW(table.to_csv());
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable table({"k", "v"});
  table.add_row({"with,comma", "with\"quote"});
  const auto csv = table.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TextTable, AlignmentOverride) {
  TextTable table({"x", "y"});
  table.set_align(1, Align::kLeft);
  table.add_row({"1", "ab"});
  EXPECT_THROW(table.set_align(5, Align::kLeft), std::out_of_range);
}

}  // namespace
}  // namespace dosm
