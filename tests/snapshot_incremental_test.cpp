// Segmented incremental snapshots: segment bucketing, structural sharing
// across publishes (O(new-day) publish cost), QueryEngine::publish error
// paths, publisher version monotonicity, and a publisher/reader stress run
// (the latter is in the TSan job's target list alongside
// query_concurrency_test).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "query/engine.h"
#include "query/scan.h"
#include "query/segment.h"
#include "query/snapshot.h"
#include "sim/scenario.h"

namespace dosm::query {
namespace {

using core::AttackEvent;
using net::Ipv4Addr;

AttackEvent event_at(const StudyWindow& window, int day, double offset_s) {
  AttackEvent event;
  event.target = Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(day + 1));
  event.start = static_cast<double>(window.day_start(day)) + offset_s;
  event.end = event.start + 60.0;
  event.intensity = 1.0;
  return event;
}

class SegmentBucketingTest : public ::testing::Test {
 protected:
  SegmentBucketingTest() {
    window_.end = civil_from_days(days_from_civil(window_.start) + 9);
  }
  StudyWindow window_{};
  meta::PrefixToAsMap pfx2as_;
  meta::GeoDatabase geo_;
};

TEST_F(SegmentBucketingTest, SegmentDaysControlsGranularity) {
  std::vector<AttackEvent> events;
  for (int day = 0; day < 9; ++day) {
    events.push_back(event_at(window_, day, 100.0));
    events.push_back(event_at(window_, day, 200.0));
  }

  const auto single =
      build_segments(window_, events, BuildContext{pfx2as_, geo_});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0]->size(), events.size());

  const auto daily =
      build_segments(window_, events, BuildContext{pfx2as_, geo_, 1, 1});
  ASSERT_EQ(daily.size(), 9u);
  for (const auto& segment : daily) EXPECT_EQ(segment->size(), 2u);

  const auto coarse =
      build_segments(window_, events, BuildContext{pfx2as_, geo_, 1, 4});
  ASSERT_EQ(coarse.size(), 3u);  // days 0-3, 4-7, 8
  EXPECT_EQ(coarse[0]->size(), 8u);
  EXPECT_EQ(coarse[1]->size(), 8u);
  EXPECT_EQ(coarse[2]->size(), 2u);

  // Segments cover strictly increasing, non-overlapping start ranges.
  for (std::size_t i = 1; i < daily.size(); ++i)
    EXPECT_GT(daily[i]->start_min(), daily[i - 1]->start_max());
}

TEST_F(SegmentBucketingTest, OutOfWindowEventsGetTheirOwnBuckets) {
  std::vector<AttackEvent> events;
  AttackEvent before = event_at(window_, 0, 100.0);
  before.start = static_cast<double>(window_.start_time()) - 3600.0;
  AttackEvent after = event_at(window_, 0, 100.0);
  after.start = static_cast<double>(window_.end_time()) + 3600.0;
  events.push_back(before);
  events.push_back(event_at(window_, 2, 100.0));
  events.push_back(event_at(window_, 6, 100.0));
  events.push_back(after);

  const auto segments =
      build_segments(window_, events, BuildContext{pfx2as_, geo_, 1, 5});
  // pre-window, days 0-4, days 5-8 (9-day window), post-window.
  ASSERT_EQ(segments.size(), 4u);
  for (const auto& segment : segments) EXPECT_EQ(segment->size(), 1u);
  EXPECT_LT(segments.front()->start_max(),
            static_cast<double>(window_.start_time()));
  EXPECT_GE(segments.back()->start_min(),
            static_cast<double>(window_.end_time()));

  // A snapshot assembled from them still answers like the oracle.
  const Snapshot snap(window_, segments, 1);
  const ScanOracle oracle(events, window_, pfx2as_, geo_);
  EXPECT_EQ(snap.count(Query{}), oracle.count(Query{}));
  EXPECT_EQ(snap.size(), events.size());
}

TEST_F(SegmentBucketingTest, SnapshotRejectsMisorderedOrNullSegments) {
  std::vector<AttackEvent> events{event_at(window_, 1, 0.0),
                                  event_at(window_, 5, 0.0)};
  auto segments =
      build_segments(window_, events, BuildContext{pfx2as_, geo_, 1, 1});
  ASSERT_EQ(segments.size(), 2u);
  std::swap(segments[0], segments[1]);
  EXPECT_THROW(Snapshot(window_, segments, 1), std::invalid_argument);
  segments[0] = nullptr;
  EXPECT_THROW(Snapshot(window_, segments, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// QueryEngine::publish error paths (satellite coverage).
// ---------------------------------------------------------------------------

TEST(QueryEnginePublishTest, RejectsNullAndNonIncreasingVersions) {
  StudyWindow window;
  meta::PrefixToAsMap pfx2as;
  meta::GeoDatabase geo;
  const BuildContext ctx{pfx2as, geo};
  QueryEngine engine;

  EXPECT_THROW(engine.publish(nullptr), std::invalid_argument);
  EXPECT_EQ(engine.snapshot(), nullptr);  // failed publish leaves no state
  EXPECT_EQ(engine.publishes(), 0u);

  engine.publish(Snapshot::build(window, {}, ctx, 5));
  // Equal and lower versions are both rejected, and the served snapshot
  // stays untouched by the failed publishes.
  EXPECT_THROW(engine.publish(Snapshot::build(window, {}, ctx, 5)),
               std::invalid_argument);
  EXPECT_THROW(engine.publish(Snapshot::build(window, {}, ctx, 4)),
               std::invalid_argument);
  EXPECT_THROW(engine.publish(nullptr), std::invalid_argument);
  ASSERT_NE(engine.snapshot(), nullptr);
  EXPECT_EQ(engine.snapshot()->version(), 5u);
  EXPECT_EQ(engine.publishes(), 1u);

  engine.publish(Snapshot::build(window, {}, ctx, 6));
  EXPECT_EQ(engine.snapshot()->version(), 6u);
  EXPECT_EQ(engine.publishes(), 2u);
}

// ---------------------------------------------------------------------------
// Incremental publisher: structural sharing + version monotonicity.
// ---------------------------------------------------------------------------

TEST(SnapshotPublisherTest, PublishesShareSealedSegmentsByPointer) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const BuildContext ctx{world->population.pfx2as(), world->population.geo()};
  QueryEngine engine;
  SnapshotPublisher publisher(engine, world->window, ctx);

  std::vector<std::shared_ptr<const Snapshot>> published;
  std::uint64_t last_version = 0;
  for (const auto& event : world->store.events()) {
    publisher.ingest(event);
    const auto snap = engine.snapshot();
    if (snap && snap->version() != last_version) {
      last_version = snap->version();
      published.push_back(snap);
    }
  }
  publisher.finish();
  published.push_back(engine.snapshot());

  ASSERT_GE(published.size(), 3u);
  for (std::size_t i = 0; i < published.size(); ++i) {
    // Versions are exactly 1..N in publish order, one segment per publish.
    EXPECT_EQ(published[i]->version(), i + 1);
    EXPECT_EQ(published[i]->num_segments(), i + 1);
    if (i == 0) continue;
    // Structural sharing: every prior segment is reused BY POINTER; only
    // the newly sealed day is new. This is what makes publishes O(new-day).
    const auto prev = published[i - 1]->segments();
    const auto curr = published[i]->segments();
    for (std::size_t s = 0; s < prev.size(); ++s)
      EXPECT_EQ(curr[s].get(), prev[s].get()) << "publish " << i;
  }

  EXPECT_EQ(publisher.segments_sealed(), publisher.snapshots_published());
  EXPECT_EQ(publisher.snapshots_published(), published.size());

  // The incrementally accumulated snapshot equals a batch full rebuild,
  // row ids included.
  const auto full =
      Snapshot::build(world->window, world->store.events(), ctx);
  const auto& final_snap = *published.back();
  ASSERT_EQ(final_snap.size(), full->size());
  EXPECT_EQ(final_snap.match_rows(Query{}), full->match_rows(Query{}));
  EXPECT_EQ(final_snap.unique_targets(Query{}), full->unique_targets(Query{}));
  Query telescope;
  telescope.from_source(core::SourceFilter::kTelescope);
  EXPECT_EQ(final_snap.count(telescope), full->count(telescope));
  EXPECT_EQ(final_snap.country_ranking(Query{}).size(),
            full->country_ranking(Query{}).size());
}

// Run under TSan (tools/check.sh tsan) this proves sealed-segment sharing
// introduces no data race: readers aggregate over segments that the
// publisher is concurrently re-listing into new snapshots.
TEST(SnapshotPublisherTest, SegmentedPublishStressWithConcurrentReaders) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const BuildContext ctx{world->population.pfx2as(), world->population.geo()};
  QueryEngine engine;
  // Seed an empty v0 snapshot so readers always have something to query
  // (the publisher's first real publish is v1 with one segment).
  engine.publish(Snapshot::build(world->window, {}, ctx, 0));

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  const auto reader = [&] {
    std::uint64_t last_version = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = engine.snapshot();
      ASSERT_NE(snap, nullptr);
      ASSERT_GE(snap->version(), last_version);
      last_version = snap->version();
      // Whole-day consistency: row count partitions exactly across
      // segments, and an aggregation over all segments stays coherent.
      std::size_t rows = 0;
      for (const auto& segment : snap->segments()) rows += segment->size();
      ASSERT_EQ(rows, snap->size());
      ASSERT_EQ(snap->count(Query{}), snap->size());
      ASSERT_EQ(snap->num_segments(), snap->version());
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int t = 0; t < 3; ++t) readers.emplace_back(reader);

  SnapshotPublisher publisher(engine, world->window, ctx);
  std::thread writer([&] {
    for (const auto& event : world->store.events()) publisher.ingest(event);
    publisher.finish();
    done.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_GE(publisher.snapshots_published(), 2u);
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace dosm::query
