// Churn stress for the subscription layer, run under TSan in CI: dispatch,
// tick, subscribe/unsubscribe churn, long-poll fetches, and live /watch
// HTTP clients all race each other while a SnapshotPublisher concurrently
// seals and publishes days into the engine the same server queries. The
// assertions are liveness + invariants (per-subscription seqs strictly
// ascend past the cursor, every HTTP response parses with a sane status);
// the interesting failures are the data races TSan would flag.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <charconv>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "query/engine.h"
#include "query/snapshot.h"
#include "serve/server.h"
#include "sim/scenario.h"
#include "subscribe/dispatcher.h"

namespace dosm::subscribe {
namespace {

core::AttackEvent event_on(std::uint32_t addr, double start) {
  core::AttackEvent event;
  event.target = net::Ipv4Addr{addr};
  event.start = start;
  event.end = start + 60.0;
  event.intensity = 10.0;
  event.ip_proto = (addr & 1) != 0 ? 6 : 17;
  event.top_port = 80;
  return event;
}

Predicate random_predicate(Rng& rng) {
  Predicate p;
  switch (rng.next_below(4)) {
    case 0:
      p.match_prefix(net::Prefix(
          net::Ipv4Addr{0x0a000000u +
                        static_cast<std::uint32_t>(rng.next_below(64))},
          32));
      break;
    case 1:
      p.match_prefix(
          net::Prefix(net::Ipv4Addr{0x0a000000u}, 24));
      break;
    case 2:
      p.match_proto(rng.bernoulli(0.5) ? 6 : 17);
      break;
    default:
      break;  // firehose
  }
  return p;
}

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_response(int fd) {
  std::string response;
  char chunk[4096];
  std::size_t need = std::string::npos;
  for (;;) {
    if (need == std::string::npos) {
      const std::size_t head_end = response.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        const std::size_t field = response.find("Content-Length: ");
        if (field == std::string::npos || field > head_end) return response;
        std::size_t length = 0;
        std::from_chars(response.data() + field + 16,
                        response.data() + head_end, length);
        need = head_end + 4 + length;
      }
    }
    if (need != std::string::npos && response.size() >= need)
      return response.substr(0, need);
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return response;
    response.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string roundtrip(std::uint16_t port, const std::string& method,
                      const std::string& target) {
  const int fd = connect_to(port);
  if (fd < 0) return {};
  std::string response;
  if (send_all(fd,
               method + " " + target + " HTTP/1.1\r\nConnection: close\r\n\r\n"))
    response = read_response(fd);
  ::close(fd);
  return response;
}

int status_of(const std::string& response) {
  if (response.size() < 12) return 0;
  int status = 0;
  std::from_chars(response.data() + 9, response.data() + 12, status);
  return status;
}

TEST(SubscribeStressTest, ChurnRacesDispatchFetchAndLivePublisher) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const query::BuildContext build_ctx{world->population.pfx2as(),
                                      world->population.geo()};
  query::QueryEngine engine;
  Dispatcher dispatcher;
  serve::ServerConfig config;
  config.workers = 2;
  const serve::Server server(config, engine, &dispatcher);

  std::atomic<int> failures{0};
  std::atomic<bool> producing{true};

  // The live publisher: seals and publishes day after day into the engine
  // the server is concurrently querying.
  std::thread publisher_thread([&] {
    query::SnapshotPublisher publisher(engine, world->window, build_ctx);
    for (const auto& event : world->store.events()) publisher.ingest(event);
    publisher.finish();
  });

  // Dispatch: a steady alert stream with a tick every batch.
  std::thread producer([&] {
    for (int i = 0; i < 3000; ++i) {
      dispatcher.ingest(event_on(
          0x0a000000u + static_cast<std::uint32_t>(i % 64), 100.0 * i));
      if (i % 32 == 31) dispatcher.tick();
    }
    dispatcher.tick();
    producing.store(false);
  });

  // Churn: subscriptions come and go while alerts dispatch.
  std::vector<std::thread> churners;
  for (int t = 0; t < 2; ++t) {
    churners.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(0xc0ffee + t));
      std::vector<SubscriptionId> mine;
      for (int i = 0; i < 400; ++i) {
        if (mine.empty() || rng.bernoulli(0.6)) {
          mine.push_back(dispatcher.subscribe(random_predicate(rng)));
        } else {
          const std::size_t pick = rng.next_below(mine.size());
          dispatcher.unsubscribe(mine[pick]);
          mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(pick));
        }
      }
      for (const SubscriptionId id : mine) dispatcher.unsubscribe(id);
    });
  }

  // Fetchers: long-poll their own firehose, asserting seqs strictly ascend.
  std::vector<std::thread> fetchers;
  for (int t = 0; t < 2; ++t) {
    fetchers.emplace_back([&] {
      const SubscriptionId id = dispatcher.subscribe(Predicate{});
      std::uint64_t cursor = 0;
      for (;;) {
        const auto result = dispatcher.fetch(id, cursor, 64, 5);
        if (!result) {
          failures.fetch_add(1);  // our own id must stay valid
          break;
        }
        for (const Notification& n : result->notifications) {
          if (n.seq <= cursor) failures.fetch_add(1);
          cursor = n.seq;
        }
        if (!producing.load() && result->notifications.empty()) break;
      }
      dispatcher.unsubscribe(id);
    });
  }

  // HTTP clients: subscribe/watch/query over real sockets against the
  // same dispatcher and the engine mid-publish.
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&] {
      const std::string created =
          roundtrip(server.port(), "POST", "/subscribe?prefix=10.0.0.0/24");
      if (status_of(created) != 200) failures.fetch_add(1);
      for (int i = 0; i < 40; ++i) {
        const std::string watch =
            roundtrip(server.port(), "GET", "/watch?id=1&cursor=0&max=8");
        const int status = status_of(watch);
        if (status != 200 && status != 404) failures.fetch_add(1);
        const std::string query =
            roundtrip(server.port(), "GET", "/query?agg=summary");
        const int query_status = status_of(query);
        if (query_status != 200 && query_status != 503) failures.fetch_add(1);
      }
    });
  }

  producer.join();
  for (auto& t : churners) t.join();
  for (auto& t : fetchers) t.join();
  for (auto& t : clients) t.join();
  publisher_thread.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiescent determinism: with dispatch stopped, replaying a cursor twice
  // returns identical sequences.
  const SubscriptionId id = dispatcher.subscribe(Predicate{});
  dispatcher.ingest(event_on(0x0a0000ffu, 1.0));
  dispatcher.tick();
  const auto a = dispatcher.fetch(id, 0, 0);
  const auto b = dispatcher.fetch(id, 0, 0);
  ASSERT_TRUE(a.has_value() && b.has_value());
  ASSERT_EQ(a->notifications.size(), b->notifications.size());
  for (std::size_t i = 0; i < a->notifications.size(); ++i)
    EXPECT_EQ(a->notifications[i].seq, b->notifications[i].seq);
}

}  // namespace
}  // namespace dosm::subscribe
