// Fixture: raw new/delete in analysis code (src/core et al.) must be flagged.
struct FixtureEvent {
  int id = 0;
};

void fixture_leaky() {
  auto* ev = new FixtureEvent;
  delete ev;
  int* arr = new int[8];
  delete[] arr;
}
