// Fixture: unbounded C string/format functions must be flagged.
#include <cstring>
#include <cstdio>

void fixture_copy(char* dst, const char* src) {
  strcpy(dst, src);
  char buf[16];
  sprintf(buf, "%s", src);
}
