// Fixture: wall-clock time sources must be flagged in pipeline code.
#include <chrono>
#include <ctime>

long fixture_now() {
  auto tp = std::chrono::system_clock::now();
  auto tick = std::chrono::steady_clock::now();
  std::time_t t = time(nullptr);
  (void)tp;
  (void)tick;
  return static_cast<long>(t);
}
