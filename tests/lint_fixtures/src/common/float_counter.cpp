// Fixture: packet/byte/request counters declared floating-point must be
// flagged — counter accumulation must be exact.
struct FixtureStats {
  double packet_count = 0;
  float n_bytes = 0;
  double total_requests = 0;
};
