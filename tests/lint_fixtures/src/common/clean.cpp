// Fixture: none of this may be flagged — banned tokens appear only inside
// comments and string literals, counters are integral, and new/delete is
// outside the analysis directories anyway.
#include <cstdint>
#include <cstring>
#include <string>

// The EWMA keeps the old weight and folds in the new value each tick;
// never calls rand() or system_clock (this comment must not trip the lint).
struct CleanStats {
  std::uint64_t packet_count = 0;
  std::uint64_t n_bytes = 0;
  double mean_rate_pps = 0.0;   // a rate, not a counter: double is fine
  double total_weight = 0.0;    // accumulated weights are not packet counters
};

std::string clean_describe() {
  return "strcpy(, rand( and delete p are just words in this string";
}

void clean_copy(void* dst, const void* src, std::size_t n) {
  std::memcpy(dst, src, n);  // bounded memory copy is allowed
}
