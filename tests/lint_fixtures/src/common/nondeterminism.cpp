// Fixture: unseeded / libc randomness outside common/rng must be flagged.
#include <cstdlib>
#include <random>

int fixture_random() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return rand() + static_cast<int>(gen());
}
