// Fixture: parent-relative includes and C-compat headers must be flagged.
#include "../core/event.h"
#include <stdlib.h>
#include <bits/stdc++.h>

int fixture_includes() { return 0; }
