// Fixture: an inline lint:allow(<rule>) marker suppresses exactly that rule
// on its own line.
#include <random>

unsigned fixture_entropy_shim() {
  std::random_device rd;  // lint:allow(nondeterminism) — fixture exception
  return rd();
}
