// Analytic observation tests: ground truth -> detected events must respect
// thresholds, coverage scaling, and statistical consistency with the
// packet-level tier.
#include <gtest/gtest.h>

#include "sim/observe.h"
#include "telescope/pipeline.h"
#include "telescope/synthesizer.h"

namespace dosm::sim {
namespace {

using net::Ipv4Addr;

GroundTruthAttack direct_attack(double victim_pps, double duration_s) {
  GroundTruthAttack attack;
  attack.kind = AttackKind::kDirect;
  attack.target = Ipv4Addr(9, 9, 9, 9);
  attack.start = 1000.0;
  attack.duration_s = duration_s;
  attack.victim_pps = victim_pps;
  attack.response_rate = 1.0;
  attack.ip_proto = 6;
  attack.ports = {80};
  return attack;
}

GroundTruthAttack reflection_attack(double rps, double duration_s,
                                    int honeypots) {
  GroundTruthAttack attack;
  attack.kind = AttackKind::kReflection;
  attack.target = Ipv4Addr(9, 9, 9, 9);
  attack.start = 1000.0;
  attack.duration_s = duration_s;
  attack.per_reflector_rps = rps;
  attack.honeypots_hit = honeypots;
  attack.reflector = amppot::ReflectionProtocol::kNtp;
  return attack;
}

TEST(ObserveTelescope, StrongAttackIsDetectedAccurately) {
  Rng rng(1);
  // 25600 pps at the victim -> 100 pps at the telescope.
  const auto attack = direct_attack(25600.0, 600.0);
  const auto event = observe_telescope(attack, rng);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->victim, attack.target);
  EXPECT_NEAR(static_cast<double>(event->packets), 60000.0, 2500.0);
  EXPECT_NEAR(event->duration(), 600.0, 5.0);
  EXPECT_NEAR(event->max_pps, 100.0, 15.0);
  EXPECT_EQ(event->attack_proto, 6);
  EXPECT_EQ(event->top_port, 80);
  EXPECT_EQ(event->num_ports, 1);
}

TEST(ObserveTelescope, WeakAttackIsFiltered) {
  Rng rng(2);
  // 256 pps at victim -> 1 pps at scope, but only 10 seconds: ~10 packets.
  EXPECT_FALSE(observe_telescope(direct_attack(256.0, 10.0), rng).has_value());
  // Long but glacial: 0.05 pps at scope -> fails the max-pps threshold.
  int detections = 0;
  for (int i = 0; i < 20; ++i) {
    if (observe_telescope(direct_attack(12.8, 3600.0), rng)) ++detections;
  }
  EXPECT_EQ(detections, 0);
}

TEST(ObserveTelescope, ReflectionAttacksAreInvisible) {
  Rng rng(3);
  EXPECT_FALSE(observe_telescope(reflection_attack(100.0, 600.0, 24), rng)
                   .has_value());
}

TEST(ObserveTelescope, ResponseRateReducesDetection) {
  Rng rng(4);
  auto attack = direct_attack(25600.0, 600.0);
  attack.response_rate = 0.5;
  const auto event = observe_telescope(attack, rng);
  ASSERT_TRUE(event.has_value());
  EXPECT_NEAR(static_cast<double>(event->packets), 30000.0, 2000.0);
}

TEST(ObserveTelescope, CustomCoverageScales) {
  Rng rng(5);
  ObservationConfig config;
  config.telescope_coverage = 1.0 / 65536.0;  // a /16 telescope
  const auto event = observe_telescope(direct_attack(25600.0, 600.0), rng, config);
  // Expected packets: 25600/65536*600 = 234; still above 25 but rate is
  // ~0.39 pps < 0.5 max-pps threshold -> usually filtered.
  if (event) {
    EXPECT_LT(event->packets, 400u);
  }
}

TEST(ObserveAmppot, StrongAttackIsDetected) {
  Rng rng(6);
  const auto attack = reflection_attack(10.0, 600.0, 12);
  const auto event = observe_amppot(attack, rng);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->victim, attack.target);
  EXPECT_EQ(event->protocol, amppot::ReflectionProtocol::kNtp);
  EXPECT_EQ(event->honeypots, 12u);
  EXPECT_NEAR(static_cast<double>(event->requests), 72000.0, 4000.0);
  EXPECT_NEAR(event->avg_rps(), 10.0, 1.5);
}

TEST(ObserveAmppot, BelowThresholdFiltered) {
  Rng rng(7);
  // 0.1 rps x 600 s = 60 requests per honeypot: under the 100 threshold.
  EXPECT_FALSE(observe_amppot(reflection_attack(0.1, 600.0, 24), rng).has_value());
  // Invisible when no honeypot is on the reflector list.
  EXPECT_FALSE(observe_amppot(reflection_attack(100.0, 600.0, 0), rng).has_value());
  // Direct attacks are invisible to honeypots.
  EXPECT_FALSE(observe_amppot(direct_attack(25600.0, 600.0), rng).has_value());
}

TEST(ObserveAmppot, DurationCappedAt24h) {
  Rng rng(8);
  const auto attack = reflection_attack(5.0, 30.0 * 3600.0, 8);
  const auto event = observe_amppot(attack, rng);
  ASSERT_TRUE(event.has_value());
  EXPECT_LE(event->duration(), 24.0 * 3600.0 + 1.0);
}

TEST(ObserveAll, RoutesByKind) {
  Rng rng(9);
  std::vector<GroundTruthAttack> attacks{direct_attack(25600.0, 600.0),
                                         reflection_attack(10.0, 600.0, 12),
                                         direct_attack(128.0, 30.0)};  // weak
  const auto observed = observe_all(attacks, rng);
  EXPECT_EQ(observed.telescope.size(), 1u);
  EXPECT_EQ(observed.honeypot.size(), 1u);
}

// The ablation check in miniature: the analytic tier and the packet tier
// must agree on the detection verdict and key statistics for identical
// ground truth.
class TierAgreement : public ::testing::TestWithParam<double> {};

TEST_P(TierAgreement, AnalyticMatchesPacketLevel) {
  const double victim_pps = GetParam();
  const double duration = 400.0;

  // Analytic tier: detection probability over repetitions.
  Rng rng(42);
  int analytic_detections = 0;
  constexpr int kReps = 10;
  for (int i = 0; i < kReps; ++i) {
    if (observe_telescope(direct_attack(victim_pps, duration), rng))
      ++analytic_detections;
  }

  // Packet tier: one full synthesis + Moore pipeline.
  telescope::TelescopeSynthesizer synthesizer(43);
  telescope::SpoofedAttackSpec spec;
  spec.victim = Ipv4Addr(9, 9, 9, 9);
  spec.start = 1000.0;
  spec.duration_s = duration;
  spec.victim_pps = victim_pps;
  spec.ports = {80};
  const auto packets = synthesizer.synthesize({&spec, 1}, 0.0, 5000.0);
  telescope::Pipeline pipeline;
  auto& rsdos = pipeline.emplace_plugin<telescope::RsdosPlugin>();
  pipeline.replay(packets);
  pipeline.finish();
  const bool packet_detected = !rsdos.events().empty();

  if (victim_pps >= 2000.0) {
    EXPECT_EQ(analytic_detections, kReps);
    EXPECT_TRUE(packet_detected);
    // Compare max-pps estimates between tiers.
    Rng rng2(44);
    const auto analytic = observe_telescope(direct_attack(victim_pps, duration), rng2);
    ASSERT_TRUE(analytic.has_value());
    EXPECT_NEAR(analytic->max_pps, rsdos.events()[0].max_pps,
                std::max(1.0, 0.5 * analytic->max_pps));
  } else if (victim_pps <= 30.0) {
    EXPECT_EQ(analytic_detections, 0);
    EXPECT_FALSE(packet_detected);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, TierAgreement,
                         ::testing::Values(10.0, 30.0, 2000.0, 25600.0, 256000.0));

}  // namespace
}  // namespace dosm::sim
