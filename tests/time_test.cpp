// Civil-date arithmetic and study-window tests.
#include <gtest/gtest.h>

#include "common/time.h"

namespace dosm {
namespace {

TEST(CivilDate, EpochIsZero) {
  EXPECT_EQ(days_from_civil({1970, 1, 1}), 0);
  EXPECT_EQ(civil_from_days(0), (CivilDate{1970, 1, 1}));
}

TEST(CivilDate, KnownDates) {
  EXPECT_EQ(days_from_civil({2015, 3, 1}), 16495);
  EXPECT_EQ(days_from_civil({2017, 2, 28}), 17225);
  EXPECT_EQ(days_from_civil({2000, 1, 1}), 10957);
}

TEST(CivilDate, RoundTripsAcrossYears) {
  for (std::int64_t d = -1000; d <= 40000; d += 37) {
    EXPECT_EQ(days_from_civil(civil_from_days(d)), d);
  }
}

TEST(CivilDate, LeapYearHandling) {
  // 2016 was a leap year: Feb 29 exists.
  const auto feb29 = days_from_civil({2016, 2, 29});
  EXPECT_EQ(civil_from_days(feb29), (CivilDate{2016, 2, 29}));
  EXPECT_EQ(civil_from_days(feb29 + 1), (CivilDate{2016, 3, 1}));
  // 1900 was not (divisible by 100 but not 400).
  EXPECT_EQ(days_from_civil({1900, 3, 1}) - days_from_civil({1900, 2, 28}), 1);
  // 2000 was (divisible by 400).
  EXPECT_EQ(days_from_civil({2000, 3, 1}) - days_from_civil({2000, 2, 28}), 2);
}

TEST(CivilDate, UnixConversions) {
  EXPECT_EQ(unix_from_civil({1970, 1, 2}), 86400);
  EXPECT_EQ(civil_from_unix(86399), (CivilDate{1970, 1, 1}));
  EXPECT_EQ(civil_from_unix(86400), (CivilDate{1970, 1, 2}));
}

TEST(CivilDate, DayIndexFloorsNegatives) {
  EXPECT_EQ(day_index(-1), -1);
  EXPECT_EQ(day_index(-86400), -1);
  EXPECT_EQ(day_index(-86401), -2);
  EXPECT_EQ(day_index(0), 0);
}

TEST(CivilDate, Formatting) {
  EXPECT_EQ(to_string(CivilDate{2015, 3, 1}), "2015-03-01");
  EXPECT_EQ(to_string(CivilDate{2017, 12, 31}), "2017-12-31");
}

TEST(CivilDate, Parsing) {
  EXPECT_EQ(parse_civil("2016-11-04"), (CivilDate{2016, 11, 4}));
  EXPECT_THROW(parse_civil("not-a-date"), std::invalid_argument);
  EXPECT_THROW(parse_civil("2016-13-01"), std::invalid_argument);
  EXPECT_THROW(parse_civil("2016-00-10"), std::invalid_argument);
}

TEST(StudyWindow, PaperWindowIs731Days) {
  const StudyWindow window;
  EXPECT_EQ(window.num_days(), 731);  // includes the 2016 leap day
  EXPECT_EQ(window.end_time() - window.start_time(), 731 * kSecondsPerDay);
}

TEST(StudyWindow, ContainsAndDayOf) {
  const StudyWindow window;
  EXPECT_TRUE(window.contains(window.start_time()));
  EXPECT_FALSE(window.contains(window.start_time() - 1));
  EXPECT_TRUE(window.contains(window.end_time() - 1));
  EXPECT_FALSE(window.contains(window.end_time()));
  EXPECT_EQ(window.day_of(window.start_time()), 0);
  EXPECT_EQ(window.day_of(window.end_time() - 1), 730);
  EXPECT_EQ(window.day_of(window.start_time() + 3 * kSecondsPerDay + 5), 3);
}

TEST(StudyWindow, DayStartAndDateRoundTrip) {
  const StudyWindow window;
  for (int d : {0, 100, 365, 730}) {
    EXPECT_EQ(window.day_of(window.day_start(d)), d);
  }
  EXPECT_EQ(window.date_of_day(0), (CivilDate{2015, 3, 1}));
  EXPECT_EQ(window.date_of_day(730), (CivilDate{2017, 2, 28}));
  EXPECT_EQ(window.date_of_day(366), (CivilDate{2016, 3, 1}));
}

TEST(FormatDuration, HumanReadable) {
  EXPECT_EQ(format_duration(45), "45s");
  EXPECT_EQ(format_duration(60), "1m");
  EXPECT_EQ(format_duration(255), "4m15s");
  EXPECT_EQ(format_duration(3600), "1h");
  EXPECT_EQ(format_duration(4 * 3600 + 12 * 60), "4h12m");
}

}  // namespace
}  // namespace dosm
