// Concurrency stress surface for the sanitizer matrix (run under TSan in
// CI). Hammers the work queue, the sharded detectors, and the lazily-sorted
// EmpiricalDistribution from many threads; correctness assertions are
// secondary to giving the race detector real interleavings to chew on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "parallel/detect.h"
#include "parallel/work_queue.h"
#include "parallel/workload.h"

namespace dosm::parallel {
namespace {

TEST(ParallelStress, WorkQueueHammering) {
  // Many small batches: thread startup/shutdown and index claiming are the
  // contended paths, not the task bodies.
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    run_tasks(64, 8, [&](std::size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50ull * (64ull * 65ull / 2ull));
}

TEST(ParallelStress, RepeatedShardedDetects) {
  WorkloadConfig config;
  config.seed = 5;
  config.direct_attacks = 12;
  config.reflection_attacks = 4;
  config.window_s = 900.0;
  const auto workload = make_workload(config);
  std::vector<HoneypotLog> logs;
  for (const auto& honeypot : workload.fleet->honeypots())
    logs.push_back({honeypot.id(), honeypot.log()});

  ParallelBackscatterDetector detector(ParallelConfig{8, 16});
  const auto first = detector.detect(workload.packets);
  const auto first_merged =
      parallel_consolidate(logs, {}, ParallelConfig{8, 16});
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(detector.detect(workload.packets).size(), first.size());
    EXPECT_EQ(parallel_consolidate(logs, {}, ParallelConfig{8, 16}).size(),
              first_merged.size());
  }
}

TEST(ParallelStress, ConcurrentDistributionReaders) {
  // The lazy sort in EmpiricalDistribution used to be an unguarded mutation
  // under const; concurrent first-queries raced. All readers below hit the
  // cold path together.
  for (int round = 0; round < 20; ++round) {
    EmpiricalDistribution dist;
    for (int i = 1000; i > 0; --i) dist.add(static_cast<double>(i));
    std::vector<std::thread> readers;
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    for (int t = 0; t < 8; ++t) {
      readers.emplace_back([&] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {}
        EXPECT_DOUBLE_EQ(dist.median(), 500.5);
        EXPECT_DOUBLE_EQ(dist.cdf(250.0), 0.25);
        EXPECT_DOUBLE_EQ(dist.percentile(100.0), 1000.0);
      });
    }
    while (ready.load() < 8) {}
    go.store(true, std::memory_order_release);
    for (auto& reader : readers) reader.join();
  }
}

}  // namespace
}  // namespace dosm::parallel
