// Statistics substrate tests: running stats, empirical distributions,
// log-binned histograms and daily series.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "common/stats.h"

namespace dosm {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MomentsMatchKnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(EmpiricalDistribution, PercentilesInterpolate) {
  EmpiricalDistribution dist({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(dist.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(dist.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(dist.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(dist.percentile(25), 2.0);
  EXPECT_DOUBLE_EQ(dist.percentile(87.5), 4.5);
  EXPECT_DOUBLE_EQ(dist.median(), 3.0);
}

TEST(EmpiricalDistribution, ThrowsOnEmptyPercentile) {
  EmpiricalDistribution dist;
  EXPECT_TRUE(dist.empty());
  EXPECT_THROW(dist.percentile(50), std::logic_error);
}

TEST(EmpiricalDistribution, CdfCountsAtMostX) {
  EmpiricalDistribution dist({1.0, 1.0, 2.0, 10.0});
  EXPECT_DOUBLE_EQ(dist.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(dist.cdf(1.0), 0.5);
  EXPECT_DOUBLE_EQ(dist.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(dist.cdf(9.99), 0.75);
  EXPECT_DOUBLE_EQ(dist.cdf(10.0), 1.0);
}

TEST(EmpiricalDistribution, AddAfterQueryResorts) {
  EmpiricalDistribution dist({3.0, 1.0});
  EXPECT_DOUBLE_EQ(dist.min(), 1.0);
  dist.add(0.5);
  EXPECT_DOUBLE_EQ(dist.min(), 0.5);
  EXPECT_DOUBLE_EQ(dist.max(), 3.0);
  EXPECT_NEAR(dist.mean(), (3.0 + 1.0 + 0.5) / 3.0, 1e-12);
}

TEST(EmpiricalDistribution, CdfAtEvaluatesCurve) {
  EmpiricalDistribution dist({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  const std::vector<double> xs{2.0, 5.0, 10.0};
  const auto curve = cdf_at(dist, xs);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].fraction, 0.2);
  EXPECT_DOUBLE_EQ(curve[1].fraction, 0.5);
  EXPECT_DOUBLE_EQ(curve[2].fraction, 1.0);
}

TEST(EmpiricalDistribution, CopySemanticsWithSortGuard) {
  // The lazy-sort guard (atomic + mutex) makes the class non-trivially
  // copyable; copies must be independent and preserve the sample.
  EmpiricalDistribution dist({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(dist.median(), 2.0);  // forces the sort
  EmpiricalDistribution copy(dist);
  EXPECT_DOUBLE_EQ(copy.median(), 2.0);
  copy.add(10.0);
  EXPECT_EQ(copy.size(), 4u);
  EXPECT_EQ(dist.size(), 3u);
  EXPECT_DOUBLE_EQ(copy.max(), 10.0);
  EXPECT_DOUBLE_EQ(dist.max(), 3.0);
  dist = copy;
  EXPECT_EQ(dist.size(), 4u);
  EXPECT_DOUBLE_EQ(dist.max(), 10.0);
}

TEST(EmpiricalDistribution, MoveSemanticsWithSortGuard) {
  EmpiricalDistribution dist({5.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(dist.median(), 5.0);
  EmpiricalDistribution moved(std::move(dist));
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_DOUBLE_EQ(moved.median(), 5.0);
  EmpiricalDistribution assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.size(), 3u);
  EXPECT_DOUBLE_EQ(assigned.percentile(100.0), 6.0);
}

TEST(LogBinHistogram, BinsMatchFigure6Shape) {
  LogBinHistogram hist(7);
  EXPECT_EQ(hist.num_bins(), 8u);  // n=1 plus 7 decades
  hist.add(1);
  hist.add(2);
  hist.add(10);
  hist.add(11);
  hist.add(100);
  hist.add(101);
  hist.add(5000);
  hist.add(3600000);  // 3.6M: top bin
  EXPECT_EQ(hist.bin(0), 1u);  // only the exact value 1
  EXPECT_EQ(hist.bin(1), 2u);  // (1,10]: 2 and 10
  EXPECT_EQ(hist.bin(2), 2u);  // (10,100]: 11 and 100
  EXPECT_EQ(hist.bin(4), 1u);  // (10^3,10^4]: 5000
  EXPECT_EQ(hist.bin(7), 1u);  // top bin: 3.6M
  EXPECT_EQ(hist.total(), 8u);
}

TEST(LogBinHistogram, ExactBoundaries) {
  LogBinHistogram hist(7);
  hist.add(1);     // bin 0
  hist.add(10);    // bin 1 (1 < n <= 10)
  hist.add(11);    // bin 2
  hist.add(100);   // bin 2
  hist.add(101);   // bin 3
  EXPECT_EQ(hist.bin(0), 1u);
  EXPECT_EQ(hist.bin(1), 1u);
  EXPECT_EQ(hist.bin(2), 2u);
  EXPECT_EQ(hist.bin(3), 1u);
}

TEST(LogBinHistogram, IgnoresZeroClampsHuge) {
  LogBinHistogram hist(3);
  hist.add(0);
  EXPECT_EQ(hist.total(), 0u);
  hist.add(1000000000);  // far above 10^3: clamps into the top bin
  EXPECT_EQ(hist.bin(3), 1u);
}

TEST(LogBinHistogram, Labels) {
  LogBinHistogram hist(3);
  EXPECT_EQ(hist.bin_label(0), "n=1");
  EXPECT_EQ(hist.bin_label(1), "1<n<=10^1");
  EXPECT_EQ(hist.bin_label(2), "10^1<n<=10^2");
  EXPECT_THROW(hist.bin_label(9), std::out_of_range);
}

TEST(DailySeries, AddSetAndAggregates) {
  DailySeries series(5);
  series.add(0, 2.0);
  series.add(0, 3.0);
  series.set(4, 10.0);
  EXPECT_DOUBLE_EQ(series.at(0), 5.0);
  EXPECT_DOUBLE_EQ(series.at(4), 10.0);
  EXPECT_DOUBLE_EQ(series.total(), 15.0);
  EXPECT_DOUBLE_EQ(series.daily_mean(), 3.0);
  EXPECT_DOUBLE_EQ(series.max(), 10.0);
  EXPECT_EQ(series.argmax(), 4);
  EXPECT_THROW(series.add(5, 1.0), std::out_of_range);
}

TEST(DailySeries, SmoothingPreservesConstants) {
  DailySeries series(10);
  for (int d = 0; d < 10; ++d) series.set(d, 4.0);
  const auto smooth = series.smoothed(5);
  for (int d = 0; d < 10; ++d) EXPECT_DOUBLE_EQ(smooth.at(d), 4.0);
}

TEST(DailySeries, SmoothingAveragesSpike) {
  DailySeries series(7);
  series.set(3, 7.0);
  const auto smooth = series.smoothed(7);
  EXPECT_DOUBLE_EQ(smooth.at(3), 1.0);  // 7 / window of 7
  EXPECT_GT(smooth.at(0), 0.0);         // partial edge window
}

// Property: percentile is monotone in p.
class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, MonotoneInP) {
  EmpiricalDistribution dist;
  std::uint64_t x = static_cast<std::uint64_t>(GetParam());
  for (int i = 0; i < 500; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    dist.add(double(x >> 40));
  }
  double prev = dist.percentile(0);
  for (double p = 5; p <= 100; p += 5) {
    const double cur = dist.percentile(p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone, ::testing::Values(1, 2, 3, 7, 19));

}  // namespace
}  // namespace dosm
