// DPS layer tests: provider registry, DNS-fingerprint classifier, and
// protection-timeline extraction.
#include <gtest/gtest.h>

#include "dps/classifier.h"
#include "dps/migration.h"
#include "dps/providers.h"

namespace dosm::dps {
namespace {

using net::Ipv4Addr;

TEST(ProviderRegistry, PaperProvidersComplete) {
  const auto registry = paper_providers();
  EXPECT_EQ(registry.size(), 10u);
  for (const char* name :
       {"Akamai", "CenturyLink", "CloudFlare", "DOSarrest", "F5", "Incapsula",
        "Level 3", "Neustar", "Verisign", "VirtualRoad"}) {
    EXPECT_TRUE(registry.find(name).has_value()) << name;
  }
  EXPECT_FALSE(registry.find("Imperva").has_value());
}

TEST(ProviderRegistry, PrefixesAreDisjoint) {
  const auto registry = paper_providers();
  for (const auto& a : registry.all()) {
    for (const auto& b : registry.all()) {
      if (a.id == b.id) continue;
      for (const auto& pa : a.prefixes)
        for (const auto& pb : b.prefixes)
          EXPECT_FALSE(pa.contains(pb.network()) || pb.contains(pa.network()))
              << a.name << " overlaps " << b.name;
    }
  }
}

TEST(ProviderRegistry, LookupValidation) {
  const auto registry = paper_providers();
  EXPECT_THROW(registry.provider(kNoProvider), std::out_of_range);
  EXPECT_THROW(registry.provider(99), std::out_of_range);
  EXPECT_EQ(registry.provider(1).id, 1);
}

class ClassifierTest : public ::testing::Test {
 protected:
  ClassifierTest() : registry_(paper_providers()), classifier_(registry_, names_) {}

  ProviderRegistry registry_;
  dns::NameTable names_;
  Classifier classifier_;
};

TEST_F(ClassifierTest, DetectsCnameDiversion) {
  const auto cf = *registry_.find("CloudFlare");
  dns::WebsiteRecord record;
  record.www_cname = names_.intern("customer123.cf-shield.net");
  record.www_a = Ipv4Addr(10, 0, 0, 1);  // origin leaks: CNAME wins anyway
  const auto result = classifier_.classify(record);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, cf);
}

TEST_F(ClassifierTest, DetectsNsDelegation) {
  const auto verisign = *registry_.find("Verisign");
  dns::WebsiteRecord record;
  record.ns = names_.intern("ns1.verisigndns-dps.com");
  record.www_a = Ipv4Addr(10, 0, 0, 1);
  EXPECT_EQ(classifier_.classify(record), verisign);
}

TEST_F(ClassifierTest, DetectsBgpDiversionFromARecord) {
  const auto neustar = *registry_.find("Neustar");
  dns::WebsiteRecord record;
  record.www_a = registry_.provider(neustar).prefixes.front().address_at(77);
  EXPECT_EQ(classifier_.classify(record), neustar);
  EXPECT_EQ(classifier_.provider_for_address(record.www_a), neustar);
}

TEST_F(ClassifierTest, UnprotectedSitesClassifyAsNone) {
  dns::WebsiteRecord record;
  record.www_a = Ipv4Addr(93, 184, 216, 34);
  record.www_cname = names_.intern("cdn.ordinary-cdn.net");
  record.ns = names_.intern("ns1.ordinary-hoster.com");
  EXPECT_FALSE(classifier_.classify(record).has_value());
  EXPECT_FALSE(classifier_.classify(dns::WebsiteRecord{}).has_value());
}

TEST_F(ClassifierTest, SuffixMatchRejectsLookalikes) {
  dns::WebsiteRecord record;
  record.www_cname = names_.intern("evil-cf-shield.net");  // no dot boundary
  record.www_a = Ipv4Addr(10, 0, 0, 1);
  EXPECT_FALSE(classifier_.classify(record).has_value());
}

class TimelineTest : public ::testing::Test {
 protected:
  TimelineTest()
      : registry_(paper_providers()), classifier_(registry_, names_), store_(100) {}

  dns::WebsiteRecord unprotected() {
    dns::WebsiteRecord record;
    record.www_a = Ipv4Addr(10, 0, 0, 1);
    return record;
  }

  dns::WebsiteRecord protected_by(const char* provider) {
    const auto id = *registry_.find(provider);
    dns::WebsiteRecord record;
    record.www_cname =
        names_.intern("cust." + registry_.provider(id).cname_suffix);
    record.www_a = registry_.provider(id).prefixes.front().address_at(10);
    return record;
  }

  ProviderRegistry registry_;
  dns::NameTable names_;
  Classifier classifier_;
  dns::SnapshotStore store_;
};

TEST_F(TimelineTest, UnprotectedSiteHasEmptyTimeline) {
  const auto id = store_.add_domain("plain.com", 0);
  store_.record_change(id, 0, unprotected());
  const auto timeline = protection_timeline(store_, id, classifier_);
  EXPECT_FALSE(timeline.preexisting);
  EXPECT_FALSE(timeline.first_protected_day.has_value());
  EXPECT_FALSE(timeline.ever_protected());
}

TEST_F(TimelineTest, PreexistingCustomerDetected) {
  const auto id = store_.add_domain("shop.com", 5);
  store_.record_change(id, 5, protected_by("Akamai"));
  const auto timeline = protection_timeline(store_, id, classifier_);
  EXPECT_TRUE(timeline.preexisting);
  EXPECT_EQ(timeline.first_provider, *registry_.find("Akamai"));
  EXPECT_TRUE(timeline.protected_on(50));
  ASSERT_EQ(timeline.intervals.size(), 1u);
  EXPECT_EQ(timeline.intervals[0].from_day, 5);
  EXPECT_EQ(timeline.intervals[0].to_day, 99);
}

TEST_F(TimelineTest, MigrationDayRecorded) {
  const auto id = store_.add_domain("later.com", 0);
  store_.record_change(id, 0, unprotected());
  store_.record_change(id, 42, protected_by("Incapsula"));
  const auto timeline = protection_timeline(store_, id, classifier_);
  EXPECT_FALSE(timeline.preexisting);
  ASSERT_TRUE(timeline.first_protected_day.has_value());
  EXPECT_EQ(*timeline.first_protected_day, 42);
  EXPECT_EQ(timeline.first_provider, *registry_.find("Incapsula"));
  EXPECT_FALSE(timeline.protected_on(41));
  EXPECT_TRUE(timeline.protected_on(42));
}

TEST_F(TimelineTest, ProviderSwitchProducesTwoIntervals) {
  const auto id = store_.add_domain("switcher.com", 0);
  store_.record_change(id, 0, unprotected());
  store_.record_change(id, 20, protected_by("CloudFlare"));
  store_.record_change(id, 60, protected_by("Neustar"));
  const auto timeline = protection_timeline(store_, id, classifier_);
  ASSERT_EQ(timeline.intervals.size(), 2u);
  EXPECT_EQ(timeline.intervals[0].provider, *registry_.find("CloudFlare"));
  EXPECT_EQ(timeline.intervals[0].to_day, 59);
  EXPECT_EQ(timeline.intervals[1].provider, *registry_.find("Neustar"));
  EXPECT_EQ(*timeline.first_protected_day, 20);
}

TEST_F(TimelineTest, DroppingProtectionClosesInterval) {
  const auto id = store_.add_domain("dropper.com", 0);
  store_.record_change(id, 0, protected_by("F5"));
  store_.record_change(id, 30, unprotected());
  const auto timeline = protection_timeline(store_, id, classifier_);
  EXPECT_TRUE(timeline.preexisting);
  ASSERT_EQ(timeline.intervals.size(), 1u);
  EXPECT_EQ(timeline.intervals[0].to_day, 29);
  EXPECT_FALSE(timeline.protected_on(30));
}

TEST_F(TimelineTest, CustomerCountsPerProvider) {
  const auto a = store_.add_domain("a.com", 0);
  store_.record_change(a, 0, protected_by("Akamai"));
  const auto b = store_.add_domain("b.com", 0);
  store_.record_change(b, 0, unprotected());
  store_.record_change(b, 10, protected_by("Akamai"));
  const auto c = store_.add_domain("c.com", 0);
  store_.record_change(c, 0, protected_by("VirtualRoad"));
  const auto timelines = all_timelines(store_, classifier_);
  const auto counts = provider_customer_counts(timelines, registry_);
  EXPECT_EQ(counts[*registry_.find("Akamai")], 2u);
  EXPECT_EQ(counts[*registry_.find("VirtualRoad")], 1u);
  EXPECT_EQ(counts[*registry_.find("Neustar")], 0u);
}

}  // namespace
}  // namespace dosm::dps
