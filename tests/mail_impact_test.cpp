// Mail-infrastructure impact tests (§8 extension).
#include <gtest/gtest.h>

#include "core/mail_impact.h"

namespace dosm::core {
namespace {

using net::Ipv4Addr;

class MailImpactTest : public ::testing::Test {
 protected:
  MailImpactTest()
      : t0_(static_cast<double>(window_.start_time())),
        dns_(window_.num_days()) {}

  dns::DomainId domain_with_mail(const std::string& name, Ipv4Addr web,
                                 Ipv4Addr mx, int day = 0) {
    const auto id = dns_.add_domain(name, day);
    dns::WebsiteRecord record;
    record.www_a = web;
    record.mx = names_.intern("mx." + name);
    record.mx_a = mx;
    dns_.record_change(id, day, record);
    return id;
  }

  void attack(Ipv4Addr target, int day) {
    AttackEvent event;
    event.source = EventSource::kTelescope;
    event.target = target;
    event.start = t0_ + day * 86400.0 + 1000.0;
    event.end = event.start + 600.0;
    event.intensity = 1.0;
    event.ip_proto = 6;
    store_.add(event);
  }

  StudyWindow window_{};
  double t0_;
  dns::NameTable names_;
  dns::SnapshotStore dns_;
  EventStore store_{window_};
};

TEST_F(MailImpactTest, JoinsAttacksAgainstMxHosts) {
  const Ipv4Addr shared_mx(10, 0, 0, 9);
  domain_with_mail("a.com", Ipv4Addr(10, 0, 0, 1), shared_mx);
  domain_with_mail("b.com", Ipv4Addr(10, 0, 0, 2), shared_mx);
  // A domain whose mail lives elsewhere.
  domain_with_mail("c.com", Ipv4Addr(10, 0, 0, 3), Ipv4Addr(10, 0, 0, 10));
  // A domain without mail at all.
  const auto d = dns_.add_domain("d.com", 0);
  dns::WebsiteRecord record;
  record.www_a = Ipv4Addr(10, 0, 0, 4);
  dns_.record_change(d, 0, record);

  attack(shared_mx, 5);  // hits the shared exchanger
  attack(Ipv4Addr(10, 0, 0, 4), 6);  // web IP of d.com: no mail there
  store_.finalize();
  dns_.build_reverse_index();

  const MailImpactAnalysis mail(store_, dns_);
  EXPECT_EQ(mail.mail_domains(), 3u);
  EXPECT_EQ(mail.affected_domains(), 2u);
  EXPECT_DOUBLE_EQ(mail.affected_daily().at(5), 2.0);
  EXPECT_DOUBLE_EQ(mail.affected_daily().at(6), 0.0);
  EXPECT_EQ(mail.mail_hosting_targets(), 1u);
  EXPECT_NEAR(mail.affected_fraction(), 2.0 / 3.0, 1e-9);
}

TEST_F(MailImpactTest, TopMailTargetsRankedByInvolvements) {
  const Ipv4Addr big_mx(10, 0, 0, 9), small_mx(10, 0, 0, 10);
  for (int i = 0; i < 5; ++i)
    domain_with_mail("big" + std::to_string(i) + ".com",
                     Ipv4Addr(10, 0, 1, static_cast<std::uint8_t>(i)), big_mx);
  domain_with_mail("small.com", Ipv4Addr(10, 0, 2, 1), small_mx);
  attack(big_mx, 3);
  attack(big_mx, 9);   // repeat: involvements accumulate
  attack(small_mx, 4);
  store_.finalize();
  dns_.build_reverse_index();

  const MailImpactAnalysis mail(store_, dns_);
  const auto top = mail.top_mail_targets(5);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, big_mx);
  EXPECT_EQ(top[0].second, 10u);  // 5 domains x 2 attacks
  EXPECT_EQ(top[1].second, 1u);
}

TEST_F(MailImpactTest, HistoricalMxMappingRespected) {
  const Ipv4Addr old_mx(10, 0, 0, 9), new_mx(10, 0, 0, 10);
  const auto id = domain_with_mail("mover.com", Ipv4Addr(10, 0, 1, 1), old_mx);
  dns::WebsiteRecord moved;
  moved.www_a = Ipv4Addr(10, 0, 1, 1);
  moved.mx = names_.intern("mx2.mover.com");
  moved.mx_a = new_mx;
  dns_.record_change(id, 20, moved);

  attack(old_mx, 30);  // after the move: no longer affects mover.com
  attack(new_mx, 40);
  store_.finalize();
  dns_.build_reverse_index();
  const MailImpactAnalysis mail(store_, dns_);
  EXPECT_DOUBLE_EQ(mail.affected_daily().at(30), 0.0);
  EXPECT_DOUBLE_EQ(mail.affected_daily().at(40), 1.0);
}

TEST_F(MailImpactTest, EmptyWorldIsClean) {
  store_.finalize();
  dns_.build_reverse_index();
  const MailImpactAnalysis mail(store_, dns_);
  EXPECT_EQ(mail.mail_domains(), 0u);
  EXPECT_EQ(mail.affected_domains(), 0u);
  EXPECT_DOUBLE_EQ(mail.affected_fraction(), 0.0);
  EXPECT_TRUE(mail.top_mail_targets(3).empty());
}

TEST(MailDns, ReverseMailIndexBasics) {
  dns::SnapshotStore store(50);
  dns::NameTable names;
  const auto id = store.add_domain("x.com", 0);
  dns::WebsiteRecord record;
  record.www_a = Ipv4Addr(1, 1, 1, 1);
  record.mx = names.intern("mx.x.com");
  record.mx_a = Ipv4Addr(2, 2, 2, 2);
  store.record_change(id, 0, record);
  EXPECT_THROW(store.mail_domains_on(Ipv4Addr(2, 2, 2, 2), 0), std::logic_error);
  store.build_reverse_index();
  EXPECT_EQ(store.mail_domains_on(Ipv4Addr(2, 2, 2, 2), 10).size(), 1u);
  EXPECT_EQ(store.count_mail_domains_on(Ipv4Addr(2, 2, 2, 2), 10), 1u);
  EXPECT_TRUE(store.mail_domains_on(Ipv4Addr(1, 1, 1, 1), 10).empty());
}

// Regression: the involvement ranking used std::sort (unstable) with a
// count-only comparator; once the input exceeds the introsort threshold,
// tied addresses came back in a scrambled order that differed from the
// map-ordered input. Ties must break by ascending address.
TEST_F(MailImpactTest, TopMailTargetsTieBreakByAddress) {
  // 24 exchangers, one domain and one attack each: all tied at count 1,
  // comfortably above the 16-element insertion-sort cutoff.
  for (int i = 0; i < 24; ++i) {
    const auto o = static_cast<std::uint8_t>(i);
    domain_with_mail("tied" + std::to_string(i) + ".com",
                     Ipv4Addr(10, 0, 1, o), Ipv4Addr(10, 0, 3, o));
  }
  for (int i = 0; i < 24; ++i)
    attack(Ipv4Addr(10, 0, 3, static_cast<std::uint8_t>(i)), 2);
  store_.finalize();
  dns_.build_reverse_index();

  const MailImpactAnalysis mail(store_, dns_);
  const auto top = mail.top_mail_targets(24);
  ASSERT_EQ(top.size(), 24u);
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(top[static_cast<std::size_t>(i)].first,
              Ipv4Addr(10, 0, 3, static_cast<std::uint8_t>(i)));
    EXPECT_EQ(top[static_cast<std::size_t>(i)].second, 1u);
  }
}

}  // namespace
}  // namespace dosm::core
