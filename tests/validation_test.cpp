// Detector-validation tests: ground truth is used ONLY here (scoring), and
// the scores must show the designed behaviour — recall rising with
// intensity, honeypot recall near-total above threshold, migrations
// re-found from DNS.
#include <gtest/gtest.h>

#include "sim/validation.h"

namespace dosm::sim {
namespace {

class ValidationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config = ScenarioConfig::small();
    config.window.end = {2015, 8, 27};  // 180 days
    config.seed = 4242;
    world_ = build_world(config).release();
    validation_ = new DetectorValidation(validate_detectors(*world_));
  }
  static void TearDownTestSuite() {
    delete validation_;
    delete world_;
  }
  static World* world_;
  static DetectorValidation* validation_;
};

World* ValidationTest::world_ = nullptr;
DetectorValidation* ValidationTest::validation_ = nullptr;

TEST_F(ValidationTest, TelescopeRecallRisesWithIntensity) {
  const auto& buckets = validation_->telescope_by_intensity;
  // Below ~0.1 pps at the telescope nothing should be detectable; above
  // ~10 pps nearly everything should be.
  double low_recall = 1.0, high_recall = 0.0;
  for (const auto& bucket : buckets) {
    if (bucket.attacks < 20) continue;
    if (bucket.hi <= 0.1) low_recall = std::min(low_recall, bucket.recall());
    if (bucket.lo >= 10.0) high_recall = std::max(high_recall, bucket.recall());
  }
  EXPECT_LT(low_recall, 0.05);
  EXPECT_GT(high_recall, 0.8);
  // Monotone (non-strict) across populated buckets.
  double prev = -1.0;
  for (const auto& bucket : buckets) {
    if (bucket.attacks < 30) continue;
    EXPECT_GE(bucket.recall(), prev - 0.1) << "bucket " << bucket.lo;
    prev = bucket.recall();
  }
}

TEST_F(ValidationTest, OverallRecallsMatchDesign) {
  // Most direct ground-truth attacks sit below the Moore thresholds by
  // design (see AttackerConfig::direct_intensity_mu).
  EXPECT_GT(validation_->direct_recall(), 0.05);
  EXPECT_LT(validation_->direct_recall(), 0.6);
  // Reflection attacks above the request threshold are almost all caught.
  EXPECT_GT(validation_->reflection_recall(), 0.7);
}

TEST_F(ValidationTest, DetectedAttributesTrackTruth) {
  ASSERT_GT(validation_->matched_events, 100u);
  // Observed durations are clipped estimates of the true span.
  EXPECT_LT(validation_->duration_relative_error, 0.25);
  // Observed max-pps is the busiest-minute Poisson maximum: biased high
  // relative to the mean rate (substantially so at sub-1-pps rates where a
  // single busy minute doubles the estimate), but within a small factor.
  EXPECT_LT(validation_->intensity_relative_error, 1.0);
}

TEST_F(ValidationTest, MigrationDetectionRecall) {
  const auto migration = validate_migration_detection(*world_);
  ASSERT_GT(migration.ground_truth, 20u);
  // Every applied DNS change must be re-found by the classifier...
  EXPECT_GT(migration.recall(), 0.95);
  // ...and nearly all with the exact day (same-day registration edge cases
  // may land on the domain's first-seen day instead).
  EXPECT_GT(static_cast<double>(migration.date_exact) /
                static_cast<double>(std::max<std::uint64_t>(migration.detected, 1)),
            0.9);
}

}  // namespace
}  // namespace dosm::sim
