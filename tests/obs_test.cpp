// Observability substrate tests: striped counters, histogram bucket
// semantics, registry invariants, exporters, and the no-perturbation switch.
#include <gtest/gtest.h>

#include <array>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "serve/metrics.h"

namespace dosm::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override { set_enabled(true); }
  MetricsRegistry registry_;
};

TEST_F(ObsTest, CounterFoldsStripesAcrossThreads) {
  Counter& counter = registry_.counter("test.hits", "hits");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& worker : pool) worker.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST_F(ObsTest, CounterRegistrationIsIdempotent) {
  Counter& a = registry_.counter("test.once", "first help wins");
  Counter& b = registry_.counter("test.once", "ignored");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.help(), "first help wins");
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  Gauge& gauge = registry_.gauge("test.depth", "queue depth");
  gauge.set(42);
  EXPECT_EQ(gauge.value(), 42);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), 32);
}

TEST_F(ObsTest, HistogramUsesPrometheusLeSemantics) {
  const std::array<double, 3> bounds{1.0, 10.0, 100.0};
  Histogram& hist = registry_.histogram("test.latency", "latency", bounds);
  hist.observe(0.5);    // <= 1
  hist.observe(1.0);    // le is inclusive: lands in the 1.0 bucket
  hist.observe(5.0);    // <= 10
  hist.observe(100.0);  // <= 100
  hist.observe(1e6);    // +Inf overflow
  const auto buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
}

TEST_F(ObsTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(registry_.histogram("test.empty", "", std::span<const double>{}),
               std::invalid_argument);
  const std::array<double, 3> unsorted{1.0, 3.0, 2.0};
  EXPECT_THROW(registry_.histogram("test.unsorted", "", unsorted),
               std::invalid_argument);
  const std::array<double, 2> dup{1.0, 1.0};
  EXPECT_THROW(registry_.histogram("test.dup", "", dup),
               std::invalid_argument);
}

TEST_F(ObsTest, NameConflictsAcrossKindsThrow) {
  registry_.counter("test.name", "");
  EXPECT_THROW(registry_.gauge("test.name", ""), std::logic_error);
  EXPECT_THROW(registry_.histogram("test.name", "", latency_buckets()),
               std::logic_error);
}

TEST_F(ObsTest, MalformedNamesRejected) {
  EXPECT_THROW(registry_.counter("", ""), std::invalid_argument);
  EXPECT_THROW(registry_.counter("9starts_with_digit", ""),
               std::invalid_argument);
  EXPECT_THROW(registry_.counter("has space", ""), std::invalid_argument);
  EXPECT_THROW(registry_.counter("Upper.case", ""), std::invalid_argument);
}

TEST_F(ObsTest, SnapshotIsNameSorted) {
  registry_.counter("test.zebra", "").inc();
  registry_.counter("test.alpha", "").inc();
  registry_.counter("test.mid", "").inc();
  const auto snap = registry_.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "test.alpha");
  EXPECT_EQ(snap.counters[1].name, "test.mid");
  EXPECT_EQ(snap.counters[2].name, "test.zebra");
}

TEST_F(ObsTest, ResetZeroesValuesButKeepsRegistrations) {
  Counter& counter = registry_.counter("test.n", "");
  counter.add(7);
  Gauge& gauge = registry_.gauge("test.g", "");
  gauge.set(5);
  registry_.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(&registry_.counter("test.n", ""), &counter);
}

TEST_F(ObsTest, DisabledInstrumentationRecordsNothing) {
  Counter& counter = registry_.counter("test.off", "");
  Histogram& hist = registry_.histogram("test.off_hist", "", latency_buckets());
  set_enabled(false);
  counter.add(100);
  hist.observe(0.5);
  {
    const ScopedTimer timer(hist);
  }
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(hist.count(), 0u);
  set_enabled(true);
  counter.add(3);
  EXPECT_EQ(counter.value(), 3u);
}

TEST_F(ObsTest, ScopedTimerObservesOnceIntoHistogram) {
  Histogram& hist = registry_.histogram("test.span", "", latency_buckets());
  {
    ScopedTimer timer(hist);
    timer.stop();
    timer.stop();  // second stop is a no-op
  }  // destructor after stop() must not double-observe
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_GE(hist.sum(), 0.0);
}

TEST_F(ObsTest, JsonExportIsDeterministicAndWellFormed) {
  registry_.counter("test.b", "").add(2);
  registry_.counter("test.a", "").add(1);
  registry_.gauge("test.g", "").set(-4);
  const std::array<double, 2> bounds{0.5, 2.0};
  registry_.histogram("test.h", "", bounds).observe(1.0);
  const auto snap = registry_.snapshot();
  const std::string json = to_json(snap);
  EXPECT_EQ(json, to_json(registry_.snapshot()));  // stable across renders
  EXPECT_NE(json.find("\"test.a\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"test.b\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"test.g\": -4"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_LT(json.find("\"test.a\""), json.find("\"test.b\""));
}

TEST_F(ObsTest, PrometheusExportUsesCumulativeBuckets) {
  const std::array<double, 2> bounds{1.0, 10.0};
  Histogram& hist = registry_.histogram("test.lat", "latency", bounds);
  hist.observe(0.5);
  hist.observe(5.0);
  hist.observe(50.0);
  const std::string prom = to_prometheus(registry_.snapshot());
  EXPECT_NE(prom.find("# TYPE dosm_test_lat histogram"), std::string::npos);
  EXPECT_NE(prom.find("dosm_test_lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("dosm_test_lat_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("dosm_test_lat_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("dosm_test_lat_count 3"), std::string::npos);
}

TEST_F(ObsTest, PrometheusCounterNamesArePrefixedAndSanitized) {
  registry_.counter("telescope.packets_seen", "help text").add(9);
  const std::string prom = to_prometheus(registry_.snapshot());
  EXPECT_NE(prom.find("dosm_telescope_packets_seen 9"), std::string::npos);
  EXPECT_NE(prom.find("# HELP dosm_telescope_packets_seen help text"),
            std::string::npos);
}

TEST_F(ObsTest, GlobalRegistryIsASingleton) {
  Counter& a = MetricsRegistry::global().counter("test.global_singleton", "");
  Counter& b = MetricsRegistry::global().counter("test.global_singleton", "");
  EXPECT_EQ(&a, &b);
}

// The query server registers its serve.* family in the global registry;
// the Prometheus exporter must expose every series a dashboard scrapes
// (request counters, admission drops, cache accounting, the latency
// histogram). Touching serve::Metrics::get() is what registers them.
TEST_F(ObsTest, ServeMetricsAppearInPrometheusExport) {
  serve::Metrics& metrics = serve::Metrics::get();
  metrics.requests.inc();
  metrics.request_seconds.observe(0.002);
  const std::string prom =
      to_prometheus(MetricsRegistry::global().snapshot());
  for (const std::string_view name :
       {"dosm_serve_requests", "dosm_serve_admission_rejected",
        "dosm_serve_admission_enqueued", "dosm_serve_queue_depth",
        "dosm_serve_responses_ok", "dosm_serve_responses_client_error",
        "dosm_serve_responses_server_error", "dosm_serve_bad_requests",
        "dosm_serve_budget_rows_rejected", "dosm_serve_budget_time_rejected",
        "dosm_serve_cache_hits", "dosm_serve_cache_misses",
        "dosm_serve_cache_evictions", "dosm_serve_cache_stale_dropped",
        "dosm_serve_cache_bytes", "dosm_serve_cache_entries",
        "dosm_serve_connections_accepted", "dosm_serve_connections_closed"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << name;
  }
  EXPECT_NE(prom.find("# TYPE dosm_serve_request_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("dosm_serve_request_seconds_bucket{le="),
            std::string::npos);
}

}  // namespace
}  // namespace dosm::obs
