// AmpPot honeypot tests: protocol registry, reply rate limiter, and the
// two-stage event consolidator.
#include <gtest/gtest.h>

#include "amppot/consolidator.h"
#include "amppot/honeypot.h"
#include "amppot/protocols.h"

namespace dosm::amppot {
namespace {

using net::Ipv4Addr;

TEST(Protocols, AllEightEmulatedProtocolsPresent) {
  const auto protocols = all_protocols();
  EXPECT_EQ(protocols.size(), kNumReflectionProtocols);
  // The paper's footnote list.
  for (const char* name :
       {"QOTD", "CharGen", "DNS", "NTP", "SSDP", "MSSQL", "RIPv1", "TFTP"}) {
    bool found = false;
    for (const auto& info : protocols) found |= info.name == name;
    EXPECT_TRUE(found) << name;
  }
}

TEST(Protocols, WellKnownPorts) {
  EXPECT_EQ(protocol_info(ReflectionProtocol::kNtp).udp_port, 123);
  EXPECT_EQ(protocol_info(ReflectionProtocol::kDns).udp_port, 53);
  EXPECT_EQ(protocol_info(ReflectionProtocol::kCharGen).udp_port, 19);
  EXPECT_EQ(protocol_info(ReflectionProtocol::kSsdp).udp_port, 1900);
  EXPECT_EQ(protocol_for_port(123), ReflectionProtocol::kNtp);
  EXPECT_EQ(protocol_for_port(520), ReflectionProtocol::kRipv1);
  EXPECT_FALSE(protocol_for_port(80).has_value());
}

TEST(Protocols, NtpHasHighestAmplification) {
  // NTP monlist has the largest BAF among the emulated set; that drives its
  // popularity with attackers (Table 6).
  const double ntp = protocol_info(ReflectionProtocol::kNtp).amplification;
  for (const auto& info : all_protocols()) {
    if (info.protocol != ReflectionProtocol::kNtp) {
      EXPECT_GT(ntp, info.amplification);
    }
  }
}

TEST(Protocols, ToStringRoundTrip) {
  EXPECT_EQ(to_string(ReflectionProtocol::kCharGen), "CharGen");
  EXPECT_EQ(to_string(ReflectionProtocol::kOther), "Other");
}

TEST(RateLimiter, AllowsFewerThanThreePerMinute) {
  ReplyRateLimiter limiter;  // default: <3 per minute
  const Ipv4Addr src(1, 2, 3, 4);
  EXPECT_TRUE(limiter.on_packet(0.0, src));
  EXPECT_TRUE(limiter.on_packet(1.0, src));
  EXPECT_FALSE(limiter.on_packet(2.0, src));  // third packet in the minute
  EXPECT_FALSE(limiter.on_packet(30.0, src));
  // A new minute resets the window.
  EXPECT_TRUE(limiter.on_packet(61.0, src));
}

TEST(RateLimiter, TracksSourcesIndependently) {
  ReplyRateLimiter limiter;
  const Ipv4Addr a(1, 1, 1, 1), b(2, 2, 2, 2);
  EXPECT_TRUE(limiter.on_packet(0.0, a));
  EXPECT_TRUE(limiter.on_packet(0.0, a));
  EXPECT_FALSE(limiter.on_packet(0.1, a));
  EXPECT_TRUE(limiter.on_packet(0.2, b));  // b unaffected by a's flood
  EXPECT_EQ(limiter.tracked_sources(), 2u);
}

TEST(RateLimiter, CompactDropsIdleSources) {
  ReplyRateLimiter limiter;
  limiter.on_packet(0.0, Ipv4Addr(1, 1, 1, 1));
  limiter.on_packet(100.0, Ipv4Addr(2, 2, 2, 2));
  limiter.compact(180.0);  // first source idle 180 s > 120 s, second only 80 s
  EXPECT_EQ(limiter.tracked_sources(), 1u);
  limiter.compact(500.0);
  EXPECT_EQ(limiter.tracked_sources(), 0u);
}

TEST(Honeypot, NonHarmProperty) {
  // The honeypot must reply to at most 2 of any source's packets per
  // minute, regardless of the attack rate — the design constraint that
  // keeps AmpPot from contributing attack bandwidth.
  Honeypot honeypot(0, Ipv4Addr(198, 51, 100, 10), meta::CountryCode("US"));
  const Ipv4Addr victim(9, 9, 9, 9);
  for (int i = 0; i < 6000; ++i) {
    RequestRecord req{i * 0.01, victim, ReflectionProtocol::kNtp, 8};
    honeypot.receive(req);
  }
  EXPECT_EQ(honeypot.requests_received(), 6000u);
  // 6000 packets over 60 s = 1 minute window: at most 2 replies per window,
  // windows restart when a minute elapses -> tiny number of replies.
  EXPECT_LE(honeypot.replies_sent(), 4u);
}

TEST(Honeypot, ClearLogKeepsCounters) {
  Honeypot honeypot(1, Ipv4Addr(198, 51, 100, 11), meta::CountryCode("DE"));
  honeypot.receive({0.0, Ipv4Addr(1, 1, 1, 1), ReflectionProtocol::kDns, 64});
  honeypot.clear_log();
  EXPECT_TRUE(honeypot.log().empty());
  EXPECT_EQ(honeypot.requests_received(), 1u);
}

std::vector<RequestRecord> flood(Ipv4Addr victim, ReflectionProtocol protocol,
                                 double start, double end, double rps) {
  std::vector<RequestRecord> log;
  for (double t = start; t < end; t += 1.0 / rps)
    log.push_back({t, victim, protocol, 8});
  return log;
}

TEST(Consolidator, ThresholdOf100RequestsIsExclusive) {
  const Ipv4Addr victim(9, 9, 9, 9);
  // Exactly 100 requests: NOT an event ("exceeding 100 requests").
  auto log = flood(victim, ReflectionProtocol::kNtp, 0.0, 100.0, 1.0);
  ASSERT_EQ(log.size(), 100u);
  EXPECT_TRUE(consolidate_log(log).empty());
  // 101 requests: an event.
  log.push_back({100.0, victim, ReflectionProtocol::kNtp, 8});
  const auto events = consolidate_log(log);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].requests, 101u);
  EXPECT_EQ(events[0].victim, victim);
}

TEST(Consolidator, GapSplitsSessions) {
  const Ipv4Addr victim(9, 9, 9, 9);
  auto log = flood(victim, ReflectionProtocol::kDns, 0.0, 60.0, 3.0);
  auto second = flood(victim, ReflectionProtocol::kDns, 7200.0, 7260.0, 3.0);
  log.insert(log.end(), second.begin(), second.end());
  ConsolidatorConfig config;
  config.min_requests = 100;
  config.gap_timeout_s = 3600.0;
  const auto events = consolidate_log(log, config);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LT(events[0].end, events[1].start);
}

TEST(Consolidator, SeparatesProtocolsAndVictims) {
  const Ipv4Addr v1(1, 1, 1, 1), v2(2, 2, 2, 2);
  auto log = flood(v1, ReflectionProtocol::kNtp, 0.0, 120.0, 2.0);
  auto l2 = flood(v1, ReflectionProtocol::kDns, 0.0, 120.0, 2.0);
  auto l3 = flood(v2, ReflectionProtocol::kNtp, 0.0, 120.0, 2.0);
  log.insert(log.end(), l2.begin(), l2.end());
  log.insert(log.end(), l3.begin(), l3.end());
  std::sort(log.begin(), log.end(),
            [](const RequestRecord& a, const RequestRecord& b) { return a.ts < b.ts; });
  const auto events = consolidate_log(log);
  EXPECT_EQ(events.size(), 3u);
}

TEST(Consolidator, CapsEventsAt24Hours) {
  const Ipv4Addr victim(9, 9, 9, 9);
  // 25 hours of steady requests; must split at the 24 h cap.
  const auto log = flood(victim, ReflectionProtocol::kNtp, 0.0, 25.0 * 3600.0, 0.1);
  const auto events = consolidate_log(log);
  ASSERT_GE(events.size(), 1u);
  for (const auto& event : events)
    EXPECT_LE(event.duration(), 24.0 * 3600.0 + 1.0);
}

TEST(Consolidator, AvgRpsIsPerReflector) {
  AmpPotEvent event;
  event.requests = 12000;
  event.start = 0.0;
  event.end = 600.0;
  event.honeypots = 4;
  EXPECT_DOUBLE_EQ(event.avg_rps(), 12000.0 / 600.0 / 4.0);
}

TEST(FleetMerge, OverlappingEventsCombine) {
  std::vector<AmpPotEvent> events(3);
  const Ipv4Addr victim(9, 9, 9, 9);
  events[0] = {victim, ReflectionProtocol::kNtp, 0.0, 300.0, 500, 1};
  events[1] = {victim, ReflectionProtocol::kNtp, 100.0, 400.0, 450, 1};
  events[2] = {victim, ReflectionProtocol::kNtp, 250.0, 500.0, 480, 1};
  const auto merged = merge_fleet_events(events);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].requests, 1430u);
  EXPECT_EQ(merged[0].honeypots, 3u);
  EXPECT_DOUBLE_EQ(merged[0].start, 0.0);
  EXPECT_DOUBLE_EQ(merged[0].end, 500.0);
}

TEST(FleetMerge, SameHoneypotOverlapCountsOnce) {
  // One honeypot whose log split into two overlapping sessions (e.g. a
  // brief sub-gap lull) must not be double-counted as two reflectors.
  std::vector<AmpPotEvent> events(2);
  const Ipv4Addr victim(9, 9, 9, 9);
  events[0] = {victim, ReflectionProtocol::kNtp, 0.0, 300.0, 500, 1, 7};
  events[1] = {victim, ReflectionProtocol::kNtp, 100.0, 400.0, 450, 1, 7};
  const auto merged = merge_fleet_events(events);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].requests, 950u);
  EXPECT_EQ(merged[0].honeypots, 1u);
  EXPECT_EQ(merged[0].honeypot_id, 7);
}

TEST(FleetMerge, DistinctHoneypotsEachCount) {
  std::vector<AmpPotEvent> events(3);
  const Ipv4Addr victim(9, 9, 9, 9);
  events[0] = {victim, ReflectionProtocol::kNtp, 0.0, 300.0, 500, 1, 3};
  events[1] = {victim, ReflectionProtocol::kNtp, 100.0, 400.0, 450, 1, 5};
  events[2] = {victim, ReflectionProtocol::kNtp, 250.0, 500.0, 480, 1, 3};
  const auto merged = merge_fleet_events(events);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].honeypots, 2u);  // ids {3, 5}; 3 contributes twice
  EXPECT_EQ(merged[0].honeypot_id, -1);  // mixed contributors
}

TEST(Consolidator, TagsEventsWithHoneypotId) {
  const Ipv4Addr victim(9, 9, 9, 9);
  const auto log = flood(victim, ReflectionProtocol::kNtp, 0.0, 200.0, 1.0);
  const auto events = consolidate_log(log, {}, /*honeypot_id=*/11);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].honeypot_id, 11);
  EXPECT_EQ(events[0].honeypots, 1u);
}

TEST(Consolidator, MinRequestsBoundaryIsStrictForAnyConfig) {
  // The "exceeding min_requests" rule is strict for custom configs too.
  const Ipv4Addr victim(9, 9, 9, 9);
  ConsolidatorConfig config;
  config.min_requests = 5;
  auto log = flood(victim, ReflectionProtocol::kSsdp, 0.0, 5.0, 1.0);
  ASSERT_EQ(log.size(), 5u);
  EXPECT_TRUE(consolidate_log(log, config).empty());
  log.push_back({5.0, victim, ReflectionProtocol::kSsdp, 8});
  EXPECT_EQ(consolidate_log(log, config).size(), 1u);
}

TEST(FleetMerge, DistinctProtocolsStaySeparate) {
  std::vector<AmpPotEvent> events(2);
  const Ipv4Addr victim(9, 9, 9, 9);
  events[0] = {victim, ReflectionProtocol::kNtp, 0.0, 300.0, 500, 1};
  events[1] = {victim, ReflectionProtocol::kDns, 0.0, 300.0, 450, 1};
  EXPECT_EQ(merge_fleet_events(events).size(), 2u);
}

TEST(FleetMerge, NonOverlappingStaySeparate) {
  std::vector<AmpPotEvent> events(2);
  const Ipv4Addr victim(9, 9, 9, 9);
  events[0] = {victim, ReflectionProtocol::kNtp, 0.0, 300.0, 500, 1};
  events[1] = {victim, ReflectionProtocol::kNtp, 301.0, 600.0, 450, 1};
  EXPECT_EQ(merge_fleet_events(events).size(), 2u);
}

}  // namespace
}  // namespace dosm::amppot
