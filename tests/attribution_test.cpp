// Peak-attribution tests (§5 case-study machinery).
#include <gtest/gtest.h>

#include "core/attribution.h"

namespace dosm::core {
namespace {

using net::Ipv4Addr;

class AttributionTest : public ::testing::Test {
 protected:
  AttributionTest()
      : t0_(static_cast<double>(window_.start_time())),
        dns_(window_.num_days()) {
    pfx2as_.announce(net::Prefix::parse("10.0.0.0/8"), 26496);
    pfx2as_.announce(net::Prefix::parse("20.0.0.0/8"), 16509);
    registry_.register_as(26496, "GoDaddy");
    registry_.register_as(16509, "Amazon AWS");
  }

  void host(const std::string& name, Ipv4Addr ip, const std::string& ns) {
    const auto id = dns_.add_domain(name, 0);
    dns::WebsiteRecord record;
    record.www_a = ip;
    record.ns = names_.intern(ns);
    dns_.record_change(id, 0, record);
  }

  void attack(Ipv4Addr target, int day, EventSource source) {
    AttackEvent event;
    event.source = source;
    event.target = target;
    event.start = t0_ + day * 86400.0 + 1000.0;
    event.end = event.start + 600.0;
    event.intensity = 1.0;
    event.ip_proto = 6;
    store_.add(event);
  }

  std::vector<PeakParty> run(int day) {
    store_.finalize();
    dns_.build_reverse_index();
    return attribute_peak(store_, dns_, names_, day, pfx2as_, registry_);
  }

  StudyWindow window_{};
  double t0_;
  dns::NameTable names_;
  dns::SnapshotStore dns_;
  meta::PrefixToAsMap pfx2as_;
  meta::AsRegistry registry_;
  EventStore store_{window_};
};

TEST_F(AttributionTest, GroupsByOriginAsAndRanksBySites) {
  for (int i = 0; i < 20; ++i)
    host("gd" + std::to_string(i) + ".com", Ipv4Addr(10, 0, 0, 1),
         "ns1.godaddy-dns.com");
  for (int i = 0; i < 3; ++i)
    host("aws" + std::to_string(i) + ".com", Ipv4Addr(20, 0, 0, 1),
         "ns1.mixed" + std::to_string(i) + ".com");
  attack(Ipv4Addr(10, 0, 0, 1), 10, EventSource::kTelescope);
  attack(Ipv4Addr(20, 0, 0, 1), 10, EventSource::kTelescope);
  attack(Ipv4Addr(10, 0, 1, 1), 10, EventSource::kTelescope);  // hosts nothing

  const auto parties = run(10);
  ASSERT_EQ(parties.size(), 2u);
  EXPECT_EQ(parties[0].name, "GoDaddy");
  EXPECT_EQ(parties[0].affected_sites, 20u);
  EXPECT_EQ(parties[0].attacked_ips, 1u);
  EXPECT_EQ(parties[0].common_ns, "ns1.godaddy-dns.com");
  EXPECT_EQ(parties[1].name, "Amazon AWS");
  EXPECT_EQ(parties[1].common_ns, "");  // no 60% NS majority
}

TEST_F(AttributionTest, DetectsJointAttackedParties) {
  host("a.com", Ipv4Addr(10, 0, 0, 1), "ns1.x.com");
  attack(Ipv4Addr(10, 0, 0, 1), 10, EventSource::kTelescope);
  attack(Ipv4Addr(10, 0, 0, 1), 10, EventSource::kHoneypot);  // overlapping
  host("b.com", Ipv4Addr(20, 0, 0, 1), "ns1.y.com");
  attack(Ipv4Addr(20, 0, 0, 1), 10, EventSource::kTelescope);

  const auto parties = run(10);
  ASSERT_EQ(parties.size(), 2u);
  for (const auto& party : parties) {
    if (party.name == "GoDaddy") {
      EXPECT_TRUE(party.joint_attacked);
    }
    if (party.name == "Amazon AWS") {
      EXPECT_FALSE(party.joint_attacked);
    }
  }
}

TEST_F(AttributionTest, OtherDaysAreExcluded) {
  host("a.com", Ipv4Addr(10, 0, 0, 1), "ns1.x.com");
  attack(Ipv4Addr(10, 0, 0, 1), 10, EventSource::kTelescope);
  attack(Ipv4Addr(10, 0, 0, 1), 12, EventSource::kTelescope);
  EXPECT_EQ(run(11).size(), 0u);
}

TEST_F(AttributionTest, UnroutedSpaceGetsSentinelName) {
  host("a.com", Ipv4Addr(99, 0, 0, 1), "ns1.x.com");  // no announcement
  attack(Ipv4Addr(99, 0, 0, 1), 5, EventSource::kTelescope);
  const auto parties = run(5);
  ASSERT_EQ(parties.size(), 1u);
  EXPECT_EQ(parties[0].name, "(unrouted)");
  EXPECT_EQ(parties[0].asn, meta::kUnknownAsn);
}

}  // namespace
}  // namespace dosm::core
