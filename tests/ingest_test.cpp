// Batched ingest tests: SPSC ring units, batched-vs-sequential identity
// (packets and TelescopeEvents, parameterized over batch size x ring
// capacity), the ingest-edge bugfix regressions (mid-stream I/O errors,
// snaplen truncation, VLAN tags), and skip accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "ingest/batch.h"
#include "ingest/decode.h"
#include "ingest/pipeline.h"
#include "ingest/ring.h"
#include "net/pcap.h"
#include "obs/metrics.h"
#include "telescope/pipeline.h"

namespace dosm {
namespace {

using ingest::BatchedPcapReader;
using ingest::FrameBatch;
using ingest::IngestOptions;
using ingest::SpscRing;
using net::PacketRecord;
using net::PcapReader;
using net::PcapWriter;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// Full-field comparison key; any divergence between the sequential and
/// batched front ends must be visible here.
auto record_key(const PacketRecord& rec) {
  return std::make_tuple(rec.ts_sec, rec.ts_usec, rec.src.value(),
                         rec.dst.value(), rec.proto, rec.ip_len, rec.ttl,
                         rec.src_port, rec.dst_port, rec.tcp_flags,
                         rec.icmp_type, rec.icmp_code, rec.has_quoted,
                         rec.quoted_proto, rec.quoted_src.value(),
                         rec.quoted_dst.value(), rec.quoted_src_port,
                         rec.quoted_dst_port);
}

auto event_key(const telescope::TelescopeEvent& e) {
  return std::make_tuple(e.victim, e.start, e.end, e.packets, e.bytes,
                         e.unique_sources, e.num_ports, e.top_port,
                         e.attack_proto, e.max_pps);
}

/// Seeded backscatter-like capture: bursts of SYN/ACK + RST + ICMP replies
/// and error messages from a few hundred "victims", dense enough that the
/// RS-DoS detector emits events (thresholds: 25 packets / 60 s / 0.5 pps).
std::vector<PacketRecord> make_capture(std::uint64_t seed, int packets) {
  Rng rng(seed);
  std::vector<PacketRecord> out;
  out.reserve(static_cast<std::size_t>(packets));
  double ts = 1425168000.0;
  for (int i = 0; i < packets; ++i) {
    ts += rng.uniform(0.0, 0.05);
    PacketRecord rec;
    rec.ts_sec = static_cast<UnixSeconds>(ts);
    rec.ts_usec = static_cast<std::uint32_t>((ts - static_cast<double>(rec.ts_sec)) * 1e6);
    // Few victims, many packets each: clears the Moore thresholds
    // (>= 25 packets, >= 60 s, >= 0.5 pps in some minute).
    const auto victim = static_cast<std::uint32_t>(rng.next_below(24));
    rec.src = net::Ipv4Addr(0x0a000000u + victim);
    rec.dst = net::Ipv4Addr(0x2c000000u + static_cast<std::uint32_t>(rng.next_below(1 << 16)));
    rec.ttl = 64;
    switch (rng.next_below(5)) {
      case 0:
      case 1: {  // TCP SYN/ACK backscatter
        rec.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
        rec.src_port = static_cast<std::uint16_t>(80 + rng.next_below(3));
        rec.dst_port = static_cast<std::uint16_t>(1024 + rng.next_below(60000));
        rec.tcp_flags = net::tcp_flags::kSyn | net::tcp_flags::kAck;
        break;
      }
      case 2: {  // TCP RST
        rec.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
        rec.src_port = 443;
        rec.dst_port = static_cast<std::uint16_t>(1024 + rng.next_below(60000));
        rec.tcp_flags = net::tcp_flags::kRst;
        break;
      }
      case 3: {  // ICMP echo reply
        rec.proto = static_cast<std::uint8_t>(net::IpProto::kIcmp);
        rec.icmp_type = static_cast<std::uint8_t>(net::IcmpType::kEchoReply);
        break;
      }
      default: {  // ICMP dest-unreachable quoting a UDP datagram
        rec.proto = static_cast<std::uint8_t>(net::IpProto::kIcmp);
        rec.icmp_type =
            static_cast<std::uint8_t>(net::IcmpType::kDestUnreachable);
        rec.icmp_code = 3;
        rec.has_quoted = true;
        rec.quoted_proto = static_cast<std::uint8_t>(net::IpProto::kUdp);
        rec.quoted_src = rec.dst;
        rec.quoted_dst = rec.src;
        rec.quoted_src_port = static_cast<std::uint16_t>(1024 + rng.next_below(60000));
        rec.quoted_dst_port = 53;
        break;
      }
    }
    out.push_back(rec);
  }
  return out;
}

std::string to_pcap(const std::vector<PacketRecord>& packets) {
  std::ostringstream out(std::ios::binary);
  PcapWriter writer(out);
  for (const auto& rec : packets) writer.write_packet(rec);
  return out.str();
}

std::vector<PacketRecord> sequential_packets(const std::string& pcap) {
  std::istringstream in(pcap, std::ios::binary);
  PcapReader reader(in);
  std::vector<PacketRecord> out;
  while (auto rec = reader.next_packet()) out.push_back(*rec);
  return out;
}

void expect_same_packets(const std::vector<PacketRecord>& a,
                         const std::vector<PacketRecord>& b,
                         const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(record_key(a[i]), record_key(b[i])) << label << " packet " << i;
}

std::uint64_t counter_value(const char* name) {
  const auto snapshot = obs::MetricsRegistry::global().snapshot();
  for (const auto& counter : snapshot.counters)
    if (counter.name == name) return counter.value;
  return 0;
}

// ---------------------------------------------------------------------------
// SPSC ring units
// ---------------------------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(9).capacity(), 16u);
}

TEST(SpscRing, FifoOrderAndDrainAfterClose) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(ring.try_push(v));
  }
  int overflow = 99;
  EXPECT_FALSE(ring.try_push(overflow));
  EXPECT_EQ(overflow, 99);  // intact on failure
  ring.close();
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.pop(out));  // closed and drained
  EXPECT_EQ(ring.stats().pushed.load(), 4u);
  EXPECT_EQ(ring.stats().popped.load(), 4u);
}

TEST(SpscRing, TryPopOnEmptyRingFails) {
  SpscRing<int> ring(2);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  int v = 7;
  EXPECT_TRUE(ring.try_push(v));
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(ring.try_pop(out));
}

// ---------------------------------------------------------------------------
// Batched reader vs sequential reader
// ---------------------------------------------------------------------------

TEST(BatchedPcapReader, SlicesSameFramesAsSequential) {
  const auto packets = make_capture(7, 500);
  const std::string pcap = to_pcap(packets);

  std::istringstream seq_in(pcap, std::ios::binary);
  PcapReader seq(seq_in);
  std::vector<net::CapturedFrame> seq_frames;
  while (auto frame = seq.next_frame()) seq_frames.push_back(*frame);

  std::istringstream bat_in(pcap, std::ios::binary);
  BatchedPcapReader batched(bat_in, /*chunk_bytes=*/4096);
  EXPECT_EQ(batched.link_type(), seq.link_type());
  FrameBatch batch;
  std::size_t i = 0;
  while (batched.next_batch(batch, 37)) {
    for (const auto& frame : batch.frames) {
      ASSERT_LT(i, seq_frames.size());
      EXPECT_EQ(frame.ts_sec, seq_frames[i].ts_sec);
      EXPECT_EQ(frame.ts_usec, seq_frames[i].ts_usec);
      EXPECT_EQ(frame.orig_len, seq_frames[i].orig_len);
      const auto payload = batch.payload(frame);
      ASSERT_EQ(payload.size(), seq_frames[i].bytes.size());
      EXPECT_EQ(std::memcmp(payload.data(), seq_frames[i].bytes.data(),
                            payload.size()),
                0);
      ++i;
    }
  }
  EXPECT_EQ(i, seq_frames.size());
  EXPECT_EQ(batched.frames_read(), seq_frames.size());
}

TEST(BatchedPcapReader, ReadsByteSwappedFiles) {
  // Reuse the sequential reader's swapped-file handling as the oracle on a
  // hand-built big-endian capture.
  std::ostringstream out(std::ios::binary);
  auto put_be = [&](std::uint32_t v) {
    char b[4] = {static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                 static_cast<char>(v >> 8), static_cast<char>(v)};
    out.write(b, 4);
  };
  auto put_be16 = [&](std::uint16_t v) {
    char b[2] = {static_cast<char>(v >> 8), static_cast<char>(v)};
    out.write(b, 2);
  };
  put_be(net::kPcapMagic);
  put_be16(2);
  put_be16(4);
  put_be(0);
  put_be(0);
  put_be(65535);
  put_be(net::kLinkTypeRaw);
  const auto packet = net::encode_packet(make_capture(1, 1)[0]);
  put_be(42);
  put_be(7);
  put_be(static_cast<std::uint32_t>(packet.size()));
  put_be(static_cast<std::uint32_t>(packet.size()));
  out.write(reinterpret_cast<const char*>(packet.data()),
            static_cast<std::streamsize>(packet.size()));
  const std::string pcap = out.str();

  std::istringstream in(pcap, std::ios::binary);
  const auto batched = ingest::read_packets(in);
  expect_same_packets(batched, sequential_packets(pcap), "swapped");
  ASSERT_EQ(batched.size(), 1u);
  EXPECT_EQ(batched[0].ts_sec, 42);
  EXPECT_EQ(batched[0].ts_usec, 7u);
}

TEST(BatchedPcapReader, ThrowsOnTruncatedRecordBody) {
  std::string pcap = to_pcap(make_capture(3, 5));
  pcap.resize(pcap.size() - 5);
  std::istringstream in(pcap, std::ios::binary);
  BatchedPcapReader reader(in, 4096);
  FrameBatch batch;
  // The 4 intact frames come back first; the truncated 5th throws next.
  ASSERT_TRUE(reader.next_batch(batch, 1024));
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_THROW(reader.next_batch(batch, 1024), std::runtime_error);
}

TEST(BatchedPcapReader, ThrowsOnImplausibleRecordLength) {
  std::ostringstream out(std::ios::binary);
  PcapWriter writer(out);
  std::string pcap = out.str();
  const std::uint32_t caplen = (1u << 26) + 1;
  const char hdr[16] = {0, 0, 0, 0, 0, 0, 0, 0,
                        static_cast<char>(caplen & 0xff),
                        static_cast<char>((caplen >> 8) & 0xff),
                        static_cast<char>((caplen >> 16) & 0xff),
                        static_cast<char>(caplen >> 24),
                        0, 0, 0, 0};
  pcap.append(hdr, 16);
  std::istringstream in(pcap, std::ios::binary);
  BatchedPcapReader reader(in, 4096);
  FrameBatch batch;
  EXPECT_THROW(reader.next_batch(batch, 16), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Parameterized identity: packets and detector events, batched == sequential
// ---------------------------------------------------------------------------

class IngestIdentity
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(IngestIdentity, PacketsMatchSequential) {
  const auto [batch_frames, ring_capacity] = GetParam();
  const std::string pcap = to_pcap(make_capture(11, 3000));
  const auto expected = sequential_packets(pcap);
  ASSERT_FALSE(expected.empty());

  IngestOptions options;
  options.batch_frames = batch_frames;
  options.ring_capacity = ring_capacity;
  options.read_chunk_bytes = 8192;  // force many refills
  std::istringstream in(pcap, std::ios::binary);
  const auto batched = ingest::read_packets(in, options);
  expect_same_packets(batched, expected,
                      "batch=" + std::to_string(batch_frames) +
                          " ring=" + std::to_string(ring_capacity));
}

TEST_P(IngestIdentity, TelescopeEventsMatchSequential) {
  const auto [batch_frames, ring_capacity] = GetParam();
  const std::string pcap = to_pcap(make_capture(13, 4000));

  std::istringstream seq_in(pcap, std::ios::binary);
  PcapReader reader(seq_in);
  telescope::Pipeline seq_pipeline;
  auto& seq_rsdos = seq_pipeline.emplace_plugin<telescope::RsdosPlugin>();
  const std::uint64_t seq_count = seq_pipeline.replay(reader);
  seq_pipeline.finish();

  IngestOptions options;
  options.batch_frames = batch_frames;
  options.ring_capacity = ring_capacity;
  std::istringstream bat_in(pcap, std::ios::binary);
  telescope::Pipeline bat_pipeline;
  auto& bat_rsdos = bat_pipeline.emplace_plugin<telescope::RsdosPlugin>();
  const std::uint64_t bat_count = bat_pipeline.replay(bat_in, options);
  bat_pipeline.finish();

  EXPECT_EQ(bat_count, seq_count);
  ASSERT_FALSE(seq_rsdos.events().empty())
      << "fixture too sparse to exercise the detector";
  ASSERT_EQ(bat_rsdos.events().size(), seq_rsdos.events().size());
  for (std::size_t i = 0; i < seq_rsdos.events().size(); ++i)
    ASSERT_EQ(event_key(bat_rsdos.events()[i]), event_key(seq_rsdos.events()[i]))
        << "event " << i;
}

INSTANTIATE_TEST_SUITE_P(
    BatchAndRingMatrix, IngestIdentity,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{64},
                                         std::size_t{4096}),
                       ::testing::Values(std::size_t{2}, std::size_t{8},
                                         std::size_t{64})));

// ---------------------------------------------------------------------------
// Bugfix regressions: mid-stream I/O error (batched path)
// ---------------------------------------------------------------------------

/// A streambuf that serves `good` bytes and then fails like a broken pipe:
/// underflow throws, which istream::read converts to badbit (not eofbit).
class FailingStreamBuf : public std::streambuf {
 public:
  FailingStreamBuf(std::string data, std::size_t good)
      : data_(std::move(data).substr(0, good)) {
    setg(data_.data(), data_.data(), data_.data() + data_.size());
  }

 protected:
  int_type underflow() override { throw std::runtime_error("simulated I/O error"); }

 private:
  std::string data_;
};

TEST(IngestErrors, BatchedReaderThrowsOnMidCaptureStreamError) {
  const auto packets = make_capture(5, 40);
  const std::string pcap = to_pcap(packets);
  FailingStreamBuf buf(pcap, pcap.size() - 30);  // fail inside the capture
  std::istream in(&buf);
  IngestOptions options;
  options.read_chunk_bytes = 4096;
  std::vector<PacketRecord> seen;
  EXPECT_THROW(
      ingest::run_ingest(in, options,
                         [&](const PacketRecord& rec) { seen.push_back(rec); }),
      std::runtime_error);
  // Every packet before the failure point was still delivered, in order.
  const auto expected = sequential_packets(pcap);
  ASSERT_LT(seen.size(), expected.size());
  for (std::size_t i = 0; i < seen.size(); ++i)
    ASSERT_EQ(record_key(seen[i]), record_key(expected[i]));
}

// ---------------------------------------------------------------------------
// Skip accounting: truncated and link-layer skips, batched == sequential
// ---------------------------------------------------------------------------

/// Ethernet capture mixing plain, VLAN-tagged, QinQ, ARP, and runt frames.
std::string make_ethernet_pcap() {
  std::ostringstream out(std::ios::binary);
  PcapWriter writer(out, net::kLinkTypeEthernet);
  const auto base = make_capture(17, 6);
  auto eth_frame = [](const std::vector<std::uint8_t>& ip,
                      std::vector<std::uint8_t> tags) {
    std::vector<std::uint8_t> frame(12, 0xaa);
    frame.insert(frame.end(), tags.begin(), tags.end());
    frame.push_back(0x08);
    frame.push_back(0x00);
    frame.insert(frame.end(), ip.begin(), ip.end());
    return frame;
  };
  // Plain IPv4.
  writer.write_frame(100, 0, eth_frame(net::encode_packet(base[0]), {}));
  // Single 802.1Q tag (TPID 0x8100, TCI 0x0064).
  writer.write_frame(101, 0,
                     eth_frame(net::encode_packet(base[1]),
                               {0x81, 0x00, 0x00, 0x64}));
  // QinQ: 802.1ad outer + 802.1Q inner.
  writer.write_frame(102, 0,
                     eth_frame(net::encode_packet(base[2]),
                               {0x88, 0xa8, 0x00, 0xc8, 0x81, 0x00, 0x00, 0x64}));
  // ARP (skipped at the link layer).
  std::vector<std::uint8_t> arp(42, 0);
  arp[12] = 0x08;
  arp[13] = 0x06;
  writer.write_frame(103, 0, arp);
  // Runt frame (shorter than an Ethernet header).
  writer.write_frame(104, 0, std::vector<std::uint8_t>(9, 0));
  // VLAN tag cut short (no room for the inner EtherType).
  std::vector<std::uint8_t> cut_tag(12, 0xaa);
  cut_tag.insert(cut_tag.end(), {0x81, 0x00, 0x00});
  writer.write_frame(105, 0, cut_tag);
  return out.str();
}

TEST(IngestSkips, VlanAndLinkSkipsMatchSequential) {
  const std::string pcap = make_ethernet_pcap();
  const auto expected = sequential_packets(pcap);
  // Plain + VLAN + QinQ decode; ARP, runt, and cut-tag frames are skipped.
  ASSERT_EQ(expected.size(), 3u);

  const std::uint64_t link_before = counter_value("ingest.skipped.link");
  std::istringstream in(pcap, std::ios::binary);
  IngestOptions options;
  options.batch_frames = 2;
  std::vector<PacketRecord> batched;
  const auto stats = ingest::run_ingest(
      in, options, [&](const PacketRecord& rec) { batched.push_back(rec); });
  expect_same_packets(batched, expected, "ethernet");
  EXPECT_EQ(stats.frames, 6u);
  EXPECT_EQ(stats.packets, 3u);
  EXPECT_EQ(stats.skipped_link, 3u);
  EXPECT_EQ(stats.skipped_truncated, 0u);
  EXPECT_EQ(counter_value("ingest.skipped.link"), link_before + 3u);
}

TEST(IngestSkips, SnaplenTruncatedFramesAreCountedNotDecoded) {
  // A 24-byte snaplen cuts every 40-byte TCP packet mid-transport-header;
  // total_length (40) exceeds the capture (24) so the frame must be skipped.
  std::ostringstream out(std::ios::binary);
  PcapWriter writer(out, net::kLinkTypeRaw, /*snaplen=*/24);
  const auto packets = make_capture(19, 8);
  for (const auto& rec : packets)
    writer.write_frame(rec.ts_sec, rec.ts_usec, net::encode_packet(rec));
  const std::string pcap = out.str();

  EXPECT_TRUE(sequential_packets(pcap).empty());

  const std::uint64_t truncated_before =
      counter_value("ingest.skipped.truncated");
  std::istringstream in(pcap, std::ios::binary);
  std::vector<PacketRecord> batched;
  const auto stats = ingest::run_ingest(
      in, {}, [&](const PacketRecord& rec) { batched.push_back(rec); });
  EXPECT_TRUE(batched.empty());
  EXPECT_EQ(stats.frames, 8u);
  EXPECT_EQ(stats.skipped_truncated, 8u);
  EXPECT_EQ(counter_value("ingest.skipped.truncated"), truncated_before + 8u);
}

// ---------------------------------------------------------------------------
// Drop policy
// ---------------------------------------------------------------------------

TEST(IngestDropPolicy, DropsAreCountedNeverSilent) {
  // Tiny ring + a sink slow enough (per batch) that the producer laps it.
  const std::string pcap = to_pcap(make_capture(23, 2000));
  IngestOptions options;
  options.batch_frames = 16;
  options.ring_capacity = 2;
  options.policy = ingest::Backpressure::kDrop;
  std::istringstream in(pcap, std::ios::binary);
  std::uint64_t sunk = 0;
  volatile std::uint64_t spin_sink = 0;
  const auto stats = ingest::run_ingest(in, options, [&](const PacketRecord&) {
    ++sunk;
    for (int i = 0; i < 2000; ++i) spin_sink = spin_sink + 1;
  });
  // Conservation: every frame read is either delivered or counted dropped.
  EXPECT_EQ(stats.frames + stats.dropped_frames, 2000u);
  EXPECT_EQ(stats.packets, sunk);
  if (stats.dropped_batches > 0) {
    EXPECT_GT(stats.dropped_frames, 0u);
  }
}

}  // namespace
}  // namespace dosm
