// Near-realtime streaming fusion tests (§9 extension).
#include <gtest/gtest.h>

#include "core/streaming.h"
#include "sim/scenario.h"

namespace dosm::core {
namespace {

using net::Ipv4Addr;

AttackEvent event_at(StudyWindow window, int day, double offset_s,
                     EventSource source, Ipv4Addr target) {
  AttackEvent event;
  event.source = source;
  event.target = target;
  event.start = static_cast<double>(window.day_start(day)) + offset_s;
  event.end = event.start + 300.0;
  event.intensity = 1.0;
  return event;
}

class StreamingTest : public ::testing::Test {
 protected:
  StudyWindow window_{};
  std::vector<DaySummary> summaries_;
  CollectSink sink_;
  const std::vector<Alert>& alerts_ = sink_.alerts();

  StreamingFusion make(StreamingFusion::Config config = {}) {
    return StreamingFusion(
        window_, config,
        [this](const DaySummary& s) { summaries_.push_back(s); }, &sink_);
  }
};

TEST_F(StreamingTest, EmitsPerDaySummaries) {
  auto fusion = make();
  fusion.ingest(event_at(window_, 0, 100, EventSource::kTelescope, Ipv4Addr(1, 1, 1, 1)));
  fusion.ingest(event_at(window_, 0, 200, EventSource::kHoneypot, Ipv4Addr(2, 2, 2, 2)));
  fusion.ingest(event_at(window_, 1, 100, EventSource::kTelescope, Ipv4Addr(3, 3, 3, 3)));
  fusion.finish();
  ASSERT_EQ(summaries_.size(), 2u);
  EXPECT_EQ(summaries_[0].day, 0);
  EXPECT_EQ(summaries_[0].attacks, 2u);
  EXPECT_EQ(summaries_[0].telescope_attacks, 1u);
  EXPECT_EQ(summaries_[0].honeypot_attacks, 1u);
  EXPECT_EQ(summaries_[0].unique_targets, 2u);
  EXPECT_EQ(summaries_[1].attacks, 1u);
  EXPECT_EQ(fusion.events_ingested(), 3u);
  EXPECT_EQ(fusion.days_emitted(), 2u);
}

TEST_F(StreamingTest, EmitsEmptyDaysBetweenEvents) {
  auto fusion = make();
  fusion.ingest(event_at(window_, 0, 100, EventSource::kTelescope, Ipv4Addr(1, 1, 1, 1)));
  fusion.ingest(event_at(window_, 3, 100, EventSource::kTelescope, Ipv4Addr(1, 1, 1, 1)));
  fusion.finish();
  ASSERT_EQ(summaries_.size(), 4u);  // days 0,1,2,3
  EXPECT_EQ(summaries_[1].attacks, 0u);
  EXPECT_EQ(summaries_[2].unique_targets, 0u);
}

TEST_F(StreamingTest, CoTargetingDetectedWithinDay) {
  auto fusion = make();
  const Ipv4Addr both(9, 9, 9, 9);
  fusion.ingest(event_at(window_, 0, 100, EventSource::kTelescope, both));
  fusion.ingest(event_at(window_, 0, 200, EventSource::kHoneypot, both));
  fusion.ingest(event_at(window_, 0, 300, EventSource::kTelescope, Ipv4Addr(1, 1, 1, 1)));
  fusion.finish();
  ASSERT_EQ(summaries_.size(), 1u);
  EXPECT_EQ(summaries_[0].unique_targets, 2u);
  EXPECT_EQ(summaries_[0].co_targeted, 1u);
}

TEST_F(StreamingTest, RejectsOutOfOrderEvents) {
  auto fusion = make();
  fusion.ingest(event_at(window_, 1, 100, EventSource::kTelescope, Ipv4Addr(1, 1, 1, 1)));
  EXPECT_THROW(fusion.ingest(event_at(window_, 0, 100, EventSource::kTelescope,
                                      Ipv4Addr(1, 1, 1, 1))),
               std::invalid_argument);
}

TEST_F(StreamingTest, IgnoresEventsOutsideWindow) {
  auto fusion = make();
  AttackEvent early;
  early.start = static_cast<double>(window_.start_time()) - 10.0;
  early.end = early.start + 60.0;
  fusion.ingest(early);
  fusion.finish();
  EXPECT_EQ(fusion.events_ingested(), 0u);
  EXPECT_EQ(summaries_.size(), 0u);
}

TEST_F(StreamingTest, AlertsOnAttackSpike) {
  StreamingFusion::Config config;
  config.min_baseline_days = 3;
  config.spike_factor = 2.0;
  auto fusion = make(config);
  // Baseline: 2 attacks/day for 5 days, then a 10-attack day.
  for (int day = 0; day < 5; ++day) {
    for (int i = 0; i < 2; ++i) {
      fusion.ingest(event_at(window_, day, 100 + i, EventSource::kTelescope,
                             Ipv4Addr(1, 1, static_cast<std::uint8_t>(day),
                                      static_cast<std::uint8_t>(i))));
    }
  }
  for (int i = 0; i < 10; ++i) {
    fusion.ingest(event_at(window_, 5, 100 + i, EventSource::kTelescope,
                           Ipv4Addr(2, 2, 2, static_cast<std::uint8_t>(i))));
  }
  fusion.finish();
  ASSERT_GE(alerts_.size(), 1u);
  EXPECT_EQ(alerts_[0].kind, AlertKind::kAttackSpike);
  EXPECT_EQ(to_string(alerts_[0].kind), "attack-spike");
  EXPECT_EQ(alerts_[0].day, 5);
  EXPECT_DOUBLE_EQ(alerts_[0].value, 10.0);
  EXPECT_DOUBLE_EQ(alerts_[0].baseline, 2.0);
}

TEST_F(StreamingTest, GapDaysDoNotPolluteSpikeBaseline) {
  // Regression: the catch-up loop used to close idle gap days with zero
  // counts into the trailing histories, dragging the mean toward zero; the
  // first ordinary day after a lull then read as a multiple of the baseline
  // and fired a spurious spike alert.
  StreamingFusion::Config config;
  config.min_baseline_days = 3;
  config.spike_factor = 2.0;
  auto fusion = make(config);
  // An ordinary steady level: 4 attacks/day for days 0..4.
  for (int day = 0; day < 5; ++day) {
    for (int i = 0; i < 4; ++i) {
      fusion.ingest(event_at(window_, day, 100 + i, EventSource::kTelescope,
                             Ipv4Addr(1, 1, static_cast<std::uint8_t>(day),
                                      static_cast<std::uint8_t>(i))));
    }
  }
  // A three-week lull, then the same ordinary 4-attack day. With gap days
  // folded into the baseline the mean would be ~0.7 and day 26 would
  // spuriously alert; excluded, the baseline stays 4.0 and stays quiet.
  for (int i = 0; i < 4; ++i) {
    fusion.ingest(event_at(window_, 26, 100 + i, EventSource::kTelescope,
                           Ipv4Addr(2, 2, 2, static_cast<std::uint8_t>(i))));
  }
  fusion.finish();
  EXPECT_EQ(alerts_.size(), 0u);
  // Gap days are still emitted as (empty) summaries: days 0..26.
  EXPECT_EQ(summaries_.size(), 27u);
  // A genuine spike after the lull must still fire against the real level.
  summaries_.clear();
  auto fusion2 = make(config);
  for (int day = 0; day < 5; ++day) {
    for (int i = 0; i < 4; ++i) {
      fusion2.ingest(event_at(window_, day, 100 + i, EventSource::kTelescope,
                              Ipv4Addr(1, 1, static_cast<std::uint8_t>(day),
                                       static_cast<std::uint8_t>(i))));
    }
  }
  for (int i = 0; i < 20; ++i) {
    fusion2.ingest(event_at(window_, 26, 100 + i, EventSource::kTelescope,
                            Ipv4Addr(3, 3, 3, static_cast<std::uint8_t>(i))));
  }
  fusion2.finish();
  ASSERT_GE(alerts_.size(), 1u);
  EXPECT_EQ(alerts_[0].day, 26);
  EXPECT_DOUBLE_EQ(alerts_[0].baseline, 4.0);
}

TEST_F(StreamingTest, NoAlertBeforeBaselineEstablished) {
  StreamingFusion::Config config;
  config.min_baseline_days = 7;
  auto fusion = make(config);
  // A huge spike on day 2: baseline too short to alert.
  fusion.ingest(event_at(window_, 0, 100, EventSource::kTelescope, Ipv4Addr(1, 1, 1, 1)));
  for (int i = 0; i < 100; ++i)
    fusion.ingest(event_at(window_, 2, 100 + i, EventSource::kTelescope,
                           Ipv4Addr(1, 1, 2, static_cast<std::uint8_t>(i))));
  fusion.finish();
  EXPECT_EQ(alerts_.size(), 0u);
}

TEST_F(StreamingTest, RequiresSummaryCallback) {
  EXPECT_THROW(StreamingFusion(window_, {}, nullptr), std::invalid_argument);
}

// Every Config field constraint is enforced at construction, one rejection
// per field, with the field named in the message.
TEST_F(StreamingTest, RejectsNonPositiveBaselineDays) {
  StreamingFusion::Config config;
  config.baseline_days = 0;
  try {
    make(config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("baseline_days"), std::string::npos);
  }
  config.baseline_days = -3;
  EXPECT_THROW(make(config), std::invalid_argument);
}

TEST_F(StreamingTest, RejectsSpikeFactorAtOrBelowOne) {
  StreamingFusion::Config config;
  config.spike_factor = 1.0;  // boundary: a spike must EXCEED its baseline
  try {
    make(config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("spike_factor"), std::string::npos);
  }
  config.spike_factor = 0.5;
  EXPECT_THROW(make(config), std::invalid_argument);
  config.spike_factor = 1.0 + 1e-9;  // any factor strictly above 1 is legal
  EXPECT_NO_THROW(make(config));
}

TEST_F(StreamingTest, RejectsMinBaselineDaysOutsideRange) {
  StreamingFusion::Config config;
  config.min_baseline_days = 0;
  try {
    make(config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("min_baseline_days"),
              std::string::npos);
  }
  config.baseline_days = 7;
  config.min_baseline_days = 8;  // cannot require more days than the window
  EXPECT_THROW(make(config), std::invalid_argument);
  config.min_baseline_days = 7;  // boundary: equal is allowed
  EXPECT_NO_THROW(make(config));
}

TEST_F(StreamingTest, MatchesBatchAggregationOnSimulatedWorld) {
  // The streaming path must agree with the batch daily_breakdown on a
  // real simulated event stream.
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  auto fusion = StreamingFusion(
      world->window, {},
      [this](const DaySummary& s) { summaries_.push_back(s); });
  for (const auto& event : world->store.events()) fusion.ingest(event);
  fusion.finish();

  const auto batch = world->store.daily_breakdown(
      SourceFilter::kCombined, world->population.pfx2as());
  ASSERT_LE(summaries_.size(),
            static_cast<std::size_t>(world->window.num_days()));
  for (const auto& summary : summaries_) {
    EXPECT_DOUBLE_EQ(static_cast<double>(summary.attacks),
                     batch.attacks.at(summary.day))
        << "day " << summary.day;
    EXPECT_DOUBLE_EQ(static_cast<double>(summary.unique_targets),
                     batch.unique_targets.at(summary.day));
  }
  // The campaign days should fire spike alerts on a full run with alerts.
  EXPECT_EQ(fusion.events_ingested(), world->store.size());
}

}  // namespace
}  // namespace dosm::core
