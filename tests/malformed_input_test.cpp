// Deterministic malformed-input tests for the byte-level parsers.
//
// The net/headers decoder and net/pcap reader sit at the trust boundary of
// the telescope pipeline: they consume raw capture bytes. These tests feed
// them truncated, corrupted, and adversarial inputs and assert they reject
// cleanly (nullopt / exception) instead of reading out of bounds. The suite
// is part of the ASan+UBSan leg of tools/check.sh, which turns any OOB read
// into a hard failure.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "net/headers.h"
#include "net/pcap.h"

namespace dosm::net {
namespace {

PacketRecord make_tcp_record() {
  PacketRecord rec;
  rec.ts_sec = 1425168000;
  rec.src = Ipv4Addr(192, 0, 2, 1);
  rec.dst = Ipv4Addr(44, 1, 2, 3);
  rec.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  rec.src_port = 80;
  rec.dst_port = 31337;
  rec.tcp_flags = tcp_flags::kSyn | tcp_flags::kAck;
  return rec;
}

// --- net/headers: decode_packet ------------------------------------------

TEST(MalformedHeaders, EmptyAndTinyInputsAreRejected) {
  EXPECT_FALSE(decode_packet({}).has_value());
  const std::vector<std::uint8_t> one = {0x45};
  EXPECT_FALSE(decode_packet(one).has_value());
  std::vector<std::uint8_t> nineteen(19, 0);
  nineteen[0] = 0x45;
  EXPECT_FALSE(decode_packet(nineteen).has_value());
}

TEST(MalformedHeaders, NonIpv4VersionIsRejected) {
  std::vector<std::uint8_t> pkt(40, 0);
  pkt[0] = 0x65;  // version 6
  EXPECT_FALSE(decode_packet(pkt).has_value());
}

TEST(MalformedHeaders, ImpossiblyShortIhlIsRejected) {
  // IHL < 5 words would place the transport header inside the IP header.
  for (std::uint8_t ihl_words = 0; ihl_words < 5; ++ihl_words) {
    std::vector<std::uint8_t> pkt(40, 0);
    pkt[0] = static_cast<std::uint8_t>(0x40 | ihl_words);
    EXPECT_FALSE(decode_packet(pkt).has_value()) << "IHL " << int{ihl_words};
  }
}

TEST(MalformedHeaders, IhlPastEndOfBufferIsRejected) {
  // IHL of 15 words (60 bytes) on a 20-byte capture: options claim bytes the
  // buffer does not have.
  std::vector<std::uint8_t> pkt(20, 0);
  pkt[0] = 0x4f;
  pkt[9] = static_cast<std::uint8_t>(IpProto::kTcp);
  EXPECT_FALSE(decode_packet(pkt).has_value());
}

TEST(MalformedHeaders, TruncatedTcpKeepsIpViewWithZeroPorts) {
  auto bytes = encode_packet(make_tcp_record());
  // Cut mid-TCP-header: IP layer decodes, transport fields must stay zeroed
  // rather than being read past the end.
  bytes.resize(25);
  const auto rec = decode_packet(bytes);
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->is_tcp());
  EXPECT_EQ(rec->src_port, 0);
  EXPECT_EQ(rec->dst_port, 0);
  EXPECT_EQ(rec->tcp_flags, 0);
}

TEST(MalformedHeaders, ZeroLengthUdpKeepsIpViewWithZeroPorts) {
  // A bare IP header claiming UDP but carrying no UDP header at all.
  std::vector<std::uint8_t> pkt(20, 0);
  pkt[0] = 0x45;
  pkt[9] = static_cast<std::uint8_t>(IpProto::kUdp);
  const auto rec = decode_packet(pkt);
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->is_udp());
  EXPECT_EQ(rec->src_port, 0);
  EXPECT_EQ(rec->dst_port, 0);
}

TEST(MalformedHeaders, IcmpErrorWithTruncatedQuoteHasNoQuotedView) {
  PacketRecord rec = make_tcp_record();
  rec.proto = static_cast<std::uint8_t>(IpProto::kIcmp);
  rec.icmp_type = static_cast<std::uint8_t>(IcmpType::kDestUnreachable);
  rec.has_quoted = true;
  rec.quoted_proto = static_cast<std::uint8_t>(IpProto::kUdp);
  rec.quoted_src = Ipv4Addr(10, 1, 1, 1);
  rec.quoted_dst = Ipv4Addr(10, 2, 2, 2);
  rec.quoted_src_port = 53;
  rec.quoted_dst_port = 4444;
  auto bytes = encode_packet(rec);
  // Cut inside the quoted IP header: the outer ICMP view must survive and
  // the quoted view must be dropped.
  bytes.resize(20 + 8 + 10);
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->is_icmp());
  EXPECT_FALSE(decoded->has_quoted);
}

TEST(MalformedHeaders, QuotedHeaderWithImpossibleIhlIsDropped) {
  PacketRecord rec = make_tcp_record();
  rec.proto = static_cast<std::uint8_t>(IpProto::kIcmp);
  rec.icmp_type = static_cast<std::uint8_t>(IcmpType::kTimeExceeded);
  rec.has_quoted = true;
  rec.quoted_proto = static_cast<std::uint8_t>(IpProto::kTcp);
  auto bytes = encode_packet(rec);
  bytes[20 + 8] = 0x4f;  // quoted IHL 60 bytes > remaining capture
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->has_quoted);
}

TEST(MalformedHeaders, EveryTruncationOfAValidPacketIsHandled) {
  const auto full = encode_packet(make_tcp_record());
  for (std::size_t len = 0; len <= full.size(); ++len) {
    const std::span<const std::uint8_t> prefix(full.data(), len);
    const auto rec = decode_packet(prefix);  // must not read past `len`
    if (len >= 20) {
      EXPECT_TRUE(rec.has_value()) << "prefix " << len;
    } else {
      EXPECT_FALSE(rec.has_value()) << "prefix " << len;
    }
  }
}

TEST(MalformedHeaders, SeededByteMutationSweepNeverReadsOutOfBounds) {
  // 2000 deterministic single/multi-byte corruptions of a valid packet.
  // decode_packet may reject or misparse, but must never crash (ASan).
  Rng rng(20170301);
  const auto base = encode_packet(make_tcp_record());
  for (int trial = 0; trial < 2000; ++trial) {
    auto pkt = base;
    const std::uint64_t flips = 1 + rng.next_below(3);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.next_below(pkt.size());
      pkt[pos] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    (void)decode_packet(pkt);
  }
}

// --- net/pcap: PcapReader -------------------------------------------------

std::string valid_pcap_bytes(int frames) {
  std::ostringstream out(std::ios::binary);
  PcapWriter writer(out);
  for (int i = 0; i < frames; ++i) {
    auto rec = make_tcp_record();
    rec.ts_usec = static_cast<std::uint32_t>(i);
    writer.write_packet(rec);
  }
  return out.str();
}

TEST(MalformedPcap, BadMagicIsRejected) {
  std::istringstream in(std::string("\xde\xad\xbe\xef" "0123456789abcdefghij", 24),
                        std::ios::binary);
  EXPECT_THROW(PcapReader reader(in), std::runtime_error);
}

TEST(MalformedPcap, TruncatedGlobalHeaderIsRejected) {
  const std::string file = valid_pcap_bytes(1);
  for (std::size_t len : {0u, 3u, 4u, 10u, 23u}) {
    std::istringstream in(file.substr(0, len), std::ios::binary);
    EXPECT_THROW(PcapReader reader(in), std::runtime_error) << "len " << len;
  }
}

TEST(MalformedPcap, UnsupportedVersionIsRejected) {
  std::string file = valid_pcap_bytes(1);
  file[4] = 7;  // version major 7
  std::istringstream in(file, std::ios::binary);
  EXPECT_THROW(PcapReader reader(in), std::runtime_error);
}

TEST(MalformedPcap, CaplenPastEndOfFileIsRejected) {
  std::string file = valid_pcap_bytes(1);
  // Record header starts at offset 24; caplen is its third u32 (offset 32).
  file[32] = static_cast<char>(0xff);  // caplen low byte: now 0x1ff > body
  std::istringstream in(file, std::ios::binary);
  PcapReader reader(in);
  EXPECT_THROW(reader.next_frame(), std::runtime_error);
}

TEST(MalformedPcap, ImplausibleCaplenIsRejected) {
  std::string file = valid_pcap_bytes(1);
  file[35] = static_cast<char>(0x40);  // caplen high byte: > 2^26 sanity cap
  std::istringstream in(file, std::ios::binary);
  PcapReader reader(in);
  EXPECT_THROW(reader.next_frame(), std::runtime_error);
}

TEST(MalformedPcap, TruncatedRecordHeaderIsRejected) {
  const std::string file = valid_pcap_bytes(1);
  std::istringstream in(file.substr(0, 24 + 7), std::ios::binary);
  PcapReader reader(in);
  EXPECT_THROW(reader.next_frame(), std::runtime_error);
}

TEST(MalformedPcap, TruncatedRecordBodyIsRejected) {
  const std::string file = valid_pcap_bytes(1);
  std::istringstream in(file.substr(0, file.size() - 5), std::ios::binary);
  PcapReader reader(in);
  EXPECT_THROW(reader.next_frame(), std::runtime_error);
}

TEST(MalformedPcap, EveryFileTruncationEitherParsesOrThrows) {
  const std::string file = valid_pcap_bytes(3);
  for (std::size_t len = 0; len <= file.size(); ++len) {
    const auto slice = file.substr(0, len);
    const std::vector<std::uint8_t> bytes(slice.begin(), slice.end());
    try {
      const auto records = decode_pcap(bytes);
      EXPECT_LE(records.size(), 3u) << "prefix " << len;
    } catch (const std::runtime_error&) {
      // Rejecting a truncated file is the correct outcome.
    }
  }
}

TEST(MalformedPcap, SeededCorruptionSweepNeverReadsOutOfBounds) {
  Rng rng(20170302);
  const std::string file = valid_pcap_bytes(3);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = file;
    const std::uint64_t flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.next_below(mutated.size());
      mutated[pos] = static_cast<char>(rng.next_below(256));
    }
    const std::vector<std::uint8_t> bytes(mutated.begin(), mutated.end());
    try {
      (void)decode_pcap(bytes);
    } catch (const std::runtime_error&) {
      // Acceptable: reader rejected the corruption.
    }
  }
}

}  // namespace
}  // namespace dosm::net
