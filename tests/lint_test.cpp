// Unit tests for dosmeter_lint: every banned pattern must fire on its fixture
// file, clean code must stay clean, and both exception mechanisms (allowlist
// entries, inline lint:allow markers) must suppress.
#include "lint/lint_core.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

namespace dosm::lint {
namespace {

std::vector<Violation> lint_fixtures(const std::vector<AllowEntry>& allow = {}) {
  return lint_tree(DOSM_LINT_FIXTURE_DIR, {"src"}, allow);
}

std::map<std::string, std::set<std::string>> rules_by_file(
    const std::vector<Violation>& violations) {
  std::map<std::string, std::set<std::string>> out;
  for (const auto& v : violations) out[v.file].insert(v.rule);
  return out;
}

TEST(LintFixtures, EachBannedPatternFires) {
  const auto by_file = rules_by_file(lint_fixtures());
  EXPECT_EQ(by_file.at("src/common/wall_clock.cpp"),
            std::set<std::string>{"wall-clock"});
  EXPECT_EQ(by_file.at("src/common/nondeterminism.cpp"),
            std::set<std::string>{"nondeterminism"});
  EXPECT_EQ(by_file.at("src/common/unsafe_cstring.cpp"),
            std::set<std::string>{"unsafe-cstring"});
  EXPECT_EQ(by_file.at("src/common/float_counter.cpp"),
            std::set<std::string>{"float-counter"});
  EXPECT_EQ(by_file.at("src/core/raw_new_delete.cpp"),
            std::set<std::string>{"raw-new-delete"});
  EXPECT_EQ(by_file.at("src/common/include_hygiene.cpp"),
            std::set<std::string>{"include-hygiene"});
}

TEST(LintFixtures, IncludeHygieneSeesInsideQuotedIncludePaths) {
  // The banned "../" lives inside a string literal, which blanking erases;
  // the rule must match raw include lines. All three banned forms fire.
  int hygiene_hits = 0;
  for (const auto& v : lint_fixtures()) {
    if (v.file == "src/common/include_hygiene.cpp") ++hygiene_hits;
  }
  EXPECT_EQ(hygiene_hits, 3);
}

TEST(LintSource, CommentedOutIncludeStaysQuiet) {
  const char* code =
      "// #include \"../legacy/old.h\"\n"
      "/* #include <stdlib.h> */\n"
      "const char* s = \"#include <bits/stdc++.h>\";\n"
      "int x = 0;\n";
  EXPECT_TRUE(lint_source("src/common/x.cpp", code, {}).empty());
}

TEST(LintFixtures, CleanFileStaysClean) {
  const auto by_file = rules_by_file(lint_fixtures());
  EXPECT_EQ(by_file.count("src/common/clean.cpp"), 0u)
      << "banned tokens in comments/strings must not fire";
}

TEST(LintFixtures, InlineAllowMarkerSuppresses) {
  const auto by_file = rules_by_file(lint_fixtures());
  EXPECT_EQ(by_file.count("src/common/inline_allow.cpp"), 0u);
}

TEST(LintFixtures, WallClockFixtureFlagsEveryClockLine) {
  int wall_clock_hits = 0;
  for (const auto& v : lint_fixtures()) {
    if (v.file == "src/common/wall_clock.cpp") {
      EXPECT_EQ(v.rule, "wall-clock");
      ++wall_clock_hits;
    }
  }
  // system_clock, steady_clock, and time(nullptr) are three separate lines.
  EXPECT_EQ(wall_clock_hits, 3);
}

TEST(LintFixtures, RawNewDeleteOnlyAppliesToAnalysisDirs) {
  // The same contents outside src/core (etc.) must not fire.
  std::ifstream in(std::filesystem::path(DOSM_LINT_FIXTURE_DIR) /
                   "src/core/raw_new_delete.cpp");
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_FALSE(lint_source("src/core/fixture.cpp", buf.str(), {}).empty());
  EXPECT_TRUE(lint_source("src/common/fixture.cpp", buf.str(), {}).empty());
}

TEST(LintAllowlist, EntrySuppressesRuleForMatchingSuffix) {
  const std::vector<AllowEntry> allow = {{"wall-clock", "wall_clock.cpp"}};
  const auto by_file = rules_by_file(lint_fixtures(allow));
  EXPECT_EQ(by_file.count("src/common/wall_clock.cpp"), 0u);
  // Other files and rules are untouched.
  EXPECT_EQ(by_file.count("src/common/nondeterminism.cpp"), 1u);
}

TEST(LintAllowlist, WildcardRuleMatchesAnyRule) {
  const std::vector<AllowEntry> allow = {{"*", "src/common/include_hygiene.cpp"}};
  const auto by_file = rules_by_file(lint_fixtures(allow));
  EXPECT_EQ(by_file.count("src/common/include_hygiene.cpp"), 0u);
}

TEST(LintAllowlist, ParserSkipsCommentsAndBlanks) {
  const auto entries = parse_allowlist(
      "# header comment\n"
      "\n"
      "nondeterminism src/common/rng.cpp\n"
      "* tools/legacy.cpp   # trailing note\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].rule, "nondeterminism");
  EXPECT_EQ(entries[0].path_suffix, "src/common/rng.cpp");
  EXPECT_EQ(entries[1].rule, "*");
  EXPECT_EQ(entries[1].path_suffix, "tools/legacy.cpp");
}

TEST(LintSource, LiteralsAndCommentsAreBlanked) {
  const char* code =
      "#include <string>\n"
      "// rand() in a comment is fine\n"
      "/* so is strcpy( in a block\n"
      "   comment spanning lines */\n"
      "std::string s = \"std::random_device in a string\";\n"
      "const char* r = R\"(sprintf( inside a raw string)\";\n";
  EXPECT_TRUE(lint_source("src/common/x.cpp", code, {}).empty());
}

TEST(LintSource, ViolationCarriesLineNumberAndRule) {
  const char* code =
      "#include <cstdlib>\n"
      "int f() {\n"
      "  return rand();\n"
      "}\n";
  const auto violations = lint_source("src/common/x.cpp", code, {});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].line, 3);
  EXPECT_EQ(violations[0].rule, "nondeterminism");
  EXPECT_EQ(format_violation(violations[0]).substr(0, 19), "src/common/x.cpp:3:");
}

TEST(LintRepo, ScannedTreesAreInvariantClean) {
  std::vector<AllowEntry> allow;
  const auto allowlist_path =
      std::filesystem::path(DOSM_LINT_SOURCE_ROOT) / "tools/lint_allowlist.txt";
  if (std::filesystem::exists(allowlist_path)) {
    std::ifstream in(allowlist_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    allow = parse_allowlist(buf.str());
  }
  const auto violations = lint_tree(
      DOSM_LINT_SOURCE_ROOT, {"src", "tools", "bench", "examples"}, allow);
  for (const auto& v : violations) ADD_FAILURE() << format_violation(v);
}

}  // namespace
}  // namespace dosm::lint
