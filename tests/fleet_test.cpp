// Honeypot fleet tests: deployment mix, attack capture, scanner rejection.
#include <gtest/gtest.h>

#include <map>

#include "amppot/fleet.h"

namespace dosm::amppot {
namespace {

using net::Ipv4Addr;

TEST(Fleet, DeploysTwentyFourInstancesByDefault) {
  const HoneypotFleet fleet(1);
  EXPECT_EQ(fleet.size(), 24u);
  // Geographic mix per the paper: 11 America / 8 Europe / 4 Asia / 1 AU.
  std::map<std::string, int> by_country;
  for (const auto& honeypot : fleet.honeypots())
    ++by_country[honeypot.location().to_string()];
  EXPECT_EQ(by_country["AU"], 1);
  EXPECT_GE(by_country["US"], 8);
  // Addresses must be distinct.
  std::set<std::uint32_t> addrs;
  for (const auto& honeypot : fleet.honeypots())
    addrs.insert(honeypot.address().value());
  EXPECT_EQ(addrs.size(), 24u);
}

TEST(Fleet, RejectsEmptyFleet) {
  EXPECT_THROW(HoneypotFleet(1, 0), std::invalid_argument);
}

TEST(Fleet, CapturesAReflectionAttack) {
  HoneypotFleet fleet(2);
  ReflectionAttackSpec spec;
  spec.victim = Ipv4Addr(9, 9, 9, 9);
  spec.protocol = ReflectionProtocol::kNtp;
  spec.start = 0.0;
  spec.duration_s = 600.0;
  spec.per_reflector_rps = 5.0;  // 3000 requests per honeypot
  spec.honeypots_hit = 12;
  fleet.run({&spec, 1}, 0.0, 3600.0);
  EXPECT_GT(fleet.total_requests(), 20000u);
  const auto events = fleet.harvest();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].victim, spec.victim);
  EXPECT_EQ(events[0].protocol, ReflectionProtocol::kNtp);
  EXPECT_EQ(events[0].honeypots, 12u);
  EXPECT_NEAR(events[0].duration(), 600.0, 30.0);
  EXPECT_NEAR(events[0].avg_rps(), 5.0, 1.0);
}

TEST(Fleet, InvisibleWhenNoHoneypotOnReflectorList) {
  HoneypotFleet fleet(3);
  ReflectionAttackSpec spec;
  spec.victim = Ipv4Addr(9, 9, 9, 9);
  spec.per_reflector_rps = 50.0;
  spec.duration_s = 600.0;
  spec.honeypots_hit = 0;
  fleet.run({&spec, 1}, 0.0, 3600.0);
  EXPECT_EQ(fleet.total_requests(), 0u);
  EXPECT_TRUE(fleet.harvest().empty());
}

TEST(Fleet, WeakAttackFallsUnderThreshold) {
  HoneypotFleet fleet(4);
  ReflectionAttackSpec spec;
  spec.victim = Ipv4Addr(9, 9, 9, 9);
  spec.duration_s = 60.0;
  spec.per_reflector_rps = 0.5;  // ~30 requests: below 100
  spec.honeypots_hit = 24;
  fleet.run({&spec, 1}, 0.0, 3600.0);
  EXPECT_GT(fleet.total_requests(), 0u);
  EXPECT_TRUE(fleet.harvest().empty());
}

TEST(Fleet, ScannerNoiseDoesNotBecomeEvents) {
  HoneypotFleet fleet(5);
  ScannerNoiseConfig noise;
  noise.scans_per_hour_per_honeypot = 30.0;
  noise.probes_per_scan = 4;
  fleet.run({}, 0.0, 24.0 * 3600.0, noise);
  EXPECT_GT(fleet.total_requests(), 1000u);
  EXPECT_TRUE(fleet.harvest().empty());
}

TEST(Fleet, RateLimiterNonHarmUnderAttack) {
  HoneypotFleet fleet(6);
  ReflectionAttackSpec spec;
  spec.victim = Ipv4Addr(9, 9, 9, 9);
  spec.duration_s = 600.0;
  spec.per_reflector_rps = 100.0;
  spec.honeypots_hit = 24;
  fleet.run({&spec, 1}, 0.0, 3600.0);
  // ~1.44M requests; replies are capped at roughly 2/minute/honeypot.
  EXPECT_GT(fleet.total_requests(), 1000000u);
  EXPECT_LT(fleet.total_replies(), 24u * 10u * 3u);
}

TEST(Fleet, SimultaneousAttacksOnDistinctVictims) {
  HoneypotFleet fleet(7);
  std::vector<ReflectionAttackSpec> specs(3);
  for (int i = 0; i < 3; ++i) {
    auto& spec = specs[static_cast<std::size_t>(i)];
    spec.victim = Ipv4Addr(9, 9, 9, static_cast<std::uint8_t>(i + 1));
    spec.protocol =
        i == 0 ? ReflectionProtocol::kNtp
               : (i == 1 ? ReflectionProtocol::kDns : ReflectionProtocol::kCharGen);
    spec.start = i * 100.0;
    spec.duration_s = 900.0;
    spec.per_reflector_rps = 2.0;
    spec.honeypots_hit = 8;
  }
  fleet.run(specs, 0.0, 3600.0);
  const auto events = fleet.harvest();
  ASSERT_EQ(events.size(), 3u);
  // Time-ordered output.
  EXPECT_LE(events[0].start, events[1].start);
  EXPECT_LE(events[1].start, events[2].start);
}

TEST(Fleet, HarvestClearsLogsAndIsRepeatable) {
  HoneypotFleet fleet(8);
  ReflectionAttackSpec spec;
  spec.victim = Ipv4Addr(9, 9, 9, 9);
  spec.duration_s = 300.0;
  spec.per_reflector_rps = 2.0;
  spec.honeypots_hit = 6;
  fleet.run({&spec, 1}, 0.0, 3600.0);
  EXPECT_FALSE(fleet.harvest().empty());
  EXPECT_TRUE(fleet.harvest().empty());  // logs cleared by first harvest
}

// Property sweep: detection probability grows with attack rate; an attack at
// rate r is detected iff the per-honeypot request count exceeds 100.
class FleetDetectionSweep : public ::testing::TestWithParam<double> {};

TEST_P(FleetDetectionSweep, DetectionMatchesExpectedCounts) {
  const double rps = GetParam();
  HoneypotFleet fleet(static_cast<std::uint64_t>(rps * 1000) + 11);
  ReflectionAttackSpec spec;
  spec.victim = Ipv4Addr(10, 0, 0, 1);
  spec.duration_s = 300.0;
  spec.per_reflector_rps = rps;
  spec.honeypots_hit = 24;
  fleet.run({&spec, 1}, 0.0, 7200.0);
  const auto events = fleet.harvest();
  const double expected = rps * 300.0;
  if (expected > 130.0) {
    EXPECT_EQ(events.size(), 1u) << "rps=" << rps;
  } else if (expected < 80.0) {
    EXPECT_TRUE(events.empty()) << "rps=" << rps;
  }  // near the threshold either outcome is fine (Poisson noise)
}

INSTANTIATE_TEST_SUITE_P(Rates, FleetDetectionSweep,
                         ::testing::Values(0.05, 0.2, 0.33, 0.5, 1.0, 5.0));

}  // namespace
}  // namespace dosm::amppot
