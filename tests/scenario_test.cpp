// End-to-end scenario tests: a small world must be buildable,
// deterministic, and produce events in both datasets with sane invariants.
#include <gtest/gtest.h>

#include "core/ports.h"
#include "dps/classifier.h"
#include "sim/scenario.h"

namespace dosm {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = sim::build_world(sim::ScenarioConfig::small()).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static sim::World* world_;
};

sim::World* ScenarioTest::world_ = nullptr;

TEST_F(ScenarioTest, ProducesEventsInBothDatasets) {
  EXPECT_GT(world_->telescope_events.size(), 100u);
  EXPECT_GT(world_->honeypot_events.size(), 100u);
  EXPECT_EQ(world_->store.size(),
            world_->telescope_events.size() + world_->honeypot_events.size());
}

TEST_F(ScenarioTest, EventsRespectDetectionThresholds) {
  const auto& thresholds = world_->config.observation.telescope_thresholds;
  for (const auto& event : world_->telescope_events) {
    EXPECT_GE(event.packets, thresholds.min_packets);
    EXPECT_GE(event.duration(), thresholds.min_duration_s);
    EXPECT_GE(event.max_pps, thresholds.min_max_pps);
  }
  for (const auto& event : world_->honeypot_events) {
    EXPECT_GT(event.requests, world_->config.observation.amppot_config.min_requests);
    EXPECT_LE(event.duration(),
              world_->config.observation.amppot_config.max_duration_s + 1.0);
  }
}

TEST_F(ScenarioTest, SummariesAreConsistent) {
  const auto& pfx2as = world_->population.pfx2as();
  const auto telescope =
      world_->store.summarize(core::SourceFilter::kTelescope, pfx2as);
  const auto honeypot =
      world_->store.summarize(core::SourceFilter::kHoneypot, pfx2as);
  const auto combined =
      world_->store.summarize(core::SourceFilter::kCombined, pfx2as);
  EXPECT_EQ(combined.events, telescope.events + honeypot.events);
  // Unique targets are sub-additive (overlap between datasets).
  EXPECT_LE(combined.unique_targets,
            telescope.unique_targets + honeypot.unique_targets);
  EXPECT_GE(combined.unique_targets,
            std::max(telescope.unique_targets, honeypot.unique_targets));
  // Rollup hierarchy: targets >= /24s >= /16s >= ASNs is not guaranteed in
  // general, but targets >= /24s >= /16s is.
  EXPECT_GE(combined.unique_targets, combined.unique_slash24);
  EXPECT_GE(combined.unique_slash24, combined.unique_slash16);
  EXPECT_GT(combined.unique_asns, 0u);
}

TEST_F(ScenarioTest, TcpDominatesSpoofedAttacks) {
  const auto rows = core::ip_protocol_distribution(world_->store);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].label, "TCP");
  EXPECT_GT(rows[0].share, 0.6);  // paper: 79.4%
  EXPECT_GT(rows[1].share, rows[2].share * 0.5);  // UDP > ICMP roughly
}

TEST_F(ScenarioTest, NtpLeadsReflectionVectors) {
  const auto rows = core::reflection_distribution(world_->store);
  ASSERT_GE(rows.size(), 2u);
  EXPECT_EQ(rows[0].label, "NTP");
  EXPECT_GT(rows[0].share, 0.30);  // paper: 40.08%
}

TEST_F(ScenarioTest, DeterministicAcrossRebuilds) {
  const auto again = sim::build_world(sim::ScenarioConfig::small());
  EXPECT_EQ(again->truth.size(), world_->truth.size());
  EXPECT_EQ(again->telescope_events.size(), world_->telescope_events.size());
  EXPECT_EQ(again->honeypot_events.size(), world_->honeypot_events.size());
  EXPECT_EQ(again->migrations.size(), world_->migrations.size());
  ASSERT_FALSE(again->truth.empty());
  EXPECT_EQ(again->truth.front().target, world_->truth.front().target);
  EXPECT_DOUBLE_EQ(again->truth.front().start, world_->truth.front().start);
}

TEST_F(ScenarioTest, MigrationsAreDetectableInDns) {
  // Every applied migration must be re-detectable via the DPS classifier.
  const dps::Classifier classifier(world_->providers, world_->names);
  std::size_t checked = 0;
  for (const auto& migration : world_->migrations) {
    const auto record =
        world_->dns.record_on(migration.domain, migration.migration_day);
    ASSERT_TRUE(record.has_value());
    const auto provider = classifier.classify(*record);
    ASSERT_TRUE(provider.has_value());
    EXPECT_EQ(*provider, migration.provider);
    if (++checked > 200) break;  // sample is enough
  }
  EXPECT_GT(world_->migrations.size(), 0u);
}

}  // namespace
}  // namespace dosm
