// Port/service mapping and Table 5-8 distribution tests.
#include <gtest/gtest.h>

#include "core/ports.h"

namespace dosm::core {
namespace {

using net::Ipv4Addr;


TEST(ServiceName, KnownMappings) {
  EXPECT_EQ(service_name(80, true), "HTTP");
  EXPECT_EQ(service_name(443, true), "HTTPS");
  EXPECT_EQ(service_name(3306, true), "MySQL");
  EXPECT_EQ(service_name(53, true), "DNS");
  EXPECT_EQ(service_name(1723, true), "VPN PPTP");
  EXPECT_EQ(service_name(123, false), "NTP");
  EXPECT_EQ(service_name(123, true), "123");  // NTP is UDP-only
  EXPECT_EQ(service_name(138, false), "NetBIOS");
  EXPECT_EQ(service_name(27015, false), "27015");  // game ports stay numeric
}

TEST(WebPort, Only80And443) {
  EXPECT_TRUE(is_web_port(80));
  EXPECT_TRUE(is_web_port(443));
  EXPECT_FALSE(is_web_port(8080));
  EXPECT_FALSE(is_web_port(0));
}

class DistributionTest : public ::testing::Test {
 protected:
  DistributionTest() : t0_(static_cast<double>(window_.start_time())) {}

  void add_telescope(std::uint8_t proto, std::vector<std::uint16_t> ports) {
    AttackEvent event;
    event.source = EventSource::kTelescope;
    event.target = Ipv4Addr(10, 0, 0, next_++);
    event.start = t0_ + next_ * 100.0;
    event.end = event.start + 100.0;
    event.intensity = 1.0;
    event.ip_proto = proto;
    event.num_ports = static_cast<std::uint16_t>(ports.size());
    event.top_port = ports.empty() ? 0 : ports[0];
    store_.add(event);
  }

  void add_honeypot(amppot::ReflectionProtocol protocol) {
    AttackEvent event;
    event.source = EventSource::kHoneypot;
    event.target = Ipv4Addr(20, 0, 0, next_++);
    event.start = t0_ + next_ * 100.0;
    event.end = event.start + 100.0;
    event.intensity = 10.0;
    event.reflection = protocol;
    store_.add(event);
  }

  StudyWindow window_{};
  double t0_;
  EventStore store_{window_};
  std::uint8_t next_ = 1;
};

TEST_F(DistributionTest, IpProtocolSharesSumToOne) {
  for (int i = 0; i < 8; ++i) add_telescope(6, {80});
  add_telescope(17, {27015});
  add_telescope(1, {});
  add_honeypot(amppot::ReflectionProtocol::kNtp);  // must not count
  store_.finalize();
  const auto rows = ip_protocol_distribution(store_);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].label, "TCP");
  EXPECT_EQ(rows[0].events, 8u);
  EXPECT_DOUBLE_EQ(rows[0].share, 0.8);
  EXPECT_DOUBLE_EQ(rows[1].share + rows[2].share + rows[3].share, 0.2);
}

TEST_F(DistributionTest, ReflectionDistributionRanksAndFoldsOther) {
  for (int i = 0; i < 5; ++i) add_honeypot(amppot::ReflectionProtocol::kNtp);
  for (int i = 0; i < 3; ++i) add_honeypot(amppot::ReflectionProtocol::kDns);
  add_honeypot(amppot::ReflectionProtocol::kCharGen);
  add_honeypot(amppot::ReflectionProtocol::kSsdp);
  add_honeypot(amppot::ReflectionProtocol::kRipv1);
  add_honeypot(amppot::ReflectionProtocol::kTftp);   // 6th: folds to Other
  add_honeypot(amppot::ReflectionProtocol::kMssql);  // 7th: folds to Other
  store_.finalize();
  const auto rows = reflection_distribution(store_);
  ASSERT_EQ(rows.size(), 6u);  // top 5 + Other
  EXPECT_EQ(rows[0].label, "NTP");
  EXPECT_EQ(rows[0].events, 5u);
  EXPECT_EQ(rows.back().label, "Other");
  EXPECT_EQ(rows.back().events, 2u);
  double total_share = 0.0;
  for (const auto& row : rows) total_share += row.share;
  EXPECT_NEAR(total_share, 1.0, 1e-9);
}

TEST_F(DistributionTest, PortCardinalitySplit) {
  add_telescope(6, {80});
  add_telescope(6, {80, 443});
  add_telescope(6, {80, 443, 8080});
  add_telescope(1, {});  // portless: excluded from the split
  store_.finalize();
  const auto split = port_cardinality(store_.events());
  EXPECT_EQ(split.single_port, 1u);
  EXPECT_EQ(split.multi_port, 2u);
  EXPECT_EQ(split.total(), 3u);
  EXPECT_NEAR(split.single_share(), 1.0 / 3.0, 1e-9);
}

TEST_F(DistributionTest, ServiceDistributionTopN) {
  for (int i = 0; i < 6; ++i) add_telescope(6, {80});
  for (int i = 0; i < 3; ++i) add_telescope(6, {443});
  add_telescope(6, {3306});
  add_telescope(6, {3306});
  add_telescope(6, {22});
  add_telescope(6, {25});
  add_telescope(6, {80, 443});  // multi-port: excluded
  add_telescope(17, {27015});   // UDP: excluded from the TCP table
  store_.finalize();
  const auto rows = service_distribution(store_.events(), /*tcp=*/true, 3);
  ASSERT_EQ(rows.size(), 4u);  // top 3 + Other
  EXPECT_EQ(rows[0].label, "HTTP");
  EXPECT_EQ(rows[0].events, 6u);
  EXPECT_EQ(rows[1].label, "HTTPS");
  EXPECT_EQ(rows[2].label, "MySQL");
  EXPECT_EQ(rows[2].events, 2u);
  EXPECT_EQ(rows[3].label, "Other");
  EXPECT_EQ(rows[3].events, 2u);
  EXPECT_NEAR(rows[0].share, 6.0 / 13.0, 1e-9);  // 6 of 13 single-port TCP
}

TEST_F(DistributionTest, UdpServiceDistribution) {
  for (int i = 0; i < 4; ++i) add_telescope(17, {27015});
  add_telescope(17, {3306});
  store_.finalize();
  const auto rows = service_distribution(store_.events(), /*tcp=*/false, 5);
  EXPECT_EQ(rows[0].label, "27015");
  EXPECT_EQ(rows[0].events, 4u);
}

TEST_F(DistributionTest, WebPortShare) {
  for (int i = 0; i < 7; ++i) add_telescope(6, {80});
  for (int i = 0; i < 2; ++i) add_telescope(6, {443});
  add_telescope(6, {22});
  store_.finalize();
  EXPECT_DOUBLE_EQ(web_port_share(store_.events()), 0.9);
}

TEST_F(DistributionTest, EmptyStoreYieldsZeroShares) {
  store_.finalize();
  const auto rows = ip_protocol_distribution(store_);
  for (const auto& row : rows) EXPECT_DOUBLE_EQ(row.share, 0.0);
  EXPECT_DOUBLE_EQ(web_port_share(store_.events()), 0.0);
  const auto split = port_cardinality(store_.events());
  EXPECT_EQ(split.total(), 0u);
  EXPECT_DOUBLE_EQ(split.single_share(), 0.0);
}

}  // namespace
}  // namespace dosm::core
