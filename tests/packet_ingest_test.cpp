// Packet-level AmpPot ingestion tests: raw UDP datagrams -> requests ->
// consolidated events, including the full pcap round trip, and agreement
// with the log-level fleet driver on identical ground truth.
#include <gtest/gtest.h>

#include <sstream>

#include "amppot/packet_ingest.h"

namespace dosm::amppot {
namespace {

using net::Ipv4Addr;

ReflectionAttackSpec ntp_attack(Ipv4Addr victim, double start, double duration,
                                double rps, int honeypots) {
  ReflectionAttackSpec spec;
  spec.victim = victim;
  spec.protocol = ReflectionProtocol::kNtp;
  spec.start = start;
  spec.duration_s = duration;
  spec.per_reflector_rps = rps;
  spec.honeypots_hit = honeypots;
  return spec;
}

TEST(PacketIngest, SynthesizedRequestsLookRight) {
  HoneypotFleet fleet(1);
  const auto spec = ntp_attack(Ipv4Addr(9, 9, 9, 9), 0.0, 300.0, 3.0, 8);
  const auto packets =
      synthesize_reflection_requests(fleet, {&spec, 1}, 0.0, 600.0, 7);
  ASSERT_GT(packets.size(), 5000u);  // ~8 honeypots x 900 requests
  double prev = -1.0;
  std::set<std::uint32_t> destinations;
  for (const auto& rec : packets) {
    EXPECT_TRUE(rec.is_udp());
    EXPECT_EQ(rec.src, spec.victim);
    EXPECT_EQ(rec.dst_port, 123);  // NTP
    EXPECT_GE(rec.timestamp(), prev);
    prev = rec.timestamp();
    destinations.insert(rec.dst.value());
  }
  EXPECT_EQ(destinations.size(), 8u);
}

TEST(PacketIngest, RoutesAndDropsCorrectly) {
  HoneypotFleet fleet(2);
  PacketIngest ingest(fleet);

  net::PacketRecord good;
  good.ts_sec = 100;
  good.src = Ipv4Addr(9, 9, 9, 9);
  good.dst = fleet.honeypots()[0].address();
  good.proto = 17;
  good.dst_port = 53;  // DNS
  EXPECT_TRUE(ingest.ingest(good));

  auto wrong_port = good;
  wrong_port.dst_port = 4444;  // nothing emulated there
  EXPECT_FALSE(ingest.ingest(wrong_port));

  auto wrong_address = good;
  wrong_address.dst = Ipv4Addr(8, 8, 8, 8);
  EXPECT_FALSE(ingest.ingest(wrong_address));

  auto tcp = good;
  tcp.proto = 6;
  EXPECT_FALSE(ingest.ingest(tcp));

  const auto& stats = ingest.stats();
  EXPECT_EQ(stats.packets, 4u);
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.unknown_port, 1u);
  EXPECT_EQ(stats.unknown_address, 1u);
  EXPECT_EQ(stats.non_udp, 1u);
  EXPECT_EQ(fleet.total_requests(), 1u);
}

TEST(PacketIngest, PcapRoundTripToEvents) {
  HoneypotFleet fleet(3);
  const auto spec = ntp_attack(Ipv4Addr(9, 9, 9, 9), 10.0, 600.0, 2.0, 12);
  const auto packets =
      synthesize_reflection_requests(fleet, {&spec, 1}, 0.0, 3600.0, 11);

  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  net::PcapWriter writer(stream);
  for (const auto& rec : packets) writer.write_packet(rec);
  net::PcapReader reader(stream);

  PacketIngest ingest(fleet);
  const auto stats = ingest.replay(reader);
  EXPECT_EQ(stats.requests, packets.size());

  const auto events = fleet.harvest();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].victim, spec.victim);
  EXPECT_EQ(events[0].protocol, ReflectionProtocol::kNtp);
  EXPECT_EQ(events[0].honeypots, 12u);
  EXPECT_NEAR(events[0].duration(), 600.0, 40.0);
  EXPECT_NEAR(events[0].avg_rps(), 2.0, 0.5);
}

TEST(PacketIngest, AgreesWithLogLevelDriver) {
  // Same ground truth through both tiers must yield equivalent events.
  std::vector<ReflectionAttackSpec> specs{
      ntp_attack(Ipv4Addr(1, 1, 1, 1), 0.0, 400.0, 2.0, 6),
      ntp_attack(Ipv4Addr(2, 2, 2, 2), 500.0, 300.0, 4.0, 10)};
  specs[1].protocol = ReflectionProtocol::kCharGen;

  HoneypotFleet log_fleet(4);
  log_fleet.run(specs, 0.0, 3600.0);
  const auto log_events = log_fleet.harvest();

  HoneypotFleet packet_fleet(4);
  const auto packets =
      synthesize_reflection_requests(packet_fleet, specs, 0.0, 3600.0, 4);
  PacketIngest ingest(packet_fleet);
  ingest.replay(packets);
  const auto packet_events = packet_fleet.harvest();

  ASSERT_EQ(log_events.size(), 2u);
  ASSERT_EQ(packet_events.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(packet_events[i].victim, log_events[i].victim);
    EXPECT_EQ(packet_events[i].protocol, log_events[i].protocol);
    EXPECT_NEAR(packet_events[i].avg_rps(), log_events[i].avg_rps(),
                0.5 * log_events[i].avg_rps());
  }
}

TEST(PacketIngest, ScanProbesStayBelowThreshold) {
  // A scanner probing each protocol once from its own address produces
  // requests but no events.
  HoneypotFleet fleet(5);
  PacketIngest ingest(fleet);
  for (int s = 0; s < 50; ++s) {
    for (const auto& info : all_protocols()) {
      net::PacketRecord rec;
      rec.ts_sec = 1000 + s;
      rec.src = Ipv4Addr(1, 2, 3, static_cast<std::uint8_t>(s));
      rec.dst = fleet.honeypots()[0].address();
      rec.proto = 17;
      rec.dst_port = info.udp_port;
      ingest.ingest(rec);
    }
  }
  EXPECT_GT(fleet.total_requests(), 300u);
  EXPECT_TRUE(fleet.harvest().empty());
}

}  // namespace
}  // namespace dosm::amppot
