// Telescope synthesizer tests: the packet-level tier must produce captures
// the detector recovers the ground truth from.
#include <gtest/gtest.h>

#include "telescope/pipeline.h"
#include "telescope/synthesizer.h"

namespace dosm::telescope {
namespace {

using net::Ipv4Addr;
using net::IpProto;

TEST(Synthesizer, CoverageMatchesPrefixLength) {
  TelescopeSynthesizer slash8(1);
  EXPECT_DOUBLE_EQ(slash8.coverage(), 1.0 / 256.0);
  TelescopeSynthesizer slash16(1, net::Prefix(Ipv4Addr(10, 1, 0, 0), 16));
  EXPECT_DOUBLE_EQ(slash16.coverage(), 1.0 / 65536.0);
}

TEST(Synthesizer, PacketCountTracksExpectedThinning) {
  TelescopeSynthesizer synthesizer(2);
  SpoofedAttackSpec spec;
  spec.victim = Ipv4Addr(9, 9, 9, 9);
  spec.start = 0.0;
  spec.duration_s = 600.0;
  spec.victim_pps = 25600.0;  // expected at telescope: 100 pps * 600 s
  spec.response_rate = 1.0;
  const auto packets = synthesizer.synthesize({&spec, 1}, 0.0, 600.0);
  EXPECT_NEAR(static_cast<double>(packets.size()), 60000.0, 2500.0);
  for (const auto& rec : packets) {
    EXPECT_TRUE(synthesizer.telescope().contains(rec.dst));
    EXPECT_EQ(rec.src, spec.victim);
  }
}

TEST(Synthesizer, OutputIsTimeOrderedAndClipped) {
  TelescopeSynthesizer synthesizer(3);
  SpoofedAttackSpec spec;
  spec.victim = Ipv4Addr(9, 9, 9, 9);
  spec.start = -100.0;  // starts before the window
  spec.duration_s = 400.0;
  spec.victim_pps = 30000.0;
  const auto packets = synthesizer.synthesize({&spec, 1}, 0.0, 200.0);
  ASSERT_FALSE(packets.empty());
  double prev = -1e18;
  for (const auto& rec : packets) {
    EXPECT_GE(rec.timestamp(), 0.0);
    EXPECT_LT(rec.timestamp(), 200.0);
    EXPECT_GE(rec.timestamp(), prev);
    prev = rec.timestamp();
  }
}

TEST(Synthesizer, TcpAttackYieldsSynAckAndRst) {
  TelescopeSynthesizer synthesizer(4);
  SpoofedAttackSpec spec;
  spec.victim = Ipv4Addr(9, 9, 9, 9);
  spec.duration_s = 300.0;
  spec.victim_pps = 50000.0;
  spec.ip_proto = static_cast<std::uint8_t>(IpProto::kTcp);
  spec.ports = {443};
  const auto packets = synthesizer.synthesize({&spec, 1}, 0.0, 300.0);
  int syn_ack = 0, rst = 0;
  for (const auto& rec : packets) {
    ASSERT_TRUE(rec.is_tcp());
    EXPECT_EQ(rec.src_port, 443);
    if ((rec.tcp_flags & net::tcp_flags::kSyn) != 0)
      ++syn_ack;
    else
      ++rst;
    EXPECT_TRUE(is_backscatter(rec));
  }
  EXPECT_GT(syn_ack, rst);  // ~80/20 mix
  EXPECT_GT(rst, 0);
}

TEST(Synthesizer, UdpAttackYieldsQuotedUnreachables) {
  TelescopeSynthesizer synthesizer(5);
  SpoofedAttackSpec spec;
  spec.victim = Ipv4Addr(9, 9, 9, 9);
  spec.duration_s = 300.0;
  spec.victim_pps = 50000.0;
  spec.ip_proto = static_cast<std::uint8_t>(IpProto::kUdp);
  spec.ports = {27015};
  const auto packets = synthesizer.synthesize({&spec, 1}, 0.0, 300.0);
  ASSERT_FALSE(packets.empty());
  for (const auto& rec : packets) {
    ASSERT_TRUE(rec.is_icmp());
    ASSERT_TRUE(rec.has_quoted);
    EXPECT_EQ(rec.quoted_proto, static_cast<std::uint8_t>(IpProto::kUdp));
    EXPECT_EQ(rec.quoted_dst, spec.victim);
    EXPECT_EQ(rec.quoted_dst_port, 27015);
    const auto info = classify_backscatter(rec);
    EXPECT_EQ(info.victim, spec.victim);
    EXPECT_EQ(info.attack_proto, static_cast<std::uint8_t>(IpProto::kUdp));
  }
}

TEST(Synthesizer, ResponseRateScalesBackscatter) {
  TelescopeSynthesizer synthesizer(6);
  SpoofedAttackSpec full, half;
  full.victim = half.victim = Ipv4Addr(9, 9, 9, 9);
  full.duration_s = half.duration_s = 600.0;
  full.victim_pps = half.victim_pps = 25600.0;
  full.response_rate = 1.0;
  half.response_rate = 0.5;
  const auto a = synthesizer.synthesize({&full, 1}, 0.0, 600.0);
  TelescopeSynthesizer synthesizer2(6);
  const auto b = synthesizer2.synthesize({&half, 1}, 0.0, 600.0);
  EXPECT_NEAR(static_cast<double>(b.size()) / static_cast<double>(a.size()), 0.5,
              0.06);
}

TEST(Synthesizer, NoiseIsNotDetectedAsAttacks) {
  TelescopeSynthesizer synthesizer(7);
  NoiseConfig noise;
  noise.scan_pps = 50.0;
  noise.misconfig_pps = 20.0;
  noise.benign_icmp_pps = 10.0;
  const auto packets = synthesizer.synthesize({}, 0.0, 1200.0, noise);
  EXPECT_GT(packets.size(), 50000u);
  Pipeline pipeline;
  auto& rsdos = pipeline.emplace_plugin<RsdosPlugin>();
  pipeline.replay(packets);
  pipeline.finish();
  EXPECT_EQ(rsdos.events().size(), 0u);
  EXPECT_EQ(rsdos.detector().backscatter_packets(), 0u);
}

TEST(Synthesizer, EndToEndRecoveryOfGroundTruth) {
  // The headline property: ground truth in, matching events out.
  TelescopeSynthesizer synthesizer(8);
  std::vector<SpoofedAttackSpec> specs(3);
  specs[0] = {.victim = Ipv4Addr(1, 0, 0, 1),
              .start = 60.0,
              .duration_s = 900.0,
              .victim_pps = 64000.0,
              .ip_proto = 6,
              .ports = {80}};
  specs[1] = {.victim = Ipv4Addr(2, 0, 0, 2),
              .start = 120.0,
              .duration_s = 600.0,
              .victim_pps = 32000.0,
              .ip_proto = 17,
              .ports = {53}};
  specs[2] = {.victim = Ipv4Addr(3, 0, 0, 3),
              .start = 300.0,
              .duration_s = 300.0,
              .victim_pps = 128000.0,
              .ip_proto = 1,
              .ports = {}};
  const auto packets = synthesizer.synthesize(
      specs, 0.0, 3600.0, {.scan_pps = 20.0, .misconfig_pps = 5.0});
  Pipeline pipeline;
  auto& rsdos = pipeline.emplace_plugin<RsdosPlugin>();
  pipeline.replay(packets);
  pipeline.finish();
  ASSERT_EQ(rsdos.events().size(), 3u);
  for (const auto& event : rsdos.events()) {
    bool matched = false;
    for (const auto& spec : specs) {
      if (event.victim != spec.victim) continue;
      matched = true;
      EXPECT_EQ(event.attack_proto, spec.ip_proto);
      EXPECT_NEAR(event.duration(), spec.duration_s, spec.duration_s * 0.05);
      // Observed max pps should be near the thinned ground-truth rate.
      const double expected_pps = spec.victim_pps / 256.0;
      EXPECT_NEAR(event.max_pps, expected_pps, expected_pps * 0.35);
      if (!spec.ports.empty()) {
        EXPECT_EQ(event.top_port, spec.ports[0]);
      }
    }
    EXPECT_TRUE(matched) << "unexpected victim " << event.victim.to_string();
  }
}

}  // namespace
}  // namespace dosm::telescope
