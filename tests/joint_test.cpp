// Joint-attack analysis tests (§4): common targets vs simultaneous attacks.
#include <gtest/gtest.h>

#include "core/joint.h"

namespace dosm::core {
namespace {

using net::Ipv4Addr;

AttackEvent make_event(EventSource source, Ipv4Addr target, double start,
                       double duration) {
  AttackEvent event;
  event.source = source;
  event.target = target;
  event.start = start;
  event.end = start + duration;
  event.intensity = 1.0;
  if (source == EventSource::kTelescope) {
    event.ip_proto = 6;
    event.num_ports = 1;
    event.top_port = 80;
  } else {
    event.reflection = amppot::ReflectionProtocol::kNtp;
  }
  return event;
}

class JointTest : public ::testing::Test {
 protected:
  JointTest() : t0_(static_cast<double>(window_.start_time())) {
    pfx2as_.announce(net::Prefix::parse("10.0.0.0/8"), 12276);
    pfx2as_.announce(net::Prefix::parse("20.0.0.0/8"), 4134);
    geo_.add(net::Prefix::parse("10.0.0.0/8"), meta::CountryCode("FR"));
    geo_.add(net::Prefix::parse("20.0.0.0/8"), meta::CountryCode("CN"));
  }

  StudyWindow window_{};
  double t0_;
  EventStore store_{window_};
  meta::PrefixToAsMap pfx2as_;
  meta::GeoDatabase geo_;
};

TEST_F(JointTest, DistinguishesCommonFromJoint) {
  // Target A: both sources, overlapping -> joint.
  const Ipv4Addr a(10, 0, 0, 1);
  store_.add(make_event(EventSource::kTelescope, a, t0_ + 100, 600));
  store_.add(make_event(EventSource::kHoneypot, a, t0_ + 300, 600));
  // Target B: both sources, days apart -> common but not joint.
  const Ipv4Addr b(10, 0, 0, 2);
  store_.add(make_event(EventSource::kTelescope, b, t0_ + 100, 600));
  store_.add(make_event(EventSource::kHoneypot, b, t0_ + 86400 * 3, 600));
  // Target C: telescope only.
  store_.add(make_event(EventSource::kTelescope, Ipv4Addr(20, 0, 0, 3),
                        t0_ + 100, 600));
  store_.finalize();

  const JointAttackAnalysis joint(store_);
  EXPECT_EQ(joint.common_targets(), 2u);
  EXPECT_EQ(joint.joint_targets(), 1u);
  ASSERT_EQ(joint.joint_target_list().size(), 1u);
  EXPECT_EQ(joint.joint_target_list()[0], a);
  EXPECT_EQ(joint.telescope_joint_events().size(), 1u);
  EXPECT_EQ(joint.honeypot_joint_events().size(), 1u);
}

TEST_F(JointTest, CollectsAllCoParticipatingEvents) {
  const Ipv4Addr a(10, 0, 0, 1);
  // Two telescope events overlapping the same reflection attack.
  store_.add(make_event(EventSource::kTelescope, a, t0_ + 100, 200));
  store_.add(make_event(EventSource::kTelescope, a, t0_ + 400, 200));
  store_.add(make_event(EventSource::kHoneypot, a, t0_ + 50, 700));
  // A later telescope event with no overlap: not joint.
  store_.add(make_event(EventSource::kTelescope, a, t0_ + 5000, 100));
  store_.finalize();
  const JointAttackAnalysis joint(store_);
  EXPECT_EQ(joint.joint_targets(), 1u);
  EXPECT_EQ(joint.telescope_joint_events().size(), 2u);
  EXPECT_EQ(joint.honeypot_joint_events().size(), 1u);
}

TEST_F(JointTest, AsnRankingCountsJointTargets) {
  for (int i = 1; i <= 3; ++i) {
    const Ipv4Addr target(10, 0, 0, static_cast<std::uint8_t>(i));
    store_.add(make_event(EventSource::kTelescope, target, t0_ + 100, 600));
    store_.add(make_event(EventSource::kHoneypot, target, t0_ + 200, 600));
  }
  const Ipv4Addr other(20, 0, 0, 9);
  store_.add(make_event(EventSource::kTelescope, other, t0_ + 100, 600));
  store_.add(make_event(EventSource::kHoneypot, other, t0_ + 200, 600));
  store_.finalize();
  const JointAttackAnalysis joint(store_);
  const auto ranking = joint.asn_ranking(pfx2as_);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].asn, 12276u);  // OVH-style: most joint targets
  EXPECT_EQ(ranking[0].targets, 3u);
  EXPECT_DOUBLE_EQ(ranking[0].share, 0.75);
  const auto countries = joint.country_ranking(geo_);
  ASSERT_EQ(countries.size(), 2u);
  EXPECT_EQ(countries[0].country.to_string(), "FR");
}

TEST_F(JointTest, EmptyStoreIsClean) {
  store_.finalize();
  const JointAttackAnalysis joint(store_);
  EXPECT_EQ(joint.common_targets(), 0u);
  EXPECT_EQ(joint.joint_targets(), 0u);
  EXPECT_TRUE(joint.asn_ranking(pfx2as_).empty());
}

}  // namespace
}  // namespace dosm::core
