// Geo/ASN tagging plugin tests.
#include <gtest/gtest.h>

#include "telescope/geo_plugin.h"

namespace dosm::telescope {
namespace {

using net::Ipv4Addr;

class GeoPluginTest : public ::testing::Test {
 protected:
  GeoPluginTest() {
    geo_.add(net::Prefix::parse("10.0.0.0/8"), meta::CountryCode("US"));
    geo_.add(net::Prefix::parse("20.0.0.0/8"), meta::CountryCode("FR"));
    pfx2as_.announce(net::Prefix::parse("10.0.0.0/8"), 26496);
    pfx2as_.announce(net::Prefix::parse("20.0.0.0/8"), 12276);
  }

  net::PacketRecord backscatter_from(Ipv4Addr victim) {
    net::PacketRecord rec;
    rec.src = victim;
    rec.dst = Ipv4Addr(44, 0, 0, 1);
    rec.proto = 6;
    rec.src_port = 80;
    rec.tcp_flags = net::tcp_flags::kSyn | net::tcp_flags::kAck;
    return rec;
  }

  meta::GeoDatabase geo_;
  meta::PrefixToAsMap pfx2as_;
};

TEST_F(GeoPluginTest, TagsBackscatterVictims) {
  GeoTaggingPlugin plugin(geo_, pfx2as_);
  for (int i = 0; i < 7; ++i)
    plugin.on_packet(backscatter_from(Ipv4Addr(10, 0, 0, 1)));
  for (int i = 0; i < 3; ++i)
    plugin.on_packet(backscatter_from(Ipv4Addr(20, 0, 0, 1)));
  // Non-backscatter (plain SYN) is ignored.
  auto scan = backscatter_from(Ipv4Addr(10, 0, 0, 2));
  scan.tcp_flags = net::tcp_flags::kSyn;
  plugin.on_packet(scan);

  EXPECT_EQ(plugin.tagged_packets(), 10u);
  const auto countries = plugin.country_ranking();
  ASSERT_EQ(countries.size(), 2u);
  EXPECT_EQ(countries[0].first.to_string(), "US");
  EXPECT_EQ(countries[0].second, 7u);
  EXPECT_EQ(countries[1].first.to_string(), "FR");

  const auto asns = plugin.asn_ranking();
  ASSERT_EQ(asns.size(), 2u);
  EXPECT_EQ(asns[0].first, 26496u);
  EXPECT_EQ(asns[1].first, 12276u);
  EXPECT_EQ(plugin.unrouted_packets(), 0u);
}

TEST_F(GeoPluginTest, CountsUnroutedSeparately) {
  GeoTaggingPlugin plugin(geo_, pfx2as_);
  plugin.on_packet(backscatter_from(Ipv4Addr(99, 0, 0, 1)));
  EXPECT_EQ(plugin.tagged_packets(), 1u);
  EXPECT_EQ(plugin.unrouted_packets(), 1u);
  EXPECT_TRUE(plugin.asn_ranking().empty());
  // Geolocation falls back to the unknown country rather than dropping.
  const auto countries = plugin.country_ranking();
  ASSERT_EQ(countries.size(), 1u);
  EXPECT_EQ(countries[0].first, meta::unknown_country());
}

TEST_F(GeoPluginTest, IcmpErrorVictimComesFromQuote) {
  // The tagged victim of an ICMP unreachable is the quoted destination.
  GeoTaggingPlugin plugin(geo_, pfx2as_);
  net::PacketRecord rec;
  rec.src = Ipv4Addr(99, 1, 1, 1);  // router in unmapped space
  rec.dst = Ipv4Addr(44, 0, 0, 1);
  rec.proto = 1;
  rec.icmp_type = 3;
  rec.has_quoted = true;
  rec.quoted_proto = 17;
  rec.quoted_dst = Ipv4Addr(20, 1, 2, 3);  // true victim in FR
  plugin.on_packet(rec);
  const auto countries = plugin.country_ranking();
  ASSERT_EQ(countries.size(), 1u);
  EXPECT_EQ(countries[0].first.to_string(), "FR");
}

TEST_F(GeoPluginTest, RunsInPipeline) {
  Pipeline pipeline;
  auto& geo = pipeline.emplace_plugin<GeoTaggingPlugin>(geo_, pfx2as_);
  std::vector<net::PacketRecord> packets;
  for (int i = 0; i < 5; ++i)
    packets.push_back(backscatter_from(Ipv4Addr(10, 0, 0, 1)));
  pipeline.replay(packets);
  pipeline.finish();
  EXPECT_EQ(geo.tagged_packets(), 5u);
}

}  // namespace
}  // namespace dosm::telescope
