// Unit and statistical tests for the deterministic RNG layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/rng.h"

namespace dosm {
namespace {

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 a(12345), b(12345);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
  SplitMix64 c(12346);
  EXPECT_NE(SplitMix64(12345).next(), c.next());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  bool any_nonzero = false;
  for (int i = 0; i < 8; ++i) any_nonzero |= rng.next_u64() != 0;
  EXPECT_TRUE(any_nonzero);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(99);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Rng, UniformIntCoversClosedRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(Rng(1).bernoulli(0.0));
  EXPECT_TRUE(Rng(1).bernoulli(1.0));
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / 20000.0, 0.25, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(29);
  std::vector<double> draws;
  for (int i = 0; i < 20001; ++i) draws.push_back(rng.lognormal(2.0, 1.0));
  std::nth_element(draws.begin(), draws.begin() + 10000, draws.end());
  EXPECT_NEAR(draws[10000], std::exp(2.0), std::exp(2.0) * 0.1);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(3.0, 2.0), 3.0);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(37);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += double(rng.poisson(3.5));
  EXPECT_NEAR(sum / 20000.0, 3.5, 0.1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonLargeMeanUsesNormalPath) {
  Rng rng(41);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = double(rng.poisson(500.0));
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  EXPECT_NEAR(mean, 500.0, 2.0);
  EXPECT_NEAR(sq / kN - mean * mean, 500.0, 40.0);  // variance == mean
}

TEST(Rng, BinomialMatchesMoments) {
  Rng rng(43);
  // Small-n exact path.
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += double(rng.binomial(20, 0.25));
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.1);
  // Large-n approximation path.
  sum = 0.0;
  for (int i = 0; i < 5000; ++i) sum += double(rng.binomial(100000, 0.1));
  EXPECT_NEAR(sum / 5000.0, 10000.0, 50.0);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(10, 0.0), 0u);
  EXPECT_EQ(rng.binomial(10, 1.0), 10u);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(47);
  Rng a = parent.fork("alpha");
  Rng parent2(47);
  Rng a2 = parent2.fork("alpha");
  EXPECT_EQ(a.next_u64(), a2.next_u64());  // fork is deterministic
  Rng parent3(47);
  Rng b = parent3.fork("beta");
  EXPECT_NE(Rng(47).fork("alpha").next_u64(), b.next_u64());
}

TEST(AliasTable, SamplesProportionally) {
  const std::vector<double> weights{1.0, 3.0, 6.0};
  const AliasTable table(weights);
  Rng rng(53);
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[table.sample(rng)];
  EXPECT_NEAR(counts[0] / double(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(kDraws), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / double(kDraws), 0.6, 0.015);
}

TEST(AliasTable, HandlesZeroWeights) {
  const std::vector<double> weights{0.0, 1.0, 0.0};
  const AliasTable table(weights);
  Rng rng(59);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.sample(rng), 1u);
}

TEST(AliasTable, RejectsInvalidInput) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{-1.0, 2.0}), std::invalid_argument);
}

TEST(ZipfSampler, RanksStayInRange) {
  const ZipfSampler zipf(100, 1.1);
  Rng rng(61);
  for (int i = 0; i < 5000; ++i) {
    const auto rank = zipf.sample(rng);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 100u);
  }
}

TEST(ZipfSampler, Rank1IsMostFrequent) {
  const ZipfSampler zipf(50, 1.0);
  Rng rng(67);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
  EXPECT_GT(counts[5], counts[20]);
  // Zipf(1): P(1)/P(2) ~ 2.
  EXPECT_NEAR(double(counts[1]) / double(counts[2]), 2.0, 0.3);
}

TEST(ZipfSampler, SingleElementAlwaysOne) {
  const ZipfSampler zipf(1, 2.0);
  Rng rng(71);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 1u);
}

TEST(ZipfSampler, RejectsInvalidParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 0.0), std::invalid_argument);
}

TEST(Fnv1a, StableAndDistinct) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_EQ(fnv1a64("telescope"), fnv1a64("telescope"));
}

// Property sweep: bounded sampling is unbiased for several bounds.
class NextBelowSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NextBelowSweep, MeanIsHalfBound) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound * 2654435761u + 1);
  double sum = 0.0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) sum += double(rng.next_below(bound));
  const double expected = (double(bound) - 1.0) / 2.0;
  EXPECT_NEAR(sum / kDraws, expected, double(bound) * 0.02 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Bounds, NextBelowSweep,
                         ::testing::Values(2, 3, 10, 100, 12345, 1 << 20));

}  // namespace
}  // namespace dosm
