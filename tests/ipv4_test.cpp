// IPv4 address and prefix tests.
#include <gtest/gtest.h>

#include <unordered_set>

#include "net/ipv4.h"

namespace dosm::net {
namespace {

TEST(Ipv4Addr, ConstructionAndOctets) {
  const Ipv4Addr a(192, 168, 1, 42);
  EXPECT_EQ(a.value(), 0xc0a8012au);
  EXPECT_EQ(a.first_octet(), 192);
  EXPECT_EQ(a.to_string(), "192.168.1.42");
}

TEST(Ipv4Addr, ParseValid) {
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0"), Ipv4Addr(0));
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255"), Ipv4Addr(0xffffffffu));
  EXPECT_EQ(Ipv4Addr::parse("10.0.0.1"), Ipv4Addr(10, 0, 0, 1));
}

TEST(Ipv4Addr, ParseInvalid) {
  EXPECT_THROW(Ipv4Addr::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("256.1.1.1"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("a.b.c.d"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("1..2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse(""), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("1.2.3.1000"), std::invalid_argument);
}

TEST(Ipv4Addr, NetworkRollups) {
  const Ipv4Addr a(203, 0, 113, 77);
  EXPECT_EQ(a.slash24(), Ipv4Addr(203, 0, 113, 0));
  EXPECT_EQ(a.slash16(), Ipv4Addr(203, 0, 0, 0));
  EXPECT_EQ(a.slash8(), Ipv4Addr(203, 0, 0, 0));
}

TEST(Ipv4Addr, OrderingAndHash) {
  EXPECT_LT(Ipv4Addr(1, 0, 0, 0), Ipv4Addr(2, 0, 0, 0));
  std::unordered_set<Ipv4Addr> set;
  set.insert(Ipv4Addr(10, 0, 0, 1));
  set.insert(Ipv4Addr(10, 0, 0, 1));
  set.insert(Ipv4Addr(10, 0, 0, 2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Prefix, NormalizesNetworkAddress) {
  const Prefix p(Ipv4Addr(10, 1, 2, 3), 16);
  EXPECT_EQ(p.network(), Ipv4Addr(10, 1, 0, 0));
  EXPECT_EQ(p.length(), 16);
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(Prefix, Contains) {
  const Prefix p = Prefix::parse("192.168.0.0/16");
  EXPECT_TRUE(p.contains(Ipv4Addr(192, 168, 255, 255)));
  EXPECT_FALSE(p.contains(Ipv4Addr(192, 169, 0, 0)));
  const Prefix all = Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(all.contains(Ipv4Addr(1, 2, 3, 4)));
  const Prefix host = Prefix::parse("10.0.0.1/32");
  EXPECT_TRUE(host.contains(Ipv4Addr(10, 0, 0, 1)));
  EXPECT_FALSE(host.contains(Ipv4Addr(10, 0, 0, 2)));
}

TEST(Prefix, NumAddressesAndIndexing) {
  const Prefix p = Prefix::parse("10.0.0.0/24");
  EXPECT_EQ(p.num_addresses(), 256u);
  EXPECT_EQ(p.address_at(0), Ipv4Addr(10, 0, 0, 0));
  EXPECT_EQ(p.address_at(255), Ipv4Addr(10, 0, 0, 255));
  EXPECT_THROW(p.address_at(256), std::out_of_range);
  EXPECT_EQ(Prefix::parse("0.0.0.0/0").num_addresses(), 1ull << 32);
}

TEST(Prefix, ParseInvalid) {
  EXPECT_THROW(Prefix::parse("10.0.0.0"), std::invalid_argument);
  EXPECT_THROW(Prefix::parse("10.0.0.0/33"), std::invalid_argument);
  EXPECT_THROW(Prefix::parse("10.0.0.0/x"), std::invalid_argument);
  EXPECT_THROW(Prefix(Ipv4Addr(1, 2, 3, 4), 40), std::invalid_argument);
}

// Property: every address inside a prefix round-trips through contains().
class PrefixSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrefixSweep, AddressAtIsContained) {
  const int len = GetParam();
  const Prefix p(Ipv4Addr(172, 16, 37, 200), len);
  const auto step = std::max<std::uint64_t>(1, p.num_addresses() / 64);
  for (std::uint64_t i = 0; i < p.num_addresses(); i += step) {
    EXPECT_TRUE(p.contains(p.address_at(i)));
  }
  if (len > 0) {
    // The address just past the prefix is not contained.
    const Ipv4Addr beyond(p.network().value() +
                          static_cast<std::uint32_t>(p.num_addresses()));
    EXPECT_FALSE(p.contains(beyond));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PrefixSweep,
                         ::testing::Values(8, 12, 16, 20, 24, 28, 32));

}  // namespace
}  // namespace dosm::net
