// Seed-stability regression test: the determinism invariant (DESIGN.md §6,
// enforced statically by dosmeter_lint) says identical seeds must yield
// bit-identical results. This guards it dynamically: the quickstart-sized
// scenario is built twice with the same seed and the binary event dumps must
// match byte for byte.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/serialize.h"
#include "sim/scenario.h"

namespace dosm {
namespace {

std::string event_dump_for_seed(std::uint64_t seed) {
  sim::ScenarioConfig config = sim::ScenarioConfig::small();
  config.seed = seed;
  const auto world = sim::build_world(config);
  std::ostringstream out(std::ios::binary);
  core::write_events(out, world->store.events());
  return out.str();
}

TEST(Determinism, SameSeedYieldsByteIdenticalEventDumps) {
  const std::string first = event_dump_for_seed(42);
  const std::string second = event_dump_for_seed(42);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "identical seeds must reproduce bit-identical "
                              "event dumps; some pipeline stage is pulling in "
                              "nondeterministic state";
}

TEST(Determinism, DifferentSeedsYieldDifferentEventDumps) {
  // Sanity check that the comparison above has discriminating power.
  EXPECT_NE(event_dump_for_seed(42), event_dump_for_seed(43));
}

TEST(Determinism, DumpIsStableAcrossRepeatedRunsInProcess) {
  const std::string reference = event_dump_for_seed(7);
  for (int run = 0; run < 3; ++run) {
    EXPECT_EQ(event_dump_for_seed(7), reference) << "run " << run;
  }
}

}  // namespace
}  // namespace dosm
