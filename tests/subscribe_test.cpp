// The subscription layer, bottom to top: predicate semantics and canonical
// text, the posting-index vs scan-all-oracle property suite (exact match
// sets AND delivery order, under churn), and the Dispatcher contracts —
// coalescing, drop policy, cursor determinism, long-poll wake.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/alert.h"
#include "subscribe/dispatcher.h"
#include "subscribe/index.h"
#include "subscribe/oracle.h"
#include "subscribe/subscription.h"

namespace dosm::subscribe {
namespace {

core::AttackEvent event_on(std::string_view target, double start = 1000.0,
                           std::uint8_t proto = 6) {
  core::AttackEvent event;
  event.target = net::Ipv4Addr::parse(target);
  event.start = start;
  event.end = start + 60.0;
  event.intensity = 50.0;
  event.ip_proto = proto;
  event.top_port = 80;
  return event;
}

core::Alert alert_on(std::string_view target, std::uint8_t proto = 6,
                     meta::Asn asn = meta::kUnknownAsn,
                     meta::CountryCode country = {}) {
  return core::event_alert(event_on(target, 1000.0, proto), /*day=*/3, asn,
                           country);
}

// ---------------------------------------------------------------------------
// Predicate semantics.
// ---------------------------------------------------------------------------

TEST(PredicateTest, ConjunctionOverEventAttributes) {
  const core::Alert alert =
      alert_on("10.1.2.3", 17, meta::Asn{65001}, meta::CountryCode("DE"));

  EXPECT_TRUE(Predicate{}.matches(alert));  // firehose
  EXPECT_TRUE(
      Predicate{}.match_prefix(net::Prefix::parse("10.1.2.3/32")).matches(alert));
  EXPECT_TRUE(
      Predicate{}.match_prefix(net::Prefix::parse("10.1.2.0/24")).matches(alert));
  EXPECT_FALSE(
      Predicate{}.match_prefix(net::Prefix::parse("10.9.0.0/16")).matches(alert));
  EXPECT_TRUE(Predicate{}.match_asn(meta::Asn{65001}).matches(alert));
  EXPECT_FALSE(Predicate{}.match_asn(meta::Asn{65002}).matches(alert));
  EXPECT_TRUE(
      Predicate{}.match_country(meta::CountryCode("DE")).matches(alert));
  EXPECT_FALSE(
      Predicate{}.match_country(meta::CountryCode("US")).matches(alert));
  EXPECT_TRUE(Predicate{}.match_proto(17).matches(alert));
  EXPECT_FALSE(Predicate{}.match_proto(6).matches(alert));
  EXPECT_TRUE(
      Predicate{}.match_kind(core::AlertKind::kNewAttack).matches(alert));
  EXPECT_FALSE(
      Predicate{}.match_kind(core::AlertKind::kAttackSpike).matches(alert));

  // The conjunction: one failing field rules the alert out.
  EXPECT_FALSE(Predicate{}
                   .match_asn(meta::Asn{65001})
                   .match_proto(6)
                   .matches(alert));
}

TEST(PredicateTest, VictimFieldsNeverMatchVictimlessSpikes) {
  const core::Alert spike =
      core::spike_alert(core::AlertKind::kAttackSpike, /*day=*/5, 100.0, 40.0);
  EXPECT_TRUE(Predicate{}.matches(spike));
  EXPECT_TRUE(
      Predicate{}.match_kind(core::AlertKind::kAttackSpike).matches(spike));
  EXPECT_FALSE(
      Predicate{}.match_kind(core::AlertKind::kTargetSpike).matches(spike));
  EXPECT_FALSE(
      Predicate{}.match_prefix(net::Prefix::parse("0.0.0.0/0")).matches(spike));
  EXPECT_FALSE(Predicate{}.match_asn(meta::Asn{1}).matches(spike));
  EXPECT_FALSE(Predicate{}.match_proto(6).matches(spike));
}

TEST(PredicateTest, CanonicalTextIsOrderedAndComplete) {
  EXPECT_EQ(Predicate{}.to_string(), "*");
  EXPECT_EQ(Predicate{}.match_asn(meta::Asn{65001}).to_string(), "asn=65001");
  const Predicate full = Predicate{}
                             .match_prefix(net::Prefix::parse("10.0.0.0/24"))
                             .match_asn(meta::Asn{65001})
                             .match_country(meta::CountryCode("US"))
                             .match_proto(17)
                             .match_kind(core::AlertKind::kTargetSpike);
  EXPECT_EQ(full.to_string(),
            "pfx=10.0.0.0/24;asn=65001;cc=US;proto=17;kind=target-spike");
}

TEST(PredicateTest, ValidateRejectsUnsetCountry) {
  EXPECT_THROW(validate(Predicate{}.match_country(meta::CountryCode{})),
               std::invalid_argument);
  validate(Predicate{}.match_country(meta::CountryCode("US")));  // fine
}

// ---------------------------------------------------------------------------
// Index vs oracle property suite.
// ---------------------------------------------------------------------------

TEST(SubscriptionIndexTest, InsertionMustBeMonotone) {
  SubscriptionIndex index;
  index.insert(1, Predicate{});
  index.insert(5, Predicate{});
  EXPECT_THROW(index.insert(5, Predicate{}), std::invalid_argument);
  EXPECT_THROW(index.insert(3, Predicate{}), std::invalid_argument);
}

TEST(SubscriptionIndexTest, ShortPrefixesAndFirehoseLandOnTheScanList) {
  SubscriptionIndex index;
  index.insert(1, Predicate{});  // firehose
  index.insert(2, Predicate{}.match_prefix(net::Prefix::parse("10.0.0.0/8")));
  index.insert(3, Predicate{}.match_prefix(net::Prefix::parse("10.0.0.0/24")));
  index.insert(4, Predicate{}.match_prefix(net::Prefix::parse("10.0.0.1/32")));
  EXPECT_EQ(index.scan_list_size(), 2u);
  EXPECT_EQ(index.size(), 4u);
}

/// Pools deliberately small so predicates and alerts collide often — the
/// interesting cases are shared /24s, shared ASNs, shared kinds.
const char* kAddrPool[] = {"10.0.0.1",   "10.0.0.2",  "10.0.1.1",
                           "10.0.1.9",   "10.7.0.1",  "172.16.0.4",
                           "192.0.2.55", "192.0.2.56"};
const char* kPrefixPool[] = {"10.0.0.0/8",    "10.0.0.0/16",  "10.0.0.0/24",
                             "10.0.1.0/24",   "10.0.0.1/32",  "10.0.1.1/32",
                             "192.0.2.0/24",  "192.0.2.55/32"};

Predicate random_predicate(Rng& rng) {
  Predicate p;
  if (rng.bernoulli(0.5))
    p.match_prefix(net::Prefix::parse(kPrefixPool[rng.next_below(8)]));
  if (rng.bernoulli(0.25))
    p.match_asn(meta::Asn{static_cast<meta::Asn>(65001 + rng.next_below(3))});
  if (rng.bernoulli(0.2))
    p.match_country(meta::CountryCode(rng.bernoulli(0.5) ? "US" : "DE"));
  if (rng.bernoulli(0.2)) p.match_proto(rng.bernoulli(0.5) ? 6 : 17);
  if (rng.bernoulli(0.3))
    p.match_kind(static_cast<core::AlertKind>(rng.next_below(3)));
  return p;
}

core::Alert random_alert(Rng& rng) {
  if (rng.bernoulli(0.2)) {
    const auto kind = rng.bernoulli(0.5) ? core::AlertKind::kAttackSpike
                                         : core::AlertKind::kTargetSpike;
    return core::spike_alert(kind, static_cast<int>(rng.next_below(30)),
                             rng.uniform(10.0, 500.0), 25.0);
  }
  const meta::Asn asn =
      rng.bernoulli(0.3) ? meta::kUnknownAsn
                         : static_cast<meta::Asn>(65001 + rng.next_below(3));
  const meta::CountryCode country =
      rng.bernoulli(0.3) ? meta::CountryCode{}
                         : meta::CountryCode(rng.bernoulli(0.5) ? "US" : "DE");
  return core::event_alert(
      event_on(kAddrPool[rng.next_below(8)], rng.uniform(0.0, 1e6),
               rng.bernoulli(0.5) ? 6 : 17),
      static_cast<int>(rng.next_below(30)), asn, country);
}

TEST(SubscriptionIndexTest, MatchesExactlyTheScanOracleUnderChurn) {
  Rng rng(0x5eedu);
  SubscriptionIndex index;
  ScanOracle oracle;
  std::vector<Predicate> predicates;  // id - 1 -> predicate
  const auto lookup = [&predicates](SubscriptionId id) -> const Predicate& {
    return predicates[id - 1];
  };

  constexpr std::size_t kSubs = 400;
  for (SubscriptionId id = 1; id <= kSubs; ++id) {
    const Predicate p = random_predicate(rng);
    predicates.push_back(p);
    index.insert(id, p);
    oracle.insert(id, p);
  }

  std::vector<SubscriptionId> via_index;
  std::vector<SubscriptionId> via_oracle;
  const auto check = [&](const core::Alert& alert, const char* phase) {
    via_index.clear();
    via_oracle.clear();
    index.match(alert, lookup, via_index);
    oracle.match(alert, via_oracle);
    ASSERT_EQ(via_index, via_oracle) << phase;
  };

  constexpr int kAlerts = 600;
  for (int i = 0; i < kAlerts; ++i) check(random_alert(rng), "full");

  // Churn: every third subscription leaves; the survivors must keep
  // matching identically.
  for (SubscriptionId id = 3; id <= kSubs; id += 3) {
    EXPECT_TRUE(index.erase(id, predicates[id - 1]));
    oracle.erase(id);
  }
  EXPECT_FALSE(index.erase(3, predicates[2]));  // already gone
  for (int i = 0; i < kAlerts; ++i) check(random_alert(rng), "after-churn");

  // Late arrivals keep ids monotone and matchable.
  for (SubscriptionId id = kSubs + 1; id <= kSubs + 50; ++id) {
    const Predicate p = random_predicate(rng);
    predicates.push_back(p);
    index.insert(id, p);
    oracle.insert(id, p);
  }
  for (int i = 0; i < kAlerts; ++i) check(random_alert(rng), "after-growth");
}

// ---------------------------------------------------------------------------
// Dispatcher contracts.
// ---------------------------------------------------------------------------

TEST(DispatcherTest, DeliversInDispatchOrderMatchingTheOracle) {
  Rng rng(0xd15cu);
  Dispatcher dispatcher;
  ScanOracle oracle;
  std::vector<Predicate> predicates;
  constexpr std::size_t kSubs = 50;
  for (SubscriptionId want = 1; want <= kSubs; ++want) {
    const Predicate p = random_predicate(rng);
    const SubscriptionId id = dispatcher.subscribe(p);
    ASSERT_EQ(id, want);  // monotone assignment
    predicates.push_back(p);
    oracle.insert(id, p);
  }

  // Distinct victims (and distinct spike days) per alert → no coalescing,
  // so per-subscription delivery must replay the oracle-filtered alert
  // sequence exactly.
  std::vector<core::Alert> history;
  for (int i = 0; i < 200; ++i) {
    core::Alert alert = random_alert(rng);
    if (alert.has_event)
      alert.event.target = net::Ipv4Addr{static_cast<std::uint32_t>(
          0x0a000000u + static_cast<std::uint32_t>(i))};
    else
      alert.day = i;  // unique coalescing bucket per spike
    history.push_back(alert);
    dispatcher.on_alert(alert);
  }
  dispatcher.tick();

  std::vector<SubscriptionId> matched;
  for (SubscriptionId id = 1; id <= kSubs; ++id) {
    std::vector<const core::Alert*> expected;
    for (const core::Alert& alert : history)
      if (predicates[id - 1].matches(alert)) expected.push_back(&alert);
    const auto result = dispatcher.fetch(id, 0, 0);
    ASSERT_TRUE(result.has_value());
    ASSERT_EQ(result->notifications.size(), expected.size()) << "sub " << id;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      const Notification& n = result->notifications[i];
      EXPECT_EQ(n.seq, i + 1) << "sub " << id;
      EXPECT_EQ(n.alert.kind, expected[i]->kind);
      EXPECT_EQ(n.alert.has_event, expected[i]->has_event);
      if (n.alert.has_event) {
        EXPECT_EQ(n.alert.event.target.value(),
                  expected[i]->event.target.value());
      }
    }
  }
}

TEST(DispatcherTest, CoalescesSameVictimWithinATick) {
  Dispatcher dispatcher;
  const SubscriptionId id = dispatcher.subscribe(Predicate{});
  dispatcher.ingest(event_on("10.1.1.1", 100.0));
  dispatcher.ingest(event_on("10.1.1.1", 160.0));  // folds
  dispatcher.ingest(event_on("10.2.2.2", 170.0));
  dispatcher.tick();
  // A new tick opens a new bucket for the same victim.
  dispatcher.ingest(event_on("10.1.1.1", 400.0));
  dispatcher.tick();

  const auto result = dispatcher.fetch(id, 0, 0);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->notifications.size(), 3u);
  EXPECT_EQ(result->notifications[0].seq, 1u);
  EXPECT_EQ(result->notifications[0].coalesced, 1u);
  EXPECT_EQ(result->notifications[0].alert.event.target.to_string(),
            "10.1.1.1");
  EXPECT_EQ(result->notifications[1].coalesced, 0u);
  EXPECT_EQ(result->notifications[2].seq, 3u);
  EXPECT_EQ(result->notifications[2].coalesced, 0u);
}

TEST(DispatcherTest, DropOldestAtTheQueueBound) {
  DispatcherConfig config;
  config.max_pending = 2;
  Dispatcher dispatcher(config);
  const SubscriptionId id = dispatcher.subscribe(Predicate{});
  for (int i = 0; i < 5; ++i) {
    dispatcher.ingest(
        event_on("10.0.0." + std::to_string(i + 1), 100.0 * (i + 1)));
    dispatcher.tick();
  }
  const auto result = dispatcher.fetch(id, 0, 0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->dropped, 3u);
  ASSERT_EQ(result->notifications.size(), 2u);
  // The survivors are the NEWEST two — seqs expose the gap.
  EXPECT_EQ(result->notifications[0].seq, 4u);
  EXPECT_EQ(result->notifications[1].seq, 5u);
}

TEST(DispatcherTest, CursorFetchIsDeterministicAndPaged) {
  Dispatcher dispatcher;
  const SubscriptionId id = dispatcher.subscribe(Predicate{});
  for (int i = 0; i < 3; ++i)
    dispatcher.ingest(event_on("10.0.0." + std::to_string(i + 1), 100.0));
  dispatcher.tick();

  const auto page = dispatcher.fetch(id, 0, 2);
  ASSERT_TRUE(page.has_value());
  ASSERT_EQ(page->notifications.size(), 2u);
  EXPECT_EQ(page->next_cursor, 2u);
  EXPECT_EQ(page->pending, 1u);

  const auto rest = dispatcher.fetch(id, page->next_cursor, 0);
  ASSERT_TRUE(rest.has_value());
  ASSERT_EQ(rest->notifications.size(), 1u);
  EXPECT_EQ(rest->notifications[0].seq, 3u);
  EXPECT_EQ(rest->pending, 0u);

  // Replaying any cursor returns identical deliveries.
  const auto replay_a = dispatcher.fetch(id, 0, 2);
  const auto replay_b = dispatcher.fetch(id, 0, 2);
  ASSERT_TRUE(replay_a.has_value() && replay_b.has_value());
  ASSERT_EQ(replay_a->notifications.size(), replay_b->notifications.size());
  for (std::size_t i = 0; i < replay_a->notifications.size(); ++i)
    EXPECT_EQ(replay_a->notifications[i].seq, replay_b->notifications[i].seq);

  const auto drained = dispatcher.fetch(id, 3, 0);
  ASSERT_TRUE(drained.has_value());
  EXPECT_TRUE(drained->notifications.empty());
  EXPECT_EQ(drained->next_cursor, 3u);
}

TEST(DispatcherTest, LongPollWakesOnTickAndOnUnsubscribe) {
  Dispatcher dispatcher;
  const SubscriptionId id = dispatcher.subscribe(Predicate{});

  std::optional<FetchResult> polled;
  std::thread poller([&] { polled = dispatcher.fetch(id, 0, 0, 10000); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  dispatcher.ingest(event_on("10.5.5.5", 100.0));
  dispatcher.tick();
  poller.join();
  ASSERT_TRUE(polled.has_value());
  ASSERT_EQ(polled->notifications.size(), 1u);

  // A long-poller on an id that is unsubscribed mid-wait must observe the
  // removal, not block out the full window.
  const SubscriptionId doomed = dispatcher.subscribe(Predicate{});
  std::optional<FetchResult> after_removal = FetchResult{};
  std::thread waiter(
      [&] { after_removal = dispatcher.fetch(doomed, 0, 0, 10000); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  dispatcher.unsubscribe(doomed);
  waiter.join();
  EXPECT_FALSE(after_removal.has_value());
}

TEST(DispatcherTest, LifecycleEdges) {
  DispatcherConfig zero;
  zero.max_pending = 0;
  EXPECT_THROW(Dispatcher{zero}, std::invalid_argument);

  Dispatcher dispatcher;
  EXPECT_THROW(
      dispatcher.subscribe(Predicate{}.match_country(meta::CountryCode{})),
      std::invalid_argument);
  EXPECT_FALSE(dispatcher.fetch(1, 0, 0).has_value());
  EXPECT_FALSE(dispatcher.unsubscribe(1));

  const SubscriptionId id = dispatcher.subscribe(Predicate{});
  EXPECT_EQ(dispatcher.active_subscriptions(), 1u);
  EXPECT_TRUE(dispatcher.unsubscribe(id));
  EXPECT_FALSE(dispatcher.unsubscribe(id));
  EXPECT_EQ(dispatcher.active_subscriptions(), 0u);
  EXPECT_FALSE(dispatcher.fetch(id, 0, 0).has_value());
  // Ids are never reused after an unsubscribe.
  EXPECT_GT(dispatcher.subscribe(Predicate{}), id);
}

}  // namespace
}  // namespace dosm::subscribe
