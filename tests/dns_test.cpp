// DNS substrate tests: name interning, domain validation, snapshot store
// timelines and the reverse hosting index.
#include <gtest/gtest.h>

#include "dns/names.h"
#include "dns/snapshot.h"

namespace dosm::dns {
namespace {

using net::Ipv4Addr;

TEST(NameTable, InternsAndNormalizes) {
  NameTable names;
  const auto a = names.intern("WWW.Example.COM");
  const auto b = names.intern("www.example.com");
  EXPECT_EQ(a, b);
  EXPECT_EQ(names.name(a), "www.example.com");
  EXPECT_EQ(names.size(), 1u);
  EXPECT_NE(a, kNoName);
}

TEST(NameTable, FindWithoutInterning) {
  NameTable names;
  EXPECT_EQ(names.find("missing.com"), kNoName);
  const auto id = names.intern("present.com");
  EXPECT_EQ(names.find("PRESENT.com"), id);
}

TEST(NameTable, RejectsUnknownIds) {
  NameTable names;
  EXPECT_THROW(names.name(kNoName), std::out_of_range);
  EXPECT_THROW(names.name(42), std::out_of_range);
}

TEST(Names, TldExtraction) {
  EXPECT_EQ(tld_of("example.com"), "com");
  EXPECT_EQ(tld_of("a.b.org"), "org");
  EXPECT_EQ(tld_of("nodot"), "");
}

TEST(Names, DomainSuffixMatching) {
  EXPECT_TRUE(in_domain_suffix("cdn.cloudflare.net", "cloudflare.net"));
  EXPECT_TRUE(in_domain_suffix("cloudflare.net", "cloudflare.net"));
  EXPECT_FALSE(in_domain_suffix("evilcloudflare.net", "cloudflare.net"));
  EXPECT_FALSE(in_domain_suffix("cloudflare.net.evil.com", "cloudflare.net"));
  EXPECT_TRUE(in_domain_suffix("A.B.INCAPDNS.NET", "incapdns.net"));
  EXPECT_FALSE(in_domain_suffix("x.com", ""));
}

TEST(Names, DomainValidation) {
  EXPECT_TRUE(is_valid_domain("example.com"));
  EXPECT_TRUE(is_valid_domain("a-b.c-d.org"));
  EXPECT_TRUE(is_valid_domain("site123.net"));
  EXPECT_FALSE(is_valid_domain(""));
  EXPECT_FALSE(is_valid_domain(".com"));
  EXPECT_FALSE(is_valid_domain("a..b"));
  EXPECT_FALSE(is_valid_domain("-bad.com"));
  EXPECT_FALSE(is_valid_domain("bad-.com"));
  EXPECT_FALSE(is_valid_domain("has space.com"));
  EXPECT_FALSE(is_valid_domain(std::string(254, 'a')));
}

class SnapshotStoreTest : public ::testing::Test {
 protected:
  SnapshotStore store_{100};
};

TEST_F(SnapshotStoreTest, AddAndFindDomains) {
  const auto id = store_.add_domain("Example.COM", 0);
  EXPECT_EQ(store_.find("example.com"), id);
  EXPECT_EQ(store_.find("missing.com"), 0u);
  EXPECT_EQ(store_.num_domains(), 1u);
  EXPECT_THROW(store_.add_domain("example.com", 5), std::invalid_argument);
  EXPECT_THROW(store_.add_domain("late.com", 100), std::invalid_argument);
}

TEST_F(SnapshotStoreTest, RecordTimelineLookup) {
  const auto id = store_.add_domain("example.com", 10);
  WebsiteRecord v1;
  v1.www_a = Ipv4Addr(1, 1, 1, 1);
  store_.record_change(id, 10, v1);
  WebsiteRecord v2;
  v2.www_a = Ipv4Addr(2, 2, 2, 2);
  store_.record_change(id, 50, v2);

  EXPECT_FALSE(store_.record_on(id, 9).has_value());  // not registered yet
  EXPECT_EQ(store_.record_on(id, 10)->www_a, v1.www_a);
  EXPECT_EQ(store_.record_on(id, 49)->www_a, v1.www_a);
  EXPECT_EQ(store_.record_on(id, 50)->www_a, v2.www_a);
  EXPECT_EQ(store_.record_on(id, 99)->www_a, v2.www_a);
}

TEST_F(SnapshotStoreTest, RecordChangeValidation) {
  const auto id = store_.add_domain("example.com", 10);
  WebsiteRecord rec;
  rec.www_a = Ipv4Addr(1, 1, 1, 1);
  EXPECT_THROW(store_.record_change(id, 9, rec), std::invalid_argument);
  EXPECT_THROW(store_.record_change(id, 100, rec), std::invalid_argument);
  store_.record_change(id, 20, rec);
  EXPECT_THROW(store_.record_change(id, 15, rec), std::invalid_argument);
}

TEST_F(SnapshotStoreTest, CoalescesIdenticalAndSameDayChanges) {
  const auto id = store_.add_domain("example.com", 0);
  WebsiteRecord rec;
  rec.www_a = Ipv4Addr(1, 1, 1, 1);
  store_.record_change(id, 0, rec);
  store_.record_change(id, 10, rec);  // identical: coalesced
  EXPECT_EQ(store_.entry(id).changes.size(), 1u);
  WebsiteRecord other;
  other.www_a = Ipv4Addr(2, 2, 2, 2);
  store_.record_change(id, 10, other);  // same-day overwrite
  EXPECT_EQ(store_.entry(id).changes.size(), 2u);
  EXPECT_EQ(store_.record_on(id, 10)->www_a, other.www_a);
}

TEST_F(SnapshotStoreTest, LastSeenBoundsVisibility) {
  const auto id = store_.add_domain("gone.com", 0);
  WebsiteRecord rec;
  rec.www_a = Ipv4Addr(1, 1, 1, 1);
  store_.record_change(id, 0, rec);
  store_.set_last_seen(id, 30);
  EXPECT_TRUE(store_.record_on(id, 30).has_value());
  EXPECT_FALSE(store_.record_on(id, 31).has_value());
}

TEST_F(SnapshotStoreTest, EmptyRecordBeforeFirstChange) {
  const auto id = store_.add_domain("bare.com", 0);
  // Registered but no records yet: present with an empty record.
  const auto rec = store_.record_on(id, 5);
  ASSERT_TRUE(rec.has_value());
  EXPECT_FALSE(rec->has_website());
}

TEST_F(SnapshotStoreTest, ReverseIndexFindsSitesByIpAndDay) {
  const auto a = store_.add_domain("a.com", 0);
  const auto b = store_.add_domain("b.com", 0);
  const Ipv4Addr shared(10, 0, 0, 1);
  WebsiteRecord rec;
  rec.www_a = shared;
  store_.record_change(a, 0, rec);
  store_.record_change(b, 20, rec);
  // a moves away on day 50.
  WebsiteRecord moved;
  moved.www_a = Ipv4Addr(10, 0, 0, 2);
  store_.record_change(a, 50, moved);
  store_.build_reverse_index();

  EXPECT_EQ(store_.sites_on(shared, 0).size(), 1u);
  EXPECT_EQ(store_.sites_on(shared, 20).size(), 2u);
  EXPECT_EQ(store_.sites_on(shared, 49).size(), 2u);
  EXPECT_EQ(store_.sites_on(shared, 50).size(), 1u);  // only b remains
  EXPECT_EQ(store_.count_sites_on(shared, 20), 2u);
  EXPECT_EQ(store_.count_sites_on(Ipv4Addr(9, 9, 9, 9), 20), 0u);
  EXPECT_EQ(store_.sites_on(Ipv4Addr(10, 0, 0, 2), 60).size(), 1u);

  const auto ips = store_.hosting_ips();
  EXPECT_EQ(ips.size(), 2u);
}

TEST_F(SnapshotStoreTest, ReverseIndexRequiresBuild) {
  store_.add_domain("a.com", 0);
  EXPECT_THROW(store_.sites_on(Ipv4Addr(1, 1, 1, 1), 0), std::logic_error);
  EXPECT_THROW(store_.hosting_ips(), std::logic_error);
}

TEST_F(SnapshotStoreTest, WwwLessDomainsAreNotWebsites) {
  const auto id = store_.add_domain("mail-only.com", 0);
  WebsiteRecord rec;  // no www A record
  rec.mx_a = Ipv4Addr(10, 0, 0, 9);
  store_.record_change(id, 0, rec);
  store_.build_reverse_index();
  EXPECT_TRUE(store_.sites_on(Ipv4Addr(10, 0, 0, 9), 10).empty());
}

TEST_F(SnapshotStoreTest, ObservationCountScalesWithLifetime) {
  const auto a = store_.add_domain("a.com", 0);    // 100 days
  store_.add_domain("b.com", 50);                  // 50 days
  store_.set_last_seen(a, 99);
  EXPECT_EQ(store_.num_observations(1), 150u);
  EXPECT_EQ(store_.num_observations(6), 900u);
}

TEST_F(SnapshotStoreTest, IntervalsForExposesRanges) {
  const auto id = store_.add_domain("a.com", 0);
  WebsiteRecord rec;
  rec.www_a = Ipv4Addr(10, 0, 0, 1);
  store_.record_change(id, 5, rec);
  store_.build_reverse_index();
  const auto intervals = store_.intervals_for(Ipv4Addr(10, 0, 0, 1));
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].from_day, 5);
  EXPECT_EQ(intervals[0].to_day, 99);
  EXPECT_TRUE(store_.intervals_for(Ipv4Addr(8, 8, 8, 8)).empty());
}

}  // namespace
}  // namespace dosm::dns
