// Seeded corruption property test for the event-dump wire format.
//
// The property: for ANY single-byte flip or truncation of a valid dump, a
// read either yields a well-formed event vector (every enum tag in range) or
// throws exactly core::SerializeError — it never crashes, never throws
// anything else, and never over-allocates off a hostile header. Runs under
// ASan in CI, so an out-of-bounds read or a giant reserve fails the job.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/serialize.h"

namespace dosm::core {
namespace {

std::string valid_dump(int num_events) {
  std::vector<AttackEvent> events;
  events.reserve(static_cast<std::size_t>(num_events));
  for (int i = 0; i < num_events; ++i) {
    AttackEvent event;
    event.source = i % 2 ? EventSource::kHoneypot : EventSource::kTelescope;
    event.target = net::Ipv4Addr(0xc0a80000u + static_cast<std::uint32_t>(i));
    event.start = 1.45e9 + i * 600.0;
    event.end = event.start + 120.0 + i;
    event.intensity = 0.5 * i;
    event.packets = 500u + static_cast<std::uint64_t>(i);
    event.ip_proto = i % 3 ? 6 : 17;
    event.num_ports = static_cast<std::uint16_t>(1 + i % 4);
    event.top_port = static_cast<std::uint16_t>(1024 + i);
    event.unique_sources = static_cast<std::uint32_t>(3 * i + 1);
    event.reflection = static_cast<amppot::ReflectionProtocol>(i % 9);
    event.honeypots = static_cast<std::uint32_t>(1 + i % 8);
    events.push_back(event);
  }
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_events(stream, events);
  return stream.str();
}

/// The property under test: parse must return cleanly or throw exactly
/// SerializeError; anything else (other exception types — a plain
/// std::runtime_error included — crashes, sanitizer reports) fails.
void expect_parses_or_rejects(const std::string& data) {
  std::istringstream in(data, std::ios::binary);
  try {
    const auto events = read_events(in);
    for (const auto& event : events) {
      ASSERT_LE(static_cast<int>(event.source), 1);
      ASSERT_LE(static_cast<int>(event.reflection),
                static_cast<int>(amppot::ReflectionProtocol::kOther));
    }
  } catch (const SerializeError&) {
    // Rejection is the other acceptable outcome.
  }
}

TEST(SerializeFuzz, SingleByteFlipsNeverCrashOrOverAllocate) {
  const std::string dump = valid_dump(40);
  Rng rng(20260806);
  for (int iter = 0; iter < 1500; ++iter) {
    std::string corrupt = dump;
    const auto pos = static_cast<std::size_t>(rng.next_below(corrupt.size()));
    const auto flip = static_cast<char>(rng.next_below(256));
    corrupt[pos] = flip;
    expect_parses_or_rejects(corrupt);
  }
}

TEST(SerializeFuzz, TruncationsNeverCrash) {
  const std::string dump = valid_dump(40);
  Rng rng(987654321);
  for (int iter = 0; iter < 500; ++iter) {
    const auto cut = static_cast<std::size_t>(rng.next_below(dump.size()));
    expect_parses_or_rejects(dump.substr(0, cut));
  }
  // Every boundary-adjacent length around the header and first record.
  for (std::size_t cut = 0; cut < 70 && cut < dump.size(); ++cut)
    expect_parses_or_rejects(dump.substr(0, cut));
}

TEST(SerializeFuzz, FlipPlusTruncationCombined) {
  const std::string dump = valid_dump(25);
  Rng rng(0xfeedbeef);
  for (int iter = 0; iter < 500; ++iter) {
    std::string corrupt =
        dump.substr(0, 1 + rng.next_below(dump.size() - 1));
    const auto pos = static_cast<std::size_t>(rng.next_below(corrupt.size()));
    corrupt[pos] = static_cast<char>(rng.next_below(256));
    expect_parses_or_rejects(corrupt);
  }
}

TEST(SerializeFuzz, UncorruptedDumpStillRoundTrips) {
  // Sanity anchor for the property: the pristine dump parses fully.
  const std::string dump = valid_dump(40);
  std::istringstream in(dump, std::ios::binary);
  EXPECT_EQ(read_events(in).size(), 40u);
}

}  // namespace
}  // namespace dosm::core
