// Parallel execution layer: shard/merge/work-queue unit tests, plus the
// byte-identity property the whole subsystem is built around — the sharded
// detectors' output equals the sequential detectors' output, field for
// field, for every thread and shard count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "parallel/detect.h"
#include "parallel/merge.h"
#include "parallel/shard.h"
#include "parallel/work_queue.h"
#include "parallel/workload.h"
#include "query/event_frame.h"

namespace dosm::parallel {
namespace {

using net::Ipv4Addr;

// --- shard.h ------------------------------------------------------------

TEST(Shard, SingleShardTakesEverything) {
  EXPECT_EQ(shard_of(Ipv4Addr(0, 0, 0, 0), 1), 0u);
  EXPECT_EQ(shard_of(Ipv4Addr(255, 255, 255, 255), 1), 0u);
}

TEST(Shard, StableAndInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Ipv4Addr victim(static_cast<std::uint32_t>(rng.next_u64()));
    for (std::size_t n : {2u, 3u, 8u, 13u}) {
      const std::size_t s = shard_of(victim, n);
      EXPECT_LT(s, n);
      EXPECT_EQ(s, shard_of(victim, n));  // pure function of (victim, n)
    }
  }
}

TEST(Shard, Mix32SpreadsSequentialAddresses) {
  // Victims handed out sequentially (common in synthetic workloads) must
  // not collapse onto a few shards; mix32 avalanches the low bits.
  constexpr std::size_t kShards = 8;
  std::vector<std::size_t> counts(kShards, 0);
  for (std::uint32_t v = 0; v < 4096; ++v)
    ++counts[shard_of(Ipv4Addr(0x0a000000u + v), kShards)];
  for (const std::size_t count : counts) {
    EXPECT_GT(count, 4096u / kShards / 2);  // no starved shard
    EXPECT_LT(count, 4096u / kShards * 2);  // no hot shard
  }
}

// --- merge.h ------------------------------------------------------------

TEST(KwayMerge, EqualsSortedConcatenation) {
  Rng rng(11);
  std::vector<std::vector<int>> runs(5);
  std::vector<int> expected;
  for (auto& run : runs) {
    const std::size_t len = rng.next_below(40);
    for (std::size_t i = 0; i < len; ++i)
      run.push_back(static_cast<int>(rng.next_below(100)));
    std::sort(run.begin(), run.end());
    expected.insert(expected.end(), run.begin(), run.end());
  }
  std::sort(expected.begin(), expected.end());
  const auto merged =
      kway_merge(std::move(runs), [](int a, int b) { return a < b; });
  EXPECT_EQ(merged, expected);
}

TEST(KwayMerge, TiesGoToLowerRunIndex) {
  // Strict-less comparison: on equal keys the element from the
  // lower-indexed run is emitted first, making the merge deterministic.
  using Tagged = std::pair<int, char>;
  std::vector<std::vector<Tagged>> runs = {
      {{1, 'a'}, {3, 'a'}},
      {{1, 'b'}, {2, 'b'}, {3, 'b'}},
  };
  const auto merged = kway_merge(
      std::move(runs),
      [](const Tagged& a, const Tagged& b) { return a.first < b.first; });
  const std::vector<Tagged> expected = {
      {1, 'a'}, {1, 'b'}, {2, 'b'}, {3, 'a'}, {3, 'b'}};
  EXPECT_EQ(merged, expected);
}

TEST(KwayMerge, HandlesEmptyAndSingletonRuns) {
  std::vector<std::vector<int>> runs = {{}, {5}, {}, {1, 9}, {}};
  const auto merged =
      kway_merge(std::move(runs), [](int a, int b) { return a < b; });
  EXPECT_EQ(merged, (std::vector<int>{1, 5, 9}));
  EXPECT_TRUE(kway_merge(std::vector<std::vector<int>>{},
                         [](int a, int b) { return a < b; })
                  .empty());
}

// --- work_queue.h -------------------------------------------------------

TEST(WorkQueue, RunsEveryTaskExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    constexpr std::size_t kTasks = 100;
    std::vector<std::atomic<int>> hits(kTasks);
    run_tasks(kTasks, threads,
              [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(WorkQueue, ZeroTasksIsANoOp) {
  run_tasks(0, 4, [](std::size_t) { FAIL() << "task ran"; });
}

TEST(WorkQueue, PropagatesFirstException) {
  for (const int threads : {1, 4}) {
    EXPECT_THROW(
        run_tasks(10, threads,
                  [](std::size_t i) {
                    if (i == 3) throw std::runtime_error("boom");
                  }),
        std::runtime_error);
  }
}

// --- detector byte-identity --------------------------------------------

WorkloadConfig test_config() {
  WorkloadConfig config;
  config.seed = 1234;
  config.direct_attacks = 40;
  config.reflection_attacks = 8;
  config.window_s = 1800.0;
  return config;
}

/// Shared read-only workload (logs are consumed only by the harvest test,
/// which makes its own copies).
const DetectWorkload& shared_workload() {
  static const DetectWorkload workload = make_workload(test_config());
  return workload;
}

std::vector<HoneypotLog> logs_of(const DetectWorkload& workload) {
  std::vector<HoneypotLog> logs;
  for (const auto& honeypot : workload.fleet->honeypots())
    logs.push_back({honeypot.id(), honeypot.log()});
  return logs;
}

void expect_identical(const std::vector<telescope::TelescopeEvent>& actual,
                      const std::vector<telescope::TelescopeEvent>& expected,
                      const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const auto& a = actual[i];
    const auto& e = expected[i];
    EXPECT_EQ(a.victim, e.victim) << label << " row " << i;
    EXPECT_EQ(a.start, e.start) << label << " row " << i;
    EXPECT_EQ(a.end, e.end) << label << " row " << i;
    EXPECT_EQ(a.packets, e.packets) << label << " row " << i;
    EXPECT_EQ(a.bytes, e.bytes) << label << " row " << i;
    EXPECT_EQ(a.unique_sources, e.unique_sources) << label << " row " << i;
    EXPECT_EQ(a.num_ports, e.num_ports) << label << " row " << i;
    EXPECT_EQ(a.top_port, e.top_port) << label << " row " << i;
    EXPECT_EQ(a.attack_proto, e.attack_proto) << label << " row " << i;
    EXPECT_EQ(a.max_pps, e.max_pps) << label << " row " << i;
  }
}

void expect_identical(const std::vector<amppot::AmpPotEvent>& actual,
                      const std::vector<amppot::AmpPotEvent>& expected,
                      const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const auto& a = actual[i];
    const auto& e = expected[i];
    EXPECT_EQ(a.victim, e.victim) << label << " row " << i;
    EXPECT_EQ(a.protocol, e.protocol) << label << " row " << i;
    EXPECT_EQ(a.start, e.start) << label << " row " << i;
    EXPECT_EQ(a.end, e.end) << label << " row " << i;
    EXPECT_EQ(a.requests, e.requests) << label << " row " << i;
    EXPECT_EQ(a.honeypots, e.honeypots) << label << " row " << i;
    EXPECT_EQ(a.honeypot_id, e.honeypot_id) << label << " row " << i;
  }
}

TEST(ParallelDetect, TelescopeMatchesSequentialForAnyThreadCount) {
  const auto& workload = shared_workload();

  std::vector<telescope::TelescopeEvent> expected;
  telescope::BackscatterDetector sequential(
      [&](const telescope::TelescopeEvent& e) { expected.push_back(e); });
  for (const auto& rec : workload.packets) sequential.on_packet(rec);
  sequential.finish();
  canonical_sort(expected);
  ASSERT_FALSE(expected.empty()) << "workload produced no telescope events";

  const std::pair<int, int> configs[] = {{1, 0}, {2, 0}, {8, 0},
                                         {3, 13}, {1, 5}};
  for (const auto& [threads, shards] : configs) {
    ParallelBackscatterDetector detector(ParallelConfig{threads, shards});
    const auto events = detector.detect(workload.packets);
    expect_identical(events, expected,
                     "threads=" + std::to_string(threads) +
                         " shards=" + std::to_string(shards));
    EXPECT_EQ(detector.stats().packets_seen, sequential.packets_seen());
    EXPECT_EQ(detector.stats().backscatter_packets,
              sequential.backscatter_packets());
    EXPECT_EQ(detector.stats().flows_filtered, sequential.flows_filtered());
    EXPECT_EQ(detector.stats().events_emitted, sequential.events_emitted());
  }
}

TEST(ParallelDetect, ConsolidateMatchesSequentialForAnyThreadCount) {
  const auto& workload = shared_workload();
  const auto logs = logs_of(workload);

  std::vector<amppot::AmpPotEvent> stage1;
  for (const auto& log : logs) {
    const auto events =
        amppot::consolidate_log(log.requests, {}, log.honeypot_id);
    stage1.insert(stage1.end(), events.begin(), events.end());
  }
  auto expected = amppot::merge_fleet_events(std::move(stage1));
  canonical_sort(expected);
  ASSERT_FALSE(expected.empty()) << "workload produced no honeypot events";

  const std::pair<int, int> configs[] = {{1, 0}, {2, 0}, {8, 0}, {3, 13}};
  for (const auto& [threads, shards] : configs) {
    const auto events =
        parallel_consolidate(logs, {}, ParallelConfig{threads, shards});
    expect_identical(events, expected,
                     "threads=" + std::to_string(threads) +
                         " shards=" + std::to_string(shards));
  }
}

TEST(ParallelDetect, HarvestMatchesFleetHarvest) {
  // harvest() consumes the logs, so each side gets its own identically
  // seeded workload.
  auto sequential_side = make_workload(test_config());
  auto parallel_side = make_workload(test_config());

  auto expected = sequential_side.fleet->harvest();
  canonical_sort(expected);

  const auto events =
      parallel_harvest(*parallel_side.fleet, {}, ParallelConfig{4, 0});
  expect_identical(events, expected, "parallel_harvest threads=4");
  // Logs are cleared afterwards, like HoneypotFleet::harvest.
  for (const auto& honeypot : parallel_side.fleet->honeypots())
    EXPECT_TRUE(honeypot.log().empty());
}

// --- FrameBuilder parallel build ---------------------------------------

TEST(ParallelFrameBuild, MatchesSequentialBuild) {
  StudyWindow window;
  window.end = civil_from_days(days_from_civil(window.start) + 7);
  const meta::PrefixToAsMap pfx2as;
  const meta::GeoDatabase geo;
  query::FrameBuilder builder(window, pfx2as, geo);

  Rng rng(99);
  const double t0 = static_cast<double>(window.start_time());
  for (int i = 0; i < 500; ++i) {
    core::AttackEvent event;
    // Small key space on purpose: duplicate (start, target, source) keys
    // exercise the insertion-index tie-break.
    event.target = Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(rng.next_below(16)));
    event.start = t0 + static_cast<double>(rng.next_below(32)) * 3600.0;
    event.end = event.start + 60.0;
    event.source = rng.bernoulli(0.5) ? core::EventSource::kTelescope
                                      : core::EventSource::kHoneypot;
    event.intensity = static_cast<double>(i);
    builder.add(event);
  }

  const query::EventFrame expected = builder.build();
  for (const int threads : {1, 2, 4, 8}) {
    const query::EventFrame frame = builder.build(threads);
    ASSERT_EQ(frame.size(), expected.size()) << threads << " threads";
    for (std::size_t row = 0; row < frame.size(); ++row) {
      EXPECT_EQ(frame.start()[row], expected.start()[row]);
      EXPECT_EQ(frame.end()[row], expected.end()[row]);
      EXPECT_EQ(frame.intensity()[row], expected.intensity()[row]);
      EXPECT_EQ(frame.target()[row], expected.target()[row]);
      EXPECT_EQ(frame.source()[row], expected.source()[row]);
      EXPECT_EQ(frame.ip_proto()[row], expected.ip_proto()[row]);
      EXPECT_EQ(frame.top_port()[row], expected.top_port()[row]);
      EXPECT_EQ(frame.asn()[row], expected.asn()[row]);
      EXPECT_EQ(frame.country()[row], expected.country()[row]);
      EXPECT_EQ(frame.day()[row], expected.day()[row]);
    }
  }
}

}  // namespace
}  // namespace dosm::parallel
