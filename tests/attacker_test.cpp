// Attacker model tests: the generated ground truth must carry the paper's
// distributional shape.
#include <gtest/gtest.h>

#include <map>

#include "core/ports.h"
#include "net/headers.h"
#include "sim/attacker.h"

namespace dosm::sim {
namespace {

class AttackerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(21);
    population_ = new Population(*rng_);
    providers_ = new dps::ProviderRegistry(dps::paper_providers());
    names_ = new dns::NameTable();
    window_ = new StudyWindow{{2015, 3, 1}, {2015, 8, 27}};  // 180 days
    store_ = new dns::SnapshotStore(window_->num_days());
    HostingConfig config;
    config.num_domains = 3000;
    hosting_ = new HostingEcosystem(*rng_, *population_, *providers_, *names_,
                                    *store_, config);
    AttackerConfig attacker_config;
    attacker_config.direct_per_day = 60;
    attacker_config.reflection_per_day = 45;
    Attacker attacker(99, *population_, *hosting_, *window_, attacker_config);
    attacks_ = new std::vector<GroundTruthAttack>(attacker.generate());
  }
  static void TearDownTestSuite() {
    delete attacks_;
    delete hosting_;
    delete store_;
    delete window_;
    delete names_;
    delete providers_;
    delete population_;
    delete rng_;
  }

  static Rng* rng_;
  static Population* population_;
  static dps::ProviderRegistry* providers_;
  static dns::NameTable* names_;
  static StudyWindow* window_;
  static dns::SnapshotStore* store_;
  static HostingEcosystem* hosting_;
  static std::vector<GroundTruthAttack>* attacks_;
};

Rng* AttackerTest::rng_ = nullptr;
Population* AttackerTest::population_ = nullptr;
dps::ProviderRegistry* AttackerTest::providers_ = nullptr;
dns::NameTable* AttackerTest::names_ = nullptr;
StudyWindow* AttackerTest::window_ = nullptr;
dns::SnapshotStore* AttackerTest::store_ = nullptr;
HostingEcosystem* AttackerTest::hosting_ = nullptr;
std::vector<GroundTruthAttack>* AttackerTest::attacks_ = nullptr;

TEST_F(AttackerTest, VolumeMatchesConfiguredRates) {
  // 180 days x ~105/day, modulated by growth/campaigns.
  EXPECT_GT(attacks_->size(), 12000u);
  EXPECT_LT(attacks_->size(), 30000u);
}

TEST_F(AttackerTest, OutputIsTimeSortedWithinWindow) {
  double prev = -1e18;
  for (const auto& attack : *attacks_) {
    EXPECT_GE(attack.start, prev);
    prev = attack.start;
    EXPECT_TRUE(window_->contains(static_cast<UnixSeconds>(attack.start)));
  }
}

TEST_F(AttackerTest, ProtocolMixMatchesTable5) {
  std::uint64_t tcp = 0, udp = 0, icmp = 0, other = 0, direct = 0;
  for (const auto& attack : *attacks_) {
    if (attack.kind != AttackKind::kDirect) continue;
    ++direct;
    switch (static_cast<net::IpProto>(attack.ip_proto)) {
      case net::IpProto::kTcp: ++tcp; break;
      case net::IpProto::kUdp: ++udp; break;
      case net::IpProto::kIcmp: ++icmp; break;
      default: ++other; break;
    }
  }
  ASSERT_GT(direct, 5000u);
  EXPECT_NEAR(double(tcp) / double(direct), 0.794, 0.03);
  EXPECT_NEAR(double(udp) / double(direct), 0.159, 0.03);
  EXPECT_NEAR(double(icmp) / double(direct), 0.045, 0.02);
  EXPECT_LT(double(other) / double(direct), 0.02);
}

TEST_F(AttackerTest, ReflectionMixMatchesTable6) {
  std::map<amppot::ReflectionProtocol, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const auto& attack : *attacks_) {
    if (attack.kind != AttackKind::kReflection) continue;
    ++counts[attack.reflector];
    ++total;
  }
  ASSERT_GT(total, 4000u);
  EXPECT_NEAR(double(counts[amppot::ReflectionProtocol::kNtp]) / double(total),
              0.42, 0.06);  // boosted slightly above .40 by web/joint skew
  EXPECT_GT(counts[amppot::ReflectionProtocol::kDns],
            counts[amppot::ReflectionProtocol::kCharGen] / 2);
  EXPECT_GT(counts[amppot::ReflectionProtocol::kCharGen],
            counts[amppot::ReflectionProtocol::kSsdp]);
}

TEST_F(AttackerTest, PortCardinalityMatchesTable7) {
  std::uint64_t single = 0, multi = 0;
  for (const auto& attack : *attacks_) {
    if (attack.kind != AttackKind::kDirect || attack.ports.empty()) continue;
    if (attack.ports.size() == 1) ++single; else ++multi;
  }
  EXPECT_NEAR(double(single) / double(single + multi), 0.62, 0.05);
}

TEST_F(AttackerTest, TcpServiceMixFavorsWeb) {
  std::uint64_t web = 0, total = 0;
  for (const auto& attack : *attacks_) {
    if (attack.kind != AttackKind::kDirect || attack.ports.size() != 1) continue;
    if (attack.ip_proto != static_cast<std::uint8_t>(net::IpProto::kTcp)) continue;
    ++total;
    if (core::is_web_port(attack.ports[0])) ++web;
  }
  ASSERT_GT(total, 1000u);
  // Paper: HTTP+HTTPS = 69.36% of single-port TCP attacks.
  EXPECT_NEAR(double(web) / double(total), 0.6936, 0.05);
}

TEST_F(AttackerTest, DurationsMatchPaperMedians) {
  EmpiricalDistribution direct, reflection;
  for (const auto& attack : *attacks_) {
    if (attack.kind == AttackKind::kDirect) direct.add(attack.duration_s);
    else reflection.add(attack.duration_s);
  }
  // Telescope: median 454 s; honeypot: median 255 s (order-of-magnitude
  // tolerances: the observation layer also shapes the measured values).
  EXPECT_GT(direct.median(), 200.0);
  EXPECT_LT(direct.median(), 900.0);
  EXPECT_GT(reflection.median(), 120.0);
  EXPECT_LT(reflection.median(), 500.0);
  EXPECT_GT(direct.mean(), direct.median());  // heavy right tail
}

TEST_F(AttackerTest, JointAttacksShareTargetAndOverlap) {
  std::uint64_t joint_reflections = 0;
  for (std::size_t i = 0; i < attacks_->size(); ++i) {
    const auto& attack = (*attacks_)[i];
    if (attack.kind != AttackKind::kReflection || !attack.joint) continue;
    ++joint_reflections;
    // A joint direct attack on the same target must overlap in time.
    bool found = false;
    for (const auto& other : *attacks_) {
      if (other.kind != AttackKind::kDirect || !other.joint) continue;
      if (other.target != attack.target) continue;
      const double a0 = attack.start, a1 = attack.start + attack.duration_s;
      const double b0 = other.start, b1 = other.start + other.duration_s;
      if (a0 <= b1 && b0 <= a1) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "reflection at " << attack.start;
  }
  EXPECT_GT(joint_reflections, 50u);
}

TEST_F(AttackerTest, RepeatTargetsExist) {
  std::map<std::uint32_t, int> per_target;
  for (const auto& attack : *attacks_) ++per_target[attack.target.value()];
  int repeated = 0;
  for (const auto& [target, count] : per_target)
    if (count > 1) ++repeated;
  EXPECT_GT(repeated, 500);
}

TEST_F(AttackerTest, IntensitiesAreHeavyTailed) {
  EmpiricalDistribution scope_pps;
  for (const auto& attack : *attacks_) {
    if (attack.kind == AttackKind::kDirect)
      scope_pps.add(attack.victim_pps / 256.0);
  }
  // Median around ~1 pps at the telescope, mean orders of magnitude higher.
  EXPECT_LT(scope_pps.median(), 5.0);
  EXPECT_GT(scope_pps.mean(), 10.0 * scope_pps.median());
}

TEST_F(AttackerTest, DeterministicForSameSeed) {
  AttackerConfig config;
  config.direct_per_day = 10;
  config.reflection_per_day = 5;
  const StudyWindow window{{2015, 3, 1}, {2015, 3, 30}};
  Attacker a(123, *population_, *hosting_, window, config);
  Attacker b(123, *population_, *hosting_, window, config);
  const auto va = a.generate();
  const auto vb = b.generate();
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(va[i].target, vb[i].target);
    EXPECT_DOUBLE_EQ(va[i].start, vb[i].start);
    EXPECT_DOUBLE_EQ(va[i].victim_pps, vb[i].victim_pps);
  }
}

}  // namespace
}  // namespace dosm::sim
