// Replays tests/data/golden_responses/ — raw HTTP response bytes captured
// from the pre-router server by tools/make_golden_responses — against a
// live server and compares byte-for-byte. This is the pin for the route
// registry redesign: every endpoint (success, 400, 404, 405, 503) must
// answer the EXACT bytes the Endpoint-enum dispatch answered, or the serve
// wire format changed and the fixtures need a deliberate regeneration.
//
// The request bytes are rebuilt here from manifest.txt with the same
// rendering convention the capture tool uses, so fixture and replay cannot
// drift apart; the case list lives only in the tool.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <charconv>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "query/engine.h"
#include "query/snapshot.h"
#include "serve/server.h"
#include "sim/scenario.h"

namespace dosm::serve {
namespace {

struct Case {
  std::string slug;
  std::string engine;  // "main" or "empty"
  std::string method;
  std::string target;
  std::string body;
};

std::vector<Case> load_manifest(const std::string& dir) {
  std::ifstream in(dir + "/manifest.txt");
  EXPECT_TRUE(in.is_open()) << dir << "/manifest.txt";
  std::vector<Case> cases;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Case c;
    std::istringstream fields(line);
    std::getline(fields, c.slug, '\t');
    std::getline(fields, c.engine, '\t');
    std::getline(fields, c.method, '\t');
    std::getline(fields, c.target, '\t');
    std::getline(fields, c.body, '\t');
    cases.push_back(std::move(c));
  }
  return cases;
}

std::string load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

/// Identical to tools/make_golden_responses render_request — the shared
/// convention that keeps fixture and replay in lockstep.
std::string render_request(const Case& c) {
  std::string raw = c.method + " " + c.target + " HTTP/1.1\r\n";
  raw += "Connection: close\r\n";
  if (!c.body.empty())
    raw += "Content-Length: " + std::to_string(c.body.size()) + "\r\n";
  raw += "\r\n";
  raw += c.body;
  return raw;
}

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  return fd;
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

std::string read_response(int fd) {
  std::string response;
  char chunk[4096];
  std::size_t need = std::string::npos;
  for (;;) {
    if (need == std::string::npos) {
      const std::size_t head_end = response.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        const std::size_t field = response.find("Content-Length: ");
        if (field == std::string::npos || field > head_end) return response;
        std::size_t length = 0;
        std::from_chars(response.data() + field + 16,
                        response.data() + head_end, length);
        need = head_end + 4 + length;
      }
    }
    if (need != std::string::npos && response.size() >= need)
      return response.substr(0, need);
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return response;
    response.append(chunk, static_cast<std::size_t>(n));
  }
}

TEST(ServeGoldenTest, EveryEndpointAnswersTheCapturedBytes) {
  const std::string dir = DOSM_GOLDEN_RESPONSES;
  const std::vector<Case> cases = load_manifest(dir);
  ASSERT_FALSE(cases.empty());

  // The same fixture worlds the capture tool served from.
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  query::QueryEngine main_engine;
  main_engine.publish(query::Snapshot::from_store(
      world->store,
      query::BuildContext{world->population.pfx2as(),
                          world->population.geo()},
      1));
  query::QueryEngine empty_engine;

  ServerConfig config;
  config.workers = 1;
  const Server main_server(config, main_engine);
  const Server empty_server(config, empty_engine);

  for (const Case& c : cases) {
    SCOPED_TRACE(c.slug + ": " + c.method + " " + c.target);
    const std::string expected = load_file(dir + "/" + c.slug + ".bin");
    ASSERT_FALSE(expected.empty());
    const int fd = connect_to(
        c.engine == "main" ? main_server.port() : empty_server.port());
    send_all(fd, render_request(c));
    const std::string actual = read_response(fd);
    ::close(fd);
    EXPECT_EQ(actual, expected);
  }
}

// /metrics has no golden body (its counters are runtime state); pin the
// status line and content type instead.
TEST(ServeGoldenTest, MetricsStatusAndContentTypeArePinned) {
  query::QueryEngine engine;
  ServerConfig config;
  config.workers = 1;
  const Server server(config, engine);
  const int fd = connect_to(server.port());
  send_all(fd, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
  const std::string response = read_response(fd);
  ::close(fd);
  EXPECT_EQ(response.substr(0, 15), "HTTP/1.1 200 OK");
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4\r\n"),
            std::string::npos)
      << response.substr(0, 200);
}

}  // namespace
}  // namespace dosm::serve
