// Flow aggregation and Moore-threshold classification tests.
#include <gtest/gtest.h>

#include <vector>

#include "telescope/flow_table.h"

namespace dosm::telescope {
namespace {

using net::Ipv4Addr;
using net::IpProto;

BackscatterInfo tcp_info(Ipv4Addr victim, std::uint16_t port) {
  BackscatterInfo info;
  info.victim = victim;
  info.attack_proto = static_cast<std::uint8_t>(IpProto::kTcp);
  info.victim_port = port;
  info.has_port = true;
  return info;
}

TEST(Thresholds, DefaultsMatchPaper) {
  const ClassifierThresholds thresholds;
  EXPECT_EQ(thresholds.min_packets, 25u);
  EXPECT_DOUBLE_EQ(thresholds.min_duration_s, 60.0);
  EXPECT_DOUBLE_EQ(thresholds.min_max_pps, 0.5);
}

TEST(Thresholds, EachThresholdFiltersIndependently) {
  TelescopeEvent event;
  event.packets = 100;
  event.start = 0;
  event.end = 120;
  event.max_pps = 1.0;
  const ClassifierThresholds thresholds;
  EXPECT_TRUE(passes_thresholds(event, thresholds));
  auto few = event;
  few.packets = 24;
  EXPECT_FALSE(passes_thresholds(few, thresholds));
  auto brief = event;
  brief.end = 59.0;
  EXPECT_FALSE(passes_thresholds(brief, thresholds));
  auto weak = event;
  weak.max_pps = 0.49;
  EXPECT_FALSE(passes_thresholds(weak, thresholds));
}

TEST(Thresholds, ExactBoundaryValuesPass) {
  // The paper's cutoffs are inclusive: a flow with exactly 25 packets, a
  // 60 s duration, and 0.5 pps peak is classified as an attack. Pins the
  // strict-< rejections in passes_thresholds.
  TelescopeEvent event;
  event.packets = 25;
  event.start = 0.0;
  event.end = 60.0;
  event.max_pps = 0.5;
  EXPECT_TRUE(passes_thresholds(event, ClassifierThresholds{}));
}

TEST(FlowTable, AggregatesPerVictim) {
  std::vector<TelescopeEvent> flows;
  FlowTable table([&](const TelescopeEvent& e) { flows.push_back(e); });
  const Ipv4Addr v1(1, 1, 1, 1), v2(2, 2, 2, 2);
  for (int i = 0; i < 30; ++i) {
    table.add(100.0 + i, tcp_info(v1, 80), 40, Ipv4Addr(44, 0, 0, 1));
    table.add(100.0 + i, tcp_info(v2, 443), 40, Ipv4Addr(44, 0, 0, 2));
  }
  EXPECT_EQ(table.active_flows(), 2u);
  table.flush();
  ASSERT_EQ(flows.size(), 2u);
  for (const auto& flow : flows) {
    EXPECT_EQ(flow.packets, 30u);
    EXPECT_EQ(flow.num_ports, 1);
    EXPECT_DOUBLE_EQ(flow.start, 100.0);
    EXPECT_DOUBLE_EQ(flow.end, 129.0);
  }
}

TEST(FlowTable, ExpiresAfterTimeout) {
  std::vector<TelescopeEvent> flows;
  FlowTable table([&](const TelescopeEvent& e) { flows.push_back(e); },
                  /*flow_timeout_s=*/300.0);
  const Ipv4Addr victim(1, 1, 1, 1);
  table.add(1000.0, tcp_info(victim, 80), 40, Ipv4Addr(44, 0, 0, 1));
  table.add(1010.0, tcp_info(victim, 80), 40, Ipv4Addr(44, 0, 0, 2));
  // Advance just under the timeout: still active.
  table.advance(1010.0 + 299.0);
  EXPECT_EQ(flows.size(), 0u);
  // Past the timeout (plus sweep granularity): expired.
  table.advance(1010.0 + 301.0 + 60.0);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets, 2u);
  EXPECT_EQ(table.active_flows(), 0u);
}

TEST(FlowTable, GapSplitsIntoTwoFlows) {
  std::vector<TelescopeEvent> flows;
  FlowTable table([&](const TelescopeEvent& e) { flows.push_back(e); });
  const Ipv4Addr victim(1, 1, 1, 1);
  table.add(0.0, tcp_info(victim, 80), 40, Ipv4Addr(44, 0, 0, 1));
  // 10 minutes later: the first flow expires during lazy sweeps.
  table.add(600.0, tcp_info(victim, 80), 40, Ipv4Addr(44, 0, 0, 2));
  table.flush();
  EXPECT_EQ(flows.size(), 2u);
}

TEST(FlowTable, TracksDistinctPortsAndTopPort) {
  std::vector<TelescopeEvent> flows;
  FlowTable table([&](const TelescopeEvent& e) { flows.push_back(e); });
  const Ipv4Addr victim(1, 1, 1, 1);
  for (int i = 0; i < 10; ++i)
    table.add(100.0 + i, tcp_info(victim, 80), 40, Ipv4Addr(44, 0, 0, 1));
  for (int i = 0; i < 4; ++i)
    table.add(110.0 + i, tcp_info(victim, 443), 40, Ipv4Addr(44, 0, 0, 1));
  table.flush();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].num_ports, 2);
  EXPECT_EQ(flows[0].top_port, 80);
  EXPECT_FALSE(flows[0].single_port());
}

TEST(FlowTable, PortCountsKeepIncrementingPastCap) {
  // Once 64 distinct ports are tracked (FlowTable::kMaxTrackedPorts), new
  // ports are dropped — but counts for already-tracked ports must keep
  // incrementing, or top_port misattributes heavy single-port floods that
  // ride alongside a port sweep.
  std::vector<TelescopeEvent> flows;
  FlowTable table([&](const TelescopeEvent& e) { flows.push_back(e); });
  const Ipv4Addr victim(1, 1, 1, 1);
  const Ipv4Addr src(44, 0, 0, 1);
  // Port 80 twice, then 63 other ports once each: cap reached at 64.
  table.add(100.0, tcp_info(victim, 80), 40, src);
  table.add(100.1, tcp_info(victim, 80), 40, src);
  for (std::uint16_t p = 1000; p < 1063; ++p)
    table.add(100.2, tcp_info(victim, p), 40, src);
  // New ports past the cap are not tracked...
  for (int i = 0; i < 10; ++i)
    table.add(100.3, tcp_info(victim, 9999), 40, src);
  // ...but hits on an existing port still count.
  for (int i = 0; i < 5; ++i)
    table.add(100.4, tcp_info(victim, 1042), 40, src);
  table.flush();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].num_ports, 64);
  EXPECT_EQ(flows[0].top_port, 1042);  // 6 hits beats port 80's 2
}

TEST(FlowTable, MajorityProtocolAttribution) {
  std::vector<TelescopeEvent> flows;
  FlowTable table([&](const TelescopeEvent& e) { flows.push_back(e); });
  const Ipv4Addr victim(1, 1, 1, 1);
  BackscatterInfo icmp;
  icmp.victim = victim;
  icmp.attack_proto = static_cast<std::uint8_t>(IpProto::kIcmp);
  for (int i = 0; i < 7; ++i)
    table.add(100.0 + i, tcp_info(victim, 80), 40, Ipv4Addr(44, 0, 0, 1));
  for (int i = 0; i < 3; ++i)
    table.add(107.0 + i, icmp, 84, Ipv4Addr(44, 0, 0, 1));
  table.flush();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].attack_proto, static_cast<std::uint8_t>(IpProto::kTcp));
}

TEST(FlowTable, MaxPpsIsPerMinuteMaximum) {
  std::vector<TelescopeEvent> flows;
  FlowTable table([&](const TelescopeEvent& e) { flows.push_back(e); });
  const Ipv4Addr victim(1, 1, 1, 1);
  // Minute 1: 60 packets; minute 2: 120 packets.
  for (int i = 0; i < 60; ++i)
    table.add(0.0 + i, tcp_info(victim, 80), 40, Ipv4Addr(44, 0, 0, 1));
  for (int i = 0; i < 120; ++i)
    table.add(60.0 + i * 0.5, tcp_info(victim, 80), 40, Ipv4Addr(44, 0, 0, 1));
  table.flush();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_DOUBLE_EQ(flows[0].max_pps, 2.0);  // 120 packets / 60 s
}

TEST(FlowTable, CountsUniqueTelescopeSources) {
  std::vector<TelescopeEvent> flows;
  FlowTable table([&](const TelescopeEvent& e) { flows.push_back(e); });
  const Ipv4Addr victim(1, 1, 1, 1);
  for (int i = 0; i < 50; ++i) {
    table.add(100.0 + i, tcp_info(victim, 80), 40,
              Ipv4Addr(44, 0, 0, static_cast<std::uint8_t>(i % 10)));
  }
  table.flush();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].unique_sources, 10u);
}

TEST(Detector, FullPathFiltersSubThresholdFlows) {
  std::vector<TelescopeEvent> events;
  BackscatterDetector detector(
      [&](const TelescopeEvent& e) { events.push_back(e); });
  net::PacketRecord rec;
  rec.src = Ipv4Addr(1, 1, 1, 1);
  rec.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  rec.src_port = 80;
  rec.tcp_flags = net::tcp_flags::kSyn | net::tcp_flags::kAck;
  rec.ip_len = 40;
  // Only 10 packets: below the 25-packet threshold.
  for (int i = 0; i < 10; ++i) {
    rec.ts_sec = 1000 + i * 10;
    detector.on_packet(rec);
  }
  detector.finish();
  EXPECT_EQ(events.size(), 0u);
  EXPECT_EQ(detector.flows_filtered(), 1u);
  EXPECT_EQ(detector.backscatter_packets(), 10u);
}

TEST(Detector, IgnoresNonBackscatter) {
  std::vector<TelescopeEvent> events;
  BackscatterDetector detector(
      [&](const TelescopeEvent& e) { events.push_back(e); });
  net::PacketRecord scan;
  scan.src = Ipv4Addr(6, 6, 6, 6);
  scan.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  scan.tcp_flags = net::tcp_flags::kSyn;
  for (int i = 0; i < 100; ++i) {
    scan.ts_sec = 1000 + i;
    detector.on_packet(scan);
  }
  detector.finish();
  EXPECT_EQ(detector.packets_seen(), 100u);
  EXPECT_EQ(detector.backscatter_packets(), 0u);
  EXPECT_EQ(events.size(), 0u);
}

// Parameterized sweep: tightening any threshold never increases the number
// of accepted events (monotonicity property of the classifier).
class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, TighterMeansFewer) {
  const double scale = GetParam();
  auto count_with = [&](const ClassifierThresholds& t) {
    int count = 0;
    // Synthetic flow population with varied stats.
    for (int i = 1; i <= 100; ++i) {
      TelescopeEvent event;
      event.packets = static_cast<std::uint64_t>(i * 3);
      event.start = 0;
      event.end = i * 5.0;
      event.max_pps = i * 0.05;
      if (passes_thresholds(event, t)) ++count;
    }
    return count;
  };
  const ClassifierThresholds base;
  ClassifierThresholds tight;
  tight.min_packets =
      static_cast<std::uint64_t>(static_cast<double>(base.min_packets) * scale);
  tight.min_duration_s = base.min_duration_s * scale;
  tight.min_max_pps = base.min_max_pps * scale;
  if (scale >= 1.0) {
    EXPECT_LE(count_with(tight), count_with(base));
  } else {
    EXPECT_GE(count_with(tight), count_with(base));
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, ThresholdSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0));

// Regression: the top-port argmax iterates an unordered_map, and a
// first-wins comparison let the winner among tied counts depend on hash
// iteration order (libstdc++ iterates most-recently-inserted first, so
// inserting 80 before 443 made 443 win). The argmax must be a total order:
// lowest port wins ties.
TEST(FlowTable, TopPortTieBreaksTowardLowestPort) {
  std::vector<TelescopeEvent> events;
  FlowTable table([&](const TelescopeEvent& e) { events.push_back(e); });
  const Ipv4Addr victim(1, 2, 3, 4);
  const Ipv4Addr scope(44, 0, 0, 1);
  table.add(0.0, tcp_info(victim, 80), 40, scope);
  table.add(1.0, tcp_info(victim, 443), 40, scope);
  table.add(2.0, tcp_info(victim, 80), 40, scope);
  table.add(3.0, tcp_info(victim, 443), 40, scope);
  table.flush();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].num_ports, 2u);
  EXPECT_EQ(events[0].top_port, 80);
}

// Regression: same hash-order tie bug for the attack-protocol vote.
TEST(FlowTable, AttackProtoTieBreaksTowardLowestProto) {
  std::vector<TelescopeEvent> events;
  FlowTable table([&](const TelescopeEvent& e) { events.push_back(e); });
  const Ipv4Addr victim(1, 2, 3, 4);
  const Ipv4Addr scope(44, 0, 0, 1);
  auto vote = [&](double ts, std::uint8_t proto) {
    BackscatterInfo info = tcp_info(victim, 80);
    info.attack_proto = proto;
    table.add(ts, info, 40, scope);
  };
  vote(0.0, 6);
  vote(1.0, 17);
  vote(2.0, 6);
  vote(3.0, 17);
  table.flush();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].attack_proto, 6);
}

}  // namespace
}  // namespace dosm::telescope
