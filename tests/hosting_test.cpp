// Hosting ecosystem tests: domain registration, DNS state, co-hosting
// skew, preexisting DPS customers, provider front IPs.
#include <gtest/gtest.h>

#include <algorithm>

#include "dps/classifier.h"
#include "sim/hosting.h"

namespace dosm::sim {
namespace {

class HostingTest : public ::testing::Test {
 protected:
  static constexpr int kDays = 120;
  static constexpr int kDomains = 12000;

  HostingTest()
      : rng_(7),
        population_(rng_),
        providers_(dps::paper_providers()),
        store_(kDays) {
    HostingConfig config;
    config.num_domains = kDomains;
    config.num_generic_hosters = 25;
    hosting_ = std::make_unique<HostingEcosystem>(rng_, population_, providers_,
                                                  names_, store_, config);
  }

  Rng rng_;
  Population population_;
  dps::ProviderRegistry providers_;
  dns::NameTable names_;
  dns::SnapshotStore store_;
  std::unique_ptr<HostingEcosystem> hosting_;
};

TEST_F(HostingTest, RegistersRequestedDomains) {
  EXPECT_EQ(store_.num_domains(), static_cast<std::size_t>(kDomains));
  EXPECT_EQ(hosting_->num_sites(), static_cast<std::size_t>(kDomains));
  // TLD mix ~ .com 82.7%, .net 10.3%, .org 7%.
  const auto com = hosting_->domains_in_tld("com");
  const auto net = hosting_->domains_in_tld("net");
  const auto org = hosting_->domains_in_tld("org");
  EXPECT_EQ(com + net + org, static_cast<std::uint64_t>(kDomains));
  EXPECT_GT(com, 7u * net);
  EXPECT_GT(net, org);
}

TEST_F(HostingTest, EverySiteHasInitialDnsState) {
  for (dns::DomainId id = 0; id < kDomains; ++id) {
    const auto& site = hosting_->site(id);
    const auto record = store_.record_on(id, site.first_seen);
    ASSERT_TRUE(record.has_value());
    EXPECT_TRUE(record->has_website());
    if (site.preexisting == dps::kNoProvider) {
      EXPECT_EQ(record->www_a, site.origin_ip);
      EXPECT_NE(record->ns, dns::kNoName);
    }
  }
}

TEST_F(HostingTest, MegaHostersExistAndConcentrateSites) {
  const auto& hosters = hosting_->hosters();
  std::size_t mega = 0;
  bool found_godaddy = false, found_ovh = false;
  for (const auto& hoster : hosters) {
    if (hoster.mega) ++mega;
    if (hoster.name == "GoDaddy") found_godaddy = true;
    if (hoster.name == "OVH") found_ovh = true;
  }
  EXPECT_GE(mega, 10u);
  EXPECT_TRUE(found_godaddy);
  EXPECT_TRUE(found_ovh);

  // Co-hosting skew: the most-loaded IP hosts far more sites than the
  // median hosting IP.
  std::size_t max_sites = 0, hosting_ips = 0;
  store_.build_reverse_index();
  for (const auto& ip : store_.hosting_ips()) {
    ++hosting_ips;
    max_sites = std::max(max_sites, store_.count_sites_on(ip, kDays - 1));
  }
  EXPECT_GT(hosting_ips, 500u);  // plenty of self-hosted singletons
  EXPECT_GT(max_sites, 50u);     // and a few heavy shared IPs
}

TEST_F(HostingTest, PreexistingCustomersAreDetectable) {
  const dps::Classifier classifier(providers_, names_);
  std::size_t preexisting = 0, detected = 0;
  for (dns::DomainId id = 0; id < kDomains; ++id) {
    const auto& site = hosting_->site(id);
    if (site.preexisting == dps::kNoProvider) continue;
    ++preexisting;
    const auto record = store_.record_on(id, site.first_seen);
    ASSERT_TRUE(record.has_value());
    const auto provider = classifier.classify(*record);
    ASSERT_TRUE(provider.has_value());
    EXPECT_EQ(*provider, site.preexisting);
    ++detected;
  }
  EXPECT_GT(preexisting, 20u);
  EXPECT_EQ(preexisting, detected);
}

TEST_F(HostingTest, OriginIndexMatchesSites) {
  for (dns::DomainId id = 0; id < 200; ++id) {
    const auto& site = hosting_->site(id);
    const auto domains = hosting_->domains_on_origin(site.origin_ip);
    EXPECT_NE(std::find(domains.begin(), domains.end(), id), domains.end());
  }
  EXPECT_TRUE(
      hosting_->domains_on_origin(net::Ipv4Addr(1, 2, 3, 4)).empty());
}

TEST_F(HostingTest, HosterOfIpRoundTrips) {
  for (std::size_t h = 0; h < hosting_->hosters().size(); ++h) {
    for (const auto& ip : hosting_->hosters()[h].ips) {
      EXPECT_EQ(hosting_->hoster_of_ip(ip), static_cast<int>(h));
    }
  }
  EXPECT_EQ(hosting_->hoster_of_ip(net::Ipv4Addr(1, 2, 3, 4)), -1);
}

TEST_F(HostingTest, AttackSamplerPrefersLoadedIps) {
  // Sampling hosting IPs should hit mega-hoster IPs much more often than
  // their share of the IP population (popularity-weighted targeting).
  Rng rng(11);
  int mega_hits = 0;
  constexpr int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    const auto ip = hosting_->sample_hosting_ip(rng);
    const int h = hosting_->hoster_of_ip(ip);
    if (h >= 0 && hosting_->hosters()[static_cast<std::size_t>(h)].mega)
      ++mega_hits;
  }
  std::size_t mega_ips = 0;
  for (const auto& hoster : hosting_->hosters())
    if (hoster.mega) mega_ips += hoster.ips.size();
  store_.build_reverse_index();
  const std::size_t all_ips = store_.hosting_ips().size();
  // Expected attacks *per IP* must be higher for (loaded) mega-hoster IPs
  // than for the rest of the hosting population.
  const double rate_mega =
      static_cast<double>(mega_hits) / static_cast<double>(mega_ips);
  const double rate_rest = static_cast<double>(kDraws - mega_hits) /
                           static_cast<double>(all_ips - mega_ips);
  EXPECT_GT(rate_mega, rate_rest);
}

TEST_F(HostingTest, ProtectedRecordsPointIntoProviderSpace) {
  Rng rng(13);
  for (const auto& provider : providers_.all()) {
    const auto front = hosting_->provider_front_ip(provider.id, rng);
    bool inside = false;
    for (const auto& prefix : provider.prefixes) inside |= prefix.contains(front);
    EXPECT_TRUE(inside) << provider.name;
    const auto record = hosting_->protected_record(0, provider.id, rng);
    EXPECT_NE(record.www_cname, dns::kNoName);
    EXPECT_TRUE(record.has_website());
  }
}

TEST_F(HostingTest, ProviderSamplerFollowsMarketShares) {
  Rng rng(17);
  std::vector<int> counts(providers_.size() + 1, 0);
  for (int i = 0; i < 20000; ++i) ++counts[hosting_->sample_provider(rng)];
  const auto neustar = *providers_.find("Neustar");
  const auto level3 = *providers_.find("Level 3");
  const auto virtualroad = *providers_.find("VirtualRoad");
  // Neustar (10.78M in Table 3) must dominate Level 3 (0.47M) and
  // VirtualRoad (<100).
  EXPECT_GT(counts[neustar], 10 * counts[level3]);
  EXPECT_GT(counts[level3], counts[virtualroad]);
}

TEST_F(HostingTest, SharedMailInfrastructure) {
  // Hosted domains with mail ride their hoster's shared exchangers; the
  // ground-truth mail index and the DNS MX records must agree.
  std::size_t hosted_mail = 0, independent_mail = 0;
  for (dns::DomainId id = 0; id < kDomains; ++id) {
    const auto& site = hosting_->site(id);
    const auto record = store_.record_on(id, site.first_seen);
    ASSERT_TRUE(record.has_value());
    if (record->mx == dns::kNoName) continue;
    ASSERT_NE(record->mx_a, net::Ipv4Addr());
    const auto served = hosting_->domains_with_mail_on(record->mx_a);
    EXPECT_NE(std::find(served.begin(), served.end(), id), served.end());
    if (site.hoster >= 0) {
      ++hosted_mail;
      const auto& hoster =
          hosting_->hosters()[static_cast<std::size_t>(site.hoster)];
      EXPECT_EQ(record->mx, hoster.mail_name);
      EXPECT_NE(std::find(hoster.mail_ips.begin(), hoster.mail_ips.end(),
                          record->mx_a),
                hoster.mail_ips.end());
    } else {
      ++independent_mail;
      EXPECT_EQ(record->mx_a, site.origin_ip);
    }
  }
  EXPECT_GT(hosted_mail, 1000u);       // ~half of hosted domains
  EXPECT_GT(independent_mail, 1000u);  // ~half of self/micro domains

  // Every hoster exposes at least one mail exchanger.
  for (const auto& hoster : hosting_->hosters()) {
    EXPECT_FALSE(hoster.mail_ips.empty()) << hoster.name;
    EXPECT_NE(hoster.mail_name, dns::kNoName);
  }
  EXPECT_TRUE(
      hosting_->domains_with_mail_on(net::Ipv4Addr(1, 2, 3, 4)).empty());
}

TEST_F(HostingTest, DpsFrontDetection) {
  Rng rng(41);
  for (int i = 0; i < 50; ++i) {
    const auto front = hosting_->sample_dps_front_ip(rng);
    EXPECT_TRUE(hosting_->is_dps_front(front));
    EXPECT_TRUE(hosting_->hosts_websites(front));
  }
  EXPECT_FALSE(hosting_->is_dps_front(net::Ipv4Addr(8, 8, 8, 8)));
}

TEST_F(HostingTest, LateRegistrationsAppearMidWindow) {
  int late = 0;
  for (dns::DomainId id = 0; id < kDomains; ++id)
    if (hosting_->site(id).first_seen > 0) ++late;
  // ~18% of domains register after day 0.
  EXPECT_GT(late, kDomains / 10);
  EXPECT_LT(late, kDomains / 3);
}

// Regression: the attack-target sampler's index -> IP mapping was built by
// iterating the unordered hosting indexes, freezing hash order into the
// sampler — reproducible within one standard library but not across
// implementations. The mapping must be address-sorted.
TEST_F(HostingTest, AttackableIpsAreAddressSorted) {
  const auto& ips = hosting_->attackable_ips();
  ASSERT_GT(ips.size(), 100u);
  EXPECT_TRUE(std::is_sorted(ips.begin(), ips.end()));
}

}  // namespace
}  // namespace dosm::sim
