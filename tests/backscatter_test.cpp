// Backscatter classification tests (step 1 of Moore et al.).
#include <gtest/gtest.h>

#include "telescope/backscatter.h"

namespace dosm::telescope {
namespace {

using net::IcmpType;
using net::Ipv4Addr;
using net::IpProto;
using net::PacketRecord;

PacketRecord tcp_packet(std::uint8_t flags) {
  PacketRecord rec;
  rec.src = Ipv4Addr(9, 9, 9, 9);
  rec.dst = Ipv4Addr(44, 1, 1, 1);
  rec.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  rec.src_port = 80;
  rec.dst_port = 4242;
  rec.tcp_flags = flags;
  return rec;
}

PacketRecord icmp_packet(IcmpType type) {
  PacketRecord rec;
  rec.src = Ipv4Addr(9, 9, 9, 9);
  rec.dst = Ipv4Addr(44, 1, 1, 1);
  rec.proto = static_cast<std::uint8_t>(IpProto::kIcmp);
  rec.icmp_type = static_cast<std::uint8_t>(type);
  return rec;
}

TEST(IsBackscatter, TcpResponses) {
  EXPECT_TRUE(is_backscatter(tcp_packet(net::tcp_flags::kSyn | net::tcp_flags::kAck)));
  EXPECT_TRUE(is_backscatter(tcp_packet(net::tcp_flags::kRst)));
  EXPECT_TRUE(is_backscatter(tcp_packet(net::tcp_flags::kRst | net::tcp_flags::kAck)));
  // Plain SYN (a scan) and plain ACK are not response packets.
  EXPECT_FALSE(is_backscatter(tcp_packet(net::tcp_flags::kSyn)));
  EXPECT_FALSE(is_backscatter(tcp_packet(net::tcp_flags::kAck)));
  EXPECT_FALSE(is_backscatter(tcp_packet(net::tcp_flags::kFin)));
  EXPECT_FALSE(is_backscatter(tcp_packet(0)));
}

TEST(IsBackscatter, IcmpResponseTypes) {
  // The paper's full list of response ICMP types (§3.1.1).
  for (const auto type :
       {IcmpType::kEchoReply, IcmpType::kDestUnreachable, IcmpType::kSourceQuench,
        IcmpType::kRedirect, IcmpType::kTimeExceeded, IcmpType::kParameterProblem,
        IcmpType::kTimestampReply, IcmpType::kInfoReply,
        IcmpType::kAddressMaskReply}) {
    EXPECT_TRUE(is_backscatter(icmp_packet(type)))
        << "type " << int(static_cast<std::uint8_t>(type));
  }
  // Requests are not backscatter.
  EXPECT_FALSE(is_backscatter(icmp_packet(IcmpType::kEcho)));
  EXPECT_FALSE(is_backscatter(icmp_packet(IcmpType::kTimestamp)));
  EXPECT_FALSE(is_backscatter(icmp_packet(IcmpType::kInfoRequest)));
  EXPECT_FALSE(is_backscatter(icmp_packet(IcmpType::kAddressMaskRequest)));
}

TEST(IsBackscatter, UdpNeverIs) {
  PacketRecord rec;
  rec.proto = static_cast<std::uint8_t>(IpProto::kUdp);
  rec.src_port = 53;
  EXPECT_FALSE(is_backscatter(rec));
}

TEST(Classify, SynAckAttributesTcpAndVictimPort) {
  const auto rec = tcp_packet(net::tcp_flags::kSyn | net::tcp_flags::kAck);
  const auto info = classify_backscatter(rec);
  EXPECT_EQ(info.victim, rec.src);
  EXPECT_EQ(info.attack_proto, static_cast<std::uint8_t>(IpProto::kTcp));
  ASSERT_TRUE(info.has_port);
  EXPECT_EQ(info.victim_port, 80);  // the victim replies *from* port 80
}

TEST(Classify, EchoReplyAttributesIcmpFlood) {
  const auto info = classify_backscatter(icmp_packet(IcmpType::kEchoReply));
  EXPECT_EQ(info.attack_proto, static_cast<std::uint8_t>(IpProto::kIcmp));
  EXPECT_FALSE(info.has_port);
  EXPECT_EQ(info.victim, Ipv4Addr(9, 9, 9, 9));
}

TEST(Classify, UnreachableUsesQuotedDatagram) {
  auto rec = icmp_packet(IcmpType::kDestUnreachable);
  rec.src = Ipv4Addr(5, 5, 5, 5);  // an on-path router
  rec.has_quoted = true;
  rec.quoted_proto = static_cast<std::uint8_t>(IpProto::kUdp);
  rec.quoted_src = rec.dst;                 // spoofed source
  rec.quoted_dst = Ipv4Addr(7, 7, 7, 7);    // the true victim
  rec.quoted_dst_port = 27015;
  const auto info = classify_backscatter(rec);
  // Attack protocol is the quoted packet's (UDP flood), and the victim is
  // the quoted destination, not the router emitting the error.
  EXPECT_EQ(info.attack_proto, static_cast<std::uint8_t>(IpProto::kUdp));
  EXPECT_EQ(info.victim, Ipv4Addr(7, 7, 7, 7));
  ASSERT_TRUE(info.has_port);
  EXPECT_EQ(info.victim_port, 27015);
}

TEST(Classify, UnreachableWithoutQuoteFallsBackToIcmp) {
  const auto rec = icmp_packet(IcmpType::kDestUnreachable);
  const auto info = classify_backscatter(rec);
  EXPECT_EQ(info.attack_proto, static_cast<std::uint8_t>(IpProto::kIcmp));
  EXPECT_EQ(info.victim, rec.src);
}

TEST(Classify, TimeExceededQuotingIgmp) {
  auto rec = icmp_packet(IcmpType::kTimeExceeded);
  rec.has_quoted = true;
  rec.quoted_proto = static_cast<std::uint8_t>(IpProto::kIgmp);
  rec.quoted_dst = Ipv4Addr(6, 6, 6, 6);
  const auto info = classify_backscatter(rec);
  EXPECT_EQ(info.attack_proto, static_cast<std::uint8_t>(IpProto::kIgmp));
  EXPECT_FALSE(info.has_port);
}

}  // namespace
}  // namespace dosm::telescope
