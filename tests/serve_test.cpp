// The query server, bottom to top: HTTP parsing (including the hostile
// byte-flip/truncation property in serialize_fuzz_test style — runs under
// ASan in CI), the byte-bounded LRU result cache, the URL→Query API
// mapping, and the live server over loopback TCP — keep-alive, budgets
// (422), admission control (429), snapshot-swap cache invalidation, the
// 1-vs-8-worker byte-determinism contract, and a multi-client stress run
// against a concurrently publishing SnapshotPublisher (the TSan CI job
// runs this file).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "query/engine.h"
#include "query/snapshot.h"
#include "serve/api.h"
#include "serve/cache.h"
#include "serve/http.h"
#include "serve/json.h"
#include "serve/metrics.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/subscribe_api.h"
#include "sim/scenario.h"
#include "subscribe/dispatcher.h"

namespace dosm::serve {
namespace {

// ---------------------------------------------------------------------------
// HTTP parsing.
// ---------------------------------------------------------------------------

ParseResult parse(std::string_view data) {
  return parse_request(data, HttpLimits{});
}

TEST(HttpParseTest, SimpleGetWithParams) {
  const auto result =
      parse("GET /query?agg=summary&k=5 HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(result.status, ParseStatus::kOk);
  EXPECT_EQ(result.request.method, "GET");
  EXPECT_EQ(result.request.path, "/query");
  ASSERT_EQ(result.request.params.size(), 2u);
  EXPECT_EQ(result.request.params[0].first, "agg");
  EXPECT_EQ(result.request.params[0].second, "summary");
  EXPECT_EQ(*result.request.param("k"), "5");
  EXPECT_TRUE(result.request.keep_alive);
  EXPECT_EQ(result.consumed, 48u);  // the full request, nothing beyond
}

TEST(HttpParseTest, PercentAndFormDecoding) {
  const auto result = parse("GET /qu%65ry?name=a+b%21 HTTP/1.1\r\n\r\n");
  ASSERT_EQ(result.status, ParseStatus::kOk);
  EXPECT_EQ(result.request.path, "/query");
  EXPECT_EQ(*result.request.param("name"), "a b!");  // '+' only in params
}

TEST(HttpParseTest, ConnectionHeaderOverridesVersionDefault) {
  EXPECT_FALSE(parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                   .request.keep_alive);
  EXPECT_FALSE(parse("GET / HTTP/1.0\r\n\r\n").request.keep_alive);
  EXPECT_TRUE(parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                  .request.keep_alive);
}

TEST(HttpParseTest, HeaderNamesAreCaseFolded) {
  const auto result = parse("GET / HTTP/1.1\r\nX-ToKeN: abc\r\n\r\n");
  ASSERT_EQ(result.status, ParseStatus::kOk);
  ASSERT_NE(result.request.header("x-token"), nullptr);
  EXPECT_EQ(*result.request.header("x-token"), "abc");
}

TEST(HttpParseTest, PostBodyAndPipelining) {
  const std::string two =
      "POST /query HTTP/1.1\r\nContent-Length: 7\r\n\r\nagg=abc"
      "GET /healthz HTTP/1.1\r\n\r\n";
  const auto first = parse(two);
  ASSERT_EQ(first.status, ParseStatus::kOk);
  EXPECT_EQ(first.request.body, "agg=abc");
  const auto second = parse(std::string_view(two).substr(first.consumed));
  ASSERT_EQ(second.status, ParseStatus::kOk);
  EXPECT_EQ(second.request.path, "/healthz");
}

TEST(HttpParseTest, IncrementalFeedNeedsMoreUntilComplete) {
  const std::string full =
      "POST /q HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
  for (std::size_t n = 0; n < full.size(); ++n)
    EXPECT_EQ(parse(std::string_view(full).substr(0, n)).status,
              ParseStatus::kNeedMore)
        << "prefix length " << n;
  EXPECT_EQ(parse(full).status, ParseStatus::kOk);
}

TEST(HttpParseTest, MalformedRequestsRejected) {
  EXPECT_EQ(parse("GET /\r\n\r\n").status, ParseStatus::kBadRequest);
  EXPECT_EQ(parse("GET / HTTP/2.0\r\n\r\n").status, ParseStatus::kBadRequest);
  EXPECT_EQ(parse("GET nope HTTP/1.1\r\n\r\n").status,
            ParseStatus::kBadRequest);
  EXPECT_EQ(parse("G{}T / HTTP/1.1\r\n\r\n").status,
            ParseStatus::kBadRequest);
  EXPECT_EQ(parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").status,
            ParseStatus::kBadRequest);
  EXPECT_EQ(parse("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .status,
            ParseStatus::kBadRequest);
  EXPECT_EQ(parse("GET /%zz HTTP/1.1\r\n\r\n").status,
            ParseStatus::kBadRequest);
  EXPECT_EQ(parse("GET / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n").status,
            ParseStatus::kBadRequest);
}

TEST(HttpParseTest, LimitsEnforcedBeforeAllocation) {
  // Hostile Content-Length: rejected from the header alone — the parser
  // must not wait for (or reserve) a body it will never accept.
  const auto huge =
      parse("POST /q HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n");
  EXPECT_EQ(huge.status, ParseStatus::kTooLarge);

  const auto line = parse("GET /" + std::string(8192, 'a') + " HTTP/1.1");
  EXPECT_EQ(line.status, ParseStatus::kTooLarge);

  std::string many = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 100; ++i) {
    many += 'h';
    many += std::to_string(i);
    many += ": v\r\n";
  }
  many += "\r\n";
  EXPECT_EQ(parse(many).status, ParseStatus::kTooLarge);

  // A head that never terminates cannot buffer forever.
  EXPECT_EQ(parse("GET / HTTP/1.1\r\n" + std::string(20000, 'a')).status,
            ParseStatus::kTooLarge);
}

// The serialize_fuzz_test property, ported to request parsing: for ANY
// single-byte flip or truncation of a valid request, parsing either
// succeeds or reports kBadRequest/kTooLarge/kNeedMore — it never crashes,
// never throws, and never over-allocates off hostile lengths (ASan in CI
// turns violations into failures).
void expect_parses_or_rejects(std::string_view data) {
  const ParseResult result = parse_request(data, HttpLimits{});
  if (result.status == ParseStatus::kOk) {
    ASSERT_LE(result.consumed, data.size());
    ASSERT_FALSE(result.request.method.empty());
  }
}

std::vector<std::string> valid_requests() {
  return {
      "GET /query?agg=summary&from=2015-01-01&to=2015-03-01 HTTP/1.1\r\n"
      "Host: dash.example\r\nAccept: application/json\r\n\r\n",
      "POST /query HTTP/1.1\r\nContent-Length: 23\r\n\r\n"
      "agg=top-targets&k=10%21",
      "GET /metrics HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
  };
}

TEST(HttpFuzzTest, SingleByteFlipsNeverCrash) {
  Rng rng(20260808);
  for (const std::string& base : valid_requests()) {
    for (int trial = 0; trial < 400; ++trial) {
      std::string corrupted = base;
      const auto pos = static_cast<std::size_t>(
          rng.next_below(corrupted.size()));
      corrupted[pos] = static_cast<char>(rng.next_below(256));
      expect_parses_or_rejects(corrupted);
    }
  }
}

TEST(HttpFuzzTest, EveryTruncationNeverCrashes) {
  for (const std::string& base : valid_requests())
    for (std::size_t n = 0; n <= base.size(); ++n)
      expect_parses_or_rejects(std::string_view(base).substr(0, n));
}

TEST(HttpFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(4242);
  for (int trial = 0; trial < 400; ++trial) {
    std::string garbage(rng.next_below(512), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.next_below(256));
    expect_parses_or_rejects(garbage);
  }
}

// ---------------------------------------------------------------------------
// JSON writer.
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, CompactNestedOutputWithEscapes) {
  JsonWriter w;
  w.begin_object()
      .key("s")
      .value(std::string_view("a\"b\\c\n\x01"))
      .key("n")
      .value(std::uint64_t{7})
      .key("arr")
      .begin_array()
      .value(1.5)
      .value(true)
      .end_array()
      .end_object();
  EXPECT_EQ(std::move(w).take(),
            "{\"s\":\"a\\\"b\\\\c\\n\\u0001\",\"n\":7,\"arr\":[1.5,true]}");
}

// ---------------------------------------------------------------------------
// Result cache.
// ---------------------------------------------------------------------------

std::shared_ptr<const CachedResponse> entry(std::uint64_t version,
                                            std::string body) {
  auto e = std::make_shared<CachedResponse>();
  e->status = 200;
  e->content_type = "application/json";
  e->body = std::move(body);
  e->snapshot_version = version;
  return e;
}

TEST(ResultCacheTest, MissThenHitThenLruEviction) {
  ResultCache cache(450);  // three ~146-byte entries fit, a fourth evicts
  EXPECT_EQ(cache.get("a"), nullptr);
  cache.put("a", entry(1, "A"));
  cache.put("b", entry(1, "B"));
  cache.put("c", entry(1, "C"));
  ASSERT_NE(cache.get("a"), nullptr);  // refresh "a": "b" is now oldest
  cache.put("d", entry(1, "D"));       // evicts "b"
  EXPECT_EQ(cache.get("b"), nullptr);
  ASSERT_NE(cache.get("a"), nullptr);
  EXPECT_EQ(cache.get("a")->body, "A");
  ASSERT_NE(cache.get("d"), nullptr);
}

TEST(ResultCacheTest, PutRefreshesExistingKeyAndAccounting) {
  ResultCache cache(1 << 16);
  cache.put("k", entry(1, "short"));
  cache.put("k", entry(1, std::string(1000, 'x')));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.get("k")->body.size(), 1000u);
}

TEST(ResultCacheTest, OversizedEntryNeverAdmitted) {
  ResultCache cache(256);
  cache.put("big", entry(1, std::string(10000, 'x')));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.get("big"), nullptr);
}

TEST(ResultCacheTest, ZeroBudgetDisablesCaching) {
  ResultCache cache(0);
  cache.put("k", entry(1, "v"));
  EXPECT_EQ(cache.get("k"), nullptr);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ResultCacheTest, PurgeStaleDropsOldVersionsOnly) {
  ResultCache cache(1 << 16);
  cache.put("v1/a", entry(1, "old"));
  cache.put("v1/b", entry(1, "old"));
  cache.put("v2/a", entry(2, "new"));
  cache.purge_stale(2);
  EXPECT_EQ(cache.get("v1/a"), nullptr);
  EXPECT_EQ(cache.get("v1/b"), nullptr);
  ASSERT_NE(cache.get("v2/a"), nullptr);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ResultCacheTest, PurgeStaleUpdatesResidentGauges) {
  // Gauge-staleness audit note: purge_stale() was already correct — it sets
  // serve.cache.bytes/entries under the same lock as the eviction, as do
  // put() and the LRU eviction loop. This test pins that behavior.
  ResultCache cache(1 << 16);
  cache.put("v1/a", entry(1, "old"));
  cache.put("v1/b", entry(1, "old-too"));
  cache.put("v2/a", entry(2, "new"));
  Metrics& metrics = Metrics::get();
  cache.purge_stale(2);
  EXPECT_EQ(metrics.cache_entries.value(), 1);
  EXPECT_EQ(metrics.cache_bytes.value(),
            static_cast<std::int64_t>(cache.bytes()));
}

TEST(ResultCacheTest, DestructionReleasesResidentGauges) {
  // Regression: a destroyed cache (a stopped Server) used to leave the
  // process-global serve.cache.bytes/entries gauges frozen at its last
  // resident footprint — freed memory reported as resident forever.
  Metrics& metrics = Metrics::get();
  {
    ResultCache cache(1 << 16);
    cache.put("a", entry(1, "alpha"));
    cache.put("b", entry(1, "beta"));
    EXPECT_EQ(metrics.cache_entries.value(), 2);
    EXPECT_GT(metrics.cache_bytes.value(), 0);
  }
  EXPECT_EQ(metrics.cache_entries.value(), 0);
  EXPECT_EQ(metrics.cache_bytes.value(), 0);
}

// ---------------------------------------------------------------------------
// API mapping (no sockets).
// ---------------------------------------------------------------------------

HttpRequest request_for(const std::string& target,
                        const std::string& method = "GET") {
  const std::string raw = method + " " + target + " HTTP/1.1\r\n\r\n";
  const auto parsed = parse(raw);
  EXPECT_EQ(parsed.status, ParseStatus::kOk) << target;
  return parsed.request;
}

/// A route table configured the way the server configures its own (minus
/// /metrics, which the server registers itself).
Router api_router() {
  Router router;
  install_api_routes(router);
  install_subscribe_routes(router);
  return router;
}

TEST(RouterTest, RoutesEndpointsAndMethods) {
  const Router router = api_router();
  const RequestContext context;

  // Known (method, path) pairs resolve to a route.
  for (const auto& [method, target] :
       std::vector<std::pair<std::string, std::string>>{
           {"GET", "/"},
           {"GET", "/healthz"},
           {"GET", "/query"},
           {"POST", "/query"}}) {
    const auto prepared =
        router.prepare(request_for(target, method), context);
    EXPECT_NE(prepared.route, nullptr) << method << " " << target;
  }

  // Unknown paths are final 404s; known paths with wrong methods final 405s.
  EXPECT_EQ(router.prepare(request_for("/nope"), context).route, nullptr);
  EXPECT_EQ(router.prepare(request_for("/nope"), context).response.status,
            404);
  EXPECT_EQ(
      router.prepare(request_for("/query", "DELETE"), context).response.status,
      405);
  EXPECT_EQ(
      router.prepare(request_for("/healthz", "POST"), context).response.status,
      405);

  // Only the query routes are cacheable.
  EXPECT_TRUE(router.prepare(request_for("/query"), context).route->cacheable);
  EXPECT_TRUE(
      router.prepare(request_for("/query", "POST"), context).route->cacheable);
  EXPECT_FALSE(router.prepare(request_for("/"), context).route->cacheable);

  // Parse failures become final 400s without reaching exec.
  const auto bad = router.prepare(request_for("/query?bogus=1"), context);
  EXPECT_EQ(bad.route, nullptr);
  EXPECT_EQ(bad.response.status, 400);
}

TEST(RouterTest, SubscriptionEndpointsRegistered) {
  const Router router = api_router();
  const auto routes = router.routes();
  const auto has = [&routes](std::string_view method, std::string_view path) {
    for (const auto& [m, p] : routes)
      if (m == method && p == path) return true;
    return false;
  };
  EXPECT_TRUE(has("POST", "/subscribe"));
  EXPECT_TRUE(has("DELETE", "/subscribe"));
  EXPECT_TRUE(has("GET", "/watch"));
}

TEST(RouterTest, DuplicateRegistrationThrows) {
  Router router = api_router();
  const auto noop_parse = [](const HttpRequest&, const RequestContext&) {
    return ApiCall{};
  };
  const auto noop_exec = [](const ApiCall&, const RequestContext&) {
    return ApiResponse{};
  };
  EXPECT_THROW(router.add("GET", "/query", noop_parse, noop_exec),
               std::invalid_argument);
  router.add("PUT", "/query", noop_parse, noop_exec);  // new method is fine
}

// Regression: ?asn=1&asn=2 used to apply last-wins silently, so two
// DIFFERENT request strings canonicalized to the same cache-key string and
// aliased one cache entry. Duplicates (across URL and POST body combined)
// are now rejected outright.
TEST(ApiTest, RejectsDuplicateParameters) {
  const StudyWindow window;
  const auto dup = parse_query_request(request_for("/query?asn=1&asn=2"),
                                       window);
  EXPECT_EQ(dup.error, "duplicate parameter: asn");

  // Time keys are tracked too, not just the apply_param ones.
  EXPECT_EQ(parse_query_request(
                request_for("/query?from=2015-01-01&from=2015-01-02"), window)
                .error,
            "duplicate parameter: from");

  // A key in the URL and again in the POST body is the same aliasing hazard.
  const std::string raw =
      "POST /query?k=5 HTTP/1.1\r\nContent-Length: 3\r\n\r\nk=9";
  const auto parsed = parse(raw);
  ASSERT_EQ(parsed.status, ParseStatus::kOk);
  EXPECT_EQ(parse_query_request(parsed.request, window).error,
            "duplicate parameter: k");

  // The first occurrence alone stays valid.
  EXPECT_TRUE(
      parse_query_request(request_for("/query?asn=1"), window).error.empty());
}

TEST(ApiTest, MapsEveryFilterParameter) {
  const StudyWindow window;  // paper defaults; explicit from/to win anyway
  const auto call = parse_query_request(
      request_for("/query?from=2015-02-01&to=2015-02-07&source=telescope"
                  "&prefix=10.0.0.0/8&asn=65000&country=DE&port=80"
                  "&min_intensity=1.5&agg=top-targets&k=25&explain=1"),
      window);
  ASSERT_TRUE(call.error.empty()) << call.error;
  const query::Query& q = call.query;
  ASSERT_TRUE(q.time.has_value());
  EXPECT_EQ(q.time->begin,
            static_cast<double>(unix_from_civil({2015, 2, 1})));
  EXPECT_EQ(q.time->end, static_cast<double>(unix_from_civil({2015, 2, 7}) +
                                             kSecondsPerDay));
  EXPECT_EQ(q.source, core::SourceFilter::kTelescope);
  ASSERT_TRUE(q.prefix.has_value());
  EXPECT_EQ(q.prefix->to_string(), "10.0.0.0/8");
  EXPECT_EQ(q.asn, meta::Asn{65000});
  ASSERT_TRUE(q.country.has_value());
  EXPECT_EQ(q.country->to_string(), "DE");
  EXPECT_EQ(q.port, std::uint16_t{80});
  EXPECT_EQ(q.min_intensity, 1.5);
  EXPECT_EQ(call.agg, "top-targets");
  EXPECT_EQ(call.k, 25u);
  EXPECT_TRUE(call.explain);
  EXPECT_FALSE(call.canonical.empty());
}

TEST(ApiTest, RejectsMalformedParameters) {
  const StudyWindow window;
  for (const std::string target :
       {"/query?from=2015-13-01", "/query?asn=abc", "/query?asn=-1",
        "/query?port=70000", "/query?country=DEU", "/query?prefix=10.0.0.0/33",
        "/query?min_intensity=x", "/query?agg=median", "/query?k=0",
        "/query?k=9999999", "/query?explain=maybe", "/query?bogus=1",
        "/query?from=2015-01-01&t0=5"}) {
    const auto call = parse_query_request(request_for(target), window);
    EXPECT_FALSE(call.error.empty()) << target;
  }
}

TEST(ApiTest, CanonicalStringDistinguishesEveryParameter) {
  const StudyWindow window;
  const std::vector<std::string> targets = {
      "/query", "/query?agg=daily", "/query?k=11", "/query?explain=1",
      "/query?from=2015-02-01", "/query?t0=100&t1=200",
      "/query?source=honeypot", "/query?prefix=10.0.0.0/8",
      "/query?prefix=10.0.0.0/9", "/query?asn=1", "/query?country=US",
      "/query?port=80", "/query?min_intensity=2"};
  std::vector<std::string> canonicals;
  for (const auto& target : targets) {
    const auto call = parse_query_request(request_for(target), window);
    ASSERT_TRUE(call.error.empty()) << target << ": " << call.error;
    canonicals.push_back(call.canonical);
  }
  for (std::size_t i = 0; i < canonicals.size(); ++i)
    for (std::size_t j = i + 1; j < canonicals.size(); ++j)
      EXPECT_NE(canonicals[i], canonicals[j])
          << targets[i] << " vs " << targets[j];
}

// ---------------------------------------------------------------------------
// Live server over loopback TCP.
// ---------------------------------------------------------------------------

/// The world/engine every socket test shares (built once per process).
query::QueryEngine& shared_engine() {
  static query::QueryEngine* engine = [] {
    const auto world = sim::build_world(sim::ScenarioConfig::small());
    auto* e = new query::QueryEngine();
    e->publish(query::Snapshot::from_store(
        world->store,
        query::BuildContext{world->population.pfx2as(),
                            world->population.geo()},
        1));
    return e;
  }();
  return *engine;
}

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads exactly one full HTTP response (headers + Content-Length body).
std::string read_response(int fd) {
  std::string response;
  char chunk[4096];
  std::size_t need = std::string::npos;
  for (;;) {
    if (need == std::string::npos) {
      const std::size_t head_end = response.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        const std::size_t field = response.find("Content-Length: ");
        if (field == std::string::npos || field > head_end) return response;
        std::size_t length = 0;
        std::from_chars(response.data() + field + 16,
                        response.data() + head_end, length);
        need = head_end + 4 + length;
      }
    }
    if (need != std::string::npos && response.size() >= need)
      return response.substr(0, need);
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return response;  // closed early — caller asserts on content
    response.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string fetch(int fd, const std::string& target) {
  send_all(fd, "GET " + target + " HTTP/1.1\r\n\r\n");
  return read_response(fd);
}

int status_of(const std::string& response) {
  int status = 0;
  std::from_chars(response.data() + 9, response.data() + 12, status);
  return status;
}

std::string body_of(const std::string& response) {
  const std::size_t head_end = response.find("\r\n\r\n");
  return head_end == std::string::npos ? "" : response.substr(head_end + 4);
}

TEST(ServerTest, ServesEndpointsOverRealSockets) {
  ServerConfig config;
  config.workers = 2;
  const Server server(config, shared_engine());
  const int fd = connect_to(server.port());

  const std::string health = fetch(fd, "/healthz");
  EXPECT_EQ(status_of(health), 200);
  EXPECT_NE(body_of(health).find("\"snapshot_version\":1"), std::string::npos);

  // Keep-alive: the same connection answers a second request.
  const std::string summary = fetch(fd, "/query?agg=summary");
  EXPECT_EQ(status_of(summary), 200);
  EXPECT_NE(body_of(summary).find("\"events\":"), std::string::npos);

  EXPECT_EQ(status_of(fetch(fd, "/nope")), 404);
  EXPECT_EQ(status_of(fetch(fd, "/query?bogus=1")), 400);
  EXPECT_EQ(status_of(fetch(fd, "/metrics")), 200);

  send_all(fd, "FLAGRANTLY NOT HTTP\r\n\r\n");
  EXPECT_EQ(status_of(read_response(fd)), 400);  // then the server closes
  ::close(fd);
}

TEST(ServerTest, RowBudgetSurfacesAs422) {
  ServerConfig config;
  config.workers = 1;
  config.max_rows = 5;  // the small world has far more matching rows
  const Server server(config, shared_engine());
  const int fd = connect_to(server.port());
  const std::string response = fetch(fd, "/query?agg=summary");
  EXPECT_EQ(status_of(response), 422);
  EXPECT_NE(body_of(response).find("row budget"), std::string::npos);
  ::close(fd);
}

TEST(ServerTest, SaturatedQueueAnswers429) {
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  const Server server(config, shared_engine());

  // Occupy the single worker with an idle connection, fill the 1-slot
  // queue with a second, then a third must be bounced by the acceptor.
  const int busy = connect_to(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const int queued = connect_to(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::uint64_t rejected_before = Metrics::get().admission_rejected.value();
  const int bounced = connect_to(server.port());
  const std::string response = read_response(bounced);
  EXPECT_EQ(status_of(response), 429);
  EXPECT_NE(response.find("Retry-After"), std::string::npos);
  EXPECT_GT(Metrics::get().admission_rejected.value(), rejected_before);
  ::close(bounced);
  ::close(queued);
  ::close(busy);
}

TEST(ServerTest, RejectedPipelinedClientStillReceivesThe429) {
  // Regression: the acceptor's reject path used plain close(). A client
  // that had already pipelined requests the server never read made the
  // kernel answer the unread bytes with RST — and RST discards the peer's
  // receive queue, so the 429 evaporated before the client could read it.
  // The lingering close (shutdown + bounded drain) must keep the response
  // deliverable.
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  const Server server(config, shared_engine());

  const int busy = connect_to(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const int queued = connect_to(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // A burst of bounced clients, each pipelining two requests in one
  // segment at connect time. The acceptor serializes rejects, so for every
  // connection after the first the pipelined bytes are guaranteed to be in
  // the server's receive queue by the time its reject path closes — the
  // exact shape where close() answered with RST.
  constexpr int kBurst = 48;  // enough trials that the pre-fix RST race
                              // cannot slip through a full run
  int bounced[kBurst];
  for (int i = 0; i < kBurst; ++i) {
    bounced[i] = connect_to(server.port());
    send_all(bounced[i],
             "GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n");
  }
  for (int i = 0; i < kBurst; ++i) {
    const std::string response = read_response(bounced[i]);
    EXPECT_EQ(status_of(response), 429) << "connection " << i << "\n"
                                        << response;
    EXPECT_NE(response.find("saturated"), std::string::npos)
        << "connection " << i;
    // The stream must end in a clean FIN. Pre-fix the unread pipelined
    // bytes made close() emit RST, which surfaces here as ECONNRESET — and
    // on stacks that flush the receive queue on RST, as a lost 429 above.
    char tail[64];
    const ssize_t eof = ::recv(bounced[i], tail, sizeof(tail), 0);
    EXPECT_EQ(eof, 0) << "connection " << i << ": "
                      << (eof < 0 ? std::strerror(errno) : "trailing bytes");
    ::close(bounced[i]);
  }
  ::close(queued);
  ::close(busy);
}

TEST(ServerTest, QueryWithoutSnapshotAnswers503) {
  query::QueryEngine empty_engine;
  ServerConfig config;
  config.workers = 1;
  const Server server(config, empty_engine);
  const int fd = connect_to(server.port());
  EXPECT_EQ(status_of(fetch(fd, "/query?agg=summary")), 503);
  EXPECT_EQ(status_of(fetch(fd, "/healthz")), 503);
  ::close(fd);
}

// The determinism contract: byte-identical responses for the same query +
// snapshot version regardless of worker count and cache state. One server
// runs 1 worker with the cache disabled, the other 8 workers with the
// cache on; every response — cold and cached — must match byte-for-byte.
TEST(ServerTest, ResponsesAreByteIdenticalAcrossWorkersAndCache) {
  ServerConfig plain;
  plain.workers = 1;
  plain.cache_bytes = 0;
  const Server server_plain(plain, shared_engine());
  ServerConfig cached;
  cached.workers = 8;
  const Server server_cached(cached, shared_engine());

  const int fd_plain = connect_to(server_plain.port());
  const int fd_cached = connect_to(server_cached.port());
  for (const std::string target :
       {"/query?agg=summary", "/query?agg=daily",
        "/query?agg=top-targets&k=7", "/query?agg=top-asns&k=7",
        "/query?agg=top-countries&k=7", "/query?agg=events&k=5&explain=1",
        "/query?agg=summary&source=honeypot",
        "/query?agg=summary&min_intensity=0.5"}) {
    const std::string reference = fetch(fd_plain, target);
    const std::string cold = fetch(fd_cached, target);
    const std::string warm = fetch(fd_cached, target);
    EXPECT_EQ(reference, cold) << target;
    EXPECT_EQ(reference, warm) << target << " (cached)";
  }
  ::close(fd_plain);
  ::close(fd_cached);
}

TEST(ServerTest, SnapshotSwapInvalidatesCachedResults) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const query::BuildContext ctx{world->population.pfx2as(),
                                world->population.geo()};
  query::QueryEngine engine;
  engine.publish(query::Snapshot::from_store(world->store, ctx, 1));

  ServerConfig config;
  config.workers = 2;
  const Server server(config, engine);
  const int fd = connect_to(server.port());

  const std::string v1 = fetch(fd, "/query?agg=summary");
  EXPECT_NE(body_of(v1).find("\"snapshot_version\":1"), std::string::npos);
  fetch(fd, "/query?agg=summary");  // now served from cache

  engine.publish(query::Snapshot::from_store(world->store, ctx, 2));
  const std::string v2 = fetch(fd, "/query?agg=summary");
  // The version-keyed cache cannot serve the stale body.
  EXPECT_NE(body_of(v2).find("\"snapshot_version\":2"), std::string::npos);
  EXPECT_GT(server.cache().entries(), 0u);
  ::close(fd);
}

// Multi-client stress against a live publisher: N client threads hammer a
// mixed cached/uncached query load while SnapshotPublisher seals and
// publishes day after day into the same engine. Run under TSan in CI; the
// assertions here are liveness + validity (every response parses, status
// is 200, body names SOME published version).
TEST(ServeStressTest, ConcurrentClientsDuringPublishes) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const query::BuildContext ctx{world->population.pfx2as(),
                                world->population.geo()};
  query::QueryEngine engine;
  ServerConfig config;
  config.workers = 4;
  config.queue_capacity = 64;
  const Server server(config, engine);

  std::thread publisher_thread([&] {
    query::SnapshotPublisher publisher(engine, world->window, ctx);
    for (const auto& event : world->store.events()) publisher.ingest(event);
    publisher.finish();
  });
  // Clients only assert 200s, so wait for the first published day.
  while (engine.snapshot() == nullptr)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 150;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<std::string> mix = {
          "/query?agg=summary",                        // cacheable
          "/query?agg=top-countries&k=5",              // cacheable
          "/query?agg=top-targets&k=" + std::to_string(2 + c),  // per-client
          "/healthz",
      };
      const int fd = connect_to(server.port());
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::string response = fetch(fd, mix[i % mix.size()]);
        if (status_of(response) != 200 ||
            body_of(response).find("\"snapshot_version\":") ==
                std::string::npos)
          failures.fetch_add(1);
      }
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  publisher_thread.join();
  EXPECT_EQ(failures.load(), 0);

  // After the final publish, the engine serves the full world.
  const int fd = connect_to(server.port());
  const std::string final_summary = fetch(fd, "/query?agg=summary");
  EXPECT_EQ(status_of(final_summary), 200);
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Subscription endpoints over real sockets.
// ---------------------------------------------------------------------------

/// One request with an explicit method and optional form body, on its own
/// connection.
std::string roundtrip(std::uint16_t port, const std::string& method,
                      const std::string& target, const std::string& body = "") {
  const int fd = connect_to(port);
  std::string raw = method + " " + target + " HTTP/1.1\r\n";
  raw += "Connection: close\r\n";
  if (!body.empty())
    raw += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  raw += "\r\n";
  raw += body;
  send_all(fd, raw);
  const std::string response = read_response(fd);
  ::close(fd);
  return response;
}

/// Pulls the subscription id out of a /subscribe response body.
std::uint64_t subscription_id(const std::string& response) {
  const std::string body = body_of(response);
  const std::size_t at = body.find("\"subscription\":");
  EXPECT_NE(at, std::string::npos) << body;
  std::uint64_t id = 0;
  std::from_chars(body.data() + at + 15, body.data() + body.size(), id);
  return id;
}

core::AttackEvent event_on(std::string_view target, double start) {
  core::AttackEvent event;
  event.target = net::Ipv4Addr::parse(target);
  event.start = start;
  event.end = start + 60.0;
  event.intensity = 100.0;
  event.ip_proto = 6;
  event.top_port = 80;
  return event;
}

TEST(SubscribeServerTest, SubscribeWatchUnsubscribeLifecycle) {
  subscribe::Dispatcher dispatcher;
  ServerConfig config;
  config.workers = 2;
  const Server server(config, shared_engine(), &dispatcher);

  const std::string created =
      roundtrip(server.port(), "POST", "/subscribe?prefix=10.1.2.3/32");
  ASSERT_EQ(status_of(created), 200) << created;
  EXPECT_NE(body_of(created).find("\"predicate\":\"pfx=10.1.2.3/32\""),
            std::string::npos);
  const std::uint64_t id = subscription_id(created);
  ASSERT_GT(id, 0u);

  // A matching and a non-matching event, flushed by one tick.
  dispatcher.ingest(event_on("10.1.2.3", 1000.0));
  dispatcher.ingest(event_on("192.0.2.9", 1000.0));
  dispatcher.tick();

  const std::string target =
      "/watch?id=" + std::to_string(id) + "&cursor=0";
  const std::string watch = roundtrip(server.port(), "GET", target);
  ASSERT_EQ(status_of(watch), 200) << watch;
  const std::string body = body_of(watch);
  EXPECT_NE(body.find("\"target\":\"10.1.2.3\""), std::string::npos) << body;
  EXPECT_EQ(body.find("192.0.2.9"), std::string::npos) << body;
  EXPECT_NE(body.find("\"next_cursor\":1"), std::string::npos) << body;

  // Cursor replay is byte-deterministic — and identical across a second
  // server with a different worker count sharing the dispatcher.
  EXPECT_EQ(watch, roundtrip(server.port(), "GET", target));
  ServerConfig other;
  other.workers = 8;
  const Server server8(other, shared_engine(), &dispatcher);
  EXPECT_EQ(watch, roundtrip(server8.port(), "GET", target));

  // Past the cursor there is nothing new.
  const std::string drained = roundtrip(
      server.port(), "GET", "/watch?id=" + std::to_string(id) + "&cursor=1");
  EXPECT_NE(body_of(drained).find("\"notifications\":[]"), std::string::npos);

  const std::string removed = roundtrip(server.port(), "DELETE",
                                        "/subscribe?id=" + std::to_string(id));
  EXPECT_EQ(status_of(removed), 200);
  EXPECT_NE(body_of(removed).find("\"removed\":true"), std::string::npos);
  EXPECT_EQ(status_of(roundtrip(server.port(), "GET", target)), 404);
  EXPECT_EQ(status_of(roundtrip(server.port(), "DELETE",
                                "/subscribe?id=" + std::to_string(id))),
            404);
}

TEST(SubscribeServerTest, LongPollWakesOnTick) {
  subscribe::Dispatcher dispatcher;
  ServerConfig config;
  config.workers = 2;
  const Server server(config, shared_engine(), &dispatcher);

  const std::uint64_t id = subscription_id(
      roundtrip(server.port(), "POST", "/subscribe?kind=new-attack"));
  ASSERT_GT(id, 0u);

  std::string watched;
  std::thread poller([&] {
    watched = roundtrip(
        server.port(), "GET",
        "/watch?id=" + std::to_string(id) + "&cursor=0&wait_ms=10000");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  dispatcher.ingest(event_on("203.0.113.7", 5000.0));
  dispatcher.tick();
  poller.join();
  ASSERT_EQ(status_of(watched), 200) << watched;
  EXPECT_NE(body_of(watched).find("\"target\":\"203.0.113.7\""),
            std::string::npos)
      << watched;
}

TEST(SubscribeServerTest, ValidationAndDisabledPaths) {
  subscribe::Dispatcher dispatcher;
  ServerConfig config;
  config.workers = 1;
  const Server with(config, shared_engine(), &dispatcher);
  EXPECT_EQ(status_of(roundtrip(with.port(), "POST", "/subscribe?kind=nope")),
            400);
  EXPECT_EQ(status_of(roundtrip(with.port(), "POST",
                                "/subscribe?prefix=10.0.0.1/32&prefix=10.0.0.2/32")),
            400);
  EXPECT_EQ(status_of(roundtrip(with.port(), "GET", "/watch")), 400);
  EXPECT_EQ(status_of(roundtrip(with.port(), "GET", "/watch?id=0")), 400);
  EXPECT_EQ(status_of(roundtrip(with.port(), "GET", "/watch?id=999")), 404);
  // Form-body predicates parse the same as URL ones.
  const std::string via_body =
      roundtrip(with.port(), "POST", "/subscribe", "asn=65000&kind=new-attack");
  ASSERT_EQ(status_of(via_body), 200) << via_body;
  EXPECT_NE(body_of(via_body).find("\"predicate\":\"asn=65000;kind=new-attack\""),
            std::string::npos)
      << via_body;

  const Server without(config, shared_engine());
  for (const auto& [method, target] :
       std::vector<std::pair<std::string, std::string>>{
           {"POST", "/subscribe"},
           {"DELETE", "/subscribe?id=1"},
           {"GET", "/watch?id=1"}}) {
    const std::string response = roundtrip(without.port(), method, target);
    EXPECT_EQ(status_of(response), 503) << method << " " << target;
    EXPECT_NE(body_of(response).find("subscriptions disabled"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace dosm::serve
