// Concurrency stress for the ingest SPSC ring, meant to run under TSan
// (DOSMETER_SANITIZE=thread in CI). A capacity-2 ring forces both the
// producer-full and consumer-empty wait paths; assertions check strict FIFO
// order and zero loss. A second test drives the full run_ingest pipeline so
// TSan sees the real capture-thread / consumer-thread interleaving.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ingest/pipeline.h"
#include "ingest/ring.h"
#include "net/pcap.h"

namespace dosm::ingest {
namespace {

TEST(IngestStress, BlockingRingIsFifoAndLossless) {
  constexpr std::uint64_t kItems = 200000;
  // Capacity 2 keeps the ring perpetually near-full and near-empty, so both
  // sides exercise their atomic wait/notify paths constantly.
  SpscRing<std::uint64_t> ring(2);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      std::uint64_t v = i;
      ring.push(v);
    }
    ring.close();
  });

  std::uint64_t expected = 0;
  std::uint64_t out = 0;
  while (ring.pop(out)) {
    ASSERT_EQ(out, expected) << "FIFO order violated";
    ++expected;
  }
  producer.join();

  EXPECT_EQ(expected, kItems) << "items lost or duplicated";
  EXPECT_EQ(ring.stats().pushed.load(), kItems);
  EXPECT_EQ(ring.stats().popped.load(), kItems);
}

TEST(IngestStress, TryApiInterleavesWithBlockingSide) {
  constexpr std::uint64_t kItems = 100000;
  SpscRing<std::uint64_t> ring(4);

  // Producer spins on try_push (drop-policy shape, but retrying instead of
  // dropping so the checksum must balance); consumer blocks on pop.
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      std::uint64_t v = i;
      while (!ring.try_push(v)) std::this_thread::yield();
    }
    ring.close();
  });

  std::uint64_t sum = 0;
  std::uint64_t count = 0;
  std::uint64_t out = 0;
  while (ring.pop(out)) {
    sum += out;
    ++count;
  }
  producer.join();

  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
}

TEST(IngestStress, RunIngestUnderContention) {
  // End-to-end: capture thread slices batches and pushes through a tiny
  // ring while this thread decodes. TSan validates the handoff; the counts
  // validate that no batch was lost or reordered.
  std::ostringstream out(std::ios::binary);
  net::PcapWriter writer(out);
  constexpr int kPackets = 20000;
  for (int i = 0; i < kPackets; ++i) {
    net::PacketRecord rec;
    rec.ts_sec = 1425168000 + i / 100;
    rec.ts_usec = static_cast<std::uint32_t>(i % 100) * 10000;
    rec.src = net::Ipv4Addr(0x0a000000u + static_cast<std::uint32_t>(i % 500));
    rec.dst = net::Ipv4Addr(0x2c000000u + static_cast<std::uint32_t>(i));
    rec.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
    rec.src_port = 80;
    rec.dst_port = static_cast<std::uint16_t>(1024 + (i % 60000));
    rec.tcp_flags = net::tcp_flags::kSyn | net::tcp_flags::kAck;
    writer.write_packet(rec);
  }
  const std::string pcap = out.str();

  IngestOptions options;
  options.batch_frames = 8;
  options.ring_capacity = 2;
  options.read_chunk_bytes = 4096;
  std::istringstream in(pcap, std::ios::binary);
  std::uint64_t seen = 0;
  UnixSeconds last_ts = 0;
  const auto stats =
      ingest::run_ingest(in, options, [&](const net::PacketRecord& rec) {
        ASSERT_GE(rec.ts_sec, last_ts) << "packets reordered";
        last_ts = rec.ts_sec;
        ++seen;
      });
  EXPECT_EQ(seen, static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(stats.packets, static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(stats.dropped_batches, 0u);
}

}  // namespace
}  // namespace dosm::ingest
