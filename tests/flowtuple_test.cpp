// FlowTuple plugin tests: interval alignment, tuple keying, top-N ranking.
#include <gtest/gtest.h>

#include "telescope/flowtuple.h"
#include "telescope/synthesizer.h"

namespace dosm::telescope {
namespace {

using net::Ipv4Addr;
using net::IpProto;

net::PacketRecord packet(UnixSeconds ts, Ipv4Addr src, std::uint16_t sport) {
  net::PacketRecord rec;
  rec.ts_sec = ts;
  rec.src = src;
  rec.dst = Ipv4Addr(44, 0, 0, 1);
  rec.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  rec.src_port = sport;
  rec.dst_port = 5555;
  rec.tcp_flags = net::tcp_flags::kSyn | net::tcp_flags::kAck;
  rec.ip_len = 40;
  rec.ttl = 60;
  return rec;
}

TEST(FlowTuple, AggregatesIdenticalTuples) {
  FlowTuplePlugin plugin;
  for (int i = 0; i < 10; ++i)
    plugin.on_packet(packet(100 + i, Ipv4Addr(1, 1, 1, 1), 80));
  plugin.on_end();
  ASSERT_EQ(plugin.intervals().size(), 1u);
  const auto& interval = plugin.intervals()[0];
  EXPECT_EQ(interval.packets, 10u);
  EXPECT_EQ(interval.unique_tuples, 1u);
  EXPECT_EQ(interval.unique_sources, 1u);
  ASSERT_EQ(interval.top_tuples.size(), 1u);
  EXPECT_EQ(interval.top_tuples[0].second, 10u);
  EXPECT_EQ(interval.start, 60);  // aligned down to the minute
}

TEST(FlowTuple, DistinctFieldsCreateDistinctTuples) {
  FlowTuplePlugin plugin;
  auto base = packet(10, Ipv4Addr(1, 1, 1, 1), 80);
  plugin.on_packet(base);
  auto other_port = base;
  other_port.src_port = 443;
  plugin.on_packet(other_port);
  auto other_ttl = base;
  other_ttl.ttl = 61;
  plugin.on_packet(other_ttl);
  auto other_len = base;
  other_len.ip_len = 41;
  plugin.on_packet(other_len);
  plugin.on_end();
  ASSERT_EQ(plugin.intervals().size(), 1u);
  EXPECT_EQ(plugin.intervals()[0].unique_tuples, 4u);
  EXPECT_EQ(plugin.intervals()[0].unique_sources, 1u);
}

TEST(FlowTuple, IntervalBoundariesAreAligned) {
  std::vector<FlowTupleInterval> delivered;
  FlowTuplePlugin plugin(
      [&](const FlowTupleInterval& i) { delivered.push_back(i); });
  plugin.on_packet(packet(59, Ipv4Addr(1, 1, 1, 1), 80));   // interval [0,60)
  plugin.on_packet(packet(60, Ipv4Addr(1, 1, 1, 1), 80));   // interval [60,120)
  plugin.on_packet(packet(119, Ipv4Addr(1, 1, 1, 1), 80));
  plugin.on_packet(packet(300, Ipv4Addr(1, 1, 1, 1), 80));  // interval [300,360)
  plugin.on_end();
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0].start, 0);
  EXPECT_EQ(delivered[0].packets, 1u);
  EXPECT_EQ(delivered[1].start, 60);
  EXPECT_EQ(delivered[1].packets, 2u);
  EXPECT_EQ(delivered[2].start, 300);
  EXPECT_EQ(plugin.total_packets(), 4u);
}

TEST(FlowTuple, TopNRankingIsDescendingAndBounded) {
  FlowTuplePlugin plugin({}, 60, 3);
  for (int s = 0; s < 8; ++s) {
    for (int i = 0; i <= s; ++i)
      plugin.on_packet(packet(10, Ipv4Addr(1, 1, 1, static_cast<std::uint8_t>(s)),
                              80));
  }
  plugin.on_end();
  const auto& top = plugin.intervals()[0].top_tuples;
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].second, 8u);
  EXPECT_EQ(top[1].second, 7u);
  EXPECT_EQ(top[2].second, 6u);
}

TEST(FlowTuple, CustomIntervalLength) {
  FlowTuplePlugin plugin({}, 3600);
  plugin.on_packet(packet(100, Ipv4Addr(1, 1, 1, 1), 80));
  plugin.on_packet(packet(3599, Ipv4Addr(1, 1, 1, 1), 80));
  plugin.on_packet(packet(3600, Ipv4Addr(1, 1, 1, 1), 80));
  plugin.on_end();
  ASSERT_EQ(plugin.intervals().size(), 2u);
  EXPECT_EQ(plugin.intervals()[0].packets, 2u);
}

TEST(FlowTuple, RunsAlongsideRsdosOnSynthesizedTraffic) {
  TelescopeSynthesizer synthesizer(11);
  SpoofedAttackSpec spec;
  spec.victim = Ipv4Addr(9, 9, 9, 9);
  spec.start = 0.0;
  spec.duration_s = 600.0;
  spec.victim_pps = 51200.0;
  spec.ports = {80};
  const auto packets = synthesizer.synthesize(
      {&spec, 1}, 0.0, 600.0, {.scan_pps = 20.0});
  Pipeline pipeline;
  auto& rsdos = pipeline.emplace_plugin<RsdosPlugin>();
  auto& flowtuple = pipeline.emplace_plugin<FlowTuplePlugin>();
  pipeline.replay(packets);
  pipeline.finish();
  EXPECT_EQ(rsdos.events().size(), 1u);
  EXPECT_EQ(flowtuple.total_packets(), packets.size());
  ASSERT_GE(flowtuple.intervals().size(), 9u);  // ten minutes of traffic
  // Randomly-spoofed backscatter sprays over telescope destinations and
  // ephemeral ports, so its flowtuple cardinality is near the packet count —
  // the spoofing signature that motivates a dedicated RS-DoS plugin.
  std::uint64_t total_tuples = 0, total_packets = 0;
  for (const auto& interval : flowtuple.intervals()) {
    total_tuples += interval.unique_tuples;
    total_packets += interval.packets;
    // The victim is essentially the only source in busy intervals (scan
    // noise adds a few unique sources per minute at 20 pps).
    if (interval.packets > 1000) {
      EXPECT_LT(interval.unique_sources, 2000u);
    }
  }
  EXPECT_GT(static_cast<double>(total_tuples),
            0.9 * static_cast<double>(total_packets));
}

// Regression: the top-N ranking used a count-only comparator, so tuples
// tied at the keep-boundary survived or dropped by the hash order of the
// tuples_ map. The comparator must be a total order (count desc, then key
// fields asc) so the kept prefix is deterministic.
TEST(FlowTuple, TopNTieAtBoundaryKeepsSmallestTuples) {
  FlowTuplePlugin plugin({}, /*interval_s=*/60, /*top_n=*/3);
  // Eight tuples, all with the same packet count, differing only in source
  // port. Only the three smallest keys may survive the cut.
  const std::uint16_t sports[] = {4400, 1100, 3300, 2200,
                                  8800, 5500, 7700, 6600};
  for (std::uint16_t sport : sports)
    for (int i = 0; i < 3; ++i)
      plugin.on_packet(packet(100 + i, Ipv4Addr(1, 1, 1, 1), sport));
  plugin.on_end();
  ASSERT_EQ(plugin.intervals().size(), 1u);
  const auto& top = plugin.intervals()[0].top_tuples;
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first.src_port, 1100);
  EXPECT_EQ(top[1].first.src_port, 2200);
  EXPECT_EQ(top[2].first.src_port, 3300);
}

}  // namespace
}  // namespace dosm::telescope
