// Serving-layer concurrency: many reader threads query while a publisher
// swaps in new snapshots at day boundaries. Run under
// DOSMETER_SANITIZE=thread (tools/check.sh tsan) this proves readers never
// block on the publisher and never observe torn state: every snapshot a
// reader holds stays internally consistent no matter how many publishes
// happen concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "query/engine.h"
#include "query/snapshot.h"
#include "sim/scenario.h"

namespace dosm::query {
namespace {

TEST(QueryEngineTest, PublishRequiresIncreasingVersions) {
  StudyWindow window;
  meta::PrefixToAsMap pfx2as;
  meta::GeoDatabase geo;
  QueryEngine engine;
  EXPECT_EQ(engine.snapshot(), nullptr);
  EXPECT_THROW(engine.publish(nullptr), std::invalid_argument);

  const BuildContext ctx{pfx2as, geo};
  engine.publish(Snapshot::build(window, {}, ctx, 1));
  ASSERT_NE(engine.snapshot(), nullptr);
  EXPECT_EQ(engine.snapshot()->version(), 1u);
  EXPECT_THROW(engine.publish(Snapshot::build(window, {}, ctx, 1)),
               std::invalid_argument);
  engine.publish(Snapshot::build(window, {}, ctx, 2));
  EXPECT_EQ(engine.snapshot()->version(), 2u);
  EXPECT_EQ(engine.publishes(), 2u);
}

TEST(QueryEngineTest, PublisherEmitsOneSnapshotPerCompletedDay) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  QueryEngine engine;
  SnapshotPublisher publisher(
      engine, world->window,
      BuildContext{world->population.pfx2as(), world->population.geo()});
  for (const auto& event : world->store.events()) publisher.ingest(event);
  publisher.finish();

  EXPECT_EQ(publisher.events_ingested(), world->store.size());
  EXPECT_GE(publisher.snapshots_published(), 2u);
  const auto snap = engine.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->size(), world->store.size());
  EXPECT_EQ(snap->version(), publisher.snapshots_published());
}

TEST(QueryConcurrencyTest, ReadersNeverBlockOrSeeTornState) {
  const auto world = sim::build_world(sim::ScenarioConfig::small());
  const auto& pfx2as = world->population.pfx2as();
  const auto& geo = world->population.geo();

  QueryEngine engine;
  // Seed with an empty snapshot so readers always have something to query.
  engine.publish(Snapshot::build(world->window, {}, BuildContext{pfx2as, geo}, 0));

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};

  const auto reader = [&](std::uint64_t seed) {
    Rng rng(seed);
    std::uint64_t last_version = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = engine.snapshot();
      ASSERT_NE(snap, nullptr);
      // Versions move forward only.
      ASSERT_GE(snap->version(), last_version);
      last_version = snap->version();

      // Internal consistency of whatever snapshot we hold: the unfiltered
      // count equals the frame size, per-source counts partition it, and
      // unique targets can never exceed events.
      const std::uint64_t total = snap->count(Query{});
      ASSERT_EQ(total, snap->size());
      Query telescope;
      telescope.from_source(core::SourceFilter::kTelescope);
      Query honeypot;
      honeypot.from_source(core::SourceFilter::kHoneypot);
      ASSERT_EQ(snap->count(telescope) + snap->count(honeypot), total);
      ASSERT_LE(snap->unique_targets(Query{}), total);

      // A random indexed query agrees with a full-scan variant of itself
      // (min_intensity alone cannot use an index).
      Query indexed;
      indexed.in_asn(static_cast<meta::Asn>(rng.next_below(64)));
      const std::uint64_t via_index = snap->count(indexed);
      Query scan = indexed;
      scan.at_least(0.0);  // adds a predicate no index covers
      ASSERT_EQ(snap->count(scan), via_index);

      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> readers;
  readers.reserve(4);
  for (std::uint64_t t = 0; t < 4; ++t)
    readers.emplace_back(reader, 0xabc0 + t);

  // Publisher: replay the fused event stream, publishing at day boundaries.
  SnapshotPublisher publisher(engine, world->window, BuildContext{pfx2as, geo});
  std::thread writer([&] {
    for (const auto& event : world->store.events()) publisher.ingest(event);
    publisher.finish();
    done.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_GE(publisher.snapshots_published(), 2u);
  EXPECT_GT(reads.load(), 0u);
  const auto final_snap = engine.snapshot();
  ASSERT_NE(final_snap, nullptr);
  EXPECT_EQ(final_snap->size(), world->store.size());
}

}  // namespace
}  // namespace dosm::query
