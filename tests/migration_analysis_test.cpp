// Migration-determinant analysis tests (Figures 9-11, Table 9).
#include <gtest/gtest.h>

#include "core/migration_analysis.h"
#include "dps/classifier.h"

namespace dosm::core {
namespace {

using net::Ipv4Addr;

class MigrationAnalysisTest : public ::testing::Test {
 protected:
  MigrationAnalysisTest()
      : t0_(static_cast<double>(window_.start_time())),
        dns_(window_.num_days()),
        registry_(dps::paper_providers()),
        classifier_(registry_, names_) {}

  dns::DomainId make_site(const std::string& name, Ipv4Addr ip) {
    const auto id = dns_.add_domain(name, 0);
    dns::WebsiteRecord record;
    record.www_a = ip;
    dns_.record_change(id, 0, record);
    return id;
  }

  void migrate(dns::DomainId id, int day) {
    const auto provider = *registry_.find("CloudFlare");
    dns::WebsiteRecord record;
    record.www_cname =
        names_.intern("c" + std::to_string(id) + "." +
                      registry_.provider(provider).cname_suffix);
    record.www_a = registry_.provider(provider).prefixes.front().address_at(10);
    dns_.record_change(id, day, record);
  }

  void attack(Ipv4Addr target, int day, double intensity, bool honeypot = false,
              double duration_s = 600.0) {
    AttackEvent event;
    event.source = honeypot ? EventSource::kHoneypot : EventSource::kTelescope;
    event.target = target;
    event.start = t0_ + day * 86400.0 + 1000.0;
    event.end = event.start + duration_s;
    event.intensity = intensity;
    if (!honeypot) {
      event.ip_proto = 6;
      event.num_ports = 1;
      event.top_port = 80;
    } else {
      event.reflection = amppot::ReflectionProtocol::kNtp;
    }
    store_.add(event);
  }

  void finish() {
    store_.finalize();
    dns_.build_reverse_index();
    impact_ = std::make_unique<ImpactAnalysis>(store_, dns_);
    timelines_ = dps::all_timelines(dns_, classifier_);
    analysis_ = std::make_unique<MigrationAnalysis>(*impact_, timelines_);
  }

  StudyWindow window_{};
  double t0_;
  dns::NameTable names_;
  dns::SnapshotStore dns_;
  dps::ProviderRegistry registry_;
  dps::Classifier classifier_;
  EventStore store_{window_};
  std::unique_ptr<ImpactAnalysis> impact_;
  std::vector<dps::ProtectionTimeline> timelines_;
  std::unique_ptr<MigrationAnalysis> analysis_;
};

TEST_F(MigrationAnalysisTest, CollectsMigrationCasesWithDelays) {
  const auto a = make_site("a.com", Ipv4Addr(10, 0, 0, 1));
  attack(Ipv4Addr(10, 0, 0, 1), 20, 5.0);
  migrate(a, 23);  // delay 3 days

  make_site("b.com", Ipv4Addr(10, 0, 0, 2));
  attack(Ipv4Addr(10, 0, 0, 2), 30, 1.0);  // attacked, never migrates

  finish();
  ASSERT_EQ(analysis_->cases().size(), 1u);
  const auto& mc = analysis_->cases()[0];
  EXPECT_EQ(mc.domain, a);
  EXPECT_EQ(mc.migration_day, 23);
  EXPECT_EQ(mc.trigger_attack_day, 20);
  EXPECT_EQ(mc.delay_days, 3);
  EXPECT_EQ(analysis_->attack_counts_all().size(), 2u);
  EXPECT_EQ(analysis_->attack_counts_migrating().size(), 1u);
}

TEST_F(MigrationAnalysisTest, TriggerIsLatestAttackBeforeMigration) {
  const auto a = make_site("a.com", Ipv4Addr(10, 0, 0, 1));
  attack(Ipv4Addr(10, 0, 0, 1), 10, 1.0);
  attack(Ipv4Addr(10, 0, 0, 1), 40, 2.0);
  migrate(a, 41);
  finish();
  ASSERT_EQ(analysis_->cases().size(), 1u);
  EXPECT_EQ(analysis_->cases()[0].trigger_attack_day, 40);
  EXPECT_EQ(analysis_->cases()[0].delay_days, 1);
}

TEST_F(MigrationAnalysisTest, PreexistingAndUnattackedAreExcluded) {
  // Preexisting: protected from day 0.
  const auto p = dns_.add_domain("pre.com", 0);
  dns::WebsiteRecord rec;
  const auto provider = *registry_.find("Akamai");
  rec.www_cname = names_.intern("x." + registry_.provider(provider).cname_suffix);
  rec.www_a = registry_.provider(provider).prefixes.front().address_at(10);
  dns_.record_change(p, 0, rec);
  attack(rec.www_a, 10, 1.0);
  // Unattacked migrator.
  const auto u = make_site("u.com", Ipv4Addr(10, 0, 0, 9));
  migrate(u, 50);
  finish();
  EXPECT_TRUE(analysis_->cases().empty());
}

TEST_F(MigrationAnalysisTest, IntensityClassesNarrowDelays) {
  // 20 weak-attacked sites with slow migration; 2 intense with fast.
  for (int i = 0; i < 20; ++i) {
    const auto ip = Ipv4Addr(10, 0, 1, static_cast<std::uint8_t>(i));
    const auto id = make_site("w" + std::to_string(i) + ".com", ip);
    attack(ip, 10, 1.0);
    migrate(id, 10 + 20 + i);  // 20+ day delays
  }
  for (int i = 0; i < 2; ++i) {
    const auto ip = Ipv4Addr(10, 0, 2, static_cast<std::uint8_t>(i));
    const auto id = make_site("s" + std::to_string(i) + ".com", ip);
    attack(ip, 10, 1000.0);  // top intensity
    // Next-day migration: a same-day DNS flip would hide the attack from
    // the day-granular join (the record already points at the DPS).
    migrate(id, 11);
  }
  finish();
  const auto all = analysis_->delays_for_intensity_class(1.0);
  const auto top = analysis_->delays_for_intensity_class(2.0 / 22.0);
  EXPECT_EQ(all.size(), 22u);
  EXPECT_EQ(top.size(), 2u);
  EXPECT_LT(MigrationAnalysis::fraction_within(all, 6), 0.2);
  EXPECT_DOUBLE_EQ(MigrationAnalysis::fraction_within(top, 1), 1.0);
}

TEST_F(MigrationAnalysisTest, LongAttackDelaysUseHoneypotDurations) {
  // Site hit by a >= 4h honeypot attack on day 30, migrates day 31.
  const auto a = make_site("long.com", Ipv4Addr(10, 0, 0, 1));
  attack(Ipv4Addr(10, 0, 0, 1), 30, 50.0, /*honeypot=*/true, 5 * 3600.0);
  migrate(a, 31);
  // Site hit only by a long TELESCOPE attack: excluded (telescope durations
  // are unreliable for successful attacks, §6).
  const auto b = make_site("tel.com", Ipv4Addr(10, 0, 0, 2));
  attack(Ipv4Addr(10, 0, 0, 2), 30, 50.0, /*honeypot=*/false, 6 * 3600.0);
  migrate(b, 31);
  // Site with a short honeypot attack: excluded from the long-attack CDF.
  const auto c = make_site("short.com", Ipv4Addr(10, 0, 0, 3));
  attack(Ipv4Addr(10, 0, 0, 3), 30, 50.0, /*honeypot=*/true, 600.0);
  migrate(c, 31);
  finish();
  EXPECT_EQ(analysis_->cases().size(), 3u);
  const auto delays = analysis_->delays_for_long_attacks();
  ASSERT_EQ(delays.size(), 1u);
  EXPECT_DOUBLE_EQ(MigrationAnalysis::fraction_within(delays, 1), 1.0);
}

TEST_F(MigrationAnalysisTest, SiteIntensityIsMaxOverTouches) {
  const auto ip = Ipv4Addr(10, 0, 0, 1);
  make_site("a.com", ip);
  attack(ip, 10, 2.0);
  attack(ip, 20, 8.0);
  attack(ip, 30, 4.0);
  finish();
  ASSERT_EQ(analysis_->site_intensities().size(), 1u);
  // Normalized against dataset max (8.0): the site's max is 1.0.
  EXPECT_DOUBLE_EQ(analysis_->site_intensities().max(), 1.0);
  EXPECT_EQ(analysis_->attack_counts_all().max(), 3.0);
}

}  // namespace
}  // namespace dosm::core
