// Mixed fixture for throw-contract: this rel path carries the
// "SerializeError only" contract, so the runtime_error throw fires and the
// SerializeError throw stays quiet.
#include <stdexcept>

namespace fx {

struct SerializeError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void write_header(bool ok) {
  if (!ok) throw SerializeError("bad header");
}

void write_body(bool ok) {
  if (!ok) throw std::runtime_error("bad body");
}

}  // namespace fx
