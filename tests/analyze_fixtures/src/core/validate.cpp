// Mixed fixture for throw-contract in a config-validation context: the
// validate_* function must throw std::invalid_argument only.
#include <stdexcept>

namespace fx {

struct SamplerConfig {
  int rate = 0;
};

void validate_config(const SamplerConfig& config) {
  if (config.rate < 0) throw std::runtime_error("rate below zero");
  if (config.rate > 100) throw std::invalid_argument("rate above 100");
}

}  // namespace fx
