// Positive fixture for float-accumulation: floating-point sums whose result
// bits depend on evaluation order — inside unordered iteration and at a
// merge boundary.
#include <unordered_map>

namespace fx {

double mean_weight(const std::unordered_map<int, double>& weights) {
  double sum = 0.0;
  for (const auto& [key, weight] : weights) {
    sum += weight;
  }
  return sum / static_cast<double>(weights.size());
}

struct Shard {
  double total = 0.0;
};

void merge_shards(Shard& into, const Shard& from) {
  into.total += from.total;
}

}  // namespace fx
