// Positive fixture for shared-state-race: mutable shared state written with
// no guard held, inside the concurrent-subsystem scope (src/parallel/).
#include <cstdint>
#include <mutex>

namespace fx {

std::uint64_t g_unguarded_total = 0;

void bump_global(std::uint64_t n) {
  g_unguarded_total += n;
}

class Tally {
 public:
  void record_unlocked(std::uint64_t n) {
    total_ += n;
  }

  void record_locked(std::uint64_t n) {
    std::lock_guard<std::mutex> guard(mu_);
    total_ += n;
  }

 private:
  std::mutex mu_;
  std::uint64_t total_ = 0;
};

}  // namespace fx
