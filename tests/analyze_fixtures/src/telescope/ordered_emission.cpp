// Positive fixture: streaming directly out of unordered_map iteration, and
// appending to an outer ordered container without sorting afterwards.
#include <ostream>
#include <unordered_map>
#include <vector>

namespace fx {

void dump_counts(std::ostream& out,
                 const std::unordered_map<int, long>& counts) {
  for (const auto& [key, value] : counts) {
    out << key << " " << value << "\n";
  }
}

std::vector<int> collect_keys(const std::unordered_map<int, long>& counts) {
  std::vector<int> keys;
  for (const auto& [key, value] : counts) {
    keys.push_back(key);
  }
  return keys;
}

}  // namespace fx
