// Negative fixture: the same iteration shapes, each with an order-safety
// proof the analyzer must recognize (sort-after, commutative integral
// accumulation, keyed stores, tie-broken selection).
#include <algorithm>
#include <unordered_map>
#include <vector>

namespace fx {

std::vector<int> sorted_keys(const std::unordered_map<int, long>& counts) {
  std::vector<int> keys;
  for (const auto& [key, value] : counts) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

long total(const std::unordered_map<int, long>& counts) {
  long sum = 0;
  for (const auto& [key, value] : counts) {
    sum += value;
  }
  return sum;
}

void invert(const std::unordered_map<int, int>& in,
            std::unordered_map<int, int>& out) {
  for (const auto& [key, value] : in) {
    out[value] = key;
  }
}

int busiest(const std::unordered_map<int, long>& counts) {
  long best = 0;
  int best_key = 0;
  for (const auto& [key, value] : counts) {
    if (value > best || (value == best && best > 0 && key < best_key)) {
      best = value;
      best_key = key;
    }
  }
  return best_key;
}

}  // namespace fx
