// Suppression fixture: fires ordered-emission when analyzed bare; the test
// silences it with an allowlist entry naming this path.
#include <ostream>
#include <unordered_map>

namespace fx {

void dump(std::ostream& out, const std::unordered_map<int, int>& counts) {
  for (const auto& [key, value] : counts) {
    out << key << "\n";
  }
}

}  // namespace fx
