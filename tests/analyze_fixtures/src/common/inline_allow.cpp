// Suppression fixture: the same ordered-emission shape as
// src/telescope/ordered_emission.cpp, silenced by an inline marker.
#include <iostream>
#include <unordered_map>

namespace fx {

void debug_dump(const std::unordered_map<int, int>& counts) {
  for (const auto& [key, value] : counts) {
    std::cout << key << "=" << value << "\n";  // analyze:allow(ordered-emission): debug-only dump
  }
}

}  // namespace fx
