// Positive fixture for bare-lock: manual .lock()/.unlock() instead of an
// RAII guard. Lives outside the race roots so only bare-lock fires.
#include <mutex>

namespace fx {

class ManualLocker {
 public:
  void update(int v) {
    mu_.lock();
    value_ = v;
    mu_.unlock();
  }

 private:
  std::mutex mu_;
  int value_ = 0;
};

}  // namespace fx
