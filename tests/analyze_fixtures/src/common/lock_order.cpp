// Positive fixture for lock-order: two paths acquire the same pair of
// mutexes in opposite order, a cycle in the acquired-before graph.
#include <mutex>

namespace fx {

class TwoLocks {
 public:
  void forward() {
    std::lock_guard<std::mutex> a(mu_a_);
    std::lock_guard<std::mutex> b(mu_b_);
    value_ = 1;
  }

  void backward() {
    std::lock_guard<std::mutex> b(mu_b_);
    std::lock_guard<std::mutex> a(mu_a_);
    value_ = 2;
  }

 private:
  std::mutex mu_a_;
  std::mutex mu_b_;
  int value_ = 0;
};

}  // namespace fx
