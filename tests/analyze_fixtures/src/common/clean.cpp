// Negative fixture: ordered containers, guarded state, contract-conforming
// throws. The analyzer must report nothing here.
#include <map>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace fx {

int max_key(const std::map<int, int>& ordered) {
  int best = 0;
  for (const auto& [key, value] : ordered) {
    if (key > best) best = key;
  }
  return best;
}

class GuardedCounter {
 public:
  void add(int n) {
    std::lock_guard<std::mutex> guard(mu_);
    total_ += n;
  }

 private:
  std::mutex mu_;
  long total_ = 0;
};

void check_positive(int n) {
  if (n < 0) throw std::invalid_argument("n must be non-negative");
}

}  // namespace fx
