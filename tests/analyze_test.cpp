// Unit tests for dosmeter_analyze: each of the five semantic checks must
// fire on its positive fixture, the order-safety proofs must keep the
// negative fixtures quiet, and both suppression mechanisms (allowlist
// entries, inline analyze:allow markers) must silence findings. Fixtures
// live in tests/analyze_fixtures/.
#include "analyze/analyze_core.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

namespace dosm::analyze {
namespace {

std::vector<Violation> analyze_fixtures(
    const std::vector<AllowEntry>& allow = {}) {
  return analyze_tree(DOSM_ANALYZE_FIXTURE_DIR, {"src"}, allow);
}

std::map<std::string, std::set<std::string>> rules_by_file(
    const std::vector<Violation>& violations) {
  std::map<std::string, std::set<std::string>> out;
  for (const auto& v : violations) out[v.file].insert(v.rule);
  return out;
}

TEST(AnalyzeFixtures, EachCheckFiresOnItsPositiveFixture) {
  const auto by_file = rules_by_file(analyze_fixtures());
  EXPECT_EQ(by_file.at("src/telescope/ordered_emission.cpp"),
            std::set<std::string>{"ordered-emission"});
  EXPECT_EQ(by_file.at("src/parallel/race.cpp"),
            std::set<std::string>{"shared-state-race"});
  EXPECT_EQ(by_file.at("src/common/bare_lock.cpp"),
            std::set<std::string>{"bare-lock"});
  EXPECT_EQ(by_file.at("src/common/lock_order.cpp"),
            std::set<std::string>{"lock-order"});
  EXPECT_EQ(by_file.at("src/core/serialize.cpp"),
            std::set<std::string>{"throw-contract"});
  EXPECT_EQ(by_file.at("src/core/validate.cpp"),
            std::set<std::string>{"throw-contract"});
  EXPECT_EQ(by_file.at("src/core/float_acc.cpp"),
            std::set<std::string>{"float-accumulation"});
}

TEST(AnalyzeFixtures, OrderedEmissionFlagsBothStreamingAndUnsortedAppend) {
  int hits = 0;
  for (const auto& v : analyze_fixtures()) {
    if (v.file == "src/telescope/ordered_emission.cpp") ++hits;
  }
  EXPECT_EQ(hits, 2);  // the ostream<< loop and the unsorted push_back loop
}

TEST(AnalyzeFixtures, RaceCheckSeparatesGlobalAndMemberWrites) {
  std::set<int> lines;
  for (const auto& v : analyze_fixtures()) {
    if (v.file == "src/parallel/race.cpp") lines.insert(v.line);
  }
  // The unguarded global += and the unguarded member += fire; the
  // lock_guard-protected write in record_locked stays quiet.
  EXPECT_EQ(lines.size(), 2u);
}

TEST(AnalyzeFixtures, BareLockFlagsLockAndUnlock) {
  int hits = 0;
  for (const auto& v : analyze_fixtures()) {
    if (v.file == "src/common/bare_lock.cpp") ++hits;
  }
  EXPECT_EQ(hits, 2);
}

TEST(AnalyzeFixtures, ThrowContractAllowsTheContractType) {
  // serialize.cpp throws both SerializeError (contract type, quiet) and
  // runtime_error (fires); validate.cpp throws invalid_argument (quiet)
  // and runtime_error (fires). Exactly one finding per file.
  std::map<std::string, int> hits;
  for (const auto& v : analyze_fixtures()) {
    if (v.rule == "throw-contract") ++hits[v.file];
  }
  EXPECT_EQ(hits.at("src/core/serialize.cpp"), 1);
  EXPECT_EQ(hits.at("src/core/validate.cpp"), 1);
}

TEST(AnalyzeFixtures, FloatAccumulationFlagsLoopAndMergeBoundary) {
  int hits = 0;
  for (const auto& v : analyze_fixtures()) {
    if (v.file == "src/core/float_acc.cpp") ++hits;
  }
  EXPECT_EQ(hits, 2);
}

TEST(AnalyzeFixtures, OrderSafetyProofsKeepNegativeFixturesQuiet) {
  const auto by_file = rules_by_file(analyze_fixtures());
  // sort-after, integral accumulation, keyed store, tie-broken argmax.
  EXPECT_FALSE(by_file.contains("src/telescope/ordered_emission_safe.cpp"));
  // Ordered containers, guarded writes, contract-conforming throw.
  EXPECT_FALSE(by_file.contains("src/common/clean.cpp"));
}

TEST(AnalyzeFixtures, InlineAllowSuppresses) {
  const auto by_file = rules_by_file(analyze_fixtures());
  EXPECT_FALSE(by_file.contains("src/common/inline_allow.cpp"));
}

TEST(AnalyzeFixtures, AllowlistEntrySuppresses) {
  const auto by_file = rules_by_file(
      analyze_fixtures({{"ordered-emission", "src/common/allowlisted.cpp"}}));
  EXPECT_FALSE(by_file.contains("src/common/allowlisted.cpp"));
}

TEST(AnalyzeFixtures, WithoutAllowlistEntryTheSuppressedFindingFires) {
  const auto by_file = rules_by_file(analyze_fixtures());
  EXPECT_EQ(by_file.at("src/common/allowlisted.cpp"),
            std::set<std::string>{"ordered-emission"});
}

TEST(AnalyzeFixtures, StaleAllowlistEntryIsItselfAViolation) {
  const auto by_file = rules_by_file(
      analyze_fixtures({{"ordered-emission", "src/gone/removed.cpp"}}));
  EXPECT_EQ(by_file.at("tools/analyze_allowlist.txt"),
            std::set<std::string>{"stale-allowlist"});
}

TEST(LockOrder, ConsistentOrderIsQuiet) {
  const std::vector<LockEdge> edges = {
      {"A::mu_a_", "A::mu_b_", "one.cpp", 10},
      {"A::mu_a_", "A::mu_b_", "two.cpp", 20},
      {"A::mu_b_", "A::mu_c_", "two.cpp", 21},
  };
  EXPECT_TRUE(lock_order_violations(edges).empty());
}

TEST(LockOrder, OppositeOrderIsACycle) {
  const std::vector<LockEdge> edges = {
      {"A::mu_a_", "A::mu_b_", "one.cpp", 10},
      {"A::mu_b_", "A::mu_a_", "two.cpp", 20},
  };
  const auto violations = lock_order_violations(edges);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "lock-order");
}

}  // namespace
}  // namespace dosm::analyze
