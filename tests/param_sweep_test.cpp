// Cross-module parameterized property sweeps: monotonicity and invariance
// properties that must hold for any sane parameter choice, not just the
// paper defaults.
#include <gtest/gtest.h>

#include <algorithm>

#include "amppot/consolidator.h"
#include "amppot/honeypot.h"
#include "common/rng.h"
#include "core/event_store.h"

namespace dosm {
namespace {

using net::Ipv4Addr;

// ---------------------------------------------------------------------------
// Consolidator gap timeout: a longer gap can only merge sessions, never
// split them — event count is non-increasing in the gap.
class GapSweep : public ::testing::TestWithParam<double> {};

std::vector<amppot::RequestRecord> bursty_log(Rng& rng) {
  std::vector<amppot::RequestRecord> log;
  const Ipv4Addr victim(9, 9, 9, 9);
  double t = 0.0;
  for (int burst = 0; burst < 12; ++burst) {
    for (int i = 0; i < 200; ++i) {
      log.push_back({t, victim, amppot::ReflectionProtocol::kNtp, 8});
      t += rng.uniform(0.1, 1.0);
    }
    t += rng.uniform(200.0, 5000.0);  // variable lulls
  }
  return log;
}

TEST_P(GapSweep, LongerGapMergesNeverSplits) {
  Rng rng(17);
  const auto log = bursty_log(rng);
  amppot::ConsolidatorConfig narrow, wide;
  narrow.gap_timeout_s = GetParam();
  wide.gap_timeout_s = GetParam() * 4.0;
  const auto narrow_events = consolidate_log(log, narrow);
  const auto wide_events = consolidate_log(log, wide);
  EXPECT_GE(narrow_events.size(), wide_events.size());
  // Total requests across events is conserved up to threshold filtering.
  std::uint64_t narrow_requests = 0, wide_requests = 0;
  for (const auto& event : narrow_events) narrow_requests += event.requests;
  for (const auto& event : wide_events) wide_requests += event.requests;
  EXPECT_LE(narrow_requests, wide_requests + 1);
}

INSTANTIATE_TEST_SUITE_P(Gaps, GapSweep,
                         ::testing::Values(150.0, 300.0, 600.0, 1200.0));

// ---------------------------------------------------------------------------
// Consolidator duration cap: a tighter cap produces at least as many events
// and none longer than the cap.
class CapSweep : public ::testing::TestWithParam<double> {};

TEST_P(CapSweep, CapBoundsEveryEvent) {
  const double cap = GetParam();
  std::vector<amppot::RequestRecord> log;
  const Ipv4Addr victim(9, 9, 9, 9);
  for (double t = 0.0; t < 100000.0; t += 5.0)
    log.push_back({t, victim, amppot::ReflectionProtocol::kDns, 64});
  amppot::ConsolidatorConfig config;
  config.max_duration_s = cap;
  const auto events = consolidate_log(log, config);
  ASSERT_FALSE(events.empty());
  for (const auto& event : events) EXPECT_LE(event.duration(), cap + 5.0);
  amppot::ConsolidatorConfig loose;
  loose.max_duration_s = cap * 2.0;
  EXPECT_GE(events.size(), consolidate_log(log, loose).size());
}

INSTANTIATE_TEST_SUITE_P(Caps, CapSweep,
                         ::testing::Values(3600.0, 14400.0, 43200.0, 86400.0));

// ---------------------------------------------------------------------------
// Reply rate limiter: the number of replies per source per minute is below
// the configured bound for any flood rate.
class LimiterSweep : public ::testing::TestWithParam<int> {};

TEST_P(LimiterSweep, RepliesStayUnderBound) {
  const int bound = GetParam();
  amppot::ReplyRateLimiter limiter(static_cast<std::uint32_t>(bound));
  const Ipv4Addr source(1, 2, 3, 4);
  int replies_this_minute = 0;
  double minute_start = 0.0;
  Rng rng(23);
  double t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    t += rng.uniform(0.001, 2.0);
    if (t - minute_start >= 60.0) {
      minute_start = t;
      replies_this_minute = 0;
    }
    if (limiter.on_packet(t, source)) ++replies_this_minute;
    // The limiter window restarts on its own schedule; allow one window of
    // slack when comparing to our minute-aligned accounting.
    EXPECT_LE(replies_this_minute, 2 * (bound - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, LimiterSweep, ::testing::Values(2, 3, 5, 10));

// ---------------------------------------------------------------------------
// Zipf concentration: a larger exponent concentrates more mass on rank 1.
class ZipfSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSweep, HigherExponentConcentrates) {
  const double s = GetParam();
  Rng rng_a(31), rng_b(31);
  const ZipfSampler flat(1000, s);
  const ZipfSampler steep(1000, s + 0.5);
  int flat_top = 0, steep_top = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (flat.sample(rng_a) <= 10) ++flat_top;
    if (steep.sample(rng_b) <= 10) ++steep_top;
  }
  EXPECT_GT(steep_top, flat_top);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSweep,
                         ::testing::Values(0.5, 0.8, 1.0, 1.3));

// ---------------------------------------------------------------------------
// EventStore invariants under random event populations.
class StoreInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreInvariants, HoldForRandomPopulations) {
  Rng rng(GetParam());
  const StudyWindow window;
  core::EventStore store(window);
  const double t0 = static_cast<double>(window.start_time());
  const int n = 500 + static_cast<int>(rng.next_below(1500));
  for (int i = 0; i < n; ++i) {
    core::AttackEvent event;
    event.source = rng.bernoulli(0.5) ? core::EventSource::kTelescope
                                      : core::EventSource::kHoneypot;
    event.target =
        Ipv4Addr(static_cast<std::uint32_t>(0x0a000000 + rng.next_below(300)));
    event.start = t0 + rng.uniform(0.0, 730.0 * 86400.0);
    event.end = event.start + rng.lognormal(5.5, 1.5);
    event.intensity = rng.lognormal(0.0, 2.0);
    event.packets = 25 + rng.next_below(100000);
    event.ip_proto = 6;
    event.num_ports = 1;
    event.top_port = 80;
    store.add(event);
  }
  store.finalize();

  meta::PrefixToAsMap pfx2as;
  pfx2as.announce(net::Prefix::parse("10.0.0.0/8"), 64500);
  const auto telescope = store.summarize(core::SourceFilter::kTelescope, pfx2as);
  const auto honeypot = store.summarize(core::SourceFilter::kHoneypot, pfx2as);
  const auto combined = store.summarize(core::SourceFilter::kCombined, pfx2as);

  // Event counts are additive; target sets sub-additive.
  EXPECT_EQ(combined.events, telescope.events + honeypot.events);
  EXPECT_LE(combined.unique_targets,
            telescope.unique_targets + honeypot.unique_targets);
  EXPECT_GE(combined.unique_targets,
            std::max(telescope.unique_targets, honeypot.unique_targets));
  EXPECT_LE(combined.unique_slash24, combined.unique_targets);
  EXPECT_LE(combined.unique_slash16, combined.unique_slash24);

  // Per-target index covers every event exactly once.
  std::size_t indexed = 0;
  for (const auto& target : store.targets(core::SourceFilter::kCombined))
    indexed += store.events_for(target).size();
  EXPECT_EQ(indexed, store.size());

  // Normalized intensities live in [0, 1] and the max is exactly 1.
  double max_norm = 0.0;
  for (const auto& event : store.events()) {
    const double norm = store.normalized_intensity(event);
    EXPECT_GE(norm, 0.0);
    EXPECT_LE(norm, 1.0);
    max_norm = std::max(max_norm, norm);
  }
  EXPECT_DOUBLE_EQ(max_norm, 1.0);

  // Daily series totals match the event count (every event is in-window).
  const auto breakdown =
      store.daily_breakdown(core::SourceFilter::kCombined, pfx2as);
  EXPECT_DOUBLE_EQ(breakdown.attacks.total(), static_cast<double>(store.size()));
  // Medium+ is a subset.
  const auto medium =
      store.daily_breakdown(core::SourceFilter::kCombined, pfx2as, true);
  EXPECT_LE(medium.attacks.total(), breakdown.attacks.total());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreInvariants,
                         ::testing::Values(1, 7, 19, 101, 997));

}  // namespace
}  // namespace dosm
