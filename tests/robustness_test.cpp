// Failure-injection and deterministic-fuzz robustness tests: the packet
// parser and pcap reader must survive arbitrary malformed input (throwing
// cleanly or skipping), never crashing or reading out of bounds — a live
// telescope sees every kind of garbage.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "net/pcap.h"
#include "telescope/pipeline.h"

namespace dosm::net {
namespace {

std::vector<std::uint8_t> valid_pcap_buffer(int packets) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  PcapWriter writer(stream);
  for (int i = 0; i < packets; ++i) {
    PacketRecord rec;
    rec.ts_sec = 1000 + i;
    rec.src = Ipv4Addr(1, 2, 3, static_cast<std::uint8_t>(i));
    rec.dst = Ipv4Addr(44, 0, 0, 1);
    rec.proto = static_cast<std::uint8_t>(IpProto::kTcp);
    rec.src_port = 80;
    rec.tcp_flags = tcp_flags::kSyn | tcp_flags::kAck;
    writer.write_packet(rec);
  }
  const std::string data = stream.str();
  return {data.begin(), data.end()};
}

/// Parses a (possibly corrupted) pcap buffer; malformed records may throw
/// std::runtime_error, which counts as clean rejection.
std::size_t try_decode(const std::vector<std::uint8_t>& buffer) {
  try {
    return decode_pcap(buffer).size();
  } catch (const std::runtime_error&) {
    return 0;
  }
}

TEST(Robustness, RandomByteFlipsNeverCrashPcapReader) {
  const auto pristine = valid_pcap_buffer(20);
  Rng rng(1234);
  for (int trial = 0; trial < 500; ++trial) {
    auto corrupted = pristine;
    const int flips = 1 + static_cast<int>(rng.next_below(8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.next_below(corrupted.size());
      corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    try_decode(corrupted);  // must not crash; result value is irrelevant
  }
  SUCCEED();
}

TEST(Robustness, RandomTruncationsNeverCrashPcapReader) {
  const auto pristine = valid_pcap_buffer(20);
  Rng rng(5678);
  for (int trial = 0; trial < 300; ++trial) {
    auto cut = pristine;
    cut.resize(rng.next_below(pristine.size() + 1));
    try_decode(cut);
  }
  SUCCEED();
}

TEST(Robustness, PureGarbageBuffers) {
  Rng rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> garbage(rng.next_below(512));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u64());
    try_decode(garbage);
  }
  SUCCEED();
}

TEST(Robustness, DecodePacketOnRandomBuffers) {
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> buffer(rng.next_below(128));
    for (auto& b : buffer) b = static_cast<std::uint8_t>(rng.next_u64());
    // Force it to look like IPv4 half the time so the deeper parse runs.
    if (!buffer.empty() && rng.bernoulli(0.5)) buffer[0] = 0x45;
    const auto rec = decode_packet(buffer);
    if (rec) {
      // A parsed record must be internally consistent.
      EXPECT_LE(rec->tcp_flags, 0x3f);
    }
  }
  SUCCEED();
}

TEST(Robustness, MutatedPacketsThroughFullPipeline) {
  // The Moore pipeline must survive whatever the decoder lets through.
  const auto pristine = valid_pcap_buffer(200);
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    auto corrupted = pristine;
    for (int f = 0; f < 20; ++f) {
      const auto pos = rng.next_below(corrupted.size());
      corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    std::vector<PacketRecord> records;
    try {
      records = decode_pcap(corrupted);
    } catch (const std::runtime_error&) {
      continue;
    }
    telescope::Pipeline pipeline;
    pipeline.emplace_plugin<telescope::RsdosPlugin>();
    pipeline.replay(records);
    pipeline.finish();
  }
  SUCCEED();
}

TEST(Robustness, IcmpQuotedHeaderEdgeCases) {
  // Craft an ICMP unreachable whose quoted IP header claims a giant IHL.
  PacketRecord rec;
  rec.src = Ipv4Addr(1, 1, 1, 1);
  rec.dst = Ipv4Addr(44, 0, 0, 1);
  rec.proto = static_cast<std::uint8_t>(IpProto::kIcmp);
  rec.icmp_type = static_cast<std::uint8_t>(IcmpType::kDestUnreachable);
  rec.has_quoted = true;
  rec.quoted_proto = static_cast<std::uint8_t>(IpProto::kUdp);
  rec.quoted_dst = Ipv4Addr(9, 9, 9, 9);
  auto bytes = encode_packet(rec);
  // Quoted header starts at 28; set IHL nibble to 15 (60-byte header) while
  // only 8 quoted payload bytes exist.
  bytes[28] = 0x4f;
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->has_quoted);  // truncated quote cleanly rejected

  // Quoted "IPv6" packet: not parsed as a quote.
  auto bytes6 = encode_packet(rec);
  bytes6[28] = 0x60;
  const auto decoded6 = decode_packet(bytes6);
  ASSERT_TRUE(decoded6.has_value());
  EXPECT_FALSE(decoded6->has_quoted);
}

TEST(Robustness, ImplausibleRecordLengthRejected) {
  auto buffer = valid_pcap_buffer(1);
  // Patch the record's caplen (offset 24+8 = 32, little endian) to 512 MiB.
  buffer[32] = 0x00;
  buffer[33] = 0x00;
  buffer[34] = 0x00;
  buffer[35] = 0x20;
  std::string data(buffer.begin(), buffer.end());
  std::istringstream in(data, std::ios::binary);
  PcapReader reader(in);
  EXPECT_THROW(reader.next_frame(), std::runtime_error);
}

}  // namespace
}  // namespace dosm::net
