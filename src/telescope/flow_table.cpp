#include "telescope/flow_table.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace dosm::telescope {
namespace {

/// Telescope-layer metrics, registered once and cached for the hot path.
/// Counters are write-only observers: no detection decision ever reads them.
struct Metrics {
  obs::Counter& packets_seen;
  obs::Counter& backscatter_packets;
  obs::Counter& flows_opened;
  obs::Counter& flows_swept;
  obs::Counter& flows_flushed;
  obs::Counter& events_emitted;
  obs::Counter& reject_min_packets;
  obs::Counter& reject_min_duration;
  obs::Counter& reject_min_pps;

  static Metrics& get() {
    static Metrics metrics = [] {
      auto& reg = obs::MetricsRegistry::global();
      return Metrics{
          reg.counter("telescope.packets_seen",
                      "Packets fed to the backscatter detector"),
          reg.counter("telescope.backscatter_packets",
                      "Packets classified as backscatter"),
          reg.counter("telescope.flows_opened",
                      "Per-victim flows opened in the flow table"),
          reg.counter("telescope.flows_swept",
                      "Flows closed by inactivity-timeout sweep"),
          reg.counter("telescope.flows_flushed",
                      "Flows closed at end of trace"),
          reg.counter("telescope.events_emitted",
                      "Flows that passed all classification thresholds"),
          reg.counter("telescope.reject.min_packets",
                      "Flows rejected for too few backscatter packets"),
          reg.counter("telescope.reject.min_duration",
                      "Flows rejected for too short a duration"),
          reg.counter("telescope.reject.min_pps",
                      "Flows rejected for too low a peak packet rate"),
      };
    }();
    return metrics;
  }
};

}  // namespace

bool passes_thresholds(const TelescopeEvent& event,
                       const ClassifierThresholds& thresholds) {
  if (event.packets < thresholds.min_packets) return false;
  if (event.duration() < thresholds.min_duration_s) return false;
  // max_pps is per one-minute bucket; the threshold (0.5 pps at the
  // telescope = ~128 pps at the victim after the x256 correction) is
  // expressed in packets/sec.
  if (event.max_pps < thresholds.min_max_pps) return false;
  return true;
}

bool passes_thresholds_recorded(const TelescopeEvent& event,
                                const ClassifierThresholds& thresholds) {
  Metrics& metrics = Metrics::get();
  if (event.packets < thresholds.min_packets) {
    metrics.reject_min_packets.inc();
    return false;
  }
  if (event.duration() < thresholds.min_duration_s) {
    metrics.reject_min_duration.inc();
    return false;
  }
  if (event.max_pps < thresholds.min_max_pps) {
    metrics.reject_min_pps.inc();
    return false;
  }
  metrics.events_emitted.inc();
  return true;
}

FlowTable::FlowTable(FlowCallback on_flow, double flow_timeout_s)
    : on_flow_(std::move(on_flow)), flow_timeout_s_(flow_timeout_s) {}

void FlowTable::add(double ts, const BackscatterInfo& info, std::uint16_t ip_len,
                    net::Ipv4Addr telescope_dst) {
  sweep(ts);
  Flow& flow = flows_[info.victim];
  if (flow.packets == 0) {
    flow.first_ts = ts;
    Metrics::get().flows_opened.inc();
  }
  flow.last_ts = std::max(flow.last_ts, ts);
  ++flow.packets;
  flow.bytes += ip_len;
  if (!flow.sources_saturated) {
    flow.sources.insert(telescope_dst.value());
    if (flow.sources.size() >= kMaxTrackedSources) flow.sources_saturated = true;
  }
  if (info.has_port) {
    // The cap bounds how many *distinct* ports we track; counts for ports
    // already tracked must keep incrementing past it or top_port skews
    // toward whichever ports appeared before saturation.
    const auto port_it = flow.ports.find(info.victim_port);
    if (port_it != flow.ports.end()) {
      ++port_it->second;
    } else if (flow.ports.size() < kMaxTrackedPorts) {
      flow.ports.emplace(info.victim_port, 1u);
    }
  }
  ++flow.proto_votes[info.attack_proto];

  const auto minute = static_cast<std::int64_t>(std::floor(ts / 60.0));
  if (minute != flow.current_minute) {
    flow.max_per_minute = std::max(flow.max_per_minute, flow.count_in_minute);
    flow.current_minute = minute;
    flow.count_in_minute = 0;
  }
  ++flow.count_in_minute;
}

void FlowTable::advance(double now) { sweep(now); }

void FlowTable::sweep(double now) {
  // Sweep at most once per 60 simulated seconds; packets arrive in
  // non-decreasing time order so lazy expiry is exact to within the sweep
  // granularity (and exact at flush()).
  if (now - last_sweep_ < 60.0) return;
  last_sweep_ = now;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (now - it->second.last_ts > flow_timeout_s_) {
      Metrics::get().flows_swept.inc();
      on_flow_(finalize(it->first, it->second));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
}

void FlowTable::flush() {
  Metrics::get().flows_flushed.add(flows_.size());
  for (const auto& [victim, flow] : flows_) on_flow_(finalize(victim, flow));
  flows_.clear();
}

TelescopeEvent FlowTable::finalize(net::Ipv4Addr victim, const Flow& flow) const {
  TelescopeEvent event;
  event.victim = victim;
  event.start = flow.first_ts;
  event.end = flow.last_ts;
  event.packets = flow.packets;
  event.bytes = flow.bytes;
  event.unique_sources = static_cast<std::uint32_t>(flow.sources.size());
  event.num_ports = static_cast<std::uint16_t>(flow.ports.size());
  // Hash-order iteration: break count ties toward the lowest port/proto so
  // the argmax is a total order and the winner never depends on bucket
  // layout.
  std::uint32_t best = 0;
  for (const auto& [port, count] : flow.ports) {
    if (count > best || (count == best && best > 0 && port < event.top_port)) {
      best = count;
      event.top_port = port;
    }
  }
  std::uint64_t best_votes = 0;
  for (const auto& [proto, votes] : flow.proto_votes) {
    if (votes > best_votes ||
        (votes == best_votes && best_votes > 0 && proto < event.attack_proto)) {
      best_votes = votes;
      event.attack_proto = proto;
    }
  }
  const std::uint64_t max_minute =
      std::max(flow.max_per_minute, flow.count_in_minute);
  event.max_pps = static_cast<double>(max_minute) / 60.0;
  return event;
}

BackscatterDetector::BackscatterDetector(EventCallback on_event,
                                         ClassifierThresholds thresholds,
                                         double flow_timeout_s)
    : on_event_(std::move(on_event)),
      thresholds_(thresholds),
      flows_(
          [this](const TelescopeEvent& event) {
            if (passes_thresholds_recorded(event, thresholds_)) {
              ++events_emitted_;
              on_event_(event);
            } else {
              ++flows_filtered_;
            }
          },
          flow_timeout_s) {}

void BackscatterDetector::on_packet(const net::PacketRecord& rec) {
  // Per-packet tallies stay in plain members; the obs counters are folded
  // once at finish() so the hottest loop in the codebase never touches an
  // atomic (the striped-counter fast path still costs a TLS load + fetch_add,
  // which is real money at packet granularity).
  ++packets_seen_;
  if (!is_backscatter(rec)) {
    flows_.advance(rec.timestamp());
    return;
  }
  ++backscatter_packets_;
  flows_.add(rec.timestamp(), classify_backscatter(rec), rec.ip_len, rec.dst);
}

void BackscatterDetector::finish() {
  flows_.flush();
  Metrics& metrics = Metrics::get();
  metrics.packets_seen.add(packets_seen_);
  metrics.backscatter_packets.add(backscatter_packets_);
}

}  // namespace dosm::telescope
