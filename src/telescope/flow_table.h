// Per-victim flow aggregation — step 2 of the Moore et al. methodology.
//
// Backscatter packets are grouped into attack "flows" keyed by the victim IP
// address; a flow ends after `flow_timeout` (default 300 s, the paper's
// conservative choice) of inactivity. On expiry the flow is handed to the
// attack classifier (step 3), which applies the filtering thresholds and
// emits a TelescopeEvent.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/time.h"
#include "net/headers.h"
#include "telescope/backscatter.h"

namespace dosm::telescope {

/// A randomly-spoofed DoS attack event inferred from telescope backscatter.
struct TelescopeEvent {
  net::Ipv4Addr victim;
  double start = 0.0;  // unix seconds of first backscatter packet
  double end = 0.0;    // unix seconds of last backscatter packet

  std::uint64_t packets = 0;      // backscatter packets seen at the telescope
  std::uint64_t bytes = 0;
  std::uint32_t unique_sources = 0;  // distinct telescope addresses hit
  std::uint16_t num_ports = 0;       // distinct attacked victim ports observed
  std::uint16_t top_port = 0;        // most frequent attacked port (if any)
  std::uint8_t attack_proto = 0;     // majority-attributed IP protocol
  double max_pps = 0.0;  // max backscatter packets/sec in any one minute

  double duration() const { return end - start; }
  bool single_port() const { return num_ports == 1; }
};

/// Classification thresholds (Moore et al. §3.1.1). The defaults are the
/// paper's; tests sweep them to validate monotonicity.
struct ClassifierThresholds {
  std::uint64_t min_packets = 25;
  double min_duration_s = 60.0;
  double min_max_pps = 0.5;  // max packet rate in any minute, at the telescope
};

/// True if the aggregated flow passes all three thresholds.
bool passes_thresholds(const TelescopeEvent& event,
                       const ClassifierThresholds& thresholds);

/// Same predicate, but records the outcome in the global metrics registry:
/// telescope.events_emitted on pass, telescope.reject.{min_packets,
/// min_duration,min_pps} on the first failing threshold. Detection paths
/// (sequential and sharded) call this variant; the plain predicate stays for
/// tests and sweeps that must not touch process-wide counters.
bool passes_thresholds_recorded(const TelescopeEvent& event,
                                const ClassifierThresholds& thresholds);

/// Aggregates classified backscatter into flows and emits expired flows.
///
/// Flows are keyed by victim address. Expiry is checked lazily as packet
/// timestamps advance (packets must be fed in non-decreasing time order,
/// which holds for both live capture and pcap replay).
class FlowTable {
 public:
  using FlowCallback = std::function<void(const TelescopeEvent&)>;

  explicit FlowTable(FlowCallback on_flow, double flow_timeout_s = 300.0);

  /// Adds one backscatter observation at time `ts` (unix seconds).
  void add(double ts, const BackscatterInfo& info, std::uint16_t ip_len,
           net::Ipv4Addr telescope_dst);

  /// Expires all flows idle for longer than the timeout as of `now`.
  void advance(double now);

  /// Flushes every remaining flow (end of trace).
  void flush();

  std::size_t active_flows() const { return flows_.size(); }

 private:
  struct Flow {
    double first_ts = 0.0;
    double last_ts = 0.0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    // Distinct telescope destinations (spoofed sources that fell in the
    // darknet). Bounded: once the set saturates we only count.
    std::unordered_set<std::uint32_t> sources;
    bool sources_saturated = false;
    // Distinct victim ports with frequencies (bounded; beyond the cap the
    // flow is multi-port regardless).
    std::unordered_map<std::uint16_t, std::uint32_t> ports;
    // Attack-protocol votes: proto -> packet count.
    std::unordered_map<std::uint8_t, std::uint64_t> proto_votes;
    // Max packets/sec over one-minute buckets.
    std::int64_t current_minute = -1;
    std::uint64_t count_in_minute = 0;
    std::uint64_t max_per_minute = 0;
  };

  TelescopeEvent finalize(net::Ipv4Addr victim, const Flow& flow) const;
  void sweep(double now);

  FlowCallback on_flow_;
  double flow_timeout_s_;
  std::unordered_map<net::Ipv4Addr, Flow> flows_;
  double last_sweep_ = 0.0;

  static constexpr std::size_t kMaxTrackedSources = 4096;
  static constexpr std::size_t kMaxTrackedPorts = 64;
};

/// Full detector: backscatter filter -> flow table -> thresholds. This is
/// the "Corsaro RSDoS plugin" equivalent; feed it decoded packets (from a
/// pcap replay or the synthesizer) and collect attack events.
class BackscatterDetector {
 public:
  using EventCallback = std::function<void(const TelescopeEvent&)>;

  explicit BackscatterDetector(EventCallback on_event,
                               ClassifierThresholds thresholds = {},
                               double flow_timeout_s = 300.0);

  /// Processes one captured packet (non-backscatter packets are ignored but
  /// counted).
  void on_packet(const net::PacketRecord& rec);

  /// Ends the trace, flushing all open flows through classification.
  void finish();

  std::uint64_t packets_seen() const { return packets_seen_; }
  std::uint64_t backscatter_packets() const { return backscatter_packets_; }
  std::uint64_t flows_filtered() const { return flows_filtered_; }
  std::uint64_t events_emitted() const { return events_emitted_; }

 private:
  EventCallback on_event_;
  ClassifierThresholds thresholds_;
  FlowTable flows_;
  std::uint64_t packets_seen_ = 0;
  std::uint64_t backscatter_packets_ = 0;
  std::uint64_t flows_filtered_ = 0;
  std::uint64_t events_emitted_ = 0;
};

}  // namespace dosm::telescope
