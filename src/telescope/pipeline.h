// Corsaro-style plugin pipeline for telescope traffic.
//
// Corsaro processes darknet captures through a chain of plugins, each seeing
// every packet. We reproduce that shape: a Pipeline replays a pcap stream
// (or an in-memory packet vector) through registered PacketPlugins. The
// RsdosPlugin is the open-source "RS DoS" plugin the paper describes —
// backscatter filter, per-victim flows, Moore thresholds — and the
// TrafficStatsPlugin mirrors Corsaro's flowtuple-style counters.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ingest/pipeline.h"
#include "net/pcap.h"
#include "telescope/flow_table.h"

namespace dosm::telescope {

/// Interface every pipeline stage implements.
class PacketPlugin {
 public:
  virtual ~PacketPlugin() = default;

  virtual std::string name() const = 0;
  virtual void on_packet(const net::PacketRecord& rec) = 0;
  /// Called once when the trace ends.
  virtual void on_end() {}
};

/// Replays packets through the registered plugins in registration order.
class Pipeline {
 public:
  /// Registers a plugin; the pipeline owns it. Returns a stable reference.
  template <typename P, typename... Args>
  P& emplace_plugin(Args&&... args) {
    auto plugin = std::make_unique<P>(std::forward<Args>(args)...);
    P& ref = *plugin;
    plugins_.push_back(std::move(plugin));
    return ref;
  }

  void process(const net::PacketRecord& rec);

  /// Replays an entire pcap stream through the batched ingest front end
  /// (capture thread -> SPSC ring -> decode on this thread); returns the
  /// number of decoded packets. With the default kBlock policy the plugins
  /// see exactly the packet sequence the sequential reader would produce,
  /// at any batch size and ring capacity.
  std::uint64_t replay(std::istream& pcap_stream,
                       const ingest::IngestOptions& options = {});

  /// Replays an entire pcap stream through the sequential one-packet-at-a-
  /// time reader; returns the number of decoded packets. Reference path for
  /// the batched front end's identity tests.
  std::uint64_t replay(net::PcapReader& reader);

  /// Replays an in-memory packet vector (must be time-ordered).
  void replay(const std::vector<net::PacketRecord>& packets);

  /// Signals end-of-trace to every plugin.
  void finish();

 private:
  std::vector<std::unique_ptr<PacketPlugin>> plugins_;
};

/// The RS-DoS detection plugin: collects randomly-spoofed attack events.
class RsdosPlugin : public PacketPlugin {
 public:
  explicit RsdosPlugin(ClassifierThresholds thresholds = {},
                       double flow_timeout_s = 300.0);

  std::string name() const override { return "rsdos"; }
  void on_packet(const net::PacketRecord& rec) override;
  void on_end() override;

  const std::vector<TelescopeEvent>& events() const { return events_; }
  const BackscatterDetector& detector() const { return detector_; }

 private:
  std::vector<TelescopeEvent> events_;
  BackscatterDetector detector_;
};

/// Aggregate traffic counters (packets per IP protocol, backscatter share).
class TrafficStatsPlugin : public PacketPlugin {
 public:
  std::string name() const override { return "stats"; }
  void on_packet(const net::PacketRecord& rec) override;

  std::uint64_t total_packets() const { return total_; }
  std::uint64_t total_bytes() const { return bytes_; }
  std::uint64_t backscatter_packets() const { return backscatter_; }
  /// Packet count per IP protocol number.
  const std::map<std::uint8_t, std::uint64_t>& per_protocol() const {
    return per_proto_;
  }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t backscatter_ = 0;
  std::map<std::uint8_t, std::uint64_t> per_proto_;
};

}  // namespace dosm::telescope
