#include "telescope/flowtuple.h"

#include <algorithm>
#include <tuple>
#include <unordered_set>

namespace dosm::telescope {

FlowTuplePlugin::FlowTuplePlugin(IntervalCallback on_interval, int interval_s,
                                 std::size_t top_n)
    : on_interval_(std::move(on_interval)),
      interval_s_(interval_s > 0 ? interval_s : 60),
      top_n_(top_n) {}

void FlowTuplePlugin::on_packet(const net::PacketRecord& rec) {
  const UnixSeconds interval =
      rec.ts_sec - (rec.ts_sec % interval_s_);
  if (current_interval_ >= 0 && interval != current_interval_) close_interval();
  current_interval_ = interval;

  FlowTupleKey key;
  key.src = rec.src.value();
  key.dst = rec.dst.value();
  key.src_port = rec.src_port;
  key.dst_port = rec.dst_port;
  key.proto = rec.proto;
  key.ttl = rec.ttl;
  key.tcp_flags = rec.tcp_flags;
  key.ip_len = rec.ip_len;
  ++tuples_[key];
  ++total_packets_;
}

void FlowTuplePlugin::on_end() {
  if (current_interval_ >= 0) close_interval();
  current_interval_ = -1;
}

void FlowTuplePlugin::close_interval() {
  FlowTupleInterval interval;
  interval.start = current_interval_;
  interval.unique_tuples = tuples_.size();
  std::unordered_set<std::uint32_t> sources;
  std::vector<std::pair<FlowTupleKey, std::uint64_t>> ranked;
  ranked.reserve(tuples_.size());
  for (const auto& [key, count] : tuples_) {
    interval.packets += count;
    sources.insert(key.src);
    ranked.emplace_back(key, count);
  }
  interval.unique_sources = sources.size();
  const std::size_t keep = std::min(top_n_, ranked.size());
  // The comparator must be a total order: with count-only ranking, tuples
  // tied at the keep-boundary survive or drop by hash order (ranked is
  // filled from an unordered_map), and the kept prefix is nondeterministic.
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(keep),
                    ranked.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      const FlowTupleKey& x = a.first;
                      const FlowTupleKey& y = b.first;
                      return std::tie(x.src, x.dst, x.src_port, x.dst_port,
                                      x.proto, x.ttl, x.tcp_flags, x.ip_len) <
                             std::tie(y.src, y.dst, y.src_port, y.dst_port,
                                      y.proto, y.ttl, y.tcp_flags, y.ip_len);
                    });
  ranked.resize(keep);
  interval.top_tuples = std::move(ranked);

  if (on_interval_) on_interval_(interval);
  intervals_.push_back(std::move(interval));
  tuples_.clear();
}

}  // namespace dosm::telescope
