// FlowTuple aggregation — Corsaro's signature telescope plugin.
//
// Corsaro's flowtuple plugin condenses darknet traffic into per-interval
// counts keyed by the classic 8-field tuple (src, dst, sport, dport, proto,
// ttl, tcp-flags, ip-len). The RS-DoS detector answers "which attacks",
// flowtuple answers "what does the traffic look like" — the two run side by
// side in the same pipeline, as in the real deployment.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/sanitize.h"
#include "telescope/pipeline.h"

namespace dosm::telescope {

/// The classic Corsaro flowtuple key.
struct FlowTupleKey {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;
  std::uint8_t ttl = 0;
  std::uint8_t tcp_flags = 0;
  std::uint16_t ip_len = 0;

  bool operator==(const FlowTupleKey&) const = default;
};

struct FlowTupleKeyHash {
  DOSM_ALLOW_UNSIGNED_WRAP std::size_t operator()(
      const FlowTupleKey& k) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(k.src);
    mix(k.dst);
    mix((std::uint64_t{k.src_port} << 16) | k.dst_port);
    mix((std::uint64_t{k.proto} << 16) | (std::uint64_t{k.ttl} << 8) |
        k.tcp_flags);
    mix(k.ip_len);
    return static_cast<std::size_t>(h);
  }
};

/// One completed aggregation interval.
struct FlowTupleInterval {
  UnixSeconds start = 0;  // interval-aligned start time
  std::uint64_t packets = 0;
  std::uint64_t unique_tuples = 0;
  std::uint64_t unique_sources = 0;
  /// The interval's most frequent tuples, descending by count.
  std::vector<std::pair<FlowTupleKey, std::uint64_t>> top_tuples;
};

class FlowTuplePlugin : public PacketPlugin {
 public:
  using IntervalCallback = std::function<void(const FlowTupleInterval&)>;

  /// `interval_s` is the aggregation window (Corsaro's default is 60 s);
  /// `top_n` bounds the per-interval top-tuple list.
  explicit FlowTuplePlugin(IntervalCallback on_interval = {},
                           int interval_s = 60, std::size_t top_n = 10);

  std::string name() const override { return "flowtuple"; }
  void on_packet(const net::PacketRecord& rec) override;
  void on_end() override;

  /// All completed intervals (also delivered via the callback).
  const std::vector<FlowTupleInterval>& intervals() const { return intervals_; }

  std::uint64_t total_packets() const { return total_packets_; }

 private:
  void close_interval();

  IntervalCallback on_interval_;
  int interval_s_;
  std::size_t top_n_;
  UnixSeconds current_interval_ = -1;
  std::unordered_map<FlowTupleKey, std::uint64_t, FlowTupleKeyHash> tuples_;
  std::vector<FlowTupleInterval> intervals_;
  std::uint64_t total_packets_ = 0;
};

}  // namespace dosm::telescope
