#include "telescope/geo_plugin.h"

#include <algorithm>

namespace dosm::telescope {

GeoTaggingPlugin::GeoTaggingPlugin(const meta::GeoDatabase& geo,
                                   const meta::PrefixToAsMap& pfx2as)
    : geo_(geo), pfx2as_(pfx2as) {}

void GeoTaggingPlugin::on_packet(const net::PacketRecord& rec) {
  if (!is_backscatter(rec)) return;
  const auto victim = classify_backscatter(rec).victim;
  ++tagged_;
  ++by_country_[geo_.locate(victim)];
  const auto asn = pfx2as_.origin(victim);
  if (asn == meta::kUnknownAsn) {
    ++unrouted_;
  } else {
    ++by_asn_[asn];
  }
}

namespace {

template <typename K>
std::vector<std::pair<K, std::uint64_t>> ranked(
    const std::map<K, std::uint64_t>& counts) {
  std::vector<std::pair<K, std::uint64_t>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace

std::vector<std::pair<meta::CountryCode, std::uint64_t>>
GeoTaggingPlugin::country_ranking() const {
  return ranked(by_country_);
}

std::vector<std::pair<meta::Asn, std::uint64_t>> GeoTaggingPlugin::asn_ranking()
    const {
  return ranked(by_asn_);
}

}  // namespace dosm::telescope
