// Backscatter synthesizer — the UCSD-telescope substitute.
//
// Given ground-truth randomly-spoofed attack specifications, synthesizes the
// packet stream a /8 darknet would capture: each attack packet carries a
// uniformly random spoofed source, the victim answers a fraction of them,
// and replies whose (spoofed) destination falls inside the telescope prefix
// are observed — a 1/256 thinning for a /8, exactly the paper's model.
// Background noise (scans, misconfigurations) is mixed in so the detector's
// backscatter filter is actually exercised.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "net/headers.h"
#include "net/ipv4.h"

namespace dosm::telescope {

/// Ground truth for one randomly-spoofed attack.
struct SpoofedAttackSpec {
  net::Ipv4Addr victim;
  double start = 0.0;       // unix seconds
  double duration_s = 60.0;
  double victim_pps = 1000.0;  // attack packet rate arriving at the victim
  std::uint8_t ip_proto = 6;   // protocol of the attack traffic (TCP default)
  std::vector<std::uint16_t> ports{80};  // attacked ports
  /// Fraction of attack packets the victim (or an on-path router) answers;
  /// captures victim provisioning (§3.1.1's caveat that the observed rate
  /// also reflects the victim's capacity).
  double response_rate = 1.0;
};

/// Non-attack darknet pollution mixed into the capture.
struct NoiseConfig {
  double scan_pps = 0.0;       // TCP SYN scans (not backscatter)
  double misconfig_pps = 0.0;  // stray UDP (not backscatter)
  double benign_icmp_pps = 0.0;  // echo *requests* (not backscatter)
};

/// Synthesizes telescope captures for a time window.
class TelescopeSynthesizer {
 public:
  /// `telescope` is the darknet prefix (default the canonical /8).
  explicit TelescopeSynthesizer(std::uint64_t seed,
                                net::Prefix telescope = net::Prefix(
                                    net::Ipv4Addr(44, 0, 0, 0), 8));

  /// Generates the time-ordered capture for [window_start, window_end).
  /// Attacks whose span exits the window are clipped.
  std::vector<net::PacketRecord> synthesize(
      std::span<const SpoofedAttackSpec> attacks, double window_start,
      double window_end, const NoiseConfig& noise = {});

  /// Telescope coverage as a fraction of the IPv4 space (1/256 for a /8).
  double coverage() const;

  const net::Prefix& telescope() const { return telescope_; }

 private:
  net::Ipv4Addr random_telescope_addr(Rng& rng) const;
  void emit_attack(const SpoofedAttackSpec& spec, double window_start,
                   double window_end, Rng& rng,
                   std::vector<net::PacketRecord>& out) const;
  void emit_noise(const NoiseConfig& noise, double window_start,
                  double window_end, Rng& rng,
                  std::vector<net::PacketRecord>& out) const;

  std::uint64_t seed_;
  net::Prefix telescope_;
};

}  // namespace dosm::telescope
