// Geo/ASN tagging plugin — Corsaro's metadata-augmentation stage.
//
// The paper annotates every target with country (NetAcuity) and origin AS
// (Routeviews pfx2as). On the real telescope this tagging runs inside the
// Corsaro pipeline; this plugin does the same for backscatter victims,
// accumulating per-country and per-AS packet counts alongside the other
// plugins.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "meta/geo.h"
#include "meta/pfx2as.h"
#include "telescope/pipeline.h"

namespace dosm::telescope {

class GeoTaggingPlugin : public PacketPlugin {
 public:
  /// References must outlive the plugin.
  GeoTaggingPlugin(const meta::GeoDatabase& geo,
                   const meta::PrefixToAsMap& pfx2as);

  std::string name() const override { return "geoasn"; }
  void on_packet(const net::PacketRecord& rec) override;

  /// Backscatter packets per victim country, descending.
  std::vector<std::pair<meta::CountryCode, std::uint64_t>> country_ranking()
      const;

  /// Backscatter packets per victim origin AS, descending.
  std::vector<std::pair<meta::Asn, std::uint64_t>> asn_ranking() const;

  std::uint64_t tagged_packets() const { return tagged_; }
  std::uint64_t unrouted_packets() const { return unrouted_; }

 private:
  const meta::GeoDatabase& geo_;
  const meta::PrefixToAsMap& pfx2as_;
  std::map<meta::CountryCode, std::uint64_t> by_country_;
  std::map<meta::Asn, std::uint64_t> by_asn_;
  std::uint64_t tagged_ = 0;
  std::uint64_t unrouted_ = 0;
};

}  // namespace dosm::telescope
