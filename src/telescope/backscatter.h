// Backscatter classification — step 1 of the Moore et al. methodology.
//
// A packet arriving at the darknet is backscatter if it is a *response*
// packet: a victim of a randomly-spoofed flood replies to the spoofed
// sources, a fraction of which fall inside the telescope. The response types
// recognized here are exactly the paper's list (§3.1.1): TCP SYN/ACK, TCP
// RST, ICMP Echo Reply, Destination Unreachable, Source Quench, Redirect,
// Time Exceeded, Parameter Problem, Timestamp Reply, Information Reply, and
// Address Mask Reply.
#pragma once

#include <cstdint>

#include "net/headers.h"

namespace dosm::telescope {

/// Attack-protocol attribution for a backscatter packet (what protocol the
/// *attack traffic* used, per Moore et al.): TCP for SYN/ACK / RST
/// backscatter, the quoted datagram's protocol for ICMP error messages, and
/// ICMP for echo/timestamp/info/mask replies (ping-flood style attacks).
struct BackscatterInfo {
  net::Ipv4Addr victim;          // source of the response packet
  std::uint8_t attack_proto = 0; // attributed IP protocol of the attack
  std::uint16_t victim_port = 0; // attacked port on the victim (0 if unknown)
  bool has_port = false;
};

/// True if the packet is one of the recognized response types.
bool is_backscatter(const net::PacketRecord& rec);

/// Classifies a backscatter packet; precondition: is_backscatter(rec).
BackscatterInfo classify_backscatter(const net::PacketRecord& rec);

}  // namespace dosm::telescope
