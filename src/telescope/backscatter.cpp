#include "telescope/backscatter.h"

namespace dosm::telescope {

using net::IcmpType;
using net::IpProto;

namespace {

bool is_response_icmp(std::uint8_t type) {
  switch (static_cast<IcmpType>(type)) {
    case IcmpType::kEchoReply:
    case IcmpType::kDestUnreachable:
    case IcmpType::kSourceQuench:
    case IcmpType::kRedirect:
    case IcmpType::kTimeExceeded:
    case IcmpType::kParameterProblem:
    case IcmpType::kTimestampReply:
    case IcmpType::kInfoReply:
    case IcmpType::kAddressMaskReply:
      return true;
    default:
      return false;
  }
}

bool is_icmp_error(std::uint8_t type) {
  switch (static_cast<IcmpType>(type)) {
    case IcmpType::kDestUnreachable:
    case IcmpType::kSourceQuench:
    case IcmpType::kRedirect:
    case IcmpType::kTimeExceeded:
    case IcmpType::kParameterProblem:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool is_backscatter(const net::PacketRecord& rec) {
  if (rec.is_tcp()) {
    const bool syn_ack = (rec.tcp_flags & net::tcp_flags::kSyn) &&
                         (rec.tcp_flags & net::tcp_flags::kAck);
    const bool rst = rec.tcp_flags & net::tcp_flags::kRst;
    return syn_ack || rst;
  }
  if (rec.is_icmp()) return is_response_icmp(rec.icmp_type);
  return false;
}

BackscatterInfo classify_backscatter(const net::PacketRecord& rec) {
  BackscatterInfo info;
  info.victim = rec.src;
  if (rec.is_tcp()) {
    info.attack_proto = static_cast<std::uint8_t>(IpProto::kTcp);
    // The victim replies *from* the attacked port.
    info.victim_port = rec.src_port;
    info.has_port = true;
    return info;
  }
  // ICMP backscatter.
  if (is_icmp_error(rec.icmp_type) && rec.has_quoted) {
    // ICMP error messages quote the original (attack) datagram; the paper
    // registers the quoted packet's protocol (§4, Table 5). The quoted
    // destination is the true victim and its port the attacked port.
    info.attack_proto = rec.quoted_proto;
    info.victim = rec.quoted_dst;
    if (rec.quoted_dst_port != 0) {
      info.victim_port = rec.quoted_dst_port;
      info.has_port = true;
    }
    return info;
  }
  // Echo/timestamp/info/mask replies: an ICMP flood (e.g. ping flood).
  info.attack_proto = static_cast<std::uint8_t>(IpProto::kIcmp);
  return info;
}

}  // namespace dosm::telescope
