#include "telescope/synthesizer.h"

#include <algorithm>
#include <cmath>

namespace dosm::telescope {

using net::IcmpType;
using net::IpProto;

TelescopeSynthesizer::TelescopeSynthesizer(std::uint64_t seed,
                                           net::Prefix telescope)
    : seed_(seed), telescope_(telescope) {}

double TelescopeSynthesizer::coverage() const {
  return std::ldexp(1.0, -telescope_.length());
}

net::Ipv4Addr TelescopeSynthesizer::random_telescope_addr(Rng& rng) const {
  return telescope_.address_at(rng.next_below(telescope_.num_addresses()));
}

std::vector<net::PacketRecord> TelescopeSynthesizer::synthesize(
    std::span<const SpoofedAttackSpec> attacks, double window_start,
    double window_end, const NoiseConfig& noise) {
  Rng rng(seed_);
  std::vector<net::PacketRecord> out;
  for (const auto& spec : attacks) {
    Rng attack_rng = rng.fork("attack");
    emit_attack(spec, window_start, window_end, attack_rng, out);
  }
  Rng noise_rng = rng.fork("noise");
  emit_noise(noise, window_start, window_end, noise_rng, out);
  std::sort(out.begin(), out.end(),
            [](const net::PacketRecord& a, const net::PacketRecord& b) {
              return a.timestamp() < b.timestamp();
            });
  return out;
}

void TelescopeSynthesizer::emit_attack(const SpoofedAttackSpec& spec,
                                       double window_start, double window_end,
                                       Rng& rng,
                                       std::vector<net::PacketRecord>& out) const {
  const double begin = std::max(spec.start, window_start);
  const double end = std::min(spec.start + spec.duration_s, window_end);
  if (end <= begin || spec.victim_pps <= 0.0) return;

  // Backscatter observed at the telescope is the attack stream thinned by
  // (response_rate * coverage): a Poisson process.
  const double rate = spec.victim_pps * spec.response_rate * coverage();
  if (rate <= 0.0) return;

  double t = begin + rng.exponential(rate);
  while (t < end) {
    net::PacketRecord rec;
    rec.ts_sec = static_cast<UnixSeconds>(std::floor(t));
    rec.ts_usec =
        static_cast<std::uint32_t>((t - std::floor(t)) * 1e6);
    rec.dst = random_telescope_addr(rng);
    rec.ttl = static_cast<std::uint8_t>(rng.uniform_int(48, 63));
    const std::uint16_t port =
        spec.ports.empty()
            ? 0
            : spec.ports[rng.next_below(spec.ports.size())];

    if (spec.ip_proto == static_cast<std::uint8_t>(IpProto::kTcp)) {
      // SYN flood backscatter: mostly SYN/ACK, some RST (closed port /
      // middlebox resets).
      rec.src = spec.victim;
      rec.proto = static_cast<std::uint8_t>(IpProto::kTcp);
      rec.src_port = port;
      rec.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
      rec.tcp_flags = rng.bernoulli(0.8)
                          ? (net::tcp_flags::kSyn | net::tcp_flags::kAck)
                          : (net::tcp_flags::kRst | net::tcp_flags::kAck);
      rec.ip_len = 40;
    } else if (spec.ip_proto == static_cast<std::uint8_t>(IpProto::kUdp)) {
      // UDP flood: the victim (or its router) emits ICMP port/destination
      // unreachable quoting the attack datagram.
      rec.src = spec.victim;
      rec.proto = static_cast<std::uint8_t>(IpProto::kIcmp);
      rec.icmp_type = static_cast<std::uint8_t>(IcmpType::kDestUnreachable);
      rec.icmp_code = 3;  // port unreachable
      rec.has_quoted = true;
      rec.quoted_proto = static_cast<std::uint8_t>(IpProto::kUdp);
      rec.quoted_src = rec.dst;  // the spoofed source (telescope address)
      rec.quoted_dst = spec.victim;
      rec.quoted_src_port =
          static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
      rec.quoted_dst_port = port;
      rec.ip_len = 56;
    } else if (spec.ip_proto == static_cast<std::uint8_t>(IpProto::kIcmp)) {
      // Ping flood: echo replies.
      rec.src = spec.victim;
      rec.proto = static_cast<std::uint8_t>(IpProto::kIcmp);
      rec.icmp_type = static_cast<std::uint8_t>(IcmpType::kEchoReply);
      rec.ip_len = 84;
    } else {
      // Other protocols (e.g. IGMP floods): protocol-unreachable errors.
      rec.src = spec.victim;
      rec.proto = static_cast<std::uint8_t>(IpProto::kIcmp);
      rec.icmp_type = static_cast<std::uint8_t>(IcmpType::kDestUnreachable);
      rec.icmp_code = 2;  // protocol unreachable
      rec.has_quoted = true;
      rec.quoted_proto = spec.ip_proto;
      rec.quoted_src = rec.dst;
      rec.quoted_dst = spec.victim;
      rec.ip_len = 56;
    }
    out.push_back(rec);
    t += rng.exponential(rate);
  }
}

void TelescopeSynthesizer::emit_noise(const NoiseConfig& noise,
                                      double window_start, double window_end,
                                      Rng& rng,
                                      std::vector<net::PacketRecord>& out) const {
  const double span = window_end - window_start;
  if (span <= 0.0) return;

  auto emit_process = [&](double pps, auto&& make) {
    if (pps <= 0.0) return;
    double t = window_start + rng.exponential(pps);
    while (t < window_end) {
      net::PacketRecord rec;
      rec.ts_sec = static_cast<UnixSeconds>(std::floor(t));
      rec.ts_usec = static_cast<std::uint32_t>((t - std::floor(t)) * 1e6);
      rec.dst = random_telescope_addr(rng);
      rec.src = net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()));
      rec.ttl = static_cast<std::uint8_t>(rng.uniform_int(32, 64));
      make(rec);
      out.push_back(rec);
      t += rng.exponential(pps);
    }
  };

  emit_process(noise.scan_pps, [&](net::PacketRecord& rec) {
    rec.proto = static_cast<std::uint8_t>(IpProto::kTcp);
    rec.tcp_flags = net::tcp_flags::kSyn;  // plain SYN: scan, not backscatter
    rec.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    rec.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1, 1024));
    rec.ip_len = 44;
  });
  emit_process(noise.misconfig_pps, [&](net::PacketRecord& rec) {
    rec.proto = static_cast<std::uint8_t>(IpProto::kUdp);
    rec.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    rec.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    rec.ip_len = 60;
  });
  emit_process(noise.benign_icmp_pps, [&](net::PacketRecord& rec) {
    rec.proto = static_cast<std::uint8_t>(IpProto::kIcmp);
    rec.icmp_type = static_cast<std::uint8_t>(IcmpType::kEcho);  // request
    rec.ip_len = 84;
  });
}

}  // namespace dosm::telescope
