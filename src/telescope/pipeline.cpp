#include "telescope/pipeline.h"

#include <algorithm>
#include <tuple>

namespace dosm::telescope {

void Pipeline::process(const net::PacketRecord& rec) {
  for (auto& plugin : plugins_) plugin->on_packet(rec);
}

std::uint64_t Pipeline::replay(std::istream& pcap_stream,
                               const ingest::IngestOptions& options) {
  const auto stats = ingest::run_ingest(
      pcap_stream, options,
      ingest::RecordBatchSink([this](std::span<const net::PacketRecord> records) {
        for (const net::PacketRecord& rec : records) process(rec);
      }));
  return stats.packets;
}

std::uint64_t Pipeline::replay(net::PcapReader& reader) {
  std::uint64_t count = 0;
  while (auto rec = reader.next_packet()) {
    process(*rec);
    ++count;
  }
  return count;
}

void Pipeline::replay(const std::vector<net::PacketRecord>& packets) {
  for (const auto& rec : packets) process(rec);
}

void Pipeline::finish() {
  for (auto& plugin : plugins_) plugin->on_end();
}

RsdosPlugin::RsdosPlugin(ClassifierThresholds thresholds, double flow_timeout_s)
    : detector_([this](const TelescopeEvent& e) { events_.push_back(e); },
                thresholds, flow_timeout_s) {}

void RsdosPlugin::on_packet(const net::PacketRecord& rec) {
  detector_.on_packet(rec);
}

void RsdosPlugin::on_end() {
  detector_.finish();
  // The detector flushes its flow table in hash order; the sharded detector
  // (parallel/detect.cpp) canonically sorts after flushing, so the
  // sequential plugin must present the same order.
  std::sort(events_.begin(), events_.end(),
            [](const TelescopeEvent& a, const TelescopeEvent& b) {
              return std::tie(a.start, a.victim) < std::tie(b.start, b.victim);
            });
}

void TrafficStatsPlugin::on_packet(const net::PacketRecord& rec) {
  ++total_;
  bytes_ += rec.ip_len;
  ++per_proto_[rec.proto];
  if (is_backscatter(rec)) ++backscatter_;
}

}  // namespace dosm::telescope
