// The DPS-migration behaviour model.
//
// Site owners (and hosters, wholesale) decide to outsource protection after
// ground-truth attacks; the urgency — and hence the migration delay — grows
// with attack intensity, reproducing the §6 findings: repetition does not
// drive migration, intensity accelerates it sharply, and long-duration
// attacks alone are not decisive. Spontaneous (attack-independent) adoption
// runs in the background at the paper's ~3.3% rate. All decisions are
// applied to the SnapshotStore as DNS record changes; the analysis side
// re-detects them through the DPS classifier, never from ground truth.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "dns/snapshot.h"
#include "sim/attacker.h"
#include "sim/hosting.h"

namespace dosm::sim {

struct MigrationConfig {
  /// Per-trigger migration probability for an individual site at baseline
  /// intensity, before the 1/co-hosting damping (so an attacked self-hosted
  /// site migrates with roughly this probability; a site sharing its IP
  /// with n others at ~1/n of it).
  double site_base_probability = 0.17;
  /// Per-attack probability that a hoster makes a wholesale migration
  /// decision for its whole customer base (the Wix -> Incapsula case).
  /// Hosting IPs absorb tens of thousands of attacks over two years, so the
  /// per-attack probability must be tiny for wholesale moves to stay the
  /// handful of events the paper observes.
  double hoster_base_probability = 0.00012;
  /// Multiplier applied at the top of the intensity scale; probability
  /// interpolates with the attack's intensity percentile rank.
  double intensity_probability_boost = 6.0;

  /// Urgent migrations (delay 0-1 days) happen with probability p_urgent =
  /// urgent_base + urgent_gain * rank^urgent_power (rank = intensity
  /// percentile in [0,1]); otherwise the delay is lognormal around a week
  /// with a months-long tail (the eNom case).
  double urgent_base = 0.08;
  double urgent_gain = 0.78;
  double urgent_power = 45.0;
  double slow_delay_mu = 2.8;     // ln(days); median ~16 days
  double slow_delay_sigma = 1.0;

  /// IPs co-hosting at least this many sites are "colossal" infrastructure
  /// (Google/Amazon-class in the paper): their operators run in-house
  /// mitigation and never flee to a third-party DPS, so wholesale hoster
  /// migrations skip them (the paper counts such sites as non-migrating).
  std::size_t max_wholesale_cohost = 200;

  /// Attacks below this ground-truth intensity percentile never trigger
  /// migration: a trickle the victim barely notices (and that the telescope
  /// mostly cannot detect either) does not send anyone shopping for a DPS.
  /// Keeping this near the detectability knee also keeps the
  /// "migrated-but-no-attack-observed" population at the paper's scale.
  double min_trigger_rank = 0.86;

  /// Attacks shorter than this never trigger migration — nobody outsources
  /// protection over a sub-two-minute blip. (Also aligns triggers with the
  /// detector's 60 s observed-duration floor, keeping hidden-trigger
  /// migrations rare.)
  double min_trigger_duration_s = 120.0;

  /// Owners react to their *first* attacks or not at all: after this many
  /// attack exposures without migrating, a site is considered habituated
  /// and stops rolling the dice. This produces the paper's Figure-9
  /// finding that migrating sites are NOT the repeatedly-attacked ones.
  int habituation_exposures = 3;

  /// Fraction of independently-operated (self-hosted / micro-shared)
  /// domains spontaneously adopting a DPS over the window (calibrated so
  /// unattacked-migrating lands at the paper's 3.32%).
  double spontaneous_fraction = 0.035;
};

/// One applied migration (for inspection/tests).
struct MigrationRecord {
  dns::DomainId domain = 0;
  int decision_day = 0;   // attack day (or spontaneous day)
  int migration_day = 0;  // day the DNS change lands
  dps::ProviderId provider = dps::kNoProvider;
  bool attack_driven = false;
  bool hoster_wide = false;
};

class MigrationModel {
 public:
  MigrationModel(std::uint64_t seed, HostingEcosystem& hosting,
                 dns::SnapshotStore& store, StudyWindow window,
                 MigrationConfig config = {});

  /// Processes the (time-sorted) ground truth and applies all DNS changes.
  /// Returns the applied migrations, ascending by migration day.
  std::vector<MigrationRecord> apply(
      std::span<const GroundTruthAttack> attacks);

 private:
  double intensity_rank(const GroundTruthAttack& attack) const;
  int sample_delay(double rank);

  Rng rng_;
  HostingEcosystem& hosting_;
  dns::SnapshotStore& store_;
  StudyWindow window_;
  MigrationConfig config_;
  std::vector<double> direct_intensities_;      // sorted, for rank lookup
  std::vector<double> reflection_intensities_;  // sorted
  std::vector<double> durations_;               // sorted, both kinds
};

}  // namespace dosm::sim
