// The attacker model: two years of ground-truth DoS attacks.
//
// Generates randomly-spoofed (direct) and reflection attacks whose
// distributional shape follows the paper's measurements: protocol mixes
// (Tables 5 & 6), single-/multi-port split and service mix (Tables 7 & 8),
// duration and intensity distributions (Figures 2-4), target selection
// biased toward Web hosting (69% of TCP attacks aim at Web ports), repeat
// attacks on sticky targets, simultaneous joint attacks (§4), and a handful
// of mega-hoster campaign days that create the Figure-7 peaks.
#pragma once

#include <cstdint>
#include <vector>

#include "amppot/protocols.h"
#include "common/rng.h"
#include "common/time.h"
#include "sim/hosting.h"
#include "sim/population.h"

namespace dosm::sim {

enum class AttackKind : std::uint8_t {
  kDirect,      // randomly spoofed flood (telescope-visible)
  kReflection,  // reflection & amplification (honeypot-visible)
};

/// Ground truth for one attack (what the attacker actually did; detectors
/// observe noisy projections of this).
struct GroundTruthAttack {
  AttackKind kind = AttackKind::kDirect;
  net::Ipv4Addr target;
  double start = 0.0;      // unix seconds
  double duration_s = 0.0;

  // Direct attacks.
  std::uint8_t ip_proto = 6;
  std::vector<std::uint16_t> ports;
  double victim_pps = 0.0;     // attack rate arriving at the victim
  double response_rate = 1.0;  // victim provisioning (fraction answered)

  // Reflection attacks.
  amppot::ReflectionProtocol reflector = amppot::ReflectionProtocol::kNtp;
  double per_reflector_rps = 0.0;
  int honeypots_hit = 0;
  int reflector_count = 0;

  /// True when this attack was launched as part of a simultaneous joint
  /// attack (direct + reflection on the same target).
  bool joint = false;
};

struct AttackerConfig {
  /// Ground-truth launch rates. Direct attacks outnumber their detections:
  /// the telescope thresholds drop the small ones (see direct_intensity_mu),
  /// so the *detected* daily rates land near the paper's 17.1k/11.6k ratio.
  double direct_per_day = 440.0;
  double reflection_per_day = 75.0;

  /// Probability an attack aims at a Web-hosting IP (vs the general
  /// population: gamers, broadband, etc.).
  double hosting_target_fraction_direct = 0.80;
  double hosting_target_fraction_reflection = 0.45;

  /// Probability that a hosting-aimed attack targets a DPS reverse-proxy
  /// front directly (protection infrastructure is itself a major target —
  /// the DOSarrest/CenturyLink observations of §5).
  double dps_target_fraction = 0.02;

  /// Probability a new target is drawn from the recent-target pool
  /// (repeat/follow-up attacks). The paper's events-per-target ratios
  /// (telescope 5.1, honeypot 2.0) imply repeat rates near 1-1/ratio; pools
  /// are kept separate per attack kind so cross-dataset target overlap
  /// stays at the paper's ~4% scale (driven by joint attacks + popular
  /// hosting IPs, not by a shared attacker memory).
  double repeat_fraction_direct = 0.84;
  double repeat_fraction_reflection = 0.48;

  /// Fraction of reflection attacks paired with a simultaneous direct
  /// attack on the same target (yields the 137 k joint-attack analog).
  double joint_fraction = 0.035;

  /// Mega-hoster campaign days (the Figure-7 peaks).
  int num_campaigns = 6;

  // Duration model (lognormal, seconds). Defaults reproduce the paper's
  // medians/means (telescope 454 s / 48 min; honeypot 255 s / 18 min).
  double direct_duration_mu = 6.12;
  double direct_duration_sigma = 1.90;
  double reflection_duration_mu = 5.54;
  double reflection_duration_sigma = 1.70;

  // Intensity model. Direct: backscatter pps at the telescope is
  // lognormal(mu, sigma) -> victim_pps = 256 x that. mu sits below the
  // detection threshold on purpose: most real attacks are too small for the
  // telescope, and the *post-filter* distribution then matches Figure 3
  // (~70% of detected events at <= 2 pps, median ~1).
  // Reflection: per-reflector rps lognormal around median 77 (Figure 4).
  double direct_intensity_mu = -3.2;
  double direct_intensity_sigma = 3.06;
  double reflection_intensity_mu = 4.344;  // ln 77
  double reflection_intensity_sigma = 1.83;

  /// Web-port attacks are more intense and shorter (§4).
  double web_intensity_factor = 2.1;
  double web_duration_factor = 0.45;
};

class Attacker {
 public:
  Attacker(std::uint64_t seed, const Population& population,
           const HostingEcosystem& hosting, StudyWindow window,
           AttackerConfig config = {});

  /// Generates the full ground truth, sorted by start time.
  std::vector<GroundTruthAttack> generate();

  const AttackerConfig& config() const { return config_; }

 private:
  net::Ipv4Addr pick_target(bool reflection);
  GroundTruthAttack make_direct(net::Ipv4Addr target, double start, bool joint);
  GroundTruthAttack make_reflection(net::Ipv4Addr target, double start,
                                    bool joint);
  void pick_ports(GroundTruthAttack& attack, bool joint, bool web_target);
  double day_rate_multiplier(int day) const;

  Rng rng_;
  const Population& population_;
  const HostingEcosystem& hosting_;
  StudyWindow window_;
  AttackerConfig config_;
  // Bounded repeat pools, one per attack kind (see repeat_fraction_*).
  std::vector<net::Ipv4Addr> recent_direct_;
  std::vector<net::Ipv4Addr> recent_reflection_;
};

}  // namespace dosm::sim
