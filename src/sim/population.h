// The simulated Internet population: countries, autonomous systems, and
// announced address space.
//
// Address space is allocated in /16 blocks to ASes; each AS belongs to a
// country. Country weights follow the paper's observed target mix (Table 4)
// including its deviations from raw address-space usage: France is inflated
// by OVH, Russia ranks high, Japan ranks low. Well-known organizations the
// paper names (OVH AS12276, China Telecom AS4134, GoDaddy, Google, Amazon,
// ...) are pinned to fixed ASNs so downstream case-study analyses can refer
// to them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "meta/geo.h"
#include "meta/pfx2as.h"
#include "net/ipv4.h"

namespace dosm::sim {

struct PopulationConfig {
  /// Total /16 blocks to allocate across all countries.
  int total_slash16 = 3000;
  /// Average ASes per country (scaled by country weight).
  int base_ases_per_country = 12;
};

/// A well-known organization pinned in the population.
struct PinnedOrg {
  std::string name;
  meta::Asn asn;
  meta::CountryCode country;
  int slash16_blocks;
};

class Population {
 public:
  Population(Rng& rng, const PopulationConfig& config = {});

  /// Samples an address from the general population (country/AS weighted).
  net::Ipv4Addr sample_address(Rng& rng) const;

  /// Samples an address announced by a specific AS (must exist).
  net::Ipv4Addr sample_address_in_as(meta::Asn asn, Rng& rng) const;

  /// Geo and routing databases describing the allocation.
  const meta::GeoDatabase& geo() const { return geo_; }
  const meta::PrefixToAsMap& pfx2as() const { return pfx2as_; }
  const meta::AsRegistry& as_registry() const { return as_registry_; }

  /// ASN for a pinned organization; throws std::out_of_range if unknown.
  meta::Asn asn_of(const std::string& org) const;

  std::size_t num_ases() const { return ases_.size(); }

 private:
  struct AsEntry {
    meta::Asn asn;
    meta::CountryCode country;
    std::vector<net::Prefix> blocks;  // /16s
  };

  void allocate(Rng& rng, const PopulationConfig& config);
  net::Prefix next_block();

  std::vector<AsEntry> ases_;
  AliasTable as_sampler_;  // weighted by announced space
  std::vector<std::pair<std::string, std::size_t>> pinned_;  // name -> index
  meta::GeoDatabase geo_;
  meta::PrefixToAsMap pfx2as_;
  meta::AsRegistry as_registry_;
  int next_block_index_ = 0;
};

/// The country mix used by the default population (code, weight); exposed
/// for tests and the Table-4 bench.
struct CountryWeight {
  const char* code;
  double weight;
};
std::vector<CountryWeight> default_country_weights();

}  // namespace dosm::sim
