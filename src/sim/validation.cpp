#include "sim/validation.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/stats.h"
#include "dps/migration.h"

namespace dosm::sim {

namespace {

std::vector<RecallBucket> decade_buckets(double lo, int decades) {
  std::vector<RecallBucket> buckets;
  double bound = lo;
  for (int i = 0; i < decades; ++i) {
    buckets.push_back({bound, bound * 10.0, 0, 0});
    bound *= 10.0;
  }
  return buckets;
}

RecallBucket* bucket_for(std::vector<RecallBucket>& buckets, double value) {
  for (auto& bucket : buckets) {
    if (value >= bucket.lo && value < bucket.hi) return &bucket;
  }
  return nullptr;
}

}  // namespace

DetectorValidation validate_detectors(const World& world) {
  DetectorValidation validation;
  validation.telescope_by_intensity = decade_buckets(0.01, 7);
  validation.honeypot_by_intensity = decade_buckets(0.01, 7);

  // Index detected events per target for overlap matching.
  std::map<std::uint32_t, std::vector<const telescope::TelescopeEvent*>>
      telescope_by_target;
  for (const auto& event : world.telescope_events)
    telescope_by_target[event.victim.value()].push_back(&event);
  std::map<std::uint32_t, std::vector<const amppot::AmpPotEvent*>>
      honeypot_by_target;
  for (const auto& event : world.honeypot_events)
    honeypot_by_target[event.victim.value()].push_back(&event);

  EmpiricalDistribution duration_errors;
  EmpiricalDistribution intensity_errors;

  for (const auto& attack : world.truth) {
    const double attack_end = attack.start + attack.duration_s;
    if (attack.kind == AttackKind::kDirect) {
      ++validation.direct_attacks;
      const double scope_rate = attack.victim_pps / 256.0;
      auto* bucket = bucket_for(validation.telescope_by_intensity, scope_rate);
      if (bucket) ++bucket->attacks;

      // Any time-overlapping event on the target counts for recall; for
      // attribute fidelity we additionally require a dominant overlap so
      // repeat attacks on the same target cannot cross-match.
      const auto it = telescope_by_target.find(attack.target.value());
      const telescope::TelescopeEvent* best = nullptr;
      double best_overlap = 0.0;
      if (it != telescope_by_target.end()) {
        for (const auto* event : it->second) {
          const double overlap = std::min(attack_end, event->end) -
                                 std::max(attack.start, event->start);
          if (overlap > best_overlap) {
            best_overlap = overlap;
            best = event;
          }
        }
      }
      if (best != nullptr && best_overlap > 0.0) {
        ++validation.direct_detected;
        if (bucket) ++bucket->detected;
        // Attribute fidelity only on unambiguous 1:1 matches: the overlap
        // must dominate BOTH spans, so a short attack inside another
        // attack's long event cannot cross-match.
        const double span = std::max(attack.duration_s, best->duration());
        if (best_overlap >= 0.8 * span && span > 60.0) {
          ++validation.matched_events;
          duration_errors.add(std::fabs(best->duration() - attack.duration_s) /
                              std::max(attack.duration_s, 1.0));
          intensity_errors.add(std::fabs(best->max_pps - scope_rate) /
                               std::max(scope_rate, 1e-9));
        }
      }
    } else {
      ++validation.reflection_attacks;
      auto* bucket =
          bucket_for(validation.honeypot_by_intensity, attack.per_reflector_rps);
      if (bucket) ++bucket->attacks;
      const auto it = honeypot_by_target.find(attack.target.value());
      bool detected = false;
      if (it != honeypot_by_target.end()) {
        for (const auto* event : it->second) {
          if (event->start <= attack_end && attack.start <= event->end &&
              event->protocol == attack.reflector) {
            detected = true;
            break;
          }
        }
      }
      if (detected) {
        ++validation.reflection_detected;
        if (bucket) ++bucket->detected;
      }
    }
  }

  if (validation.matched_events > 0) {
    // Median relative error: robust to the occasional cross-match on a
    // heavily repeat-attacked target.
    validation.duration_relative_error = duration_errors.median();
    validation.intensity_relative_error = intensity_errors.median();
  }
  return validation;
}

MigrationValidation validate_migration_detection(const World& world) {
  MigrationValidation validation;
  const dps::Classifier classifier(world.providers, world.names);
  for (const auto& migration : world.migrations) {
    ++validation.ground_truth;
    const auto timeline =
        dps::protection_timeline(world.dns, migration.domain, classifier);
    if (timeline.preexisting) continue;  // misdated to registration: not found
    if (!timeline.first_protected_day) continue;
    ++validation.detected;
    if (*timeline.first_protected_day == migration.migration_day)
      ++validation.date_exact;
  }
  return validation;
}

}  // namespace dosm::sim
