// Detector validation against simulator ground truth.
//
// The real paper cannot score its detectors (no ground truth exists); the
// simulation can, and DESIGN.md commits to using ground truth only for
// scoring, never inside analyses. This module quantifies:
//   - telescope recall by ground-truth intensity decade (the Moore
//     thresholds deliberately trade recall for precision),
//   - honeypot recall (near-total for attacks above the request threshold),
//   - detected-event attribute fidelity (duration / intensity error),
//   - DPS migration detection recall (DNS-visible changes re-found by the
//     classifier).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dps/classifier.h"
#include "sim/scenario.h"

namespace dosm::sim {

/// Recall within one ground-truth intensity bucket.
struct RecallBucket {
  double lo = 0.0;  // bucket bounds on the ground-truth metric
  double hi = 0.0;
  std::uint64_t attacks = 0;
  std::uint64_t detected = 0;

  double recall() const {
    return attacks ? static_cast<double>(detected) / static_cast<double>(attacks)
                   : 0.0;
  }
};

struct DetectorValidation {
  /// Telescope recall bucketed by ground-truth backscatter rate at the
  /// telescope (victim_pps / 256), decade bounds.
  std::vector<RecallBucket> telescope_by_intensity;
  /// Honeypot recall bucketed by per-reflector request rate.
  std::vector<RecallBucket> honeypot_by_intensity;

  std::uint64_t direct_attacks = 0;
  std::uint64_t direct_detected = 0;
  std::uint64_t reflection_attacks = 0;
  std::uint64_t reflection_detected = 0;

  /// Median relative error of detected durations and intensities vs truth
  /// (unambiguously matched by target + dominant time overlap).
  double duration_relative_error = 0.0;
  double intensity_relative_error = 0.0;
  std::uint64_t matched_events = 0;

  double direct_recall() const {
    return direct_attacks ? double(direct_detected) / double(direct_attacks) : 0.0;
  }
  double reflection_recall() const {
    return reflection_attacks
               ? double(reflection_detected) / double(reflection_attacks)
               : 0.0;
  }
};

/// Scores the detectors of a built world against its ground truth.
DetectorValidation validate_detectors(const World& world);

/// Migration-detection scoring: of the ground-truth migrations the
/// simulator applied, how many does the DNS-side classifier re-find (and
/// date correctly)?
struct MigrationValidation {
  std::uint64_t ground_truth = 0;
  std::uint64_t detected = 0;
  std::uint64_t date_exact = 0;  // detected with the exact migration day

  double recall() const {
    return ground_truth ? double(detected) / double(ground_truth) : 0.0;
  }
};

MigrationValidation validate_migration_detection(const World& world);

}  // namespace dosm::sim
