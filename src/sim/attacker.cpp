#include "sim/attacker.h"

#include <algorithm>
#include <cmath>

#include "core/ports.h"
#include "net/headers.h"

namespace dosm::sim {

using amppot::ReflectionProtocol;

namespace {

constexpr std::size_t kRepeatPoolSize = 4096;

/// Table-8a TCP service mix among single-port attacks. Attacks on
/// Web-hosting IPs concentrate on Web ports (87.6%, §5); the blend over all
/// targets reproduces the overall 48.68% HTTP / 20.68% HTTPS split.
std::uint16_t sample_tcp_port(Rng& rng, bool joint, bool web_target) {
  const double u = rng.uniform();
  double http = web_target ? 0.615 : 0.435;
  double https = web_target ? 0.262 : 0.190;
  if (joint) http += 0.02;  // joint attacks skew to HTTP (50.23%, §4)
  if (u < http) return 80;
  if (u < http + https) return 443;
  if (u < http + https + 0.0112) return 3306;
  if (u < http + https + 0.0112 + 0.0107) return 53;
  if (u < http + https + 0.0112 + 0.0107 + 0.0099) return 1723;
  // Tail spread over the rest of the port range.
  return static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
}

/// Table-8b UDP service mix; joint attacks concentrate on 27015 (53%).
std::uint16_t sample_udp_port(Rng& rng, bool joint) {
  const double u = rng.uniform();
  const double steam = joint ? 0.53 : 0.1854;
  if (u < steam) return 27015;
  if (u < steam + 0.0204) return 37547;
  if (u < steam + 0.0204 + 0.0141) return 32124;
  if (u < steam + 0.0204 + 0.0141 + 0.0139) return 28183;
  if (u < steam + 0.0204 + 0.0141 + 0.0139 + 0.0130) return 3306;
  return static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
}

ReflectionProtocol sample_reflector(Rng& rng, bool web_target, bool joint) {
  // Table 6 baseline: NTP .4008, DNS .2617, CharGen .2237, SSDP .0838,
  // RIPv1 .0227, other .0073. Web targets skew to NTP (54.69%, §5); joint
  // attacks skew to NTP (47.0%) with CharGen halved (11.5%, §4).
  double ntp = 0.4008, dns = 0.2617, chargen = 0.2237, ssdp = 0.0838,
         rip = 0.0227;
  if (web_target) {
    ntp = 0.5469;
    dns = 0.22;
    chargen = 0.13;
    ssdp = 0.07;
    rip = 0.02;
  } else if (joint) {
    ntp = 0.47;
    dns = 0.28;
    chargen = 0.115;
    ssdp = 0.09;
    rip = 0.03;
  }
  const double u = rng.uniform();
  if (u < ntp) return ReflectionProtocol::kNtp;
  if (u < ntp + dns) return ReflectionProtocol::kDns;
  if (u < ntp + dns + chargen) return ReflectionProtocol::kCharGen;
  if (u < ntp + dns + chargen + ssdp) return ReflectionProtocol::kSsdp;
  if (u < ntp + dns + chargen + ssdp + rip) return ReflectionProtocol::kRipv1;
  // Tail: MSSQL, TFTP, QOTD.
  const double v = rng.uniform();
  if (v < 0.5) return ReflectionProtocol::kMssql;
  if (v < 0.8) return ReflectionProtocol::kTftp;
  return ReflectionProtocol::kQotd;
}

double reflector_rate_factor(ReflectionProtocol protocol) {
  // Per-protocol intensity offsets (Figure 4: NTP has the heaviest tail).
  switch (protocol) {
    case ReflectionProtocol::kNtp:
      return 1.45;
    case ReflectionProtocol::kDns:
      return 1.0;
    case ReflectionProtocol::kCharGen:
      return 0.75;
    case ReflectionProtocol::kSsdp:
      return 0.9;
    case ReflectionProtocol::kRipv1:
      return 0.5;
    default:
      return 0.6;
  }
}

}  // namespace

Attacker::Attacker(std::uint64_t seed, const Population& population,
                   const HostingEcosystem& hosting, StudyWindow window,
                   AttackerConfig config)
    : rng_(seed),
      population_(population),
      hosting_(hosting),
      window_(window),
      config_(config) {}

double Attacker::day_rate_multiplier(int day) const {
  // Mild growth over the window plus weekly structure: the paper's time
  // series trend upward with visible plateaus.
  const double progress =
      static_cast<double>(day) / static_cast<double>(window_.num_days());
  const double growth = 0.85 + 0.4 * progress;
  const double weekly = 1.0 + 0.08 * std::sin(2.0 * 3.14159265358979 *
                                              static_cast<double>(day) / 7.0);
  return growth * weekly;
}

net::Ipv4Addr Attacker::pick_target(bool reflection) {
  const double repeat_p = reflection ? config_.repeat_fraction_reflection
                                     : config_.repeat_fraction_direct;
  auto& pool = reflection ? recent_reflection_ : recent_direct_;
  if (!pool.empty() && rng_.bernoulli(repeat_p))
    return pool[rng_.next_below(pool.size())];

  const double hosting_p = reflection
                               ? config_.hosting_target_fraction_reflection
                               : config_.hosting_target_fraction_direct;
  net::Ipv4Addr target;
  bool hosting_target = false;
  if (rng_.bernoulli(hosting_p)) {
    // Mostly origin hosting IPs; occasionally the DPS front itself.
    target = rng_.bernoulli(config_.dps_target_fraction)
                 ? hosting_.sample_dps_front_ip(rng_)
                 : hosting_.sample_hosting_ip(rng_);
    hosting_target = true;
  } else {
    target = population_.sample_address(rng_);
  }
  // Follow-up attack campaigns are a gamer/booter phenomenon: grudges
  // against individual (broadband, game-server) hosts. Web-hosting IPs
  // mostly see one-off attacks — the paper finds only ~14% of Web sites
  // attacked more than once — so they stay out of the repeat pool.
  if (!hosting_target) {
    if (pool.size() < kRepeatPoolSize) {
      pool.push_back(target);
    } else {
      pool[rng_.next_below(kRepeatPoolSize)] = target;
    }
  }
  return target;
}

void Attacker::pick_ports(GroundTruthAttack& attack, bool joint,
                          bool web_target) {
  const bool tcp =
      attack.ip_proto == static_cast<std::uint8_t>(net::IpProto::kTcp);
  const bool udp =
      attack.ip_proto == static_cast<std::uint8_t>(net::IpProto::kUdp);
  if (!tcp && !udp) return;  // ICMP/other floods are portless
  // Table 7: 60.6% single-port; joint attacks 77.1% single-port.
  const double single_p = joint ? 0.771 : 0.606;
  const int num_ports =
      rng_.bernoulli(single_p) ? 1 : static_cast<int>(rng_.uniform_int(2, 8));
  for (int i = 0; i < num_ports; ++i) {
    attack.ports.push_back(tcp ? sample_tcp_port(rng_, joint, web_target)
                               : sample_udp_port(rng_, joint));
  }
  std::sort(attack.ports.begin(), attack.ports.end());
  attack.ports.erase(std::unique(attack.ports.begin(), attack.ports.end()),
                     attack.ports.end());
}

GroundTruthAttack Attacker::make_direct(net::Ipv4Addr target, double start,
                                        bool joint) {
  GroundTruthAttack attack;
  attack.kind = AttackKind::kDirect;
  attack.target = target;
  attack.start = start;

  // Table 5 protocol mix, conditioned on the target class: attacks on
  // Web-hosting IPs are overwhelmingly TCP (93.4%, §5); the blend over all
  // targets reproduces the overall 79.4 / 15.9 / 4.5 split.
  const bool web_target = hosting_.hosts_websites(target);
  const double p_tcp = web_target ? 0.934 : 0.779;
  const double p_udp = web_target ? 0.045 : 0.169;
  const double p_icmp = web_target ? 0.018 : 0.047;
  const double u = rng_.uniform();
  if (u < p_tcp)
    attack.ip_proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
  else if (u < p_tcp + p_udp)
    attack.ip_proto = static_cast<std::uint8_t>(net::IpProto::kUdp);
  else if (u < p_tcp + p_udp + p_icmp)
    attack.ip_proto = static_cast<std::uint8_t>(net::IpProto::kIcmp);
  else
    attack.ip_proto = static_cast<std::uint8_t>(net::IpProto::kIgmp);
  pick_ports(attack, joint, web_target);

  attack.duration_s = std::clamp(
      rng_.lognormal(config_.direct_duration_mu, config_.direct_duration_sigma),
      45.0, 2.0 * 86400.0);
  // Intensity at the telescope (pps); ground truth is x256. A small
  // heavy-hitter component (large booters / botnets) carries the mean far
  // above the median, as in Figure 3 (mean 107 vs median 1). Record-scale
  // attacks aim at specific individual victims (a business, a game server,
  // one OVH customer); heavily co-hosted infrastructure sees frequent but
  // moderate attacks, which is why the paper's top intensity percentiles
  // are not populated by mass-hosted sites (§6).
  double scope_pps = rng_.lognormal(config_.direct_intensity_mu,
                                    config_.direct_intensity_sigma);
  // DPS fronts serve every protected customer: colossal by construction.
  const std::size_t cohost = hosting_.is_dps_front(target)
                                 ? 100000
                                 : hosting_.domains_on_origin(target).size();
  if (cohost <= 2 && rng_.bernoulli(0.010))
    scope_pps *= rng_.uniform(50.0, 1000.0);
  if (cohost >= 200) scope_pps = std::min(scope_pps, 400.0);
  const bool web = attack.ports.size() == 1 && core::is_web_port(attack.ports[0]);
  if (web) {
    scope_pps *= config_.web_intensity_factor;
    attack.duration_s *= config_.web_duration_factor;
    attack.duration_s = std::max(attack.duration_s, 45.0);
  }
  scope_pps = std::min(scope_pps, 2.0e5);
  attack.victim_pps = scope_pps * 256.0;
  attack.response_rate = rng_.uniform(0.6, 1.0);
  return attack;
}

GroundTruthAttack Attacker::make_reflection(net::Ipv4Addr target, double start,
                                            bool joint) {
  GroundTruthAttack attack;
  attack.kind = AttackKind::kReflection;
  attack.target = target;
  attack.start = start;
  const bool web_target = hosting_.hosts_websites(target);
  attack.reflector = sample_reflector(rng_, web_target, joint);
  attack.duration_s =
      std::clamp(rng_.lognormal(config_.reflection_duration_mu,
                                config_.reflection_duration_sigma),
                 20.0, 30.0 * 3600.0);
  attack.per_reflector_rps =
      rng_.lognormal(config_.reflection_intensity_mu,
                     config_.reflection_intensity_sigma) *
      reflector_rate_factor(attack.reflector);
  // Heavy-hitter component: a small share of reflection attacks use huge
  // request rates (Figure 4's tail into hundreds of thousands rps); like
  // direct record attacks, these aim at specific individual victims.
  const std::size_t cohost = hosting_.is_dps_front(target)
                                 ? 100000
                                 : hosting_.domains_on_origin(target).size();
  if (cohost <= 2 && rng_.bernoulli(0.010))
    attack.per_reflector_rps *= rng_.uniform(20.0, 200.0);
  attack.per_reflector_rps = std::min(attack.per_reflector_rps, 3.0e5);
  if (cohost >= 200)
    attack.per_reflector_rps = std::min(attack.per_reflector_rps, 1500.0);
  attack.reflector_count = static_cast<int>(rng_.uniform_int(200, 8000));
  // Attackers harvest reflector lists via scanning; most lists include most
  // of the fleet (24 instances suffice to catch most attacks, §3.1.2).
  attack.honeypots_hit = static_cast<int>(rng_.uniform_int(10, 24));
  return attack;
}

std::vector<GroundTruthAttack> Attacker::generate() {
  std::vector<GroundTruthAttack> attacks;
  const int days = window_.num_days();

  // Campaign days against mega hosters (Figure-7 peaks). One campaign hits
  // a DPS front IP (the DOSarrest mega co-hosting case).
  std::vector<int> campaign_days;
  for (int c = 0; c < config_.num_campaigns; ++c)
    campaign_days.push_back(
        static_cast<int>(rng_.uniform_int(10, days - 10)));
  std::sort(campaign_days.begin(), campaign_days.end());

  for (int day = 0; day < days; ++day) {
    const double day_start = static_cast<double>(window_.day_start(day));
    const double mult = day_rate_multiplier(day);

    const auto n_direct = rng_.poisson(config_.direct_per_day * mult);
    for (std::uint64_t i = 0; i < n_direct; ++i) {
      const double start = day_start + rng_.uniform(0.0, 86400.0);
      attacks.push_back(make_direct(pick_target(false), start, false));
    }

    const auto n_reflection = rng_.poisson(config_.reflection_per_day * mult);
    for (std::uint64_t i = 0; i < n_reflection; ++i) {
      const double start = day_start + rng_.uniform(0.0, 86400.0);
      const auto target = pick_target(true);
      const bool joint = rng_.bernoulli(config_.joint_fraction);
      auto reflection = make_reflection(target, start, joint);
      if (joint) {
        // Simultaneous direct attack on the same target (e.g. SYN flood +
        // NTP reflection), overlapping in time.
        auto direct = make_direct(
            target, start + rng_.uniform(0.0, reflection.duration_s * 0.5),
            true);
        direct.duration_s =
            std::max(60.0, std::min(direct.duration_s,
                                    reflection.duration_s * 1.5));
        direct.joint = true;
        reflection.joint = true;
        attacks.push_back(std::move(reflection));
        attacks.push_back(std::move(direct));
      } else {
        attacks.push_back(std::move(reflection));
      }
    }

    // Campaigns: a burst of intense attacks on one mega hoster's IPs.
    if (std::binary_search(campaign_days.begin(), campaign_days.end(), day)) {
      const auto& hosters = hosting_.hosters();
      std::size_t mega_count = 0;
      for (const auto& h : hosters)
        if (h.mega) ++mega_count;
      const auto pick = rng_.next_below(mega_count);
      std::size_t seen = 0;
      const Hoster* victim_hoster = nullptr;
      for (const auto& h : hosters) {
        if (!h.mega) continue;
        if (seen++ == pick) {
          victim_hoster = &h;
          break;
        }
      }
      const int burst = static_cast<int>(rng_.uniform_int(12, 28));
      for (int b = 0; b < burst; ++b) {
        const auto target =
            victim_hoster->ips[rng_.next_below(victim_hoster->ips.size())];
        const double start = day_start + rng_.uniform(0.0, 86400.0);
        auto direct = make_direct(target, start, true);
        // Campaign attacks are high intensity (drives Figure 7 bottom) but
        // stay below record scale (see the heavy-hitter note above).
        direct.victim_pps =
            std::min(std::max(direct.victim_pps, 256.0 * 150.0) *
                         rng_.uniform(1.0, 2.5),
                     256.0 * 400.0);
        direct.ports = {rng_.bernoulli(0.7) ? std::uint16_t{80}
                                            : std::uint16_t{443}};
        attacks.push_back(std::move(direct));
        if (rng_.bernoulli(0.6)) {
          auto reflection = make_reflection(target, start + 60.0, true);
          reflection.per_reflector_rps *= rng_.uniform(2.0, 8.0);
          // Campaign reflections run long (the Wix-style multi-hour sieges
          // behind Figure 11).
          if (rng_.bernoulli(0.5)) {
            reflection.duration_s =
                std::max(reflection.duration_s, rng_.uniform(3.5, 9.0) * 3600.0);
          }
          attacks.push_back(std::move(reflection));
        }
      }
    }
  }

  std::sort(attacks.begin(), attacks.end(),
            [](const GroundTruthAttack& a, const GroundTruthAttack& b) {
              return a.start < b.start;
            });
  return attacks;
}

}  // namespace dosm::sim
