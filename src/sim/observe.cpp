#include "sim/observe.h"

#include <algorithm>
#include <cmath>

namespace dosm::sim {

std::optional<telescope::TelescopeEvent> observe_telescope(
    const GroundTruthAttack& attack, Rng& rng,
    const ObservationConfig& config) {
  if (attack.kind != AttackKind::kDirect) return std::nullopt;
  const double rate =
      attack.victim_pps * attack.response_rate * config.telescope_coverage;
  if (rate <= 0.0 || attack.duration_s <= 0.0) return std::nullopt;

  const double expected = rate * attack.duration_s;
  const std::uint64_t packets = rng.poisson(expected);
  const auto& thresholds = config.telescope_thresholds;
  if (packets < thresholds.min_packets) return std::nullopt;

  // Observed span: first/last backscatter packet of a Poisson process over
  // the true span; the expected clipping is duration/(n+1) at both ends.
  const double clip =
      attack.duration_s / (static_cast<double>(packets) + 1.0);
  const double observed_duration =
      std::max(0.0, attack.duration_s - clip * (1.0 + rng.uniform()));
  if (observed_duration < thresholds.min_duration_s) return std::nullopt;

  // Moore's intensity statistic: max packets/sec over one-minute buckets.
  // Sample per-minute Poisson counts (bounded number of draws; for very
  // long attacks the max of k Poisson draws stabilizes quickly).
  const double per_minute = rate * 60.0;
  const int minutes =
      std::max(1, static_cast<int>(attack.duration_s / 60.0));
  const int draws = std::min(minutes, 240);
  std::uint64_t max_count = 0;
  for (int i = 0; i < draws; ++i)
    max_count = std::max(max_count, rng.poisson(per_minute));
  const double max_pps = static_cast<double>(max_count) / 60.0;
  if (max_pps < thresholds.min_max_pps) return std::nullopt;

  telescope::TelescopeEvent event;
  event.victim = attack.target;
  event.start = attack.start + clip * rng.uniform();
  event.end = event.start + observed_duration;
  event.packets = packets;
  event.bytes = packets * 46;  // representative mean backscatter size
  // Uniform random spoofing: nearly all sampled sources are distinct until
  // the tracker saturates (matching FlowTable's 4096 cap).
  event.unique_sources =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(packets, 4096));
  event.num_ports = static_cast<std::uint16_t>(attack.ports.size());
  event.top_port = attack.ports.empty() ? 0 : attack.ports.front();
  event.attack_proto = attack.ip_proto;
  event.max_pps = max_pps;
  return event;
}

std::optional<amppot::AmpPotEvent> observe_amppot(
    const GroundTruthAttack& attack, Rng& rng,
    const ObservationConfig& config) {
  if (attack.kind != AttackKind::kReflection) return std::nullopt;
  if (attack.honeypots_hit <= 0 || attack.per_reflector_rps <= 0.0)
    return std::nullopt;

  // The consolidator caps per-honeypot sessions at 24 h.
  const double effective_duration =
      std::min(attack.duration_s, config.amppot_config.max_duration_s);
  const double expected_per_honeypot =
      attack.per_reflector_rps * effective_duration;

  // A honeypot produces an event only when its request count exceeds the
  // threshold; the fleet-level event merges the qualifying honeypots.
  std::uint64_t total_requests = 0;
  std::uint32_t qualifying = 0;
  for (int h = 0; h < attack.honeypots_hit; ++h) {
    const std::uint64_t requests = rng.poisson(expected_per_honeypot);
    if (requests > config.amppot_config.min_requests) {
      total_requests += requests;
      ++qualifying;
    }
  }
  if (qualifying == 0) return std::nullopt;

  const double mean_requests =
      static_cast<double>(total_requests) / static_cast<double>(qualifying);
  const double clip = effective_duration / (mean_requests + 1.0);

  amppot::AmpPotEvent event;
  event.victim = attack.target;
  event.protocol = attack.reflector;
  event.start = attack.start + clip * rng.uniform();
  event.end = event.start + std::max(0.0, effective_duration - 2.0 * clip);
  event.requests = total_requests;
  event.honeypots = qualifying;
  return event;
}

ObservedEvents observe_all(std::span<const GroundTruthAttack> attacks, Rng& rng,
                           const ObservationConfig& config) {
  ObservedEvents out;
  for (const auto& attack : attacks) {
    if (attack.kind == AttackKind::kDirect) {
      if (auto event = observe_telescope(attack, rng, config))
        out.telescope.push_back(*event);
    } else {
      if (auto event = observe_amppot(attack, rng, config))
        out.honeypot.push_back(*event);
    }
  }
  return out;
}

}  // namespace dosm::sim
