// Scenario orchestration: builds a complete simulated world and runs the
// full measurement/fusion pipeline over it.
//
// Construction order mirrors the paper's data flow:
//   population -> hosting ecosystem (initial DNS state, preexisting DPS)
//   -> attacker ground truth -> DPS migration behaviour (DNS changes)
//   -> detector observation (telescope + honeypot events)
//   -> fused EventStore + reverse DNS index, ready for every analysis.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/event_store.h"
#include "dns/names.h"
#include "dns/snapshot.h"
#include "dps/providers.h"
#include "sim/attacker.h"
#include "sim/hosting.h"
#include "sim/migration_model.h"
#include "sim/observe.h"
#include "sim/population.h"

namespace dosm::sim {

struct ScenarioConfig {
  std::uint64_t seed = 42;
  StudyWindow window{};  // the paper's 731-day window
  PopulationConfig population{};
  HostingConfig hosting{};
  AttackerConfig attacker{};
  MigrationConfig migration{};
  ObservationConfig observation{};

  /// Returns a configuration scaled down for unit tests (short window,
  /// small namespace) that still exercises every code path.
  static ScenarioConfig small();
};

/// A fully-built world. Heap-allocate via build_world(); internal members
/// hold cross-references, so the object is neither copyable nor movable.
class World {
  Rng rng_;  // declared first: seeds every later member's construction

 public:
  explicit World(const ScenarioConfig& config);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  const ScenarioConfig config;
  StudyWindow window;

  dps::ProviderRegistry providers;
  dns::NameTable names;
  dns::SnapshotStore dns;
  Population population;
  HostingEcosystem hosting;

  std::vector<GroundTruthAttack> truth;
  std::vector<MigrationRecord> migrations;  // ground-truth DNS changes
  std::vector<telescope::TelescopeEvent> telescope_events;
  std::vector<amppot::AmpPotEvent> honeypot_events;

  /// Fused, finalized event store over both detectors.
  core::EventStore store;
};

/// Builds the world for a configuration (default: paper-scaled defaults).
std::unique_ptr<World> build_world(const ScenarioConfig& config = {});

}  // namespace dosm::sim
