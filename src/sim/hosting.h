// The simulated Web-hosting ecosystem.
//
// Registers domains across .com/.net/.org (weights from Table 2), assigns
// each to a hoster (mega-hosters like GoDaddy/Wix/OVH, a Zipf tail of
// generic hosters, and self-hosted sites on their own IPs) and writes the
// initial DNS state into the SnapshotStore: www A records at the hosting
// IP, hoster name servers, and — for preexisting DPS customers — the
// provider CNAME plus a provider-front A record. Ground-truth site→IP
// mappings are kept so the attacker and the migration model never have to
// go through the (detection-side) DNS index.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "dns/snapshot.h"
#include "dps/providers.h"
#include "sim/population.h"

namespace dosm::sim {

struct HostingConfig {
  int num_domains = 60000;
  /// Fraction of domains hosting themselves on a dedicated IP.
  double self_host_fraction = 0.24;
  /// Fraction of domains on micro-shared hosting (VPS-style IPs serving a
  /// handful of sites each) — the Figure-6 "1<n<=10" co-hosting bin.
  double micro_shared_fraction = 0.22;
  /// Generic (non-pinned) hosters in the Zipf tail.
  int num_generic_hosters = 120;
  /// Domains first observed after day 0 (uniform over the window).
  double late_registration_fraction = 0.18;
  /// Preexisting-DPS-customer probability by hoster class.
  double preexisting_mega = 0.42;
  double preexisting_generic = 0.10;
  double preexisting_self = 0.015;
  /// Share of preexisting customers served from the concentrated flagship
  /// fronts (the rest sit on the unattacked tail, giving the paper's small
  /// unattacked-preexisting population).
  double preexisting_flagship_share = 0.97;
  /// Fraction of domains given an MX record (mail, future-work hook).
  double mx_fraction = 0.5;
};

struct Hoster {
  std::string name;
  meta::Asn asn = 0;
  std::vector<net::Ipv4Addr> ips;
  /// Shared mail exchangers serving the hoster's customers (the §8
  /// mail-infrastructure extension: "GoDaddy's e-mail servers, used by tens
  /// of millions of domain names, are frequently targeted").
  std::vector<net::Ipv4Addr> mail_ips;
  dns::NameId ns = dns::kNoName;
  dns::NameId mail_name = dns::kNoName;
  double popularity = 1.0;  // domain-assignment weight
  bool mega = false;
};

/// Ground-truth state of one site.
struct SiteInfo {
  int hoster = -1;  // index into hosters(); -1 = self-hosted
  net::Ipv4Addr origin_ip;  // hosting IP before any DPS diversion
  int first_seen = 0;
  dps::ProviderId preexisting = dps::kNoProvider;
};

class HostingEcosystem {
 public:
  /// Populates `store` (which must span the study window) and `names`.
  HostingEcosystem(Rng& rng, const Population& population,
                   const dps::ProviderRegistry& providers,
                   dns::NameTable& names, dns::SnapshotStore& store,
                   const HostingConfig& config = {});

  const std::vector<Hoster>& hosters() const { return hosters_; }
  const SiteInfo& site(dns::DomainId id) const { return sites_.at(id); }
  std::size_t num_sites() const { return sites_.size(); }

  /// Ground-truth domains whose origin is `ip` (registration-time mapping).
  std::vector<dns::DomainId> domains_on_origin(net::Ipv4Addr ip) const;

  /// Ground-truth domains whose mail exchanger is `ip`.
  std::vector<dns::DomainId> domains_with_mail_on(net::Ipv4Addr ip) const;

  /// Samples a hosting IP for attack targeting, weighted so heavily-loaded
  /// hoster IPs attract more attacks. May return a self-hosted site's IP.
  net::Ipv4Addr sample_hosting_ip(Rng& rng) const;

  /// Attack-targetable hosting/mail IPs in the sampler's index order —
  /// address-sorted so the mapping is independent of hash iteration order.
  const std::vector<net::Ipv4Addr>& attackable_ips() const {
    return attackable_ips_;
  }

  /// Hoster index owning `ip`, or -1 (self-hosted / unknown).
  int hoster_of_ip(net::Ipv4Addr ip) const;

  /// True if `ip` serves Web sites: a ground-truth origin hosting IP or a
  /// DPS reverse-proxy front (which serves every protected customer).
  bool hosts_websites(net::Ipv4Addr ip) const;

  /// True if `ip` is a DPS reverse-proxy front (flagship or tail).
  bool is_dps_front(net::Ipv4Addr ip) const {
    return front_ip_set_.contains(ip);
  }

  /// A random provider front IP (attackers occasionally aim straight at
  /// protection infrastructure — the paper's DOSarrest mega-target).
  net::Ipv4Addr sample_dps_front_ip(Rng& rng) const;

  /// A provider's reverse-proxy front IP. Flagship fronts are the handful
  /// of high-profile shared IPs where bulk (preexisting) customer bases
  /// concentrate — the paper's DOSarrest-style mega co-hosting groups, and
  /// the fronts attackers actually aim at. Non-flagship fronts are the long
  /// tail that individual (migrating) customers land on.
  net::Ipv4Addr provider_front_ip(dps::ProviderId provider, Rng& rng,
                                  bool flagship = false) const;

  /// The protected-site DNS record for a domain on `provider`.
  dns::WebsiteRecord protected_record(dns::DomainId domain,
                                      dps::ProviderId provider, Rng& rng,
                                      bool flagship = false);

  /// Chooses a provider for a new customer, weighted by the Table-3 market
  /// shares.
  dps::ProviderId sample_provider(Rng& rng) const;

  /// Per-domain count of .com/.net/.org registrations (Table 2 scale).
  std::uint64_t domains_in_tld(const std::string& tld) const;

 private:
  void build_hosters(Rng& rng, const Population& population);
  void register_domains(Rng& rng, const HostingConfig& config);

  const Population& population_;
  const dps::ProviderRegistry& providers_;
  dns::NameTable& names_;
  dns::SnapshotStore& store_;
  HostingConfig config_;

  std::vector<Hoster> hosters_;
  std::vector<SiteInfo> sites_;
  std::unordered_map<net::Ipv4Addr, int> ip_to_hoster_;
  std::unordered_map<net::Ipv4Addr, std::vector<dns::DomainId>> origin_index_;
  std::unordered_map<net::Ipv4Addr, std::vector<dns::DomainId>> mail_index_;
  std::vector<net::Ipv4Addr> attackable_ips_;
  AliasTable ip_attack_sampler_;
  AliasTable provider_sampler_;
  std::vector<std::vector<net::Ipv4Addr>> provider_fronts_;
  std::unordered_set<net::Ipv4Addr> front_ip_set_;
  std::uint64_t tld_counts_[3] = {0, 0, 0};  // com, net, org
};

}  // namespace dosm::sim
