#include "sim/migration_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace dosm::sim {

MigrationModel::MigrationModel(std::uint64_t seed, HostingEcosystem& hosting,
                               dns::SnapshotStore& store, StudyWindow window,
                               MigrationConfig config)
    : rng_(seed),
      hosting_(hosting),
      store_(store),
      window_(window),
      config_(config) {}

double MigrationModel::intensity_rank(const GroundTruthAttack& attack) const {
  const auto& pool = attack.kind == AttackKind::kDirect
                         ? direct_intensities_
                         : reflection_intensities_;
  if (pool.empty()) return 0.5;
  const double value = attack.kind == AttackKind::kDirect
                           ? attack.victim_pps
                           : attack.per_reflector_rps;
  // Midpoint rank of the tie group, so a cluster of identical top values
  // still ranks near 1 rather than at its lower bound.
  const auto lo = std::lower_bound(pool.begin(), pool.end(), value);
  const auto hi = std::upper_bound(pool.begin(), pool.end(), value);
  const double mid =
      (static_cast<double>(lo - pool.begin()) + static_cast<double>(hi - pool.begin())) /
      2.0;
  return mid / static_cast<double>(pool.size());
}

int MigrationModel::sample_delay(double rank) {
  const double p_urgent =
      std::min(0.98, config_.urgent_base +
                         config_.urgent_gain * std::pow(rank, config_.urgent_power));
  // The minimum DNS-visible delay is one day: a record changed hours after
  // the attack only shows up in the *next* daily snapshot, so a same-day
  // flip would (wrongly) hide the triggering attack from the day-granular
  // join.
  if (rng_.bernoulli(p_urgent)) return 1;
  const double days =
      rng_.lognormal(config_.slow_delay_mu, config_.slow_delay_sigma);
  return 2 + static_cast<int>(std::min(days, 150.0));
}

std::vector<MigrationRecord> MigrationModel::apply(
    std::span<const GroundTruthAttack> attacks) {
  const int days = window_.num_days();

  // Intensity pools for percentile ranks, plus a duration pool: a long
  // outage also creates urgency (Figure 11), even though duration does not
  // drive the migration *decision* the way intensity does.
  direct_intensities_.clear();
  reflection_intensities_.clear();
  durations_.clear();
  for (const auto& attack : attacks) {
    if (attack.kind == AttackKind::kDirect)
      direct_intensities_.push_back(attack.victim_pps);
    else
      reflection_intensities_.push_back(attack.per_reflector_rps);
    durations_.push_back(attack.duration_s);
  }
  std::sort(direct_intensities_.begin(), direct_intensities_.end());
  std::sort(reflection_intensities_.begin(), reflection_intensities_.end());
  std::sort(durations_.begin(), durations_.end());

  std::vector<bool> domain_decided(store_.num_domains(), false);
  std::vector<std::uint16_t> exposures(store_.num_domains(), 0);
  std::vector<bool> hoster_decided(hosting_.hosters().size(), false);
  // IPs hit by trigger-worthy attacks so far (wholesale moves cover the
  // hoster's *attacked* infrastructure, as in the Wix case where the moved
  // sites sat on the attacked shared IPs).
  std::unordered_set<std::uint32_t> triggered_ips;
  std::vector<MigrationRecord> proposals;

  // Spontaneous background adoption, decided upfront. Only independently
  // operated sites (self-hosted or micro-shared) adopt on their own; a
  // shared-hosting customer does not CNAME to a DPS independently of its
  // hoster.
  store_.for_each_domain([&](dns::DomainId id, const dns::DomainEntry& entry) {
    const auto& site = hosting_.site(id);
    if (site.preexisting != dps::kNoProvider) return;
    if (site.hoster >= 0) return;
    if (!rng_.bernoulli(config_.spontaneous_fraction)) return;
    if (entry.first_seen_day >= days - 1) return;
    MigrationRecord record;
    record.domain = id;
    record.decision_day = static_cast<int>(
        rng_.uniform_int(entry.first_seen_day, days - 1));
    record.migration_day = record.decision_day;
    record.provider = hosting_.sample_provider(rng_);
    record.attack_driven = false;
    proposals.push_back(record);
    domain_decided[id] = true;
  });

  // Attack-driven decisions, in time order.
  for (const auto& attack : attacks) {
    const auto ts = static_cast<UnixSeconds>(attack.start);
    if (!window_.contains(ts)) continue;
    const int day = window_.day_of(ts);
    const double rank = intensity_rank(attack);
    if (rank < config_.min_trigger_rank) continue;
    if (attack.duration_s < config_.min_trigger_duration_s) continue;
    triggered_ips.insert(attack.target.value());
    // Urgency blends intensity with duration; the *decision* to migrate
    // stays intensity-driven (the paper's Figure 9-11 asymmetry).
    const auto dur_lo = std::lower_bound(durations_.begin(), durations_.end(),
                                         attack.duration_s);
    const double dur_rank = static_cast<double>(dur_lo - durations_.begin()) /
                            static_cast<double>(durations_.size());
    const double urgency = std::max(rank, dur_rank);
    const double boost =
        1.0 + config_.intensity_probability_boost * std::pow(rank, 8.0);

    const int hoster_index = hosting_.hoster_of_ip(attack.target);
    const bool colossal_target =
        hosting_.domains_on_origin(attack.target).size() >=
        config_.max_wholesale_cohost;
    if (hoster_index >= 0 && !colossal_target &&
        !hoster_decided[static_cast<std::size_t>(hoster_index)] &&
        rng_.bernoulli(std::min(0.9, config_.hoster_base_probability * boost))) {
      // Wholesale hoster migration: every eligible customer moves at once.
      hoster_decided[static_cast<std::size_t>(hoster_index)] = true;
      const auto provider = hosting_.sample_provider(rng_);
      const int delay = sample_delay(urgency);
      const auto& hoster =
          hosting_.hosters()[static_cast<std::size_t>(hoster_index)];
      for (const auto& ip : hoster.ips) {
        if (!triggered_ips.contains(ip.value())) continue;
        const auto& moved = hosting_.domains_on_origin(ip);
        if (moved.size() >= config_.max_wholesale_cohost) continue;
        for (const auto domain : moved) {
          if (domain_decided[domain]) continue;
          const auto& site = hosting_.site(domain);
          if (site.preexisting != dps::kNoProvider) continue;
          if (site.first_seen > day) continue;
          MigrationRecord record;
          record.domain = domain;
          record.decision_day = day;
          record.migration_day = std::min(day + delay, days - 1);
          record.provider = provider;
          record.attack_driven = true;
          record.hoster_wide = true;
          proposals.push_back(record);
          domain_decided[domain] = true;
        }
      }
      continue;
    }

    // Individual site decisions on the attacked IP. A site sharing an IP
    // with thousands of others rarely even notices an ordinary attack (the
    // hoster absorbs it), so the per-site probability shrinks with the
    // co-hosting magnitude — but an extreme attack takes the whole IP down
    // for everyone, and urgency overrides the damping (§6: intense attacks
    // sharply accelerate migration).
    const auto& cohosted = hosting_.domains_on_origin(attack.target);
    const double cohost_scale =
        1.0 / std::max<double>(1.0, static_cast<double>(cohosted.size()));
    const double p_site =
        std::min(0.9, config_.site_base_probability * boost * cohost_scale);
    for (const auto domain : cohosted) {
      if (domain_decided[domain]) continue;
      const auto& site = hosting_.site(domain);
      if (site.preexisting != dps::kNoProvider) continue;
      if (site.first_seen > day) continue;
      if (exposures[domain] >= config_.habituation_exposures) continue;
      ++exposures[domain];
      if (!rng_.bernoulli(p_site)) continue;
      MigrationRecord record;
      record.domain = domain;
      record.decision_day = day;
      record.migration_day = std::min(day + sample_delay(urgency), days - 1);
      record.provider = hosting_.sample_provider(rng_);
      record.attack_driven = true;
      proposals.push_back(record);
      domain_decided[domain] = true;
    }
  }

  // Apply in migration-day order (one change per domain, so ordering is
  // only needed for deterministic output).
  std::sort(proposals.begin(), proposals.end(),
            [](const MigrationRecord& a, const MigrationRecord& b) {
              if (a.migration_day != b.migration_day)
                return a.migration_day < b.migration_day;
              return a.domain < b.domain;
            });
  for (const auto& record : proposals) {
    auto protected_rec =
        hosting_.protected_record(record.domain, record.provider, rng_);
    store_.record_change(record.domain, record.migration_day, protected_rec);
  }
  return proposals;
}

}  // namespace dosm::sim
