#include "sim/scenario.h"

namespace dosm::sim {

ScenarioConfig ScenarioConfig::small() {
  ScenarioConfig config;
  config.window.start = {2015, 3, 1};
  config.window.end = {2015, 4, 29};  // 60 days
  config.population.total_slash16 = 400;
  config.hosting.num_domains = 4000;
  config.hosting.num_generic_hosters = 30;
  config.attacker.direct_per_day = 40;
  config.attacker.reflection_per_day = 30;
  config.attacker.num_campaigns = 2;
  return config;
}

World::World(const ScenarioConfig& cfg)
    : rng_(cfg.seed),
      config(cfg),
      window(cfg.window),
      providers(dps::paper_providers()),
      names(),
      dns(cfg.window.num_days()),
      population(rng_, cfg.population),
      hosting(rng_, population, providers, names, dns, cfg.hosting),
      store(cfg.window) {
  Attacker attacker(rng_.next_u64(), population, hosting, window,
                    cfg.attacker);
  truth = attacker.generate();

  MigrationModel migration_model(rng_.next_u64(), hosting, dns, window,
                                 cfg.migration);
  migrations = migration_model.apply(truth);

  Rng observe_rng = rng_.fork("observe");
  auto observed = observe_all(truth, observe_rng, cfg.observation);
  telescope_events = std::move(observed.telescope);
  honeypot_events = std::move(observed.honeypot);

  dns.build_reverse_index();
  store.add_telescope(telescope_events);
  store.add_amppot(honeypot_events);
  store.finalize();
}

std::unique_ptr<World> build_world(const ScenarioConfig& config) {
  return std::make_unique<World>(config);
}

}  // namespace dosm::sim
