// Analytic observation: projecting ground-truth attacks into the events the
// two detectors would emit.
//
// This is the macroscopic (event-level) tier of the two-tier design: instead
// of synthesizing every packet over two years, the expected measurement of
// each attack is sampled directly — Poisson backscatter counts at 1/256
// telescope coverage, per-minute maxima for the Moore max-pps statistic,
// per-honeypot Poisson request counts with the 100-request threshold and the
// 24 h cap. The packet-level tier (telescope::TelescopeSynthesizer,
// amppot::HoneypotFleet) exercises the identical detection logic on real
// bytes; the ablation bench compares the two on shared ground truth.
#pragma once

#include <optional>
#include <vector>

#include "amppot/consolidator.h"
#include "common/rng.h"
#include "sim/attacker.h"
#include "telescope/flow_table.h"

namespace dosm::sim {

struct ObservationConfig {
  telescope::ClassifierThresholds telescope_thresholds{};
  amppot::ConsolidatorConfig amppot_config{};
  /// Telescope coverage of the IPv4 space (1/256 for the UCSD /8).
  double telescope_coverage = 1.0 / 256.0;
};

/// What the telescope pipeline would report for a direct attack, or nullopt
/// when the attack falls below the Moore thresholds (or is a reflection
/// attack, invisible to the telescope).
std::optional<telescope::TelescopeEvent> observe_telescope(
    const GroundTruthAttack& attack, Rng& rng,
    const ObservationConfig& config = {});

/// What the AmpPot fleet would report for a reflection attack, or nullopt
/// when no honeypot sees enough requests (or it is a direct attack).
std::optional<amppot::AmpPotEvent> observe_amppot(
    const GroundTruthAttack& attack, Rng& rng,
    const ObservationConfig& config = {});

/// Batch observation over a whole ground-truth history.
struct ObservedEvents {
  std::vector<telescope::TelescopeEvent> telescope;
  std::vector<amppot::AmpPotEvent> honeypot;
};

ObservedEvents observe_all(std::span<const GroundTruthAttack> attacks, Rng& rng,
                           const ObservationConfig& config = {});

}  // namespace dosm::sim
