#include "sim/hosting.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace dosm::sim {

namespace {

struct MegaHosterSpec {
  const char* name;
  const char* org;       // pinned-org ASN lookup key
  int num_ips;
  double popularity;     // share of all domains, roughly
  double ip_skew;        // Zipf exponent over the hoster's IPs
};

/// The larger parties §5 names: GoDaddy, Google Cloud and Wix are the three
/// most frequently attacked; Squarespace, Gandi, OVH, Automattic
/// (WordPress), eNom, EIG and Network Solutions also appear.
constexpr MegaHosterSpec kMegaHosters[] = {
    {"GoDaddy", "GoDaddy", 36, 0.115, 0.9},
    {"Wix", "Wix", 8, 0.055, 0.7},
    {"Google Cloud", "Google Cloud", 40, 0.050, 1.0},
    {"Amazon AWS", "Amazon AWS", 56, 0.045, 1.1},
    {"Squarespace", "Squarespace", 8, 0.030, 0.7},
    {"WordPress.com", "Automattic", 6, 0.035, 0.5},
    {"OVH", "OVH", 46, 0.040, 1.0},
    {"eNom", "eNom", 14, 0.025, 0.8},
    {"EIG", "EIG", 26, 0.030, 0.9},
    {"Network Solutions", "Network Solutions", 18, 0.020, 0.9},
    {"Gandi", "Gandi", 12, 0.012, 0.8},
};

std::string slug(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

HostingEcosystem::HostingEcosystem(Rng& rng, const Population& population,
                                   const dps::ProviderRegistry& providers,
                                   dns::NameTable& names,
                                   dns::SnapshotStore& store,
                                   const HostingConfig& config)
    : population_(population),
      providers_(providers),
      names_(names),
      store_(store),
      config_(config) {
  // Provider front IPs: each provider serves customers from a pool of
  // reverse-proxy addresses inside its announced space.
  provider_fronts_.resize(providers_.size() + 1);
  std::vector<double> provider_weights;  // Table-3 market shares
  static const double kShares[] = {5.86, 0.87, 4.27, 7.04, 3.58,
                                   3.78, 0.47, 10.78, 4.34, 0.01};
  for (const auto& provider : providers_.all()) {
    const auto& prefix = provider.prefixes.front();
    // The first kFlagshipFronts addresses are the concentrated shared IPs;
    // the rest are the per-customer tail.
    const int fronts = provider.id == providers_.find("DOSarrest").value_or(0)
                           ? 26  // DOSarrest concentrates huge numbers per IP
                           : 40;
    for (int i = 0; i < fronts; ++i) {
      const auto front = prefix.address_at(10 + static_cast<std::uint64_t>(i));
      provider_fronts_[provider.id].push_back(front);
      front_ip_set_.insert(front);
    }
    provider_weights.push_back(
        provider.id <= 10 ? kShares[provider.id - 1] : 1.0);
  }
  provider_sampler_ = AliasTable(provider_weights);

  build_hosters(rng, population);
  register_domains(rng, config);

  // Attack-targeting sampler over hosting IPs. Two regimes reconcile the
  // paper's seemingly contradictory findings (Fig 7: ~3% of all sites on
  // attacked IPs *daily*; Fig 9: 92% of attacked sites see <= 5 attacks in
  // two years): ordinary hosting IPs are hit near-uniformly and rarely,
  // while the handful of colossal co-hosting IPs (the Fig-6 top bins —
  // GoDaddy/WordPress/Wix-scale shared IPs) are high-profile targets
  // absorbing attacks near-daily; their co-hosted sites are exactly the
  // multi-attacked tail of Fig 9.
  // The indexes iterate in hash order, which is not stable across standard
  // library implementations: collect (ip, weight) pairs and sort by address
  // before freezing the sampler's index -> IP mapping, so attack-target
  // sequences are reproducible everywhere.
  std::vector<std::pair<net::Ipv4Addr, double>> entries;
  entries.reserve(origin_index_.size() + mail_index_.size());
  for (const auto& [ip, domains] : origin_index_) {
    const auto sites = static_cast<double>(domains.size());
    double weight = std::pow(sites, 0.6);
    if (sites >= 200.0) weight += sites * 20.0;  // colossal regime
    entries.emplace_back(ip, weight);
  }
  // Shared mail exchangers are targets in their own right (§8): weighted by
  // served domains but below the Web-hosting weights.
  for (const auto& [ip, domains] : mail_index_) {
    if (origin_index_.contains(ip)) continue;  // self-hosted mail == web IP
    const auto served = static_cast<double>(domains.size());
    double weight = 0.5 * std::pow(served, 0.25);
    if (served >= 500.0) weight += served * 2.0;  // GoDaddy-mail regime
    entries.emplace_back(ip, weight);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.first.value() < b.first.value();
            });
  std::vector<double> weights;
  attackable_ips_.reserve(entries.size());
  weights.reserve(entries.size());
  for (const auto& [ip, weight] : entries) {
    attackable_ips_.push_back(ip);
    weights.push_back(weight);
  }
  ip_attack_sampler_ = AliasTable(weights);
}

void HostingEcosystem::build_hosters(Rng& rng, const Population& population) {
  for (const auto& spec : kMegaHosters) {
    Hoster hoster;
    hoster.name = spec.name;
    hoster.asn = population.asn_of(spec.org);
    hoster.mega = true;
    hoster.popularity = spec.popularity;
    hoster.ns = names_.intern("ns1." + slug(hoster.name) + "-dns.com");
    hoster.mail_name = names_.intern("mail." + slug(hoster.name) + ".com");
    for (int i = 0; i < spec.num_ips; ++i) {
      const auto ip = population_.sample_address_in_as(hoster.asn, rng);
      hoster.ips.push_back(ip);
      ip_to_hoster_[ip] = static_cast<int>(hosters_.size());
    }
    // A handful of shared mail exchangers per mega hoster.
    const int mail_ips = 2 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < mail_ips; ++i) {
      const auto ip = population_.sample_address_in_as(hoster.asn, rng);
      hoster.mail_ips.push_back(ip);
      ip_to_hoster_[ip] = static_cast<int>(hosters_.size());
    }
    hosters_.push_back(std::move(hoster));
  }
  // Generic hoster tail, popularity ~ Zipf.
  for (int i = 0; i < config_.num_generic_hosters; ++i) {
    Hoster hoster;
    hoster.name = "hoster" + std::to_string(i);
    hoster.asn = 0;  // assigned implicitly by IP allocation
    hoster.mega = false;
    hoster.popularity = 0.18 / std::pow(static_cast<double>(i + 2), 0.9);
    hoster.ns = names_.intern("ns1." + hoster.name + ".net");
    hoster.mail_name = names_.intern("mail." + hoster.name + ".net");
    const int num_ips = static_cast<int>(rng.uniform_int(4, 24));
    for (int j = 0; j < num_ips; ++j) {
      const auto ip = population_.sample_address(rng);
      hoster.ips.push_back(ip);
      ip_to_hoster_[ip] = static_cast<int>(hosters_.size());
    }
    const auto mail_ip = population_.sample_address(rng);
    hoster.mail_ips.push_back(mail_ip);
    ip_to_hoster_[mail_ip] = static_cast<int>(hosters_.size());
    hosters_.push_back(std::move(hoster));
  }
}

void HostingEcosystem::register_domains(Rng& rng, const HostingConfig& config) {
  const int days = store_.num_days();
  sites_.reserve(static_cast<std::size_t>(config.num_domains));

  // Hoster sampler over popularity (self-hosting handled separately).
  std::vector<double> hoster_weights;
  hoster_weights.reserve(hosters_.size());
  for (const auto& hoster : hosters_) hoster_weights.push_back(hoster.popularity);
  const AliasTable hoster_sampler(hoster_weights);

  // Micro-shared (VPS-style) hosting: each IP takes a small handful of
  // sites; a fresh IP is opened when the current one fills up.
  net::Ipv4Addr micro_ip;
  int micro_capacity = 0;
  int micro_used = 0;

  for (int d = 0; d < config.num_domains; ++d) {
    // TLD mix from Table 2: 173.7M com / 21.6M net / 14.7M org.
    const double tld_draw = rng.uniform();
    const char* tld = tld_draw < 0.827 ? "com" : (tld_draw < 0.930 ? "net" : "org");
    ++tld_counts_[tld_draw < 0.827 ? 0 : (tld_draw < 0.930 ? 1 : 2)];
    const std::string name =
        "site" + std::to_string(d) + "." + tld;

    const int first_seen =
        rng.bernoulli(config.late_registration_fraction)
            ? static_cast<int>(rng.uniform_int(1, days - 1))
            : 0;
    const auto id = store_.add_domain(name, first_seen);

    SiteInfo site;
    site.first_seen = first_seen;
    double preexisting_p = config.preexisting_self;
    const double hosting_class = rng.uniform();
    if (hosting_class < config.self_host_fraction) {
      site.origin_ip = population_.sample_address(rng);
    } else if (hosting_class <
               config.self_host_fraction + config.micro_shared_fraction) {
      if (micro_used >= micro_capacity) {
        micro_ip = population_.sample_address(rng);
        micro_capacity = static_cast<int>(rng.uniform_int(2, 9));
        micro_used = 0;
      }
      site.origin_ip = micro_ip;
      ++micro_used;
    } else {
      site.hoster = static_cast<int>(hoster_sampler.sample(rng));
      const Hoster& hoster = hosters_[static_cast<std::size_t>(site.hoster)];
      // Within a hoster, load skews toward its first IPs.
      const ZipfSampler ip_pick(hoster.ips.size(), hoster.mega ? 0.8 : 0.5);
      site.origin_ip = hoster.ips[ip_pick.sample(rng) - 1];
      preexisting_p =
          hoster.mega ? config.preexisting_mega : config.preexisting_generic;
    }
    origin_index_[site.origin_ip].push_back(id);

    dns::WebsiteRecord record;
    if (rng.bernoulli(preexisting_p)) {
      site.preexisting = sample_provider(rng);
      // Preexisting bulk customers concentrate on the flagship fronts.
      record = protected_record(
          id, site.preexisting, rng,
          /*flagship=*/rng.bernoulli(config.preexisting_flagship_share));
    } else {
      record.www_a = site.origin_ip;
      record.ns = site.hoster >= 0
                      ? hosters_[static_cast<std::size_t>(site.hoster)].ns
                      : names_.intern("ns1." + name);
    }
    if (rng.bernoulli(config.mx_fraction)) {
      if (site.hoster >= 0) {
        // Hosted mail rides the hoster's shared exchangers.
        const Hoster& hoster = hosters_[static_cast<std::size_t>(site.hoster)];
        record.mx = hoster.mail_name;
        record.mx_a =
            hoster.mail_ips[rng.next_below(hoster.mail_ips.size())];
      } else {
        record.mx = names_.intern("mail." + name);
        record.mx_a = site.origin_ip;
      }
      mail_index_[record.mx_a].push_back(id);
    }
    store_.record_change(id, first_seen, record);
    sites_.push_back(site);
  }
}

std::vector<dns::DomainId> HostingEcosystem::domains_on_origin(
    net::Ipv4Addr ip) const {
  const auto it = origin_index_.find(ip);
  return it == origin_index_.end() ? std::vector<dns::DomainId>{} : it->second;
}

std::vector<dns::DomainId> HostingEcosystem::domains_with_mail_on(
    net::Ipv4Addr ip) const {
  const auto it = mail_index_.find(ip);
  return it == mail_index_.end() ? std::vector<dns::DomainId>{} : it->second;
}

net::Ipv4Addr HostingEcosystem::sample_hosting_ip(Rng& rng) const {
  return attackable_ips_[ip_attack_sampler_.sample(rng)];
}

int HostingEcosystem::hoster_of_ip(net::Ipv4Addr ip) const {
  const auto it = ip_to_hoster_.find(ip);
  return it == ip_to_hoster_.end() ? -1 : it->second;
}

bool HostingEcosystem::hosts_websites(net::Ipv4Addr ip) const {
  return origin_index_.contains(ip) || front_ip_set_.contains(ip);
}

net::Ipv4Addr HostingEcosystem::sample_dps_front_ip(Rng& rng) const {
  // Attackers go after the high-profile shared fronts.
  const auto provider = sample_provider(rng);
  return provider_front_ip(provider, rng, /*flagship=*/true);
}

namespace {
constexpr std::size_t kFlagshipFronts = 4;
}

net::Ipv4Addr HostingEcosystem::provider_front_ip(dps::ProviderId provider,
                                                  Rng& rng,
                                                  bool flagship) const {
  const auto& fronts = provider_fronts_.at(provider);
  if (flagship) {
    return fronts[rng.next_below(std::min(kFlagshipFronts, fronts.size()))];
  }
  // Tail customers spread over the non-flagship fronts.
  const std::size_t tail = fronts.size() - std::min(kFlagshipFronts, fronts.size());
  if (tail == 0) return fronts[rng.next_below(fronts.size())];
  return fronts[kFlagshipFronts + rng.next_below(tail)];
}

dns::WebsiteRecord HostingEcosystem::protected_record(dns::DomainId domain,
                                                      dps::ProviderId provider,
                                                      Rng& rng, bool flagship) {
  const auto& p = providers_.provider(provider);
  dns::WebsiteRecord record;
  record.www_cname =
      names_.intern("c" + std::to_string(domain) + "." + p.cname_suffix);
  record.www_a = provider_front_ip(provider, rng, flagship);
  record.ns = names_.intern("ns1." + p.ns_suffix);
  return record;
}

dps::ProviderId HostingEcosystem::sample_provider(Rng& rng) const {
  return static_cast<dps::ProviderId>(provider_sampler_.sample(rng) + 1);
}

std::uint64_t HostingEcosystem::domains_in_tld(const std::string& tld) const {
  if (tld == "com") return tld_counts_[0];
  if (tld == "net") return tld_counts_[1];
  if (tld == "org") return tld_counts_[2];
  return 0;
}

}  // namespace dosm::sim
