#include "sim/population.h"

#include <cmath>
#include <stdexcept>

namespace dosm::sim {

std::vector<CountryWeight> default_country_weights() {
  // Target-population mix shaped on Table 4 (telescope/honeypot blend).
  // Japan is deliberately small (the paper's notable exception); France and
  // Russia deliberately large relative to address-space usage.
  return {
      {"US", 0.27}, {"CN", 0.102}, {"FR", 0.064}, {"RU", 0.050}, {"DE", 0.047},
      {"GB", 0.047}, {"NL", 0.030}, {"CA", 0.028}, {"BR", 0.026}, {"KR", 0.022},
      {"IT", 0.020}, {"ES", 0.017}, {"TR", 0.016}, {"PL", 0.015}, {"UA", 0.014},
      {"SE", 0.013}, {"AU", 0.013}, {"VN", 0.013}, {"IN", 0.012}, {"MX", 0.011},
      {"AR", 0.010}, {"RO", 0.010}, {"JP", 0.009}, {"ZA", 0.008}, {"TH", 0.008},
      {"ID", 0.008}, {"CZ", 0.008}, {"PT", 0.007}, {"GR", 0.007}, {"BE", 0.007},
      {"CH", 0.007}, {"AT", 0.006}, {"DK", 0.006}, {"NO", 0.006}, {"FI", 0.006},
      {"HK", 0.006}, {"SG", 0.005}, {"TW", 0.005}, {"MY", 0.005}, {"CL", 0.005},
      {"CO", 0.005}, {"PE", 0.004}, {"IL", 0.004}, {"IE", 0.004}, {"HU", 0.004},
      {"BG", 0.004}, {"SK", 0.003}, {"LT", 0.003}, {"EG", 0.003}, {"SA", 0.003},
  };
}

namespace {

/// Organizations the paper names, with their real-world ASNs where the
/// paper cites them (OVH AS12276, China Telecom AS4134, China Unicom
/// AS4837) and representative ASNs otherwise.
std::vector<PinnedOrg> pinned_orgs() {
  return {
      {"OVH", 12276, meta::CountryCode("FR"), 18},
      {"China Telecom", 4134, meta::CountryCode("CN"), 40},
      {"China Unicom", 4837, meta::CountryCode("CN"), 26},
      {"GoDaddy", 26496, meta::CountryCode("US"), 12},
      {"Google Cloud", 15169, meta::CountryCode("US"), 24},
      {"Amazon AWS", 16509, meta::CountryCode("US"), 30},
      {"Automattic", 2635, meta::CountryCode("US"), 2},
      {"Wix", 58182, meta::CountryCode("US"), 2},
      {"Squarespace", 53831, meta::CountryCode("US"), 2},
      {"eNom", 21740, meta::CountryCode("US"), 2},
      {"EIG", 46606, meta::CountryCode("US"), 6},
      {"Network Solutions", 19871, meta::CountryCode("US"), 4},
      {"Gandi", 29169, meta::CountryCode("FR"), 2},
      {"Steam Hosting", 32590, meta::CountryCode("US"), 4},
  };
}

}  // namespace

Population::Population(Rng& rng, const PopulationConfig& config) {
  allocate(rng, config);
}

net::Prefix Population::next_block() {
  // Blocks march through 64.0.0.0 upward in /16 steps; this range never
  // collides with the telescope (/8 at 44.0.0.0), the DPS space (203.0.0.0),
  // or the honeypot addresses (198.51.0.0/16).
  const int i = next_block_index_++;
  const auto a = static_cast<std::uint8_t>(64 + i / 256);
  const auto b = static_cast<std::uint8_t>(i % 256);
  if (a >= 198)
    throw std::length_error("Population: address space exhausted");
  return net::Prefix(net::Ipv4Addr(a, b, 0, 0), 16);
}

void Population::allocate(Rng& rng, const PopulationConfig& config) {
  const auto countries = default_country_weights();
  double total_weight = 0.0;
  for (const auto& c : countries) total_weight += c.weight;

  // Pinned organizations first (fixed ASNs and block counts).
  for (const auto& org : pinned_orgs()) {
    AsEntry entry;
    entry.asn = org.asn;
    entry.country = org.country;
    for (int b = 0; b < org.slash16_blocks; ++b)
      entry.blocks.push_back(next_block());
    as_registry_.register_as(org.asn, org.name);
    pinned_.emplace_back(org.name, ases_.size());
    ases_.push_back(std::move(entry));
  }

  // Generic ASes per country, block counts Zipf-ish within the country.
  meta::Asn next_asn = 100000;  // synthetic range, clear of pinned ASNs
  for (const auto& c : countries) {
    const double share = c.weight / total_weight;
    const int blocks_for_country =
        std::max(1, static_cast<int>(share * config.total_slash16));
    const int num_ases = std::max(
        1, static_cast<int>(std::round(config.base_ases_per_country *
                                       (0.5 + 4.0 * share / 0.27))));
    // Split blocks over ASes with a geometric decay (big eyeball AS first).
    std::vector<int> per_as(static_cast<std::size_t>(num_ases), 0);
    int remaining = blocks_for_country;
    std::size_t i = 0;
    while (remaining > 0) {
      const int give = std::max(1, remaining / 3);
      per_as[i % per_as.size()] += give;
      remaining -= give;
      ++i;
    }
    for (int a = 0; a < num_ases; ++a) {
      if (per_as[static_cast<std::size_t>(a)] == 0) continue;
      AsEntry entry;
      entry.asn = next_asn++;
      entry.country = meta::CountryCode(c.code);
      for (int b = 0; b < per_as[static_cast<std::size_t>(a)]; ++b)
        entry.blocks.push_back(next_block());
      ases_.push_back(std::move(entry));
    }
  }

  // Databases + sampler weights (announced space, with mild per-AS jitter
  // so activity is not perfectly proportional to allocation).
  std::vector<double> weights;
  weights.reserve(ases_.size());
  for (const auto& entry : ases_) {
    for (const auto& block : entry.blocks) {
      geo_.add(block, entry.country);
      pfx2as_.announce(block, entry.asn);
    }
    weights.push_back(static_cast<double>(entry.blocks.size()) *
                      rng.uniform(0.6, 1.4));
  }
  as_sampler_ = AliasTable(weights);
}

net::Ipv4Addr Population::sample_address(Rng& rng) const {
  const auto& entry = ases_[as_sampler_.sample(rng)];
  const auto& block = entry.blocks[rng.next_below(entry.blocks.size())];
  return block.address_at(rng.next_below(block.num_addresses()));
}

net::Ipv4Addr Population::sample_address_in_as(meta::Asn asn, Rng& rng) const {
  for (const auto& entry : ases_) {
    if (entry.asn != asn) continue;
    const auto& block = entry.blocks[rng.next_below(entry.blocks.size())];
    return block.address_at(rng.next_below(block.num_addresses()));
  }
  throw std::out_of_range("Population::sample_address_in_as: unknown ASN");
}

meta::Asn Population::asn_of(const std::string& org) const {
  for (const auto& [name, index] : pinned_)
    if (name == org) return ases_[index].asn;
  throw std::out_of_range("Population::asn_of: unknown organization " + org);
}

}  // namespace dosm::sim
