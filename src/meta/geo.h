// IP geolocation metadata (NetAcuity-substitute).
//
// The paper annotates every target IP with a country using the NetAcuity
// Edge database. We provide the same lookup API over a prefix → country
// table; in simulations the table is populated by the world model so that
// country shares follow the paper's observed mix (Table 4).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "meta/prefix_map.h"
#include "net/ipv4.h"

namespace dosm::meta {

/// ISO 3166-1 alpha-2 country code, stored inline (no allocation).
class CountryCode {
 public:
  constexpr CountryCode() = default;
  /// Throws std::invalid_argument unless `code` is exactly two ASCII letters
  /// (case preserved; the paper uses e.g. "US", "GB").
  explicit CountryCode(std::string_view code);

  std::string to_string() const { return std::string{c_[0], c_[1]}; }
  bool is_set() const { return c_[0] != '\0'; }

  constexpr auto operator<=>(const CountryCode&) const = default;

 private:
  char c_[2] = {'\0', '\0'};
};

/// The sentinel country returned for unmapped space.
CountryCode unknown_country();

/// Prefix-based geolocation database with longest-prefix-match semantics.
class GeoDatabase {
 public:
  void add(net::Prefix prefix, CountryCode country) {
    map_.insert(prefix, country);
  }

  /// Country of the address; unknown_country() when unmapped.
  CountryCode locate(net::Ipv4Addr addr) const;

  std::size_t num_prefixes() const { return map_.size(); }

 private:
  PrefixMap<CountryCode> map_;
};

}  // namespace dosm::meta

template <>
struct std::hash<dosm::meta::CountryCode> {
  std::size_t operator()(const dosm::meta::CountryCode& c) const noexcept {
    const auto s = c.to_string();
    return std::hash<std::string>{}(s);
  }
};
