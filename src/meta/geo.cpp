#include "meta/geo.h"

#include <cctype>
#include <stdexcept>

namespace dosm::meta {

CountryCode::CountryCode(std::string_view code) {
  if (code.size() != 2 || !std::isalpha(static_cast<unsigned char>(code[0])) ||
      !std::isalpha(static_cast<unsigned char>(code[1]))) {
    throw std::invalid_argument("CountryCode: expected two letters, got '" +
                                std::string(code) + "'");
  }
  c_[0] = code[0];
  c_[1] = code[1];
}

CountryCode unknown_country() { return CountryCode("ZZ"); }

CountryCode GeoDatabase::locate(net::Ipv4Addr addr) const {
  const auto hit = map_.lookup(addr);
  return hit ? *hit : unknown_country();
}

}  // namespace dosm::meta
