#include "meta/pfx2as.h"

namespace dosm::meta {

void AsRegistry::register_as(Asn asn, std::string name) {
  names_[asn] = std::move(name);
}

std::string AsRegistry::name(Asn asn) const {
  const auto it = names_.find(asn);
  if (it != names_.end()) return it->second;
  return "AS" + std::to_string(asn);
}

}  // namespace dosm::meta
