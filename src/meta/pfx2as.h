// BGP routing metadata: Routeviews-style prefix-to-AS mapping.
//
// The paper annotates targets with origin ASNs from CAIDA's Routeviews
// pfx2as dataset. We reproduce the same longest-prefix-match semantics over
// announced prefixes, plus a small AS registry carrying display names for
// the organizations the paper calls out (OVH, China Telecom, GoDaddy, ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "meta/prefix_map.h"
#include "net/ipv4.h"

namespace dosm::meta {

using Asn = std::uint32_t;

inline constexpr Asn kUnknownAsn = 0;

/// Longest-prefix-match prefix → origin-AS map.
class PrefixToAsMap {
 public:
  void announce(net::Prefix prefix, Asn asn) { map_.insert(prefix, asn); }

  /// Origin ASN for the address; kUnknownAsn for unannounced space.
  Asn origin(net::Ipv4Addr addr) const {
    const auto hit = map_.lookup(addr);
    return hit ? *hit : kUnknownAsn;
  }

  /// The covering announcement, if any.
  std::optional<net::Prefix> covering_prefix(net::Ipv4Addr addr) const {
    return map_.matching_prefix(addr);
  }

  std::size_t num_announcements() const { return map_.size(); }

 private:
  PrefixMap<Asn> map_;
};

/// ASN → organization name registry.
class AsRegistry {
 public:
  void register_as(Asn asn, std::string name);

  /// Name for the ASN; "AS<n>" when unregistered.
  std::string name(Asn asn) const;

  bool contains(Asn asn) const { return names_.contains(asn); }
  std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<Asn, std::string> names_;
};

}  // namespace dosm::meta
