// Generic longest-prefix-match map from IPv4 prefixes to values.
//
// Backing structure: one hash table per prefix length. Lookup masks the
// address at each populated length from /32 down to /0 and probes the
// corresponding table — O(number of distinct lengths) per query, which for
// real routing tables (and our synthetic ones) is ≤ 25 probes. This is the
// shared engine behind both the Routeviews-style prefix-to-AS map and the
// NetAcuity-style geolocation database.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/ipv4.h"

namespace dosm::meta {

template <typename Value>
class PrefixMap {
 public:
  /// Inserts or replaces the mapping for `prefix`.
  void insert(net::Prefix prefix, Value value) {
    auto& table = tables_[static_cast<std::size_t>(prefix.length())];
    const bool existed = table.contains(prefix.network().value());
    table[prefix.network().value()] = std::move(value);
    if (!existed) ++size_;
  }

  /// Longest-prefix match; nullopt when no covering prefix exists.
  std::optional<Value> lookup(net::Ipv4Addr addr) const {
    for (int len = 32; len >= 0; --len) {
      const auto& table = tables_[static_cast<std::size_t>(len)];
      if (table.empty()) continue;
      const std::uint32_t mask =
          len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
      const auto it = table.find(addr.value() & mask);
      if (it != table.end()) return it->second;
    }
    return std::nullopt;
  }

  /// The matched prefix itself (for diagnostics), or nullopt.
  std::optional<net::Prefix> matching_prefix(net::Ipv4Addr addr) const {
    for (int len = 32; len >= 0; --len) {
      const auto& table = tables_[static_cast<std::size_t>(len)];
      if (table.empty()) continue;
      const std::uint32_t mask =
          len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
      const std::uint32_t network = addr.value() & mask;
      if (table.contains(network)) return net::Prefix(net::Ipv4Addr(network), len);
    }
    return std::nullopt;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Visits every (prefix, value) pair; order unspecified.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (int len = 0; len <= 32; ++len) {
      for (const auto& [network, value] : tables_[static_cast<std::size_t>(len)])
        fn(net::Prefix(net::Ipv4Addr(network), len), value);
    }
  }

 private:
  std::array<std::unordered_map<std::uint32_t, Value>, 33> tables_;
  std::size_t size_ = 0;
};

}  // namespace dosm::meta
