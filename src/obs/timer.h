// Lightweight stage timers: a ScopedTimer observes the wall duration of a
// scope into a latency histogram. Timing is measurement-only — readings are
// never consulted by analysis code, so instrumented runs stay bit-identical
// to uninstrumented ones.
#pragma once

#include <array>
#include <span>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace dosm::obs {

/// Default latency bucket bounds in seconds: 10 µs .. 10 s, roughly
/// half-decade steps. Suits both per-task worker timings and whole-stage
/// build times.
inline constexpr std::array<double, 12> kLatencyBucketsSeconds = {
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 10.0};

inline std::span<const double> latency_buckets() noexcept {
  return kLatencyBucketsSeconds;
}

/// Observes the lifetime of the scope into `hist`, in seconds. When
/// instrumentation is disabled the clock is never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) noexcept
      : hist_(&hist), start_ns_(enabled() ? monotonic_now_ns() : 0),
        armed_(enabled()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Records now instead of at scope exit; subsequent stops are no-ops.
  void stop() noexcept {
    if (!armed_) return;
    armed_ = false;
    const std::uint64_t elapsed_ns = monotonic_now_ns() - start_ns_;
    hist_->observe(static_cast<double>(elapsed_ns) * 1e-9);
  }

 private:
  Histogram* hist_;
  std::uint64_t start_ns_;
  bool armed_;
};

}  // namespace dosm::obs
