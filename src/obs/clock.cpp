// The one translation unit in src/ allowed to touch a clock; see
// tools/lint_allowlist.txt (wall-clock src/obs/clock.cpp).
#include "obs/clock.h"

#include <chrono>

namespace dosm::obs {

std::uint64_t monotonic_now_ns() noexcept {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

}  // namespace dosm::obs
