// Exporters rendering a MetricsSnapshot for humans and scrapers:
//
//  * to_json        — stable machine-readable dump ({"counters": {...}, ...})
//  * to_prometheus  — Prometheus text exposition format v0.0.4: metric names
//                     prefixed dosm_ with '.' mapped to '_', HELP/TYPE lines,
//                     cumulative le-labelled histogram buckets
//  * write_metrics_file — dispatches on extension (.prom → Prometheus text,
//                     anything else → JSON)
//
// Both renderings iterate the snapshot's name-sorted samples, so identical
// registry state always serializes to identical bytes.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace dosm::obs {

std::string to_json(const MetricsSnapshot& snapshot);
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Writes the registry's current snapshot to `path`. Format follows the
/// extension: ".prom" selects Prometheus text, everything else JSON.
/// Throws std::runtime_error if the file cannot be written.
void write_metrics_file(const std::string& path,
                        const MetricsRegistry& registry);

}  // namespace dosm::obs
