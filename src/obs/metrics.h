// Observability substrate: the metrics registry every pipeline layer
// reports into.
//
// The paper closes (§9) on "near-realtime data fusion, extraction,
// correlation and visualization" as the open operational challenge; a
// production monitor is unrunnable without trustworthy self-reported
// counters — cross-dataset comparisons live or die on knowing exactly what
// each stage ingested, dropped, and emitted. This module provides the three
// standard metric kinds (monotone counters, gauges, fixed-bucket
// histograms) behind a named registry, with JSON and Prometheus-text
// exporters (obs/export.h).
//
// Two invariants shape the design:
//
//  * No perturbation. Instrumentation must never change analysis output:
//    metrics are write-only from the pipeline's point of view (nothing ever
//    reads a counter to make a decision), and the event dumps produced with
//    metrics enabled vs disabled are byte-identical (enforced in CI).
//
//  * No contention. Hot loops (per-packet, per-request) increment counters
//    through per-thread stripes — cache-line-padded atomic cells selected
//    by a thread-local index — folded into one value only at report time,
//    so instrumented workers never bounce a shared cache line.
//
// The monotonic clock feeding stage timers (obs/timer.h) is confined to
// src/obs/clock.cpp behind an explicit dosmeter_lint allowlist entry; time
// measurements flow only into metrics, never into analysis.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dosm::obs {

namespace detail {
inline std::atomic<bool> g_enabled{true};
inline std::atomic<std::size_t> g_stripe_seq{0};
}  // namespace detail

/// Process-wide instrumentation switch. Defaults to enabled; the only
/// sanctioned use of disabling is measuring instrumentation overhead
/// (bench_micro_pipeline --smoke) — analysis output is identical either way.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Stripes per counter. 16 × 64 B keeps a counter within 1 KiB while making
/// same-line collisions between concurrently-pinned threads unlikely (the
/// parallel layer runs ≤ hardware_concurrency workers).
inline constexpr std::size_t kCounterStripes = 16;

namespace detail {
/// Stable per-thread stripe index, assigned round-robin on first use.
inline std::size_t this_thread_stripe() noexcept {
  thread_local const std::size_t stripe =
      g_stripe_seq.fetch_add(1, std::memory_order_relaxed) % kCounterStripes;
  return stripe;
}
}  // namespace detail

/// Monotone event counter. add() is wait-free and contention-free across
/// threads (per-thread stripes); value() folds the stripes at report time.
class Counter {
 public:
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n) noexcept {
    if (!enabled()) return;
    stripes_[detail::this_thread_stripe()].count.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& stripe : stripes_)
      total += stripe.count.load(std::memory_order_relaxed);
    return total;
  }

  const std::string& name() const noexcept { return name_; }
  const std::string& help() const noexcept { return help_; }

  void reset() noexcept {
    for (auto& stripe : stripes_)
      stripe.count.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> count{0};
  };

  std::string name_;
  std::string help_;
  std::array<Stripe, kCounterStripes> stripes_{};
};

/// Last-written-value gauge (set) with optional delta updates (add).
class Gauge {
 public:
  Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  const std::string& name() const noexcept { return name_; }
  const std::string& help() const noexcept { return help_; }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::string help_;
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram (Prometheus `le` semantics: an observation lands
/// in the first bucket whose upper bound is >= the value; one implicit
/// +Inf overflow bucket). Bucket layout is fixed at registration so
/// observe() is a binary search plus two relaxed atomic adds.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  Histogram(std::string name, std::string help,
            std::span<const double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) noexcept;

  std::span<const double> upper_bounds() const noexcept { return bounds_; }
  /// Per-bucket counts (not cumulative); size upper_bounds().size() + 1,
  /// the last entry being the +Inf overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  const std::string& name() const noexcept { return name_; }
  const std::string& help() const noexcept { return help_; }

  void reset() noexcept;

 private:
  std::string name_;
  std::string help_;
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// ---------------------------------------------------------------------------
// Point-in-time samples, the exporters' input. snapshot() orders samples by
// name so every rendering of the same registry state is deterministic.
// ---------------------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::string help;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string help;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::string help;
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> buckets;  // non-cumulative; +Inf last
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Named registry of metrics. Registration (counter/gauge/histogram) takes a
/// mutex and is meant to run once per site — instrumented code caches the
/// returned reference, which stays valid for the registry's lifetime.
/// Updates through the returned handles never lock.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first use.
  /// `help` is kept from the first registration. Throws std::logic_error if
  /// the name is already registered as a different metric kind, and
  /// std::invalid_argument for malformed names (allowed: [a-z0-9_.], must
  /// start with a letter).
  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::span<const double> upper_bounds);

  /// Name-sorted point-in-time copy of every metric, for the exporters.
  MetricsSnapshot snapshot() const;

  /// Zeroes every metric (registrations are kept). Test/tooling aid.
  void reset() noexcept;

  /// The process-wide registry every pipeline layer reports into.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Counter*, std::less<>> counters_by_name_;
  std::map<std::string, Gauge*, std::less<>> gauges_by_name_;
  std::map<std::string, Histogram*, std::less<>> histograms_by_name_;
};

}  // namespace dosm::obs
