#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dosm::obs {
namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  if (!(name.front() >= 'a' && name.front() <= 'z')) return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
           c == '.';
  });
}

void require_valid_name(std::string_view name) {
  if (!valid_metric_name(name))
    throw std::invalid_argument("obs: invalid metric name: " +
                                std::string(name));
}

}  // namespace

Histogram::Histogram(std::string name, std::string help,
                     std::span<const double> upper_bounds)
    : name_(std::move(name)),
      help_(std::move(help)),
      bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(bounds_.size() + 1) {
  if (bounds_.empty())
    throw std::invalid_argument("obs: histogram needs at least one bucket: " +
                                name_);
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::invalid_argument(
        "obs: histogram bounds must be strictly ascending: " + name_);
}

void Histogram::observe(double v) noexcept {
  if (!enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& bucket : buckets_)
    out.push_back(bucket.load(std::memory_order_relaxed));
  return out;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  require_valid_name(name);
  const std::scoped_lock lock(mutex_);
  if (const auto it = counters_by_name_.find(name);
      it != counters_by_name_.end())
    return *it->second;
  if (gauges_by_name_.count(std::string(name)) ||
      histograms_by_name_.count(std::string(name)))
    throw std::logic_error("obs: metric name already used by another kind: " +
                           std::string(name));
  Counter& made = counters_.emplace_back(std::string(name), std::string(help));
  counters_by_name_.emplace(made.name(), &made);
  return made;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  require_valid_name(name);
  const std::scoped_lock lock(mutex_);
  if (const auto it = gauges_by_name_.find(name); it != gauges_by_name_.end())
    return *it->second;
  if (counters_by_name_.count(std::string(name)) ||
      histograms_by_name_.count(std::string(name)))
    throw std::logic_error("obs: metric name already used by another kind: " +
                           std::string(name));
  Gauge& made = gauges_.emplace_back(std::string(name), std::string(help));
  gauges_by_name_.emplace(made.name(), &made);
  return made;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help,
                                      std::span<const double> upper_bounds) {
  require_valid_name(name);
  const std::scoped_lock lock(mutex_);
  if (const auto it = histograms_by_name_.find(name);
      it != histograms_by_name_.end())
    return *it->second;
  if (counters_by_name_.count(std::string(name)) ||
      gauges_by_name_.count(std::string(name)))
    throw std::logic_error("obs: metric name already used by another kind: " +
                           std::string(name));
  Histogram& made = histograms_.emplace_back(std::string(name),
                                             std::string(help), upper_bounds);
  histograms_by_name_.emplace(made.name(), &made);
  return made;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_by_name_.size());
  for (const auto& [name, counter] : counters_by_name_)
    snap.counters.push_back({name, counter->help(), counter->value()});
  snap.gauges.reserve(gauges_by_name_.size());
  for (const auto& [name, gauge] : gauges_by_name_)
    snap.gauges.push_back({name, gauge->help(), gauge->value()});
  snap.histograms.reserve(histograms_by_name_.size());
  for (const auto& [name, hist] : histograms_by_name_) {
    const auto bounds = hist->upper_bounds();
    snap.histograms.push_back({name,
                               hist->help(),
                               {bounds.begin(), bounds.end()},
                               hist->bucket_counts(),
                               hist->count(),
                               hist->sum()});
  }
  return snap;
}

void MetricsRegistry::reset() noexcept {
  const std::scoped_lock lock(mutex_);
  for (auto& counter : counters_) counter.reset();
  for (auto& gauge : gauges_) gauge.reset();
  for (auto& hist : histograms_) hist.reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace dosm::obs
