// Monotonic clock for stage timers. This is the ONLY sanctioned time source
// in the analysis tree: the determinism linter bans wall/steady clock use
// everywhere under src/, and the single implementation file behind this
// declaration (src/obs/clock.cpp) carries the one allowlist entry. Readings
// flow exclusively into obs metrics (histograms of stage latency) and never
// into analysis decisions, preserving bit-identical pipeline output.
#pragma once

#include <cstdint>

namespace dosm::obs {

/// Nanoseconds on a monotonic clock with an arbitrary epoch. Only
/// differences are meaningful.
std::uint64_t monotonic_now_ns() noexcept;

}  // namespace dosm::obs
