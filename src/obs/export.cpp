#include "obs/export.h"

#include <charconv>
#include <fstream>
#include <limits>
#include <string>

namespace dosm::obs {
namespace {

/// Shortest round-trip decimal rendering (std::to_chars), so exports are
/// byte-stable across runs and locales.
std::string format_double(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

/// Metric names are restricted to [a-z0-9_.] by the registry; help strings
/// are free-form and need minimal JSON escaping.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus metric name: dosm_ prefix, '.' separators become '_'.
std::string prom_name(const std::string& name) {
  std::string out = "dosm_";
  out.reserve(out.size() + name.size());
  for (const char c : name) out += c == '.' ? '_' : c;
  return out;
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + c.name + "\": " + std::to_string(c.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& g : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + g.name + "\": " + std::to_string(g.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + h.name + "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + format_double(h.sum) + ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ", ";
      out += "{\"le\": \"";
      out += i < h.upper_bounds.size() ? format_double(h.upper_bounds[i])
                                       : std::string("+Inf");
      out += "\", \"n\": " + std::to_string(h.buckets[i]) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string name = prom_name(c.name);
    if (!c.help.empty())
      out += "# HELP " + name + " " + json_escape(c.help) + "\n";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = prom_name(g.name);
    if (!g.help.empty())
      out += "# HELP " + name + " " + json_escape(g.help) + "\n";
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = prom_name(h.name);
    if (!h.help.empty())
      out += "# HELP " + name + " " + json_escape(h.help) + "\n";
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      const std::string le = i < h.upper_bounds.size()
                                 ? format_double(h.upper_bounds[i])
                                 : std::string("+Inf");
      out += name + "_bucket{le=\"" + le + "\"} " + std::to_string(cumulative) +
             "\n";
    }
    out += name + "_sum " + format_double(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

void write_metrics_file(const std::string& path,
                        const MetricsRegistry& registry) {
  const MetricsSnapshot snap = registry.snapshot();
  const bool prom =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("obs: cannot open metrics file: " + path);
  out << (prom ? to_prometheus(snap) : to_json(snap));
  if (!out) throw std::runtime_error("obs: failed writing metrics file: " + path);
}

}  // namespace dosm::obs
