#include "dps/classifier.h"

namespace dosm::dps {

Classifier::Classifier(const ProviderRegistry& registry,
                       const dns::NameTable& names)
    : registry_(registry), names_(names) {
  for (const auto& provider : registry_.all())
    for (const auto& prefix : provider.prefixes)
      address_space_.insert(prefix, provider.id);
}

std::optional<ProviderId> Classifier::classify(
    const dns::WebsiteRecord& record) const {
  if (record.www_cname != dns::kNoName) {
    const auto& cname = names_.name(record.www_cname);
    for (const auto& provider : registry_.all())
      if (dns::in_domain_suffix(cname, provider.cname_suffix))
        return provider.id;
  }
  if (record.ns != dns::kNoName) {
    const auto& ns = names_.name(record.ns);
    for (const auto& provider : registry_.all())
      if (dns::in_domain_suffix(ns, provider.ns_suffix)) return provider.id;
  }
  if (record.has_website()) return provider_for_address(record.www_a);
  return std::nullopt;
}

std::optional<ProviderId> Classifier::provider_for_address(
    net::Ipv4Addr addr) const {
  return address_space_.lookup(addr);
}

}  // namespace dosm::dps
