// Per-site protection timelines and migration-event extraction.
//
// For every Web site, scan its DNS change timeline through the DPS
// classifier to get the days on which it was protected, whether it was a
// *preexisting* customer (protected when first observed), and its first
// *migration* day (first protected day after an unprotected start). These
// feed the §6 taxonomy (Figure 8) and the migration-delay analyses
// (Figures 9-11).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dns/snapshot.h"
#include "dps/classifier.h"

namespace dosm::dps {

/// Protection state intervals of one site (days, inclusive).
struct ProtectionInterval {
  int from_day = 0;
  int to_day = 0;
  ProviderId provider = kNoProvider;
};

/// The §6-relevant summary of one site's protection history.
struct ProtectionTimeline {
  dns::DomainId domain = 0;
  /// Protected on the first day the domain was observed in the DNS.
  bool preexisting = false;
  /// First day protection appears after an unprotected start, if any.
  std::optional<int> first_protected_day;
  ProviderId first_provider = kNoProvider;
  std::vector<ProtectionInterval> intervals;

  /// Protected at any time during the window.
  bool ever_protected() const { return !intervals.empty(); }

  bool protected_on(int day) const {
    for (const auto& interval : intervals)
      if (day >= interval.from_day && day <= interval.to_day) return true;
    return false;
  }
};

/// Computes the timeline for one domain by walking its change list (O(#
/// changes), not O(days)).
ProtectionTimeline protection_timeline(const dns::SnapshotStore& store,
                                       dns::DomainId domain,
                                       const Classifier& classifier);

/// Computes timelines for all domains in the store.
std::vector<ProtectionTimeline> all_timelines(const dns::SnapshotStore& store,
                                              const Classifier& classifier);

/// Per-provider customer counts over the whole window (Table 3): the number
/// of distinct Web sites each provider ever protected.
std::vector<std::uint64_t> provider_customer_counts(
    const std::vector<ProtectionTimeline>& timelines,
    const ProviderRegistry& registry);

}  // namespace dosm::dps
