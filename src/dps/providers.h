// DDoS Protection Service providers and their DNS/BGP fingerprints.
//
// The paper tracks ten providers (§3.3): nine leading commercial DPSes plus
// VirtualRoad, a non-commercial provider protecting at-risk Web sites. A
// provider is detected from a customer's DNS state (Jonker et al., IMC
// 2016): a CNAME expanding into the provider's domain, delegation to the
// provider's name servers, or an A record inside the provider's announced
// (BGP-protected) address space.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.h"

namespace dosm::dps {

/// Dense provider id; 0 is reserved for "no provider".
using ProviderId = std::uint8_t;

inline constexpr ProviderId kNoProvider = 0;

struct Provider {
  ProviderId id = kNoProvider;
  std::string name;
  /// DNS suffix customers CNAME into (e.g. "incapdns.net").
  std::string cname_suffix;
  /// DNS suffix of the provider's authoritative name servers.
  std::string ns_suffix;
  /// Address space the provider announces for BGP-diversion customers.
  std::vector<net::Prefix> prefixes;
};

/// Registry of providers; ids are assigned densely starting at 1.
class ProviderRegistry {
 public:
  /// Adds a provider; returns its id.
  ProviderId add(std::string name, std::string cname_suffix,
                 std::string ns_suffix, std::vector<net::Prefix> prefixes);

  const Provider& provider(ProviderId id) const;
  std::optional<ProviderId> find(std::string_view name) const;
  std::span<const Provider> all() const { return providers_; }
  std::size_t size() const { return providers_.size(); }

 private:
  std::vector<Provider> providers_;
};

/// The paper's ten providers with synthetic-but-shaped fingerprints. The
/// address blocks are stand-ins (documentation-style space): what matters is
/// that each provider owns disjoint prefixes the classifier can match.
ProviderRegistry paper_providers();

}  // namespace dosm::dps
