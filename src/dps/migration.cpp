#include "dps/migration.h"

#include <algorithm>
#include <set>

namespace dosm::dps {

ProtectionTimeline protection_timeline(const dns::SnapshotStore& store,
                                       dns::DomainId domain,
                                       const Classifier& classifier) {
  ProtectionTimeline timeline;
  timeline.domain = domain;
  const auto& entry = store.entry(domain);

  ProviderId current = kNoProvider;
  int current_from = 0;
  bool first_change = true;

  auto close_interval = [&](int to_day) {
    if (current != kNoProvider && to_day >= current_from)
      timeline.intervals.push_back({current_from, to_day, current});
  };

  for (std::size_t i = 0; i < entry.changes.size(); ++i) {
    const auto& change = entry.changes[i];
    const auto provider = classifier.classify(change.record);
    const ProviderId pid = provider.value_or(kNoProvider);

    if (first_change) {
      first_change = false;
      timeline.preexisting =
          (pid != kNoProvider) && change.day == entry.first_seen_day;
    }
    if (pid != current) {
      close_interval(change.day - 1);
      current = pid;
      current_from = change.day;
      if (pid != kNoProvider && !timeline.preexisting &&
          !timeline.first_protected_day) {
        timeline.first_protected_day = change.day;
        timeline.first_provider = pid;
      }
    }
  }
  close_interval(entry.last_seen_day);

  // A preexisting customer's initial provider is also recorded.
  if (timeline.preexisting && !timeline.intervals.empty())
    timeline.first_provider = timeline.intervals.front().provider;
  return timeline;
}

std::vector<ProtectionTimeline> all_timelines(const dns::SnapshotStore& store,
                                              const Classifier& classifier) {
  std::vector<ProtectionTimeline> out;
  out.reserve(store.num_domains());
  store.for_each_domain([&](dns::DomainId id, const dns::DomainEntry&) {
    out.push_back(protection_timeline(store, id, classifier));
  });
  return out;
}

std::vector<std::uint64_t> provider_customer_counts(
    const std::vector<ProtectionTimeline>& timelines,
    const ProviderRegistry& registry) {
  std::vector<std::uint64_t> counts(registry.size() + 1, 0);
  for (const auto& timeline : timelines) {
    std::set<ProviderId> seen;
    for (const auto& interval : timeline.intervals) seen.insert(interval.provider);
    for (ProviderId id : seen)
      if (id != kNoProvider && id < counts.size()) ++counts[id];
  }
  return counts;
}

}  // namespace dosm::dps
