// DPS-use classification from DNS state (Jonker et al., IMC 2016).
//
// A Web site is classified as protected by provider P on day d when its DNS
// record that day matches one of P's fingerprints:
//   1. DNS-based diversion: the www label CNAMEs into P's customer zone, or
//      the domain is delegated to P's name servers;
//   2. BGP-based diversion: the www A record falls inside P's announced
//      (scrubbing) address space.
#pragma once

#include <optional>

#include "dns/names.h"
#include "dns/snapshot.h"
#include "dps/providers.h"
#include "meta/prefix_map.h"

namespace dosm::dps {

class Classifier {
 public:
  /// Keeps references; `registry` and `names` must outlive the classifier.
  Classifier(const ProviderRegistry& registry, const dns::NameTable& names);

  /// Provider protecting a site with this DNS state, if any. When multiple
  /// fingerprints match (rare; e.g. a CNAME into one provider resolving into
  /// another's space) the CNAME match wins, then NS, then A.
  std::optional<ProviderId> classify(const dns::WebsiteRecord& record) const;

  /// Provider owning the address via BGP announcement matching, if any.
  std::optional<ProviderId> provider_for_address(net::Ipv4Addr addr) const;

 private:
  const ProviderRegistry& registry_;
  const dns::NameTable& names_;
  meta::PrefixMap<ProviderId> address_space_;
};

}  // namespace dosm::dps
