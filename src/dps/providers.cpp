#include "dps/providers.h"

#include <stdexcept>

namespace dosm::dps {

ProviderId ProviderRegistry::add(std::string name, std::string cname_suffix,
                                 std::string ns_suffix,
                                 std::vector<net::Prefix> prefixes) {
  if (providers_.size() >= 254)
    throw std::length_error("ProviderRegistry: too many providers");
  Provider p;
  p.id = static_cast<ProviderId>(providers_.size() + 1);
  p.name = std::move(name);
  p.cname_suffix = std::move(cname_suffix);
  p.ns_suffix = std::move(ns_suffix);
  p.prefixes = std::move(prefixes);
  providers_.push_back(std::move(p));
  return providers_.back().id;
}

const Provider& ProviderRegistry::provider(ProviderId id) const {
  if (id == kNoProvider || id > providers_.size())
    throw std::out_of_range("ProviderRegistry::provider: unknown id");
  return providers_[id - 1];
}

std::optional<ProviderId> ProviderRegistry::find(std::string_view name) const {
  for (const auto& p : providers_)
    if (p.name == name) return p.id;
  return std::nullopt;
}

ProviderRegistry paper_providers() {
  ProviderRegistry registry;
  auto prefix = [](std::uint8_t a, std::uint8_t b, std::uint8_t c, int len) {
    return net::Prefix(net::Ipv4Addr(a, b, c, 0), len);
  };
  // Ten providers as in Table 3. Fingerprints are synthetic; each provider
  // gets a distinctive CNAME zone, NS zone, and disjoint /16s for
  // BGP-diversion customers.
  registry.add("Akamai", "akamaiedge-dps.net", "akam-dps.net",
               {prefix(203, 8, 0, 14)});
  registry.add("CenturyLink", "cl-ddosprotect.net", "centurylink-dps.net",
               {prefix(203, 16, 0, 15)});
  registry.add("CloudFlare", "cf-shield.net", "ns.cf-shield.net",
               {prefix(203, 24, 0, 14)});
  registry.add("DOSarrest", "dosarrest-cdn.com", "dosarrest-dns.com",
               {prefix(203, 32, 0, 15)});
  registry.add("F5", "f5silverline.net", "f5-dps.net", {prefix(203, 40, 0, 15)});
  registry.add("Incapsula", "incapdns-x.net", "incapsula-dps.net",
               {prefix(203, 48, 0, 14)});
  registry.add("Level 3", "l3-scrub.net", "level3-dps.net",
               {prefix(203, 56, 0, 16)});
  registry.add("Neustar", "neustar-ultradps.biz", "ultradns-dps.biz",
               {prefix(203, 64, 0, 14)});
  registry.add("Verisign", "verisign-vdms.com", "verisigndns-dps.com",
               {prefix(203, 72, 0, 15)});
  registry.add("VirtualRoad", "virtualroad-shield.org", "virtualroad-dns.org",
               {prefix(203, 80, 0, 20)});
  return registry;
}

}  // namespace dosm::dps
