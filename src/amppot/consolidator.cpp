#include "amppot/consolidator.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "obs/metrics.h"

namespace dosm::amppot {

namespace {

struct Session {
  double start = 0.0;
  double end = 0.0;
  std::uint64_t requests = 0;
};

struct ConsolidatorMetrics {
  obs::Counter& sessions_opened;
  obs::Counter& sessions_split_gap;
  obs::Counter& sessions_split_cap;
  obs::Counter& sessions_below_threshold;
  obs::Counter& events_emitted;
  obs::Counter& merge_folds;

  static ConsolidatorMetrics& get() {
    static ConsolidatorMetrics metrics = [] {
      auto& reg = obs::MetricsRegistry::global();
      return ConsolidatorMetrics{
          reg.counter("amppot.sessions_opened",
                      "Attack sessions opened during log consolidation"),
          reg.counter("amppot.sessions_split_gap",
                      "Sessions closed by the inactivity gap timeout"),
          reg.counter("amppot.sessions_split_cap",
                      "Sessions closed by the maximum-duration cap"),
          reg.counter("amppot.sessions_below_threshold",
                      "Sessions dropped for too few requests"),
          reg.counter("amppot.events_emitted",
                      "Per-honeypot attack events emitted"),
          reg.counter("amppot.merge_folds",
                      "Overlapping events folded during fleet-wide merge"),
      };
    }();
    return metrics;
  }
};

}  // namespace

std::vector<AmpPotEvent> consolidate_log(std::span<const RequestRecord> log,
                                         const ConsolidatorConfig& config,
                                         std::int32_t honeypot_id) {
  std::vector<AmpPotEvent> events;
  // Keyed by (victim, protocol); logs are time-ordered so a linear pass with
  // open sessions suffices.
  std::map<std::pair<std::uint32_t, std::uint8_t>, Session> open;

  ConsolidatorMetrics& metrics = ConsolidatorMetrics::get();
  auto close = [&](net::Ipv4Addr victim, ReflectionProtocol protocol,
                   const Session& s) {
    if (s.requests <= config.min_requests) {  // "exceeding 100 requests"
      metrics.sessions_below_threshold.inc();
      return;
    }
    metrics.events_emitted.inc();
    AmpPotEvent event;
    event.victim = victim;
    event.protocol = protocol;
    event.start = s.start;
    event.end = s.end;
    event.requests = s.requests;
    event.honeypots = 1;
    event.honeypot_id = honeypot_id;
    events.push_back(event);
  };

  for (const auto& req : log) {
    const auto key = std::make_pair(req.source.value(),
                                    static_cast<std::uint8_t>(req.protocol));
    auto it = open.find(key);
    if (it != open.end()) {
      Session& s = it->second;
      const bool gap = req.ts - s.end > config.gap_timeout_s;
      const bool capped = req.ts - s.start > config.max_duration_s;
      if (gap || capped) {
        if (gap)
          metrics.sessions_split_gap.inc();
        else
          metrics.sessions_split_cap.inc();
        close(req.source, req.protocol, s);
        s = Session{req.ts, req.ts, 1};
        metrics.sessions_opened.inc();
        continue;
      }
      s.end = req.ts;
      ++s.requests;
    } else {
      open.emplace(key, Session{req.ts, req.ts, 1});
      metrics.sessions_opened.inc();
    }
  }
  for (const auto& [key, s] : open) {
    close(net::Ipv4Addr(key.first),
          static_cast<ReflectionProtocol>(key.second), s);
  }
  std::sort(events.begin(), events.end(),
            [](const AmpPotEvent& a, const AmpPotEvent& b) {
              return std::tie(a.start, a.victim, a.protocol) <
                     std::tie(b.start, b.victim, b.protocol);
            });
  return events;
}

std::vector<AmpPotEvent> merge_fleet_events(std::vector<AmpPotEvent> events) {
  // Group by (victim, protocol), sort each group by start, merge overlaps.
  // The key is a total order (std::sort is unstable) so the merge result is
  // a pure function of the event *set*, independent of input order.
  std::sort(events.begin(), events.end(),
            [](const AmpPotEvent& a, const AmpPotEvent& b) {
              return std::tie(a.victim, a.protocol, a.start, a.end, a.requests,
                              a.honeypot_id) <
                     std::tie(b.victim, b.protocol, b.start, b.end, b.requests,
                              b.honeypot_id);
            });
  std::vector<AmpPotEvent> merged;
  // Distinct contributors of the group currently being merged into
  // merged.back(): known honeypot ids are deduped (one honeypot emitting
  // several overlapping sessions counts once); events with unknown identity
  // (honeypot_id < 0) conservatively keep their own counts.
  std::vector<std::int32_t> group_ids;
  std::uint32_t group_unknown = 0;
  for (const auto& event : events) {
    if (!merged.empty()) {
      AmpPotEvent& last = merged.back();
      if (last.victim == event.victim && last.protocol == event.protocol &&
          event.start <= last.end) {
        ConsolidatorMetrics::get().merge_folds.inc();
        last.end = std::max(last.end, event.end);
        last.requests += event.requests;
        if (event.honeypot_id >= 0) {
          if (std::find(group_ids.begin(), group_ids.end(),
                        event.honeypot_id) == group_ids.end())
            group_ids.push_back(event.honeypot_id);
        } else {
          group_unknown += event.honeypots;
        }
        last.honeypots =
            static_cast<std::uint32_t>(group_ids.size()) + group_unknown;
        if (last.honeypot_id != event.honeypot_id) last.honeypot_id = -1;
        continue;
      }
    }
    merged.push_back(event);
    group_ids.clear();
    group_unknown = 0;
    if (event.honeypot_id >= 0)
      group_ids.push_back(event.honeypot_id);
    else
      group_unknown = event.honeypots;
  }
  std::sort(merged.begin(), merged.end(),
            [](const AmpPotEvent& a, const AmpPotEvent& b) {
              return std::tie(a.start, a.victim, a.protocol) <
                     std::tie(b.start, b.victim, b.protocol);
            });
  return merged;
}

}  // namespace dosm::amppot
