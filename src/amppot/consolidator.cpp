#include "amppot/consolidator.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

namespace dosm::amppot {

namespace {

struct Session {
  double start = 0.0;
  double end = 0.0;
  std::uint64_t requests = 0;
};

}  // namespace

std::vector<AmpPotEvent> consolidate_log(std::span<const RequestRecord> log,
                                         const ConsolidatorConfig& config) {
  std::vector<AmpPotEvent> events;
  // Keyed by (victim, protocol); logs are time-ordered so a linear pass with
  // open sessions suffices.
  std::map<std::pair<std::uint32_t, std::uint8_t>, Session> open;

  auto close = [&](net::Ipv4Addr victim, ReflectionProtocol protocol,
                   const Session& s) {
    if (s.requests <= config.min_requests) return;  // "exceeding 100 requests"
    AmpPotEvent event;
    event.victim = victim;
    event.protocol = protocol;
    event.start = s.start;
    event.end = s.end;
    event.requests = s.requests;
    event.honeypots = 1;
    events.push_back(event);
  };

  for (const auto& req : log) {
    const auto key = std::make_pair(req.source.value(),
                                    static_cast<std::uint8_t>(req.protocol));
    auto it = open.find(key);
    if (it != open.end()) {
      Session& s = it->second;
      const bool gap = req.ts - s.end > config.gap_timeout_s;
      const bool capped = req.ts - s.start > config.max_duration_s;
      if (gap || capped) {
        close(req.source, req.protocol, s);
        s = Session{req.ts, req.ts, 1};
        continue;
      }
      s.end = req.ts;
      ++s.requests;
    } else {
      open.emplace(key, Session{req.ts, req.ts, 1});
    }
  }
  for (const auto& [key, s] : open) {
    close(net::Ipv4Addr(key.first),
          static_cast<ReflectionProtocol>(key.second), s);
  }
  std::sort(events.begin(), events.end(),
            [](const AmpPotEvent& a, const AmpPotEvent& b) {
              return std::tie(a.start, a.victim, a.protocol) <
                     std::tie(b.start, b.victim, b.protocol);
            });
  return events;
}

std::vector<AmpPotEvent> merge_fleet_events(std::vector<AmpPotEvent> events) {
  // Group by (victim, protocol), sort each group by start, merge overlaps.
  std::sort(events.begin(), events.end(),
            [](const AmpPotEvent& a, const AmpPotEvent& b) {
              return std::tie(a.victim, a.protocol, a.start) <
                     std::tie(b.victim, b.protocol, b.start);
            });
  std::vector<AmpPotEvent> merged;
  for (const auto& event : events) {
    if (!merged.empty()) {
      AmpPotEvent& last = merged.back();
      if (last.victim == event.victim && last.protocol == event.protocol &&
          event.start <= last.end) {
        last.end = std::max(last.end, event.end);
        last.requests += event.requests;
        last.honeypots += event.honeypots;
        continue;
      }
    }
    merged.push_back(event);
  }
  std::sort(merged.begin(), merged.end(),
            [](const AmpPotEvent& a, const AmpPotEvent& b) {
              return std::tie(a.start, a.victim, a.protocol) <
                     std::tie(b.start, b.victim, b.protocol);
            });
  return merged;
}

}  // namespace dosm::amppot
