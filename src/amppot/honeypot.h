// A single AmpPot honeypot instance.
//
// An AmpPot mimics an open reflector: it answers protocol requests so that
// scanners list it, but rate-limits replies to at most a trickle per source
// ("AmpPot only replies to sources sending fewer than three packets per
// minute", §3.1.2) so it cannot contribute meaningful attack bandwidth.
// Every incoming request is logged; the consolidator later turns logs into
// attack events.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "amppot/protocols.h"
#include "meta/geo.h"
#include "net/ipv4.h"

namespace dosm::amppot {

/// One logged request (a spoofed datagram claiming to come from `source`).
struct RequestRecord {
  double ts = 0.0;             // unix seconds
  net::Ipv4Addr source;        // alleged (spoofed) source = the victim
  ReflectionProtocol protocol = ReflectionProtocol::kOther;
  std::uint16_t request_bytes = 0;
};

/// Sliding-window reply rate limiter: a source gets replies only while it
/// has sent fewer than `max_per_minute` packets in the trailing 60 s.
class ReplyRateLimiter {
 public:
  explicit ReplyRateLimiter(std::uint32_t max_per_minute = 3)
      : max_per_minute_(max_per_minute) {}

  /// Registers a packet from `source` at `ts` and reports whether the
  /// honeypot replies to it. Timestamps must be non-decreasing per source.
  bool on_packet(double ts, net::Ipv4Addr source);

  /// Drops per-source state idle since before `ts - 120 s` (memory bound).
  void compact(double now);

  std::size_t tracked_sources() const { return windows_.size(); }

 private:
  struct Window {
    double minute_start = 0.0;
    std::uint32_t in_window = 0;
    double last_seen = 0.0;
  };
  std::uint32_t max_per_minute_;
  std::unordered_map<net::Ipv4Addr, Window> windows_;
};

/// A honeypot instance: identity + request log + reply accounting.
class Honeypot {
 public:
  Honeypot(int id, net::Ipv4Addr address, meta::CountryCode location);

  int id() const { return id_; }
  net::Ipv4Addr address() const { return address_; }
  meta::CountryCode location() const { return location_; }

  /// Ingests one request; returns true if the honeypot replied (rate
  /// limiter permitting).
  bool receive(const RequestRecord& request);

  const std::vector<RequestRecord>& log() const { return log_; }
  /// Lifetime request count (survives clear_log()).
  std::uint64_t requests_received() const { return requests_received_; }
  std::uint64_t replies_sent() const { return replies_sent_; }

  /// Clears the request log (after consolidation) keeping counters.
  void clear_log();

 private:
  int id_;
  net::Ipv4Addr address_;
  meta::CountryCode location_;
  ReplyRateLimiter limiter_;
  std::vector<RequestRecord> log_;
  std::uint64_t replies_sent_ = 0;
  std::uint64_t requests_received_ = 0;
};

}  // namespace dosm::amppot
