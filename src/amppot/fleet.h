// The AmpPot fleet — 24 honeypot instances plus the attacker-side request
// synthesizer (the honeypot-dataset substitute).
//
// A reflection attack sprays spoofed requests over a list of reflectors the
// attacker scanned beforehand; some of our honeypots are on that list and
// each sees a per-reflector share of the request stream. The fleet mirrors
// the paper's deployment: 24 instances spread over America (11), Europe (8),
// Asia (4) and Australia (1) — enough to catch most reflection attacks [7].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "amppot/consolidator.h"
#include "amppot/honeypot.h"
#include "common/rng.h"

namespace dosm::amppot {

/// Ground truth for one reflection/amplification attack.
struct ReflectionAttackSpec {
  net::Ipv4Addr victim;
  ReflectionProtocol protocol = ReflectionProtocol::kNtp;
  double start = 0.0;
  double duration_s = 300.0;
  /// Requests/sec the attacker sends to each reflector on its list.
  double per_reflector_rps = 100.0;
  /// How many of the fleet's honeypots are on the attacker's reflector list
  /// (0 means the attack is invisible to us).
  int honeypots_hit = 1;
};

/// Background scanning traffic (researchers and attackers looking for open
/// reflectors); stays below the event threshold and must not become events.
struct ScannerNoiseConfig {
  double scans_per_hour_per_honeypot = 0.0;
  /// Probes each scanner sends per honeypot (well under 100).
  int probes_per_scan = 4;
};

class HoneypotFleet {
 public:
  explicit HoneypotFleet(std::uint64_t seed, int num_honeypots = 24);

  std::span<const Honeypot> honeypots() const { return honeypots_; }
  std::size_t size() const { return honeypots_.size(); }

  /// Drives the given attacks (clipped to [window_start, window_end)) plus
  /// scanner noise into the honeypot logs, in timestamp order.
  void run(std::span<const ReflectionAttackSpec> attacks, double window_start,
           double window_end, const ScannerNoiseConfig& noise = {});

  /// Delivers a single request to the honeypot at `index` (the packet-level
  /// ingestion path; see amppot/packet_ingest.h). Requests per honeypot
  /// must arrive in non-decreasing time order. Returns true if the
  /// honeypot replied.
  bool deliver(std::size_t index, const RequestRecord& request) {
    return honeypots_.at(index).receive(request);
  }

  /// Consolidates every honeypot's log into fleet-level attack events and
  /// clears the logs. Events are time-ordered.
  std::vector<AmpPotEvent> harvest(const ConsolidatorConfig& config = {});

  /// Clears every honeypot's request log without consolidating (used by the
  /// parallel harvest path, which reads the logs in place first).
  void clear_logs();

  std::uint64_t total_requests() const;
  std::uint64_t total_replies() const;

 private:
  Rng rng_;
  std::vector<Honeypot> honeypots_;
};

}  // namespace dosm::amppot
