#include "amppot/honeypot.h"

#include "obs/metrics.h"

namespace dosm::amppot {
namespace {

struct FleetMetrics {
  obs::Counter& requests;
  obs::Counter& replies;
  obs::Counter& rate_limited;

  static FleetMetrics& get() {
    static FleetMetrics metrics = [] {
      auto& reg = obs::MetricsRegistry::global();
      return FleetMetrics{
          reg.counter("amppot.requests",
                      "Amplification requests received across the fleet"),
          reg.counter("amppot.replies",
                      "Requests the rate limiter allowed a reply for"),
          reg.counter("amppot.rate_limited",
                      "Requests suppressed by the per-source reply limiter"),
      };
    }();
    return metrics;
  }
};

}  // namespace

bool ReplyRateLimiter::on_packet(double ts, net::Ipv4Addr source) {
  Window& w = windows_[source];
  if (ts - w.minute_start >= 60.0) {
    w.minute_start = ts;
    w.in_window = 0;
  }
  w.last_seen = ts;
  ++w.in_window;
  return w.in_window < max_per_minute_;
}

void ReplyRateLimiter::compact(double now) {
  for (auto it = windows_.begin(); it != windows_.end();) {
    if (now - it->second.last_seen > 120.0)
      it = windows_.erase(it);
    else
      ++it;
  }
}

Honeypot::Honeypot(int id, net::Ipv4Addr address, meta::CountryCode location)
    : id_(id), address_(address), location_(location) {}

bool Honeypot::receive(const RequestRecord& request) {
  log_.push_back(request);
  ++requests_received_;
  FleetMetrics& metrics = FleetMetrics::get();
  metrics.requests.inc();
  const bool reply = limiter_.on_packet(request.ts, request.source);
  if (reply) {
    ++replies_sent_;
    metrics.replies.inc();
  } else {
    metrics.rate_limited.inc();
  }
  return reply;
}

void Honeypot::clear_log() { log_.clear(); }

}  // namespace dosm::amppot
