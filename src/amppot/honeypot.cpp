#include "amppot/honeypot.h"

namespace dosm::amppot {

bool ReplyRateLimiter::on_packet(double ts, net::Ipv4Addr source) {
  Window& w = windows_[source];
  if (ts - w.minute_start >= 60.0) {
    w.minute_start = ts;
    w.in_window = 0;
  }
  w.last_seen = ts;
  ++w.in_window;
  return w.in_window < max_per_minute_;
}

void ReplyRateLimiter::compact(double now) {
  for (auto it = windows_.begin(); it != windows_.end();) {
    if (now - it->second.last_seen > 120.0)
      it = windows_.erase(it);
    else
      ++it;
  }
}

Honeypot::Honeypot(int id, net::Ipv4Addr address, meta::CountryCode location)
    : id_(id), address_(address), location_(location) {}

bool Honeypot::receive(const RequestRecord& request) {
  log_.push_back(request);
  ++requests_received_;
  const bool reply = limiter_.on_packet(request.ts, request.source);
  if (reply) ++replies_sent_;
  return reply;
}

void Honeypot::clear_log() { log_.clear(); }

}  // namespace dosm::amppot
