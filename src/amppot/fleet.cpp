#include "amppot/fleet.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dosm::amppot {

namespace {

/// Deployment mix per the paper (§3.1.2 fn. 3): 11 America, 8 Europe,
/// 4 Asia, 1 Australia. Repeats if the fleet is larger than 24.
meta::CountryCode location_for(int index) {
  static const char* kLocations[24] = {
      // America (11)
      "US", "US", "US", "US", "US", "US", "US", "US", "CA", "BR", "US",
      // Europe (8)
      "DE", "DE", "NL", "NL", "GB", "FR", "IE", "SE",
      // Asia (4)
      "JP", "SG", "IN", "HK",
      // Australia (1)
      "AU"};
  return meta::CountryCode(kLocations[index % 24]);
}

}  // namespace

HoneypotFleet::HoneypotFleet(std::uint64_t seed, int num_honeypots)
    : rng_(seed) {
  if (num_honeypots < 1)
    throw std::invalid_argument("HoneypotFleet: need at least one honeypot");
  honeypots_.reserve(static_cast<std::size_t>(num_honeypots));
  for (int i = 0; i < num_honeypots; ++i) {
    // Honeypot addresses live in distinct cloud/volunteer networks; use
    // spread-out documentation-style addresses.
    const auto addr = net::Ipv4Addr(
        static_cast<std::uint32_t>(0xc6336400u + 256u * static_cast<std::uint32_t>(i) + 10u));
    honeypots_.emplace_back(i, addr, location_for(i));
  }
}

void HoneypotFleet::run(std::span<const ReflectionAttackSpec> attacks,
                        double window_start, double window_end,
                        const ScannerNoiseConfig& noise) {
  const auto n = honeypots_.size();
  std::vector<std::vector<RequestRecord>> pending(n);

  for (const auto& spec : attacks) {
    const double begin = std::max(spec.start, window_start);
    const double end = std::min(spec.start + spec.duration_s, window_end);
    if (end <= begin || spec.per_reflector_rps <= 0.0 || spec.honeypots_hit <= 0)
      continue;
    // Choose which honeypots are on the attacker's reflector list
    // (partial Fisher-Yates over indices).
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    const auto hit = std::min<std::size_t>(
        static_cast<std::size_t>(spec.honeypots_hit), n);
    for (std::size_t i = 0; i < hit; ++i) {
      const auto j = i + rng_.next_below(n - i);
      std::swap(idx[i], idx[j]);
    }
    const std::uint16_t req_bytes = protocol_info(spec.protocol).request_bytes;
    for (std::size_t i = 0; i < hit; ++i) {
      auto& log = pending[idx[i]];
      double t = begin + rng_.exponential(spec.per_reflector_rps);
      while (t < end) {
        log.push_back(RequestRecord{t, spec.victim, spec.protocol, req_bytes});
        t += rng_.exponential(spec.per_reflector_rps);
      }
    }
  }

  if (noise.scans_per_hour_per_honeypot > 0.0) {
    const double rate = noise.scans_per_hour_per_honeypot / 3600.0;
    for (std::size_t h = 0; h < n; ++h) {
      double t = window_start + rng_.exponential(rate);
      while (t < window_end) {
        // A scanner probes each protocol a handful of times from its own
        // (non-spoofed) address.
        const auto scanner =
            net::Ipv4Addr(static_cast<std::uint32_t>(rng_.next_u64()));
        for (int p = 0; p < noise.probes_per_scan; ++p) {
          const auto& info =
              all_protocols()[rng_.next_below(kNumReflectionProtocols)];
          pending[h].push_back(RequestRecord{
              t + 0.1 * p, scanner, info.protocol, info.request_bytes});
        }
        t += rng_.exponential(rate);
      }
    }
  }

  for (std::size_t h = 0; h < n; ++h) {
    auto& log = pending[h];
    std::sort(log.begin(), log.end(),
              [](const RequestRecord& a, const RequestRecord& b) {
                return a.ts < b.ts;
              });
    for (const auto& req : log) honeypots_[h].receive(req);
  }
}

std::vector<AmpPotEvent> HoneypotFleet::harvest(const ConsolidatorConfig& config) {
  std::vector<AmpPotEvent> all;
  for (auto& honeypot : honeypots_) {
    auto events = consolidate_log(honeypot.log(), config, honeypot.id());
    all.insert(all.end(), events.begin(), events.end());
    honeypot.clear_log();
  }
  return merge_fleet_events(std::move(all));
}

void HoneypotFleet::clear_logs() {
  for (auto& honeypot : honeypots_) honeypot.clear_log();
}

std::uint64_t HoneypotFleet::total_requests() const {
  std::uint64_t sum = 0;
  for (const auto& honeypot : honeypots_) sum += honeypot.requests_received();
  return sum;
}

std::uint64_t HoneypotFleet::total_replies() const {
  std::uint64_t sum = 0;
  for (const auto& honeypot : honeypots_) sum += honeypot.replies_sent();
  return sum;
}

}  // namespace dosm::amppot
