// Packet-level ingestion for AmpPot — the honeypot-side counterpart of the
// telescope's pcap replay path.
//
// A real AmpPot instance receives raw UDP datagrams; the emulated protocol
// is identified by the destination port and the (spoofed) victim is the
// source address. This module decodes captured packets into RequestRecords
// and routes them to the fleet instance owning the destination address, so
// a honeypot deployment can be driven end-to-end from pcap bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "amppot/fleet.h"
#include "net/headers.h"
#include "net/pcap.h"

namespace dosm::amppot {

/// Statistics of one ingestion run.
struct IngestStats {
  std::uint64_t packets = 0;        // total frames examined
  std::uint64_t requests = 0;       // UDP datagrams delivered to a honeypot
  std::uint64_t non_udp = 0;        // dropped: not UDP
  std::uint64_t unknown_port = 0;   // dropped: no emulated protocol there
  std::uint64_t unknown_address = 0;  // dropped: not one of our honeypots
};

/// Routes decoded packets to fleet honeypots. Packets must be in
/// non-decreasing time order (pcap replay order), as Honeypot::receive's
/// rate limiter requires.
class PacketIngest {
 public:
  /// The fleet must outlive the ingester.
  explicit PacketIngest(HoneypotFleet& fleet);

  /// Ingests one decoded packet; returns true if it became a request.
  bool ingest(const net::PacketRecord& rec);

  /// Replays an entire pcap stream.
  IngestStats replay(net::PcapReader& reader);

  /// Replays an in-memory packet vector.
  IngestStats replay(std::span<const net::PacketRecord> packets);

  const IngestStats& stats() const { return stats_; }

 private:
  HoneypotFleet& fleet_;
  std::unordered_map<net::Ipv4Addr, std::size_t> by_address_;
  IngestStats stats_;
};

/// Synthesizes the raw request datagrams a reflection attack sprays at the
/// fleet (the packet-level counterpart of HoneypotFleet::run): each chosen
/// honeypot receives a Poisson stream of protocol requests with the victim
/// as spoofed source. Returns time-sorted packets, window-clipped.
std::vector<net::PacketRecord> synthesize_reflection_requests(
    const HoneypotFleet& fleet, std::span<const ReflectionAttackSpec> attacks,
    double window_start, double window_end, std::uint64_t seed);

}  // namespace dosm::amppot
