// Reflection/amplification protocol registry.
//
// AmpPot emulates the eight UDP protocols the paper lists (§3.1.2 fn. 2):
// QOTD, CharGen, DNS, NTP, SSDP, MSSQL, RIPv1, and TFTP. Each entry carries
// the protocol's well-known UDP port and a representative bandwidth
// amplification factor (BAF) from Rossow, "Amplification Hell" (NDSS 2014);
// the BAF drives how attractive each vector is to simulated attackers and
// how much reflected traffic a request generates.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace dosm::amppot {

enum class ReflectionProtocol : std::uint8_t {
  kQotd,
  kCharGen,
  kDns,
  kNtp,
  kSsdp,
  kMssql,
  kRipv1,
  kTftp,
  kOther,
};

/// Number of concrete protocols (excluding kOther).
inline constexpr std::size_t kNumReflectionProtocols = 8;

struct ProtocolInfo {
  ReflectionProtocol protocol;
  std::string_view name;
  std::uint16_t udp_port;
  double amplification;  // bandwidth amplification factor
  std::uint16_t request_bytes;  // typical request datagram size
};

/// Static info for a protocol; kOther gets a generic entry.
const ProtocolInfo& protocol_info(ReflectionProtocol p);

/// All eight concrete protocols.
std::span<const ProtocolInfo> all_protocols();

/// Protocol listening on the given UDP port, if any.
std::optional<ReflectionProtocol> protocol_for_port(std::uint16_t port);

std::string to_string(ReflectionProtocol p);

}  // namespace dosm::amppot
