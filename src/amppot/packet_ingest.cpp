#include "amppot/packet_ingest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace dosm::amppot {

PacketIngest::PacketIngest(HoneypotFleet& fleet) : fleet_(fleet) {
  for (std::size_t i = 0; i < fleet.honeypots().size(); ++i)
    by_address_[fleet.honeypots()[i].address()] = i;
}

bool PacketIngest::ingest(const net::PacketRecord& rec) {
  ++stats_.packets;
  if (!rec.is_udp()) {
    ++stats_.non_udp;
    return false;
  }
  const auto it = by_address_.find(rec.dst);
  if (it == by_address_.end()) {
    ++stats_.unknown_address;
    return false;
  }
  const auto protocol = protocol_for_port(rec.dst_port);
  if (!protocol) {
    ++stats_.unknown_port;
    return false;
  }
  RequestRecord request;
  request.ts = rec.timestamp();
  request.source = rec.src;  // the spoofed victim
  request.protocol = *protocol;
  request.request_bytes = rec.ip_len;
  fleet_.deliver(it->second, request);
  ++stats_.requests;
  return true;
}

IngestStats PacketIngest::replay(net::PcapReader& reader) {
  while (auto rec = reader.next_packet()) ingest(*rec);
  return stats_;
}

IngestStats PacketIngest::replay(std::span<const net::PacketRecord> packets) {
  for (const auto& rec : packets) ingest(rec);
  return stats_;
}

std::vector<net::PacketRecord> synthesize_reflection_requests(
    const HoneypotFleet& fleet, std::span<const ReflectionAttackSpec> attacks,
    double window_start, double window_end, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<net::PacketRecord> out;
  const auto honeypots = fleet.honeypots();

  for (const auto& spec : attacks) {
    const double begin = std::max(spec.start, window_start);
    const double end = std::min(spec.start + spec.duration_s, window_end);
    if (end <= begin || spec.per_reflector_rps <= 0.0 || spec.honeypots_hit <= 0)
      continue;
    const auto& info = protocol_info(spec.protocol);

    // Partial Fisher-Yates pick of the honeypots on the reflector list.
    std::vector<std::size_t> idx(honeypots.size());
    std::iota(idx.begin(), idx.end(), 0);
    const auto hit =
        std::min<std::size_t>(static_cast<std::size_t>(spec.honeypots_hit),
                              honeypots.size());
    for (std::size_t i = 0; i < hit; ++i) {
      const auto j = i + rng.next_below(idx.size() - i);
      std::swap(idx[i], idx[j]);
    }
    for (std::size_t i = 0; i < hit; ++i) {
      double t = begin + rng.exponential(spec.per_reflector_rps);
      while (t < end) {
        net::PacketRecord rec;
        rec.ts_sec = static_cast<UnixSeconds>(std::floor(t));
        rec.ts_usec = static_cast<std::uint32_t>((t - std::floor(t)) * 1e6);
        rec.src = spec.victim;  // spoofed
        rec.dst = honeypots[idx[i]].address();
        rec.proto = 17;  // UDP
        rec.src_port = info.udp_port;  // victims "reply" from the service port
        rec.dst_port = info.udp_port;
        rec.ip_len = static_cast<std::uint16_t>(28 + info.request_bytes);
        out.push_back(rec);
        t += rng.exponential(spec.per_reflector_rps);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const net::PacketRecord& a, const net::PacketRecord& b) {
              return a.timestamp() < b.timestamp();
            });
  return out;
}

}  // namespace dosm::amppot
