#include "amppot/protocols.h"

#include <array>

namespace dosm::amppot {

namespace {

// BAFs follow Rossow (NDSS 2014), Table 3 (NTP uses the monlist figure that
// made it the dominant vector in the paper's window).
constexpr std::array<ProtocolInfo, kNumReflectionProtocols + 1> kProtocols{{
    {ReflectionProtocol::kQotd, "QOTD", 17, 140.3, 1},
    {ReflectionProtocol::kCharGen, "CharGen", 19, 358.8, 1},
    {ReflectionProtocol::kDns, "DNS", 53, 54.6, 64},
    {ReflectionProtocol::kNtp, "NTP", 123, 556.9, 8},
    {ReflectionProtocol::kSsdp, "SSDP", 1900, 30.8, 90},
    {ReflectionProtocol::kMssql, "MSSQL", 1434, 25.3, 1},
    {ReflectionProtocol::kRipv1, "RIPv1", 520, 131.2, 24},
    {ReflectionProtocol::kTftp, "TFTP", 69, 60.0, 20},
    {ReflectionProtocol::kOther, "Other", 0, 10.0, 32},
}};

}  // namespace

const ProtocolInfo& protocol_info(ReflectionProtocol p) {
  const auto idx = static_cast<std::size_t>(p);
  return kProtocols[idx < kProtocols.size() ? idx : kProtocols.size() - 1];
}

std::span<const ProtocolInfo> all_protocols() {
  return std::span(kProtocols.data(), kNumReflectionProtocols);
}

std::optional<ReflectionProtocol> protocol_for_port(std::uint16_t port) {
  for (const auto& info : all_protocols())
    if (info.udp_port == port) return info.protocol;
  return std::nullopt;
}

std::string to_string(ReflectionProtocol p) {
  return std::string(protocol_info(p).name);
}

}  // namespace dosm::amppot
