// Turning honeypot request logs into attack events.
//
// Stage 1 (per honeypot): requests are grouped by (victim, protocol) into
// sessions separated by an inactivity gap; sessions are capped at 24 h (the
// operational cap the paper notes in §4) and only sessions exceeding the
// request threshold (100, §3.1.2) become events — everything below is
// scanner traffic or noise.
//
// Stage 2 (fleet): per-honeypot events for the same victim and protocol
// that overlap in time are merged into a single attack event, since one
// attack sprays requests across many reflectors at once. The intensity
// metric is the paper's: the *average requests per second seen by one
// honeypot* (total requests / duration / honeypots involved).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "amppot/honeypot.h"

namespace dosm::amppot {

/// A reflection/amplification attack event (fleet-level).
struct AmpPotEvent {
  net::Ipv4Addr victim;
  ReflectionProtocol protocol = ReflectionProtocol::kOther;
  double start = 0.0;
  double end = 0.0;
  std::uint64_t requests = 0;   // total across contributing honeypots
  std::uint32_t honeypots = 1;  // distinct honeypots contributing
  /// Identity of the (single) honeypot that observed this event, or -1 when
  /// unknown / merged from several honeypots. merge_fleet_events dedupes
  /// `honeypots` by this id, so one honeypot contributing several
  /// overlapping sessions counts once.
  std::int32_t honeypot_id = -1;

  double duration() const { return end - start; }

  /// Average requests/sec to a single reflector (the paper's intensity).
  double avg_rps() const {
    const double d = duration();
    if (d <= 0.0) return static_cast<double>(requests);
    return static_cast<double>(requests) / d / static_cast<double>(honeypots);
  }
};

/// Consolidation knobs; defaults follow the paper.
struct ConsolidatorConfig {
  std::uint64_t min_requests = 100;  // per-honeypot event threshold
  double gap_timeout_s = 3600.0;     // inactivity gap that splits sessions
  double max_duration_s = 24.0 * 3600.0;  // 24 h event cap
};

/// Stage 1: per-honeypot session extraction. `log` must be time-ordered.
/// Emitted events have honeypots == 1 and carry `honeypot_id` so the fleet
/// merge can count distinct contributors.
std::vector<AmpPotEvent> consolidate_log(std::span<const RequestRecord> log,
                                         const ConsolidatorConfig& config = {},
                                         std::int32_t honeypot_id = -1);

/// Stage 2: merges overlapping per-honeypot events (same victim+protocol)
/// into fleet-level attack events. Input order is arbitrary.
std::vector<AmpPotEvent> merge_fleet_events(std::vector<AmpPotEvent> events);

}  // namespace dosm::amppot
