#include "serve/router.h"

#include <stdexcept>

namespace dosm::serve {

Router& Router::add(std::string method, std::string path, ParseFn parse,
                    ExecFn exec, bool cacheable) {
  for (const Route& route : routes_)
    if (route.method == method && route.path == path)
      throw std::invalid_argument("Router: duplicate route " + method + " " +
                                  path);
  Route route;
  route.method = std::move(method);
  route.path = std::move(path);
  route.parse = std::move(parse);
  route.exec = std::move(exec);
  route.cacheable = cacheable;
  routes_.push_back(std::move(route));
  return *this;
}

Router::Prepared Router::prepare(const HttpRequest& request,
                                 const RequestContext& context) const {
  const std::string_view path = request.path.empty()
                                    ? std::string_view("/")
                                    : std::string_view(request.path);
  Prepared prepared;
  bool path_known = false;
  for (const Route& route : routes_) {
    if (route.path != path) continue;
    path_known = true;
    if (route.method != request.method) continue;
    prepared.call = route.parse(request, context);
    if (!prepared.call.error.empty()) {
      prepared.response = error_response(400, prepared.call.error);
      return prepared;
    }
    prepared.route = &route;
    return prepared;
  }
  prepared.response = path_known
                          ? error_response(405, "method not allowed")
                          : error_response(404, "no such endpoint");
  return prepared;
}

std::vector<std::pair<std::string, std::string>> Router::routes() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(routes_.size());
  for (const Route& route : routes_) out.emplace_back(route.method, route.path);
  return out;
}

}  // namespace dosm::serve
