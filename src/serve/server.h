// The query server: a fixed thread pool serving the JSON API over the live
// snapshot, with explicit admission control and a snapshot-keyed result
// cache.
//
// Shape (one acceptor, W workers, one bounded queue between them):
//
//   acceptor ──try_push──▶ [bounded fd queue] ──pop──▶ worker × W
//       │ queue full?                                    │
//       └── write canned 429, close ────────             └── parse → cache →
//                                                            execute → respond
//
// Admission control is explicit: the ONLY unbounded thing in the system is
// the listen backlog the kernel already bounds. When the fd queue is full
// the acceptor still accepts (so the client gets an answer, not a timeout),
// writes a canned 429 with Retry-After, closes, and counts the drop in
// serve.admission.rejected. Nothing downstream of the queue can be
// saturated into allocation growth.
//
// Each request runs against ONE snapshot acquired once (shared_ptr load
// from the QueryEngine); the result cache is keyed by (snapshot version,
// Query::cache_key(), canonical request string), so a publish never serves
// stale bytes — workers also purge stale entries when they observe a new
// version. Responses are byte-identical for the same request + snapshot
// version regardless of worker count, cache state, or arrival order
// (tests/serve_test.cpp holds this pairwise at 1 vs 8 workers).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "query/budget.h"
#include "query/engine.h"
#include "serve/cache.h"
#include "serve/http.h"
#include "serve/router.h"

namespace dosm::serve {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;          // 0 = ephemeral; see Server::port()
  std::size_t workers = 4;         // worker threads (>= 1)
  std::size_t queue_capacity = 64; // pending connections before 429s
  std::size_t cache_bytes = 8 << 20;  // result cache budget; 0 disables
  std::uint64_t max_rows = 0;      // per-query row budget; 0 = unlimited
  std::uint64_t max_millis = 0;    // per-query wall budget; 0 = unlimited
  HttpLimits http;
};

/// Bounded MPMC queue of accepted sockets. Push never blocks (admission
/// control wants an immediate verdict); pop blocks until an fd arrives or
/// the queue is closed. Closing drains remaining fds to the caller so they
/// can be shut down cleanly.
class BoundedFdQueue {
 public:
  explicit BoundedFdQueue(std::size_t capacity);

  /// False when full or closed — the caller owns the fd again.
  bool try_push(int fd);
  /// Blocks; returns -1 once closed AND drained.
  int pop();
  void close();
  std::size_t depth() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<int> fds_;
  bool closed_ = false;
};

class Server {
 public:
  /// Binds and starts the acceptor + worker threads. Throws
  /// std::runtime_error when the socket cannot be bound. A non-null
  /// dispatcher enables the /subscribe and /watch endpoints; without one
  /// they answer 503 "subscriptions disabled".
  Server(const ServerConfig& config, query::QueryEngine& engine,
         subscribe::Dispatcher* dispatcher = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The actual bound port (resolves config.port == 0).
  std::uint16_t port() const { return port_; }

  /// Stops accepting, closes queued connections, joins all threads.
  /// Idempotent.
  void stop();

  ResultCache& cache() { return cache_; }
  const ResultCache& cache() const { return cache_; }

  /// The route table the server dispatches on (for tests/introspection).
  const Router& router() const { return router_; }

 private:
  /// Binds config_.bind_address:config_.port and resolves port_. Throws
  /// std::runtime_error on socket/bind failure.
  void open_listen_socket();
  void accept_loop();
  void worker_loop();
  /// Serves one connection until close / keep-alive exhaustion / error.
  void serve_connection(int fd);
  /// Full request → response bytes (cache consulted for cacheable routes).
  std::string handle(const HttpRequest& request, bool keep_alive);

  ServerConfig config_;
  query::QueryEngine& engine_;
  subscribe::Dispatcher* dispatcher_ = nullptr;
  Router router_;
  ResultCache cache_;
  BoundedFdQueue queue_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> last_seen_version_{0};
  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace dosm::serve
