// Snapshot-version-keyed LRU result cache.
//
// The dashboard workload ("Age of DDoScovery": the same cross-vantage
// comparison queries re-issued all day) makes repeated queries against an
// immutable snapshot — so a response computed once is valid until the next
// SnapshotPublisher publish. Keys therefore embed the snapshot VERSION next
// to Query::cache_key(): a publish naturally invalidates every cached body
// (old versions stop being requested), and purge_stale() reclaims their
// bytes eagerly when the server notices the swap.
//
// The cache is sized in BYTES, not entries: one giant top-k listing must
// not silently pin megabytes while a thousand tiny summaries thrash.
// Entries larger than the whole budget are never admitted. The full
// canonical request string is part of the key, so a 64-bit hash collision
// degrades to a miss, never to serving the wrong body.
//
// Thread-safe behind one mutex; entries are shared_ptr so a hit outlives
// concurrent eviction. Metrics: serve.cache.{hits,misses,evictions,
// stale_dropped,bytes,entries}.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace dosm::serve {

struct CachedResponse {
  int status = 200;
  std::string content_type;
  std::string body;
  std::uint64_t snapshot_version = 0;
};

class ResultCache {
 public:
  /// max_bytes == 0 disables the cache (every get() misses, put() drops).
  explicit ResultCache(std::size_t max_bytes);

  /// Releases this instance's share of the process-global serve.cache.bytes
  /// / serve.cache.entries gauges: freed entries must never keep reporting
  /// as resident after the cache (e.g. a stopped Server) is gone.
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  bool enabled() const { return max_bytes_ != 0; }
  std::size_t max_bytes() const { return max_bytes_; }

  /// The composite cache key: version-prefixed hash + canonical request.
  static std::string make_key(std::uint64_t snapshot_version,
                              std::uint64_t query_hash,
                              const std::string& canonical_request);

  /// Returns the cached response and refreshes recency, or nullptr.
  std::shared_ptr<const CachedResponse> get(const std::string& key);

  /// Inserts (or refreshes) an entry, evicting least-recently-used entries
  /// until the byte budget holds.
  void put(const std::string& key,
           std::shared_ptr<const CachedResponse> response);

  /// Drops every entry whose snapshot version differs from `current` —
  /// called when the server observes a publish.
  void purge_stale(std::uint64_t current_version);

  std::size_t bytes() const;
  std::size_t entries() const;

 private:
  struct Node {
    std::string key;
    std::shared_ptr<const CachedResponse> response;
    std::size_t cost = 0;
  };

  static std::size_t entry_cost(const std::string& key,
                                const CachedResponse& response);

  const std::size_t max_bytes_;
  mutable std::mutex mutex_;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> by_key_;
  std::size_t bytes_ = 0;
};

}  // namespace dosm::serve
