#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace dosm::serve {
namespace {

constexpr std::string_view kCrlf = "\r\n";

bool is_tchar(char c) {
  // RFC 7230 token characters, the ones that may appear in methods and
  // header names.
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  constexpr std::string_view kExtra = "!#$%&'*+-.^_`|~";
  return kExtra.find(c) != std::string_view::npos;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Percent-decodes `in` ('+' becomes space when `form` is set). Returns
/// false on a malformed escape.
bool percent_decode(std::string_view in, bool form, std::string& out) {
  out.clear();
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '%') {
      if (i + 2 >= in.size()) return false;
      const int hi = hex_digit(in[i + 1]);
      const int lo = hex_digit(in[i + 2]);
      if (hi < 0 || lo < 0) return false;
      out += static_cast<char>((hi << 4) | lo);
      i += 2;
    } else if (form && c == '+') {
      out += ' ';
    } else {
      out += c;
    }
  }
  return true;
}

ParseResult fail(ParseStatus status, std::string error) {
  ParseResult result;
  result.status = status;
  result.error = std::move(error);
  return result;
}

}  // namespace

bool parse_query_string(
    std::string_view text,
    std::vector<std::pair<std::string, std::string>>& params) {
  while (!text.empty()) {
    const std::size_t amp = text.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? text : text.substr(0, amp);
    text = amp == std::string_view::npos ? std::string_view{}
                                         : text.substr(amp + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    std::string key;
    std::string value;
    if (eq == std::string_view::npos) {
      if (!percent_decode(pair, /*form=*/true, key)) return false;
    } else {
      if (!percent_decode(pair.substr(0, eq), /*form=*/true, key)) return false;
      if (!percent_decode(pair.substr(eq + 1), /*form=*/true, value))
        return false;
    }
    params.emplace_back(std::move(key), std::move(value));
  }
  return true;
}

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers)
    if (key == name) return &value;
  return nullptr;
}

const std::string* HttpRequest::param(std::string_view name) const {
  for (const auto& [key, value] : params)
    if (key == name) return &value;
  return nullptr;
}

ParseResult parse_request(std::string_view data, const HttpLimits& limits) {
  // Locate the end of the head first; every size check happens against the
  // bytes we actually hold, so nothing here allocates off hostile lengths.
  const std::size_t head_end = data.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (data.size() > limits.max_header_bytes)
      return fail(ParseStatus::kTooLarge, "request head exceeds limit");
    // A request line must fit in the front of the head.
    const std::size_t line_end = data.find(kCrlf);
    if (line_end == std::string_view::npos &&
        data.size() > limits.max_request_line)
      return fail(ParseStatus::kTooLarge, "request line exceeds limit");
    return ParseResult{};  // kNeedMore
  }
  if (head_end + 4 > limits.max_header_bytes)
    return fail(ParseStatus::kTooLarge, "request head exceeds limit");

  const std::string_view head = data.substr(0, head_end);
  const std::size_t line_end = head.find(kCrlf);
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (request_line.size() > limits.max_request_line)
    return fail(ParseStatus::kTooLarge, "request line exceeds limit");

  // METHOD SP target SP HTTP/1.x
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos)
    return fail(ParseStatus::kBadRequest, "malformed request line");
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (method.empty() || !std::all_of(method.begin(), method.end(), is_tchar))
    return fail(ParseStatus::kBadRequest, "malformed method");
  if (target.empty() || target[0] != '/')
    return fail(ParseStatus::kBadRequest, "request target must be absolute");
  if (version != "HTTP/1.1" && version != "HTTP/1.0")
    return fail(ParseStatus::kBadRequest, "unsupported HTTP version");

  ParseResult result;
  HttpRequest& request = result.request;
  request.method = std::string(method);
  request.target = std::string(target);
  request.keep_alive = version == "HTTP/1.1";

  // Headers.
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{}
                                         : head.substr(line_end + 2);
  while (!rest.empty()) {
    const std::size_t eol = rest.find(kCrlf);
    const std::string_view line =
        eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 2);
    if (line.empty()) return fail(ParseStatus::kBadRequest, "empty header line");
    if (request.headers.size() >= limits.max_headers)
      return fail(ParseStatus::kTooLarge, "too many headers");
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0)
      return fail(ParseStatus::kBadRequest, "malformed header line");
    const std::string_view name = line.substr(0, colon);
    if (!std::all_of(name.begin(), name.end(), is_tchar))
      return fail(ParseStatus::kBadRequest, "malformed header name");
    request.headers.emplace_back(to_lower(name),
                                 std::string(trim(line.substr(colon + 1))));
  }

  // Connection handling overrides the version default.
  if (const std::string* connection = request.header("connection")) {
    const std::string value = to_lower(*connection);
    if (value == "close") request.keep_alive = false;
    else if (value == "keep-alive") request.keep_alive = true;
  }
  if (request.header("transfer-encoding"))
    return fail(ParseStatus::kBadRequest, "transfer-encoding not supported");

  // Body: Content-Length only, bounded BEFORE we wait for or copy bytes.
  std::size_t content_length = 0;
  if (const std::string* value = request.header("content-length")) {
    const auto [ptr, ec] = std::from_chars(
        value->data(), value->data() + value->size(), content_length);
    if (ec != std::errc{} || ptr != value->data() + value->size())
      return fail(ParseStatus::kBadRequest, "malformed content-length");
    if (content_length > limits.max_body_bytes)
      return fail(ParseStatus::kTooLarge, "body exceeds limit");
  }
  const std::size_t body_begin = head_end + 4;
  if (data.size() - body_begin < content_length) return ParseResult{};
  request.body = std::string(data.substr(body_begin, content_length));

  // Split the target into decoded path + params.
  const std::size_t qmark = request.target.find('?');
  const std::string_view raw_path =
      qmark == std::string::npos
          ? std::string_view(request.target)
          : std::string_view(request.target).substr(0, qmark);
  if (!percent_decode(raw_path, /*form=*/false, request.path))
    return fail(ParseStatus::kBadRequest, "malformed percent escape in path");
  if (qmark != std::string::npos &&
      !parse_query_string(std::string_view(request.target).substr(qmark + 1),
                          request.params))
    return fail(ParseStatus::kBadRequest, "malformed query parameter");

  result.status = ParseStatus::kOk;
  result.consumed = body_begin + content_length;
  return result;
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string render_response(int status, std::string_view content_type,
                            std::string_view body, bool keep_alive) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += reason_phrase(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

}  // namespace dosm::serve
