// Subscription endpoints: the HTTP face of subscribe::Dispatcher.
//
//   POST   /subscribe   register a predicate; parameters (URL + form body,
//                       all optional, ANDed):
//                         prefix=A.B.C.D/L   victim prefix (/32 exact, /24+)
//                         asn=N              victim origin ASN
//                         country=CC         victim country
//                         proto=N            attack IP protocol
//                         kind=new-attack|attack-spike|target-spike
//                       → {"subscription":id,"cursor":0,"predicate":"..."}
//   DELETE /subscribe   ?id=N → {"removed":true,"subscription":N}
//   GET    /watch       ?id=N&cursor=C&max=M&wait_ms=W — cursor-keyed delta
//                       fetch; wait_ms > 0 long-polls (capped at 10 s)
//                       → {"subscription":N,"cursor":C,"next_cursor":X,
//                          "dropped":D,"pending":P,"notifications":[...]}
//
// Responses are byte-deterministic the same way /query responses are: a
// /watch body is a pure function of (request, delivered notification
// sequence), so replaying a cursor always re-renders identical bytes.
// A server started without a Dispatcher answers 503 "subscriptions
// disabled" on all three.
#pragma once

namespace dosm::serve {

class Router;

/// Registers POST/DELETE /subscribe and GET /watch (none cacheable — they
/// read or mutate live dispatcher state, not a snapshot).
void install_subscribe_routes(Router& router);

}  // namespace dosm::serve
