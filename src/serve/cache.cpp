#include "serve/cache.h"

#include "serve/metrics.h"

namespace dosm::serve {
namespace {

std::string hex64(std::uint64_t v) {
  constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

ResultCache::ResultCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

ResultCache::~ResultCache() {
  // Subtract (rather than zero) so a coexisting instance's share survives;
  // for the normal single-server case this lands the gauges exactly at 0.
  Metrics& metrics = Metrics::get();
  metrics.cache_bytes.add(-static_cast<std::int64_t>(bytes_));
  metrics.cache_entries.add(-static_cast<std::int64_t>(lru_.size()));
}

std::string ResultCache::make_key(std::uint64_t snapshot_version,
                                  std::uint64_t query_hash,
                                  const std::string& canonical_request) {
  std::string key = "v";
  key += std::to_string(snapshot_version);
  key += '/';
  key += hex64(query_hash);
  key += '/';
  key += canonical_request;
  return key;
}

std::size_t ResultCache::entry_cost(const std::string& key,
                                    const CachedResponse& response) {
  // Key + body + content type, plus a fixed estimate for node/map overhead
  // so millions of tiny entries cannot blow past the budget unaccounted.
  constexpr std::size_t kOverhead = 128;
  return key.size() + response.body.size() + response.content_type.size() +
         kOverhead;
}

std::shared_ptr<const CachedResponse> ResultCache::get(const std::string& key) {
  Metrics& metrics = Metrics::get();
  if (!enabled()) {
    metrics.cache_misses.inc();
    return nullptr;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    metrics.cache_misses.inc();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  metrics.cache_hits.inc();
  return it->second->response;
}

void ResultCache::put(const std::string& key,
                      std::shared_ptr<const CachedResponse> response) {
  if (!enabled() || response == nullptr) return;
  Metrics& metrics = Metrics::get();
  const std::size_t cost = entry_cost(key, *response);
  if (cost > max_bytes_) return;  // never admit an entry that IS the budget
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    bytes_ -= it->second->cost;
    it->second->response = std::move(response);
    it->second->cost = cost;
    bytes_ += cost;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Node{key, std::move(response), cost});
    by_key_.emplace(key, lru_.begin());
    bytes_ += cost;
  }
  while (bytes_ > max_bytes_) {
    const Node& victim = lru_.back();
    bytes_ -= victim.cost;
    by_key_.erase(victim.key);
    lru_.pop_back();
    metrics.cache_evictions.inc();
  }
  metrics.cache_bytes.set(static_cast<std::int64_t>(bytes_));
  metrics.cache_entries.set(static_cast<std::int64_t>(lru_.size()));
}

void ResultCache::purge_stale(std::uint64_t current_version) {
  if (!enabled()) return;
  Metrics& metrics = Metrics::get();
  std::uint64_t dropped = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Walk the recency list (ordered, unlike the map) erasing stale nodes.
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->response->snapshot_version != current_version) {
        bytes_ -= it->cost;
        by_key_.erase(it->key);
        it = lru_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    metrics.cache_bytes.set(static_cast<std::int64_t>(bytes_));
    metrics.cache_entries.set(static_cast<std::int64_t>(lru_.size()));
  }
  metrics.cache_stale_dropped.add(dropped);
}

std::size_t ResultCache::bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::size_t ResultCache::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace dosm::serve
