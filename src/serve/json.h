// Deterministic compact-JSON building for API response bodies.
//
// Response bytes are part of the serve determinism contract (identical for
// the same query + snapshot version on any worker), so everything here is
// locale-free and allocation-order-free: strings escape a fixed set,
// doubles render via std::to_chars shortest-round-trip (the same choice as
// obs/export.cpp), and the writer emits members strictly in call order.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>

namespace dosm::serve {

inline void append_json_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += kHex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Shortest round-trip decimal rendering; byte-stable across runs/locales.
inline std::string json_double(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

/// Minimal compact-JSON writer. The caller is responsible for well-formed
/// nesting; members/elements are separated automatically.
class JsonWriter {
 public:
  std::string take() && { return std::move(out_); }
  const std::string& str() const { return out_; }

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view k) {
    separate();
    append_json_escaped(out_, k);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    separate();
    append_json_escaped(out_, v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::uint64_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(std::int64_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(double v) { return raw(json_double(v)); }
  JsonWriter& value(bool v) { return raw(v ? "true" : "false"); }

 private:
  JsonWriter& raw(std::string_view text) {
    separate();
    out_ += text;
    return *this;
  }

  JsonWriter& open(char c) {
    separate();
    out_ += c;
    first_ = true;
    return *this;
  }

  JsonWriter& close(char c) {
    out_ += c;
    first_ = false;
    return *this;
  }

  void separate() {
    if (pending_value_) {
      pending_value_ = false;  // key already emitted the ':'
      return;
    }
    if (!first_ && !out_.empty() && out_.back() != '{' && out_.back() != '[')
      out_ += ',';
    first_ = false;
  }

  std::string out_;
  bool first_ = true;
  bool pending_value_ = false;
};

}  // namespace dosm::serve
