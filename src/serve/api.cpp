#include "serve/api.h"

#include <charconv>

#include "common/time.h"
#include "serve/json.h"
#include "serve/metrics.h"
#include "serve/router.h"

namespace dosm::serve {
namespace {

constexpr std::string_view kJson = "application/json";

bool parse_u64(const std::string& s, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_f64(const std::string& s, double& out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

ApiCall bad_request(std::string error) {
  ApiCall call;
  call.error = std::move(error);
  return call;
}

/// Canonical, injective rendering of the resolved call — the cache-key
/// material. Doubles render via to_chars shortest-round-trip, so two
/// different queries always canonicalize differently.
std::string canonicalize(const ApiCall& call) {
  const query::Query& q = call.query;
  std::string out = "agg=";
  out += call.agg;
  out += ";k=";
  out += std::to_string(call.k);
  out += ";explain=";
  out += call.explain ? '1' : '0';
  out += ";t=";
  if (q.time) {
    out += json_double(q.time->begin);
    out += ',';
    out += json_double(q.time->end);
  } else {
    out += '-';
  }
  out += ";src=";
  out += core::to_string(q.source);
  out += ";pfx=";
  out += q.prefix ? q.prefix->to_string() : "-";
  out += ";asn=";
  out += q.asn ? std::to_string(*q.asn) : "-";
  out += ";cc=";
  out += q.country ? q.country->to_string() : "-";
  out += ";port=";
  out += q.port ? std::to_string(*q.port) : "-";
  out += ";min=";
  out += q.min_intensity ? json_double(*q.min_intensity) : "-";
  return out;
}

/// Applies one query parameter to the call. Returns an error message, or
/// empty on success. Day/second time params are collected by the caller.
std::string apply_param(const std::string& key, const std::string& value,
                        ApiCall& call) {
  query::Query& q = call.query;
  try {
    if (key == "source") {
      if (value == "telescope")
        q.from_source(core::SourceFilter::kTelescope);
      else if (value == "honeypot")
        q.from_source(core::SourceFilter::kHoneypot);
      else if (value == "combined")
        q.from_source(core::SourceFilter::kCombined);
      else
        return "source must be telescope|honeypot|combined";
    } else if (key == "prefix") {
      q.in_prefix(net::Prefix::parse(value));
    } else if (key == "asn") {
      std::uint64_t asn = 0;
      if (!parse_u64(value, asn) || asn > 0xffffffffull)
        return "malformed asn";
      q.in_asn(static_cast<meta::Asn>(asn));
    } else if (key == "country") {
      q.in_country(meta::CountryCode(value));
    } else if (key == "port") {
      std::uint64_t port = 0;
      if (!parse_u64(value, port) || port > 0xffff) return "malformed port";
      q.on_port(static_cast<std::uint16_t>(port));
    } else if (key == "min_intensity") {
      double intensity = 0.0;
      if (!parse_f64(value, intensity)) return "malformed min_intensity";
      q.at_least(intensity);
    } else if (key == "agg") {
      if (value != "summary" && value != "daily" && value != "top-targets" &&
          value != "top-asns" && value != "top-countries" && value != "events")
        return "unknown agg: " + value;
      call.agg = value;
    } else if (key == "k") {
      std::uint64_t k = 0;
      if (!parse_u64(value, k) || k == 0 || k > kMaxK)
        return "k must be in [1, " + std::to_string(kMaxK) + "]";
      call.k = static_cast<std::size_t>(k);
    } else if (key == "explain") {
      if (value != "0" && value != "1") return "explain must be 0 or 1";
      call.explain = value == "1";
    } else {
      return "unknown parameter: " + key;
    }
  } catch (const std::invalid_argument& e) {
    return std::string("malformed ") + key + ": " + e.what();
  }
  return {};
}

}  // namespace

ApiResponse error_response(int status, std::string_view message) {
  JsonWriter w;
  w.begin_object().key("error").value(message).end_object();
  return ApiResponse{status, std::string(kJson), std::move(w).take()};
}

ApiResponse execute_root() {
  JsonWriter w;
  w.begin_object()
      .key("service")
      .value("dosmeter query server")
      .key("endpoints")
      .begin_array()
      .value("/healthz")
      .value("/metrics")
      .value("/query")
      .end_array()
      .end_object();
  return ApiResponse{200, std::string(kJson), std::move(w).take()};
}

ApiResponse execute_health(const query::Snapshot* snapshot) {
  if (snapshot == nullptr) return error_response(503, "no snapshot published");
  JsonWriter w;
  w.begin_object()
      .key("status")
      .value("ok")
      .key("snapshot_version")
      .value(snapshot->version())
      .key("events")
      .value(static_cast<std::uint64_t>(snapshot->size()))
      .key("segments")
      .value(static_cast<std::uint64_t>(snapshot->num_segments()))
      .end_object();
  return ApiResponse{200, std::string(kJson), std::move(w).take()};
}

ApiCall parse_query_request(const HttpRequest& request,
                            const StudyWindow& window) {
  ApiCall call;

  // POST bodies carry form-encoded parameters appended after URL ones.
  std::vector<std::pair<std::string, std::string>> params = request.params;
  if (request.method == "POST" && !request.body.empty() &&
      !parse_query_string(request.body, params))
    return bad_request("malformed form body");

  // A key given twice (URL and body combined) is rejected rather than
  // last-wins: silently dropping the first value would let two different
  // request strings canonicalize to the same cache key.
  std::vector<std::string_view> seen;
  seen.reserve(params.size());

  // Time parameters resolve to one half-open [begin, end) range. Days and
  // raw seconds are mutually exclusive.
  std::optional<CivilDate> from;
  std::optional<CivilDate> to;
  std::optional<double> t0;
  std::optional<double> t1;
  for (const auto& [key, value] : params) {
    for (const std::string_view prior : seen)
      if (prior == key) return bad_request("duplicate parameter: " + key);
    seen.push_back(key);
    try {
      if (key == "from") {
        from = parse_civil(value);
      } else if (key == "to") {
        to = parse_civil(value);
      } else if (key == "t0") {
        double t = 0.0;
        if (!parse_f64(value, t)) return bad_request("malformed t0");
        t0 = t;
      } else if (key == "t1") {
        double t = 0.0;
        if (!parse_f64(value, t)) return bad_request("malformed t1");
        t1 = t;
      } else {
        const std::string error = apply_param(key, value, call);
        if (!error.empty()) return bad_request(error);
      }
    } catch (const std::invalid_argument& e) {
      return bad_request(std::string("malformed ") + key + ": " + e.what());
    }
  }
  if ((from || to) && (t0 || t1))
    return bad_request("from/to and t0/t1 are mutually exclusive");
  if (from || to) {
    const double begin = from ? static_cast<double>(unix_from_civil(*from))
                              : static_cast<double>(window.start_time());
    const double end =
        to ? static_cast<double>(unix_from_civil(*to) + kSecondsPerDay)
           : static_cast<double>(window.end_time());
    call.query.between(begin, end);
  } else if (t0 || t1) {
    const double begin = t0 ? *t0 : static_cast<double>(window.start_time());
    const double end = t1 ? *t1 : static_cast<double>(window.end_time());
    call.query.between(begin, end);
  }

  call.canonical = canonicalize(call);
  return call;
}

ApiResponse execute_query(const query::Snapshot& snapshot, const ApiCall& call,
                          const query::ExecBudget& budget) {
  const query::Query& q = call.query;
  try {
    JsonWriter w;
    w.begin_object()
        .key("snapshot_version")
        .value(snapshot.version())
        .key("agg")
        .value(call.agg)
        .key("query")
        .value(query::to_string(q));
    if (call.explain) w.key("plan").value(query::to_string(snapshot.plan(q)));

    if (call.agg == "summary") {
      w.key("events").value(snapshot.count(q, budget));
      w.key("unique_targets").value(snapshot.unique_targets(q, budget));
    } else if (call.agg == "daily") {
      const auto daily = snapshot.daily_attacks(q, budget);
      w.key("days").begin_array();
      for (int d = 0; d < daily.num_days(); ++d) {
        if (daily.at(d) == 0.0) continue;
        w.begin_object()
            .key("date")
            .value(to_string(snapshot.window().date_of_day(d)))
            .key("attacks")
            .value(static_cast<std::uint64_t>(daily.at(d)))
            .end_object();
      }
      w.end_array();
    } else if (call.agg == "top-targets") {
      w.key("rows").begin_array();
      for (const auto& row : snapshot.top_targets(q, call.k, budget)) {
        w.begin_object()
            .key("target")
            .value(row.target.to_string())
            .key("events")
            .value(row.events)
            .end_object();
      }
      w.end_array();
    } else if (call.agg == "top-asns") {
      w.key("rows").begin_array();
      for (const auto& row : snapshot.top_asns(q, call.k, budget)) {
        w.begin_object()
            .key("asn")
            .value(static_cast<std::uint64_t>(row.asn))
            .key("targets")
            .value(row.targets)
            .key("events")
            .value(row.events)
            .end_object();
      }
      w.end_array();
    } else if (call.agg == "top-countries") {
      w.key("rows").begin_array();
      for (const auto& row : snapshot.top_countries(q, call.k, budget)) {
        w.begin_object()
            .key("country")
            .value(row.country.to_string())
            .key("targets")
            .value(row.targets)
            .key("share")
            .value(row.share)
            .end_object();
      }
      w.end_array();
    } else {  // events
      const auto rows = snapshot.match_rows(q, budget);
      w.key("total_rows").value(static_cast<std::uint64_t>(rows.size()));
      w.key("rows").begin_array();
      for (std::size_t i = 0; i < rows.size() && i < call.k; ++i) {
        const std::uint32_t row = rows[i];
        w.begin_object()
            .key("start")
            .value(snapshot.start_at(row))
            .key("target")
            .value(snapshot.target_at(row).to_string())
            .key("source")
            .value(snapshot.source_at(row) == core::EventSource::kTelescope
                       ? "telescope"
                       : "honeypot")
            .key("intensity")
            .value(snapshot.intensity_at(row))
            .key("port")
            .value(static_cast<std::uint64_t>(snapshot.top_port_at(row)))
            .end_object();
      }
      w.end_array();
    }
    w.end_object();
    return ApiResponse{200, std::string(kJson), std::move(w).take()};
  } catch (const query::BudgetExceeded& e) {
    Metrics& metrics = Metrics::get();
    if (e.kind() == query::BudgetExceeded::Kind::kRows)
      metrics.budget_rows_rejected.inc();
    else
      metrics.budget_time_rejected.inc();
    return error_response(422, e.what());
  } catch (const std::exception& e) {
    return error_response(500, e.what());
  }
}

void install_api_routes(Router& router) {
  const auto no_parse = [](const HttpRequest&, const RequestContext&) {
    return ApiCall{};
  };
  router.add("GET", "/", no_parse,
             [](const ApiCall&, const RequestContext&) {
               return execute_root();
             });
  router.add("GET", "/healthz", no_parse,
             [](const ApiCall&, const RequestContext& ctx) {
               return execute_health(ctx.snapshot.get());
             });
  const auto parse_query = [](const HttpRequest& request,
                              const RequestContext& ctx) {
    return parse_query_request(request, ctx.window);
  };
  const auto exec_query = [](const ApiCall& call, const RequestContext& ctx) {
    if (ctx.snapshot == nullptr)
      return error_response(503, "no snapshot published");
    return execute_query(*ctx.snapshot, call, ctx.budget);
  };
  router.add("GET", "/query", parse_query, exec_query, /*cacheable=*/true);
  router.add("POST", "/query", parse_query, exec_query, /*cacheable=*/true);
}

}  // namespace dosm::serve
