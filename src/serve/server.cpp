#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/clock.h"
#include "obs/export.h"
#include "serve/api.h"
#include "serve/metrics.h"
#include "serve/subscribe_api.h"

namespace dosm::serve {
namespace {

/// The canned saturation response the acceptor writes without touching a
/// worker. Fixed bytes: admission control must not allocate per drop.
constexpr std::string_view kRejectResponse =
    "HTTP/1.1 429 Too Many Requests\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 21\r\n"
    "Retry-After: 1\r\n"
    "Connection: close\r\n"
    "\r\n"
    "{\"error\":\"saturated\"}";

void set_timeout(int fd, int which, long seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
}

/// Writes all of `data`, tolerating short writes. False on error.
bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Closes a connection that may still hold unread pipelined bytes. A plain
/// close() there makes the kernel answer the unread data with RST, and RST
/// can wipe the peer's receive queue — the response just written (e.g. the
/// canned 429) evaporates before the client reads it. Lingering close
/// instead: stop sending (the peer sees our FIN after the response), drain
/// whatever is in flight, then release the fd only once the peer closed or
/// the bound hit. The drain is bounded tightly — a 100 ms receive timeout
/// and a spin cap — because the acceptor calls this inline on the reject
/// path: a hostile client that never closes must not stall admission.
void close_lingering(int fd) {
  ::shutdown(fd, SHUT_WR);
  timeval tv{};
  tv.tv_usec = 100000;  // 100 ms
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char sink[1024];
  for (int spins = 0; spins < 64; ++spins) {
    const ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
    if (n == 0) break;  // peer consumed the response and closed cleanly
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // timeout or error: we waited long enough
    }
  }
  ::close(fd);
}

}  // namespace

BoundedFdQueue::BoundedFdQueue(std::size_t capacity) : capacity_(capacity) {}

bool BoundedFdQueue::try_push(int fd) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || fds_.size() >= capacity_) return false;
    fds_.push_back(fd);
  }
  ready_.notify_one();
  return true;
}

int BoundedFdQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return closed_ || !fds_.empty(); });
  if (fds_.empty()) return -1;
  const int fd = fds_.front();
  fds_.pop_front();
  return fd;
}

void BoundedFdQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t BoundedFdQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return fds_.size();
}

Server::Server(const ServerConfig& config, query::QueryEngine& engine,
               subscribe::Dispatcher* dispatcher)
    : config_(config),
      engine_(engine),
      dispatcher_(dispatcher),
      cache_(config.cache_bytes),
      queue_(config.queue_capacity) {
  if (config_.workers == 0) config_.workers = 1;
  install_api_routes(router_);
  install_subscribe_routes(router_);
  // /metrics lives here rather than in install_api_routes: it reads the
  // process-wide obs registry, which is the server's dependency, not the
  // query API's.
  router_.add("GET", "/metrics",
              [](const HttpRequest&, const RequestContext&) {
                return ApiCall{};
              },
              [](const ApiCall&, const RequestContext&) {
                return ApiResponse{
                    200, "text/plain; version=0.0.4",
                    obs::to_prometheus(obs::MetricsRegistry::global()
                                           .snapshot())};
              });
  open_listen_socket();
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void Server::open_listen_socket() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    throw std::runtime_error("bad bind address: " + config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("cannot bind " + config_.bind_address + ":" +
                             std::to_string(config_.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    ::close(listen_fd_);
    throw std::runtime_error("getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
}

Server::~Server() { stop(); }

void Server::stop() {
  if (stopping_.exchange(true)) return;
  // shutdown() unblocks the acceptor's accept(); close() alone does not on
  // all platforms.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  queue_.close();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  // Drain anything still queued after the workers exited.
  for (int fd = queue_.pop(); fd >= 0; fd = queue_.pop()) ::close(fd);
}

void Server::accept_loop() {
  Metrics& metrics = Metrics::get();
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down
    }
    metrics.connections_accepted.inc();
    set_timeout(fd, SO_RCVTIMEO, 5);
    set_timeout(fd, SO_SNDTIMEO, 5);
    if (queue_.try_push(fd)) {
      metrics.admission_enqueued.inc();
      metrics.queue_depth.set(static_cast<std::int64_t>(queue_.depth()));
    } else {
      // Saturated: answer immediately so the client backs off instead of
      // timing out. The client may have pipelined requests we never read;
      // the lingering close keeps the kernel from RST-ing the 429 away.
      metrics.admission_rejected.inc();
      send_all(fd, kRejectResponse);
      close_lingering(fd);
      metrics.connections_closed.inc();
    }
  }
}

void Server::worker_loop() {
  Metrics& metrics = Metrics::get();
  for (int fd = queue_.pop(); fd >= 0; fd = queue_.pop()) {
    metrics.queue_depth.set(static_cast<std::int64_t>(queue_.depth()));
    serve_connection(fd);
    // serve_connection can return with pipelined bytes still unread (a
    // Connection: close response, a malformed request) — same RST hazard
    // as the admission reject path.
    close_lingering(fd);
    metrics.connections_closed.inc();
  }
}

void Server::serve_connection(int fd) {
  Metrics& metrics = Metrics::get();
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_relaxed)) {
    const ParseResult parsed = parse_request(buffer, config_.http);
    if (parsed.status == ParseStatus::kNeedMore) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return;  // peer closed, timed out, or errored
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (parsed.status != ParseStatus::kOk) {
      metrics.bad_requests.inc();
      metrics.responses_client_error.inc();
      const int status = parsed.status == ParseStatus::kTooLarge ? 431 : 400;
      const ApiResponse body = error_response(status, parsed.error);
      send_all(fd, render_response(body.status, body.content_type, body.body,
                                   /*keep_alive=*/false));
      return;  // malformed framing: the byte stream is unrecoverable
    }
    buffer.erase(0, parsed.consumed);
    metrics.requests.inc();
    const obs::ScopedTimer timer(metrics.request_seconds);
    const std::string response =
        handle(parsed.request, parsed.request.keep_alive);
    if (!send_all(fd, response) || !parsed.request.keep_alive) return;
  }
}

std::string Server::handle(const HttpRequest& request, bool keep_alive) {
  Metrics& metrics = Metrics::get();
  const std::shared_ptr<const query::Snapshot> snapshot = engine_.snapshot();

  // A new snapshot version invalidates every older cache entry. Detection
  // is racy-but-safe: the worst case is a stale entry surviving until the
  // next request observes the version, and get() can never return it anyway
  // because the version is part of the key.
  if (snapshot != nullptr) {
    const std::uint64_t version = snapshot->version();
    std::uint64_t seen = last_seen_version_.load(std::memory_order_relaxed);
    if (version != seen &&
        last_seen_version_.compare_exchange_strong(
            seen, version, std::memory_order_relaxed))
      cache_.purge_stale(version);
  }

  RequestContext context;
  context.snapshot = snapshot;
  context.window = snapshot != nullptr ? snapshot->window() : StudyWindow{};
  context.budget.max_rows = config_.max_rows;
  if (config_.max_millis != 0)
    context.budget.deadline_ns =
        obs::monotonic_now_ns() + config_.max_millis * 1000000ull;
  context.dispatcher = dispatcher_;

  const Router::Prepared prepared = router_.prepare(request, context);
  ApiResponse response;
  bool store = false;
  std::string cache_key;
  if (prepared.route == nullptr) {
    // Routing or parsing already produced the final 404/405/400.
    response = prepared.response;
  } else if (prepared.route->cacheable && snapshot != nullptr &&
             !prepared.call.canonical.empty()) {
    cache_key = ResultCache::make_key(snapshot->version(),
                                      prepared.call.query.cache_key(),
                                      prepared.call.canonical);
    if (const std::shared_ptr<const CachedResponse> hit =
            cache_.get(cache_key)) {
      response = ApiResponse{hit->status, hit->content_type, hit->body};
    } else {
      response = router_.execute(prepared, context);
      store = response.status == 200;
    }
  } else {
    response = router_.execute(prepared, context);
  }

  if (response.status < 400)
    metrics.responses_ok.inc();
  else if (response.status < 500)
    metrics.responses_client_error.inc();
  else
    metrics.responses_server_error.inc();

  if (store && !cache_key.empty() && snapshot != nullptr) {
    auto entry = std::make_shared<CachedResponse>();
    entry->status = response.status;
    entry->content_type = response.content_type;
    entry->body = response.body;
    entry->snapshot_version = snapshot->version();
    cache_.put(cache_key, std::move(entry));
  }

  return render_response(response.status, response.content_type, response.body,
                         keep_alive);
}

}  // namespace dosm::serve
