// The JSON query API: URL/body → ApiCall mapping and deterministic
// execution over a Snapshot.
//
// Endpoints (registered on the Router by install_api_routes /
// install_subscribe_routes / the server's own /metrics entry):
//
//   GET  /            JSON index of endpoints
//   GET  /healthz     {"status":"ok","snapshot_version":N,"events":M}
//   GET  /metrics     Prometheus text of the process-wide obs registry
//   GET  /query       the query API (also POST with a form/query-string
//                     body). Parameters (all optional, ANDed):
//                       from=YYYY-MM-DD  to=YYYY-MM-DD   day-granular window
//                       t0=UNIX  t1=UNIX                 second-granular
//                       source=telescope|honeypot|combined
//                       prefix=A.B.C.D/L   asn=N   country=CC   port=N
//                       min_intensity=X
//                       agg=summary|daily|top-targets|top-asns|top-countries
//                           |events (default summary)
//                       k=N (top-k / listing rows, default 10, capped)
//                       explain=1 (include the planner's access path)
//   POST   /subscribe   register a predicate          (serve/subscribe_api.h)
//   DELETE /subscribe   remove a subscription by id
//   GET    /watch       cursor-keyed long-poll delta fetch
//
// A parameter key given more than once is a 400 ("duplicate parameter:
// <key>") — accepting last-wins would let two DIFFERENT request strings
// canonicalize identically and alias one cache entry.
//
// Parsing is split from execution so the server can consult the result
// cache in between: the route's parse fn produces the canonical request
// (the cache key material), its exec fn produces the response body. Both
// are pure functions of their inputs — the determinism contract
// (byte-identical responses for the same query + snapshot version, any
// worker count, cache on or off) falls out of that purity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "query/budget.h"
#include "query/query.h"
#include "query/snapshot.h"
#include "serve/http.h"
#include "subscribe/subscription.h"

namespace dosm::subscribe {
class Dispatcher;
}  // namespace dosm::subscribe

namespace dosm::serve {

class Router;

/// Everything a route's parse/exec may depend on beyond the request
/// itself; assembled per request by the server. Snapshot may be null
/// before the first publish.
struct RequestContext {
  std::shared_ptr<const query::Snapshot> snapshot;
  StudyWindow window{};            // snapshot's window, or defaults
  query::ExecBudget budget{};      // per-query budgets from ServerConfig
  subscribe::Dispatcher* dispatcher = nullptr;  // null = no subscriptions
};

/// The parsed form of one request — the route's parse output and exec
/// input. Query routes fill the query/agg/k/explain/canonical fields;
/// subscription routes fill predicate/id/cursor/max_items/wait_ms.
struct ApiCall {
  query::Query query;
  std::string agg = "summary";
  std::size_t k = 10;
  bool explain = false;

  subscribe::Predicate predicate;
  std::uint64_t id = 0;
  std::uint64_t cursor = 0;
  std::size_t max_items = 100;
  int wait_ms = 0;

  std::string error;      // non-empty -> the router answers 400 with it
  std::string canonical;  // cache-key material; empty on uncacheable calls
};

struct ApiResponse {
  int status = 200;
  std::string content_type;
  std::string body;
};

/// Maximum rows a top-k / events listing may request.
inline constexpr std::size_t kMaxK = 100000;

/// Parses a /query request (GET params, plus form body on POST). Time
/// filters resolve against `window`, so the canonical form is fully
/// resolved before caching. Never throws; errors land in ApiCall::error.
ApiCall parse_query_request(const HttpRequest& request,
                            const StudyWindow& window);

/// Executes a parsed /query call against a snapshot. BudgetExceeded maps to
/// a deterministic 422 error body; anything else to 500. Never throws.
ApiResponse execute_query(const query::Snapshot& snapshot, const ApiCall& call,
                          const query::ExecBudget& budget);

/// Non-query endpoints (root/health). `snapshot` may be null (health then
/// reports "no snapshot" with a 503).
ApiResponse execute_root();
ApiResponse execute_health(const query::Snapshot* snapshot);

/// Renders a JSON error body: {"error":"..."}.
ApiResponse error_response(int status, std::string_view message);

/// Registers /, /healthz, and /query (GET + POST, cacheable).
void install_api_routes(Router& router);

}  // namespace dosm::serve
