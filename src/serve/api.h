// The JSON query API: URL/body → Query mapping and deterministic
// execution over a Snapshot.
//
// Endpoints (GET; /query also accepts POST with a form/query-string body):
//
//   /            JSON index of endpoints
//   /healthz     {"status":"ok","snapshot_version":N,"events":M}
//   /metrics     Prometheus text of the process-wide obs registry
//   /query       the query API. Parameters (all optional, ANDed):
//                  from=YYYY-MM-DD  to=YYYY-MM-DD   day-granular window
//                  t0=UNIX  t1=UNIX                 second-granular window
//                  source=telescope|honeypot|combined
//                  prefix=A.B.C.D/L   asn=N   country=CC   port=N
//                  min_intensity=X
//                  agg=summary|daily|top-targets|top-asns|top-countries
//                      |events (default summary)
//                  k=N (top-k / listing rows, default 10, capped)
//                  explain=1 (include the planner's access path)
//
// Parsing is split from execution so the server can consult the result
// cache in between: parse_api_call() produces the canonical request (the
// cache key material), execute_query() produces the response body. Both are
// pure functions of their inputs — the determinism contract (byte-identical
// responses for the same query + snapshot version, any worker count, cache
// on or off) falls out of that purity.
#pragma once

#include <cstdint>
#include <string>

#include "query/budget.h"
#include "query/query.h"
#include "query/snapshot.h"
#include "serve/http.h"

namespace dosm::serve {

enum class Endpoint : std::uint8_t {
  kRoot,
  kHealth,
  kMetrics,
  kQuery,
  kNotFound,
  kMethodNotAllowed,
  kBadRequest,
};

struct ApiCall {
  Endpoint endpoint = Endpoint::kNotFound;
  query::Query query;
  std::string agg = "summary";
  std::size_t k = 10;
  bool explain = false;
  std::string error;      // set for kBadRequest
  std::string canonical;  // canonical request string, set for kQuery
};

struct ApiResponse {
  int status = 200;
  std::string content_type;
  std::string body;
};

/// Maximum rows a top-k / events listing may request.
inline constexpr std::size_t kMaxK = 100000;

/// Routes + parses one HTTP request. Time filters resolve against
/// `window` (the snapshot's study window), so the canonical form is fully
/// resolved before caching. Never throws.
ApiCall parse_api_call(const HttpRequest& request, const StudyWindow& window);

/// Executes a parsed kQuery call against a snapshot. BudgetExceeded maps to
/// a deterministic 422 error body; anything else to 500. Never throws.
ApiResponse execute_query(const query::Snapshot& snapshot, const ApiCall& call,
                          const query::ExecBudget& budget);

/// Non-query endpoints (root/health). `snapshot` may be null (health then
/// reports "no snapshot" with a 503).
ApiResponse execute_root();
ApiResponse execute_health(const query::Snapshot* snapshot);

/// Renders a JSON error body: {"error":"..."}.
ApiResponse error_response(int status, std::string_view message);

}  // namespace dosm::serve
