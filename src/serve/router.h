// Declarative route registry for the query server.
//
// Endpoints register as (method, path, parse, exec) entries instead of
// growing the old Endpoint enum + switch in server.cpp: parse maps the
// HTTP request to an ApiCall (pure; errors land in ApiCall::error), exec
// maps the ApiCall to an ApiResponse given the per-request context. The
// split mirrors the old parse_api_call/execute_query contract — the server
// consults the result cache between the two for routes marked cacheable —
// so the byte-determinism contract (identical bytes for the same request +
// snapshot version at any worker count) carries over route-by-route, and
// new endpoints (e.g. /subscribe, /watch) land as registrations, not
// switch growth.
//
// Routing semantics, pinned byte-for-byte against the pre-router server by
// tests/serve_golden_test.cpp: an empty path normalizes to "/"; an unknown
// path answers 404 {"error":"no such endpoint"}; a known path with an
// unregistered method answers 405 {"error":"method not allowed"}; a parse
// error answers 400 {"error":"<message>"}.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "serve/api.h"
#include "serve/http.h"

namespace dosm::serve {

class Router {
 public:
  /// Request → call. Pure; reports problems via ApiCall::error.
  using ParseFn =
      std::function<ApiCall(const HttpRequest&, const RequestContext&)>;
  /// Call → response. Never throws (maps failures to error bodies).
  using ExecFn =
      std::function<ApiResponse(const ApiCall&, const RequestContext&)>;

  struct Route {
    std::string method;
    std::string path;
    ParseFn parse;
    ExecFn exec;
    /// Cacheable routes go through the snapshot-keyed result cache when the
    /// parse produced a canonical string (the cache-key material).
    bool cacheable = false;
  };

  /// Registers one endpoint. Duplicate (method, path) registrations throw
  /// std::invalid_argument — a route table with shadowed entries is a bug.
  Router& add(std::string method, std::string path, ParseFn parse,
              ExecFn exec, bool cacheable = false);

  /// The outcome of routing + parsing one request. When `route` is null,
  /// `response` is final (404 / 405 / 400); otherwise `call` is the parsed
  /// call ready for execute() — with the cache consulted in between for
  /// cacheable routes.
  struct Prepared {
    const Route* route = nullptr;
    ApiCall call;
    ApiResponse response;
  };

  Prepared prepare(const HttpRequest& request,
                   const RequestContext& context) const;

  ApiResponse execute(const Prepared& prepared,
                      const RequestContext& context) const {
    return prepared.route->exec(prepared.call, context);
  }

  /// Registered (method, path) pairs in registration order (for tests).
  std::vector<std::pair<std::string, std::string>> routes() const;

 private:
  std::vector<Route> routes_;
};

}  // namespace dosm::serve
