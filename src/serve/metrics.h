// serve.* instrumentation: every counter/gauge/histogram the query server
// reports through the process-wide obs registry, registered once and cached
// as references (the obs contract: registration may lock, updates never
// do). Exposed as a header so the exporter fixtures (tests/obs_test.cpp)
// and the bench can assert the real metric names.
#pragma once

#include "obs/metrics.h"
#include "obs/timer.h"

namespace dosm::serve {

struct Metrics {
  // Connection / admission lifecycle.
  obs::Counter& connections_accepted;
  obs::Counter& connections_closed;
  obs::Counter& admission_enqueued;
  obs::Counter& admission_rejected;  // 429s from a full accept queue
  obs::Gauge& queue_depth;

  // Request outcomes.
  obs::Counter& requests;
  obs::Counter& responses_ok;            // 2xx
  obs::Counter& responses_client_error;  // 4xx
  obs::Counter& responses_server_error;  // 5xx
  obs::Counter& bad_requests;            // parse failures (400/431/413)
  obs::Counter& budget_rows_rejected;
  obs::Counter& budget_time_rejected;

  // Result cache.
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& cache_evictions;
  obs::Counter& cache_stale_dropped;  // purged on snapshot-version change
  obs::Gauge& cache_bytes;
  obs::Gauge& cache_entries;

  // Latency.
  obs::Histogram& request_seconds;

  static Metrics& get();
};

}  // namespace dosm::serve
