// Minimal HTTP/1.1 request parsing and response rendering for the query
// server.
//
// This is deliberately a SUBSET of HTTP/1.1 — exactly what a JSON query API
// and its load generator need, hardened against hostile input rather than
// grown toward generality:
//
//   * GET/POST/HEAD request line, percent-decoded path + query parameters
//   * headers (names case-folded), Content-Length bodies, keep-alive
//   * hard limits on every dimension (request-line bytes, header bytes,
//     header count, body bytes) checked BEFORE any allocation is sized by
//     attacker-controlled numbers — a hostile Content-Length of 4 GiB is
//     rejected, never reserved
//   * chunked transfer encoding is rejected (501), not implemented badly
//
// The parser is incremental: feed it the bytes received so far; it answers
// kNeedMore until a full request (head + body) is present, then reports how
// many bytes it consumed so pipelined keep-alive requests parse one at a
// time. It never throws on malformed input — hostile bytes are data, not
// exceptions — and the serialize_fuzz-style property test flips/truncates
// real requests to prove it (tests/serve_test.cpp, under ASan in CI).
//
// Responses carry no Date header and no server identity: response bytes are
// a pure function of (request, snapshot), which the serve determinism
// contract relies on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dosm::serve {

/// Hard ceilings applied while parsing. Defaults suit dashboard queries;
/// the server exposes them through ServerConfig.
struct HttpLimits {
  std::size_t max_request_line = 4096;   // method + target + version
  std::size_t max_header_bytes = 16384;  // whole head, request line included
  std::size_t max_headers = 64;
  std::size_t max_body_bytes = 1 << 20;
};

enum class ParseStatus : std::uint8_t {
  kOk,         // one complete request parsed; `consumed` bytes eaten
  kNeedMore,   // prefix of a valid request; read more bytes
  kBadRequest, // malformed — respond 400 and close
  kTooLarge,   // exceeds an HttpLimits ceiling — respond 431/413 and close
};

struct HttpRequest {
  std::string method;   // upper-case: GET / POST / HEAD
  std::string target;   // raw request target, e.g. "/query?agg=summary"
  std::string path;     // percent-decoded path, e.g. "/query"
  std::vector<std::pair<std::string, std::string>> params;   // decoded, in order
  std::vector<std::pair<std::string, std::string>> headers;  // names lowercased
  std::string body;
  bool keep_alive = true;  // HTTP/1.1 default, honoring Connection:

  /// First header value for a (lowercase) name, or nullptr.
  const std::string* header(std::string_view name) const;
  /// First query-parameter value for a name, or nullptr.
  const std::string* param(std::string_view name) const;
};

struct ParseResult {
  ParseStatus status = ParseStatus::kNeedMore;
  std::size_t consumed = 0;  // valid when status == kOk
  HttpRequest request;       // valid when status == kOk
  std::string error;         // human-readable, for kBadRequest / kTooLarge
};

/// Parses one request from the front of `data`. Never throws on malformed
/// input; never allocates proportionally to attacker-supplied sizes beyond
/// the limits.
ParseResult parse_request(std::string_view data, const HttpLimits& limits);

/// Parses an "a=1&b=2" query/form string into decoded pairs appended to
/// `params` (in input order). Returns false on a malformed percent escape.
bool parse_query_string(
    std::string_view text,
    std::vector<std::pair<std::string, std::string>>& params);

/// The standard reason phrase for the status codes the server emits.
std::string_view reason_phrase(int status);

/// Renders a full response (status line, Content-Type, Content-Length,
/// Connection, blank line, body). Deterministic: no Date, no Server.
std::string render_response(int status, std::string_view content_type,
                            std::string_view body, bool keep_alive);

}  // namespace dosm::serve
