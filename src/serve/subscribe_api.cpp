#include "serve/subscribe_api.h"

#include <charconv>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "serve/api.h"
#include "serve/json.h"
#include "serve/router.h"
#include "subscribe/dispatcher.h"

namespace dosm::serve {
namespace {

constexpr std::string_view kJson = "application/json";
constexpr int kMaxWaitMs = 10000;

bool parse_u64(const std::string& s, std::uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

ApiCall bad_request(std::string error) {
  ApiCall call;
  call.error = std::move(error);
  return call;
}

/// Collects URL + POST-body parameters with the same duplicate-key reject
/// the query endpoint applies. Returns an error message, or empty.
std::string collect_params(
    const HttpRequest& request,
    std::vector<std::pair<std::string, std::string>>& params) {
  params = request.params;
  if (request.method == "POST" && !request.body.empty() &&
      !parse_query_string(request.body, params))
    return "malformed form body";
  for (std::size_t i = 0; i < params.size(); ++i)
    for (std::size_t j = 0; j < i; ++j)
      if (params[j].first == params[i].first)
        return "duplicate parameter: " + params[i].first;
  return {};
}

ApiCall parse_subscribe(const HttpRequest& request, const RequestContext&) {
  ApiCall call;
  std::vector<std::pair<std::string, std::string>> params;
  if (std::string error = collect_params(request, params); !error.empty())
    return bad_request(std::move(error));
  for (const auto& [key, value] : params) {
    try {
      if (key == "prefix") {
        call.predicate.match_prefix(net::Prefix::parse(value));
      } else if (key == "asn") {
        std::uint64_t asn = 0;
        if (!parse_u64(value, asn) || asn > 0xffffffffull)
          return bad_request("malformed asn");
        call.predicate.match_asn(static_cast<meta::Asn>(asn));
      } else if (key == "country") {
        call.predicate.match_country(meta::CountryCode(value));
      } else if (key == "proto") {
        std::uint64_t proto = 0;
        if (!parse_u64(value, proto) || proto > 0xff)
          return bad_request("malformed proto");
        call.predicate.match_proto(static_cast<std::uint8_t>(proto));
      } else if (key == "kind") {
        const auto kind = core::parse_alert_kind(value);
        if (!kind) return bad_request("unknown kind: " + value);
        call.predicate.match_kind(*kind);
      } else {
        return bad_request("unknown parameter: " + key);
      }
    } catch (const std::invalid_argument& e) {
      return bad_request(std::string("malformed ") + key + ": " + e.what());
    }
  }
  return call;
}

ApiCall parse_unsubscribe(const HttpRequest& request, const RequestContext&) {
  ApiCall call;
  std::vector<std::pair<std::string, std::string>> params;
  if (std::string error = collect_params(request, params); !error.empty())
    return bad_request(std::move(error));
  bool have_id = false;
  for (const auto& [key, value] : params) {
    if (key != "id") return bad_request("unknown parameter: " + key);
    if (!parse_u64(value, call.id) || call.id == 0)
      return bad_request("malformed id");
    have_id = true;
  }
  if (!have_id) return bad_request("missing parameter: id");
  return call;
}

ApiCall parse_watch(const HttpRequest& request, const RequestContext&) {
  ApiCall call;
  std::vector<std::pair<std::string, std::string>> params;
  if (std::string error = collect_params(request, params); !error.empty())
    return bad_request(std::move(error));
  bool have_id = false;
  for (const auto& [key, value] : params) {
    if (key == "id") {
      if (!parse_u64(value, call.id) || call.id == 0)
        return bad_request("malformed id");
      have_id = true;
    } else if (key == "cursor") {
      if (!parse_u64(value, call.cursor)) return bad_request("malformed cursor");
    } else if (key == "max") {
      std::uint64_t max_items = 0;
      if (!parse_u64(value, max_items)) return bad_request("malformed max");
      call.max_items = static_cast<std::size_t>(max_items);
    } else if (key == "wait_ms") {
      std::uint64_t wait = 0;
      if (!parse_u64(value, wait)) return bad_request("malformed wait_ms");
      call.wait_ms = static_cast<int>(
          wait > static_cast<std::uint64_t>(kMaxWaitMs) ? kMaxWaitMs : wait);
    } else {
      return bad_request("unknown parameter: " + key);
    }
  }
  if (!have_id) return bad_request("missing parameter: id");
  return call;
}

void render_notification(JsonWriter& w,
                         const subscribe::Notification& notification) {
  const core::Alert& alert = notification.alert;
  w.begin_object()
      .key("seq")
      .value(notification.seq)
      .key("kind")
      .value(core::to_string(alert.kind))
      .key("coalesced")
      .value(static_cast<std::uint64_t>(notification.coalesced))
      .key("day")
      .value(static_cast<std::int64_t>(alert.day));
  if (alert.has_event) {
    const core::AttackEvent& event = alert.event;
    w.key("target")
        .value(event.target.to_string())
        .key("start")
        .value(event.start)
        .key("end")
        .value(event.end)
        .key("intensity")
        .value(event.intensity)
        .key("proto")
        .value(static_cast<std::uint64_t>(event.ip_proto))
        .key("port")
        .value(static_cast<std::uint64_t>(event.top_port))
        .key("asn")
        .value(static_cast<std::uint64_t>(alert.asn));
    if (alert.country.is_set()) w.key("country").value(alert.country.to_string());
  } else {
    w.key("value").value(alert.value).key("baseline").value(alert.baseline);
  }
  w.end_object();
}

ApiResponse exec_subscribe(const ApiCall& call, const RequestContext& ctx) {
  if (ctx.dispatcher == nullptr)
    return error_response(503, "subscriptions disabled");
  const subscribe::SubscriptionId id = ctx.dispatcher->subscribe(call.predicate);
  JsonWriter w;
  w.begin_object()
      .key("subscription")
      .value(static_cast<std::uint64_t>(id))
      .key("cursor")
      .value(std::uint64_t{0})
      .key("predicate")
      .value(call.predicate.to_string())
      .end_object();
  return ApiResponse{200, std::string(kJson), std::move(w).take()};
}

ApiResponse exec_unsubscribe(const ApiCall& call, const RequestContext& ctx) {
  if (ctx.dispatcher == nullptr)
    return error_response(503, "subscriptions disabled");
  if (!ctx.dispatcher->unsubscribe(call.id))
    return error_response(404, "no such subscription");
  JsonWriter w;
  w.begin_object()
      .key("removed")
      .value(true)
      .key("subscription")
      .value(call.id)
      .end_object();
  return ApiResponse{200, std::string(kJson), std::move(w).take()};
}

ApiResponse exec_watch(const ApiCall& call, const RequestContext& ctx) {
  if (ctx.dispatcher == nullptr)
    return error_response(503, "subscriptions disabled");
  const std::optional<subscribe::FetchResult> result =
      ctx.dispatcher->fetch(call.id, call.cursor, call.max_items, call.wait_ms);
  if (!result) return error_response(404, "no such subscription");
  JsonWriter w;
  w.begin_object()
      .key("subscription")
      .value(call.id)
      .key("cursor")
      .value(call.cursor)
      .key("next_cursor")
      .value(result->next_cursor)
      .key("dropped")
      .value(result->dropped)
      .key("pending")
      .value(result->pending)
      .key("notifications")
      .begin_array();
  for (const subscribe::Notification& notification : result->notifications)
    render_notification(w, notification);
  w.end_array().end_object();
  return ApiResponse{200, std::string(kJson), std::move(w).take()};
}

}  // namespace

void install_subscribe_routes(Router& router) {
  router.add("POST", "/subscribe", parse_subscribe, exec_subscribe);
  router.add("DELETE", "/subscribe", parse_unsubscribe, exec_unsubscribe);
  router.add("GET", "/watch", parse_watch, exec_watch);
}

}  // namespace dosm::serve
