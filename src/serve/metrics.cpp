#include "serve/metrics.h"

namespace dosm::serve {

Metrics& Metrics::get() {
  static Metrics metrics = [] {
    auto& reg = obs::MetricsRegistry::global();
    return Metrics{
        reg.counter("serve.connections.accepted",
                    "Client connections accepted by the listener"),
        reg.counter("serve.connections.closed",
                    "Client connections closed by the server"),
        reg.counter("serve.admission.enqueued",
                    "Connections admitted into the worker queue"),
        reg.counter("serve.admission.rejected",
                    "Connections rejected with 429 (accept queue full)"),
        reg.gauge("serve.queue.depth",
                  "Connections waiting for a worker right now"),
        reg.counter("serve.requests", "HTTP requests parsed and dispatched"),
        reg.counter("serve.responses.ok", "2xx responses sent"),
        reg.counter("serve.responses.client_error", "4xx responses sent"),
        reg.counter("serve.responses.server_error", "5xx responses sent"),
        reg.counter("serve.bad_requests",
                    "Requests rejected by the HTTP parser"),
        reg.counter("serve.budget.rows_rejected",
                    "Requests rejected by the per-query row budget"),
        reg.counter("serve.budget.time_rejected",
                    "Requests rejected by the per-query deadline"),
        reg.counter("serve.cache.hits", "Result-cache hits"),
        reg.counter("serve.cache.misses", "Result-cache misses"),
        reg.counter("serve.cache.evictions",
                    "Result-cache entries evicted by the byte budget"),
        reg.counter("serve.cache.stale_dropped",
                    "Result-cache entries dropped on snapshot publish"),
        reg.gauge("serve.cache.bytes", "Result-cache resident bytes"),
        reg.gauge("serve.cache.entries", "Result-cache resident entries"),
        reg.histogram("serve.request_seconds",
                      "End-to-end request handling latency",
                      obs::latency_buckets()),
    };
  }();
  return metrics;
}

}  // namespace dosm::serve
