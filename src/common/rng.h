// Deterministic pseudo-random number generation for all simulation layers.
//
// Every stochastic component in dosmeter takes an explicit seed so that
// identical configurations reproduce identical tables and figures. We avoid
// std::mt19937 plus std::*_distribution because their outputs are not
// guaranteed to be identical across standard-library implementations; the
// generators and samplers here are fully specified by this code.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/sanitize.h"

namespace dosm {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  DOSM_ALLOW_UNSIGNED_WRAP std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
/// All dosmeter randomness flows through this generator.
class Rng {
 public:
  /// Seeds the four state words via SplitMix64 so that any 64-bit seed,
  /// including 0, yields a valid (non-zero) state.
  explicit Rng(std::uint64_t seed = 0xd05a11e5ULL);

  /// Uniform random 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). Uses Lemire's multiply-shift rejection method to
  /// avoid modulo bias. bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Standard normal via Box-Muller (no state caching; deterministic).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal: exp(normal(mu, sigma)). Heavy-tailed durations/intensities.
  double lognormal(double mu, double sigma);

  /// Pareto (Type I) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Poisson-distributed count with the given mean. Uses inversion for small
  /// means and the PTRS transformed-rejection algorithm for large means.
  std::uint64_t poisson(double mean);

  /// Binomial(n, p) sample. Exact inversion for small n*p; normal
  /// approximation with continuity correction for large n (n > 10000) where
  /// the approximation error is far below our reproduction tolerances.
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Derive an independent child generator; `tag` separates named streams
  /// with the same parent (e.g. per-module sub-streams).
  Rng fork(std::string_view tag);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Walker alias table for O(1) sampling from a fixed discrete distribution.
/// Weights need not be normalized; they must be non-negative with a positive
/// sum.
class AliasTable {
 public:
  AliasTable() = default;
  explicit AliasTable(std::span<const double> weights);

  /// Number of categories.
  std::size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

  /// Sample a category index in [0, size()).
  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// Bounded Zipf(s) sampler over ranks {1..n} via rejection-inversion
/// (Hörmann & Derflinger). Used for hoster sizes, attack-target popularity,
/// and co-hosting group magnitudes.
class ZipfSampler {
 public:
  ZipfSampler() = default;
  ZipfSampler(std::uint64_t n, double s);

  /// Sample a rank in [1, n].
  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double h(double x) const;
  double h_inv(double x) const;

  std::uint64_t n_ = 1;
  double s_ = 1.0;
  double h_x1_ = 0.0;
  double h_n_ = 0.0;
  double threshold_ = 0.0;
};

/// Stable 64-bit FNV-1a hash of a byte string; used for stream derivation and
/// hash-based sharding (never for security).
std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace dosm
