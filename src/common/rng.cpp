#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dosm {

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

DOSM_ALLOW_UNSIGNED_WRAP std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // range == 0 means the full 64-bit span; next_below(0) returns 0, so
  // handle it by taking a raw draw.
  const std::uint64_t draw = (range == 0) ? next_u64() : next_below(range);
  return lo + static_cast<std::int64_t>(draw);
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; draw both uniforms every call so the stream is stateless.
  const double u1 = 1.0 - uniform();  // (0, 1]
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  const double u = 1.0 - uniform();  // (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion by multiplication of uniforms.
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::uint64_t k = 0;
    while (prod > limit) {
      ++k;
      prod *= uniform();
    }
    return k;
  }
  // For large means a normal approximation with continuity correction keeps
  // relative error well below the tolerances of our macroscopic analyses.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (n <= 64) {
    std::uint64_t k = 0;
    for (std::uint64_t i = 0; i < n; ++i) k += bernoulli(p) ? 1u : 0u;
    return k;
  }
  const double mean = static_cast<double>(n) * p;
  if (n > 10000 && mean > 30.0 && mean < static_cast<double>(n) - 30.0) {
    const double sd = std::sqrt(mean * (1.0 - p));
    const double draw = normal(mean, sd);
    if (draw <= 0.0) return 0;
    if (draw >= static_cast<double>(n)) return n;
    return static_cast<std::uint64_t>(draw + 0.5);
  }
  // BINV-style inversion (cumulative search); fine for moderate n*p.
  const double q = 1.0 - p;
  const double s = p / q;
  double f = std::pow(q, static_cast<double>(n));
  double u = uniform();
  std::uint64_t k = 0;
  while (u > f && k < n) {
    u -= f;
    ++k;
    f *= s * static_cast<double>(n - k + 1) / static_cast<double>(k);
  }
  return k;
}

Rng Rng::fork(std::string_view tag) {
  const std::uint64_t mix = next_u64() ^ fnv1a64(tag);
  return Rng(mix);
}

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w))
      throw std::invalid_argument("AliasTable: negative or non-finite weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("AliasTable: zero total weight");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasTable::sample(Rng& rng) const {
  const std::size_t column = rng.next_below(prob_.size());
  return rng.uniform() < prob_[column] ? column
                                       : static_cast<std::size_t>(alias_[column]);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  if (s <= 0.0) throw std::invalid_argument("ZipfSampler: s must be > 0");
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - h_inv(h(2.5) - std::pow(2.0, -s));
}

double ZipfSampler::h(double x) const {
  // H(x) = integral of x^-s; special-cased at s == 1 (log).
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::h_inv(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  if (n_ == 1) return 1;
  // Rejection-inversion sampling (Hörmann & Derflinger 1996).
  for (;;) {
    const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
    const double x = h_inv(u);
    const auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) {
      if (k + 1 <= n_) return 1;
      continue;
    }
    if (k > n_) continue;
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_) return k;
    if (u >= h(kd + 0.5) - std::pow(kd, -s_)) return k;
  }
}

DOSM_ALLOW_UNSIGNED_WRAP std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace dosm
