#include "common/time.h"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace dosm {

std::int64_t days_from_civil(CivilDate d) {
  // Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  auto y = static_cast<std::int64_t>(d.year);
  const unsigned m = d.month;
  const unsigned dd = d.day;
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m > 2 ? m - 3 : m + 9) + 2) / 5 + dd - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;       // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate civil_from_days(std::int64_t days) {
  days += 719468;
  const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const auto doe = static_cast<unsigned>(days - era * 146097);      // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;        // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);     // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                          // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                  // [1, 31]
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;                     // [1, 12]
  return CivilDate{static_cast<int>(y + (m <= 2)), m, d};
}

UnixSeconds unix_from_civil(CivilDate d) {
  return days_from_civil(d) * kSecondsPerDay;
}

CivilDate civil_from_unix(UnixSeconds t) { return civil_from_days(day_index(t)); }

std::int64_t day_index(UnixSeconds t) {
  return t >= 0 ? t / kSecondsPerDay : (t - kSecondsPerDay + 1) / kSecondsPerDay;
}

std::string to_string(CivilDate d) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", d.year, d.month, d.day);
  return buf;
}

CivilDate parse_civil(const std::string& s) {
  int y = 0;
  unsigned m = 0, d = 0;
  const char* const end = s.data() + s.size();
  const auto ry = std::from_chars(s.data(), end, y);
  bool ok = ry.ec == std::errc{} && ry.ptr != end && *ry.ptr == '-';
  std::from_chars_result rm{end, std::errc{}};
  if (ok) {
    rm = std::from_chars(ry.ptr + 1, end, m);
    ok = rm.ec == std::errc{} && rm.ptr != end && *rm.ptr == '-';
  }
  if (ok) {
    const auto rd = std::from_chars(rm.ptr + 1, end, d);
    ok = rd.ec == std::errc{} && rd.ptr == end;
  }
  if (!ok || m < 1 || m > 12 || d < 1 || d > 31) {
    throw std::invalid_argument("parse_civil: malformed date: " + s);
  }
  return CivilDate{y, m, d};
}

std::string format_duration(double seconds) {
  char buf[48];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.0fs", seconds);
  } else if (seconds < 3600.0) {
    const int m = static_cast<int>(seconds) / 60;
    const int s = static_cast<int>(seconds) % 60;
    if (s == 0)
      std::snprintf(buf, sizeof(buf), "%dm", m);
    else
      std::snprintf(buf, sizeof(buf), "%dm%02ds", m, s);
  } else {
    const int h = static_cast<int>(seconds) / 3600;
    const int m = (static_cast<int>(seconds) % 3600) / 60;
    if (m == 0)
      std::snprintf(buf, sizeof(buf), "%dh", h);
    else
      std::snprintf(buf, sizeof(buf), "%dh%02dm", h, m);
  }
  return buf;
}

}  // namespace dosm
