#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dosm {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> values)
    : values_(std::move(values)) {}

EmpiricalDistribution::EmpiricalDistribution(const EmpiricalDistribution& other) {
  const std::lock_guard<std::mutex> lock(other.sort_mutex_);
  values_ = other.values_;
  sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
}

EmpiricalDistribution::EmpiricalDistribution(
    EmpiricalDistribution&& other) noexcept
    : values_(std::move(other.values_)),
      sorted_(other.sorted_.load(std::memory_order_relaxed)) {
  other.values_.clear();
  other.sorted_.store(false, std::memory_order_relaxed);
}

EmpiricalDistribution& EmpiricalDistribution::operator=(
    const EmpiricalDistribution& other) {
  if (this == &other) return *this;
  const std::lock_guard<std::mutex> lock(other.sort_mutex_);
  values_ = other.values_;
  sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  return *this;
}

EmpiricalDistribution& EmpiricalDistribution::operator=(
    EmpiricalDistribution&& other) noexcept {
  if (this == &other) return *this;
  values_ = std::move(other.values_);
  sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  other.values_.clear();
  other.sorted_.store(false, std::memory_order_relaxed);
  return *this;
}

void EmpiricalDistribution::add(double x) {
  values_.push_back(x);
  sorted_.store(false, std::memory_order_relaxed);
}

double EmpiricalDistribution::mean() const {
  if (values_.empty()) return 0.0;
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double EmpiricalDistribution::min() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.front();
}

double EmpiricalDistribution::max() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.back();
}

double EmpiricalDistribution::percentile(double p) const {
  if (values_.empty())
    throw std::logic_error("EmpiricalDistribution::percentile on empty sample");
  ensure_sorted();
  if (p <= 0.0) return values_.front();
  if (p >= 100.0) return values_.back();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

double EmpiricalDistribution::cdf(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

std::span<const double> EmpiricalDistribution::sorted() const {
  ensure_sorted();
  return values_;
}

void EmpiricalDistribution::ensure_sorted() const {
  if (sorted_.load(std::memory_order_acquire)) return;
  const std::lock_guard<std::mutex> lock(sort_mutex_);
  if (sorted_.load(std::memory_order_relaxed)) return;
  std::sort(values_.begin(), values_.end());
  sorted_.store(true, std::memory_order_release);
}

std::vector<CdfPoint> cdf_at(const EmpiricalDistribution& dist,
                             std::span<const double> xs) {
  std::vector<CdfPoint> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back({x, dist.cdf(x)});
  return out;
}

LogBinHistogram::LogBinHistogram(int max_exponent) {
  if (max_exponent < 1)
    throw std::invalid_argument("LogBinHistogram: max_exponent must be >= 1");
  bins_.assign(static_cast<std::size_t>(max_exponent) + 1, 0);
}

void LogBinHistogram::add(std::uint64_t value) {
  if (value < 1) return;
  if (value == 1) {
    ++bins_[0];
    return;
  }
  std::size_t bin = 1;
  std::uint64_t upper = 10;
  while (value > upper && bin + 1 < bins_.size()) {
    ++bin;
    // Saturate rather than overflow for absurdly large exponents.
    upper = upper > (UINT64_MAX / 10) ? UINT64_MAX : upper * 10;
  }
  ++bins_[bin];
}

std::uint64_t LogBinHistogram::total() const {
  return std::accumulate(bins_.begin(), bins_.end(), std::uint64_t{0});
}

std::string LogBinHistogram::bin_label(std::size_t i) const {
  if (i >= bins_.size()) throw std::out_of_range("LogBinHistogram::bin_label");
  if (i == 0) return "n=1";
  const auto lo = static_cast<int>(i) - 1;
  const auto hi = static_cast<int>(i);
  std::string label = "10^";
  if (lo == 0) label = "1";
  else label += std::to_string(lo);
  return label + "<n<=10^" + std::to_string(hi);
}

void DailySeries::add(int day, double amount) {
  values_.at(static_cast<std::size_t>(day)) += amount;
}

void DailySeries::set(int day, double value) {
  values_.at(static_cast<std::size_t>(day)) = value;
}

double DailySeries::total() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double DailySeries::daily_mean() const {
  return values_.empty() ? 0.0 : total() / static_cast<double>(values_.size());
}

double DailySeries::max() const {
  return values_.empty() ? 0.0 : *std::max_element(values_.begin(), values_.end());
}

int DailySeries::argmax() const {
  if (values_.empty()) return -1;
  return static_cast<int>(std::max_element(values_.begin(), values_.end()) -
                          values_.begin());
}

DailySeries DailySeries::smoothed(int window) const {
  if (window < 1) throw std::invalid_argument("DailySeries::smoothed: window >= 1");
  DailySeries out(num_days());
  const int half = window / 2;
  const int n = num_days();
  for (int d = 0; d < n; ++d) {
    const int lo = std::max(0, d - half);
    const int hi = std::min(n - 1, d + half);
    double sum = 0.0;
    for (int i = lo; i <= hi; ++i) sum += values_[static_cast<std::size_t>(i)];
    out.set(d, sum / static_cast<double>(hi - lo + 1));
  }
  return out;
}

}  // namespace dosm
