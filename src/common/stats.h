// Statistical summaries used by every analysis: percentiles/CDFs (Figures 2,
// 3, 4, 9, 10, 11), log-binned histograms (Figure 6), and running summaries.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace dosm {

/// Streaming summary of a scalar sample (count/mean/min/max/variance via
/// Welford). Median and percentiles require the full sample; see
/// EmpiricalDistribution.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Holds a full sample and answers percentile / CDF queries. Sorting is done
/// lazily on first query, guarded so any number of threads may run const
/// queries concurrently; mutation (add) still requires external
/// synchronization against readers, like any container.
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  explicit EmpiricalDistribution(std::vector<double> values);

  EmpiricalDistribution(const EmpiricalDistribution& other);
  EmpiricalDistribution(EmpiricalDistribution&& other) noexcept;
  EmpiricalDistribution& operator=(const EmpiricalDistribution& other);
  EmpiricalDistribution& operator=(EmpiricalDistribution&& other) noexcept;

  void add(double x);
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const;
  double min() const;
  double max() const;

  /// Percentile p in [0, 100]; linear interpolation between order statistics.
  /// Throws std::logic_error on an empty sample.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// Empirical CDF at x: fraction of samples <= x.
  double cdf(double x) const;

  /// The sorted sample (forces the sort).
  std::span<const double> sorted() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> values_;
  // Double-checked: readers that observe true (acquire) may touch values_
  // without the mutex; the sorting reader publishes with a release store
  // while holding sort_mutex_.
  mutable std::atomic<bool> sorted_{false};
  mutable std::mutex sort_mutex_;
};

/// One point of a rendered CDF curve.
struct CdfPoint {
  double x = 0.0;
  double fraction = 0.0;  // in [0, 1]
};

/// Evaluates the empirical CDF of `dist` at each x in `xs` (xs need not be
/// sorted). Used to print the figure curves at paper-matching tick values.
std::vector<CdfPoint> cdf_at(const EmpiricalDistribution& dist,
                             std::span<const double> xs);

/// Logarithmically-binned histogram over positive counts, matching Figure 6:
/// bins are {n==1, 1<n<=10, 10<n<=100, ...} up to 10^max_exponent.
class LogBinHistogram {
 public:
  /// Bins: [1,1], (1,10], (10,100], … , (10^(max_exponent-1), 10^max_exponent].
  explicit LogBinHistogram(int max_exponent = 7);

  /// Adds a count; values < 1 are ignored, values above the top bin clamp
  /// into it.
  void add(std::uint64_t value);

  std::size_t num_bins() const { return bins_.size(); }
  std::uint64_t bin(std::size_t i) const { return bins_.at(i); }
  std::uint64_t total() const;

  /// Human-readable label for bin i ("n=1", "1<n<=10^1", ...).
  std::string bin_label(std::size_t i) const;

 private:
  std::vector<std::uint64_t> bins_;
};

/// Fixed-width daily time series over a window of `num_days` days.
/// Used for Figures 1, 5, and 7.
class DailySeries {
 public:
  explicit DailySeries(int num_days) : values_(static_cast<std::size_t>(num_days), 0.0) {}

  void add(int day, double amount);
  void set(int day, double value);
  double at(int day) const { return values_.at(static_cast<std::size_t>(day)); }
  int num_days() const { return static_cast<int>(values_.size()); }

  double total() const;
  double daily_mean() const;
  double max() const;
  /// Day index of the maximum value (first one on ties).
  int argmax() const;

  /// Centered moving average with the given full window width (odd widths
  /// recommended); edges use the available partial window. Mirrors the
  /// paper's smoothed overlay in Figure 7.
  DailySeries smoothed(int window) const;

  std::span<const double> values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace dosm
