// Small string/formatting helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dosm {

/// "12.47M", "8.4k", "731" — compact human magnitudes as in the paper tables.
std::string human_count(double value, int decimals = 2);

/// Percentage with the given number of decimals: "25.56%".
std::string percent(double fraction, int decimals = 2);

/// Fixed-point formatting.
std::string fixed(double value, int decimals);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Lowercases ASCII.
std::string to_lower(std::string_view s);

/// True if `s` ends with `suffix` (ASCII case-insensitive).
bool iends_with(std::string_view s, std::string_view suffix);

}  // namespace dosm
