#include "common/table.h"

#include <algorithm>
#include <sstream>

namespace dosm {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::set_align(std::size_t column, Align align) {
  aligns_.at(column) = align;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto pad = [&](const std::string& s, std::size_t c) {
    std::string out;
    const std::size_t fill = widths[c] - s.size();
    if (aligns_[c] == Align::kRight) out.append(fill, ' ');
    out += s;
    if (aligns_[c] == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << "  ";
    os << pad(headers_[c], c);
  }
  os << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << "  ";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << pad(row[c], c);
    }
    os << '\n';
  }
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

void print_section(std::ostream& os, const std::string& title) {
  os << '\n' << "== " << title << " ==\n";
}

}  // namespace dosm
