// Sanitizer annotations for intentional arithmetic.
//
// DOSMETER_SANITIZE=integer builds with clang's -fsanitize=integer group,
// which (unlike UBSan proper) also traps *unsigned* wraparound — defined
// behaviour in C++, but usually a bug in counting code. Hash mixers and RNG
// state transitions wrap on purpose; mark those functions with
// DOSM_ALLOW_UNSIGNED_WRAP so the sanitizer skips them instead of the build
// whitelisting whole files. GCC has no unsigned-wrap sanitizer, so the macro
// expands to nothing there.
#pragma once

#if defined(__clang__)
#define DOSM_ALLOW_UNSIGNED_WRAP __attribute__((no_sanitize("integer")))
#else
#define DOSM_ALLOW_UNSIGNED_WRAP
#endif
