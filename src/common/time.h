// Civil-calendar time for the measurement window.
//
// All dosmeter timestamps are UTC seconds since the Unix epoch
// (`UnixSeconds`). Analyses aggregate by civil day; `CivilDate` provides the
// proleptic-Gregorian day arithmetic (Howard Hinnant's algorithms) without
// any dependence on the process clock or timezone database.
#pragma once

#include <cstdint>
#include <string>

namespace dosm {

using UnixSeconds = std::int64_t;

constexpr std::int64_t kSecondsPerDay = 86400;

/// A proleptic-Gregorian calendar date.
struct CivilDate {
  int year = 1970;
  unsigned month = 1;  // 1..12
  unsigned day = 1;    // 1..31

  auto operator<=>(const CivilDate&) const = default;
};

/// Days since 1970-01-01 for the given civil date (may be negative).
std::int64_t days_from_civil(CivilDate d);

/// Inverse of days_from_civil.
CivilDate civil_from_days(std::int64_t days);

/// Midnight UTC of the given civil date.
UnixSeconds unix_from_civil(CivilDate d);

/// Civil date containing the given timestamp.
CivilDate civil_from_unix(UnixSeconds t);

/// Day index (days since epoch) containing the timestamp; floor division so
/// negative timestamps land on the correct day.
std::int64_t day_index(UnixSeconds t);

/// "YYYY-MM-DD".
std::string to_string(CivilDate d);

/// Parses "YYYY-MM-DD"; throws std::invalid_argument on malformed input.
CivilDate parse_civil(const std::string& s);

/// The paper's two-year measurement window: 2015-03-01 .. 2017-02-28
/// inclusive (731 days).
struct StudyWindow {
  CivilDate start{2015, 3, 1};
  CivilDate end{2017, 2, 28};  // inclusive

  /// Number of civil days covered (731 for the default window).
  int num_days() const {
    return static_cast<int>(days_from_civil(end) - days_from_civil(start)) + 1;
  }

  UnixSeconds start_time() const { return unix_from_civil(start); }

  /// One past the last covered second.
  UnixSeconds end_time() const {
    return unix_from_civil(end) + kSecondsPerDay;
  }

  bool contains(UnixSeconds t) const {
    return t >= start_time() && t < end_time();
  }

  /// Day offset within the window (0-based); t must be inside the window.
  int day_of(UnixSeconds t) const {
    return static_cast<int>(day_index(t) - days_from_civil(start));
  }

  /// Midnight of the day at the given 0-based offset.
  UnixSeconds day_start(int day_offset) const {
    return start_time() + static_cast<UnixSeconds>(day_offset) * kSecondsPerDay;
  }

  CivilDate date_of_day(int day_offset) const {
    return civil_from_days(days_from_civil(start) + day_offset);
  }
};

/// Formats a duration in seconds as a compact human string ("4h12m", "255s").
std::string format_duration(double seconds);

}  // namespace dosm
