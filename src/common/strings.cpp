#include "common/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace dosm {

std::string human_count(double value, int decimals) {
  const double a = std::fabs(value);
  char buf[64];
  if (a >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.*fG", decimals, value / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.*fM", decimals, value / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.*fk", decimals, value / 1e3);
  } else if (value == std::floor(value)) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  }
  return buf;
}

std::string percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iends_with(std::string_view s, std::string_view suffix) {
  if (suffix.size() > s.size()) return false;
  const auto tail = s.substr(s.size() - suffix.size());
  for (std::size_t i = 0; i < suffix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(tail[i])) !=
        std::tolower(static_cast<unsigned char>(suffix[i])))
      return false;
  }
  return true;
}

}  // namespace dosm
