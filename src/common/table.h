// Plain-text table rendering for the bench harness. Every bench binary
// prints its paper table/figure as an aligned text table plus a CSV block so
// results can be both eyeballed and machine-diffed.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace dosm {

/// Column alignment for TextTable rendering.
enum class Align { kLeft, kRight };

/// A simple rectangular text table. Rows may be ragged; short rows are
/// padded with empty cells.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Per-column alignment; defaults to left for column 0 and right otherwise.
  void set_align(std::size_t column, Align align);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return headers_.size(); }

  /// Renders with a header underline and two-space column gaps.
  std::string render() const;

  /// Renders as RFC-4180-style CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> aligns_;
};

/// Prints a titled section banner for bench output.
void print_section(std::ostream& os, const std::string& title);

}  // namespace dosm
