#include "storage/codec.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <type_traits>

namespace dosm::storage {
namespace {

// Codec tags. Integer and double columns draw from disjoint ranges so a
// tag smeared across column kinds by corruption is rejected outright.
enum IntCodec : std::uint8_t {
  kRaw = 0,
  kDelta = 1,
  kDict = 2,
  kBitpack = 3,
};
enum DoubleCodec : std::uint8_t {
  kRaw64 = 16,
  kScaledDelta = 17,
};

constexpr std::array<double, 4> kScales = {1.0, 10.0, 100.0, 1000.0};

std::uint32_t bit_width_of(std::uint64_t v) {
  return v == 0 ? 0 : static_cast<std::uint32_t>(std::bit_width(v));
}

/// LSB-first fixed-width bit packing.
void pack_bits(ByteWriter& out, std::span<const std::uint64_t> values,
               std::uint32_t bits) {
  std::uint64_t acc = 0;
  std::uint32_t filled = 0;
  for (const std::uint64_t v : values) {
    acc |= v << filled;
    filled += bits;
    while (filled >= 8) {
      out.u8(static_cast<std::uint8_t>(acc & 0xff));
      acc >>= 8;
      filled -= 8;
    }
  }
  if (filled > 0) out.u8(static_cast<std::uint8_t>(acc & 0xff));
}

std::vector<std::uint64_t> unpack_bits(ByteReader& in, std::uint32_t count,
                                       std::uint32_t bits) {
  std::vector<std::uint64_t> values;
  values.reserve(count);
  const std::uint64_t mask =
      bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  const std::size_t nbytes = (static_cast<std::size_t>(count) * bits + 7) / 8;
  const auto packed = in.bytes(nbytes);
  std::uint64_t acc = 0;
  std::uint32_t filled = 0;
  std::size_t next = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    while (filled < bits) {
      acc |= static_cast<std::uint64_t>(packed[next++]) << filled;
      filled += 8;
    }
    values.push_back(acc & mask);
    acc >>= bits;
    filled -= bits;
  }
  return values;
}

// ---------------------------------------------------------------------------
// Integer blocks (templated over the column value type).
// ---------------------------------------------------------------------------

template <typename T>
void encode_int_block(ByteWriter& out, std::span<const T> block) {
  // Candidate 1: raw.
  ByteWriter raw;
  for (const T v : block) {
    if constexpr (sizeof(T) == 1) raw.u8(static_cast<std::uint8_t>(v));
    else if constexpr (sizeof(T) == 2) raw.u16(static_cast<std::uint16_t>(v));
    else raw.u32(static_cast<std::uint32_t>(v));
  }

  // Candidate 2: zigzag delta varint.
  ByteWriter delta;
  std::int64_t prev = 0;
  for (const T v : block) {
    const auto cur = static_cast<std::int64_t>(v);
    delta.varint(zigzag_encode(cur - prev));
    prev = cur;
  }

  // Candidate 3: dictionary (sorted distinct values + bitpacked indexes).
  std::vector<std::int64_t> distinct(block.begin(), block.end());
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  ByteWriter dict;
  dict.u16(static_cast<std::uint16_t>(distinct.size()));
  for (const std::int64_t v : distinct) {
    if constexpr (sizeof(T) == 1) dict.u8(static_cast<std::uint8_t>(v));
    else if constexpr (sizeof(T) == 2) dict.u16(static_cast<std::uint16_t>(v));
    else dict.u32(static_cast<std::uint32_t>(v));
  }
  const std::uint32_t index_bits = bit_width_of(distinct.size() - 1);
  if (index_bits > 0) {
    std::vector<std::uint64_t> indexes;
    indexes.reserve(block.size());
    for (const T v : block) {
      const auto it = std::lower_bound(distinct.begin(), distinct.end(),
                                       static_cast<std::int64_t>(v));
      indexes.push_back(
          static_cast<std::uint64_t>(it - distinct.begin()));
    }
    pack_bits(dict, indexes, index_bits);
  }

  // Candidate 4: min-offset bitpack.
  std::int64_t lo = std::numeric_limits<std::int64_t>::max();
  std::int64_t hi = std::numeric_limits<std::int64_t>::min();
  for (const T v : block) {
    lo = std::min(lo, static_cast<std::int64_t>(v));
    hi = std::max(hi, static_cast<std::int64_t>(v));
  }
  ByteWriter pack;
  pack.varint(zigzag_encode(lo));
  const std::uint32_t pack_bits_width =
      bit_width_of(static_cast<std::uint64_t>(hi - lo));
  pack.u8(static_cast<std::uint8_t>(pack_bits_width));
  if (pack_bits_width > 0) {
    std::vector<std::uint64_t> offsets;
    offsets.reserve(block.size());
    for (const T v : block)
      offsets.push_back(
          static_cast<std::uint64_t>(static_cast<std::int64_t>(v) - lo));
    pack_bits(pack, offsets, pack_bits_width);
  }

  // Smallest wins; ties break toward the lowest tag so the choice is
  // deterministic.
  const std::array<std::pair<std::uint8_t, const ByteWriter*>, 4> candidates =
      {{{kRaw, &raw}, {kDelta, &delta}, {kDict, &dict}, {kBitpack, &pack}}};
  const auto* best = &candidates[0];
  for (const auto& candidate : candidates)
    if (candidate.second->size() < best->second->size()) best = &candidate;
  out.u8(best->first);
  out.u32(static_cast<std::uint32_t>(best->second->size()));
  out.bytes(best->second->data());
}

template <typename T>
void decode_int_block(ByteReader& in, std::uint32_t rows,
                      std::vector<T>& out) {
  const std::uint8_t codec = in.u8();
  const std::uint32_t len = in.u32();
  if (len > in.remaining()) in.fail("block length past end");
  ByteReader block(in.bytes(len), "block");
  const auto push = [&](std::int64_t v) {
    // Every integer column is decoded through i64; a value outside the
    // column type's range is corruption, not data.
    if constexpr (std::is_signed_v<T>) {
      if (v < std::numeric_limits<T>::min() ||
          v > std::numeric_limits<T>::max())
        block.fail("value out of column range");
    } else {
      if (v < 0 || static_cast<std::uint64_t>(v) >
                       std::numeric_limits<T>::max())
        block.fail("value out of column range");
    }
    out.push_back(static_cast<T>(v));
  };
  switch (codec) {
    case kRaw: {
      for (std::uint32_t i = 0; i < rows; ++i) {
        if constexpr (sizeof(T) == 1) out.push_back(static_cast<T>(block.u8()));
        else if constexpr (sizeof(T) == 2)
          out.push_back(static_cast<T>(block.u16()));
        else out.push_back(static_cast<T>(block.u32()));
      }
      break;
    }
    case kDelta: {
      std::int64_t prev = 0;
      for (std::uint32_t i = 0; i < rows; ++i) {
        prev += zigzag_decode(block.varint());
        push(prev);
      }
      break;
    }
    case kDict: {
      const std::uint16_t count = block.u16();
      if (count == 0 || count > rows) block.fail("dictionary size");
      std::vector<std::int64_t> distinct;
      distinct.reserve(count);
      for (std::uint16_t i = 0; i < count; ++i) {
        // Entries are stored as raw column-width words; cast back through T
        // so signed columns sign-extend (the day column's -1 sentinel).
        if constexpr (sizeof(T) == 1)
          distinct.push_back(static_cast<T>(block.u8()));
        else if constexpr (sizeof(T) == 2)
          distinct.push_back(static_cast<T>(block.u16()));
        else
          distinct.push_back(static_cast<T>(block.u32()));
      }
      const std::uint32_t bits = bit_width_of(count - 1u);
      if (bits == 0) {
        for (std::uint32_t i = 0; i < rows; ++i) push(distinct[0]);
      } else {
        const auto indexes = unpack_bits(block, rows, bits);
        for (const std::uint64_t index : indexes) {
          if (index >= count) block.fail("dictionary index");
          push(distinct[index]);
        }
      }
      break;
    }
    case kBitpack: {
      const std::int64_t lo = zigzag_decode(block.varint());
      const std::uint32_t bits = block.u8();
      if (bits > 33) block.fail("bitpack width");
      if (bits == 0) {
        for (std::uint32_t i = 0; i < rows; ++i) push(lo);
      } else {
        const auto offsets = unpack_bits(block, rows, bits);
        for (const std::uint64_t offset : offsets)
          push(lo + static_cast<std::int64_t>(offset));
      }
      break;
    }
    default:
      block.fail("unknown integer codec");
  }
  if (!block.done()) block.fail("trailing bytes in block");
}

// ---------------------------------------------------------------------------
// Double blocks.
// ---------------------------------------------------------------------------

bool bitwise_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

/// The smallest scale index for which every value is bit-exactly
/// value == round(value * scale) / scale, or -1. Exactness is verified per
/// value at encode time, which is what makes decode byte-identical.
int pick_scale(std::span<const double> block) {
  for (std::size_t s = 0; s < kScales.size(); ++s) {
    bool ok = true;
    for (const double v : block) {
      if (!std::isfinite(v) || std::abs(v) >= 4.0e15) {
        ok = false;
        break;
      }
      const double scaled = v * kScales[s];
      const auto i = static_cast<std::int64_t>(std::llrint(scaled));
      if (!bitwise_equal(static_cast<double>(i) / kScales[s], v)) {
        ok = false;
        break;
      }
    }
    if (ok) return static_cast<int>(s);
  }
  return -1;
}

void encode_double_block(ByteWriter& out, std::span<const double> block) {
  const int scale = pick_scale(block);
  ByteWriter best;
  std::uint8_t tag = kRaw64;
  if (scale >= 0) {
    best.u8(static_cast<std::uint8_t>(scale));
    std::int64_t prev = 0;
    for (const double v : block) {
      const auto cur =
          static_cast<std::int64_t>(std::llrint(v * kScales[scale]));
      best.varint(zigzag_encode(cur - prev));
      prev = cur;
    }
    tag = kScaledDelta;
  }
  const std::size_t raw_size = block.size() * sizeof(double);
  if (tag == kRaw64 || best.size() >= raw_size) {
    ByteWriter raw;
    for (const double v : block) raw.f64(v);
    best = std::move(raw);
    tag = kRaw64;
  }
  out.u8(tag);
  out.u32(static_cast<std::uint32_t>(best.size()));
  out.bytes(best.data());
}

void decode_double_block(ByteReader& in, std::uint32_t rows,
                         std::vector<double>& out) {
  const std::uint8_t codec = in.u8();
  const std::uint32_t len = in.u32();
  if (len > in.remaining()) in.fail("block length past end");
  ByteReader block(in.bytes(len), "block");
  switch (codec) {
    case kRaw64:
      for (std::uint32_t i = 0; i < rows; ++i) out.push_back(block.f64());
      break;
    case kScaledDelta: {
      const std::uint8_t scale = block.u8();
      if (scale >= kScales.size()) block.fail("scale index");
      std::int64_t prev = 0;
      for (std::uint32_t i = 0; i < rows; ++i) {
        prev += zigzag_decode(block.varint());
        out.push_back(static_cast<double>(prev) / kScales[scale]);
      }
      break;
    }
    default:
      block.fail("unknown double codec");
  }
  if (!block.done()) block.fail("trailing bytes in block");
}

template <typename T, typename BlockFn>
void encode_blocks(ByteWriter& out, std::span<const T> values, BlockFn fn) {
  for (std::size_t at = 0; at < values.size(); at += kBlockRows)
    fn(out, values.subspan(at, std::min<std::size_t>(kBlockRows,
                                                     values.size() - at)));
  if (values.empty()) {
    // Columns are never empty in practice (empty segments are not sealed),
    // but an empty column still encodes as zero blocks.
  }
}

template <typename T, typename BlockFn>
std::vector<T> decode_blocks(ByteReader& in, std::uint32_t rows, BlockFn fn) {
  std::vector<T> out;
  out.reserve(rows);
  for (std::uint32_t at = 0; at < rows; at += kBlockRows)
    fn(in, std::min(kBlockRows, rows - at), out);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// ByteReader / ByteWriter
// ---------------------------------------------------------------------------

void ByteReader::need(std::size_t n) const {
  if (bytes_.size() - pos_ < n)
    throw core::SerializeError("archive: truncated " + std::string(what_));
}

void ByteReader::fail(const std::string& detail) const {
  throw core::SerializeError("archive: corrupt " + std::string(what_) + ": " +
                             detail);
}

std::uint8_t ByteReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  const auto v = static_cast<std::uint16_t>(
      bytes_[pos_] | (static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | bytes_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | bytes_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  for (std::uint32_t shift = 0; shift < 70; shift += 7) {
    const std::uint8_t byte = u8();
    if (shift == 63 && (byte & 0xfe) != 0) fail("varint overflow");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  fail("varint too long");
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  need(n);
  const auto slice = bytes_.subspan(pos_, n);
  pos_ += n;
  return slice;
}

void ByteWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v & 0xff));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    return table;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (const std::uint8_t byte : bytes)
    crc = kTable[(crc ^ byte) & 0xff] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void encode_column(ByteWriter& out, std::span<const std::uint8_t> values) {
  encode_blocks(out, values, encode_int_block<std::uint8_t>);
}
void encode_column(ByteWriter& out, std::span<const std::uint16_t> values) {
  encode_blocks(out, values, encode_int_block<std::uint16_t>);
}
void encode_column(ByteWriter& out, std::span<const std::uint32_t> values) {
  encode_blocks(out, values, encode_int_block<std::uint32_t>);
}
void encode_column(ByteWriter& out, std::span<const std::int32_t> values) {
  encode_blocks(out, values, encode_int_block<std::int32_t>);
}
void encode_column(ByteWriter& out, std::span<const double> values) {
  encode_blocks(out, values, encode_double_block);
}

std::vector<std::uint8_t> decode_column_u8(ByteReader& in,
                                           std::uint32_t rows) {
  return decode_blocks<std::uint8_t>(in, rows, decode_int_block<std::uint8_t>);
}
std::vector<std::uint16_t> decode_column_u16(ByteReader& in,
                                             std::uint32_t rows) {
  return decode_blocks<std::uint16_t>(in, rows,
                                      decode_int_block<std::uint16_t>);
}
std::vector<std::uint32_t> decode_column_u32(ByteReader& in,
                                             std::uint32_t rows) {
  return decode_blocks<std::uint32_t>(in, rows,
                                      decode_int_block<std::uint32_t>);
}
std::vector<std::int32_t> decode_column_i32(ByteReader& in,
                                            std::uint32_t rows) {
  return decode_blocks<std::int32_t>(in, rows, decode_int_block<std::int32_t>);
}
std::vector<double> decode_column_f64(ByteReader& in, std::uint32_t rows) {
  return decode_blocks<double>(in, rows, decode_double_block);
}

}  // namespace dosm::storage
