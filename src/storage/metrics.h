// storage.* instrumentation: archive writes, cold-segment loads, the
// byte-budgeted segment cache, and zone-map pruning effectiveness. Same obs
// contract as every other Metrics struct in the repo: registered once on
// the process-wide registry, updates lock-free.
#pragma once

#include "obs/metrics.h"

namespace dosm::storage {

struct Metrics {
  // Archive writer.
  obs::Counter& segments_written;
  obs::Counter& bytes_written;       // compressed archive bytes
  obs::Counter& raw_bytes_archived;  // 42 B/row SoA equivalent

  // Archive reader / cold loads.
  obs::Counter& segment_loads;  // blobs decoded from disk
  obs::Counter& bytes_read;

  // Segment cache (tiered store).
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& cache_evictions;
  obs::Gauge& resident_bytes;     // decoded segment bytes held by the cache
  obs::Gauge& resident_segments;

  // Zone-map pruning.
  obs::Counter& zone_block_skips;    // blocks excluded by clip()
  obs::Counter& zone_segment_skips;  // whole cold segments never fetched

  static Metrics& get();
};

}  // namespace dosm::storage
