#include "storage/tiered.h"

#include <utility>
#include <vector>

#include "storage/metrics.h"

namespace dosm::storage {

TieredStore::TieredStore(std::shared_ptr<const ArchiveReader> reader,
                         std::size_t cache_budget_bytes)
    : reader_(std::move(reader)), budget_(cache_budget_bytes) {}

TieredStore::~TieredStore() {
  Metrics& metrics = Metrics::get();
  metrics.resident_bytes.add(-static_cast<std::int64_t>(resident_bytes_));
  metrics.resident_segments.add(
      -static_cast<std::int64_t>(entries_.size()));
}

void TieredStore::evict_to_fit() const {
  Metrics& metrics = Metrics::get();
  while (resident_bytes_ > budget_ && !lru_.empty()) {
    const std::uint32_t victim = lru_.back();
    lru_.pop_back();
    const auto it = entries_.find(victim);
    resident_bytes_ -= it->second.bytes;  // analyze:allow(shared-state-race): caller holds mutex_ (see header contract)
    metrics.resident_bytes.add(-static_cast<std::int64_t>(it->second.bytes));
    metrics.resident_segments.add(-1);
    metrics.cache_evictions.inc();
    entries_.erase(it);
  }
}

std::shared_ptr<const query::FrameSegment> TieredStore::fetch(
    std::uint32_t id) const {
  Metrics& metrics = Metrics::get();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(id);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      metrics.cache_hits.inc();
      return it->second.segment;
    }
  }
  metrics.cache_misses.inc();
  // Decode outside the lock: ArchiveReader serializes file I/O itself, and
  // a racing duplicate decode yields an identical segment (the loser below
  // just adopts the winner's copy).
  std::shared_ptr<const query::FrameSegment> segment = reader_->load(id);
  const std::size_t bytes = segment->size() * kDecodedBytesPerRow;
  if (budget_ == 0 || bytes > budget_) return segment;

  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.segment;
  }
  lru_.push_front(id);
  entries_.emplace(id, Entry{segment, bytes, lru_.begin()});
  resident_bytes_ += bytes;
  metrics.resident_bytes.add(static_cast<std::int64_t>(bytes));
  metrics.resident_segments.add(1);
  evict_to_fit();
  return segment;
}

query::RowRange TieredStore::clip(std::uint32_t id, double t0,
                                  double t1) const {
  Metrics& metrics = Metrics::get();
  std::uint64_t skipped = 0;
  const query::RowRange rows = reader_->clip(id, t0, t1, &skipped);
  metrics.zone_block_skips.add(skipped);
  if (rows.size() == 0) metrics.zone_segment_skips.inc();
  return rows;
}

std::shared_ptr<const query::Snapshot> open_tiered(
    const std::string& path, const query::BuildContext& ctx,
    std::uint64_t version) {
  const auto reader = std::make_shared<const ArchiveReader>(path);
  const auto store =
      std::make_shared<const TieredStore>(reader, ctx.cold_cache_bytes);

  // Segments whose start range reaches into the trailing hot window stay
  // resident. hot_days <= 0 keeps everything cold; hot_days >= num_days
  // decodes the whole archive up front.
  const StudyWindow& window = reader->window();
  double hot_from = static_cast<double>(window.end_time());
  if (ctx.hot_days > 0) {
    const int first_hot_day =
        window.num_days() > ctx.hot_days ? window.num_days() - ctx.hot_days : 0;
    hot_from = static_cast<double>(window.day_start(first_hot_day));
  }

  std::vector<query::TieredSlot> slots;
  slots.reserve(reader->num_segments());
  for (std::uint32_t id = 0; id < reader->num_segments(); ++id) {
    const SegmentMeta& meta = reader->meta(id);
    query::TieredSlot slot;
    if (meta.start_max >= hot_from) {
      slot.resident = reader->load(id);
    } else {
      slot.cold = query::ColdSegmentRef{store, id, meta.rows, meta.start_min,
                                        meta.start_max};
    }
    slots.push_back(std::move(slot));
  }
  return std::make_shared<const query::Snapshot>(window, std::move(slots),
                                                 version);
}

}  // namespace dosm::storage
