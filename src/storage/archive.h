// The versioned on-disk segment archive ("DOSARCH1").
//
// One archive holds a whole snapshot's sealed segments in time order, each
// compressed column-by-column and block-by-block (storage/codec.h), plus a
// footer TOC that carries everything the planner needs WITHOUT touching a
// segment: exact row counts, start-time bounds, and per-block min/max zone
// maps over the start column. Layout:
//
//   [8]  magic "DOSARCH1"                       (magic doubles as version)
//   [12] study window  (start y/m/d, end y/m/d; i32 + u8 + u8 each)
//   [4]  u32 segment count
//   segment blobs, back to back:
//     u32 rows, then the 10 columns in frame order (start, end, intensity,
//     target, source, ip_proto, top_port, asn, country, day), each a
//     u32 byte length + the encoded blocks; then u32 CRC-32 of everything
//     before it in the blob.
//   TOC:
//     per segment: u64 offset, u64 length, u32 rows,
//                  f64 start_min, f64 start_max, u32 block count,
//                  per block { f64 start_min, f64 start_max }
//   [8]  u64 TOC offset   [4] u32 TOC CRC-32   [8] tail magic "DOSMEND1"
//
// The reader validates magic, bounds, and CRCs up front (TOC) and per
// segment (blob CRC), throwing core::SerializeError on anything corrupt —
// never crashing, never allocating proportional to hostile bytes
// (tests/storage_fuzz_test.cpp holds this under ASan). Version policy:
// readers must load v1 archives forever; format changes bump the magic and
// add a new reader path (tests/data/golden_v1.dosarch pins this).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/time.h"
#include "query/index.h"
#include "query/segment.h"
#include "query/snapshot.h"

namespace dosm::storage {

inline constexpr char kArchiveMagic[8] = {'D', 'O', 'S', 'A',
                                          'R', 'C', 'H', '1'};
inline constexpr char kArchiveTailMagic[8] = {'D', 'O', 'S', 'M',
                                              'E', 'N', 'D', '1'};

/// One start-column zone-map entry: the min/max start of one kBlockRows
/// block. Blocks partition a segment's rows in order, so block i covers
/// local rows [i * kBlockRows, min(rows, (i + 1) * kBlockRows)).
struct BlockZone {
  double start_min = 0.0;
  double start_max = 0.0;
};

/// Per-segment TOC entry, valid without reading the segment blob.
struct SegmentMeta {
  std::uint64_t offset = 0;  // blob position from file start
  std::uint64_t length = 0;  // blob length including its CRC
  std::uint32_t rows = 0;
  double start_min = 0.0;
  double start_max = 0.0;
  std::vector<BlockZone> zones;
};

/// Writes a fully resident snapshot's segments as one archive file. Throws
/// core::SerializeError on I/O failure and std::invalid_argument when the
/// snapshot holds cold (non-resident) slots. Returns the written file size.
std::uint64_t write_archive(const std::string& path,
                            const query::Snapshot& snapshot);

/// Same, over an explicit segment list (must be in bucket order).
std::uint64_t write_archive(
    const std::string& path, const StudyWindow& window,
    std::span<const std::shared_ptr<const query::FrameSegment>> segments);

/// Read side: opens the file, validates header + TOC eagerly, and decodes
/// segments on demand. Thread-safe (file reads are serialized internally).
class ArchiveReader {
 public:
  /// Throws core::SerializeError on a missing, truncated, or corrupt file.
  explicit ArchiveReader(const std::string& path);
  ~ArchiveReader();

  ArchiveReader(const ArchiveReader&) = delete;
  ArchiveReader& operator=(const ArchiveReader&) = delete;

  const StudyWindow& window() const { return window_; }
  std::size_t num_segments() const { return meta_.size(); }
  const SegmentMeta& meta(std::uint32_t id) const { return meta_.at(id); }
  std::uint64_t file_size() const { return file_size_; }

  /// Decodes segment `id` into a freshly indexed FrameSegment,
  /// byte-identical to the segment that was written. Validates the blob
  /// CRC and every decoded invariant; throws core::SerializeError on
  /// corruption.
  std::shared_ptr<const query::FrameSegment> load(std::uint32_t id) const;

  /// The smallest local row range that can hold starts in [t0, t1),
  /// from the zone maps alone. `blocks_skipped` (optional) receives the
  /// number of blocks the zone maps excluded.
  query::RowRange clip(std::uint32_t id, double t0, double t1,
                       std::uint64_t* blocks_skipped = nullptr) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  StudyWindow window_;
  std::vector<SegmentMeta> meta_;
  std::uint64_t file_size_ = 0;
};

}  // namespace dosm::storage
