// Tiered snapshots: hot segments resident in memory, cold segments decoded
// on demand from a DOSARCH1 archive through a byte-budgeted LRU cache.
//
// open_tiered() splits an archive's segments by BuildContext::hot_days (the
// trailing window days kept resident; 0 keeps everything cold) and hands
// back an ordinary query::Snapshot whose cold slots route through a
// TieredStore. The planner clips cold segments by TOC metadata and zone
// maps before any byte is read; a fetched segment is the byte-identical
// FrameSegment the writer archived, so every aggregation result matches a
// fully resident snapshot exactly — at any cache budget, including 0.
//
// Cache policy: strict LRU over decoded segments, charged at an estimated
// decoded footprint (frame columns + index postings). A segment larger than
// the whole budget is served without being cached; budget 0 disables the
// cache entirely (each access decodes afresh). Evicted segments stay alive
// as long as a running query pins them (shared_ptr), so eviction can never
// dangle a scan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "query/build_context.h"
#include "query/segment_provider.h"
#include "query/snapshot.h"
#include "storage/archive.h"

namespace dosm::storage {

/// Estimated resident bytes of a decoded segment: 42 B/row of frame columns
/// plus ~30 B/row of postings/index. An estimate is fine — the budget is a
/// working-set knob, not an allocator — but it must be deterministic, so it
/// is a pure function of the row count.
inline constexpr std::size_t kDecodedBytesPerRow = 72;

/// SegmentProvider over one archive: LRU-cached decodes plus zone-map
/// clipping, with storage.cache.* / storage.zone.* metrics. Thread-safe.
class TieredStore : public query::SegmentProvider {
 public:
  TieredStore(std::shared_ptr<const ArchiveReader> reader,
              std::size_t cache_budget_bytes);
  ~TieredStore() override;

  /// Decodes (or returns the cached copy of) segment `id`. Byte-identical
  /// to the archived segment; throws core::SerializeError on corruption.
  std::shared_ptr<const query::FrameSegment> fetch(
      std::uint32_t id) const override;

  /// Zone-map clip; counts skipped blocks (and fully skipped segments) in
  /// the storage.zone.* metrics. Never reads segment bytes.
  query::RowRange clip(std::uint32_t id, double t0,
                       double t1) const override;

  const ArchiveReader& reader() const { return *reader_; }
  std::size_t cache_budget_bytes() const { return budget_; }

 private:
  struct Entry {
    std::shared_ptr<const query::FrameSegment> segment;
    std::size_t bytes = 0;
    std::list<std::uint32_t>::iterator lru_pos;
  };

  /// Drops least-recently-used entries until the cache fits the budget.
  /// Caller holds mutex_.
  void evict_to_fit() const;

  std::shared_ptr<const ArchiveReader> reader_;
  std::size_t budget_;

  mutable std::mutex mutex_;
  mutable std::list<std::uint32_t> lru_;  // front = most recent
  mutable std::unordered_map<std::uint32_t, Entry> entries_;
  mutable std::size_t resident_bytes_ = 0;
};

/// Opens an archive as a tiered snapshot. ctx.hot_days trailing window days
/// are decoded eagerly and kept resident; everything older stays cold
/// behind a TieredStore with a ctx.cold_cache_bytes LRU budget. Query
/// results are byte-identical to Snapshot::build over the same events for
/// any (hot_days, cold_cache_bytes) setting.
std::shared_ptr<const query::Snapshot> open_tiered(
    const std::string& path, const query::BuildContext& ctx,
    std::uint64_t version = 0);

}  // namespace dosm::storage
