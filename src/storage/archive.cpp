#include "storage/archive.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "storage/codec.h"
#include "storage/metrics.h"

namespace dosm::storage {
namespace {

// Sanity caps, enforced BEFORE any proportional allocation so a hostile
// TOC cannot drive an over-allocation. Far above anything the repo's
// default 731-day world produces, far below anything that could hurt.
constexpr std::uint32_t kMaxSegments = 1u << 20;
constexpr std::uint32_t kMaxSegmentRows = 1u << 28;
constexpr std::uint64_t kMaxTotalRows = 1ull << 31;

std::uint32_t blocks_of(std::uint32_t rows) {
  return (rows + kBlockRows - 1) / kBlockRows;
}

void encode_civil(ByteWriter& out, CivilDate date) {
  out.u32(static_cast<std::uint32_t>(date.year));
  out.u8(static_cast<std::uint8_t>(date.month));
  out.u8(static_cast<std::uint8_t>(date.day));
}

CivilDate decode_civil(ByteReader& in) {
  CivilDate date;
  date.year = static_cast<int>(in.u32());
  date.month = in.u8();
  date.day = in.u8();
  if (date.month < 1 || date.month > 12 || date.day < 1 || date.day > 31)
    in.fail("civil date");
  return date;
}

/// One segment's columns -> compressed blob (rows, 10 length-prefixed
/// columns, CRC).
std::vector<std::uint8_t> encode_segment(const query::FrameSegment& segment) {
  const query::EventFrame& frame = segment.frame();
  ByteWriter blob;
  blob.u32(static_cast<std::uint32_t>(frame.size()));
  const auto column = [&](const auto& values) {
    ByteWriter encoded;
    encode_column(encoded, values);
    blob.u32(static_cast<std::uint32_t>(encoded.size()));
    blob.bytes(encoded.data());
  };
  column(frame.start());
  column(frame.end());
  column(frame.intensity());
  column(frame.target());
  column(frame.source());
  column(frame.ip_proto());
  column(frame.top_port());
  column(frame.asn());
  column(frame.country());
  column(frame.day());
  blob.u32(crc32(blob.data()));
  return blob.take();
}

}  // namespace

struct ArchiveReader::Impl {
  // One shared stream cursor: reads are short (one blob each) and decoding
  // happens outside this lock in load(), so serialization here only covers
  // the seek+read pair.
  mutable std::mutex io_mutex;
  mutable std::ifstream file;
  std::string path;
};

std::uint64_t write_archive(const std::string& path,
                            const query::Snapshot& snapshot) {
  if (!snapshot.fully_resident())
    throw std::invalid_argument(
        "write_archive: snapshot holds cold segments; archive the resident "
        "original");
  return write_archive(path, snapshot.window(), snapshot.segments());
}

std::uint64_t write_archive(
    const std::string& path, const StudyWindow& window,
    std::span<const std::shared_ptr<const query::FrameSegment>> segments) {
  Metrics& metrics = Metrics::get();
  ByteWriter header;
  header.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kArchiveMagic),
      sizeof(kArchiveMagic)));
  encode_civil(header, window.start);
  encode_civil(header, window.end);
  header.u32(static_cast<std::uint32_t>(segments.size()));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw core::SerializeError("archive: cannot write " + path);
  const auto put = [&](std::span<const std::uint8_t> bytes) {
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  };
  put(header.data());

  std::uint64_t offset = header.size();
  std::uint64_t raw_bytes = 0;
  ByteWriter toc;
  for (const auto& segment : segments) {
    if (segment == nullptr || segment->size() == 0)
      throw std::invalid_argument("write_archive: null or empty segment");
    const std::vector<std::uint8_t> blob = encode_segment(*segment);
    put(blob);

    const query::EventFrame& frame = segment->frame();
    const auto rows = static_cast<std::uint32_t>(frame.size());
    toc.u64(offset);
    toc.u64(blob.size());
    toc.u32(rows);
    toc.f64(segment->start_min());
    toc.f64(segment->start_max());
    toc.u32(blocks_of(rows));
    for (std::uint32_t at = 0; at < rows; at += kBlockRows) {
      const std::uint32_t end = std::min(rows, at + kBlockRows);
      // start is sorted ascending, so the block zone is its edge values.
      toc.f64(frame.start()[at]);
      toc.f64(frame.start()[end - 1]);
    }
    offset += blob.size();
    raw_bytes += static_cast<std::uint64_t>(rows) * 42;  // SoA bytes/row
  }

  const std::uint64_t toc_offset = offset;
  const std::uint32_t toc_crc = crc32(toc.data());
  put(toc.data());
  ByteWriter tail;
  tail.u64(toc_offset);
  tail.u32(toc_crc);
  tail.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kArchiveTailMagic),
      sizeof(kArchiveTailMagic)));
  put(tail.data());
  out.flush();
  if (!out) throw core::SerializeError("archive: write failed for " + path);

  const std::uint64_t total = offset + toc.size() + tail.size();
  metrics.segments_written.add(segments.size());
  metrics.bytes_written.add(total);
  metrics.raw_bytes_archived.add(raw_bytes);
  return total;
}

ArchiveReader::ArchiveReader(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->path = path;
  impl_->file.open(path, std::ios::binary);
  if (!impl_->file)
    throw core::SerializeError("archive: cannot open " + path);
  impl_->file.seekg(0, std::ios::end);
  const std::int64_t size = impl_->file.tellg();
  constexpr std::uint64_t kHeaderBytes = 8 + 12 + 4;
  constexpr std::uint64_t kTailBytes = 8 + 4 + 8;
  if (size < 0 ||
      static_cast<std::uint64_t>(size) < kHeaderBytes + kTailBytes)
    throw core::SerializeError("archive: truncated file " + path);
  file_size_ = static_cast<std::uint64_t>(size);

  const auto read_at = [&](std::uint64_t at,
                           std::uint64_t n) -> std::vector<std::uint8_t> {
    std::vector<std::uint8_t> bytes(n);
    impl_->file.seekg(static_cast<std::streamoff>(at));
    impl_->file.read(reinterpret_cast<char*>(bytes.data()),
                     static_cast<std::streamsize>(n));
    if (!impl_->file)
      throw core::SerializeError("archive: read failed in " + path);
    return bytes;
  };

  // Header: magic + window + segment count.
  const std::vector<std::uint8_t> head = read_at(0, kHeaderBytes);
  ByteReader header(head, "header");
  const auto magic = header.bytes(sizeof(kArchiveMagic));
  if (std::memcmp(magic.data(), kArchiveMagic, sizeof(kArchiveMagic)) != 0)
    throw core::SerializeError("archive: bad magic in " + path);
  window_.start = decode_civil(header);
  window_.end = decode_civil(header);
  if (!(window_.start <= window_.end)) header.fail("window order");
  const std::uint32_t num_segments = header.u32();
  if (num_segments > kMaxSegments) header.fail("segment count");
  // Each TOC entry is at least 40 bytes, so the count is only plausible if
  // the TOC region can hold it — checked before reserving anything.
  constexpr std::uint64_t kMinTocEntry = 8 + 8 + 4 + 8 + 8 + 4;

  // Tail: TOC offset + CRC + tail magic.
  const std::vector<std::uint8_t> tail =
      read_at(file_size_ - kTailBytes, kTailBytes);
  ByteReader tail_reader(tail, "tail");
  const std::uint64_t toc_offset = tail_reader.u64();
  const std::uint32_t toc_crc = tail_reader.u32();
  const auto tail_magic = tail_reader.bytes(sizeof(kArchiveTailMagic));
  if (std::memcmp(tail_magic.data(), kArchiveTailMagic,
                  sizeof(kArchiveTailMagic)) != 0)
    throw core::SerializeError("archive: bad tail magic in " + path);
  if (toc_offset < kHeaderBytes || toc_offset > file_size_ - kTailBytes)
    tail_reader.fail("TOC offset");

  // TOC: validated against the CRC before any entry is trusted.
  const std::vector<std::uint8_t> toc_bytes =
      read_at(toc_offset, file_size_ - kTailBytes - toc_offset);
  if (crc32(toc_bytes) != toc_crc)
    throw core::SerializeError("archive: TOC CRC mismatch in " + path);
  ByteReader toc(toc_bytes, "TOC");
  if (static_cast<std::uint64_t>(num_segments) * kMinTocEntry >
      toc_bytes.size())
    toc.fail("segment count exceeds TOC size");
  meta_.reserve(num_segments);
  std::uint64_t expected_offset = kHeaderBytes;
  std::uint64_t total_rows = 0;
  for (std::uint32_t i = 0; i < num_segments; ++i) {
    SegmentMeta meta;
    meta.offset = toc.u64();
    meta.length = toc.u64();
    meta.rows = toc.u32();
    meta.start_min = toc.f64();
    meta.start_max = toc.f64();
    const std::uint32_t num_blocks = toc.u32();
    if (meta.rows == 0 || meta.rows > kMaxSegmentRows) toc.fail("row count");
    total_rows += meta.rows;
    if (total_rows > kMaxTotalRows) toc.fail("total rows");
    if (meta.offset != expected_offset || meta.length == 0 ||
        meta.offset + meta.length > toc_offset)
      toc.fail("segment bounds");
    if (!(meta.start_min <= meta.start_max)) toc.fail("segment start range");
    if (num_blocks != blocks_of(meta.rows)) toc.fail("block count");
    // A block costs at least 5 bytes per column (tag + length) in the blob,
    // so a row count the blob cannot plausibly hold is rejected here —
    // decode allocations are sized from rows, and this keeps them bounded
    // by a small multiple of the real file size.
    if (static_cast<std::uint64_t>(num_blocks) * 50 > meta.length)
      toc.fail("row count exceeds blob size");
    if (static_cast<std::uint64_t>(num_blocks) * 16 > toc.remaining())
      toc.fail("block count exceeds TOC size");
    meta.zones.reserve(num_blocks);
    for (std::uint32_t b = 0; b < num_blocks; ++b) {
      BlockZone zone{toc.f64(), toc.f64()};
      if (!(zone.start_min <= zone.start_max)) toc.fail("block zone order");
      meta.zones.push_back(zone);
    }
    expected_offset = meta.offset + meta.length;
    meta_.push_back(std::move(meta));
  }
  if (!toc.done()) toc.fail("trailing bytes");
  if (expected_offset != toc_offset) toc.fail("segment coverage");
}

ArchiveReader::~ArchiveReader() = default;

std::shared_ptr<const query::FrameSegment> ArchiveReader::load(
    std::uint32_t id) const {
  Metrics& metrics = Metrics::get();
  const SegmentMeta& meta = meta_.at(id);
  std::vector<std::uint8_t> blob(meta.length);
  {
    const std::lock_guard<std::mutex> lock(impl_->io_mutex);
    impl_->file.clear();
    impl_->file.seekg(static_cast<std::streamoff>(meta.offset));
    impl_->file.read(reinterpret_cast<char*>(blob.data()),
                     static_cast<std::streamsize>(blob.size()));
    if (!impl_->file)
      throw core::SerializeError("archive: read failed in " + impl_->path);
  }
  if (blob.size() < 8) throw core::SerializeError("archive: blob too short");
  const std::span<const std::uint8_t> body(blob.data(), blob.size() - 4);
  ByteReader crc_reader(
      std::span<const std::uint8_t>(blob).subspan(blob.size() - 4), "CRC");
  if (crc32(body) != crc_reader.u32())
    throw core::SerializeError("archive: segment CRC mismatch in " +
                               impl_->path);

  ByteReader in(body, "segment");
  const std::uint32_t rows = in.u32();
  if (rows != meta.rows)
    in.fail("row count disagrees with TOC");
  query::FrameColumns columns;
  const auto length_checked = [&](auto decode) {
    const std::uint32_t len = in.u32();
    if (len > in.remaining()) in.fail("column length");
    ByteReader col(in.bytes(len), "column");
    auto values = decode(col, rows);
    if (!col.done()) col.fail("trailing bytes in column");
    return values;
  };
  columns.start = length_checked(decode_column_f64);
  columns.end = length_checked(decode_column_f64);
  columns.intensity = length_checked(decode_column_f64);
  columns.target = length_checked(decode_column_u32);
  columns.source = length_checked(decode_column_u8);
  columns.ip_proto = length_checked(decode_column_u8);
  columns.top_port = length_checked(decode_column_u16);
  columns.asn = length_checked(decode_column_u32);
  columns.country = length_checked(decode_column_u16);
  columns.day = length_checked(decode_column_i32);
  if (!in.done()) in.fail("trailing bytes after columns");

  // Cross-checks against the (CRC-trusted) TOC and the frame invariants the
  // query layer relies on. from_columns re-validates sortedness and column
  // lengths; day offsets must stay inside the window (they index
  // DailySeries slots downstream).
  if (columns.start.front() != meta.start_min ||
      columns.start.back() != meta.start_max)
    in.fail("start bounds disagree with TOC");
  const int num_days = window_.num_days();
  for (const std::int32_t day : columns.day)
    if (day < -1 || day >= num_days) in.fail("day offset out of window");
  std::shared_ptr<const query::FrameSegment> segment;
  try {
    segment = std::make_shared<const query::FrameSegment>(
        query::EventFrame::from_columns(window_, std::move(columns)));
  } catch (const std::invalid_argument& error) {
    throw core::SerializeError(std::string("archive: ") + error.what());
  }
  metrics.segment_loads.inc();
  metrics.bytes_read.add(meta.length);
  return segment;
}

query::RowRange ArchiveReader::clip(std::uint32_t id, double t0, double t1,
                                    std::uint64_t* blocks_skipped) const {
  const SegmentMeta& meta = meta_.at(id);
  const auto num_blocks = static_cast<std::uint32_t>(meta.zones.size());
  // Zones are ordered (start-sorted rows), so the overlapping blocks form a
  // contiguous run: the first block whose max reaches t0 through the last
  // block whose min is below t1.
  std::uint32_t first = 0;
  while (first < num_blocks && meta.zones[first].start_max < t0) ++first;
  std::uint32_t last = num_blocks;
  while (last > first && meta.zones[last - 1].start_min >= t1) --last;
  if (blocks_skipped != nullptr)
    *blocks_skipped = num_blocks - (last - first);
  if (first >= last) return {0, 0};
  return {first * kBlockRows, std::min(meta.rows, last * kBlockRows)};
}

}  // namespace dosm::storage
