#include "storage/metrics.h"

namespace dosm::storage {

Metrics& Metrics::get() {
  static Metrics metrics = [] {
    auto& reg = obs::MetricsRegistry::global();
    return Metrics{
        reg.counter("storage.archive.segments_written",
                    "Segments sealed into archive files"),
        reg.counter("storage.archive.bytes_written",
                    "Compressed archive bytes written"),
        reg.counter("storage.archive.raw_bytes",
                    "Raw SoA byte equivalent of archived rows"),
        reg.counter("storage.segment.loads",
                    "Cold segments decoded from an archive"),
        reg.counter("storage.segment.bytes_read",
                    "Compressed blob bytes read for cold loads"),
        reg.counter("storage.cache.hits", "Segment-cache hits"),
        reg.counter("storage.cache.misses", "Segment-cache misses"),
        reg.counter("storage.cache.evictions",
                    "Segments evicted by the cache byte budget"),
        reg.gauge("storage.cache.resident_bytes",
                  "Decoded segment bytes resident in the cache"),
        reg.gauge("storage.cache.resident_segments",
                  "Decoded segments resident in the cache"),
        reg.counter("storage.zone.block_skips",
                    "Blocks excluded from cold scans by zone maps"),
        reg.counter("storage.zone.segment_skips",
                    "Cold segments never fetched thanks to zone clipping"),
    };
  }();
  return metrics;
}

}  // namespace dosm::storage
