// Per-block column codecs for the on-disk segment archive (src/storage).
//
// Columns are split into fixed blocks of kBlockRows rows. Each block is
// encoded independently with whichever codec yields the fewest bytes for
// THAT block — the empirical choice makes the format robust to column
// shape (a dictionary wins on two-letter countries, deltas win on sorted
// timestamps, min-offset bitpacking wins on ports and ASNs) and is fully
// deterministic (ties break toward the lowest codec id).
//
// Integer codecs (u8/u16/u32/i32 columns):
//   kRaw       fixed-width little-endian values
//   kDelta     zigzag(v[i] - v[i-1]) LEB128 varints (v[-1] := 0)
//   kDict      sorted distinct-value table + ceil(log2(n))-bit indexes
//   kBitpack   min-offset + fixed bit-width packed values
//
// Double codecs (start/end/intensity columns):
//   kRaw64       IEEE-754 bit patterns, little-endian
//   kScaledDelta the block is exactly representable as value * 10^k
//                integers (k <= 3, verified bit-for-bit at encode time, so
//                decode reproduces the identical doubles) -> zigzag-delta
//                varints over the scaled integers. Start-sorted
//                second-granularity timestamps collapse to ~1 byte/row.
//
// Every decode path is bounds-checked: a ByteReader running off its slice,
// an oversized dictionary, a varint past 10 bytes, or a row-count mismatch
// throws core::SerializeError and never over-allocates (allocations are
// bounded by the caller-supplied expected row count, never by bytes read
// from the file).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/serialize.h"

namespace dosm::storage {

/// Rows per encoded block; the zone-map granularity.
inline constexpr std::uint32_t kBlockRows = 4096;

/// Bounds-checked little-endian cursor over an immutable byte slice. All
/// reads throw core::SerializeError on exhaustion — the single error type
/// the whole archive reader surfaces for corrupt input.
class ByteReader {
 public:
  ByteReader(std::span<const std::uint8_t> bytes, std::string_view what)
      : bytes_(bytes), what_(what) {}

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return pos_ == bytes_.size(); }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  /// LEB128, at most 10 bytes.
  std::uint64_t varint();
  /// The next `n` bytes as a subslice (no copy).
  std::span<const std::uint8_t> bytes(std::size_t n);

  [[noreturn]] void fail(const std::string& detail) const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> bytes_;
  std::string_view what_;
  std::size_t pos_ = 0;
};

/// Append-only little-endian byte sink (the writer's counterpart).
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void varint(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);

  std::size_t size() const { return out_.size(); }
  const std::vector<std::uint8_t>& data() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// CRC-32 (IEEE 802.3) over a byte slice; guards every segment blob and the
/// TOC so a flipped bit surfaces as SerializeError, not as wrong answers.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

std::uint64_t zigzag_encode(std::int64_t v);
std::int64_t zigzag_decode(std::uint64_t v);

// One column, encoded block-by-block (ceil(n / kBlockRows) blocks, each
// prefixed by a codec tag + encoded length). The integer overloads share a
// template over the value type; doubles get the scaled-delta treatment.
void encode_column(ByteWriter& out, std::span<const std::uint8_t> values);
void encode_column(ByteWriter& out, std::span<const std::uint16_t> values);
void encode_column(ByteWriter& out, std::span<const std::uint32_t> values);
void encode_column(ByteWriter& out, std::span<const std::int32_t> values);
void encode_column(ByteWriter& out, std::span<const double> values);

// Decodes exactly `rows` values; throws core::SerializeError on any
// malformed block. The output vector is sized from `rows` (caller-trusted,
// validated against the TOC), never from file bytes.
std::vector<std::uint8_t> decode_column_u8(ByteReader& in, std::uint32_t rows);
std::vector<std::uint16_t> decode_column_u16(ByteReader& in,
                                             std::uint32_t rows);
std::vector<std::uint32_t> decode_column_u32(ByteReader& in,
                                             std::uint32_t rows);
std::vector<std::int32_t> decode_column_i32(ByteReader& in,
                                            std::uint32_t rows);
std::vector<double> decode_column_f64(ByteReader& in, std::uint32_t rows);

}  // namespace dosm::storage
