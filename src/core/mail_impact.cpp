#include "core/mail_impact.h"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace dosm::core {

MailImpactAnalysis::MailImpactAnalysis(const EventStore& store,
                                       const dns::SnapshotStore& dns)
    : affected_daily_(store.window().num_days()) {
  const auto& window = store.window();

  std::unordered_set<dns::DomainId> day_domains;
  std::unordered_set<dns::DomainId> ever;
  std::unordered_set<std::uint32_t> seen_targets;
  std::map<net::Ipv4Addr, std::uint64_t> involvement_counts;
  int current_day = -1;

  auto flush_day = [&]() {
    if (current_day < 0) return;
    affected_daily_.set(current_day, static_cast<double>(day_domains.size()));
    day_domains.clear();
  };

  for (const auto& event : store.events()) {
    const auto t = static_cast<UnixSeconds>(event.start);
    if (!window.contains(t)) continue;
    const int day = window.day_of(t);
    if (day != current_day) {
      flush_day();
      current_day = day;
    }
    const auto domains = dns.mail_domains_on(event.target, day);
    if (domains.empty()) continue;
    if (seen_targets.insert(event.target.value()).second)
      ++mail_hosting_targets_;
    involvement_counts[event.target] += domains.size();
    for (const auto domain : domains) {
      day_domains.insert(domain);
      ever.insert(domain);
    }
  }
  flush_day();
  affected_domains_ = ever.size();

  dns.for_each_domain([&](dns::DomainId, const dns::DomainEntry& entry) {
    for (const auto& change : entry.changes) {
      if (change.record.mx != dns::kNoName) {
        ++mail_domains_;
        return;
      }
    }
  });

  involvements_.assign(involvement_counts.begin(), involvement_counts.end());
  // std::sort is not stable: count-only ordering scrambles tied addresses
  // once introsort kicks in, so rankings differed run-to-run in the tie
  // region. Tie-break by address for a total order.
  std::sort(involvements_.begin(), involvements_.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first.value() < b.first.value();
            });
}

std::vector<std::pair<net::Ipv4Addr, std::uint64_t>>
MailImpactAnalysis::top_mail_targets(std::size_t n) const {
  auto out = involvements_;
  out.resize(std::min(n, out.size()));
  return out;
}

}  // namespace dosm::core
