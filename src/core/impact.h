// Web-impact analysis (§5): joining attack events against the historical
// DNS mapping to find the Web sites (potentially) affected by every attack.
//
// The join is per event: an attack on IP x starting on day d affects every
// Web site whose www label resolved to x on d. From the joined stream the
// analysis materializes: the daily affected-site series (Figure 7, all and
// medium+ intensity), the co-hosting histogram (Figure 6), the per-domain
// attack histories that §6 consumes, and the protocol-emphasis statistics
// for Web-hosting targets.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.h"
#include "core/event_store.h"
#include "core/ports.h"
#include "dns/snapshot.h"

namespace dosm::core {

/// One attack that touched a domain (compact; millions may exist).
struct AttackTouch {
  std::int32_t day = 0;          // day offset of the attack start
  float norm_intensity = 0.0f;   // per-source normalized intensity
  float duration_s = 0.0f;
  bool honeypot = false;
};

/// A domain's attack history over the window.
struct DomainAttackInfo {
  std::vector<AttackTouch> touches;  // ascending by day

  bool attacked() const { return !touches.empty(); }
  std::uint32_t attack_count() const {
    return static_cast<std::uint32_t>(touches.size());
  }
  int first_attack_day() const { return touches.empty() ? -1 : touches.front().day; }
  double max_norm_intensity() const;
  /// Longest honeypot-observed attack duration (§6 uses honeypot durations
  /// only, since successful attacks truncate telescope durations).
  double max_honeypot_duration() const;
  /// Latest attack day <= `day`, or -1 (the migration-triggering attack).
  int latest_attack_on_or_before(int day) const;
  /// Latest day of a honeypot attack with duration >= `min_s` that starts
  /// on or before `day`, or -1.
  int latest_long_attack_on_or_before(int day, double min_s) const;
};

class ImpactAnalysis {
 public:
  /// Runs the full join. `store` must be finalized; `dns` must have its
  /// reverse index built. References must outlive the analysis.
  ImpactAnalysis(const EventStore& store, const dns::SnapshotStore& dns);

  /// Figure 7: unique Web sites on attacked IPs, per day.
  const DailySeries& affected_daily() const { return affected_daily_; }

  /// Figure 7 bottom: same, medium+ intensity events only.
  const DailySeries& affected_daily_medium() const {
    return affected_daily_medium_;
  }

  /// Figure 6: per attacked hosting IP, the co-hosting magnitude at the
  /// time of its first attack.
  const LogBinHistogram& cohosting_histogram() const { return cohosting_; }

  /// Attacked target IPs that hosted at least one site (572 k analog).
  std::uint64_t web_hosting_targets() const { return web_hosting_targets_; }

  /// Distinct domains ever on an attacked IP (the 134 M / 64% analog).
  std::uint64_t attacked_domains() const { return attacked_domains_; }

  /// Domains that ever had a Web site in the window (denominator of 64%).
  std::uint64_t web_domains() const { return web_domains_; }

  double attacked_domain_fraction() const {
    return web_domains_ ? static_cast<double>(attacked_domains_) /
                              static_cast<double>(web_domains_)
                        : 0.0;
  }

  /// Per-domain attack history (indexed by DomainId).
  const DomainAttackInfo& domain_info(dns::DomainId id) const {
    return info_.at(id);
  }
  std::span<const DomainAttackInfo> all_domain_info() const { return info_; }

  /// §5 protocol emphasis on Web-hosting targets: TCP share of telescope
  /// events (93.4% in the paper, up from 79.4% overall).
  double tcp_share_on_web_targets() const { return tcp_share_; }
  /// Web-port share of single-port TCP events on Web-hosting targets
  /// (87.60%, up from 69.36%).
  double web_port_share_on_web_targets() const { return web_port_share_; }
  /// NTP share of honeypot events on Web-hosting targets (54.69%).
  double ntp_share_on_web_targets() const { return ntp_share_; }

  /// Days with the largest affected-site counts (the §5 peak case studies),
  /// descending by count.
  std::vector<std::pair<int, double>> top_peaks(std::size_t n) const;

 private:
  const EventStore& store_;
  const dns::SnapshotStore& dns_;

  DailySeries affected_daily_;
  DailySeries affected_daily_medium_;
  LogBinHistogram cohosting_;
  std::vector<DomainAttackInfo> info_;
  std::uint64_t web_hosting_targets_ = 0;
  std::uint64_t attacked_domains_ = 0;
  std::uint64_t web_domains_ = 0;
  double tcp_share_ = 0.0;
  double web_port_share_ = 0.0;
  double ntp_share_ = 0.0;
};

}  // namespace dosm::core
