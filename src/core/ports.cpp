#include "core/ports.h"

#include <algorithm>
#include <map>

#include "net/headers.h"

namespace dosm::core {

std::string service_name(std::uint16_t port, bool tcp) {
  switch (port) {
    case 80:
      return "HTTP";
    case 443:
      return "HTTPS";
    case 3306:
      return "MySQL";
    case 53:
      return "DNS";
    case 1723:
      return "VPN PPTP";
    case 22:
      return "SSH";
    case 25:
      return "SMTP";
    case 123:
      return tcp ? "123" : "NTP";
    case 138:
      return tcp ? "138" : "NetBIOS";
    case 6667:
      return "IRC";
    case 8080:
      return "HTTP-alt";
    default:
      // Game ports the paper surfaces in Table 8b stay numeric (27015 is
      // Source-engine/Steam); other unknown ports also render numerically.
      return std::to_string(port);
  }
}

bool is_web_port(std::uint16_t port) { return port == 80 || port == 443; }

std::vector<ProtocolShare> ip_protocol_distribution(const EventStore& store) {
  std::uint64_t tcp = 0, udp = 0, icmp = 0, other = 0, total = 0;
  for (const auto& event : store.events()) {
    if (!event.is_telescope()) continue;
    ++total;
    switch (static_cast<net::IpProto>(event.ip_proto)) {
      case net::IpProto::kTcp:
        ++tcp;
        break;
      case net::IpProto::kUdp:
        ++udp;
        break;
      case net::IpProto::kIcmp:
        ++icmp;
        break;
      default:
        ++other;
        break;
    }
  }
  auto share = [total](std::uint64_t n) {
    return total ? static_cast<double>(n) / static_cast<double>(total) : 0.0;
  };
  return {{"TCP", tcp, share(tcp)},
          {"UDP", udp, share(udp)},
          {"ICMP", icmp, share(icmp)},
          {"Other", other, share(other)}};
}

std::vector<ProtocolShare> reflection_distribution(const EventStore& store) {
  std::map<amppot::ReflectionProtocol, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const auto& event : store.events()) {
    if (!event.is_honeypot()) continue;
    ++counts[event.reflection];
    ++total;
  }
  std::vector<std::pair<amppot::ReflectionProtocol, std::uint64_t>> ranked(
      counts.begin(), counts.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  std::vector<ProtocolShare> out;
  std::uint64_t other = 0;
  constexpr std::size_t kNamed = 5;  // Table 6 names five vectors
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (i < kNamed && ranked[i].first != amppot::ReflectionProtocol::kOther) {
      out.push_back({amppot::to_string(ranked[i].first), ranked[i].second,
                     total ? static_cast<double>(ranked[i].second) /
                                 static_cast<double>(total)
                           : 0.0});
    } else {
      other += ranked[i].second;
    }
  }
  out.push_back({"Other", other,
                 total ? static_cast<double>(other) / static_cast<double>(total)
                       : 0.0});
  return out;
}

PortCardinality port_cardinality(std::span<const AttackEvent> events) {
  PortCardinality out;
  for (const auto& event : events) {
    if (!event.is_telescope() || event.num_ports == 0) continue;
    if (event.num_ports == 1)
      ++out.single_port;
    else
      ++out.multi_port;
  }
  return out;
}

std::vector<ProtocolShare> service_distribution(
    std::span<const AttackEvent> events, bool tcp, std::size_t top_n) {
  const auto wanted = tcp ? net::IpProto::kTcp : net::IpProto::kUdp;
  std::map<std::uint16_t, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const auto& event : events) {
    if (!event.is_telescope() || !event.single_port()) continue;
    if (event.ip_proto != static_cast<std::uint8_t>(wanted)) continue;
    ++counts[event.top_port];
    ++total;
  }
  std::vector<std::pair<std::uint16_t, std::uint64_t>> ranked(counts.begin(),
                                                              counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<ProtocolShare> out;
  std::uint64_t other = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (i < top_n) {
      out.push_back({service_name(ranked[i].first, tcp), ranked[i].second,
                     total ? static_cast<double>(ranked[i].second) /
                                 static_cast<double>(total)
                           : 0.0});
    } else {
      other += ranked[i].second;
    }
  }
  out.push_back({"Other", other,
                 total ? static_cast<double>(other) / static_cast<double>(total)
                       : 0.0});
  return out;
}

double web_port_share(std::span<const AttackEvent> events) {
  std::uint64_t web = 0, total = 0;
  for (const auto& event : events) {
    if (!event.is_telescope() || !event.single_port()) continue;
    if (event.ip_proto != static_cast<std::uint8_t>(net::IpProto::kTcp)) continue;
    ++total;
    if (is_web_port(event.top_port)) ++web;
  }
  return total ? static_cast<double>(web) / static_cast<double>(total) : 0.0;
}

}  // namespace dosm::core
