#include "core/alert.h"

namespace dosm::core {

std::string to_string(AlertKind kind) {
  switch (kind) {
    case AlertKind::kNewAttack:
      return "new-attack";
    case AlertKind::kAttackSpike:
      return "attack-spike";
    case AlertKind::kTargetSpike:
      return "target-spike";
  }
  return "unknown";
}

std::optional<AlertKind> parse_alert_kind(std::string_view name) {
  if (name == "new-attack") return AlertKind::kNewAttack;
  if (name == "attack-spike") return AlertKind::kAttackSpike;
  if (name == "target-spike") return AlertKind::kTargetSpike;
  return std::nullopt;
}

Alert event_alert(const AttackEvent& event, int day, meta::Asn asn,
                  meta::CountryCode country) {
  Alert alert;
  alert.kind = AlertKind::kNewAttack;
  alert.day = day;
  alert.has_event = true;
  alert.event = event;
  alert.asn = asn;
  alert.country = country;
  return alert;
}

Alert spike_alert(AlertKind kind, int day, double value, double baseline) {
  Alert alert;
  alert.kind = kind;
  alert.day = day;
  alert.value = value;
  alert.baseline = baseline;
  return alert;
}

}  // namespace dosm::core
