#include "core/attribution.h"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace dosm::core {

std::vector<PeakParty> attribute_peak(const EventStore& store,
                                      const dns::SnapshotStore& dns,
                                      const dns::NameTable& names, int day,
                                      const meta::PrefixToAsMap& pfx2as,
                                      const meta::AsRegistry& registry) {
  struct Accumulator {
    std::unordered_set<std::uint32_t> ips;
    std::unordered_set<dns::DomainId> sites;
    std::map<dns::NameId, std::uint64_t> ns_votes;
    bool joint = false;
  };
  std::map<meta::Asn, Accumulator> parties;

  const auto& window = store.window();
  for (const auto& event : store.events()) {
    const auto t = static_cast<UnixSeconds>(event.start);
    if (!window.contains(t) || window.day_of(t) != day) continue;
    const auto sites = dns.sites_on(event.target, day);
    if (sites.empty()) continue;
    const auto asn = pfx2as.origin(event.target);
    auto& party = parties[asn];
    party.ips.insert(event.target.value());
    for (const auto site : sites) {
      party.sites.insert(site);
      const auto record = dns.record_on(site, day);
      if (record && record->ns != dns::kNoName) ++party.ns_votes[record->ns];
    }
    // Joint attack on this IP today: overlapping event from the other source.
    for (const auto i : store.events_for(event.target)) {
      const auto& other = store.events()[i];
      if (other.source != event.source && event.overlaps(other)) {
        party.joint = true;
        break;
      }
    }
  }

  std::vector<PeakParty> out;
  out.reserve(parties.size());
  for (const auto& [asn, acc] : parties) {
    PeakParty party;
    party.asn = asn;
    party.name = asn == meta::kUnknownAsn ? "(unrouted)" : registry.name(asn);
    party.attacked_ips = acc.ips.size();
    party.affected_sites = acc.sites.size();
    party.joint_attacked = acc.joint;
    // A shared NS across >60% of the party's sites identifies the hoster
    // even when routing points elsewhere (the paper's AWS/CNAME caveat).
    std::uint64_t best = 0, total = 0;
    dns::NameId best_ns = dns::kNoName;
    for (const auto& [ns, votes] : acc.ns_votes) {
      total += votes;
      if (votes > best) {
        best = votes;
        best_ns = ns;
      }
    }
    if (best_ns != dns::kNoName && total > 0 &&
        static_cast<double>(best) > 0.6 * static_cast<double>(total)) {
      party.common_ns = names.name(best_ns);
    }
    out.push_back(std::move(party));
  }
  std::sort(out.begin(), out.end(), [](const PeakParty& a, const PeakParty& b) {
    if (a.affected_sites != b.affected_sites)
      return a.affected_sites > b.affected_sites;
    return a.asn < b.asn;
  });
  return out;
}

}  // namespace dosm::core
