#include "core/migration_analysis.h"

#include <algorithm>

namespace dosm::core {

MigrationAnalysis::MigrationAnalysis(
    const ImpactAnalysis& impact,
    std::span<const dps::ProtectionTimeline> timelines)
    : impact_(impact), timelines_(timelines) {
  const auto all_info = impact.all_domain_info();
  for (dns::DomainId id = 0; id < all_info.size(); ++id) {
    const auto& info = all_info[id];
    if (!info.attacked()) continue;
    attack_counts_all_.add(static_cast<double>(info.attack_count()));
    site_intensities_.add(info.max_norm_intensity());

    const auto& timeline = timelines_[id];
    if (timeline.preexisting || !timeline.first_protected_day) continue;
    const int migration_day = *timeline.first_protected_day;
    const int trigger = info.latest_attack_on_or_before(migration_day);
    if (trigger < 0) continue;  // protected before any observed attack

    attack_counts_migrating_.add(static_cast<double>(info.attack_count()));
    MigrationCase mc;
    mc.domain = id;
    mc.migration_day = migration_day;
    mc.trigger_attack_day = trigger;
    mc.delay_days = migration_day - trigger;
    mc.site_max_intensity = info.max_norm_intensity();
    cases_.push_back(mc);
  }
}

EmpiricalDistribution MigrationAnalysis::delays_for_intensity_class(
    double top_fraction) const {
  EmpiricalDistribution delays;
  if (cases_.empty()) return delays;
  double threshold = 0.0;
  if (top_fraction < 1.0 && !site_intensities_.empty()) {
    threshold = site_intensities_.percentile(100.0 * (1.0 - top_fraction));
  }
  for (const auto& mc : cases_) {
    if (mc.site_max_intensity >= threshold)
      delays.add(static_cast<double>(mc.delay_days));
  }
  return delays;
}

EmpiricalDistribution MigrationAnalysis::delays_for_long_attacks(
    double min_duration_s) const {
  EmpiricalDistribution delays;
  for (const auto& mc : cases_) {
    const auto& info = impact_.domain_info(mc.domain);
    const int long_attack =
        info.latest_long_attack_on_or_before(mc.migration_day, min_duration_s);
    if (long_attack < 0) continue;
    delays.add(static_cast<double>(mc.migration_day - long_attack));
  }
  return delays;
}

double MigrationAnalysis::fraction_within(const EmpiricalDistribution& delays,
                                          int days) {
  if (delays.empty()) return 0.0;
  return delays.cdf(static_cast<double>(days));
}

}  // namespace dosm::core
