// Unified alert model (§9).
//
// Every alert producer in the repo — the streaming fusion spike detector,
// the detectors' event output when lifted into notifications, and any
// future anomaly source — emits the one `Alert` struct below into an
// `AlertSink`. Consumers (CLI printers, test collectors, the subscription
// dispatcher in src/subscribe/) implement the sink interface instead of
// each producer growing a bespoke callback type. This replaces the old
// `StreamAlert` + `AlertCallback` pair that was private to streaming.h.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/event.h"
#include "meta/geo.h"
#include "meta/pfx2as.h"

namespace dosm::core {

/// What happened. Spike kinds compare a day's activity against its trailing
/// baseline; kNewAttack wraps a single detected attack event.
enum class AlertKind : std::uint8_t {
  kNewAttack,    // a detected attack event (carries the event payload)
  kAttackSpike,  // the day's attack count spiked vs the trailing baseline
  kTargetSpike,  // the day's unique-target count spiked
};

std::string to_string(AlertKind kind);

/// Inverse of to_string; nullopt for unrecognized names.
std::optional<AlertKind> parse_alert_kind(std::string_view name);

/// One alert. For kNewAttack, `has_event` is true and `event`, `asn`, and
/// `country` describe the victim (asn/country resolved at dispatch time;
/// kUnknownAsn / empty country when unresolvable). Spike alerts have no
/// victim: `has_event` is false and the event/asn/country fields hold their
/// zero values.
struct Alert {
  AlertKind kind = AlertKind::kNewAttack;
  int day = 0;           // offset within the study window
  double value = 0.0;    // spike kinds: the day's value
  double baseline = 0.0; // spike kinds: trailing mean it exceeded
  bool has_event = false;
  AttackEvent event{};
  meta::Asn asn = meta::kUnknownAsn;
  meta::CountryCode country{};
};

/// Builds a kNewAttack alert around one detected event.
Alert event_alert(const AttackEvent& event, int day, meta::Asn asn,
                  meta::CountryCode country);

/// Builds a spike alert (kAttackSpike / kTargetSpike).
Alert spike_alert(AlertKind kind, int day, double value, double baseline);

/// The one alert-consumer interface. Producers call on_alert for each alert
/// in emission order; implementations must tolerate being called from the
/// producer's thread.
class AlertSink {
 public:
  virtual ~AlertSink() = default;
  virtual void on_alert(const Alert& alert) = 0;
};

/// Sink that collects alerts into a vector, for tests and batch analysis.
class CollectSink final : public AlertSink {
 public:
  void on_alert(const Alert& alert) override { alerts_.push_back(alert); }
  const std::vector<Alert>& alerts() const { return alerts_; }
  void clear() { alerts_.clear(); }

 private:
  std::vector<Alert> alerts_;
};

}  // namespace dosm::core
