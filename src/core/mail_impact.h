// Mail-infrastructure impact (§8 future work, implemented).
//
// The paper observes that MX hosts — e.g. GoDaddy's shared mail exchangers,
// used by tens of millions of domains — are frequently attacked, and
// proposes studying the impact of DoS on mail infrastructure; the authors
// instrumented their measurement to collect the needed RRs. This analysis
// is the Web-impact join transposed to MX records: an attack on IP x on day
// d (potentially) affects mail delivery for every domain whose MX host
// resolved to x that day.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "core/event_store.h"
#include "dns/snapshot.h"

namespace dosm::core {

class MailImpactAnalysis {
 public:
  /// Runs the join. `store` must be finalized; `dns` must have its reverse
  /// index built. References must outlive the analysis.
  MailImpactAnalysis(const EventStore& store, const dns::SnapshotStore& dns);

  /// Unique domains whose mail infrastructure sat on an attacked IP, per
  /// day.
  const DailySeries& affected_daily() const { return affected_daily_; }

  /// Distinct domains whose MX host was ever on an attacked IP.
  std::uint64_t affected_domains() const { return affected_domains_; }

  /// Domains that ever published an MX record (the denominator).
  std::uint64_t mail_domains() const { return mail_domains_; }

  double affected_fraction() const {
    return mail_domains_ ? static_cast<double>(affected_domains_) /
                               static_cast<double>(mail_domains_)
                         : 0.0;
  }

  /// Attacked IPs that served mail for at least one domain.
  std::uint64_t mail_hosting_targets() const { return mail_hosting_targets_; }

  /// Per-IP share of all (domain x attack) mail involvements, descending —
  /// identifies the heavily shared exchangers (the GoDaddy-mail analog).
  std::vector<std::pair<net::Ipv4Addr, std::uint64_t>> top_mail_targets(
      std::size_t n) const;

 private:
  DailySeries affected_daily_;
  std::uint64_t affected_domains_ = 0;
  std::uint64_t mail_domains_ = 0;
  std::uint64_t mail_hosting_targets_ = 0;
  std::vector<std::pair<net::Ipv4Addr, std::uint64_t>> involvements_;
};

}  // namespace dosm::core
