#include "core/serialize.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "obs/metrics.h"

namespace dosm::core {

namespace {

// Each record is 56 bytes of explicit little-endian fields (see the write
// sequence below); byte-by-byte encoding keeps the format portable across
// hosts regardless of struct padding or endianness.
inline constexpr std::size_t kWireEventBytes = 56;

// Upper bound on the up-front vector reserve in read_events. The header's
// count field is attacker-controlled until the records actually parse, so a
// corrupt dump must not get to pre-allocate count * sizeof(AttackEvent)
// bytes (count=0xFFFFFFFF would be a ~240 GB allocation). Past this bound
// the vector grows geometrically as records prove themselves real.
inline constexpr std::size_t kMaxUpfrontReserve = 65536;

struct SerializeMetrics {
  obs::Counter& events_written;
  obs::Counter& events_read;
  obs::Counter& read_failures;

  static SerializeMetrics& get() {
    static SerializeMetrics metrics = [] {
      auto& reg = obs::MetricsRegistry::global();
      return SerializeMetrics{
          reg.counter("serialize.events_written",
                      "Events written to binary dumps"),
          reg.counter("serialize.events_read",
                      "Events parsed from binary dumps"),
          reg.counter("serialize.read_failures",
                      "Dump reads rejected as truncated or corrupt"),
      };
    }();
    return metrics;
  }
};

template <typename T>
void put_le(std::ostream& out, T value) {
  std::uint8_t bytes[sizeof(T)];
  std::uint64_t raw;
  if constexpr (sizeof(T) == 8 && std::is_floating_point_v<T>) {
    std::memcpy(&raw, &value, 8);
  } else {
    raw = static_cast<std::uint64_t>(value);
  }
  for (std::size_t i = 0; i < sizeof(T); ++i)
    bytes[i] = static_cast<std::uint8_t>((raw >> (8 * i)) & 0xff);
  out.write(reinterpret_cast<const char*>(bytes), sizeof(T));
}

template <typename T>
T get_le(std::istream& in) {
  std::uint8_t bytes[sizeof(T)];
  in.read(reinterpret_cast<char*>(bytes), sizeof(T));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(T)))
    throw SerializeError("event dump truncated");
  std::uint64_t raw = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    raw |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  if constexpr (sizeof(T) == 8 && std::is_floating_point_v<T>) {
    T value;
    std::memcpy(&value, &raw, 8);
    return value;
  } else {
    return static_cast<T>(raw);
  }
}

}  // namespace

void write_events(std::ostream& out, std::span<const AttackEvent> events) {
  if (events.size() > std::size_t{0xffffffff})
    throw SerializeError(
        "event dump: too many events for the 32-bit count field");
  out.write(kEventFileMagic, sizeof(kEventFileMagic));
  put_le<std::uint32_t>(out, static_cast<std::uint32_t>(events.size()));
  for (const auto& event : events) {
    put_le<std::uint8_t>(out, static_cast<std::uint8_t>(event.source));
    put_le<std::uint8_t>(out, event.ip_proto);
    put_le<std::uint8_t>(out, static_cast<std::uint8_t>(event.reflection));
    put_le<std::uint8_t>(out, 0);
    put_le<std::uint32_t>(out, event.target.value());
    put_le<double>(out, event.start);
    put_le<double>(out, event.end);
    put_le<double>(out, event.intensity);
    put_le<std::uint64_t>(out, event.packets);
    put_le<std::uint16_t>(out, event.num_ports);
    put_le<std::uint16_t>(out, event.top_port);
    put_le<std::uint32_t>(out, event.unique_sources);
    put_le<std::uint32_t>(out, event.honeypots);
    put_le<std::uint32_t>(out, 0);
  }
  if (!out) throw SerializeError("event dump write failed");
  SerializeMetrics::get().events_written.add(events.size());
}

std::vector<AttackEvent> read_events(std::istream& in) try {
  char magic[sizeof(kEventFileMagic)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kEventFileMagic, sizeof(magic)) != 0)
    throw SerializeError("not a dosmeter event dump (bad magic)");
  const auto count = get_le<std::uint32_t>(in);
  std::vector<AttackEvent> events;
  events.reserve(std::min<std::size_t>(count, kMaxUpfrontReserve));
  for (std::uint32_t i = 0; i < count; ++i) {
    AttackEvent event;
    const auto source = get_le<std::uint8_t>(in);
    if (source > 1)
      throw SerializeError("event dump corrupt: bad source tag");
    event.source = static_cast<EventSource>(source);
    event.ip_proto = get_le<std::uint8_t>(in);
    const auto reflection = get_le<std::uint8_t>(in);
    if (reflection > static_cast<std::uint8_t>(amppot::ReflectionProtocol::kOther))
      throw SerializeError("event dump corrupt: bad reflection tag");
    event.reflection = static_cast<amppot::ReflectionProtocol>(reflection);
    get_le<std::uint8_t>(in);  // pad
    event.target = net::Ipv4Addr(get_le<std::uint32_t>(in));
    event.start = get_le<double>(in);
    event.end = get_le<double>(in);
    event.intensity = get_le<double>(in);
    event.packets = get_le<std::uint64_t>(in);
    event.num_ports = get_le<std::uint16_t>(in);
    event.top_port = get_le<std::uint16_t>(in);
    event.unique_sources = get_le<std::uint32_t>(in);
    event.honeypots = get_le<std::uint32_t>(in);
    get_le<std::uint32_t>(in);  // pad
    events.push_back(event);
  }
  SerializeMetrics::get().events_read.add(events.size());
  return events;
} catch (...) {
  SerializeMetrics::get().read_failures.inc();
  throw;
}

void save_events(const std::string& path, std::span<const AttackEvent> events) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SerializeError("cannot open " + path + " for writing");
  write_events(out, events);
}

std::vector<AttackEvent> load_events(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializeError("cannot open " + path);
  auto events = read_events(in);
  // A concatenated or garbage-suffixed dump must fail loudly rather than
  // silently parse its first section.
  if (in.peek() != std::ifstream::traits_type::eof()) {
    SerializeMetrics::get().read_failures.inc();
    throw SerializeError("event dump corrupt: trailing bytes after last "
                             "record in " + path);
  }
  return events;
}

}  // namespace dosm::core
