#include "core/streaming.h"

#include <numeric>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"

namespace dosm::core {
namespace {

struct FusionMetrics {
  obs::Counter& events_ingested;
  obs::Counter& out_of_window;
  obs::Counter& days_emitted;
  obs::Counter& gap_days;
  obs::Counter& alerts_attack_spike;
  obs::Counter& alerts_target_spike;

  static FusionMetrics& get() {
    static FusionMetrics metrics = [] {
      auto& reg = obs::MetricsRegistry::global();
      return FusionMetrics{
          reg.counter("fusion.events_ingested",
                      "Events accepted by the streaming fusion layer"),
          reg.counter("fusion.out_of_window",
                      "Events dropped for falling outside the study window"),
          reg.counter("fusion.days_emitted", "Day summaries emitted"),
          reg.counter("fusion.gap_days",
                      "Idle catch-up days excluded from the alert baseline"),
          reg.counter("fusion.alerts.attack_spike",
                      "Attack-count spike alerts fired"),
          reg.counter("fusion.alerts.target_spike",
                      "Unique-target spike alerts fired"),
      };
    }();
    return metrics;
  }
};

}  // namespace

StreamingFusion::StreamingFusion(StudyWindow window, Config config,
                                 SummaryCallback on_summary,
                                 AlertSink* alert_sink)
    : window_(window),
      config_(config),
      on_summary_(std::move(on_summary)),
      alert_sink_(alert_sink) {
  if (!on_summary_)
    throw std::invalid_argument("StreamingFusion: summary callback required");
  if (config_.baseline_days < 1)
    throw std::invalid_argument(
        "StreamingFusion: baseline_days must be > 0, got " +
        std::to_string(config_.baseline_days));
  if (!(config_.spike_factor > 1.0))
    throw std::invalid_argument(
        "StreamingFusion: spike_factor must be > 1.0 (a spike must exceed "
        "its own baseline), got " + std::to_string(config_.spike_factor));
  if (config_.min_baseline_days < 1 ||
      config_.min_baseline_days > config_.baseline_days)
    throw std::invalid_argument(
        "StreamingFusion: min_baseline_days must be in [1, baseline_days=" +
        std::to_string(config_.baseline_days) + "], got " +
        std::to_string(config_.min_baseline_days));
}

void StreamingFusion::ingest(const AttackEvent& event) {
  if (event.start < last_start_)
    throw std::invalid_argument(
        "StreamingFusion::ingest: events must arrive in time order");
  last_start_ = event.start;

  const auto t = static_cast<UnixSeconds>(event.start);
  if (!window_.contains(t)) {
    FusionMetrics::get().out_of_window.inc();
    return;
  }
  const int day = window_.day_of(t);
  if (current_day_ >= 0 && day < current_day_)
    throw std::invalid_argument("StreamingFusion::ingest: day went backwards");
  while (current_day_ >= 0 && day > current_day_) {
    close_day();
    ++current_day_;
    pending_ = DaySummary{};
    pending_.day = current_day_;
  }
  if (current_day_ < 0) {
    current_day_ = day;
    pending_ = DaySummary{};
    pending_.day = day;
  }

  ++events_ingested_;
  FusionMetrics::get().events_ingested.inc();
  ++pending_.attacks;
  if (event.is_telescope())
    ++pending_.telescope_attacks;
  else
    ++pending_.honeypot_attacks;
  const auto source_bit =
      static_cast<std::uint8_t>(event.is_telescope() ? 1 : 2);
  day_targets_[event.target.value()] |= source_bit;
}

void StreamingFusion::close_day() {
  pending_.unique_targets = day_targets_.size();
  for (const auto& [target, mask] : day_targets_) {
    if (mask == 3) ++pending_.co_targeted;
  }
  day_targets_.clear();

  // Spike detection against the trailing baseline (before appending the
  // new value, so a spike does not mask itself). Days with zero attacks can
  // only be idle catch-up days synthesized by the ingest loop (a day with a
  // real event always counts it before closing); folding their zeros into
  // the baseline would drag the trailing mean toward zero during a lull and
  // make the first ordinary day afterwards fire a spurious spike alert, so
  // they are emitted as summaries but kept out of the histories entirely.
  if (pending_.attacks == 0) {
    FusionMetrics::get().gap_days.inc();
  } else {
    check_spike(AlertKind::kAttackSpike, static_cast<double>(pending_.attacks),
                attack_history_);
    check_spike(AlertKind::kTargetSpike,
                static_cast<double>(pending_.unique_targets), target_history_);
  }

  on_summary_(pending_);
  ++days_emitted_;
  FusionMetrics::get().days_emitted.inc();
}

void StreamingFusion::check_spike(AlertKind kind, double value,
                                  std::deque<double>& history) {
  if (static_cast<int>(history.size()) >= config_.min_baseline_days &&
      alert_sink_ != nullptr) {
    const double mean =
        std::accumulate(history.begin(), history.end(), 0.0) /
        static_cast<double>(history.size());
    if (mean > 0.0 && value > config_.spike_factor * mean) {
      alert_sink_->on_alert(spike_alert(kind, pending_.day, value, mean));
      ++alerts_fired_;
      if (kind == AlertKind::kAttackSpike)
        FusionMetrics::get().alerts_attack_spike.inc();
      else
        FusionMetrics::get().alerts_target_spike.inc();
    }
  }
  history.push_back(value);
  while (static_cast<int>(history.size()) > config_.baseline_days)
    history.pop_front();
}

void StreamingFusion::finish() {
  if (current_day_ >= 0) close_day();
  current_day_ = -1;
}

}  // namespace dosm::core
