#include "core/impact.h"

#include <algorithm>
#include <unordered_set>

#include "net/headers.h"

namespace dosm::core {

double DomainAttackInfo::max_norm_intensity() const {
  double max = 0.0;
  for (const auto& touch : touches)
    max = std::max(max, static_cast<double>(touch.norm_intensity));
  return max;
}

double DomainAttackInfo::max_honeypot_duration() const {
  double max = 0.0;
  for (const auto& touch : touches)
    if (touch.honeypot) max = std::max(max, static_cast<double>(touch.duration_s));
  return max;
}

int DomainAttackInfo::latest_attack_on_or_before(int day) const {
  int best = -1;
  for (const auto& touch : touches) {
    if (touch.day > day) break;  // touches ascend by day
    best = touch.day;
  }
  return best;
}

int DomainAttackInfo::latest_long_attack_on_or_before(int day, double min_s) const {
  int best = -1;
  for (const auto& touch : touches) {
    if (touch.day > day) break;
    if (touch.honeypot && static_cast<double>(touch.duration_s) >= min_s) best = touch.day;
  }
  return best;
}

ImpactAnalysis::ImpactAnalysis(const EventStore& store,
                               const dns::SnapshotStore& dns)
    : store_(store),
      dns_(dns),
      affected_daily_(store.window().num_days()),
      affected_daily_medium_(store.window().num_days()),
      cohosting_(7),
      info_(dns.num_domains()) {
  const auto& window = store.window();
  const auto events = store.events();

  // Per-day distinct affected domains. Events are time-ordered after
  // finalize(), so a single sweep keeps only the current day's sets alive.
  std::unordered_set<dns::DomainId> day_sites, day_sites_medium;
  int current_day = -1;
  auto flush_day = [&]() {
    if (current_day < 0) return;
    affected_daily_.set(current_day, static_cast<double>(day_sites.size()));
    affected_daily_medium_.set(current_day,
                               static_cast<double>(day_sites_medium.size()));
    day_sites.clear();
    day_sites_medium.clear();
  };

  // Co-hosting: first-attack snapshot per target IP.
  std::unordered_set<std::uint32_t> seen_targets;

  std::uint64_t telescope_on_web = 0, tcp_on_web = 0;
  std::uint64_t single_tcp_on_web = 0, webport_on_web = 0;
  std::uint64_t honeypot_on_web = 0, ntp_on_web = 0;

  for (const auto& event : events) {
    const auto t = static_cast<UnixSeconds>(event.start);
    if (!window.contains(t)) continue;
    const int day = window.day_of(t);
    if (day != current_day) {
      flush_day();
      current_day = day;
    }

    const auto sites = dns_.sites_on(event.target, day);
    const bool first_time = seen_targets.insert(event.target.value()).second;
    if (first_time && !sites.empty()) {
      ++web_hosting_targets_;
      cohosting_.add(sites.size());
    }
    if (sites.empty()) continue;

    // Protocol emphasis on Web-hosting targets.
    if (event.is_telescope()) {
      ++telescope_on_web;
      if (event.ip_proto == static_cast<std::uint8_t>(net::IpProto::kTcp)) {
        ++tcp_on_web;
        if (event.single_port()) {
          ++single_tcp_on_web;
          if (is_web_port(event.top_port)) ++webport_on_web;
        }
      }
    } else {
      ++honeypot_on_web;
      if (event.reflection == amppot::ReflectionProtocol::kNtp) ++ntp_on_web;
    }

    const bool medium = store_.is_medium_or_higher(event);
    const auto norm =
        static_cast<float>(store_.normalized_intensity(event));
    const auto duration = static_cast<float>(event.duration());
    for (const auto domain : sites) {
      day_sites.insert(domain);
      if (medium) day_sites_medium.insert(domain);
      info_[domain].touches.push_back(
          {day, norm, duration, event.is_honeypot()});
    }
  }
  flush_day();

  for (dns::DomainId id = 0; id < info_.size(); ++id) {
    auto& touches = info_[id].touches;
    // Touches were appended in event-start order, hence already day-sorted.
    if (!touches.empty()) ++attacked_domains_;
  }

  // Denominator: domains that ever had a Web site.
  dns_.for_each_domain([&](dns::DomainId, const dns::DomainEntry& entry) {
    for (const auto& change : entry.changes) {
      if (change.record.has_website()) {
        ++web_domains_;
        return;
      }
    }
  });

  tcp_share_ = telescope_on_web
                   ? static_cast<double>(tcp_on_web) /
                         static_cast<double>(telescope_on_web)
                   : 0.0;
  web_port_share_ = single_tcp_on_web
                        ? static_cast<double>(webport_on_web) /
                              static_cast<double>(single_tcp_on_web)
                        : 0.0;
  ntp_share_ = honeypot_on_web ? static_cast<double>(ntp_on_web) /
                                     static_cast<double>(honeypot_on_web)
                               : 0.0;
}

std::vector<std::pair<int, double>> ImpactAnalysis::top_peaks(std::size_t n) const {
  std::vector<std::pair<int, double>> days;
  for (int d = 0; d < affected_daily_.num_days(); ++d)
    days.emplace_back(d, affected_daily_.at(d));
  std::sort(days.begin(), days.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  days.resize(std::min(n, days.size()));
  return days;
}

}  // namespace dosm::core
