#include "core/event_store.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <unordered_set>

namespace dosm::core {

bool matches(SourceFilter filter, EventSource source) {
  switch (filter) {
    case SourceFilter::kTelescope:
      return source == EventSource::kTelescope;
    case SourceFilter::kHoneypot:
      return source == EventSource::kHoneypot;
    case SourceFilter::kCombined:
      return true;
  }
  return false;
}

std::string to_string(SourceFilter filter) {
  switch (filter) {
    case SourceFilter::kTelescope:
      return "Network Telescope";
    case SourceFilter::kHoneypot:
      return "Amplification Honeypot";
    case SourceFilter::kCombined:
      return "Combined";
  }
  return "Unknown";
}

EventStore::EventStore(StudyWindow window) : window_(window) {}

void EventStore::add(AttackEvent event) {
  events_.push_back(event);
  finalized_ = false;
}

void EventStore::add_telescope(std::span<const telescope::TelescopeEvent> events) {
  events_.reserve(events_.size() + events.size());
  for (const auto& e : events) add(from_telescope(e));
}

void EventStore::add_amppot(std::span<const amppot::AmpPotEvent> events) {
  events_.reserve(events_.size() + events.size());
  for (const auto& e : events) add(from_amppot(e));
}

void EventStore::finalize() {
  std::sort(events_.begin(), events_.end(),
            [](const AttackEvent& a, const AttackEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.target < b.target;
            });
  by_target_.clear();
  double sum[2] = {0.0, 0.0};
  std::uint64_t count[2] = {0, 0};
  max_intensity_[0] = max_intensity_[1] = 0.0;
  for (std::uint32_t i = 0; i < events_.size(); ++i) {
    const auto& event = events_[i];
    by_target_[event.target].push_back(i);
    const auto s = static_cast<std::size_t>(event.source);
    max_intensity_[s] = std::max(max_intensity_[s], event.intensity);
    sum[s] += event.intensity;
    ++count[s];
  }
  for (int s = 0; s < 2; ++s)
    mean_intensity_[s] = count[s] ? sum[s] / static_cast<double>(count[s]) : 0.0;
  finalized_ = true;
}

void EventStore::require_finalized(const char* what) const {
  if (!finalized_)
    throw std::logic_error(std::string("EventStore::") + what +
                           ": call finalize() first");
}

std::span<const std::uint32_t> EventStore::events_for(net::Ipv4Addr target) const {
  require_finalized("events_for");
  const auto it = by_target_.find(target);
  if (it == by_target_.end()) return {};
  return it->second;
}

std::vector<net::Ipv4Addr> EventStore::targets(SourceFilter filter) const {
  require_finalized("targets");
  std::vector<net::Ipv4Addr> out;
  for (const auto& [target, indices] : by_target_) {
    for (std::uint32_t i : indices) {
      if (matches(filter, events_[i].source)) {
        out.push_back(target);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

DatasetSummary EventStore::summarize(SourceFilter filter,
                                     const meta::PrefixToAsMap& pfx2as) const {
  DatasetSummary summary;
  std::unordered_set<std::uint32_t> targets, slash24, slash16;
  std::unordered_set<meta::Asn> asns;
  for (const auto& event : events_) {
    if (!matches(filter, event.source)) continue;
    ++summary.events;
    targets.insert(event.target.value());
    slash24.insert(event.target.slash24().value());
    slash16.insert(event.target.slash16().value());
    const auto asn = pfx2as.origin(event.target);
    if (asn != meta::kUnknownAsn) asns.insert(asn);
  }
  summary.unique_targets = targets.size();
  summary.unique_slash24 = slash24.size();
  summary.unique_slash16 = slash16.size();
  summary.unique_asns = asns.size();
  return summary;
}

DailyBreakdown EventStore::daily_breakdown(SourceFilter filter,
                                           const meta::PrefixToAsMap& pfx2as,
                                           bool medium_or_higher_only) const {
  require_finalized("daily_breakdown");
  const int days = window_.num_days();
  DailyBreakdown breakdown(days);
  std::vector<std::unordered_set<std::uint32_t>> targets(
      static_cast<std::size_t>(days));
  std::vector<std::unordered_set<std::uint32_t>> slash16(
      static_cast<std::size_t>(days));
  std::vector<std::unordered_set<meta::Asn>> asns(static_cast<std::size_t>(days));

  for (const auto& event : events_) {
    if (!matches(filter, event.source)) continue;
    if (medium_or_higher_only && !is_medium_or_higher(event)) continue;
    const auto t = static_cast<UnixSeconds>(event.start);
    if (!window_.contains(t)) continue;
    const int day = window_.day_of(t);
    breakdown.attacks.add(day, 1.0);
    const auto d = static_cast<std::size_t>(day);
    targets[d].insert(event.target.value());
    slash16[d].insert(event.target.slash16().value());
    const auto asn = pfx2as.origin(event.target);
    if (asn != meta::kUnknownAsn) asns[d].insert(asn);
  }
  for (int d = 0; d < days; ++d) {
    const auto i = static_cast<std::size_t>(d);
    breakdown.unique_targets.set(d, static_cast<double>(targets[i].size()));
    breakdown.targeted_slash16.set(d, static_cast<double>(slash16[i].size()));
    breakdown.targeted_asns.set(d, static_cast<double>(asns[i].size()));
  }
  return breakdown;
}

std::vector<CountryCount> EventStore::country_ranking(
    SourceFilter filter, const meta::GeoDatabase& geo) const {
  require_finalized("country_ranking");
  std::map<meta::CountryCode, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const auto& target : targets(filter)) {
    ++counts[geo.locate(target)];
    ++total;
  }
  std::vector<CountryCount> out;
  out.reserve(counts.size());
  for (const auto& [country, count] : counts) {
    out.push_back({country, count,
                   total ? static_cast<double>(count) / static_cast<double>(total)
                         : 0.0});
  }
  std::sort(out.begin(), out.end(), [](const CountryCount& a, const CountryCount& b) {
    if (a.targets != b.targets) return a.targets > b.targets;
    return a.country < b.country;
  });
  return out;
}

double EventStore::normalized_intensity(const AttackEvent& event) const {
  require_finalized("normalized_intensity");
  const auto s = static_cast<std::size_t>(event.source);
  const double max = max_intensity_[s];
  if (max <= 0.0) return 0.0;
  // Linear min-max against the dataset maximum. Intensities are extremely
  // heavy-tailed, so most events normalize to nearly zero — exactly the
  // shape of Table 9 (95% of attacked Web sites at or below 0.07).
  return event.intensity / max;
}

bool EventStore::is_medium_or_higher(const AttackEvent& event) const {
  require_finalized("is_medium_or_higher");
  return event.intensity >= mean_intensity_[static_cast<std::size_t>(event.source)];
}

EmpiricalDistribution EventStore::intensity_distribution(
    SourceFilter filter) const {
  EmpiricalDistribution dist;
  for (const auto& event : events_)
    if (matches(filter, event.source)) dist.add(event.intensity);
  return dist;
}

EmpiricalDistribution EventStore::duration_distribution(
    SourceFilter filter) const {
  EmpiricalDistribution dist;
  for (const auto& event : events_)
    if (matches(filter, event.source)) dist.add(event.duration());
  return dist;
}

double EventStore::mean_intensity(EventSource source) const {
  require_finalized("mean_intensity");
  return mean_intensity_[static_cast<std::size_t>(source)];
}

}  // namespace dosm::core
