// Peak attribution (§5 case studies).
//
// The paper drills into the Figure-7 peaks by identifying the "larger
// parties" behind the attacked IPs — via BGP routing (prefix-to-AS), shared
// name servers, and shared CNAME expansions. This module implements that
// detection-side attribution: for a given day it groups the affected Web
// sites by the origin AS of the attacked IP and by the sites' name-server /
// CNAME names, never consulting simulator ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/event_store.h"
#include "dns/names.h"
#include "dns/snapshot.h"
#include "meta/pfx2as.h"

namespace dosm::core {

/// One attributed party on a peak day.
struct PeakParty {
  meta::Asn asn = 0;          // origin AS of the attacked IP(s)
  std::string name;           // AS organization (or "ASxxxx")
  std::string common_ns;      // shared name server among affected sites ("" = mixed)
  std::uint64_t attacked_ips = 0;
  std::uint64_t affected_sites = 0;  // unique sites across this party's IPs
  bool joint_attacked = false;       // any of its IPs hit by both detectors
};

/// Attributes the affected Web sites of `day` to parties, descending by
/// affected sites. `store` must be finalized and `dns` reverse-indexed.
std::vector<PeakParty> attribute_peak(const EventStore& store,
                                      const dns::SnapshotStore& dns,
                                      const dns::NameTable& names, int day,
                                      const meta::PrefixToAsMap& pfx2as,
                                      const meta::AsRegistry& registry);

}  // namespace dosm::core
