#include "core/taxonomy.h"

#include <sstream>

#include "common/stats.h"
#include "common/strings.h"

namespace dosm::core {

double TaxonomyCounts::protected_share_attacked() const {
  if (attacked == 0) return 0.0;
  return static_cast<double>(attacked_preexisting + attacked_migrating) /
         static_cast<double>(attacked);
}

double TaxonomyCounts::protected_share_not_attacked() const {
  if (not_attacked == 0) return 0.0;
  return static_cast<double>(not_attacked_preexisting + not_attacked_migrating) /
         static_cast<double>(not_attacked);
}

TaxonomyCounts classify_websites(
    const ImpactAnalysis& impact,
    std::span<const dps::ProtectionTimeline> timelines,
    const dns::SnapshotStore& dns) {
  TaxonomyCounts counts;
  dns.for_each_domain([&](dns::DomainId id, const dns::DomainEntry& entry) {
    bool website = false;
    for (const auto& change : entry.changes) {
      if (change.record.has_website()) {
        website = true;
        break;
      }
    }
    if (!website) return;
    ++counts.total;

    const auto& info = impact.domain_info(id);
    const auto& timeline = timelines[id];

    if (info.attacked()) {
      ++counts.attacked;
      if (timeline.preexisting) {
        ++counts.attacked_preexisting;
      } else if (timeline.first_protected_day &&
                 *timeline.first_protected_day >= info.first_attack_day()) {
        ++counts.attacked_migrating;
      } else {
        // Includes the rare protection-before-first-observed-attack case,
        // which the paper's definition cannot count as post-attack
        // migration.
        ++counts.attacked_non_migrating;
      }
    } else {
      ++counts.not_attacked;
      if (timeline.preexisting) {
        ++counts.not_attacked_preexisting;
      } else if (timeline.first_protected_day) {
        ++counts.not_attacked_migrating;
      } else {
        ++counts.not_attacked_non_migrating;
      }
    }
  });
  return counts;
}

std::string render_taxonomy(const TaxonomyCounts& c) {
  auto pct = [](std::uint64_t part, std::uint64_t whole) {
    return whole ? percent(static_cast<double>(part) / static_cast<double>(whole),
                           2)
                 : std::string("n/a");
  };
  std::ostringstream os;
  os << "Web sites: " << c.total << "\n";
  os << "├─ Attack Observed: " << c.attacked << " (" << pct(c.attacked, c.total)
     << ")\n";
  os << "│  ├─ Preexisting Customer: " << c.attacked_preexisting << " ("
     << pct(c.attacked_preexisting, c.attacked) << ")\n";
  os << "│  └─ Non-preexisting: "
     << (c.attacked_migrating + c.attacked_non_migrating) << "\n";
  os << "│     ├─ Migrating: " << c.attacked_migrating << " ("
     << pct(c.attacked_migrating, c.attacked) << " of attacked)\n";
  os << "│     └─ Non-Migrating: " << c.attacked_non_migrating << " ("
     << pct(c.attacked_non_migrating, c.attacked) << " of attacked)\n";
  os << "└─ No Attack Observed: " << c.not_attacked << " ("
     << pct(c.not_attacked, c.total) << ")\n";
  os << "   ├─ Preexisting Customer: " << c.not_attacked_preexisting << " ("
     << pct(c.not_attacked_preexisting, c.not_attacked) << ")\n";
  os << "   └─ Non-preexisting: "
     << (c.not_attacked_migrating + c.not_attacked_non_migrating) << "\n";
  os << "      ├─ Migrating: " << c.not_attacked_migrating << " ("
     << pct(c.not_attacked_migrating, c.not_attacked) << " of unattacked)\n";
  os << "      └─ Non-Migrating: " << c.not_attacked_non_migrating << " ("
     << pct(c.not_attacked_non_migrating, c.not_attacked) << " of unattacked)\n";
  return os.str();
}

std::string to_string(CustomerClass customer_class) {
  switch (customer_class) {
    case CustomerClass::kPreexisting:
      return "preexisting";
    case CustomerClass::kMigrating:
      return "migrating";
    case CustomerClass::kNonMigrating:
      return "non-migrating";
  }
  return "unknown";
}

SiteCensus census_attacked_sites(
    const ImpactAnalysis& impact,
    std::span<const dps::ProtectionTimeline> timelines,
    const dns::SnapshotStore& dns, std::size_t max_examples) {
  SiteCensus census;
  // Reuse LogBinHistogram's binning so labels line up with Figure 6.
  const auto bin_of = [](std::uint64_t n) {
    LogBinHistogram bins(SiteCensus::kBins - 1);
    bins.add(n);
    for (std::size_t i = 0; i < bins.num_bins(); ++i) {
      if (bins.bin(i) > 0) return i;
    }
    return std::size_t{0};
  };

  dns.for_each_domain([&](dns::DomainId id, const dns::DomainEntry& entry) {
    const auto& info = impact.domain_info(id);
    if (!info.attacked()) return;
    const int first_day = info.first_attack_day();
    const auto record = dns.record_on(id, first_day);
    if (!record || !record->has_website()) return;
    const auto cohosted = dns.count_sites_on(record->www_a, first_day);
    const std::size_t bin = bin_of(cohosted);

    const auto& timeline = timelines[id];
    CustomerClass customer_class = CustomerClass::kNonMigrating;
    if (timeline.preexisting) {
      customer_class = CustomerClass::kPreexisting;
    } else if (timeline.first_protected_day &&
               *timeline.first_protected_day >= first_day) {
      customer_class = CustomerClass::kMigrating;
    }
    auto& cell = census.cells[bin][static_cast<std::size_t>(customer_class)];
    ++cell.count;
    if (cell.examples.size() < max_examples)
      cell.examples.push_back(entry.name);
  });
  return census;
}

}  // namespace dosm::core
