#include "core/event.h"

#include <tuple>

namespace dosm::core {

std::string to_string(EventSource source) {
  switch (source) {
    case EventSource::kTelescope:
      return "Network Telescope";
    case EventSource::kHoneypot:
      return "Amplification Honeypot";
  }
  return "Unknown";
}

AttackEvent from_telescope(const telescope::TelescopeEvent& event) {
  AttackEvent out;
  out.source = EventSource::kTelescope;
  out.target = event.victim;
  out.start = event.start;
  out.end = event.end;
  out.intensity = event.max_pps;
  out.packets = event.packets;
  out.ip_proto = event.attack_proto;
  out.num_ports = event.num_ports;
  out.top_port = event.top_port;
  out.unique_sources = event.unique_sources;
  return out;
}

bool canonical_less(const AttackEvent& a, const AttackEvent& b) {
  return std::tie(a.start, a.target, a.source, a.reflection) <
         std::tie(b.start, b.target, b.source, b.reflection);
}

AttackEvent from_amppot(const amppot::AmpPotEvent& event) {
  AttackEvent out;
  out.source = EventSource::kHoneypot;
  out.target = event.victim;
  out.start = event.start;
  out.end = event.end;
  out.intensity = event.avg_rps();
  out.packets = event.requests;
  out.reflection = event.protocol;
  out.honeypots = event.honeypots;
  return out;
}

}  // namespace dosm::core
