// Binary serialization of attack-event streams.
//
// The real infrastructures run detection (at UCSD and at the honeypots) and
// fusion (the analysis platform) as separate systems exchanging event dumps.
// This module gives dosmeter the same seam: a versioned, little-endian
// binary container for AttackEvent vectors, so detector output can be
// written once and re-analyzed many times (see tools/dosmeter_cli.cpp for
// the CSV counterpart meant for humans).
//
// Format: 8-byte magic "DOSMEVT1", u32 event count, then fixed-width records.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/event.h"

namespace dosm::core {

inline constexpr char kEventFileMagic[8] = {'D', 'O', 'S', 'M',
                                            'E', 'V', 'T', '1'};

/// Every failure in this module — I/O errors, bad magic, truncation,
/// corrupt tags, trailing bytes — throws exactly this type, so callers can
/// distinguish "bad dump" from unrelated runtime errors. Derives from
/// std::runtime_error, so pre-existing catch sites keep working.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes the events to a binary stream. Throws SerializeError on I/O
/// failure.
void write_events(std::ostream& out, std::span<const AttackEvent> events);

/// Reads an event dump. Throws SerializeError on bad magic, truncation,
/// or I/O failure.
std::vector<AttackEvent> read_events(std::istream& in);

/// Convenience file-path wrappers.
void save_events(const std::string& path, std::span<const AttackEvent> events);
std::vector<AttackEvent> load_events(const std::string& path);

}  // namespace dosm::core
