// Near-realtime fusion (§9).
//
// The paper closes on the challenge of "near-realtime data fusion,
// extraction, correlation and visualization". This module is the
// operational counterpart of the batch EventStore: events from both
// detectors are ingested in time order as they are produced; at each day
// boundary the fused day summary is emitted, and anomaly alerts fire when a
// day's activity spikes against a trailing baseline — the situational-
// awareness output the paper envisions.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/time.h"
#include "core/alert.h"
#include "core/event.h"

namespace dosm::core {

/// Fused per-day summary, emitted once the day completes.
struct DaySummary {
  int day = 0;  // offset within the window
  std::uint64_t attacks = 0;
  std::uint64_t telescope_attacks = 0;
  std::uint64_t honeypot_attacks = 0;
  std::uint64_t unique_targets = 0;
  /// Targets hit by both detectors within this day (same-day co-targeting,
  /// the streaming approximation of the joint-attack correlation).
  std::uint64_t co_targeted = 0;
};

class StreamingFusion {
 public:
  struct Config {
    /// Days in the trailing baseline window. Must be > 0.
    int baseline_days = 28;
    /// A day alerts when its value exceeds factor x trailing mean. Must be
    /// > 1.0 — at 1.0 or below every non-quiet day would "spike".
    double spike_factor = 2.5;
    /// Baseline must cover at least this many days before alerting. Must be
    /// in [1, baseline_days].
    int min_baseline_days = 7;
  };

  using SummaryCallback = std::function<void(const DaySummary&)>;

  /// Validates config at construction: each field constraint above is
  /// enforced with a descriptive std::invalid_argument naming the field
  /// and the offending value. Spike alerts (kAttackSpike / kTargetSpike)
  /// go to `alert_sink` if non-null; the sink must outlive the fusion.
  StreamingFusion(StudyWindow window, Config config,
                  SummaryCallback on_summary, AlertSink* alert_sink = nullptr);

  /// Ingests one event. Events must arrive in non-decreasing start order
  /// (each detector emits chronologically and the fusion layer merges);
  /// an out-of-order event throws std::invalid_argument. Events outside
  /// the window are ignored.
  void ingest(const AttackEvent& event);

  /// Flushes the final (possibly partial) day.
  void finish();

  std::uint64_t events_ingested() const { return events_ingested_; }
  std::uint64_t days_emitted() const { return days_emitted_; }
  std::uint64_t alerts_fired() const { return alerts_fired_; }

 private:
  void close_day();
  void check_spike(AlertKind kind, double value, std::deque<double>& history);

  StudyWindow window_;
  Config config_;
  SummaryCallback on_summary_;
  AlertSink* alert_sink_;

  int current_day_ = -1;
  double last_start_ = -1.0e300;
  DaySummary pending_{};
  // Per-day target sets: value = bitmask of sources that hit the target.
  std::unordered_map<std::uint32_t, std::uint8_t> day_targets_;
  std::deque<double> attack_history_;
  std::deque<double> target_history_;

  std::uint64_t events_ingested_ = 0;
  std::uint64_t days_emitted_ = 0;
  std::uint64_t alerts_fired_ = 0;
};

}  // namespace dosm::core
