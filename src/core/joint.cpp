#include "core/joint.h"

#include <algorithm>
#include <map>

namespace dosm::core {

JointAttackAnalysis::JointAttackAnalysis(const EventStore& store)
    : store_(store) {
  const auto events = store.events();
  for (const auto& target : store.targets(SourceFilter::kCombined)) {
    const auto indices = store.events_for(target);
    bool has_telescope = false, has_honeypot = false;
    for (const auto i : indices) {
      if (events[i].is_telescope()) has_telescope = true;
      if (events[i].is_honeypot()) has_honeypot = true;
    }
    if (!has_telescope || !has_honeypot) continue;
    ++common_targets_;

    // Pairwise overlap check; per-target event counts are small.
    bool joint = false;
    std::vector<bool> telescope_used(indices.size(), false);
    std::vector<bool> honeypot_used(indices.size(), false);
    for (std::size_t a = 0; a < indices.size(); ++a) {
      const auto& ea = events[indices[a]];
      if (!ea.is_telescope()) continue;
      for (std::size_t b = 0; b < indices.size(); ++b) {
        const auto& eb = events[indices[b]];
        if (!eb.is_honeypot()) continue;
        if (ea.overlaps(eb)) {
          joint = true;
          telescope_used[a] = true;
          honeypot_used[b] = true;
        }
      }
    }
    if (!joint) continue;
    joint_targets_.push_back(target);
    for (std::size_t a = 0; a < indices.size(); ++a)
      if (telescope_used[a]) telescope_joint_.push_back(events[indices[a]]);
    for (std::size_t b = 0; b < indices.size(); ++b)
      if (honeypot_used[b]) honeypot_joint_.push_back(events[indices[b]]);
  }
  std::sort(joint_targets_.begin(), joint_targets_.end());
}

std::vector<AsnCount> JointAttackAnalysis::asn_ranking(
    const meta::PrefixToAsMap& pfx2as) const {
  std::map<meta::Asn, std::uint64_t> counts;
  for (const auto& target : joint_targets_) {
    const auto asn = pfx2as.origin(target);
    if (asn != meta::kUnknownAsn) ++counts[asn];
  }
  std::vector<AsnCount> out;
  const auto total = static_cast<double>(joint_targets_.size());
  for (const auto& [asn, count] : counts)
    out.push_back({asn, count, total > 0 ? static_cast<double>(count) / total : 0.0});
  std::sort(out.begin(), out.end(), [](const AsnCount& a, const AsnCount& b) {
    if (a.targets != b.targets) return a.targets > b.targets;
    return a.asn < b.asn;
  });
  return out;
}

std::vector<CountryCount> JointAttackAnalysis::country_ranking(
    const meta::GeoDatabase& geo) const {
  std::map<meta::CountryCode, std::uint64_t> counts;
  for (const auto& target : joint_targets_) ++counts[geo.locate(target)];
  std::vector<CountryCount> out;
  const auto total = static_cast<double>(joint_targets_.size());
  for (const auto& [country, count] : counts)
    out.push_back(
        {country, count, total > 0 ? static_cast<double>(count) / total : 0.0});
  std::sort(out.begin(), out.end(),
            [](const CountryCount& a, const CountryCount& b) {
              if (a.targets != b.targets) return a.targets > b.targets;
              return a.country < b.country;
            });
  return out;
}

}  // namespace dosm::core
