// The EventStore: the fused attack-event dataset with the rollups the
// paper's tables and figures are computed from.
//
// Holds all events from both sources over a study window, indexed by target
// and by day. Provides Table-1 summaries (events / unique targets / /24s /
// /16s / ASNs), Figure-1/5 daily series, Table-4 country rankings,
// Table-5/6/7/8 distributions, and the per-source intensity normalization
// used by Table 9 and Figure 10.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/time.h"
#include "core/event.h"
#include "meta/geo.h"
#include "meta/pfx2as.h"

namespace dosm::core {

/// Which events an aggregate covers.
enum class SourceFilter : std::uint8_t { kTelescope, kHoneypot, kCombined };

bool matches(SourceFilter filter, EventSource source);
std::string to_string(SourceFilter filter);

/// Table-1 row.
struct DatasetSummary {
  std::uint64_t events = 0;
  std::uint64_t unique_targets = 0;
  std::uint64_t unique_slash24 = 0;
  std::uint64_t unique_slash16 = 0;
  std::uint64_t unique_asns = 0;
};

/// Figure-1 panel: per-day counts.
struct DailyBreakdown {
  DailySeries attacks;
  DailySeries unique_targets;
  DailySeries targeted_slash16;
  DailySeries targeted_asns;

  explicit DailyBreakdown(int num_days)
      : attacks(num_days),
        unique_targets(num_days),
        targeted_slash16(num_days),
        targeted_asns(num_days) {}
};

/// Table-4 row.
struct CountryCount {
  meta::CountryCode country;
  std::uint64_t targets = 0;
  double share = 0.0;
};

class EventStore {
 public:
  explicit EventStore(StudyWindow window = {});

  void add(AttackEvent event);
  void add_telescope(std::span<const telescope::TelescopeEvent> events);
  void add_amppot(std::span<const amppot::AmpPotEvent> events);

  /// Sorts events and builds the per-target index; call after loading.
  /// Also computes the per-source intensity maxima used for normalization.
  void finalize();

  const StudyWindow& window() const { return window_; }
  std::span<const AttackEvent> events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Indices of this target's events, time-ordered (requires finalize()).
  std::span<const std::uint32_t> events_for(net::Ipv4Addr target) const;

  /// All distinct targets (requires finalize()).
  std::vector<net::Ipv4Addr> targets(SourceFilter filter) const;

  /// Table 1 row for a source selection.
  DatasetSummary summarize(SourceFilter filter,
                           const meta::PrefixToAsMap& pfx2as) const;

  /// Figure 1 / Figure 5 daily series. An event counts toward the day its
  /// start falls on (the paper's convention for multi-day attacks, §5 fn.
  /// 15). With `medium_or_higher_only`, only events whose raw intensity
  /// reaches their source dataset's mean count (the Figure-5 selection).
  DailyBreakdown daily_breakdown(SourceFilter filter,
                                 const meta::PrefixToAsMap& pfx2as,
                                 bool medium_or_higher_only = false) const;

  /// Table 4: unique targets per country, descending, with shares.
  std::vector<CountryCount> country_ranking(SourceFilter filter,
                                            const meta::GeoDatabase& geo) const;

  /// Normalized intensity of an event: log-scaled min-max within its source
  /// dataset, in [0, 1] (requires finalize()). The paper normalizes per
  /// dataset because telescope pps and honeypot rps are incomparable.
  double normalized_intensity(const AttackEvent& event) const;

  /// An event is "medium intensity or higher" when its raw intensity is at
  /// least the mean of all intensities in its source dataset (§4, Fig. 5).
  bool is_medium_or_higher(const AttackEvent& event) const;

  /// Raw-intensity distribution of a source (Figures 3 and 4).
  EmpiricalDistribution intensity_distribution(SourceFilter filter) const;

  /// Duration distribution in seconds (Figure 2).
  EmpiricalDistribution duration_distribution(SourceFilter filter) const;

  /// Mean raw intensity of a source dataset (the Figure-5 threshold).
  double mean_intensity(EventSource source) const;

 private:
  StudyWindow window_;
  std::vector<AttackEvent> events_;
  // target -> indices into events_, time-ordered.
  std::unordered_map<net::Ipv4Addr, std::vector<std::uint32_t>> by_target_;
  bool finalized_ = false;
  double max_intensity_[2] = {0.0, 0.0};
  double mean_intensity_[2] = {0.0, 0.0};

  void require_finalized(const char* what) const;
};

}  // namespace dosm::core
