// The unified attack-event model — the fusion layer's common currency.
//
// The paper correlates two independent event datasets: randomly-spoofed
// attacks from the telescope and reflection attacks from the honeypots.
// Both are lifted into AttackEvent, which keeps the source-specific
// attributes needed by the analyses (protocol/ports for the telescope,
// reflection vector for the honeypots) plus the shared ones (target, time
// span, intensity).
#pragma once

#include <cstdint>
#include <string>

#include "amppot/consolidator.h"
#include "common/time.h"
#include "net/ipv4.h"
#include "telescope/flow_table.h"

namespace dosm::core {

enum class EventSource : std::uint8_t {
  kTelescope,  // randomly-spoofed attacks (backscatter inference)
  kHoneypot,   // reflection & amplification attacks (AmpPot)
};

std::string to_string(EventSource source);

struct AttackEvent {
  EventSource source = EventSource::kTelescope;
  net::Ipv4Addr target;
  double start = 0.0;  // unix seconds
  double end = 0.0;

  /// Telescope: maximum backscatter packets/sec in any minute.
  /// Honeypot: average requests/sec to a single reflector.
  /// The two scales are incomparable; normalization happens per-source in
  /// the EventStore.
  double intensity = 0.0;

  std::uint64_t packets = 0;  // backscatter packets / reflector requests

  // --- telescope-only attributes ---
  std::uint8_t ip_proto = 0;   // protocol of the attack traffic
  std::uint16_t num_ports = 0; // distinct victim ports (0 = unknown)
  std::uint16_t top_port = 0;  // dominant victim port
  std::uint32_t unique_sources = 0;

  // --- honeypot-only attributes ---
  amppot::ReflectionProtocol reflection = amppot::ReflectionProtocol::kOther;
  std::uint32_t honeypots = 0;

  double duration() const { return end - start; }

  /// True when the two events overlap in time (used for joint attacks and
  /// same-day co-targeting).
  bool overlaps(const AttackEvent& other) const {
    return start <= other.end && other.start <= end;
  }

  bool is_telescope() const { return source == EventSource::kTelescope; }
  bool is_honeypot() const { return source == EventSource::kHoneypot; }
  bool single_port() const { return is_telescope() && num_ports == 1; }
};

/// Lifts a telescope event into the unified model.
AttackEvent from_telescope(const telescope::TelescopeEvent& event);

/// Lifts a honeypot event into the unified model.
AttackEvent from_amppot(const amppot::AmpPotEvent& event);

/// Canonical total order on fused detector output: (start, target, source,
/// reflection). Total because the telescope emits at most one event per
/// (start, target) and the honeypots at most one per (start, target,
/// reflection protocol); used to sort dumps deterministically so equal event
/// sets serialize byte-identically (the CLI --threads determinism check).
bool canonical_less(const AttackEvent& a, const AttackEvent& b);

}  // namespace dosm::core
