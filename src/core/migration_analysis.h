// Migration-determinant analyses (§6): what drives a Web site to a DPS?
//
//  - Figure 9:  attack-frequency CDFs for all attacked sites vs sites that
//               migrate after an attack (repetition is *not* a determinant).
//  - Table 9:   the normalized attack-intensity distribution over attacked
//               Web sites (per-site max across its attacks).
//  - Figure 10: days-to-migration CDFs per intensity class (all / top 5% /
//               top 1% / top 0.1%) — intensity *accelerates* migration.
//  - Figure 11: days-to-migration CDF for sites hit by long (>= 4 h,
//               honeypot-observed) attacks — duration alone is not decisive.
//
// Migration delay is measured in days from the latest attack on or before
// the migration day to the migration day (0 = same day; the paper's
// "within a day" bucket covers delays <= 1).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/impact.h"
#include "dps/migration.h"

namespace dosm::core {

/// One migrating-after-attack site, with its migration context.
struct MigrationCase {
  dns::DomainId domain = 0;
  int migration_day = 0;
  int trigger_attack_day = 0;  // latest attack on or before migration
  int delay_days = 0;          // migration_day - trigger_attack_day
  double site_max_intensity = 0.0;  // max normalized intensity over attacks
};

class MigrationAnalysis {
 public:
  /// `timelines` indexed by DomainId; references must outlive the analysis.
  MigrationAnalysis(const ImpactAnalysis& impact,
                    std::span<const dps::ProtectionTimeline> timelines);

  /// Figure 9 (top): per-site attack counts, all attacked sites.
  const EmpiricalDistribution& attack_counts_all() const {
    return attack_counts_all_;
  }
  /// Figure 9 (bottom): per-site attack counts, migrating sites only.
  const EmpiricalDistribution& attack_counts_migrating() const {
    return attack_counts_migrating_;
  }

  /// Table 9: per-site max normalized intensity over all attacked sites.
  const EmpiricalDistribution& site_intensities() const {
    return site_intensities_;
  }

  std::span<const MigrationCase> cases() const { return cases_; }

  /// Figure 10: delay distribution for sites whose max intensity is at or
  /// above the `top_fraction` quantile of site_intensities() (1.0 = all
  /// sites). E.g. top_fraction = 0.01 is the paper's "Top 1%" curve.
  EmpiricalDistribution delays_for_intensity_class(double top_fraction) const;

  /// Figure 11: delay distribution for migrating sites whose triggering
  /// history includes a honeypot attack of at least `min_duration_s`; the
  /// delay is measured from the latest such long attack.
  EmpiricalDistribution delays_for_long_attacks(
      double min_duration_s = 4.0 * 3600.0) const;

  /// Fraction of a delay distribution at or below `days` (CDF helper).
  static double fraction_within(const EmpiricalDistribution& delays, int days);

 private:
  const ImpactAnalysis& impact_;
  std::span<const dps::ProtectionTimeline> timelines_;
  EmpiricalDistribution attack_counts_all_;
  EmpiricalDistribution attack_counts_migrating_;
  EmpiricalDistribution site_intensities_;
  std::vector<MigrationCase> cases_;
};

}  // namespace dosm::core
