// Port-to-service mapping and the protocol/port distributions of §4
// (Tables 5, 6, 7, 8).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/event_store.h"

namespace dosm::core {

/// Service label for a (port, transport) pair, following IANA assignments
/// plus the commonly-used ports the paper calls out (e.g. 27015/UDP for
/// Source-engine/Steam game servers). Unmapped ports are rendered as the
/// bare port number, as in Table 8b.
std::string service_name(std::uint16_t port, bool tcp);

/// Web infrastructure ports (80 & 443), the §4 "Web ports" class.
bool is_web_port(std::uint16_t port);

/// Table 5: share of telescope attack events per attack IP protocol.
struct ProtocolShare {
  std::string label;
  std::uint64_t events = 0;
  double share = 0.0;
};

std::vector<ProtocolShare> ip_protocol_distribution(const EventStore& store);

/// Table 6: reflection-vector distribution over honeypot events (top five
/// protocols named, the rest folded into "Other").
std::vector<ProtocolShare> reflection_distribution(const EventStore& store);

/// Table 7: single- vs multi-port split of telescope events.
struct PortCardinality {
  std::uint64_t single_port = 0;
  std::uint64_t multi_port = 0;

  std::uint64_t total() const { return single_port + multi_port; }
  double single_share() const {
    return total() ? static_cast<double>(single_port) / static_cast<double>(total())
                   : 0.0;
  }
};

/// `events` restricts the computation (used for the joint-attack contrast);
/// pass store.events() for the full dataset.
PortCardinality port_cardinality(std::span<const AttackEvent> events);

/// Table 8: top services among single-port telescope attacks on one
/// transport. Returns `top_n` named rows plus a trailing "Other" row; the
/// share denominator is all single-port events on that transport.
std::vector<ProtocolShare> service_distribution(
    std::span<const AttackEvent> events, bool tcp, std::size_t top_n = 5);

/// Share of single-port TCP attack events aimed at Web ports (the paper's
/// 69.36% figure).
double web_port_share(std::span<const AttackEvent> events);

}  // namespace dosm::core
