// The §6 Web-site taxonomy (Figure 8).
//
// Every Web site in the measured namespace is classified along the tree:
//   { attack observed | no attack observed }
//     x { preexisting DPS customer | non-preexisting }
//       x { migrating | non-migrating }
// Attack observation comes from the ImpactAnalysis join; protection state
// from the DPS protection timelines. A site with an observed attack counts
// as migrating when it first appears protected on or after its first attack
// day; an unattacked site counts as migrating when protection appears any
// time after it is first seen.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/impact.h"
#include "dps/migration.h"

namespace dosm::core {

struct TaxonomyCounts {
  std::uint64_t total = 0;  // all Web sites (www label observed)

  std::uint64_t attacked = 0;
  std::uint64_t attacked_preexisting = 0;
  std::uint64_t attacked_migrating = 0;
  std::uint64_t attacked_non_migrating = 0;

  std::uint64_t not_attacked = 0;
  std::uint64_t not_attacked_preexisting = 0;
  std::uint64_t not_attacked_migrating = 0;
  std::uint64_t not_attacked_non_migrating = 0;

  /// Protected-or-migrating share among attacked sites (22.1% in the
  /// paper) and among unattacked sites (4.2%).
  double protected_share_attacked() const;
  double protected_share_not_attacked() const;
};

/// Classifies every domain. `timelines` must be indexed by DomainId (as
/// returned by dps::all_timelines over the same store).
TaxonomyCounts classify_websites(
    const ImpactAnalysis& impact,
    std::span<const dps::ProtectionTimeline> timelines,
    const dns::SnapshotStore& dns);

/// Renders the Figure-8 tree as indented text with counts and parent-
/// relative percentages.
std::string render_taxonomy(const TaxonomyCounts& counts);

/// The §6 sampling study, automated: attacked Web sites cross-tabulated by
/// the co-hosting magnitude of their IP (at first attack) and their DPS
/// customer class, with example domain names per cell — the paper sampled
/// the smallest (n=1) and largest hosting groups for each class by hand.
enum class CustomerClass : std::uint8_t {
  kPreexisting,
  kMigrating,
  kNonMigrating,
};

std::string to_string(CustomerClass customer_class);

struct CensusCell {
  std::uint64_t count = 0;
  std::vector<std::string> examples;  // up to `max_examples` domain names
};

/// cells[cohost_bin][class]: cohost_bin indexes the LogBinHistogram bins
/// (n=1, (1,10], (10,100], ...).
struct SiteCensus {
  static constexpr std::size_t kBins = 8;
  CensusCell cells[kBins][3];

  const CensusCell& cell(std::size_t bin, CustomerClass customer_class) const {
    return cells[bin][static_cast<std::size_t>(customer_class)];
  }
};

SiteCensus census_attacked_sites(
    const ImpactAnalysis& impact,
    std::span<const dps::ProtectionTimeline> timelines,
    const dns::SnapshotStore& dns, std::size_t max_examples = 3);

}  // namespace dosm::core
