// Joint-attack analysis (§4, last part): targets hit by both randomly
// spoofed and reflection attacks, and the subset attacked by both
// *simultaneously* (events overlapping in time).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/event_store.h"
#include "meta/pfx2as.h"

namespace dosm::core {

/// Ranked ASN row for the joint-target AS breakdown.
struct AsnCount {
  meta::Asn asn = 0;
  std::uint64_t targets = 0;
  double share = 0.0;
};

class JointAttackAnalysis {
 public:
  /// Computes the joint sets once; `store` must be finalized and must
  /// outlive the analysis.
  explicit JointAttackAnalysis(const EventStore& store);

  /// Targets appearing in both datasets (282 k in the paper).
  std::uint64_t common_targets() const { return common_targets_; }

  /// Targets hit by overlapping attacks from both datasets (137 k).
  std::uint64_t joint_targets() const { return joint_targets_.size(); }

  std::span<const net::Ipv4Addr> joint_target_list() const {
    return joint_targets_;
  }

  /// Telescope events that co-participated in a joint attack.
  std::span<const AttackEvent> telescope_joint_events() const {
    return telescope_joint_;
  }

  /// Honeypot events that co-participated in a joint attack.
  std::span<const AttackEvent> honeypot_joint_events() const {
    return honeypot_joint_;
  }

  /// Joint targets per origin AS, descending.
  std::vector<AsnCount> asn_ranking(const meta::PrefixToAsMap& pfx2as) const;

  /// Joint targets per country, descending.
  std::vector<CountryCount> country_ranking(const meta::GeoDatabase& geo) const;

 private:
  const EventStore& store_;
  std::uint64_t common_targets_ = 0;
  std::vector<net::Ipv4Addr> joint_targets_;
  std::vector<AttackEvent> telescope_joint_;
  std::vector<AttackEvent> honeypot_joint_;
};

}  // namespace dosm::core
