// IPv4 addresses and prefixes.
//
// Addresses are stored in host byte order as a plain uint32 wrapper; all
// wire-format conversion happens at the packet-serialization boundary
// (net/headers.h).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/sanitize.h"

namespace dosm::net {

/// An IPv4 address (host byte order).
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t value() const { return value_; }

  /// Dotted-quad representation.
  std::string to_string() const;

  /// Parses "a.b.c.d"; throws std::invalid_argument on malformed input.
  static Ipv4Addr parse(std::string_view s);

  /// Network address of the enclosing /24 (used for per-/24 rollups).
  constexpr Ipv4Addr slash24() const { return Ipv4Addr(value_ & 0xffffff00u); }

  /// Network address of the enclosing /16.
  constexpr Ipv4Addr slash16() const { return Ipv4Addr(value_ & 0xffff0000u); }

  /// Network address of the enclosing /8.
  constexpr Ipv4Addr slash8() const { return Ipv4Addr(value_ & 0xff000000u); }

  /// Leading octet, e.g. 10 for 10.1.2.3.
  constexpr std::uint8_t first_octet() const {
    return static_cast<std::uint8_t>(value_ >> 24);
  }

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix; the address is normalized to its network address.
class Prefix {
 public:
  constexpr Prefix() = default;
  /// Throws std::invalid_argument if length > 32.
  Prefix(Ipv4Addr addr, int length);

  /// Parses "a.b.c.d/len".
  static Prefix parse(std::string_view s);

  constexpr Ipv4Addr network() const { return network_; }
  constexpr int length() const { return length_; }

  /// Netmask as a host-order value (length 0 -> 0).
  constexpr std::uint32_t mask() const {
    return length_ == 0 ? 0u : ~std::uint32_t{0} << (32 - length_);
  }

  bool contains(Ipv4Addr a) const {
    return (a.value() & mask()) == network_.value();
  }

  /// Number of addresses covered (2^(32-length)).
  std::uint64_t num_addresses() const {
    return std::uint64_t{1} << (32 - length_);
  }

  /// i-th address inside the prefix; i must be < num_addresses().
  Ipv4Addr address_at(std::uint64_t i) const;

  std::string to_string() const;

  constexpr auto operator<=>(const Prefix&) const = default;

 private:
  Ipv4Addr network_;
  int length_ = 0;
};

}  // namespace dosm::net

template <>
struct std::hash<dosm::net::Ipv4Addr> {
  DOSM_ALLOW_UNSIGNED_WRAP std::size_t operator()(
      const dosm::net::Ipv4Addr& a) const noexcept {
    // Fibonacci scrambling; addresses are often sequential.
    return static_cast<std::size_t>(a.value() * 0x9e3779b97f4a7c15ULL);
  }
};
