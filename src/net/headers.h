// Raw IPv4 / TCP / UDP / ICMP packet construction and parsing.
//
// The telescope pipeline consumes real packet bytes: the simulator encodes
// backscatter as raw IPv4 frames (through PacketWriter/pcap) and the Moore
// et al. detector decodes them here, exactly as the Corsaro plugin would via
// libpcap. The decoded form is the compact PacketRecord.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/time.h"
#include "net/ipv4.h"

namespace dosm::net {

/// IANA IP protocol numbers we care about.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kIgmp = 2,
  kTcp = 6,
  kUdp = 17,
  kGre = 47,
  kEsp = 50,
};

/// TCP flag bits (low byte of the flags field).
namespace tcp_flags {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
inline constexpr std::uint8_t kUrg = 0x20;
}  // namespace tcp_flags

/// ICMP message types (RFC 792 et al.).
enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kDestUnreachable = 3,
  kSourceQuench = 4,
  kRedirect = 5,
  kEcho = 8,
  kTimeExceeded = 11,
  kParameterProblem = 12,
  kTimestamp = 13,
  kTimestampReply = 14,
  kInfoRequest = 15,
  kInfoReply = 16,
  kAddressMaskRequest = 17,
  kAddressMaskReply = 18,
};

/// A decoded packet in the compact form the analysis pipeline uses.
/// For ICMP error messages (destination unreachable, time exceeded, ...)
/// the quoted original datagram's header fields are captured too, since the
/// Moore methodology attributes the attack's transport protocol from them.
struct PacketRecord {
  UnixSeconds ts_sec = 0;
  std::uint32_t ts_usec = 0;

  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint8_t proto = 0;      // raw IP protocol number
  std::uint16_t ip_len = 0;    // total IP length, bytes
  std::uint8_t ttl = 0;

  std::uint16_t src_port = 0;  // TCP/UDP only
  std::uint16_t dst_port = 0;
  std::uint8_t tcp_flags = 0;  // TCP only

  std::uint8_t icmp_type = 0;  // ICMP only
  std::uint8_t icmp_code = 0;

  // Quoted datagram inside ICMP error messages, when present and parseable.
  bool has_quoted = false;
  std::uint8_t quoted_proto = 0;
  Ipv4Addr quoted_src;
  Ipv4Addr quoted_dst;
  std::uint16_t quoted_src_port = 0;
  std::uint16_t quoted_dst_port = 0;

  bool is_tcp() const { return proto == static_cast<std::uint8_t>(IpProto::kTcp); }
  bool is_udp() const { return proto == static_cast<std::uint8_t>(IpProto::kUdp); }
  bool is_icmp() const { return proto == static_cast<std::uint8_t>(IpProto::kIcmp); }

  double timestamp() const {
    return static_cast<double>(ts_sec) + static_cast<double>(ts_usec) * 1e-6;
  }
};

/// RFC 1071 internet checksum over a byte range (pads odd length with zero).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Encodes the record as a raw IPv4 packet (no link-layer header). TCP
/// packets carry a 20-byte header; UDP an 8-byte header with an 8-byte dummy
/// payload; ICMP error types embed the quoted IP header + 8 bytes when
/// `has_quoted` is set. All checksums are valid.
std::vector<std::uint8_t> encode_packet(const PacketRecord& rec);

/// Decodes a raw IPv4 packet. Returns std::nullopt on truncated or
/// non-IPv4 input. Checksum failures are tolerated (real telescopes see
/// broken packets) but reported via `checksum_ok` when non-null.
std::optional<PacketRecord> decode_packet(std::span<const std::uint8_t> bytes,
                                          UnixSeconds ts_sec = 0,
                                          std::uint32_t ts_usec = 0,
                                          bool* checksum_ok = nullptr);

/// Allocation-free core of decode_packet: writes into `rec` and returns
/// false on truncated or non-IPv4 input. The batched ingest decoder calls
/// this directly so the hot loop never constructs a std::optional per
/// packet; both entry points share one parse by construction.
bool decode_packet_into(std::span<const std::uint8_t> bytes,
                        UnixSeconds ts_sec, std::uint32_t ts_usec,
                        PacketRecord& rec, bool* checksum_ok = nullptr);

}  // namespace dosm::net
