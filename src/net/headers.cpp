#include "net/headers.h"

#include <cstring>

namespace dosm::net {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::size_t offset, std::uint16_t v) {
  out[offset] = static_cast<std::uint8_t>(v >> 8);
  out[offset + 1] = static_cast<std::uint8_t>(v & 0xff);
}

void put_u32(std::vector<std::uint8_t>& out, std::size_t offset, std::uint32_t v) {
  out[offset] = static_cast<std::uint8_t>(v >> 24);
  out[offset + 1] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  out[offset + 2] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  out[offset + 3] = static_cast<std::uint8_t>(v & 0xff);
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t offset) {
  return static_cast<std::uint16_t>((in[offset] << 8) | in[offset + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t offset) {
  return (static_cast<std::uint32_t>(in[offset]) << 24) |
         (static_cast<std::uint32_t>(in[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(in[offset + 2]) << 8) |
         static_cast<std::uint32_t>(in[offset + 3]);
}

constexpr std::size_t kIpHeaderLen = 20;
constexpr std::size_t kTcpHeaderLen = 20;
constexpr std::size_t kUdpHeaderLen = 8;
constexpr std::size_t kIcmpHeaderLen = 8;

bool is_icmp_error(std::uint8_t type) {
  const auto t = static_cast<IcmpType>(type);
  return t == IcmpType::kDestUnreachable || t == IcmpType::kSourceQuench ||
         t == IcmpType::kRedirect || t == IcmpType::kTimeExceeded ||
         t == IcmpType::kParameterProblem;
}

/// Writes the 20-byte IPv4 header (checksum filled) at out[0..20).
void write_ip_header(std::vector<std::uint8_t>& out, const PacketRecord& rec,
                     std::uint16_t total_len) {
  out[0] = 0x45;  // version 4, IHL 5
  out[1] = 0;     // DSCP/ECN
  put_u16(out, 2, total_len);
  put_u16(out, 4, 0);  // identification
  put_u16(out, 6, 0);  // flags/fragment offset
  out[8] = rec.ttl ? rec.ttl : 64;
  out[9] = rec.proto;
  put_u16(out, 10, 0);  // checksum placeholder
  put_u32(out, 12, rec.src.value());
  put_u32(out, 16, rec.dst.value());
  const std::uint16_t csum =
      internet_checksum(std::span(out.data(), kIpHeaderLen));
  put_u16(out, 10, csum);
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::vector<std::uint8_t> encode_packet(const PacketRecord& rec) {
  std::vector<std::uint8_t> out;
  if (rec.is_tcp()) {
    out.assign(kIpHeaderLen + kTcpHeaderLen, 0);
    put_u16(out, kIpHeaderLen + 0, rec.src_port);
    put_u16(out, kIpHeaderLen + 2, rec.dst_port);
    put_u32(out, kIpHeaderLen + 4, 0);                      // seq
    put_u32(out, kIpHeaderLen + 8, 0);                      // ack
    out[kIpHeaderLen + 12] = 0x50;                          // data offset 5
    out[kIpHeaderLen + 13] = rec.tcp_flags;
    put_u16(out, kIpHeaderLen + 14, 8192);                  // window
    // TCP checksum over pseudo-header + segment.
    std::vector<std::uint8_t> pseudo(12 + kTcpHeaderLen, 0);
    put_u32(pseudo, 0, rec.src.value());
    put_u32(pseudo, 4, rec.dst.value());
    pseudo[9] = rec.proto;
    put_u16(pseudo, 10, kTcpHeaderLen);
    std::memcpy(pseudo.data() + 12, out.data() + kIpHeaderLen, kTcpHeaderLen);
    put_u16(out, kIpHeaderLen + 16, internet_checksum(pseudo));
  } else if (rec.is_udp()) {
    constexpr std::size_t kPayload = 8;
    out.assign(kIpHeaderLen + kUdpHeaderLen + kPayload, 0);
    put_u16(out, kIpHeaderLen + 0, rec.src_port);
    put_u16(out, kIpHeaderLen + 2, rec.dst_port);
    put_u16(out, kIpHeaderLen + 4, kUdpHeaderLen + kPayload);
    put_u16(out, kIpHeaderLen + 6, 0);  // checksum optional for IPv4 UDP
  } else if (rec.is_icmp()) {
    std::size_t len = kIpHeaderLen + kIcmpHeaderLen;
    const bool quoted = rec.has_quoted && is_icmp_error(rec.icmp_type);
    if (quoted) len += kIpHeaderLen + 8;  // quoted IP header + 8 bytes
    out.assign(len, 0);
    out[kIpHeaderLen + 0] = rec.icmp_type;
    out[kIpHeaderLen + 1] = rec.icmp_code;
    if (quoted) {
      const std::size_t q = kIpHeaderLen + kIcmpHeaderLen;
      out[q + 0] = 0x45;
      put_u16(out, q + 2, kIpHeaderLen + 8);
      out[q + 8] = 64;
      out[q + 9] = rec.quoted_proto;
      put_u32(out, q + 12, rec.quoted_src.value());
      put_u32(out, q + 16, rec.quoted_dst.value());
      // First 8 bytes of the quoted transport header (ports for TCP/UDP).
      put_u16(out, q + kIpHeaderLen + 0, rec.quoted_src_port);
      put_u16(out, q + kIpHeaderLen + 2, rec.quoted_dst_port);
    }
    const std::uint16_t csum = internet_checksum(
        std::span(out.data() + kIpHeaderLen, out.size() - kIpHeaderLen));
    put_u16(out, kIpHeaderLen + 2, csum);
  } else {
    // Other protocols: bare IP header + 8 opaque bytes.
    out.assign(kIpHeaderLen + 8, 0);
  }
  write_ip_header(out, rec, static_cast<std::uint16_t>(out.size()));
  return out;
}

std::optional<PacketRecord> decode_packet(std::span<const std::uint8_t> bytes,
                                          UnixSeconds ts_sec,
                                          std::uint32_t ts_usec,
                                          bool* checksum_ok) {
  PacketRecord rec;
  if (!decode_packet_into(bytes, ts_sec, ts_usec, rec, checksum_ok))
    return std::nullopt;
  return rec;
}

bool decode_packet_into(std::span<const std::uint8_t> bytes,
                        UnixSeconds ts_sec, std::uint32_t ts_usec,
                        PacketRecord& rec, bool* checksum_ok) {
  if (bytes.size() < kIpHeaderLen) return false;
  if ((bytes[0] >> 4) != 4) return false;  // not IPv4
  const std::size_t ihl = static_cast<std::size_t>(bytes[0] & 0x0f) * 4;
  if (ihl < kIpHeaderLen || bytes.size() < ihl) return false;

  rec = PacketRecord{};
  rec.ts_sec = ts_sec;
  rec.ts_usec = ts_usec;
  rec.ip_len = get_u16(bytes, 2);
  rec.ttl = bytes[8];
  rec.proto = bytes[9];
  rec.src = Ipv4Addr(get_u32(bytes, 12));
  rec.dst = Ipv4Addr(get_u32(bytes, 16));

  if (checksum_ok != nullptr)
    *checksum_ok = internet_checksum(bytes.subspan(0, ihl)) == 0;

  const auto payload = bytes.subspan(ihl);
  if (rec.is_tcp()) {
    if (payload.size() < 14) return true;  // truncated transport: keep IP view
    rec.src_port = get_u16(payload, 0);
    rec.dst_port = get_u16(payload, 2);
    rec.tcp_flags = payload[13] & 0x3f;
  } else if (rec.is_udp()) {
    if (payload.size() < 4) return true;
    rec.src_port = get_u16(payload, 0);
    rec.dst_port = get_u16(payload, 2);
  } else if (rec.is_icmp()) {
    if (payload.size() < 2) return true;
    rec.icmp_type = payload[0];
    rec.icmp_code = payload[1];
    if (is_icmp_error(rec.icmp_type) && payload.size() >= kIcmpHeaderLen + kIpHeaderLen) {
      const auto quoted = payload.subspan(kIcmpHeaderLen);
      if ((quoted[0] >> 4) == 4) {
        const std::size_t qihl = static_cast<std::size_t>(quoted[0] & 0x0f) * 4;
        if (qihl >= kIpHeaderLen && quoted.size() >= qihl) {
          rec.has_quoted = true;
          rec.quoted_proto = quoted[9];
          rec.quoted_src = Ipv4Addr(get_u32(quoted, 12));
          rec.quoted_dst = Ipv4Addr(get_u32(quoted, 16));
          if (quoted.size() >= qihl + 4 &&
              (rec.quoted_proto == static_cast<std::uint8_t>(IpProto::kTcp) ||
               rec.quoted_proto == static_cast<std::uint8_t>(IpProto::kUdp))) {
            rec.quoted_src_port = get_u16(quoted, qihl + 0);
            rec.quoted_dst_port = get_u16(quoted, qihl + 2);
          }
        }
      }
    }
  }
  return true;
}

}  // namespace dosm::net
