#include "net/pcap.h"

#include <cstring>
#include <sstream>
#include <stdexcept>

namespace dosm::net {

namespace {

void write_u16le(std::ostream& out, std::uint16_t v) {
  const char b[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  out.write(b, 2);
}

void write_u32le(std::ostream& out, std::uint32_t v) {
  const char b[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
                     static_cast<char>((v >> 16) & 0xff),
                     static_cast<char>((v >> 24) & 0xff)};
  out.write(b, 4);
}

std::uint32_t swap32(std::uint32_t v) {
  return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) |
         (v >> 24);
}

std::uint16_t swap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

bool read_exact(std::istream& in, void* dst, std::size_t n) {
  in.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  return static_cast<std::size_t>(in.gcount()) == n;
}

}  // namespace

PcapWriter::PcapWriter(std::ostream& out, std::uint32_t link_type,
                       std::uint32_t snaplen)
    : out_(out), link_type_(link_type), snaplen_(snaplen) {
  if (!out_) throw std::runtime_error("PcapWriter: bad output stream");
  write_u32le(out_, kPcapMagic);
  write_u16le(out_, 2);  // version major
  write_u16le(out_, 4);  // version minor
  write_u32le(out_, 0);  // thiszone
  write_u32le(out_, 0);  // sigfigs
  write_u32le(out_, snaplen_);
  write_u32le(out_, link_type_);
}

void PcapWriter::write_frame(UnixSeconds ts_sec, std::uint32_t ts_usec,
                             std::span<const std::uint8_t> bytes) {
  const auto captured =
      static_cast<std::uint32_t>(std::min<std::size_t>(bytes.size(), snaplen_));
  write_u32le(out_, static_cast<std::uint32_t>(ts_sec));
  write_u32le(out_, ts_usec);
  write_u32le(out_, captured);
  write_u32le(out_, static_cast<std::uint32_t>(bytes.size()));
  out_.write(reinterpret_cast<const char*>(bytes.data()), captured);
  if (!out_) throw std::runtime_error("PcapWriter: write failed");
  ++frames_written_;
}

void PcapWriter::write_packet(const PacketRecord& rec) {
  if (link_type_ != kLinkTypeRaw)
    throw std::logic_error("PcapWriter::write_packet requires LINKTYPE_RAW");
  const auto bytes = encode_packet(rec);
  write_frame(rec.ts_sec, rec.ts_usec, bytes);
}

PcapReader::PcapReader(std::istream& in) : in_(in) {
  std::uint32_t magic = 0;
  if (!read_exact(in_, &magic, 4))
    throw std::runtime_error("PcapReader: missing global header");
  if (magic == kPcapMagic) {
    swapped_ = false;
  } else if (swap32(magic) == kPcapMagic) {
    swapped_ = true;
  } else {
    throw std::runtime_error("PcapReader: bad magic");
  }
  std::uint8_t rest[20];
  if (!read_exact(in_, rest, sizeof(rest)))
    throw std::runtime_error("PcapReader: truncated global header");
  std::uint32_t lt;
  std::memcpy(&lt, rest + 16, 4);
  link_type_ = swapped_ ? swap32(lt) : lt;
  std::uint16_t vmaj;
  std::memcpy(&vmaj, rest + 0, 2);
  vmaj = swapped_ ? swap16(vmaj) : vmaj;
  if (vmaj != 2) throw std::runtime_error("PcapReader: unsupported version");
}

std::optional<CapturedFrame> PcapReader::next_frame() {
  std::uint32_t hdr[4];
  if (!read_exact(in_, hdr, sizeof(hdr))) {
    if (in_.gcount() == 0) return std::nullopt;  // clean EOF
    throw std::runtime_error("PcapReader: truncated record header");
  }
  if (swapped_)
    for (auto& w : hdr) w = swap32(w);
  CapturedFrame frame;
  frame.ts_sec = hdr[0];
  frame.ts_usec = hdr[1];
  const std::uint32_t caplen = hdr[2];
  frame.orig_len = hdr[3];
  if (caplen > 1u << 26)
    throw std::runtime_error("PcapReader: implausible record length");
  frame.bytes.resize(caplen);
  if (!read_exact(in_, frame.bytes.data(), caplen))
    throw std::runtime_error("PcapReader: truncated record body");
  return frame;
}

std::optional<PacketRecord> PcapReader::next_packet() {
  for (;;) {
    auto frame = next_frame();
    if (!frame) return std::nullopt;
    std::span<const std::uint8_t> payload = frame->bytes;
    if (link_type_ == kLinkTypeEthernet) {
      if (payload.size() < 14) continue;
      const std::uint16_t ethertype =
          static_cast<std::uint16_t>((payload[12] << 8) | payload[13]);
      if (ethertype != 0x0800) continue;  // not IPv4
      payload = payload.subspan(14);
    }
    auto rec = decode_packet(payload, frame->ts_sec, frame->ts_usec);
    if (rec) return rec;
  }
}

std::vector<PacketRecord> decode_pcap(std::span<const std::uint8_t> file_bytes) {
  std::string buffer(reinterpret_cast<const char*>(file_bytes.data()),
                     file_bytes.size());
  std::istringstream in(buffer, std::ios::binary);
  PcapReader reader(in);
  std::vector<PacketRecord> out;
  while (auto rec = reader.next_packet()) out.push_back(*rec);
  return out;
}

}  // namespace dosm::net
