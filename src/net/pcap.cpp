#include "net/pcap.h"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace dosm::net {

namespace {

/// Frames both ingest front ends dropped, by reason. Registered lazily on
/// the global registry; src/ingest/metrics.cpp resolves the same names, so
/// the sequential and batched paths share one set of counters.
struct SkipCounters {
  obs::Counter& link;
  obs::Counter& truncated;
  obs::Counter& undecodable;

  static SkipCounters& get() {
    static SkipCounters counters = [] {
      auto& reg = obs::MetricsRegistry::global();
      return SkipCounters{
          reg.counter("ingest.skipped.link",
                      "Frames dropped at the link layer (short frame or "
                      "non-IPv4 EtherType)"),
          reg.counter("ingest.skipped.truncated",
                      "Frames dropped because the IPv4 total_length exceeds "
                      "the captured bytes (snaplen truncation)"),
          reg.counter("ingest.skipped.undecodable",
                      "Frames dropped because the payload is not parseable "
                      "IPv4"),
      };
    }();
    return counters;
  }
};

void write_u16le(std::ostream& out, std::uint16_t v) {
  const char b[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  out.write(b, 2);
}

void write_u32le(std::ostream& out, std::uint32_t v) {
  const char b[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
                     static_cast<char>((v >> 16) & 0xff),
                     static_cast<char>((v >> 24) & 0xff)};
  out.write(b, 4);
}

std::uint32_t swap32(std::uint32_t v) {
  return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) |
         (v >> 24);
}

std::uint16_t swap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

bool read_exact(std::istream& in, void* dst, std::size_t n) {
  in.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  return static_cast<std::size_t>(in.gcount()) == n;
}

}  // namespace

PcapWriter::PcapWriter(std::ostream& out, std::uint32_t link_type,
                       std::uint32_t snaplen)
    : out_(out), link_type_(link_type), snaplen_(snaplen) {
  if (!out_) throw std::runtime_error("PcapWriter: bad output stream");
  write_u32le(out_, kPcapMagic);
  write_u16le(out_, 2);  // version major
  write_u16le(out_, 4);  // version minor
  write_u32le(out_, 0);  // thiszone
  write_u32le(out_, 0);  // sigfigs
  write_u32le(out_, snaplen_);
  write_u32le(out_, link_type_);
}

void PcapWriter::write_frame(UnixSeconds ts_sec, std::uint32_t ts_usec,
                             std::span<const std::uint8_t> bytes) {
  const auto captured =
      static_cast<std::uint32_t>(std::min<std::size_t>(bytes.size(), snaplen_));
  write_u32le(out_, static_cast<std::uint32_t>(ts_sec));
  write_u32le(out_, ts_usec);
  write_u32le(out_, captured);
  write_u32le(out_, static_cast<std::uint32_t>(bytes.size()));
  out_.write(reinterpret_cast<const char*>(bytes.data()), captured);
  if (!out_) throw std::runtime_error("PcapWriter: write failed");
  ++frames_written_;
}

void PcapWriter::write_packet(const PacketRecord& rec) {
  if (link_type_ != kLinkTypeRaw)
    throw std::logic_error("PcapWriter::write_packet requires LINKTYPE_RAW");
  const auto bytes = encode_packet(rec);
  write_frame(rec.ts_sec, rec.ts_usec, bytes);
}

PcapReader::PcapReader(std::istream& in) : in_(in) {
  std::uint32_t magic = 0;
  if (!read_exact(in_, &magic, 4))
    throw std::runtime_error("PcapReader: missing global header");
  if (magic == kPcapMagic) {
    swapped_ = false;
  } else if (swap32(magic) == kPcapMagic) {
    swapped_ = true;
  } else {
    throw std::runtime_error("PcapReader: bad magic");
  }
  std::uint8_t rest[20];
  if (!read_exact(in_, rest, sizeof(rest)))
    throw std::runtime_error("PcapReader: truncated global header");
  std::uint32_t lt;
  std::memcpy(&lt, rest + 16, 4);
  link_type_ = swapped_ ? swap32(lt) : lt;
  std::uint16_t vmaj;
  std::memcpy(&vmaj, rest + 0, 2);
  vmaj = swapped_ ? swap16(vmaj) : vmaj;
  if (vmaj != 2) throw std::runtime_error("PcapReader: unsupported version");
}

std::optional<CapturedFrame> PcapReader::next_frame() {
  std::uint32_t hdr[4];
  if (!read_exact(in_, hdr, sizeof(hdr))) {
    // A zero-byte short read is a clean EOF only when the stream actually
    // reached end-of-file. A failed stream (badbit from the underlying
    // source, or failbit without eofbit) also reports gcount() == 0; treating
    // that as EOF would silently truncate the trace on an I/O error.
    if (in_.bad() || !in_.eof())
      throw std::runtime_error("PcapReader: stream read error mid-capture");
    if (in_.gcount() == 0) return std::nullopt;  // clean EOF
    throw std::runtime_error("PcapReader: truncated record header");
  }
  if (swapped_)
    for (auto& w : hdr) w = swap32(w);
  CapturedFrame frame;
  frame.ts_sec = hdr[0];
  frame.ts_usec = hdr[1];
  const std::uint32_t caplen = hdr[2];
  frame.orig_len = hdr[3];
  if (caplen > 1u << 26)
    throw std::runtime_error("PcapReader: implausible record length");
  frame.bytes.resize(caplen);
  if (!read_exact(in_, frame.bytes.data(), caplen)) {
    if (in_.bad() || !in_.eof())
      throw std::runtime_error("PcapReader: stream read error mid-capture");
    throw std::runtime_error("PcapReader: truncated record body");
  }
  return frame;
}

std::optional<PacketRecord> PcapReader::next_packet() {
  auto& skips = SkipCounters::get();
  for (;;) {
    auto frame = next_frame();
    if (!frame) return std::nullopt;
    PacketRecord rec;
    switch (decode_frame(frame->bytes, link_type_, frame->ts_sec,
                         frame->ts_usec, rec)) {
      case FrameDecode::kOk: return rec;
      case FrameDecode::kSkipLink: skips.link.inc(); break;
      case FrameDecode::kSkipTruncated: skips.truncated.inc(); break;
      case FrameDecode::kSkipUndecodable: skips.undecodable.inc(); break;
    }
  }
}

FrameDecode decode_frame(std::span<const std::uint8_t> bytes,
                         std::uint32_t link_type, UnixSeconds ts_sec,
                         std::uint32_t ts_usec, PacketRecord& rec) {
  std::span<const std::uint8_t> payload = bytes;
  if (link_type == kLinkTypeEthernet) {
    if (payload.size() < 14) return FrameDecode::kSkipLink;
    std::uint16_t ethertype =
        static_cast<std::uint16_t>((payload[12] << 8) | payload[13]);
    std::size_t offset = 14;
    // Strip 802.1Q/802.1ad VLAN tags (4 bytes each: TPID already consumed as
    // the EtherType, then TCI + the inner EtherType). Captures at IXP/core
    // vantage points are routinely tagged; bounded nesting guards against
    // adversarial tag chains.
    for (int depth = 0;
         (ethertype == kEtherTypeVlan || ethertype == kEtherTypeQinQ) &&
         depth < 4;
         ++depth) {
      if (payload.size() < offset + 4) return FrameDecode::kSkipLink;
      ethertype = static_cast<std::uint16_t>((payload[offset + 2] << 8) |
                                             payload[offset + 3]);
      offset += 4;
    }
    if (ethertype != kEtherTypeIpv4) return FrameDecode::kSkipLink;
    payload = payload.subspan(offset);
  }
  // Snaplen truncation gate: an IPv4 packet whose total_length claims more
  // bytes than the capture holds must not flow downstream as if complete —
  // flow byte counts and transport fields would be computed from a partial
  // packet. (total_length < captured size is fine: Ethernet pads.)
  if (payload.size() < 20) {
    return (!payload.empty() && (payload[0] >> 4) == 4)
               ? FrameDecode::kSkipTruncated
               : FrameDecode::kSkipUndecodable;
  }
  if ((payload[0] >> 4) == 4) {
    const std::size_t total_length =
        static_cast<std::size_t>((payload[2] << 8) | payload[3]);
    if (total_length > payload.size()) return FrameDecode::kSkipTruncated;
  }
  if (!decode_packet_into(payload, ts_sec, ts_usec, rec))
    return FrameDecode::kSkipUndecodable;
  return FrameDecode::kOk;
}

std::vector<PacketRecord> decode_pcap(std::span<const std::uint8_t> file_bytes) {
  std::string buffer(reinterpret_cast<const char*>(file_bytes.data()),
                     file_bytes.size());
  std::istringstream in(buffer, std::ios::binary);
  PcapReader reader(in);
  std::vector<PacketRecord> out;
  while (auto rec = reader.next_packet()) out.push_back(*rec);
  return out;
}

}  // namespace dosm::net
