// Minimal pcap (libpcap savefile) reader/writer, implemented from scratch.
//
// We write and read the classic pcap format (magic 0xa1b2c3d4, version 2.4)
// with microsecond timestamps. The telescope simulator stores synthesized
// backscatter as LINKTYPE_RAW (101) captures — raw IPv4 packets with no
// link-layer header — and the detection pipeline replays them through
// net::decode_packet. LINKTYPE_ETHERNET (1) files are also readable; the
// 14-byte Ethernet header — plus any 802.1Q/802.1ad VLAN tags — is stripped
// when the (inner) EtherType is IPv4.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "net/headers.h"

namespace dosm::net {

inline constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;
inline constexpr std::uint32_t kLinkTypeEthernet = 1;
inline constexpr std::uint32_t kLinkTypeRaw = 101;

/// 802.1Q / 802.1ad tag protocol identifiers (VLAN single- and double-tag).
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;
inline constexpr std::uint16_t kEtherTypeQinQ = 0x88a8;

/// A captured frame: timestamp plus raw bytes at the file's link layer.
struct CapturedFrame {
  UnixSeconds ts_sec = 0;
  std::uint32_t ts_usec = 0;
  std::uint32_t orig_len = 0;  // original wire length
  std::vector<std::uint8_t> bytes;
};

/// Streams pcap records to an ostream. Writes the global header on
/// construction. Not seekable; suitable for pipes.
class PcapWriter {
 public:
  /// Throws std::runtime_error if the stream is bad.
  explicit PcapWriter(std::ostream& out, std::uint32_t link_type = kLinkTypeRaw,
                      std::uint32_t snaplen = 65535);

  /// Writes one frame; bytes are at the configured link layer.
  void write_frame(UnixSeconds ts_sec, std::uint32_t ts_usec,
                   std::span<const std::uint8_t> bytes);

  /// Convenience: encodes the record as raw IPv4 and writes it. Only valid
  /// for LINKTYPE_RAW writers (throws std::logic_error otherwise).
  void write_packet(const PacketRecord& rec);

  std::uint64_t frames_written() const { return frames_written_; }

 private:
  std::ostream& out_;
  std::uint32_t link_type_;
  std::uint32_t snaplen_;
  std::uint64_t frames_written_ = 0;
};

/// Reads pcap records from an istream, handling both native and
/// byte-swapped files.
class PcapReader {
 public:
  /// Throws std::runtime_error on a malformed global header.
  explicit PcapReader(std::istream& in);

  std::uint32_t link_type() const { return link_type_; }

  /// Next raw frame, or nullopt at clean EOF. Throws on truncated records
  /// and on mid-capture stream errors (badbit / failbit without eofbit).
  std::optional<CapturedFrame> next_frame();

  /// Next frame decoded to a PacketRecord via decode_frame (VLAN tags
  /// stripped, snaplen-truncated and undecodable frames skipped and counted
  /// in the ingest.skipped.* metrics), or nullopt at EOF.
  std::optional<PacketRecord> next_packet();

 private:
  std::istream& in_;
  std::uint32_t link_type_ = kLinkTypeRaw;
  bool swapped_ = false;
};

/// Outcome of decoding one captured frame to a PacketRecord. The skip kinds
/// mirror the `ingest.skipped.*` counters: both the sequential reader and
/// the batched ingest decoder (src/ingest) classify frames through
/// decode_frame so the two front ends drop exactly the same frames.
enum class FrameDecode : std::uint8_t {
  kOk,                // `rec` holds the decoded packet
  kSkipLink,          // link layer unusable (short frame, non-IPv4 EtherType)
  kSkipTruncated,     // IPv4 total_length exceeds the captured bytes
  kSkipUndecodable,   // not parseable IPv4
};

/// Decodes one frame's bytes at the given link layer: strips the Ethernet
/// header (including 802.1Q/802.1ad VLAN tags) when `link_type` is
/// kLinkTypeEthernet, rejects snaplen-truncated IPv4 (total_length beyond
/// the capture), then parses via decode_packet_into.
FrameDecode decode_frame(std::span<const std::uint8_t> bytes,
                         std::uint32_t link_type, UnixSeconds ts_sec,
                         std::uint32_t ts_usec, PacketRecord& rec);

/// Reads every decodable packet from a pcap byte buffer (test helper).
std::vector<PacketRecord> decode_pcap(std::span<const std::uint8_t> file_bytes);

}  // namespace dosm::net
