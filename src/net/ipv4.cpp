#include "net/ipv4.h"

#include <cstdio>
#include <stdexcept>

#include "common/strings.h"

namespace dosm::net {

std::string Ipv4Addr::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

Ipv4Addr Ipv4Addr::parse(std::string_view s) {
  const auto parts = split(s, '.');
  if (parts.size() != 4)
    throw std::invalid_argument("Ipv4Addr::parse: expected 4 octets: " +
                                std::string(s));
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3)
      throw std::invalid_argument("Ipv4Addr::parse: bad octet: " + std::string(s));
    unsigned octet = 0;
    for (char c : part) {
      if (c < '0' || c > '9')
        throw std::invalid_argument("Ipv4Addr::parse: bad octet: " + std::string(s));
      octet = octet * 10 + static_cast<unsigned>(c - '0');
    }
    if (octet > 255)
      throw std::invalid_argument("Ipv4Addr::parse: octet > 255: " + std::string(s));
    value = (value << 8) | octet;
  }
  return Ipv4Addr(value);
}

Prefix::Prefix(Ipv4Addr addr, int length) : length_(length) {
  if (length < 0 || length > 32)
    throw std::invalid_argument("Prefix: length out of range");
  network_ = Ipv4Addr(addr.value() & mask());
}

Prefix Prefix::parse(std::string_view s) {
  const auto slash = s.find('/');
  if (slash == std::string_view::npos)
    throw std::invalid_argument("Prefix::parse: missing '/': " + std::string(s));
  const Ipv4Addr addr = Ipv4Addr::parse(s.substr(0, slash));
  int len = 0;
  for (char c : s.substr(slash + 1)) {
    if (c < '0' || c > '9')
      throw std::invalid_argument("Prefix::parse: bad length: " + std::string(s));
    len = len * 10 + (c - '0');
    if (len > 32)
      throw std::invalid_argument("Prefix::parse: length > 32: " + std::string(s));
  }
  return Prefix(addr, len);
}

Ipv4Addr Prefix::address_at(std::uint64_t i) const {
  if (i >= num_addresses())
    throw std::out_of_range("Prefix::address_at: index outside prefix");
  return Ipv4Addr(network_.value() + static_cast<std::uint32_t>(i));
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

}  // namespace dosm::net
