// Batched pcap capture: one buffered read slices many frames per call.
//
// PcapReader::next_frame costs two istream reads plus a heap-allocated byte
// vector per record — fine for tests, a ceiling for replaying telescope
// captures at line rate. BatchedPcapReader instead fills a large chunk
// buffer with a single istream read and slices record headers out of it in
// memory, emitting FrameBatch objects: one contiguous byte arena plus an
// index of FrameView descriptors. A batch owns its bytes, so it can cross
// the SPSC ring (src/ingest/ring.h) to a consumer thread while the reader
// refills its buffer.
//
// Error semantics match the sequential reader exactly: truncated record
// headers/bodies, implausible lengths, and mid-capture stream errors throw
// std::runtime_error; a clean EOF ends iteration. When a malformed record
// follows good frames inside one batch, the good frames are returned first
// and the error is rethrown on the *next* call — the consumer processes
// exactly the same frame prefix the sequential reader would have.
#pragma once

#include <cstdint>
#include <istream>
#include <span>
#include <string>
#include <vector>

#include "net/pcap.h"

namespace dosm::ingest {

/// One captured frame inside a FrameBatch: record header fields plus the
/// [offset, offset + caplen) slice of the batch's byte arena.
struct FrameView {
  UnixSeconds ts_sec = 0;
  std::uint32_t ts_usec = 0;
  std::uint32_t orig_len = 0;
  std::uint32_t offset = 0;
  std::uint32_t caplen = 0;
};

/// A batch of captured frames backed by one contiguous byte arena.
struct FrameBatch {
  std::vector<std::uint8_t> bytes;
  std::vector<FrameView> frames;

  std::span<const std::uint8_t> payload(const FrameView& frame) const {
    return std::span(bytes).subspan(frame.offset, frame.caplen);
  }
  std::size_t size() const { return frames.size(); }
  bool empty() const { return frames.empty(); }
  void clear() {
    bytes.clear();
    frames.clear();
  }
};

/// Slices pcap records out of a chunked read buffer. Single-threaded; the
/// pipeline runs one reader on the capture thread.
class BatchedPcapReader {
 public:
  /// Reads and validates the global header (same checks as PcapReader).
  /// `chunk_bytes` is the size of each buffered istream read.
  explicit BatchedPcapReader(std::istream& in,
                             std::size_t chunk_bytes = 256 * 1024);

  std::uint32_t link_type() const { return link_type_; }

  /// Fills `out` (cleared first) with up to `max_frames` frames. Returns
  /// false at clean EOF with no frames remaining. Throws std::runtime_error
  /// on malformed records or stream errors — after first surfacing, via a
  /// non-empty batch, any frames that preceded the error.
  bool next_batch(FrameBatch& out, std::size_t max_frames);

  std::uint64_t frames_read() const { return frames_read_; }
  std::uint64_t bytes_read() const { return bytes_read_; }

 private:
  /// Tops up the buffer from the stream. Returns false when the stream is
  /// exhausted; throws on stream errors.
  bool refill();
  /// Bytes currently buffered and unconsumed.
  std::size_t available() const { return end_ - pos_; }

  std::istream& in_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
  std::uint32_t link_type_ = net::kLinkTypeRaw;
  bool swapped_ = false;
  bool exhausted_ = false;  // istream fully drained
  std::string pending_error_;  // deferred from a partially-filled batch
  std::uint64_t frames_read_ = 0;
  std::uint64_t bytes_read_ = 0;
};

}  // namespace dosm::ingest
