#include "ingest/pipeline.h"

#include <exception>
#include <thread>
#include <utility>

#include "ingest/decode.h"
#include "ingest/metrics.h"
#include "ingest/ring.h"

namespace dosm::ingest {

IngestStats run_ingest(std::istream& pcap_stream, const IngestOptions& options,
                       const PacketSink& sink) {
  return run_ingest(pcap_stream, options,
                    RecordBatchSink([&](std::span<const net::PacketRecord> records) {
                      for (const net::PacketRecord& rec : records) sink(rec);
                    }));
}

IngestStats run_ingest(std::istream& pcap_stream, const IngestOptions& options,
                       const RecordBatchSink& sink) {
  BatchedPcapReader reader(pcap_stream, options.read_chunk_bytes);
  const std::uint32_t link_type = reader.link_type();
  SpscRing<FrameBatch> ring(options.ring_capacity);
  // Return path for drained batches: the consumer hands emptied batches back
  // so their arena capacity is reused instead of reallocated per batch
  // (~tens of KB of malloc/free and page traffic per batch otherwise). Both
  // rings stay SPSC — the roles just swap sides. One extra slot guarantees
  // a returned batch always fits even when the main ring is full.
  SpscRing<FrameBatch> recycle(options.ring_capacity + 1);
  auto& metrics = Metrics::get();

  IngestStats stats;
  std::exception_ptr capture_error;

  std::thread capture([&] {
    try {
      FrameBatch batch;
      while (reader.next_batch(batch, options.batch_frames)) {
        metrics.ring_occupancy.observe(static_cast<double>(ring.size()));
        if (options.policy == Backpressure::kBlock) {
          ring.push(batch);
        } else if (!ring.try_push(batch)) {
          ++stats.dropped_batches;
          stats.dropped_frames += batch.size();
          continue;  // batch keeps its storage; next_batch clears it
        }
        // Pushed (moved away): grab a recycled batch if one is waiting,
        // otherwise continue with the empty moved-from shell.
        recycle.try_pop(batch);
      }
    } catch (...) {
      // Surfaced on the consumer thread after the ring drains, so every
      // frame that preceded the error is still decoded and sunk first.
      capture_error = std::current_exception();
    }
    ring.close();
  });

  FrameBatch batch;
  std::vector<net::PacketRecord> records;
  while (ring.pop(batch)) {
    records.clear();
    const DecodeStats decoded = decode_batch(batch, link_type, records);
    sink(std::span<const net::PacketRecord>(records));
    ++stats.batches;
    stats.frames += batch.size();
    stats.packets += records.size();
    stats.bytes += batch.bytes.size();
    stats.skipped_link += decoded.skipped_link;
    stats.skipped_truncated += decoded.skipped_truncated;
    stats.skipped_undecodable += decoded.skipped_undecodable;
    // Return the drained batch for arena reuse; if the return ring is full
    // the batch simply frees here.
    batch.clear();
    recycle.try_push(batch);
  }
  capture.join();

  // Fold the run's traffic into the process-wide registry (write-only; the
  // per-run stats the caller gets back are computed independently).
  metrics.batches.add(stats.batches);
  metrics.frames.add(stats.frames);
  metrics.packets.add(stats.packets);
  metrics.bytes.add(stats.bytes);
  const RingStats& ring_stats = ring.stats();
  metrics.ring_pushed.add(
      ring_stats.pushed.load(std::memory_order_relaxed));
  metrics.ring_popped.add(
      ring_stats.popped.load(std::memory_order_relaxed));
  metrics.ring_producer_waits.add(
      ring_stats.producer_waits.load(std::memory_order_relaxed));
  metrics.ring_consumer_waits.add(
      ring_stats.consumer_waits.load(std::memory_order_relaxed));
  if (stats.dropped_batches > 0) {
    metrics.ring_dropped_batches.add(stats.dropped_batches);
    metrics.ring_dropped_frames.add(stats.dropped_frames);
  }

  if (capture_error) std::rethrow_exception(capture_error);
  return stats;
}

std::vector<net::PacketRecord> read_packets(std::istream& pcap_stream,
                                            const IngestOptions& options) {
  std::vector<net::PacketRecord> packets;
  run_ingest(pcap_stream, options,
             RecordBatchSink([&](std::span<const net::PacketRecord> records) {
               packets.insert(packets.end(), records.begin(), records.end());
             }));
  return packets;
}

}  // namespace dosm::ingest
