// The batched, backpressured ingest front end.
//
// run_ingest wires the pieces together: a capture thread slices the pcap
// stream into FrameBatches (ingest/batch.h) and pushes them through a
// bounded SPSC ring (ingest/ring.h); the calling thread pops batches,
// decodes them (ingest/decode.h), and hands each PacketRecord to the sink
// in capture order.
//
// Determinism contract: with the default kBlock backpressure policy the
// sink sees exactly the packet sequence PcapReader::next_packet would have
// produced — at any batch size and any ring capacity. The SPSC ring is
// strictly FIFO and nothing is dropped; batching changes only how bytes
// move, never what they decode to. kDrop trades that contract for bounded
// capture-side latency: full-ring batches are discarded and counted
// (ingest.ring.dropped_*), which a live telescope prefers over stalling
// the capture, but replays and tests use kBlock.
//
// Errors: a malformed record or mid-capture stream error is rethrown on the
// consumer thread after every frame read before the error has been decoded
// and sunk — again matching the sequential reader's progress-then-throw
// behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <span>
#include <vector>

#include "ingest/batch.h"
#include "net/headers.h"

namespace dosm::ingest {

/// What the producer does when the ring is full.
enum class Backpressure : std::uint8_t {
  kBlock,  // wait for the consumer (lossless, deterministic)
  kDrop,   // drop the batch and count it (live-capture latency bound)
};

struct IngestOptions {
  std::size_t batch_frames = 4096;    // frames sliced per batch
  std::size_t ring_capacity = 8;      // batches in flight (rounded to pow2)
  Backpressure policy = Backpressure::kBlock;
  std::size_t read_chunk_bytes = 256 * 1024;  // istream read granularity
};

struct IngestStats {
  std::uint64_t batches = 0;
  std::uint64_t frames = 0;
  std::uint64_t packets = 0;         // records delivered to the sink
  std::uint64_t bytes = 0;           // captured payload bytes
  std::uint64_t dropped_batches = 0; // kDrop policy only
  std::uint64_t dropped_frames = 0;
  std::uint64_t skipped_link = 0;
  std::uint64_t skipped_truncated = 0;
  std::uint64_t skipped_undecodable = 0;
};

using PacketSink = std::function<void(const net::PacketRecord&)>;
/// Batch-granular sink: one call per decoded batch, records in capture
/// order. The span is valid only for the duration of the call.
using RecordBatchSink = std::function<void(std::span<const net::PacketRecord>)>;

/// Replays `pcap_stream` through the capture-thread -> ring -> decode
/// pipeline, invoking `sink` for every decoded packet in capture order.
/// Throws std::runtime_error on malformed input or stream errors (after
/// sinking every packet that preceded the error).
IngestStats run_ingest(std::istream& pcap_stream, const IngestOptions& options,
                       const PacketSink& sink);

/// Same pipeline, but the sink is called once per batch with all of its
/// records — the per-record std::function dispatch disappears from the hot
/// loop, which matters at line rate. Packet order is identical.
IngestStats run_ingest(std::istream& pcap_stream, const IngestOptions& options,
                       const RecordBatchSink& sink);

/// Convenience: batched read of an entire capture into a vector.
std::vector<net::PacketRecord> read_packets(std::istream& pcap_stream,
                                            const IngestOptions& options = {});

}  // namespace dosm::ingest
