#include "ingest/decode.h"

#include "ingest/metrics.h"

namespace dosm::ingest {

DecodeStats decode_batch(const FrameBatch& batch, std::uint32_t link_type,
                         std::vector<net::PacketRecord>& out) {
  DecodeStats stats;
  out.reserve(out.size() + batch.frames.size());
  for (const FrameView& frame : batch.frames) {
    // Decode straight into the output slot; skipped frames give the slot
    // back. Saves one full PacketRecord copy per packet on the hot path.
    out.emplace_back();
    switch (net::decode_frame(batch.payload(frame), link_type, frame.ts_sec,
                              frame.ts_usec, out.back())) {
      case net::FrameDecode::kOk:
        break;
      case net::FrameDecode::kSkipLink:
        ++stats.skipped_link;
        out.pop_back();
        break;
      case net::FrameDecode::kSkipTruncated:
        ++stats.skipped_truncated;
        out.pop_back();
        break;
      case net::FrameDecode::kSkipUndecodable:
        ++stats.skipped_undecodable;
        out.pop_back();
        break;
    }
  }
  // One fold per batch keeps the striped-counter traffic off the per-frame
  // path (same batching discipline as the telescope threshold counters).
  auto& metrics = Metrics::get();
  if (stats.skipped_link > 0) metrics.skipped_link.add(stats.skipped_link);
  if (stats.skipped_truncated > 0)
    metrics.skipped_truncated.add(stats.skipped_truncated);
  if (stats.skipped_undecodable > 0)
    metrics.skipped_undecodable.add(stats.skipped_undecodable);
  return stats;
}

}  // namespace dosm::ingest
