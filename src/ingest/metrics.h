// ingest.* instrumentation: batch/frame/packet throughput, per-reason frame
// skips, and ring backpressure. Same obs contract as every other Metrics
// struct in the repo: registered once on the process-wide registry, updates
// lock-free, write-only (nothing in the pipeline reads these to decide).
//
// The ingest.skipped.* counters are shared with the sequential reader:
// net/pcap.cpp resolves the same names from the same registry, so a mixed
// deployment (sequential tests, batched production path) reports one truth.
#pragma once

#include "obs/metrics.h"

namespace dosm::ingest {

struct Metrics {
  // Capture -> decode throughput.
  obs::Counter& batches;
  obs::Counter& frames;
  obs::Counter& packets;        // frames decoded to PacketRecords
  obs::Counter& bytes;          // captured payload bytes ingested

  // Per-reason frame skips (shared names with net/pcap.cpp).
  obs::Counter& skipped_link;
  obs::Counter& skipped_truncated;
  obs::Counter& skipped_undecodable;

  // SPSC ring backpressure.
  obs::Counter& ring_pushed;
  obs::Counter& ring_popped;
  obs::Counter& ring_dropped_batches;  // kDrop policy only
  obs::Counter& ring_dropped_frames;
  obs::Counter& ring_producer_waits;
  obs::Counter& ring_consumer_waits;
  obs::Histogram& ring_occupancy;      // batches queued, sampled per push

  static Metrics& get();
};

}  // namespace dosm::ingest
