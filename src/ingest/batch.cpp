#include "ingest/batch.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace dosm::ingest {

namespace {

std::uint32_t swap32(std::uint32_t v) {
  return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) |
         (v >> 24);
}

std::uint16_t swap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

constexpr std::size_t kRecordHeaderLen = 16;
constexpr std::uint32_t kMaxCaplen = 1u << 26;

}  // namespace

BatchedPcapReader::BatchedPcapReader(std::istream& in, std::size_t chunk_bytes)
    : in_(in), buf_(std::max<std::size_t>(chunk_bytes, 4096)) {
  // The 24-byte global header is read directly; everything after flows
  // through the chunked buffer.
  std::uint8_t header[24];
  in_.read(reinterpret_cast<char*>(header), 4);
  if (in_.gcount() != 4)
    throw std::runtime_error("BatchedPcapReader: missing global header");
  std::uint32_t magic;
  std::memcpy(&magic, header, 4);
  if (magic == net::kPcapMagic) {
    swapped_ = false;
  } else if (swap32(magic) == net::kPcapMagic) {
    swapped_ = true;
  } else {
    throw std::runtime_error("BatchedPcapReader: bad magic");
  }
  in_.read(reinterpret_cast<char*>(header + 4), 20);
  if (in_.gcount() != 20)
    throw std::runtime_error("BatchedPcapReader: truncated global header");
  std::uint16_t vmaj;
  std::memcpy(&vmaj, header + 4, 2);
  if ((swapped_ ? swap16(vmaj) : vmaj) != 2)
    throw std::runtime_error("BatchedPcapReader: unsupported version");
  std::uint32_t lt;
  std::memcpy(&lt, header + 20, 4);
  link_type_ = swapped_ ? swap32(lt) : lt;
}

bool BatchedPcapReader::refill() {
  if (exhausted_) return false;
  if (pos_ > 0) {
    // Slide the unconsumed tail to the front before topping up.
    if (end_ > pos_) std::memmove(buf_.data(), buf_.data() + pos_, end_ - pos_);
    end_ -= pos_;
    pos_ = 0;
  }
  if (end_ == buf_.size()) buf_.resize(buf_.size() * 2);  // oversized record
  in_.read(reinterpret_cast<char*>(buf_.data() + end_),
           static_cast<std::streamsize>(buf_.size() - end_));
  const auto got = static_cast<std::size_t>(in_.gcount());
  // Same EOF-vs-error discipline as PcapReader::next_frame: a short read is
  // expected at the file tail, but a zero-byte read on a stream that is not
  // at EOF (or any badbit) is an I/O failure, not end of capture.
  if (in_.bad() || (got == 0 && !in_.eof()))
    throw std::runtime_error("BatchedPcapReader: stream read error mid-capture");
  if (in_.eof()) exhausted_ = true;
  end_ += got;
  bytes_read_ += got;
  return got > 0;
}

bool BatchedPcapReader::next_batch(FrameBatch& out, std::size_t max_frames) {
  out.clear();
  if (!pending_error_.empty()) {
    const std::string error = pending_error_;
    pending_error_.clear();
    throw std::runtime_error(error);
  }
  // Defers `message` if this batch already has frames (they are returned
  // first, matching the sequential reader's frame-by-frame progress),
  // otherwise throws immediately.
  const auto fail = [&](const char* message) -> bool {
    if (out.frames.empty()) throw std::runtime_error(message);
    pending_error_ = message;
    return true;
  };
  // Stream errors inside refill() defer like any other mid-batch failure so
  // sliced frames are never lost; `topped_up` distinguishes EOF (false) from
  // a deferred error (also false, with pending_error_ set).
  const auto try_refill = [&](bool& topped_up) -> bool {
    try {
      topped_up = refill();
      return false;
    } catch (const std::exception& e) {
      topped_up = false;
      fail(e.what());
      return true;
    }
  };
  while (out.frames.size() < max_frames) {
    while (available() < kRecordHeaderLen) {
      bool topped_up = false;
      if (try_refill(topped_up)) return true;
      if (!topped_up) {
        if (available() == 0) return !out.frames.empty();  // clean EOF
        return fail("BatchedPcapReader: truncated record header");
      }
    }
    std::uint32_t hdr[4];
    std::memcpy(hdr, buf_.data() + pos_, kRecordHeaderLen);
    if (swapped_)
      for (auto& w : hdr) w = swap32(w);
    const std::uint32_t caplen = hdr[2];
    if (caplen > kMaxCaplen)
      return fail("BatchedPcapReader: implausible record length");
    while (available() < kRecordHeaderLen + caplen) {
      bool topped_up = false;
      if (try_refill(topped_up)) return true;
      if (!topped_up) return fail("BatchedPcapReader: truncated record body");
    }
    // Keep FrameView::offset within u32: flush the batch early if the next
    // record would push the arena past that (only reachable with maximal
    // caplen records; the record stays buffered for the next batch).
    if (!out.frames.empty() &&
        out.bytes.size() + caplen >
            std::numeric_limits<std::uint32_t>::max()) {
      return true;
    }
    FrameView frame;
    frame.ts_sec = hdr[0];
    frame.ts_usec = hdr[1];
    frame.caplen = caplen;
    frame.orig_len = hdr[3];
    frame.offset = static_cast<std::uint32_t>(out.bytes.size());
    out.bytes.insert(out.bytes.end(),
                     buf_.data() + pos_ + kRecordHeaderLen,
                     buf_.data() + pos_ + kRecordHeaderLen + caplen);
    out.frames.push_back(frame);
    pos_ += kRecordHeaderLen + caplen;
    ++frames_read_;
  }
  return true;
}

}  // namespace dosm::ingest
