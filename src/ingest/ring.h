// Bounded lock-free single-producer/single-consumer ring.
//
// The batched ingest pipeline (src/ingest/pipeline.h) runs capture on one
// thread and decode + detection on another; this ring is the only channel
// between them. Design constraints:
//
//  * SPSC only. One producer index (tail_), one consumer index (head_),
//    each written by exactly one thread — no CAS loops, no ABA. A second
//    ingest modality (flow records, ROADMAP item 3) gets its own ring and
//    its own consumer rather than widening this one to MPSC.
//
//  * Bounded with explicit backpressure. try_push fails when the ring is
//    full; push blocks. The caller chooses (and counts) the policy — the
//    ring itself never drops silently.
//
//  * Lost-wakeup-free blocking without any clock. Blocking uses C++20
//    std::atomic wait/notify on the index words themselves, so a waiter's
//    compare value always encodes the predicate it is waiting on. close()
//    is folded into the tail word's high bit: the value change wakes a
//    consumer that raced with the final notify.
//
// FIFO order is exact, which is what makes batched ingest deterministic:
// the consumer sees batches in precisely the order the producer read them
// from the capture, at any capacity.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace dosm::ingest {

/// Producer/consumer traffic counts, folded into obs metrics by the
/// pipeline after a run (plain atomics so the ring stays header-only and
/// obs-free).
struct RingStats {
  std::atomic<std::uint64_t> pushed{0};
  std::atomic<std::uint64_t> popped{0};
  std::atomic<std::uint64_t> producer_waits{0};
  std::atomic<std::uint64_t> consumer_waits{0};
};

/// Polite busy-wait hint for the bounded spin phases below.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Spinning only makes sense when the other side can make progress on
/// another core; on a single-core machine it just burns the quantum the
/// peer thread needs, so the blocking paths park immediately instead.
inline bool spin_waits_enabled() noexcept {
  static const bool enabled = std::thread::hardware_concurrency() > 1;
  return enabled;
}

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Items currently queued (approximate under concurrency).
  std::size_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire) & kIndexMask;
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  /// Producer: moves `v` into the ring and returns true, or returns false
  /// (leaving `v` intact) when the ring is full.
  bool try_push(T& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed) & kIndexMask;
    if (tail - head_cache_ >= capacity()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity()) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    tail_.notify_one();
    stats_.pushed.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Producer: blocks until space is available (backpressure on capture).
  /// Spins briefly before parking: in the steady state the other side
  /// frees a slot within a batch's processing time, and a futex round trip
  /// costs far more than the bounded busy-wait.
  void push(T& v) {
    // Exponential backoff keeps the shared index lines quiet while the
    // other side works: probe, then pause progressively longer between
    // probes, parking on the futex only if the wait outlives the spin
    // window (~10s of us — roughly one batch's processing time).
    int backoff = 1;
    const int rounds = spin_waits_enabled() ? kSpinRounds : 0;
    for (int spin = 0; spin < rounds; ++spin) {
      if (try_push(v)) return;
      for (int i = 0; i < backoff; ++i) cpu_relax();
      if (backoff < kMaxBackoff) backoff <<= 1;
    }
    while (!try_push(v)) {
      stats_.producer_waits.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t head = head_.load(std::memory_order_acquire);
      const std::uint64_t tail = tail_.load(std::memory_order_relaxed) & kIndexMask;
      if (tail - head < capacity()) continue;  // space appeared; retry
      head_.wait(head, std::memory_order_acquire);
    }
  }

  /// Consumer: moves the next item into `out` and returns true, or returns
  /// false when the ring is currently empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire) & kIndexMask;
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    head_.notify_one();
    stats_.popped.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Consumer: blocks until an item arrives (true) or the ring is closed
  /// and fully drained (false).
  bool pop(T& out) {
    int backoff = 1;
    const int rounds = spin_waits_enabled() ? kSpinRounds : 0;
    for (int spin = 0; spin < rounds; ++spin) {
      if (try_pop(out)) return true;
      if (closed()) break;  // no more pushes coming; skip straight to drain
      for (int i = 0; i < backoff; ++i) cpu_relax();
      if (backoff < kMaxBackoff) backoff <<= 1;
    }
    for (;;) {
      if (try_pop(out)) return true;
      const std::uint64_t tail_word = tail_.load(std::memory_order_acquire);
      if ((tail_word & kClosedBit) != 0 &&
          (tail_word & kIndexMask) == head_.load(std::memory_order_relaxed)) {
        return false;  // closed and drained
      }
      if ((tail_word & kIndexMask) != head_.load(std::memory_order_relaxed))
        continue;  // item arrived between try_pop and the tail load
      stats_.consumer_waits.fetch_add(1, std::memory_order_relaxed);
      tail_.wait(tail_word, std::memory_order_acquire);
    }
  }

  /// Producer: marks the stream complete. Must be called by the producer
  /// thread after its last push; wakes a blocked consumer.
  void close() {
    tail_.fetch_or(kClosedBit, std::memory_order_release);
    tail_.notify_one();
  }

  bool closed() const noexcept {
    return (tail_.load(std::memory_order_acquire) & kClosedBit) != 0;
  }

  const RingStats& stats() const noexcept { return stats_; }
  RingStats& stats() noexcept { return stats_; }

 private:
  // The tail word carries the produced count in the low 63 bits and the
  // closed flag in the top bit, so close() changes the value a blocked
  // consumer waits on (no separate flag = no lost wakeup).
  static constexpr std::uint64_t kClosedBit = 1ull << 63;
  static constexpr std::uint64_t kIndexMask = kClosedBit - 1;
  // Spin window before a futex park; tuned against bench_ingest. Total
  // pause budget is sum(min(2^i, kMaxBackoff)) over the rounds — a few
  // thousand pause cycles, comparable to one batch's processing time.
  static constexpr int kSpinRounds = 64;
  static constexpr int kMaxBackoff = 32;

  std::vector<T> slots_;
  std::size_t mask_ = 1;
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer-owned
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer-owned
  // Single-thread-owned index caches avoid re-loading the other side's
  // atomic on every call; stale values only cause a refresh, never a race.
  alignas(64) std::uint64_t head_cache_ = 0;  // producer-owned
  alignas(64) std::uint64_t tail_cache_ = 0;  // consumer-owned
  RingStats stats_;
};

}  // namespace dosm::ingest
