#include "ingest/metrics.h"

#include <array>

namespace dosm::ingest {

Metrics& Metrics::get() {
  static Metrics metrics = [] {
    auto& reg = obs::MetricsRegistry::global();
    static const std::array<double, 7> occupancy_bounds = {0, 1, 2, 4,
                                                           8, 16, 32};
    return Metrics{
        reg.counter("ingest.batches", "Frame batches read from the capture"),
        reg.counter("ingest.frames", "Captured frames ingested"),
        reg.counter("ingest.packets", "Frames decoded to packet records"),
        reg.counter("ingest.bytes", "Captured payload bytes ingested"),
        reg.counter("ingest.skipped.link",
                    "Frames dropped at the link layer (short frame or "
                    "non-IPv4 EtherType)"),
        reg.counter("ingest.skipped.truncated",
                    "Frames dropped because the IPv4 total_length exceeds "
                    "the captured bytes (snaplen truncation)"),
        reg.counter("ingest.skipped.undecodable",
                    "Frames dropped because the payload is not parseable "
                    "IPv4"),
        reg.counter("ingest.ring.pushed", "Batches pushed into the SPSC ring"),
        reg.counter("ingest.ring.popped", "Batches popped from the SPSC ring"),
        reg.counter("ingest.ring.dropped_batches",
                    "Batches dropped by the kDrop backpressure policy"),
        reg.counter("ingest.ring.dropped_frames",
                    "Frames inside batches dropped by the kDrop policy"),
        reg.counter("ingest.ring.producer_waits",
                    "Producer blocking waits on a full ring"),
        reg.counter("ingest.ring.consumer_waits",
                    "Consumer blocking waits on an empty ring"),
        reg.histogram("ingest.ring.occupancy",
                      "Batches queued in the ring, sampled at each push",
                      occupancy_bounds),
    };
  }();
  return metrics;
}

}  // namespace dosm::ingest
