// Batch decode: FrameBatch -> PacketRecords, with per-reason skip counts.
//
// The per-frame policy is net::decode_frame — the same function the
// sequential PcapReader::next_packet uses — so the batched and sequential
// front ends accept and drop exactly the same frames by construction. The
// batch loop adds what the hot path needs: records append into a reusable
// caller-owned vector (no optional/copy per packet) and skips fold into
// local tallies flushed to the obs counters once per batch.
#pragma once

#include <cstdint>
#include <vector>

#include "ingest/batch.h"
#include "net/headers.h"

namespace dosm::ingest {

/// Per-batch skip tallies (also mirrored into ingest.skipped.*).
struct DecodeStats {
  std::uint64_t skipped_link = 0;
  std::uint64_t skipped_truncated = 0;
  std::uint64_t skipped_undecodable = 0;
};

/// Decodes every frame of `batch`, appending accepted packets to `out` in
/// frame order. Returns the skip tallies for this batch after adding them
/// to the global ingest.skipped.* counters.
DecodeStats decode_batch(const FrameBatch& batch, std::uint32_t link_type,
                         std::vector<net::PacketRecord>& out);

}  // namespace dosm::ingest
