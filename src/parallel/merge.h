// Deterministic k-way merge of per-shard result runs.
//
// Each shard emits its events pre-sorted under a strict-weak-order
// comparator; the merge interleaves the runs into one globally sorted
// vector. Elements that compare equivalent are taken from the
// lowest-numbered run first, so the output is a pure function of the run
// contents — never of thread scheduling — which is what makes the parallel
// pipeline byte-identical to the sequential one for any shard/thread count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace dosm::parallel {

/// Merges `runs` (each sorted under `less`) into one sorted vector.
/// Equivalent elements keep run-index order. Consumes the runs.
template <typename T, typename Less>
std::vector<T> kway_merge(std::vector<std::vector<T>> runs, Less less) {
  std::vector<T> out;
  std::size_t total = 0;
  for (const auto& run : runs) total += run.size();
  out.reserve(total);

  // Head position per run; a linear scan over the (small, = shard count)
  // run set beats a heap for the k this pipeline uses.
  std::vector<std::size_t> head(runs.size(), 0);
  while (out.size() < total) {
    std::size_t best = runs.size();
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (head[r] >= runs[r].size()) continue;
      if (best == runs.size() ||
          less(runs[r][head[r]], runs[best][head[best]])) {
        best = r;  // strictly-less only: ties stay with the lower run index
      }
    }
    out.push_back(std::move(runs[best][head[best]]));
    ++head[best];
  }
  return out;
}

}  // namespace dosm::parallel
